(** A minimal JSON tree, printer and parser — just enough for the
    optimizer's machine-readable observability output ([visadvisor --json],
    [BENCH_vis.json]) and for the test suite to check that output is valid
    JSON, without pulling an external dependency into the core libraries.

    The printer escapes control characters and quotes (non-ASCII bytes pass
    through untouched, so UTF-8 strings survive printing verbatim);
    non-finite floats (which JSON cannot represent) are emitted as [null].
    The parser accepts the standard grammar (RFC 8259): ["\uXXXX"] escapes
    decode to UTF-8, including surrogate pairs for supplementary-plane
    characters; unpaired surrogates are a {!Parse_error}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_string ?indent v] renders [v]; with [indent] (spaces per level,
    default compact) the output is pretty-printed. *)
val to_string : ?indent:int -> t -> string

exception Parse_error of string

(** Containers may nest at most this deep ([512]); deeper input is a
    {!Parse_error}, not a stack overflow. *)
val max_depth : int

(** [of_string s] parses one JSON value, requiring that only whitespace
    follows it.  Raises {!Parse_error} — also on containers nested deeper
    than {!max_depth} and on numeric literals that would produce a
    non-finite float (e.g. ["1e999"]), both of which the grammar-level
    checks turn into typed errors instead of undefined downstream
    behavior. *)
val of_string : string -> t

(** [member name v] is the field [name] of object [v], or [Null] when
    absent or when [v] is not an object. *)
val member : string -> t -> t

(** [to_float v] widens [Int] and [Float] to float.  Raises
    {!Parse_error} on other constructors. *)
val to_float : t -> float
