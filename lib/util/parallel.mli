(** A dependency-free fixed-size worker pool over OCaml 5 [Domain]s.

    The pool runs *deterministic data parallelism*: a batch of independent
    tasks is split into chunks, the chunks are claimed dynamically by the
    workers (and by the submitting domain, which always participates), and
    the results are delivered in submission order.  Because every task is a
    pure function of its input, the value returned by {!map_array} is
    bit-identical to a sequential [Array.map] at any [jobs] setting — the
    search algorithms in [Vis_core] rely on this to keep their optima, costs
    and counter totals independent of the degree of parallelism.

    Guarantees:
    - {b Deterministic results.} [map_array pool f a] equals
      [Array.map f a] element for element, regardless of [jobs], chunking,
      or scheduling.
    - {b Deterministic exceptions.} If several tasks raise, the exception
      propagated to the submitter is the one from the lowest-numbered chunk
      (and, within a chunk, the first element that raised) — the same
      exception a sequential run would have produced first.  The remaining
      chunks still run to completion, so the pool stays reusable.
    - {b No deadlocks on degenerate input.} Empty batches return
      immediately; a pool with [jobs = 1] never spawns a domain and runs
      everything inline on the caller.

    Restrictions: batches must be submitted from the domain that created the
    pool, one at a time (the search algorithms are sequential coordinators
    that fan out hot loops, so this is not limiting).  Task functions must
    not themselves submit work to the same pool.

    {2 The sharding contract}

    The searches in [Vis_core] use the pool for {e coarse-grained sharding}:
    the coordinator cuts its state space into shards whose boundaries depend
    only on the problem (never on [jobs]), submits one batch per exchange
    round with one chunk per shard, and merges shard-local results in shard
    index order at the barrier [run] provides.  Under that discipline the
    pool adds no nondeterminism of its own:

    - chunk [c] always receives the same work — [jobs] only decides which
      domain happens to execute it;
    - shard-local mutable state (queues, counters, evaluator chains) is
      touched by exactly one chunk per batch, so it needs no locks;
    - anything cross-shard (incumbent bounds, counter totals) is exchanged
      only at the barrier, by the coordinator, in a fixed order.

    A* shards its frontier by configuration-mask prefix and exhaustive
    search shards the enumeration order (see [Vis_core.Astar] and
    [Vis_core.Exhaustive], which depend on this library and document the
    per-search shapes); both inherit their bit-identity guarantee at any
    [jobs] setting from this contract. *)

type pool

(** [default_jobs ()] is the pool width used when none is given explicitly:
    the [VISMAT_JOBS] environment variable when set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** [create ?jobs ()] spawns [jobs - 1] worker domains (default
    {!default_jobs}; values [< 1] are clamped to 1).  The caller's domain is
    the remaining worker, so [jobs] bounds total concurrency. *)
val create : ?jobs:int -> unit -> pool

(** Worker-slot count of the pool (including the submitting domain). *)
val jobs : pool -> int

(** [shutdown pool] terminates and joins the worker domains.  Idempotent.
    Submitting to a shut-down pool runs the batch inline on the caller. *)
val shutdown : pool -> unit

(** [with_pool ?jobs f] runs [f] with a fresh pool and always shuts it down,
    even when [f] raises. *)
val with_pool : ?jobs:int -> (pool -> 'a) -> 'a

(** [using ?jobs ?pool f] runs [f] with [pool] when given (borrowed — not
    shut down), otherwise behaves like [with_pool ?jobs f].  Lets nested
    algorithms (e.g. the greedy seed inside the A* search) share their
    caller's workers. *)
val using : ?jobs:int -> ?pool:pool -> (pool -> 'a) -> 'a

(** [run pool ~chunks f] executes [f 0 .. f (chunks - 1)] exactly once
    each, in parallel, and returns when all are done.  The low-level
    primitive under the maps. *)
val run : pool -> chunks:int -> (int -> unit) -> unit

(** [map_array ?chunk pool f a] is [Array.map f a] computed in parallel.
    [chunk] overrides the number of consecutive elements a worker claims at
    a time (default: [length / (8 * jobs)], at least 1). *)
val map_array : ?chunk:int -> pool -> ('a -> 'b) -> 'a array -> 'b array

(** [map_list pool f l] is [List.map f l] computed in parallel. *)
val map_list : pool -> ('a -> 'b) -> 'a list -> 'b list

(** [run_tasks pool tasks] runs each thunk once with one chunk per thunk
    and returns their results in task order.  Because no chunk ever holds
    two tasks, a thunk may freely mutate state that no other thunk touches
    (e.g. the advisor service refreshing disjoint per-tenant warehouses in
    one round); results and the propagated exception (lowest task index)
    are deterministic at any pool width.  The usual pool rules apply:
    submit only from the pool's creating domain, and tasks must not submit
    to the same pool. *)
val run_tasks : pool -> (unit -> 'a) array -> 'a array

(** [map_init ?chunk pool ~init f a] is {!map_array} where each chunk first
    builds a private context [ctx = init ()] and maps its elements with
    [f ctx].  Used to give every worker its own evaluator (memoizers with
    single-domain mutable state) while the mapped results stay pure. *)
val map_init :
  ?chunk:int -> pool -> init:(unit -> 'c) -> ('c -> 'a -> 'b) -> 'a array ->
  'b array

(** {1 Work accounting} *)

(** [work_counts pool] is a snapshot of how many chunks each worker slot has
    executed since creation; slot 0 is the submitting domain.  Diff two
    snapshots to attribute work to one algorithm run. *)
val work_counts : pool -> int array

(** [diff_counts ~before ~after] is the per-slot difference of two
    {!work_counts} snapshots. *)
val diff_counts : before:int array -> after:int array -> int array

(** [simulate_schedule ~jobs weights] is the span (makespan, in the same
    units as [weights]) of running tasks of the given costs on [jobs]
    workers under {!run}'s claim-in-order discipline: task [i] goes to the
    worker that frees up first.  A deterministic, machine-independent model
    of one batch — the searches feed it their per-shard work counts to
    report an achievable-speedup figure that does not depend on the host's
    core count (see [Vis_core.Search_stats.modeled_speedup]). *)
val simulate_schedule : jobs:int -> int array -> int
