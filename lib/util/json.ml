type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing. *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to buf x =
  if not (Float.is_finite x) then
    (* JSON has no NaN/infinity. *)
    Buffer.add_string buf "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" x)
  else Buffer.add_string buf (Printf.sprintf "%.17g" x)

let to_string ?indent v =
  let buf = Buffer.create 256 in
  let pad level =
    match indent with
    | None -> ()
    | Some n ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (n * level) ' ')
  in
  let sep () = match indent with None -> () | Some _ -> Buffer.add_char buf ' ' in
  let rec go level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x -> float_to buf x
    | String s -> escape_to buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            pad (level + 1);
            go (level + 1) item)
          items;
        pad level;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (name, item) ->
            if i > 0 then Buffer.add_char buf ',';
            pad (level + 1);
            escape_to buf name;
            Buffer.add_char buf ':';
            sep ();
            go (level + 1) item)
          fields;
        pad level;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing. *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* Containers may nest at most this deep.  A typed [Parse_error], not a
   stack overflow, is the contract for adversarial inputs like ["[[[[…"]. *)
let max_depth = 512

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected '%c' at %d, found '%c'" c !pos c'
    | None -> fail "expected '%c' at %d, found end of input" c !pos
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail "invalid literal at %d" !pos
  in
  (* UTF-8 encode one scalar value (RFC 3629). *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let read_hex4 () =
      if !pos + 4 > n then fail "truncated \\u escape at %d" !pos;
      let hex = String.sub s !pos 4 in
      let code =
        try int_of_string ("0x" ^ hex)
        with _ -> fail "bad \\u escape at %d" !pos
      in
      pos := !pos + 4;
      code
    in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string at %d" !pos
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'u' ->
              advance ();
              let code = read_hex4 () in
              if code >= 0xD800 && code <= 0xDBFF then begin
                (* High surrogate: must pair with a following \u low
                   surrogate, together encoding one supplementary-plane
                   character. *)
                if
                  not
                    (!pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u')
                then fail "unpaired surrogate \\u escape at %d" !pos;
                pos := !pos + 2;
                let low = read_hex4 () in
                if not (low >= 0xDC00 && low <= 0xDFFF) then
                  fail "unpaired surrogate \\u escape at %d" !pos;
                add_utf8 buf
                  (0x10000
                  + ((code - 0xD800) lsl 10)
                  + (low - 0xDC00))
              end
              else if code >= 0xDC00 && code <= 0xDFFF then
                fail "unpaired surrogate \\u escape at %d" !pos
              else add_utf8 buf code
          | _ -> fail "bad escape at %d" !pos);
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some x ->
            (* "1e999" parses to infinity; JSON has no non-finite numbers
               and silently admitting one would round-trip as null. *)
            if not (Float.is_finite x) then
              fail "non-finite number %S at %d" text start;
            Float x
        | None -> fail "invalid number %S at %d" text start)
  in
  (* [depth] counts enclosing containers; opening one at [max_depth] is
     the typed error. *)
  let rec parse_value depth =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        if depth >= max_depth then
          fail "nesting deeper than %d levels at %d" max_depth !pos;
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value (depth + 1) ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value (depth + 1) :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        if depth >= max_depth then
          fail "nesting deeper than %d levels at %d" max_depth !pos;
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let name = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            (name, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some c -> if c = '-' || (c >= '0' && c <= '9') then parse_number ()
        else fail "unexpected character '%c' at %d" c !pos
  in
  let v = parse_value 0 in
  skip_ws ();
  if !pos <> n then fail "trailing characters at %d" !pos;
  v

let member name = function
  | Obj fields -> ( match List.assoc_opt name fields with Some v -> v | None -> Null)
  | _ -> Null

let to_float = function
  | Int i -> float_of_int i
  | Float x -> x
  | v -> fail "expected a number, found %s" (to_string v)
