let default_jobs () =
  match Sys.getenv_opt "VISMAT_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* One batch of chunks.  [epoch] distinguishes successive batches so a
   worker that wakes late never re-runs a batch it already drained. *)
type job = {
  j_run : int -> unit;  (* chunk index -> unit; never raises (wrapped) *)
  j_chunks : int;
  j_next : int Atomic.t;  (* next unclaimed chunk *)
  j_epoch : int;
}

type pool = {
  n_jobs : int;
  mutable domains : unit Domain.t array;  (* the [n_jobs - 1] workers *)
  m : Mutex.t;
  work : Condition.t;  (* a batch arrived, or shutdown *)
  drained : Condition.t;  (* the current batch fully completed *)
  mutable job : job option;  (* protected by [m] *)
  mutable epoch : int;  (* protected by [m] *)
  mutable active : int;  (* workers inside the current batch; by [m] *)
  mutable stop : bool;  (* protected by [m] *)
  tasks_run : int array;  (* chunks executed per slot; slot-private *)
}

let jobs pool = pool.n_jobs

let work_counts pool = Array.copy pool.tasks_run

let diff_counts ~before ~after =
  Array.init
    (min (Array.length before) (Array.length after))
    (fun i -> after.(i) - before.(i))

(* Claim and run chunks until the batch is exhausted.  Dynamic claiming via
   fetch-and-add balances uneven chunk costs across slots. *)
let run_chunks pool slot j =
  let rec go () =
    let c = Atomic.fetch_and_add j.j_next 1 in
    if c < j.j_chunks then begin
      pool.tasks_run.(slot) <- pool.tasks_run.(slot) + 1;
      j.j_run c;
      go ()
    end
  in
  go ()

let rec worker_loop pool slot last_epoch =
  Mutex.lock pool.m;
  let rec await () =
    if pool.stop then None
    else
      match pool.job with
      | Some j when j.j_epoch <> last_epoch -> Some j
      | Some _ | None ->
          Condition.wait pool.work pool.m;
          await ()
  in
  match await () with
  | None -> Mutex.unlock pool.m
  | Some j ->
      pool.active <- pool.active + 1;
      Mutex.unlock pool.m;
      run_chunks pool slot j;
      Mutex.lock pool.m;
      pool.active <- pool.active - 1;
      if pool.active = 0 && Atomic.get j.j_next >= j.j_chunks then
        Condition.signal pool.drained;
      Mutex.unlock pool.m;
      worker_loop pool slot j.j_epoch

let create ?jobs () =
  let n_jobs = max 1 (match jobs with Some n -> n | None -> default_jobs ()) in
  let pool =
    {
      n_jobs;
      domains = [||];
      m = Mutex.create ();
      work = Condition.create ();
      drained = Condition.create ();
      job = None;
      epoch = 0;
      active = 0;
      stop = false;
      tasks_run = Array.make n_jobs 0;
    }
  in
  if n_jobs > 1 then
    pool.domains <-
      Array.init (n_jobs - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop pool (i + 1) 0));
  pool

let shutdown pool =
  Mutex.lock pool.m;
  let was_stopped = pool.stop in
  pool.stop <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.m;
  if not was_stopped then begin
    Array.iter Domain.join pool.domains;
    pool.domains <- [||]
  end

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let using ?jobs ?pool f =
  match pool with Some p -> f p | None -> with_pool ?jobs f

let run_inline pool ~chunks f =
  for c = 0 to chunks - 1 do
    pool.tasks_run.(0) <- pool.tasks_run.(0) + 1;
    f c
  done

let run pool ~chunks f =
  if chunks <= 0 then ()
  else if chunks = 1 || Array.length pool.domains = 0 then
    run_inline pool ~chunks f
  else begin
    (* First exception in chunk order wins, matching what a sequential run
       would have raised first; later chunks still execute so the pool's
       bookkeeping stays consistent. *)
    let failure : (int * exn * Printexc.raw_backtrace) option Atomic.t =
      Atomic.make None
    in
    let guarded c =
      try f c
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        let rec record () =
          match Atomic.get failure with
          | Some (c0, _, _) when c0 <= c -> ()
          | cur ->
              if not (Atomic.compare_and_set failure cur (Some (c, e, bt)))
              then record ()
        in
        record ()
    in
    Mutex.lock pool.m;
    pool.epoch <- pool.epoch + 1;
    let j =
      {
        j_run = guarded;
        j_chunks = chunks;
        j_next = Atomic.make 0;
        j_epoch = pool.epoch;
      }
    in
    pool.job <- Some j;
    (* Wake only as many workers as there are chunks to spare: per-batch
       overhead stays bounded when batches are tiny (A* fans out just two
       successors per expansion). *)
    let workers = Array.length pool.domains in
    if chunks - 1 >= workers then Condition.broadcast pool.work
    else
      for _ = 1 to chunks - 1 do
        Condition.signal pool.work
      done;
    Mutex.unlock pool.m;
    run_chunks pool 0 j;
    Mutex.lock pool.m;
    while not (pool.active = 0 && Atomic.get j.j_next >= j.j_chunks) do
      Condition.wait pool.drained pool.m
    done;
    pool.job <- None;
    Mutex.unlock pool.m;
    match Atomic.get failure with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let chunk_bounds ~chunk ~jobs n =
  let size =
    match chunk with
    | Some c -> max 1 c
    | None -> max 1 (n / (8 * jobs))
  in
  let chunks = (n + size - 1) / size in
  (size, chunks)

let map_into pool ~chunk ~init f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    let size, chunks = chunk_bounds ~chunk ~jobs:pool.n_jobs n in
    run pool ~chunks (fun c ->
        let ctx = init () in
        let lo = c * size and hi = min n ((c + 1) * size) in
        for i = lo to hi - 1 do
          out.(i) <- Some (f ctx arr.(i))
        done);
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_array ?chunk pool f arr =
  map_into pool ~chunk ~init:(fun () -> ()) (fun () x -> f x) arr

let map_init ?chunk pool ~init f arr = map_into pool ~chunk ~init f arr

let map_list pool f l = Array.to_list (map_array pool f (Array.of_list l))

let run_tasks pool tasks = map_array ~chunk:1 pool (fun f -> f ()) tasks

(* Deterministic model of [run]'s claim-in-order schedule: task [i] goes to
   the worker that frees up first (ties to the lowest slot), exactly what
   dynamic chunk claiming converges to when every worker is equally fast.
   Working in abstract work units keeps the result machine-independent. *)
let simulate_schedule ~jobs weights =
  let jobs = max 1 jobs in
  let finish = Array.make jobs 0 in
  Array.iter
    (fun w ->
      let k = ref 0 in
      for i = 1 to jobs - 1 do
        if finish.(i) < finish.(!k) then k := i
      done;
      finish.(!k) <- finish.(!k) + max 0 w)
    weights;
  Array.fold_left max 0 finish
