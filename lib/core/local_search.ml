module Bitset = Vis_util.Bitset
module Schema = Vis_catalog.Schema
module Element = Vis_costmodel.Element
module Config = Vis_costmodel.Config

type result = {
  best : Config.t;
  best_cost : float;
  moves : int;
  evaluations : int;
  search_stats : Search_stats.t;
}

let feature_in config = function
  | Problem.F_view w -> Config.has_view config w
  | Problem.F_index ix ->
      Config.has_index config ix.Element.ix_elem ix.Element.ix_attr
  | Problem.F_compress e -> Config.has_compress config e

let applicable p config = function
  | Problem.F_view _ -> true
  | Problem.F_index ix -> (
      match ix.Element.ix_elem with
      | Element.Base _ -> true
      | Element.View w ->
          Bitset.equal w (Schema.all_relations p.Problem.schema)
          || Config.has_view config w)
  (* Compression candidates are always-materialized elements. *)
  | Problem.F_compress _ -> true

let add config = function
  | Problem.F_view w -> Config.add_view config w
  | Problem.F_index ix -> Config.add_index config ix
  | Problem.F_compress e -> Config.add_compress config e

(* Dropping a view also drops the indexes living on it. *)
let drop config = function
  | Problem.F_view w ->
      let config = Config.remove_view config w in
      List.fold_left
        (fun c ix ->
          if Element.equal ix.Element.ix_elem (Element.View w) then
            Config.remove_index c ix
          else c)
        config (Config.indexes config)
  | Problem.F_index ix -> Config.remove_index config ix
  | Problem.F_compress e -> Config.remove_compress config e

let search ?seed ?space_budget ?(max_moves = 1000) p =
  let sstats = Search_stats.create ~algorithm:"local-search" () in
  let evaluations = ref 0 in
  let cost config =
    incr evaluations;
    Search_stats.evaluate sstats;
    Problem.total p config
  in
  let within config =
    match space_budget with
    | None -> true
    | Some b -> Config.space p.Problem.derived config <= b
  in
  let start =
    match seed with
    | Some c -> c
    | None ->
        Search_stats.time sstats "greedy-seed" (fun () ->
            (Greedy.search ?space_budget p).Greedy.best)
  in
  (* Packed hill-climb: masks for states, closure masks for drops,
     incremental costing for every considered neighbour.  Candidate order,
     counter bumps, and tie-breaking mirror the structural [climb] below
     exactly, so both paths pick the same local optimum bit-for-bit. *)
  let rec packed_climb cid mask ieval current moves =
    if moves >= max_moves then begin
      Search_stats.prune sstats "move-budget";
      (mask, current, moves)
    end
    else begin
      Search_stats.expand sstats;
      let n = Config_id.n_features cid in
      let cands_in = ref [] and cands_out = ref [] in
      for b = n - 1 downto 0 do
        if Config_id.has_feature cid mask b then cands_in := b :: !cands_in
        else if Config_id.applicable cid mask b then
          cands_out := b :: !cands_out
      done;
      let candidates_in = !cands_in and candidates_out = !cands_out in
      Search_stats.observe_frontier sstats
        (List.length candidates_in + List.length candidates_out);
      let consider best mask' =
        let ok =
          match space_budget with
          | None -> true
          | Some _ -> within (Config_id.config_of_mask cid mask')
        in
        if not ok then begin
          Search_stats.prune sstats "space-budget";
          best
        end
        else begin
          Search_stats.generate sstats;
          let ie = Config_id.eval_from cid ieval mask' in
          incr evaluations;
          Search_stats.evaluate sstats;
          let c = Vis_costmodel.Cost.ieval_total ie in
          match best with
          | Some (_, _, bc) when bc <= c -> best
          | _ when c < current -> Some (mask', ie, c)
          | _ -> best
        end
      in
      let best =
        List.fold_left
          (fun acc b -> consider acc (Config_id.add cid mask b))
          None candidates_out
      in
      let best =
        List.fold_left
          (fun acc b -> consider acc (Config_id.drop cid mask b))
          best candidates_in
      in
      let best =
        List.fold_left
          (fun acc b_out ->
            List.fold_left
              (fun acc b_in ->
                let mask' = Config_id.drop cid mask b_in in
                (* The added feature must still be applicable after the drop
                   (e.g. not an index on the dropped view). *)
                if Config_id.applicable cid mask' b_out then
                  consider acc (Config_id.add cid mask' b_out)
                else acc)
              acc candidates_in)
          best candidates_out
      in
      match best with
      | None -> (mask, current, moves)
      | Some (mask', ie, c) -> packed_climb cid mask' ie c (moves + 1)
    end
  in
  let rec climb config current moves =
    if moves >= max_moves then begin
      Search_stats.prune sstats "move-budget";
      (config, current, moves)
    end
    else begin
      Search_stats.expand sstats;
      let candidates_in =
        List.filter (fun f -> feature_in config f) p.Problem.features
      in
      let candidates_out =
        List.filter
          (fun f -> (not (feature_in config f)) && applicable p config f)
          p.Problem.features
      in
      Search_stats.observe_frontier sstats
        (List.length candidates_in + List.length candidates_out);
      let consider best config' =
        if not (within config') then begin
          Search_stats.prune sstats "space-budget";
          best
        end
        else begin
          Search_stats.generate sstats;
          let c = cost config' in
          match best with
          | Some (_, bc) when bc <= c -> best
          | _ when c < current -> Some (config', c)
          | _ -> best
        end
      in
      let best = List.fold_left (fun b f -> consider b (add config f)) None candidates_out in
      let best = List.fold_left (fun b f -> consider b (drop config f)) best candidates_in in
      let best =
        List.fold_left
          (fun b f_out ->
            List.fold_left
              (fun b f_in ->
                let config' = drop config f_in in
                (* The added feature must still be applicable after the drop
                   (e.g. not an index on the dropped view). *)
                if applicable p config' f_out then consider b (add config' f_out)
                else b)
              b candidates_in)
          best candidates_out
      in
      match best with
      | None -> (config, current, moves)
      | Some (config', c) -> climb config' c (moves + 1)
    end
  in
  Search_stats.generate sstats;
  (* the seed configuration *)
  let packed =
    match Config_id.of_problem p with
    | Some cid -> (
        match Config_id.mask_of_config cid start with
        | Some m -> Some (cid, m)
        | None -> None (* out-of-universe seed: structural path *))
    | None -> None
  in
  match packed with
  | Some (cid, m0) ->
      let ie0 = Config_id.eval cid m0 in
      incr evaluations;
      Search_stats.evaluate sstats;
      let bmask, best_cost, moves =
        Search_stats.time sstats "climb" (fun () ->
            packed_climb cid m0 ie0 (Vis_costmodel.Cost.ieval_total ie0) 0)
      in
      {
        best = Config_id.config_of_mask cid bmask;
        best_cost;
        moves;
        evaluations = !evaluations;
        search_stats = sstats;
      }
  | None ->
      let seed_cost = cost start in
      let best, best_cost, moves =
        Search_stats.time sstats "climb" (fun () -> climb start seed_cost 0)
      in
      { best; best_cost; moves; evaluations = !evaluations; search_stats = sstats }
