(** The sensitivity analysis of Section 6.2 (Figure 12): how much does an
    optimal design degrade when the administrator's estimates of the delta
    rates are wrong?

    For each {e estimated} parameter value the optimizer (A-star) picks a
    configuration; that fixed configuration is then costed across the whole
    range of {e actual} parameter values and compared with the optimum at
    each actual value.  A ratio of 1.0 means the estimate was harmless. *)

type series = {
  se_estimate : float;  (** the parameter value the optimizer believed *)
  se_config : Vis_costmodel.Config.t;  (** the design it chose *)
  se_ratios : (float * float) list;
      (** (actual value, cost of the design / optimal cost at that value) *)
}

(** [sweep ~make_schema ~values] builds a schema per parameter value with
    [make_schema], optimizes at every value, and cross-evaluates every design
    at every value.  [make_schema] must keep relations, joins and selections
    identical across values (only statistics may change), so that a
    configuration chosen under one schema is meaningful under another. *)
val sweep :
  make_schema:(float -> Vis_catalog.Schema.t) -> values:float list -> series list

(** [probe p ~incumbent] — the Figure-12 ratio at one actual parameter
    value: the incumbent design's cost under [p] divided by the cost of a
    cheap re-optimized baseline (the greedy design for [p]).  A value near
    1.0 means the incumbent is still competitive at the drifted statistics;
    the advisor service runs the full (budgeted, warm-started) A* only when
    the probe exceeds its gate threshold.  Greedy is never below the true
    optimum, so the probe {e underestimates} the exact §6.2 ratio — a
    conservative gate.  Deterministic and identical at any pool width
    (the greedy probe runs sequentially). *)
val probe : Problem.t -> incumbent:Vis_costmodel.Config.t -> float
