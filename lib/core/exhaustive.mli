(** The exhaustive baseline of Section 2: every subset of the candidate
    supporting views crossed with every subset of the candidate indexes of
    that view state.  Intractable beyond small problems, but the reference
    for verifying optimality of A* and the generator for the per-view-set
    statistics of Figure 4 and the space/cost Pareto set of Figure 10. *)

exception Too_large of float
(** Raised by {!search} when the state count exceeds [max_states]. *)

type result = {
  best : Vis_costmodel.Config.t;
  best_cost : float;
  states : int;  (** configurations whose total cost was computed *)
  view_states : int;  (** view subsets enumerated *)
  search_stats : Search_stats.t;  (** enumeration counters and timing *)
}

(** [count_states p] is the number of (view set, index set) states the
    exhaustive algorithm visits, as a float (it can be astronomically
    large). *)
val count_states : Problem.t -> float

(** [search ?jobs ?max_states p] enumerates everything (default cap:
    2,000,000 states), sharding the state space over the worker pool
    (default width {!Vis_util.Parallel.default_jobs}).

    The sharding follows the contract documented in {!Vis_util.Parallel}:
    the state space is cut into ~64 contiguous ranges of the sequential
    enumeration order (never crossing a view-subset boundary, so each shard
    costs one eligible-index universe, delta-walking consecutive packed
    states), and the cut points depend only on the problem — never on
    [jobs].  Shards share a lock-free incumbent bound; ties against the
    bound are kept and the shard results are merged by (cost, sequential
    position), so the configuration returned — and every counter — is
    identical to a sequential run at any [jobs] setting.  Per-shard state
    counts are recorded as one exchange round, feeding
    {!Search_stats.modeled_speedup}. *)
val search : ?jobs:int -> ?max_states:int -> Problem.t -> result

(** [enumerate p ~f] calls [f config ~cost ~space] for every state and
    returns the number of states. *)
val enumerate :
  Problem.t -> f:(Vis_costmodel.Config.t -> cost:float -> space:float -> unit) -> int

(** [best_indexes_for_views p views] fixes the view set and searches only the
    index subsets; returns the best configuration, its cost, and the number
    of index states tried. *)
val best_indexes_for_views :
  Problem.t -> Vis_util.Bitset.t list -> Vis_costmodel.Config.t * float * int

(** [worst_indexes_for_views p views] — the {e maximum} cost over index
    subsets, used for the cost ranges of Figure 4. *)
val worst_indexes_for_views :
  Problem.t -> Vis_util.Bitset.t list -> Vis_costmodel.Config.t * float * int

(** [per_view_set p] lists every view subset with its best and worst total
    cost over index subsets, sorted by best cost (Figure 4's bars). *)
val per_view_set :
  Problem.t -> (Vis_util.Bitset.t list * float * float) list
