(** Instrumentation shared by every search algorithm (A* of Section 4, the
    exhaustive baseline of Section 2, and the greedy / local-search
    heuristics of the conclusion's "limited search" direction).

    A value of {!t} is a mutable scoreboard the algorithm writes while it
    runs: states expanded and generated, full cost evaluations requested,
    the largest frontier held, per-rule pruning counts (Table 2's
    pruning-effectiveness data), heuristic admissibility checks (the popped
    [ĉ] sequence of an admissible A* must be non-decreasing), and wall
    times per phase.  The scoreboard renders as human tables
    ({!Vis_util.Tableprint}) and as machine-readable JSON
    ({!Vis_util.Json}), so both [visadvisor --stats] and [BENCH_vis.json]
    are fed from the same counters. *)

type t

(** [create ~algorithm ()] is a zeroed scoreboard; [algorithm] names the
    search in reports (e.g. ["astar"]). *)
val create : algorithm:string -> unit -> t

val algorithm : t -> string

(** {1 Counters} *)

(** A state was taken from the frontier and branched on. *)
val expand : t -> unit

(** A successor state was constructed and kept. *)
val generate : t -> unit

(** A full cost-model evaluation ([Cost.total]) was requested. *)
val evaluate : t -> unit

val expanded : t -> int

val generated : t -> int

val evaluated : t -> int

(** Bulk counterparts of {!expand}/{!generate}/{!evaluate}: sharded
    algorithms count states per shard and charge the totals once from the
    coordinating domain, so counter totals match a sequential run exactly
    and the scoreboard itself needs no synchronization. *)

val add_expanded : t -> int -> unit

val add_generated : t -> int -> unit

val add_evaluated : t -> int -> unit

(** [prune ?count t rule] charges [count] (default 1) discarded states to
    the named pruning rule, e.g. ["incumbent-bound"] or ["dominance"]. *)
val prune : ?count:int -> t -> string -> unit

(** [pruned t rule] is that rule's count so far (0 if never charged). *)
val pruned : t -> string -> int

(** Per-rule pruning counts, sorted by rule name. *)
val pruning_counts : t -> (string * int) list

(** [observe_frontier t n] records the frontier size after a mutation;
    the maximum observed is reported. *)
val observe_frontier : t -> int -> unit

val max_frontier : t -> int

(** [admissibility_check t ~violated] records one runtime check of the
    heuristic's admissibility invariant.  Violations indicate a bug in the
    lower bound (the paper's uncorrected [ĥ] would trip this; see
    DESIGN.md). *)
val admissibility_check : t -> violated:bool -> unit

val admissibility_checks : t -> int

val admissibility_violations : t -> int

(** {1 Parallel-run accounting} *)

(** [set_parallel t ~jobs ~work] records the worker-pool shape of the run:
    [jobs] worker slots and [work.(slot)] chunks executed per slot (slot 0
    is the coordinating domain; see {!Vis_util.Parallel.work_counts}). *)
val set_parallel : t -> jobs:int -> work:int array -> unit

(** Worker slots of the recorded parallel run; [0] when the search ran
    without recording parallelism. *)
val parallel_jobs : t -> int

(** Chunks executed per worker slot (a copy; empty when unrecorded). *)
val domain_work : t -> int array

(** {2 Exchange rounds}

    The sharded searches submit one pool batch per incumbent-exchange round
    (see the sharding contract in {!Vis_util.Parallel}).  Each round's exact
    per-task work counts — cost evaluations, a deterministic counter — are
    recorded here, so a machine-independent speedup figure can be derived
    even when the host cannot run domains in parallel. *)

(** [record_round t tasks] records one exchange round; [tasks.(i)] is the
    work (cost evaluations) task [i] of the batch performed.  Empty batches
    are ignored.  Shard boundaries are jobs-independent, so the recorded
    sequence is identical at any pool width. *)
val record_round : t -> int array -> unit

(** The recorded rounds, in submission order (copies). *)
val rounds : t -> int array list

val round_count : t -> int

(** Total work units across all recorded rounds. *)
val round_work : t -> int

(** [modeled_speedup t ~jobs] is total work / Σ per-round makespan under
    {!Vis_util.Parallel.simulate_schedule} — the speedup of the round phase
    that [jobs] equally-fast workers can approach, with a barrier after
    every round.  [None] when no rounds were recorded.  A pure function of
    deterministic counters: identical on every machine and at every actual
    pool width, which is what the benchmark's parallel-scaling study and
    the CI perf gate guard. *)
val modeled_speedup : t -> jobs:int -> float option

(** Load balance of the sharded phases, [total / (slots * max)] in (0, 1]:
    1.0 means perfectly even work distribution.  [None] when the run was
    sequential or no parallel work was recorded.  This bounds achievable
    parallel efficiency from above; wall-clock speedup is additionally
    capped by the sequential sections (Amdahl). *)
val work_balance : t -> float option

(** {1 Phases} *)

(** [time t phase f] runs [f ()] and adds its elapsed wall-clock time to
    [phase]'s accumulator (wall clock, not CPU time, so parallel phases are
    not over-reported by the number of domains).  Nested or repeated phases
    accumulate; first-use order is preserved in reports. *)
val time : t -> string -> (unit -> 'a) -> 'a

(** Accumulated seconds per phase, in first-use order. *)
val phase_timings : t -> (string * float) list

(** {1 Reports} *)

(** Two tables: the counters, and the per-rule pruning counts with the
    per-phase timings. *)
val render : t -> string

val to_json : t -> Vis_util.Json.t
