(** Human-readable explanation of a physical design: for every maintained
    element and every delta type, the update path the optimizer would
    execute and its cost breakdown — the report a warehouse administrator
    reads to understand {e why} a configuration wins.  Used by the CLI's
    [explain] subcommand and the examples. *)

type line = {
  l_element : string;  (** the maintained element, e.g. "V" or "SσT" *)
  l_delta : string;  (** e.g. "ΔR", "∇S", "μT" *)
  l_plan : string;  (** rendered update path or locate method *)
  l_eval : float;
  l_apply : float;
  l_save : float;
  l_index : float;
  l_total : float;
}

type report = {
  r_config : string;
  r_total : float;
  r_space : float;  (** additional pages the design occupies *)
  r_lines : line list;  (** nonzero-cost propagations, by element *)
}

(** [explain p config] evaluates every propagation under [config]. *)
val explain : Problem.t -> Vis_costmodel.Config.t -> report

(** [render report] formats the report as an ASCII table with totals. *)
val render : report -> string

(** [report_json report] is the machine-readable form of the same report:
    the configuration, its total cost and space, and every propagation line
    with its plan and cost components — consumed by [visadvisor --json]. *)
val report_json : report -> Vis_util.Json.t

(** [compare_designs p configs] renders a side-by-side cost summary of
    several named designs (total, space, and the per-element subtotals). *)
val compare_designs : Problem.t -> (string * Vis_costmodel.Config.t) list -> string
