module T = Vis_util.Tableprint
module Json = Vis_util.Json

type t = {
  algo : string;
  mutable expanded : int;
  mutable generated : int;
  mutable evaluated : int;
  mutable max_frontier : int;
  mutable adm_checks : int;
  mutable adm_violations : int;
  pruning : (string, int) Hashtbl.t;
  phases : (string, float) Hashtbl.t;
  mutable phase_order : string list;  (* reversed first-use order *)
}

let create ~algorithm () =
  {
    algo = algorithm;
    expanded = 0;
    generated = 0;
    evaluated = 0;
    max_frontier = 0;
    adm_checks = 0;
    adm_violations = 0;
    pruning = Hashtbl.create 8;
    phases = Hashtbl.create 8;
    phase_order = [];
  }

let algorithm t = t.algo

let expand t = t.expanded <- t.expanded + 1

let generate t = t.generated <- t.generated + 1

let evaluate t = t.evaluated <- t.evaluated + 1

let expanded t = t.expanded

let generated t = t.generated

let evaluated t = t.evaluated

let prune ?(count = 1) t rule =
  let current = Option.value ~default:0 (Hashtbl.find_opt t.pruning rule) in
  Hashtbl.replace t.pruning rule (current + count)

let pruned t rule = Option.value ~default:0 (Hashtbl.find_opt t.pruning rule)

let pruning_counts t =
  Hashtbl.fold (fun rule count acc -> (rule, count) :: acc) t.pruning []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let observe_frontier t n = if n > t.max_frontier then t.max_frontier <- n

let max_frontier t = t.max_frontier

let admissibility_check t ~violated =
  t.adm_checks <- t.adm_checks + 1;
  if violated then t.adm_violations <- t.adm_violations + 1

let admissibility_checks t = t.adm_checks

let admissibility_violations t = t.adm_violations

let now = Sys.time

let time t phase f =
  if not (Hashtbl.mem t.phases phase) then begin
    Hashtbl.replace t.phases phase 0.;
    t.phase_order <- phase :: t.phase_order
  end;
  let started = now () in
  Fun.protect
    ~finally:(fun () ->
      let elapsed = now () -. started in
      Hashtbl.replace t.phases phase (Hashtbl.find t.phases phase +. elapsed))
    f

let phase_timings t =
  List.rev_map (fun phase -> (phase, Hashtbl.find t.phases phase)) t.phase_order

let render t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "search statistics (%s)\n" t.algo);
  let counters = T.create [ "counter"; "value" ] in
  List.iter
    (fun (name, v) -> T.add_row counters [ name; string_of_int v ])
    [
      ("states expanded", t.expanded);
      ("states generated", t.generated);
      ("cost evaluations", t.evaluated);
      ("max frontier", t.max_frontier);
      ("admissibility checks", t.adm_checks);
      ("admissibility violations", t.adm_violations);
    ];
  Buffer.add_string buf (T.render counters);
  (match pruning_counts t with
  | [] -> ()
  | rules ->
      let tbl = T.create [ "pruning rule"; "states cut" ] in
      List.iter (fun (rule, n) -> T.add_row tbl [ rule; string_of_int n ]) rules;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (T.render tbl));
  (match phase_timings t with
  | [] -> ()
  | phases ->
      let tbl = T.create [ "phase"; "seconds" ] in
      List.iter
        (fun (phase, s) -> T.add_row tbl [ phase; Printf.sprintf "%.4f" s ])
        phases;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (T.render tbl));
  Buffer.contents buf

let to_json t =
  Json.Obj
    [
      ("algorithm", Json.String t.algo);
      ("expanded", Json.Int t.expanded);
      ("generated", Json.Int t.generated);
      ("cost_evaluations", Json.Int t.evaluated);
      ("max_frontier", Json.Int t.max_frontier);
      ("admissibility_checks", Json.Int t.adm_checks);
      ("admissibility_violations", Json.Int t.adm_violations);
      ( "pruning",
        Json.Obj
          (List.map (fun (rule, n) -> (rule, Json.Int n)) (pruning_counts t)) );
      ( "phases_seconds",
        Json.Obj
          (List.map (fun (phase, s) -> (phase, Json.Float s)) (phase_timings t))
      );
    ]
