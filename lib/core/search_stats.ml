module T = Vis_util.Tableprint
module Json = Vis_util.Json

type t = {
  algo : string;
  mutable expanded : int;
  mutable generated : int;
  mutable evaluated : int;
  mutable max_frontier : int;
  mutable adm_checks : int;
  mutable adm_violations : int;
  pruning : (string, int) Hashtbl.t;
  phases : (string, float) Hashtbl.t;
  mutable phase_order : string list;  (* reversed first-use order *)
  mutable jobs : int;  (* worker slots of the parallel run; 0 = unrecorded *)
  mutable domain_work : int array;  (* chunks executed per worker slot *)
  mutable rounds : int array list;  (* per exchange round, work per task; newest first *)
}

let create ~algorithm () =
  {
    algo = algorithm;
    expanded = 0;
    generated = 0;
    evaluated = 0;
    max_frontier = 0;
    adm_checks = 0;
    adm_violations = 0;
    pruning = Hashtbl.create 8;
    phases = Hashtbl.create 8;
    phase_order = [];
    jobs = 0;
    domain_work = [||];
    rounds = [];
  }

let algorithm t = t.algo

let expand t = t.expanded <- t.expanded + 1

let generate t = t.generated <- t.generated + 1

let evaluate t = t.evaluated <- t.evaluated + 1

(* Bulk increments: sharded algorithms count states per shard and charge the
   totals once, so the scoreboard only ever mutates on the coordinating
   domain and totals match a sequential run exactly. *)

let add_expanded t n = t.expanded <- t.expanded + n

let add_generated t n = t.generated <- t.generated + n

let add_evaluated t n = t.evaluated <- t.evaluated + n

let expanded t = t.expanded

let generated t = t.generated

let evaluated t = t.evaluated

let prune ?(count = 1) t rule =
  let current = Option.value ~default:0 (Hashtbl.find_opt t.pruning rule) in
  Hashtbl.replace t.pruning rule (current + count)

let pruned t rule = Option.value ~default:0 (Hashtbl.find_opt t.pruning rule)

let pruning_counts t =
  Hashtbl.fold (fun rule count acc -> (rule, count) :: acc) t.pruning []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let observe_frontier t n = if n > t.max_frontier then t.max_frontier <- n

let max_frontier t = t.max_frontier

let admissibility_check t ~violated =
  t.adm_checks <- t.adm_checks + 1;
  if violated then t.adm_violations <- t.adm_violations + 1

let admissibility_checks t = t.adm_checks

let admissibility_violations t = t.adm_violations

(* ------------------------------------------------------------------ *)
(* Parallel-run accounting. *)

let set_parallel t ~jobs ~work =
  t.jobs <- jobs;
  t.domain_work <- Array.copy work

(* Exchange-round accounting for the sharded searches: one entry per
   parallel batch, holding the exact work units (cost evaluations) each
   task of that batch performed.  The shard boundaries are jobs-independent,
   so the recorded rounds are identical at any pool width — they are the
   input to the machine-independent speedup model below. *)

let record_round t tasks =
  if Array.length tasks > 0 then t.rounds <- Array.copy tasks :: t.rounds

let rounds t = List.rev_map Array.copy t.rounds

let round_count t = List.length t.rounds

let round_work t =
  List.fold_left
    (fun acc tasks -> Array.fold_left ( + ) acc tasks)
    0 t.rounds

(* Speedup the recorded rounds admit on [jobs] equally-fast workers under
   the pool's claim-in-order schedule, with a barrier after every round:
   total work / Σ per-round makespan.  Purely a function of deterministic
   counters — the figure a multicore host can approach, computable even on
   a single-core machine. *)
let modeled_speedup t ~jobs =
  if jobs < 1 || t.rounds = [] then None
  else begin
    let total = ref 0 and span = ref 0 in
    List.iter
      (fun tasks ->
        Array.iter (fun w -> total := !total + w) tasks;
        span := !span + Vis_util.Parallel.simulate_schedule ~jobs tasks)
      t.rounds;
    if !span <= 0 then None
    else Some (float_of_int !total /. float_of_int !span)
  end

let parallel_jobs t = t.jobs

let domain_work t = Array.copy t.domain_work

(* Load balance of the sharded phases: 1.0 means every worker slot executed
   the same number of chunks; total/(slots*max) < 1 measures the idle tail.
   This is an upper bound on achievable parallel efficiency — wall-clock
   speedup is additionally capped by the sequential sections. *)
let work_balance t =
  if t.jobs <= 1 || Array.length t.domain_work = 0 then None
  else begin
    let total = Array.fold_left ( + ) 0 t.domain_work in
    let peak = Array.fold_left max 0 t.domain_work in
    if total = 0 || peak = 0 then None
    else
      Some
        (float_of_int total
        /. (float_of_int (Array.length t.domain_work) *. float_of_int peak))
  end

(* Wall-clock time.  [Sys.time] counts CPU seconds summed over every
   domain, which would over-report parallel phases by up to the number of
   workers; [Unix.gettimeofday] measures elapsed time. *)
let now = Unix.gettimeofday

let time t phase f =
  if not (Hashtbl.mem t.phases phase) then begin
    Hashtbl.replace t.phases phase 0.;
    t.phase_order <- phase :: t.phase_order
  end;
  let started = now () in
  Fun.protect
    ~finally:(fun () ->
      let elapsed = now () -. started in
      Hashtbl.replace t.phases phase (Hashtbl.find t.phases phase +. elapsed))
    f

let phase_timings t =
  List.rev_map (fun phase -> (phase, Hashtbl.find t.phases phase)) t.phase_order

let render t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "search statistics (%s)\n" t.algo);
  let counters = T.create [ "counter"; "value" ] in
  List.iter
    (fun (name, v) -> T.add_row counters [ name; string_of_int v ])
    [
      ("states expanded", t.expanded);
      ("states generated", t.generated);
      ("cost evaluations", t.evaluated);
      ("max frontier", t.max_frontier);
      ("admissibility checks", t.adm_checks);
      ("admissibility violations", t.adm_violations);
    ];
  Buffer.add_string buf (T.render counters);
  (match pruning_counts t with
  | [] -> ()
  | rules ->
      let tbl = T.create [ "pruning rule"; "states cut" ] in
      List.iter (fun (rule, n) -> T.add_row tbl [ rule; string_of_int n ]) rules;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (T.render tbl));
  (match phase_timings t with
  | [] -> ()
  | phases ->
      let tbl = T.create [ "phase"; "seconds" ] in
      List.iter
        (fun (phase, s) -> T.add_row tbl [ phase; Printf.sprintf "%.4f" s ])
        phases;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (T.render tbl));
  if t.rounds <> [] then begin
    let tbl = T.create [ "sharded search"; "value" ] in
    T.add_row tbl [ "exchange rounds"; string_of_int (round_count t) ];
    T.add_row tbl [ "round work units"; string_of_int (round_work t) ];
    List.iter
      (fun jobs ->
        match modeled_speedup t ~jobs with
        | Some s ->
            T.add_row tbl
              [
                Printf.sprintf "modeled speedup @%d workers" jobs;
                Printf.sprintf "%.2fx" s;
              ]
        | None -> ())
      [ 2; 4; 8 ];
    Buffer.add_char buf '\n';
    Buffer.add_string buf (T.render tbl)
  end;
  if t.jobs > 0 then begin
    let tbl = T.create [ "parallelism"; "value" ] in
    T.add_row tbl [ "worker slots"; string_of_int t.jobs ];
    Array.iteri
      (fun slot chunks ->
        T.add_row tbl
          [
            (if slot = 0 then "domain 0 (coordinator) chunks"
             else Printf.sprintf "domain %d chunks" slot);
            string_of_int chunks;
          ])
      t.domain_work;
    (match work_balance t with
    | Some b -> T.add_row tbl [ "work balance"; Printf.sprintf "%.2f" b ]
    | None -> ());
    Buffer.add_char buf '\n';
    Buffer.add_string buf (T.render tbl)
  end;
  Buffer.contents buf

let to_json t =
  Json.Obj
    [
      ("algorithm", Json.String t.algo);
      ("expanded", Json.Int t.expanded);
      ("generated", Json.Int t.generated);
      ("cost_evaluations", Json.Int t.evaluated);
      ("max_frontier", Json.Int t.max_frontier);
      ("admissibility_checks", Json.Int t.adm_checks);
      ("admissibility_violations", Json.Int t.adm_violations);
      ( "pruning",
        Json.Obj
          (List.map (fun (rule, n) -> (rule, Json.Int n)) (pruning_counts t)) );
      ( "phases_seconds",
        Json.Obj
          (List.map (fun (phase, s) -> (phase, Json.Float s)) (phase_timings t))
      );
      ( "sharded_rounds",
        if t.rounds = [] then Json.Null
        else
          Json.Obj
            [
              ("rounds", Json.Int (round_count t));
              ("work_units", Json.Int (round_work t));
              ( "modeled_speedup",
                Json.Obj
                  (List.filter_map
                     (fun jobs ->
                       match modeled_speedup t ~jobs with
                       | Some s ->
                           Some (string_of_int jobs, Json.Float s)
                       | None -> None)
                     [ 2; 4; 8 ]) );
            ] );
      ( "parallel",
        if t.jobs = 0 then Json.Null
        else
          Json.Obj
            [
              ("jobs", Json.Int t.jobs);
              ( "domain_work",
                Json.List
                  (Array.to_list (Array.map (fun n -> Json.Int n) t.domain_work))
              );
              ( "work_balance",
                match work_balance t with
                | Some b -> Json.Float b
                | None -> Json.Null );
            ] );
    ]
