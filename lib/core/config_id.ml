module Bitset = Vis_util.Bitset
module Element = Vis_costmodel.Element
module Config = Vis_costmodel.Config
module Cost = Vis_costmodel.Cost

type t = {
  problem : Problem.t;
  enc : Cost.encoding;
  features : Config.feature array;
  view_bits : int;  (* mask of the bits that are supporting views *)
  closure : int array;
      (* closure.(b): every bit that must be dropped together with [b] — the
         bit itself, plus, for a view, the bits of its indexes *)
  requires : int array;
      (* requires.(b): bits that must be present for [b] to be applicable —
         the view bit for an index on a candidate view, else 0 *)
}

let of_problem (p : Problem.t) =
  match p.Problem.encoding with
  | None -> None
  | Some enc ->
      let features = Cost.encoding_features enc in
      let n = Array.length features in
      let bit_of_view = Hashtbl.create 16 in
      let view_bits = ref 0 in
      Array.iteri
        (fun b f ->
          match f with
          | Config.F_view w ->
              Hashtbl.replace bit_of_view (Bitset.to_int w) b;
              view_bits := !view_bits lor (1 lsl b)
          | Config.F_index _ | Config.F_compress _ -> ())
        features;
      let owner_bit f =
        match f with
        (* Compression only targets always-materialized elements, so like
           base/primary indexes it has no owning view bit. *)
        | Config.F_view _ | Config.F_compress _ -> None
        | Config.F_index ix -> (
            match ix.Element.ix_elem with
            | Element.Base _ -> None
            | Element.View w -> Hashtbl.find_opt bit_of_view (Bitset.to_int w))
      in
      let closure = Array.init n (fun b -> 1 lsl b) in
      let requires = Array.make n 0 in
      Array.iteri
        (fun b f ->
          match owner_bit f with
          | Some vb ->
              closure.(vb) <- closure.(vb) lor (1 lsl b);
              requires.(b) <- 1 lsl vb
          | None -> ())
        features;
      Some { problem = p; enc; features; view_bits = !view_bits; closure; requires }

let problem t = t.problem

let encoding t = t.enc

let n_features t = Array.length t.features

let feature t b = t.features.(b)

let bit_of_feature t f = Cost.feature_bit t.enc f

let mask_of_config t c = Cost.mask_of_config t.enc c

let config_of_mask t m = Cost.config_of_mask t.enc m

let universe t = (1 lsl Array.length t.features) - 1

let view_bits t = t.view_bits

let subset a b = a land lnot b = 0

let has_feature _t mask b = mask land (1 lsl b) <> 0

let has_view t mask w =
  match Cost.view_feature_bit t.enc w with
  | Some b -> mask land (1 lsl b) <> 0
  | None -> false

let applicable t mask b = subset t.requires.(b) mask

let add _t mask b = mask lor (1 lsl b)

let drop t mask b = mask land lnot t.closure.(b)

let closure t b = t.closure.(b)

let requires t b = t.requires.(b)

let evaluator t mask =
  Cost.create_masked ~cache:t.problem.Problem.cache t.problem.Problem.derived
    t.enc mask

let eval t mask =
  Cost.eval_mask ~cache:t.problem.Problem.cache t.problem.Problem.derived
    t.enc mask

let eval_from t parent mask =
  Cost.eval_delta ~cache:t.problem.Problem.cache t.problem.Problem.derived
    parent mask
