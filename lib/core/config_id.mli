(** Packed configuration identities for one problem.

    When a problem's candidate features fit in 62 bits (every paper schema
    does, by orders of magnitude), each configuration is a single [int]
    mask: bit [b] set iff feature [b] of the problem's universe is chosen.
    Subset, dominance, and frontier-dedup tests become single-word bit
    operations, and successor costing goes through the incremental
    delta-evaluator ({!Vis_costmodel.Cost.eval_delta}) instead of
    re-deriving the whole plan.

    [of_problem] returns [None] when the problem carries no encoding —
    more than 62 features, the [slow_cost] escape hatch, or the no-sharing
    ablation — and searches fall back to their structural paths.  Both
    paths are bit-identical in chosen optima and costs. *)

type t

val of_problem : Problem.t -> t option

val problem : t -> Problem.t

val encoding : t -> Vis_costmodel.Cost.encoding

val n_features : t -> int

(** The feature behind bit [b] (order = [Problem.features]). *)
val feature : t -> int -> Problem.feature

val bit_of_feature : t -> Problem.feature -> int option

(** [None] when the configuration uses a feature outside the universe. *)
val mask_of_config : t -> Vis_costmodel.Config.t -> int option

(** Decode to the canonical symbolic configuration. *)
val config_of_mask : t -> int -> Vis_costmodel.Config.t

(** The mask with every feature chosen. *)
val universe : t -> int

(** The mask of bits that are supporting views. *)
val view_bits : t -> int

(** [subset a b] — is configuration [a] contained in [b]?  One AND. *)
val subset : int -> int -> bool

val has_feature : t -> int -> int -> bool

val has_view : t -> int -> Vis_util.Bitset.t -> bool

(** [applicable t mask b]: can feature [b] be added to [mask]?  (An index
    on a candidate view requires the view to be materialized.) *)
val applicable : t -> int -> int -> bool

val add : t -> int -> int -> int

(** [drop t mask b] removes feature [b] {e and its closure}: dropping a
    view also drops the indexes built on it. *)
val drop : t -> int -> int -> int

(** The bits removed by [drop _ _ b]: [b] plus, for a view, its indexes. *)
val closure : t -> int -> int

(** The bits required for [b] to be applicable ([0] or one view bit). *)
val requires : t -> int -> int

(** A cost evaluator over the packed configuration, sharing the problem's
    memo cache ({!Problem.evaluator} for masks). *)
val evaluator : t -> int -> Vis_costmodel.Cost.t

(** Cost a configuration from scratch. *)
val eval : t -> int -> Vis_costmodel.Cost.ieval

(** Cost a configuration incrementally from a neighbour's evaluation. *)
val eval_from :
  t -> Vis_costmodel.Cost.ieval -> int -> Vis_costmodel.Cost.ieval
