(** A greedy heuristic for the VIS problem — the "limited search" direction
    the paper's conclusion proposes for future work, included here as an
    ablation baseline against A*.

    Starting from the empty configuration, repeatedly add the single feature
    (supporting view or index) whose materialization lowers the total
    maintenance cost the most; stop when no feature helps.  Runs in
    O(features² · cost evaluations) and is not optimal in general. *)

type step = {
  s_feature : Problem.feature;
  s_cost_after : float;  (** total cost once the feature is added *)
}

type result = {
  best : Vis_costmodel.Config.t;
  best_cost : float;
  steps : step list;  (** in the order chosen *)
  evaluations : int;  (** configurations costed *)
  search_stats : Search_stats.t;
      (** rounds (expanded), candidates costed (generated), space-budget
          pruning counts and timing *)
}

(** [search ?jobs ?pool ?space_budget p] runs the greedy loop; with
    [space_budget] only features that keep the configuration within the
    given page budget are considered (used by the space-constrained
    experiments).

    Each round's candidate configurations are costed in parallel on [jobs]
    domains (default {!Vis_util.Parallel.default_jobs}), or on a borrowed
    [pool] (e.g. A* lending its workers to the greedy seed).  The chosen
    features, costs and counters are identical at every [jobs] setting: the
    candidate scores are pure and the selection replays them
    sequentially. *)
val search :
  ?jobs:int ->
  ?pool:Vis_util.Parallel.pool ->
  ?space_budget:float ->
  Problem.t ->
  result
