module Bitset = Vis_util.Bitset
module Schema = Vis_catalog.Schema
module Element = Vis_costmodel.Element
module Config = Vis_costmodel.Config

type step = { s_feature : Problem.feature; s_cost_after : float }

type result = {
  best : Config.t;
  best_cost : float;
  steps : step list;
  evaluations : int;
  search_stats : Search_stats.t;
}

let feature_in_config config = function
  | Problem.F_view w -> Config.has_view config w
  | Problem.F_index ix ->
      Config.has_index config ix.Element.ix_elem ix.Element.ix_attr

let feature_applicable p config = function
  | Problem.F_view _ -> true
  | Problem.F_index ix -> (
      match ix.Element.ix_elem with
      | Element.Base _ -> true
      | Element.View w ->
          Bitset.equal w (Schema.all_relations p.Problem.schema)
          || Config.has_view config w)

let apply config = function
  | Problem.F_view w -> Config.add_view config w
  | Problem.F_index ix -> Config.add_index config ix

let search ?space_budget p =
  let sstats = Search_stats.create ~algorithm:"greedy" () in
  let evaluations = ref 0 in
  let cost config =
    incr evaluations;
    Search_stats.evaluate sstats;
    Problem.total p config
  in
  let within_budget config =
    match space_budget with
    | None -> true
    | Some b -> Config.space p.Problem.derived config <= b
  in
  let rec loop config current steps =
    Search_stats.expand sstats;
    let candidates =
      List.filter
        (fun f ->
          (not (feature_in_config config f)) && feature_applicable p config f)
        p.Problem.features
    in
    Search_stats.observe_frontier sstats (List.length candidates);
    let best =
      List.fold_left
        (fun acc f ->
          let config' = apply config f in
          if not (within_budget config') then begin
            Search_stats.prune sstats "space-budget";
            acc
          end
          else begin
            Search_stats.generate sstats;
            let c = cost config' in
            match acc with
            | Some (_, _, best_c) when best_c <= c -> acc
            | _ when c < current -> Some (f, config', c)
            | _ -> acc
          end)
        None candidates
    in
    match best with
    | None ->
        {
          best = config;
          best_cost = current;
          steps = List.rev steps;
          evaluations = !evaluations;
          search_stats = sstats;
        }
    | Some (f, config', c) ->
        loop config' c ({ s_feature = f; s_cost_after = c } :: steps)
  in
  Search_stats.time sstats "search" (fun () ->
      Search_stats.generate sstats;
      (* the empty start configuration *)
      loop Config.empty (cost Config.empty) [])
