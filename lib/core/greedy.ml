module Bitset = Vis_util.Bitset
module Parallel = Vis_util.Parallel
module Schema = Vis_catalog.Schema
module Element = Vis_costmodel.Element
module Config = Vis_costmodel.Config

type step = { s_feature : Problem.feature; s_cost_after : float }

type result = {
  best : Config.t;
  best_cost : float;
  steps : step list;
  evaluations : int;
  search_stats : Search_stats.t;
}

let feature_in_config config = function
  | Problem.F_view w -> Config.has_view config w
  | Problem.F_index ix ->
      Config.has_index config ix.Element.ix_elem ix.Element.ix_attr
  | Problem.F_compress e -> Config.has_compress config e

let feature_applicable p config = function
  | Problem.F_view _ -> true
  | Problem.F_index ix -> (
      match ix.Element.ix_elem with
      | Element.Base _ -> true
      | Element.View w ->
          Bitset.equal w (Schema.all_relations p.Problem.schema)
          || Config.has_view config w)
  (* Compression candidates are always-materialized elements. *)
  | Problem.F_compress _ -> true

let apply config = function
  | Problem.F_view w -> Config.add_view config w
  | Problem.F_index ix -> Config.add_index config ix
  | Problem.F_compress e -> Config.add_compress config e

let search_with_pool ~pool ?space_budget p =
  let sstats = Search_stats.create ~algorithm:"greedy" () in
  let evaluations = ref 0 in
  let cost config =
    incr evaluations;
    Search_stats.evaluate sstats;
    Problem.total p config
  in
  let within_budget config =
    match space_budget with
    | None -> true
    | Some b -> Config.space p.Problem.derived config <= b
  in
  (* Packed path: states are feature masks, successors are costed
     incrementally from the current state's per-element evaluation.
     Candidate bits ascend in [Problem.features] order and every counter
     bump mirrors the structural loop below, so steps, counters, and the
     chosen configuration are bit-identical. *)
  let rec packed_loop cid mask ieval current steps =
    Search_stats.expand sstats;
    let n = Config_id.n_features cid in
    let candidates = ref [] in
    for b = n - 1 downto 0 do
      if
        (not (Config_id.has_feature cid mask b))
        && Config_id.applicable cid mask b
      then candidates := b :: !candidates
    done;
    let candidates = !candidates in
    Search_stats.observe_frontier sstats (List.length candidates);
    let arr = Array.of_list candidates in
    let score b =
      let mask' = Config_id.add cid mask b in
      let ok =
        match space_budget with
        | None -> true
        | Some _ -> within_budget (Config_id.config_of_mask cid mask')
      in
      if not ok then None
      else begin
        let ie = Config_id.eval_from cid ieval mask' in
        Some (mask', ie, Vis_costmodel.Cost.ieval_total ie)
      end
    in
    let entries =
      if Parallel.jobs pool > 1 && Array.length arr > 1 then
        Parallel.map_array pool score arr
      else Array.map score arr
    in
    let best = ref None in
    Array.iteri
      (fun i b ->
        match entries.(i) with
        | None -> Search_stats.prune sstats "space-budget"
        | Some (mask', ie, c) ->
            Search_stats.generate sstats;
            incr evaluations;
            Search_stats.evaluate sstats;
            (match !best with
            | Some (_, _, _, best_c) when best_c <= c -> ()
            | _ when c < current -> best := Some (b, mask', ie, c)
            | _ -> ()))
      arr;
    match !best with
    | None ->
        {
          best = Config_id.config_of_mask cid mask;
          best_cost = current;
          steps = List.rev steps;
          evaluations = !evaluations;
          search_stats = sstats;
        }
    | Some (b, mask', ie, c) ->
        packed_loop cid mask' ie c
          ({ s_feature = Config_id.feature cid b; s_cost_after = c } :: steps)
  in
  (* Cost the candidate in a worker; the budget check and the evaluation are
     pure, so the entries are identical at any [jobs] setting. *)
  let score config f =
    let config' = apply config f in
    if not (within_budget config') then None
    else Some (config', Problem.total p config')
  in
  let rec loop config current steps =
    Search_stats.expand sstats;
    let candidates =
      List.filter
        (fun f ->
          (not (feature_in_config config f)) && feature_applicable p config f)
        p.Problem.features
    in
    Search_stats.observe_frontier sstats (List.length candidates);
    let arr = Array.of_list candidates in
    let entries =
      if Parallel.jobs pool > 1 && Array.length arr > 1 then
        Parallel.map_array pool (score config) arr
      else Array.map (score config) arr
    in
    (* Sequential replay over the precomputed entries: same accumulator
       semantics and same counter sequence as the all-sequential version. *)
    let best = ref None in
    Array.iteri
      (fun i f ->
        match entries.(i) with
        | None -> Search_stats.prune sstats "space-budget"
        | Some (config', c) ->
            Search_stats.generate sstats;
            incr evaluations;
            Search_stats.evaluate sstats;
            (match !best with
            | Some (_, _, best_c) when best_c <= c -> ()
            | _ when c < current -> best := Some (f, config', c)
            | _ -> ()))
      arr;
    match !best with
    | None ->
        {
          best = config;
          best_cost = current;
          steps = List.rev steps;
          evaluations = !evaluations;
          search_stats = sstats;
        }
    | Some (f, config', c) ->
        loop config' c ({ s_feature = f; s_cost_after = c } :: steps)
  in
  let before = Parallel.work_counts pool in
  Fun.protect
    ~finally:(fun () ->
      if Parallel.jobs pool > 1 then
        Search_stats.set_parallel sstats ~jobs:(Parallel.jobs pool)
          ~work:
            (Parallel.diff_counts ~before ~after:(Parallel.work_counts pool)))
    (fun () ->
      Search_stats.time sstats "search" (fun () ->
          Search_stats.generate sstats;
          (* the empty start configuration *)
          match Config_id.of_problem p with
          | Some cid ->
              let ie0 = Config_id.eval cid 0 in
              incr evaluations;
              Search_stats.evaluate sstats;
              packed_loop cid 0 ie0 (Vis_costmodel.Cost.ieval_total ie0) []
          | None -> loop Config.empty (cost Config.empty) []))

let search ?jobs ?pool ?space_budget p =
  Parallel.using ?jobs ?pool (fun pool -> search_with_pool ~pool ?space_budget p)
