module Bitset = Vis_util.Bitset
module Parallel = Vis_util.Parallel
module Pqueue = Vis_util.Pqueue
module Schema = Vis_catalog.Schema
module Element = Vis_costmodel.Element
module Config = Vis_costmodel.Config
module Cost = Vis_costmodel.Cost

type stats = { expanded : int; generated : int; exhaustive_states : float }

type result = {
  best : Config.t;
  best_cost : float;
  stats : stats;
  search_stats : Search_stats.t;
}

exception Budget_exceeded of stats

(* ------------------------------------------------------------------ *)
(* Per-problem precomputation.

   For every feature we know, independently of the search state:
   - [lb_cost]: a lower bound on its own maintenance in any completion (its
     cost with *every* candidate structure materialized, which is the
     richest plan space a completion can offer; for views, index maintenance
     is excluded because indexes carry their own cost);
   - [key_benefit]: the configuration-independent saving of a key index for
     locating deleted/updated tuples;
   - [affected]: the insertion expressions (target view, delta relation)
     whose evaluation the feature can make cheaper;
   - the full-configuration *floors* of every expression: no completion can
     push an evaluation below its cost with everything materialized.

   Features whose [lb_cost] exceeds their largest possible benefit (taken
   under the empty configuration, where evaluations are most expensive) can
   never reduce the total and are dropped outright — a sound dominance rule
   that shrinks the search space before A* starts. *)

type prep = {
  features : Problem.feature array;
  view_pos : (int, int) Hashtbl.t;  (* candidate view -> feature position *)
  lb_cost : float array;
  key_benefit : float array;
  affected : (int * int) list array;  (* (target index, delta relation) *)
  targets : Element.t array;  (* target 0 is the primary view *)
  target_view_pos : int array;  (* feature position of the target's view; -1 for the primary *)
  full_ins : float array array;  (* ins eval floor per [target][rel] *)
  full_del : float array array;  (* del eval+apply floor *)
  full_upd : float array array;
  full_base_del : float array;  (* per base relation *)
  full_base_upd : float array;
  dropped : Problem.feature list;  (* dominance-pruned features *)
}

let lb_view_cost full_eval w =
  let elem = Element.View w in
  Bitset.fold
    (fun r acc ->
      let pi, _ = Cost.prop_ins full_eval ~target:elem ~rel:r in
      let pd, _ = Cost.prop_del full_eval ~target:elem ~rel:r in
      let pu, _ = Cost.prop_upd full_eval ~target:elem ~rel:r in
      acc
      +. (pi.Cost.p_eval +. pi.Cost.p_apply +. pi.Cost.p_save)
      +. (pd.Cost.p_eval +. pd.Cost.p_apply)
      +. (pu.Cost.p_eval +. pu.Cost.p_apply))
    w 0.

(* Saving of a key index on [elem] for deletions and updates; it does not
   depend on what else is materialized.  With compression in the feature
   space the costs around the index can swing by the per-page factors, so
   the bound stretches to [cw·without − cf·with]; without compression
   [cf = cw = 1] and the formula is bitwise the original. *)
let key_index_benefit p ~cf ~cw ix =
  let elem = ix.Element.ix_elem in
  let r = ix.Element.ix_attr.Element.a_rel in
  let key = (Schema.relation p.Problem.schema r).Schema.key_attr in
  if ix.Element.ix_attr.Element.a_name <> key || not (Bitset.mem r (Element.rels elem))
  then 0.
  else begin
    let cost config =
      let eval = Problem.evaluator p config in
      let pd, _ = Cost.prop_del eval ~target:elem ~rel:r in
      let pu, _ = Cost.prop_upd eval ~target:elem ~rel:r in
      pd.Cost.p_eval +. pd.Cost.p_apply +. pu.Cost.p_eval +. pu.Cost.p_apply
    in
    let without = cost Config.empty in
    let with_ix = cost (Config.make ~views:[] ~indexes:[ ix ]) in
    Float.max 0. ((cw *. without) -. (cf *. with_ix))
  end

(* Insertion expressions the feature can make cheaper, as indices into
   [targets].  Membership is tracked in hash sets keyed [(target, rel)]:
   the original [List.mem] rescans made the accumulation quadratic on
   join-heavy schemas.  Each accumulator mirrors the prepend chain of the
   scan-based version, so list order and membership are unchanged. *)
let affected_triples p targets feature =
  let schema = p.Problem.schema in
  let fresh () = (Hashtbl.create 32, ref []) in
  let add ((seen, items) : ((int * int, unit) Hashtbl.t * _) ) key =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      items := key :: !items
    end
  in
  let triples_over ~must_contain ~strict ~delta_outside =
    let acc = fresh () in
    Array.iteri
      (fun ti elem ->
        let rels = Element.rels elem in
        let contains =
          if strict then Bitset.proper_subset must_contain rels
          else Bitset.subset must_contain rels
        in
        if contains then
          let srels = if delta_outside then Bitset.diff rels must_contain else rels in
          Bitset.iter (fun r -> add acc (ti, r)) srels)
      targets;
    !(snd acc)
  in
  match feature with
  | Problem.F_view w -> triples_over ~must_contain:w ~strict:true ~delta_outside:false
  (* Compression's benefit is bounded by a config-independent constant in
     [key_benefit]; it claims no per-state insertion gaps. *)
  | Problem.F_compress _ -> []
  | Problem.F_index ix ->
      let e_rels = Element.rels ix.Element.ix_elem in
      let attr = ix.Element.ix_attr in
      let acc = fresh () in
      List.iter
        (fun (j : Schema.join) ->
          let outside =
            if
              j.Schema.left_rel = attr.Element.a_rel
              && j.Schema.left_attr = attr.Element.a_name
              && not (Bitset.mem j.Schema.right_rel e_rels)
            then Some j.Schema.right_rel
            else if
              j.Schema.right_rel = attr.Element.a_rel
              && j.Schema.right_attr = attr.Element.a_name
              && not (Bitset.mem j.Schema.left_rel e_rels)
            then Some j.Schema.left_rel
            else None
          in
          match outside with
          | None -> ()
          | Some x ->
              List.iter (add acc)
                (triples_over
                   ~must_contain:(Bitset.add x e_rels)
                   ~strict:false ~delta_outside:false))
        schema.Schema.joins;
      (match ix.Element.ix_elem with
      | Element.Base i
        when List.mem attr.Element.a_name (Schema.selection_attrs schema i) ->
          List.iter (add acc)
            (triples_over ~must_contain:(Bitset.singleton i) ~strict:false
               ~delta_outside:true)
      | Element.Base _ | Element.View _ -> ());
      !(snd acc)

let ins_eval_of eval elem r =
  (fst (Cost.prop_ins eval ~target:elem ~rel:r)).Cost.p_eval

let delupd_of eval elem r =
  let pd, _ = Cost.prop_del eval ~target:elem ~rel:r in
  let pu, _ = Cost.prop_upd eval ~target:elem ~rel:r in
  ( pd.Cost.p_eval +. pd.Cost.p_apply,
    pu.Cost.p_eval +. pu.Cost.p_apply )

let prepare ~pool p =
  let schema = p.Problem.schema in
  let n_rels = Schema.n_relations schema in
  let full_config =
    Config.make ~views:p.Problem.candidate_views
      ~indexes:(Problem.indexes_for_views p p.Problem.candidate_views)
  in
  let full_eval = Problem.evaluator p full_config in
  (* Compression scaling of the bounds.  Every charging site's cost moves
     by a per-page factor in [cf, cw] under any compression assignment, so
     scaling a floor or a feature's own lower bound by [cf] (and a cost
     ceiling by [cw]) keeps it sound over the compressed completions too.
     Without compression candidates both factors are [1.] and every formula
     below is bitwise identical to the compression-free search. *)
  let has_compression = p.Problem.compress_elems <> [] in
  let cf = if has_compression then Cost.compress_read_factor else 1. in
  let cw = if has_compression then Cost.compress_write_factor else 1. in
  (* An [F_compress] maintains nothing of its own; its possible saving is
     bounded by the whole maintenance bill at its most expensive (the empty
     configuration, stretched by [cw]). *)
  let compress_benefit =
    if has_compression then cw *. Problem.total p Config.empty else 0.
  in
  let lb_of full_eval f =
    cf
    *.
    match f with
    | Problem.F_view w -> lb_view_cost full_eval w
    | Problem.F_index ix -> Cost.index_maint_cost full_eval ix
    | Problem.F_compress _ -> 0.
  in
  (* Per-feature precomputation fans out over the pool.  Each chunk builds
     private evaluators with [init] (an evaluator memoizes plan prefixes in
     single-domain mutable state, so it must not be shared across workers);
     the mapped values are pure, so every [jobs] setting computes the same
     arrays. *)
  let par_map ~init f arr =
    if Parallel.jobs pool > 1 && Array.length arr > 1 then
      Parallel.map_init pool ~init f arr
    else
      let ctx = init () in
      Array.map (f ctx) arr
  in
  let evaluators () =
    (Problem.evaluator p full_config, Problem.evaluator p Config.empty)
  in
  (* Dominance fixpoint: drop features that can never pay for themselves,
     re-evaluating as dropped views stop being benefit targets. *)
  let rec fixpoint features views =
    let targets =
      Array.of_list
        (Element.View (Schema.all_relations schema)
        :: List.map (fun w -> Element.View w) views)
    in
    let keep (full_eval, empty_eval) feature =
      let lb = lb_of full_eval feature in
      let benefit =
        key_index_benefit_or_zero p feature
        +. List.fold_left
             (fun acc (ti, r) ->
               let elem = targets.(ti) in
               let gap =
                 (cw *. ins_eval_of empty_eval elem r)
                 -. (cf *. ins_eval_of full_eval elem r)
               in
               acc +. Float.max 0. gap)
             0.
             (affected_triples p targets feature)
      in
      lb < benefit -. 1e-9
    in
    let flags = par_map ~init:evaluators keep (Array.of_list features) in
    let kept = List.filteri (fun i _ -> flags.(i)) features in
    let kept_views =
      List.filter_map
        (function
          | Problem.F_view w -> Some w
          | Problem.F_index _ | Problem.F_compress _ -> None)
        kept
    in
    (* Indexes on dropped candidate views can never apply. *)
    let kept =
      List.filter
        (function
          | Problem.F_view _ | Problem.F_compress _ -> true
          | Problem.F_index ix -> (
              match ix.Element.ix_elem with
              | Element.Base _ -> true
              | Element.View w ->
                  Bitset.equal w (Schema.all_relations schema)
                  || List.exists (Bitset.equal w) kept_views))
        kept
    in
    if List.length kept = List.length features then (kept, kept_views)
    else fixpoint kept kept_views
  and key_index_benefit_or_zero p = function
    | Problem.F_view _ -> 0.
    | Problem.F_index ix -> key_index_benefit p ~cf ~cw ix
    | Problem.F_compress _ -> compress_benefit
  in
  let kept, kept_views = fixpoint p.Problem.features p.Problem.candidate_views in
  let dropped =
    List.filter
      (fun f -> not (List.exists (Problem.equal_feature f) kept))
      p.Problem.features
  in
  let features = Array.of_list kept in
  let view_pos = Hashtbl.create 16 in
  Array.iteri
    (fun i f ->
      match f with
      | Problem.F_view w -> Hashtbl.replace view_pos (Bitset.to_int w) i
      | Problem.F_index _ | Problem.F_compress _ -> ())
    features;
  let targets =
    Array.of_list
      (Element.View (Schema.all_relations schema)
      :: List.map (fun w -> Element.View w) kept_views)
  in
  let target_view_pos =
    Array.map
      (fun elem ->
        match elem with
        | Element.View w when not (Bitset.equal w (Schema.all_relations schema))
          -> (
            match Hashtbl.find_opt view_pos (Bitset.to_int w) with
            | Some pos -> pos
            | None -> -1)
        | Element.View _ | Element.Base _ -> -1)
      targets
  in
  let per_target f =
    Array.map
      (fun elem ->
        Array.init n_rels (fun r ->
            if Bitset.mem r (Element.rels elem) then f elem r else 0.))
      targets
  in
  (* Floors carry the [cf] scaling: a compressed completion can push an
     evaluation below its everything-materialized cost, but never below
     [cf] times it. *)
  let full_ins = per_target (fun elem r -> cf *. ins_eval_of full_eval elem r) in
  let full_del =
    per_target (fun elem r -> cf *. fst (delupd_of full_eval elem r))
  in
  let full_upd =
    per_target (fun elem r -> cf *. snd (delupd_of full_eval elem r))
  in
  let full_base_del =
    Array.init n_rels (fun r ->
        cf *. fst (delupd_of full_eval (Element.Base r) r))
  in
  let full_base_upd =
    Array.init n_rels (fun r ->
        cf *. snd (delupd_of full_eval (Element.Base r) r))
  in
  {
    features;
    view_pos;
    lb_cost =
      par_map
        ~init:(fun () -> Problem.evaluator p full_config)
        lb_of features;
    key_benefit =
      par_map
        ~init:(fun () -> ())
        (fun () -> function
          | Problem.F_view _ -> 0.
          | Problem.F_index ix -> key_index_benefit p ~cf ~cw ix
          | Problem.F_compress _ -> compress_benefit)
        features;
    affected =
      par_map ~init:(fun () -> ()) (fun () -> affected_triples p targets) features;
    targets;
    target_view_pos;
    full_ins;
    full_del;
    full_upd;
    full_base_del;
    full_base_upd;
    dropped;
  }

(* ------------------------------------------------------------------ *)

(* A frontier state is either packed (a feature mask with its incremental
   per-element evaluation, used to delta-cost successors) or structural
   (the fallback when the problem carries no encoding). *)
type state = Packed of Cost.ieval | Plain of Config.t

(* A successor awaiting evaluation: the packed form carries the parent's
   evaluation so [eval_state] can cost it incrementally ([None] only for
   the root). *)
type succ = PSucc of int * Cost.ieval option | USucc of Config.t

type certificate = Optimal | Bounded of { lower_bound : float; gap : float }

(* Growable float buffer: the popped-[ĉ] audit trail, one per shard. *)
module Fbuf = struct
  type t = { mutable a : float array; mutable n : int }

  let create () = { a = Array.make 256 0.; n = 0 }

  let push t x =
    if t.n = Array.length t.a then begin
      let b = Array.make (2 * t.n) 0. in
      Array.blit t.a 0 b 0 t.n;
      t.a <- b
    end;
    t.a.(t.n) <- x;
    t.n <- t.n + 1
end

(* One sub-frontier of the sharded search: a private priority queue plus
   shard-local counters and a local view of the incumbent bound.  A worker
   touches only its own shard between barriers (the sharding contract of
   {!Vis_util.Parallel}); the coordinator merges the [d_*] round deltas and
   the [s_best] incumbents in shard order after every round, which keeps
   every global counter and the winning configuration independent of the
   pool width. *)
type shard = {
  sq : (int * state * float) Pqueue.t;  (* (pos, state, g) at priority ĉ *)
  s_popped : Fbuf.t;
  mutable s_bound : float;  (* round-start global bound, improved locally *)
  mutable s_best : (float * state) option;  (* best completion found here *)
  mutable s_done : bool;
  mutable s_dropped_lb : float;  (* smallest beam-dropped ĉ; ∞ if none *)
  mutable s_complete : float;  (* cost of own popped completion; ∞ if none *)
  (* Round deltas, merged and zeroed by the coordinator at the barrier. *)
  mutable d_exp : int;
  mutable d_gen : int;
  mutable d_eval : int;
  mutable d_inc : int;
  mutable d_inel : int;
  mutable d_stale : int;
  mutable d_beam : int;
}

(* Features a problem must retain (post-dominance) before the search shards
   its frontier by default; below this the coarse-grained machinery costs
   more than it can overlap. *)
let shard_threshold = 32

(* Expansions each shard performs per exchange round: large enough that a
   round amortizes the barrier, small enough that improved incumbents
   propagate before shards over-expand against a stale bound. *)
let shard_quantum = 48

(* BFS depth of the sequential prefix that seeds the shards — up to
   [2^shard_prefix_depth] sub-frontiers, keyed by the first feature
   decisions of the configuration mask. *)
let shard_prefix_depth = 6

let search_internal ?warm_start ~max_expanded ~beam ~shard ~on_budget ~pool p =
  let schema = p.Problem.schema in
  let sstats = Search_stats.create ~algorithm:"astar" () in
  let work_before = Parallel.work_counts pool in
  let prep = Search_stats.time sstats "prepare" (fun () -> prepare ~pool p) in
  (match List.length prep.dropped with
  | 0 -> ()
  | n -> Search_stats.prune ~count:n sstats "dominance");
  (* Packed search state: prep position [k] decides universe bit
     [prep_bit.(k)] (the dominance fixpoint kept a subset of the problem's
     features, so the two numberings differ). *)
  let packed =
    match Config_id.of_problem p with
    | None -> None
    | Some cid -> (
        try
          let prep_bit =
            Array.map
              (fun f ->
                match Config_id.bit_of_feature cid f with
                | Some b -> b
                | None -> raise Exit)
              prep.features
          in
          Some (cid, prep_bit)
        with Exit -> None)
  in
  let n = Array.length prep.features in
  let n_targets = Array.length prep.targets in
  let n_rels = Schema.n_relations schema in
  let exhaustive_states = Exhaustive.count_states p in
  let stats () =
    {
      expanded = Search_stats.expanded sstats;
      generated = Search_stats.generated sstats;
      exhaustive_states;
    }
  in
  (* Popped priorities, kept so admissibility ([ĉ ≤ C*] for every state
     popped before the goal) can be verified once the optimum is known. *)
  let popped = Fbuf.create () in
  let check_admissibility optimum =
    for i = 0 to popped.Fbuf.n - 1 do
      Search_stats.admissibility_check sstats
        ~violated:(popped.Fbuf.a.(i) > optimum +. 1e-6)
    done
  in
  (* The state-dependent predicates take the configuration as a membership
     closure [hv : view -> bool], so the packed path (mask test) and the
     structural path ([Config.has_view]) share one implementation. *)
  let eligible hv pos k =
    match prep.features.(k) with
    | Problem.F_view _ | Problem.F_compress _ -> true
    | Problem.F_index ix -> (
        match ix.Element.ix_elem with
        | Element.Base _ -> true
        | Element.View w ->
            Bitset.equal w (Schema.all_relations schema)
            || hv w
            ||
            (match Hashtbl.find_opt prep.view_pos (Bitset.to_int w) with
            | Some vp -> vp >= pos
            | None -> false))
  in
  (* A target still matters at (config, pos) when it is the primary view,
     already materialized, or not yet decided. *)
  let target_alive hv pos ti =
    let vp = prep.target_view_pos.(ti) in
    vp < 0 || vp >= pos
    ||
    match prep.targets.(ti) with
    | Element.View w -> hv w
    | Element.Base _ -> true
  in
  let h_hat eval hv pos =

    (* Gap tables: how far each expression's current cost sits above its
       full-configuration floor — an upper bound on what future features can
       still save on it. *)
    let ins_gap = Array.make_matrix n_targets n_rels 0. in
    for ti = 0 to n_targets - 1 do
      let elem = prep.targets.(ti) in
      if target_alive hv pos ti then
        Bitset.iter
          (fun r ->
            let gap = ins_eval_of eval elem r -. prep.full_ins.(ti).(r) in
            if gap > 0. then ins_gap.(ti).(r) <- gap)
          (Element.rels elem)
    done;
    (* Bound 1 (per-feature): each remaining feature nets at least
       lb_cost − its capped benefit. *)
    let h1 = ref 0. in
    for k = pos to n - 1 do
      if eligible hv pos k then begin
        let benefit =
          List.fold_left
            (fun acc (ti, r) -> acc +. ins_gap.(ti).(r))
            prep.key_benefit.(k) prep.affected.(k)
        in
        let term = prep.lb_cost.(k) -. benefit in
        if term < 0. then h1 := !h1 +. term
      end
    done;
    (* Bound 2 (per-expression): the cost already counted in g can drop at
       most to its floor, and future features' own maintenance is >= 0. *)
    let h2 = ref 0. in
    for ti = 0 to n_targets - 1 do
      let elem = prep.targets.(ti) in
      let maintained =
        match elem with
        | Element.View w ->
            Bitset.equal w (Schema.all_relations schema) || hv w
        | Element.Base _ -> true
      in
      if maintained then
        Bitset.iter
          (fun r ->
            let d, u = delupd_of eval elem r in
            let dgap = Float.max 0. (d -. prep.full_del.(ti).(r)) in
            let ugap = Float.max 0. (u -. prep.full_upd.(ti).(r)) in
            h2 := !h2 -. ins_gap.(ti).(r) -. dgap -. ugap)
          (Element.rels elem)
    done;
    for r = 0 to n_rels - 1 do
      let d, u = delupd_of eval (Element.Base r) r in
      h2 := !h2 -. Float.max 0. (d -. prep.full_base_del.(r));
      h2 := !h2 -. Float.max 0. (u -. prep.full_base_upd.(r))
    done;
    Float.max !h1 !h2
  in
  let queue = Pqueue.create () in
  (* A known complete solution bounds the search from above: states that
     cannot beat it are never enqueued, which keeps the frontier small.
     The greedy heuristic provides a good initial bound cheaply. *)
  let seed =
    Search_stats.time sstats "greedy-seed" (fun () -> Greedy.search ~pool p)
  in
  let upper_bound = ref seed.Greedy.best_cost in
  let incumbent = ref seed.Greedy.best in
  (* A caller-supplied warm start (e.g. the advisor service re-optimizing
     from the incumbent design after a rate drift) tightens the initial
     bound further when it beats the greedy seed.  Invalid configurations —
     features that are not candidates of [p] — are ignored rather than
     rejected, so callers may pass a mask optimized for a differently-scaled
     schema without re-validating it first.  The bound only ever tightens,
     so optimality and the Bounded certificate's lower bound are unaffected. *)
  (match warm_start with
  | Some config when Problem.valid_config p config ->
      let c = Problem.total p config in
      if c < !upper_bound then begin
        upper_bound := c;
        incumbent := config
      end
  | Some _ | None -> ());
  (* Successor handling is split in two: [eval_state] is a pure function of
     the state (the expensive cost-model work, safe to fan out over the
     pool), while [commit] performs every bound check, incumbent update,
     queue mutation and counter bump sequentially on the coordinator, in the
     same order the all-sequential code would.  [g] and [ĉ] do not read the
     incumbent bound, so evaluating successors concurrently and committing
     them in order is bit-identical to sequential search. *)
  let eval_state (pos, s) =
    match s with
    | USucc config ->
        let eval = Problem.evaluator p config in
        let g = Cost.total eval in
        let c_hat = g +. h_hat eval (Config.has_view config) pos in
        (pos, Plain config, g, c_hat)
    | PSucc (mask, parent) ->
        let cid, _ = Option.get packed in
        let ie =
          match parent with
          | None -> Config_id.eval cid mask
          | Some pie -> Config_id.eval_from cid pie mask
        in
        let g = Cost.ieval_total ie in
        let eval = Config_id.evaluator cid mask in
        let c_hat = g +. h_hat eval (Config_id.has_view cid mask) pos in
        (pos, Packed ie, g, c_hat)
  in
  let config_of_state = function
    | Plain config -> config
    | Packed ie ->
        let cid, _ = Option.get packed in
        Config_id.config_of_mask cid (Cost.ieval_mask ie)
  in
  let commit (pos, st, g, c_hat) =
    Search_stats.evaluate sstats;
    if c_hat <= !upper_bound +. 1e-9 then begin
      if pos = n && g < !upper_bound then begin
        upper_bound := g;
        incumbent := config_of_state st
      end;
      Search_stats.generate sstats;
      (* Among equal bounds, prefer the deeper state: it completes sooner. *)
      Pqueue.push ~tie:(n - pos) queue c_hat (pos, st, g);
      Search_stats.observe_frontier sstats (Pqueue.length queue)
    end
    else Search_stats.prune sstats "incumbent-bound"
  in
  (* Successor generation shared by the sequential, prefix and shard phases;
     [inel] is charged when an index position is skipped as ineligible (the
     phases count it in different scoreboards). *)
  let successors ~inel pos st =
    match st with
    | Packed ie -> begin
        let cid, prep_bit = Option.get packed in
        let mask = Cost.ieval_mask ie in
        let with_f = mask lor (1 lsl prep_bit.(pos)) in
        match prep.features.(pos) with
        | Problem.F_view _ | Problem.F_compress _ ->
            [|
              (pos + 1, PSucc (mask, Some ie));
              (pos + 1, PSucc (with_f, Some ie));
            |]
        | Problem.F_index _ ->
            if eligible (Config_id.has_view cid mask) pos pos then
              [|
                (pos + 1, PSucc (mask, Some ie));
                (pos + 1, PSucc (with_f, Some ie));
              |]
            else begin
              inel ();
              [| (pos + 1, PSucc (mask, Some ie)) |]
            end
      end
    | Plain config -> (
        match prep.features.(pos) with
        | Problem.F_view w ->
            [|
              (pos + 1, USucc config);
              (pos + 1, USucc (Config.add_view config w));
            |]
        | Problem.F_compress e ->
            [|
              (pos + 1, USucc config);
              (pos + 1, USucc (Config.add_compress config e));
            |]
        | Problem.F_index ix ->
            if eligible (Config.has_view config) pos pos then
              [|
                (pos + 1, USucc config);
                (pos + 1, USucc (Config.add_index config ix));
              |]
            else begin
              inel ();
              [| (pos + 1, USucc config) |]
            end)
  in
  (* Beam trim with hysteresis: only once the queue outgrows twice the beam,
     keep the [b] best entries and discard the rest.  [on_drop] receives the
     smallest dropped ĉ — a lower bound on everything discarded, which is
     what keeps the optimality-gap certificate sound. *)
  let trim_queue q ~on_drop =
    match beam with
    | Some b when Pqueue.length q > 2 * b ->
        let kept = Array.init b (fun _ -> Option.get (Pqueue.pop_min q)) in
        let count = Pqueue.length q in
        let lb =
          match Pqueue.peek_min q with Some (c, _) -> c | None -> infinity
        in
        Pqueue.clear q;
        Array.iter
          (fun (c, ((pos, _, _) as v)) -> Pqueue.push ~tie:(n - pos) q c v)
          kept;
        on_drop ~lb ~count
    | Some _ | None -> ()
  in
  let dropped_any = ref false in
  let dropped_lb = ref infinity in
  let certificate_of ~ub ~lb =
    if lb >= ub -. 1e-9 then Optimal
    else
      Bounded
        { lower_bound = lb; gap = (ub -. lb) /. Float.max 1e-9 (Float.abs ub) }
  in
  let mk_result () =
    {
      best = !incumbent;
      best_cost = !upper_bound;
      stats = stats ();
      search_stats = sstats;
    }
  in
  (* The popped-ĉ audit needs a proven optimum to compare against: run it
     only for [Optimal] finishes with no beam drops (a dropped state may
     have hidden a better completion, voiding [ĉ ≤ C*]). *)
  let finish_seq best best_cost cert =
    (match cert with
    | Optimal when not !dropped_any -> check_admissibility best_cost
    | Optimal | Bounded _ -> ());
    ({ best; best_cost; stats = stats (); search_stats = sstats }, cert)
  in
  let seq_drop ~lb ~count =
    dropped_any := true;
    if lb < !dropped_lb then dropped_lb := lb;
    Search_stats.prune ~count sstats "beam-width"
  in
  let rec seq_loop () =
    match Pqueue.pop_min queue with
    | None ->
        (* The frontier emptied without a complete state being popped: every
           remaining completion was pruned by the incumbent bound (or, under
           a beam, dropped — the certificate accounts for those). *)
        finish_seq !incumbent !upper_bound
          (certificate_of ~ub:!upper_bound ~lb:!dropped_lb)
    | Some (c_hat, (pos, st, g)) ->
        Fbuf.push popped c_hat;
        if pos = n then
          finish_seq (config_of_state st) g
            (certificate_of ~ub:g ~lb:!dropped_lb)
        else begin
          Search_stats.expand sstats;
          if Search_stats.expanded sstats > max_expanded then begin
            Search_stats.prune ~count:(Pqueue.length queue) sstats
              "expansion-budget";
            let r = mk_result () in
            on_budget r;
            let lb =
              Float.min c_hat
                (Float.min !dropped_lb
                   (match Pqueue.peek_min queue with
                   | Some (c, _) -> c
                   | None -> infinity))
            in
            (r, certificate_of ~ub:!upper_bound ~lb)
          end
          else begin
            let succs =
              successors
                ~inel:(fun () -> Search_stats.prune sstats "ineligible-index")
                pos st
            in
            Array.iter (fun sc -> commit (eval_state sc)) succs;
            trim_queue queue ~on_drop:seq_drop;
            seq_loop ()
          end
        end
  in
  (* -------------------- coarse-grained sharded search -----------------

     Phase 1 (sequential prefix): BFS over the first [p] feature decisions
     partitions the reachable frontier by configuration-mask prefix.  Each
     level's successor evaluations fan out over the pool as one pure batch;
     commits happen on the coordinator in batch order.

     Phase 2 (rounds): every surviving prefix state seeds one shard — a
     private A* sub-frontier.  Each exchange round submits one pool batch
     with one chunk per live shard; a chunk expands up to [shard_quantum]
     states against the round-start bound (improved locally when the shard
     itself completes), then the coordinator merges counters and incumbents
     in shard order and redistributes the tightened bound.  Because chunk
     boundaries, per-shard work and merge order are all independent of the
     pool width, results and every counter are bit-identical at any [jobs]
     (and match [jobs = 1] exactly). *)
  let shard_loop () =
    let budget_hit = ref false in
    let depth = min shard_prefix_depth (n - 1) in
    let root =
      eval_state
        ( 0,
          match packed with
          | Some _ -> PSucc (0, None)
          | None -> USucc Config.empty )
    in
    Search_stats.evaluate sstats;
    let level =
      ref
        (let _, _, _, c0 = root in
         if c0 <= !upper_bound +. 1e-9 then begin
           Search_stats.generate sstats;
           [ root ]
         end
         else begin
           Search_stats.prune sstats "incumbent-bound";
           []
         end)
    in
    let d = ref 0 in
    while (not !budget_hit) && !d < depth do
      if Search_stats.expanded sstats > max_expanded then budget_hit := true
      else begin
        let batch = ref [] in
        List.iter
          (fun (pos, st, _, _) ->
            Search_stats.expand sstats;
            let succs =
              successors
                ~inel:(fun () -> Search_stats.prune sstats "ineligible-index")
                pos st
            in
            Array.iter (fun sc -> batch := sc :: !batch) succs)
          !level;
        let batch = Array.of_list (List.rev !batch) in
        let evaled =
          if Parallel.jobs pool > 1 && Array.length batch > 1 then
            Parallel.map_array ~chunk:1 pool eval_state batch
          else Array.map eval_state batch
        in
        let next = ref [] in
        Array.iter
          (fun ((_, _, _, c) as t) ->
            Search_stats.evaluate sstats;
            if c <= !upper_bound +. 1e-9 then begin
              Search_stats.generate sstats;
              next := t :: !next
            end
            else Search_stats.prune sstats "incumbent-bound")
          evaled;
        level := List.rev !next;
        Search_stats.observe_frontier sstats (List.length !level);
        incr d
      end
    done;
    if !budget_hit then begin
      Search_stats.prune ~count:(List.length !level) sstats "expansion-budget";
      let r = mk_result () in
      on_budget r;
      let lb =
        List.fold_left (fun a (_, _, _, c) -> Float.min a c) !dropped_lb !level
      in
      (r, certificate_of ~ub:!upper_bound ~lb)
    end
    else begin
      let shards =
        Array.of_list
          (List.map
             (fun (pos, st, g, c) ->
               let s =
                 {
                   sq = Pqueue.create ();
                   s_popped = Fbuf.create ();
                   s_bound = !upper_bound;
                   s_best = None;
                   s_done = false;
                   s_dropped_lb = infinity;
                   s_complete = infinity;
                   d_exp = 0;
                   d_gen = 0;
                   d_eval = 0;
                   d_inc = 0;
                   d_inel = 0;
                   d_stale = 0;
                   d_beam = 0;
                 }
               in
               Pqueue.push ~tie:(n - pos) s.sq c (pos, st, g);
               s)
             !level)
      in
      let run_shard s =
        let left = ref shard_quantum in
        let continue_ = ref true in
        while !continue_ && !left > 0 do
          match Pqueue.pop_min s.sq with
          | None ->
              s.s_done <- true;
              continue_ := false
          | Some (c_hat, (pos, st, g)) ->
              if c_hat > s.s_bound +. 1e-9 then begin
                (* Everything left in this queue is ≥ [c_hat]; the bound the
                   round started with already beats it all. *)
                s.d_stale <- s.d_stale + 1 + Pqueue.length s.sq;
                Pqueue.clear s.sq;
                s.s_done <- true;
                continue_ := false
              end
              else begin
                Fbuf.push s.s_popped c_hat;
                if pos = n then begin
                  (* Shard-local optimum popped: everything still queued has
                     ĉ ≥ g and completions ≥ ĉ, so this shard is finished. *)
                  s.s_complete <- Float.min s.s_complete g;
                  if g < s.s_bound then begin
                    s.s_bound <- g;
                    s.s_best <- Some (g, st)
                  end;
                  s.s_done <- true;
                  continue_ := false
                end
                else begin
                  s.d_exp <- s.d_exp + 1;
                  decr left;
                  let succs =
                    successors
                      ~inel:(fun () -> s.d_inel <- s.d_inel + 1)
                      pos st
                  in
                  Array.iter
                    (fun sc ->
                      let pos', st', g', c' = eval_state sc in
                      s.d_eval <- s.d_eval + 1;
                      if c' <= s.s_bound +. 1e-9 then begin
                        if pos' = n && g' < s.s_bound then begin
                          s.s_bound <- g';
                          s.s_best <- Some (g', st')
                        end;
                        s.d_gen <- s.d_gen + 1;
                        Pqueue.push ~tie:(n - pos') s.sq c' (pos', st', g')
                      end
                      else s.d_inc <- s.d_inc + 1)
                    succs;
                  trim_queue s.sq ~on_drop:(fun ~lb ~count ->
                      s.s_dropped_lb <- Float.min s.s_dropped_lb lb;
                      s.d_beam <- s.d_beam + count)
                end
              end
        done
      in
      let live s = (not s.s_done) && not (Pqueue.is_empty s.sq) in
      let frontier_size () =
        Array.fold_left
          (fun a s -> a + if live s then Pqueue.length s.sq else 0)
          0 shards
      in
      let finished = ref false in
      while (not !finished) && not !budget_hit do
        let act = Array.of_list (List.filter live (Array.to_list shards)) in
        if Array.length act = 0 then finished := true
        else if Search_stats.expanded sstats > max_expanded then
          budget_hit := true
        else begin
          let bound = !upper_bound in
          Array.iter (fun s -> s.s_bound <- bound) act;
          Parallel.run pool ~chunks:(Array.length act) (fun i ->
              run_shard act.(i));
          Search_stats.record_round sstats (Array.map (fun s -> s.d_eval) act);
          let sum f = Array.fold_left (fun a s -> a + f s) 0 act in
          Search_stats.add_expanded sstats (sum (fun s -> s.d_exp));
          Search_stats.add_generated sstats (sum (fun s -> s.d_gen));
          Search_stats.add_evaluated sstats (sum (fun s -> s.d_eval));
          let charge rule f =
            match sum f with
            | 0 -> ()
            | c -> Search_stats.prune ~count:c sstats rule
          in
          charge "incumbent-bound" (fun s -> s.d_inc);
          charge "ineligible-index" (fun s -> s.d_inel);
          charge "stale-bound" (fun s -> s.d_stale);
          charge "beam-width" (fun s -> s.d_beam);
          Array.iter
            (fun s ->
              s.d_exp <- 0;
              s.d_gen <- 0;
              s.d_eval <- 0;
              s.d_inc <- 0;
              s.d_inel <- 0;
              s.d_stale <- 0;
              s.d_beam <- 0)
            act;
          (* Incumbent exchange, in shard order — deterministic at any pool
             width ([s_best] keeps strictly improving, so re-merging is
             idempotent). *)
          Array.iter
            (fun s ->
              match s.s_best with
              | Some (g, st) when g < !upper_bound ->
                  upper_bound := g;
                  incumbent := config_of_state st
              | Some _ | None -> ())
            act;
          Search_stats.observe_frontier sstats (frontier_size ())
        end
      done;
      let min_dropped =
        Array.fold_left
          (fun a s -> Float.min a s.s_dropped_lb)
          !dropped_lb shards
      in
      if !budget_hit then begin
        Search_stats.prune ~count:(frontier_size ()) sstats "expansion-budget";
        let r = mk_result () in
        on_budget r;
        let lb =
          Array.fold_left
            (fun a s ->
              if live s then
                match Pqueue.peek_min s.sq with
                | Some (c, _) -> Float.min a c
                | None -> a
              else a)
            min_dropped shards
        in
        (r, certificate_of ~ub:!upper_bound ~lb)
      end
      else begin
        (* Per-shard audit: while a shard's eventual completion is still
           reachable, one of its ancestors sits in that shard's queue with
           ĉ ≤ its completion cost, so every recorded pop is bounded by the
           shard's own [s_complete] — even across stale-bound rounds.
           Shards that never popped a completion (emptied by pruning)
           contribute nothing; beam drops void the ancestor argument, so
           the audit only runs without a beam. *)
        (match beam with
        | None ->
            Array.iter
              (fun s ->
                if s.s_complete < infinity then
                  for i = 0 to s.s_popped.Fbuf.n - 1 do
                    Search_stats.admissibility_check sstats
                      ~violated:(s.s_popped.Fbuf.a.(i) > s.s_complete +. 1e-6)
                  done)
              shards
        | Some _ -> ());
        (mk_result (), certificate_of ~ub:!upper_bound ~lb:min_dropped)
      end
    end
  in
  let use_shard =
    (match shard with Some b -> b | None -> n >= shard_threshold) && n >= 2
  in
  (* Record the pool shape even when the search exits through the expansion
     budget (Budget_exceeded unwinds through here). *)
  Fun.protect
    ~finally:(fun () ->
      if Parallel.jobs pool > 1 then
        Search_stats.set_parallel sstats ~jobs:(Parallel.jobs pool)
          ~work:
            (Parallel.diff_counts ~before:work_before
               ~after:(Parallel.work_counts pool)))
    (fun () ->
      Search_stats.time sstats "search" (fun () ->
          if use_shard then shard_loop ()
          else begin
            commit
              (eval_state
                 ( 0,
                   match packed with
                   | Some _ -> PSucc (0, None)
                   | None -> USucc Config.empty ));
            seq_loop ()
          end))

let search ?(max_expanded = 5_000_000) ?jobs ?shard ?warm_start p =
  Parallel.using ?jobs (fun pool ->
      fst
        (search_internal ?warm_start ~max_expanded ~beam:None ~shard
           ~on_budget:(fun r -> raise (Budget_exceeded r.stats))
           ~pool p))

let search_budgeted ?(max_expanded = 5_000_000) ?beam ?jobs ?shard ?warm_start
    p =
  (match beam with
  | Some b when b < 1 -> invalid_arg "Astar.search_budgeted: beam must be >= 1"
  | Some _ | None -> ());
  Parallel.using ?jobs (fun pool ->
      search_internal ?warm_start ~max_expanded ~beam ~shard
        ~on_budget:(fun _ -> ()) ~pool p)

let search_anytime ?max_expanded ?jobs p =
  let r, cert = search_budgeted ?max_expanded ?jobs p in
  (r, cert = Optimal)
