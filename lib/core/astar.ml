module Bitset = Vis_util.Bitset
module Parallel = Vis_util.Parallel
module Pqueue = Vis_util.Pqueue
module Schema = Vis_catalog.Schema
module Element = Vis_costmodel.Element
module Config = Vis_costmodel.Config
module Cost = Vis_costmodel.Cost

type stats = { expanded : int; generated : int; exhaustive_states : float }

type result = {
  best : Config.t;
  best_cost : float;
  stats : stats;
  search_stats : Search_stats.t;
}

exception Budget_exceeded of stats

(* ------------------------------------------------------------------ *)
(* Per-problem precomputation.

   For every feature we know, independently of the search state:
   - [lb_cost]: a lower bound on its own maintenance in any completion (its
     cost with *every* candidate structure materialized, which is the
     richest plan space a completion can offer; for views, index maintenance
     is excluded because indexes carry their own cost);
   - [key_benefit]: the configuration-independent saving of a key index for
     locating deleted/updated tuples;
   - [affected]: the insertion expressions (target view, delta relation)
     whose evaluation the feature can make cheaper;
   - the full-configuration *floors* of every expression: no completion can
     push an evaluation below its cost with everything materialized.

   Features whose [lb_cost] exceeds their largest possible benefit (taken
   under the empty configuration, where evaluations are most expensive) can
   never reduce the total and are dropped outright — a sound dominance rule
   that shrinks the search space before A* starts. *)

type prep = {
  features : Problem.feature array;
  view_pos : (int, int) Hashtbl.t;  (* candidate view -> feature position *)
  lb_cost : float array;
  key_benefit : float array;
  affected : (int * int) list array;  (* (target index, delta relation) *)
  targets : Element.t array;  (* target 0 is the primary view *)
  target_view_pos : int array;  (* feature position of the target's view; -1 for the primary *)
  full_ins : float array array;  (* ins eval floor per [target][rel] *)
  full_del : float array array;  (* del eval+apply floor *)
  full_upd : float array array;
  full_base_del : float array;  (* per base relation *)
  full_base_upd : float array;
  dropped : Problem.feature list;  (* dominance-pruned features *)
}

let lb_view_cost full_eval w =
  let elem = Element.View w in
  Bitset.fold
    (fun r acc ->
      let pi, _ = Cost.prop_ins full_eval ~target:elem ~rel:r in
      let pd, _ = Cost.prop_del full_eval ~target:elem ~rel:r in
      let pu, _ = Cost.prop_upd full_eval ~target:elem ~rel:r in
      acc
      +. (pi.Cost.p_eval +. pi.Cost.p_apply +. pi.Cost.p_save)
      +. (pd.Cost.p_eval +. pd.Cost.p_apply)
      +. (pu.Cost.p_eval +. pu.Cost.p_apply))
    w 0.

(* Saving of a key index on [elem] for deletions and updates; it does not
   depend on what else is materialized. *)
let key_index_benefit p ix =
  let elem = ix.Element.ix_elem in
  let r = ix.Element.ix_attr.Element.a_rel in
  let key = (Schema.relation p.Problem.schema r).Schema.key_attr in
  if ix.Element.ix_attr.Element.a_name <> key || not (Bitset.mem r (Element.rels elem))
  then 0.
  else begin
    let cost config =
      let eval = Problem.evaluator p config in
      let pd, _ = Cost.prop_del eval ~target:elem ~rel:r in
      let pu, _ = Cost.prop_upd eval ~target:elem ~rel:r in
      pd.Cost.p_eval +. pd.Cost.p_apply +. pu.Cost.p_eval +. pu.Cost.p_apply
    in
    let without = cost Config.empty in
    let with_ix = cost (Config.make ~views:[] ~indexes:[ ix ]) in
    Float.max 0. (without -. with_ix)
  end

(* Insertion expressions the feature can make cheaper, as indices into
   [targets].  Membership is tracked in hash sets keyed [(target, rel)]:
   the original [List.mem] rescans made the accumulation quadratic on
   join-heavy schemas.  Each accumulator mirrors the prepend chain of the
   scan-based version, so list order and membership are unchanged. *)
let affected_triples p targets feature =
  let schema = p.Problem.schema in
  let fresh () = (Hashtbl.create 32, ref []) in
  let add ((seen, items) : ((int * int, unit) Hashtbl.t * _) ) key =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      items := key :: !items
    end
  in
  let triples_over ~must_contain ~strict ~delta_outside =
    let acc = fresh () in
    Array.iteri
      (fun ti elem ->
        let rels = Element.rels elem in
        let contains =
          if strict then Bitset.proper_subset must_contain rels
          else Bitset.subset must_contain rels
        in
        if contains then
          let srels = if delta_outside then Bitset.diff rels must_contain else rels in
          Bitset.iter (fun r -> add acc (ti, r)) srels)
      targets;
    !(snd acc)
  in
  match feature with
  | Problem.F_view w -> triples_over ~must_contain:w ~strict:true ~delta_outside:false
  | Problem.F_index ix ->
      let e_rels = Element.rels ix.Element.ix_elem in
      let attr = ix.Element.ix_attr in
      let acc = fresh () in
      List.iter
        (fun (j : Schema.join) ->
          let outside =
            if
              j.Schema.left_rel = attr.Element.a_rel
              && j.Schema.left_attr = attr.Element.a_name
              && not (Bitset.mem j.Schema.right_rel e_rels)
            then Some j.Schema.right_rel
            else if
              j.Schema.right_rel = attr.Element.a_rel
              && j.Schema.right_attr = attr.Element.a_name
              && not (Bitset.mem j.Schema.left_rel e_rels)
            then Some j.Schema.left_rel
            else None
          in
          match outside with
          | None -> ()
          | Some x ->
              List.iter (add acc)
                (triples_over
                   ~must_contain:(Bitset.add x e_rels)
                   ~strict:false ~delta_outside:false))
        schema.Schema.joins;
      (match ix.Element.ix_elem with
      | Element.Base i
        when List.mem attr.Element.a_name (Schema.selection_attrs schema i) ->
          List.iter (add acc)
            (triples_over ~must_contain:(Bitset.singleton i) ~strict:false
               ~delta_outside:true)
      | Element.Base _ | Element.View _ -> ());
      !(snd acc)

let ins_eval_of eval elem r =
  (fst (Cost.prop_ins eval ~target:elem ~rel:r)).Cost.p_eval

let delupd_of eval elem r =
  let pd, _ = Cost.prop_del eval ~target:elem ~rel:r in
  let pu, _ = Cost.prop_upd eval ~target:elem ~rel:r in
  ( pd.Cost.p_eval +. pd.Cost.p_apply,
    pu.Cost.p_eval +. pu.Cost.p_apply )

let prepare ~pool p =
  let schema = p.Problem.schema in
  let n_rels = Schema.n_relations schema in
  let full_config =
    Config.make ~views:p.Problem.candidate_views
      ~indexes:(Problem.indexes_for_views p p.Problem.candidate_views)
  in
  let full_eval = Problem.evaluator p full_config in
  let lb_of full_eval = function
    | Problem.F_view w -> lb_view_cost full_eval w
    | Problem.F_index ix -> Cost.index_maint_cost full_eval ix
  in
  (* Per-feature precomputation fans out over the pool.  Each chunk builds
     private evaluators with [init] (an evaluator memoizes plan prefixes in
     single-domain mutable state, so it must not be shared across workers);
     the mapped values are pure, so every [jobs] setting computes the same
     arrays. *)
  let par_map ~init f arr =
    if Parallel.jobs pool > 1 && Array.length arr > 1 then
      Parallel.map_init pool ~init f arr
    else
      let ctx = init () in
      Array.map (f ctx) arr
  in
  let evaluators () =
    (Problem.evaluator p full_config, Problem.evaluator p Config.empty)
  in
  (* Dominance fixpoint: drop features that can never pay for themselves,
     re-evaluating as dropped views stop being benefit targets. *)
  let rec fixpoint features views =
    let targets =
      Array.of_list
        (Element.View (Schema.all_relations schema)
        :: List.map (fun w -> Element.View w) views)
    in
    let keep (full_eval, empty_eval) feature =
      let lb = lb_of full_eval feature in
      let benefit =
        key_index_benefit_or_zero p feature
        +. List.fold_left
             (fun acc (ti, r) ->
               let elem = targets.(ti) in
               let gap =
                 ins_eval_of empty_eval elem r -. ins_eval_of full_eval elem r
               in
               acc +. Float.max 0. gap)
             0.
             (affected_triples p targets feature)
      in
      lb < benefit -. 1e-9
    in
    let flags = par_map ~init:evaluators keep (Array.of_list features) in
    let kept = List.filteri (fun i _ -> flags.(i)) features in
    let kept_views =
      List.filter_map
        (function Problem.F_view w -> Some w | Problem.F_index _ -> None)
        kept
    in
    (* Indexes on dropped candidate views can never apply. *)
    let kept =
      List.filter
        (function
          | Problem.F_view _ -> true
          | Problem.F_index ix -> (
              match ix.Element.ix_elem with
              | Element.Base _ -> true
              | Element.View w ->
                  Bitset.equal w (Schema.all_relations schema)
                  || List.exists (Bitset.equal w) kept_views))
        kept
    in
    if List.length kept = List.length features then (kept, kept_views)
    else fixpoint kept kept_views
  and key_index_benefit_or_zero p = function
    | Problem.F_view _ -> 0.
    | Problem.F_index ix -> key_index_benefit p ix
  in
  let kept, kept_views = fixpoint p.Problem.features p.Problem.candidate_views in
  let dropped =
    List.filter
      (fun f -> not (List.exists (Problem.equal_feature f) kept))
      p.Problem.features
  in
  let features = Array.of_list kept in
  let view_pos = Hashtbl.create 16 in
  Array.iteri
    (fun i f ->
      match f with
      | Problem.F_view w -> Hashtbl.replace view_pos (Bitset.to_int w) i
      | Problem.F_index _ -> ())
    features;
  let targets =
    Array.of_list
      (Element.View (Schema.all_relations schema)
      :: List.map (fun w -> Element.View w) kept_views)
  in
  let target_view_pos =
    Array.map
      (fun elem ->
        match elem with
        | Element.View w when not (Bitset.equal w (Schema.all_relations schema))
          -> (
            match Hashtbl.find_opt view_pos (Bitset.to_int w) with
            | Some pos -> pos
            | None -> -1)
        | Element.View _ | Element.Base _ -> -1)
      targets
  in
  let per_target f =
    Array.map
      (fun elem ->
        Array.init n_rels (fun r ->
            if Bitset.mem r (Element.rels elem) then f elem r else 0.))
      targets
  in
  let full_ins = per_target (fun elem r -> ins_eval_of full_eval elem r) in
  let full_del = per_target (fun elem r -> fst (delupd_of full_eval elem r)) in
  let full_upd = per_target (fun elem r -> snd (delupd_of full_eval elem r)) in
  let full_base_del =
    Array.init n_rels (fun r -> fst (delupd_of full_eval (Element.Base r) r))
  in
  let full_base_upd =
    Array.init n_rels (fun r -> snd (delupd_of full_eval (Element.Base r) r))
  in
  {
    features;
    view_pos;
    lb_cost =
      par_map
        ~init:(fun () -> Problem.evaluator p full_config)
        lb_of features;
    key_benefit =
      par_map
        ~init:(fun () -> ())
        (fun () -> function
          | Problem.F_view _ -> 0.
          | Problem.F_index ix -> key_index_benefit p ix)
        features;
    affected =
      par_map ~init:(fun () -> ()) (fun () -> affected_triples p targets) features;
    targets;
    target_view_pos;
    full_ins;
    full_del;
    full_upd;
    full_base_del;
    full_base_upd;
    dropped;
  }

(* ------------------------------------------------------------------ *)

(* A frontier state is either packed (a feature mask with its incremental
   per-element evaluation, used to delta-cost successors) or structural
   (the fallback when the problem carries no encoding). *)
type state = Packed of Cost.ieval | Plain of Config.t

(* A successor awaiting evaluation: the packed form carries the parent's
   evaluation so [eval_state] can cost it incrementally ([None] only for
   the root). *)
type succ = PSucc of int * Cost.ieval option | USucc of Config.t

let search_internal ~max_expanded ~on_budget ~pool p =
  let schema = p.Problem.schema in
  let sstats = Search_stats.create ~algorithm:"astar" () in
  let work_before = Parallel.work_counts pool in
  let prep = Search_stats.time sstats "prepare" (fun () -> prepare ~pool p) in
  (match List.length prep.dropped with
  | 0 -> ()
  | n -> Search_stats.prune ~count:n sstats "dominance");
  (* Packed search state: prep position [k] decides universe bit
     [prep_bit.(k)] (the dominance fixpoint kept a subset of the problem's
     features, so the two numberings differ). *)
  let packed =
    match Config_id.of_problem p with
    | None -> None
    | Some cid -> (
        try
          let prep_bit =
            Array.map
              (fun f ->
                match Config_id.bit_of_feature cid f with
                | Some b -> b
                | None -> raise Exit)
              prep.features
          in
          Some (cid, prep_bit)
        with Exit -> None)
  in
  let n = Array.length prep.features in
  let n_targets = Array.length prep.targets in
  let n_rels = Schema.n_relations schema in
  let exhaustive_states = Exhaustive.count_states p in
  let stats () =
    {
      expanded = Search_stats.expanded sstats;
      generated = Search_stats.generated sstats;
      exhaustive_states;
    }
  in
  (* Popped priorities, kept so admissibility ([ĉ ≤ C*] for every state
     popped before the goal) can be verified once the optimum is known. *)
  let popped = ref (Array.make 1024 0.) in
  let n_popped = ref 0 in
  let record_pop c_hat =
    if !n_popped = Array.length !popped then begin
      let bigger = Array.make (2 * !n_popped) 0. in
      Array.blit !popped 0 bigger 0 !n_popped;
      popped := bigger
    end;
    !popped.(!n_popped) <- c_hat;
    incr n_popped
  in
  let check_admissibility optimum =
    for i = 0 to !n_popped - 1 do
      Search_stats.admissibility_check sstats
        ~violated:(!popped.(i) > optimum +. 1e-6)
    done
  in
  (* The state-dependent predicates take the configuration as a membership
     closure [hv : view -> bool], so the packed path (mask test) and the
     structural path ([Config.has_view]) share one implementation. *)
  let eligible hv pos k =
    match prep.features.(k) with
    | Problem.F_view _ -> true
    | Problem.F_index ix -> (
        match ix.Element.ix_elem with
        | Element.Base _ -> true
        | Element.View w ->
            Bitset.equal w (Schema.all_relations schema)
            || hv w
            ||
            (match Hashtbl.find_opt prep.view_pos (Bitset.to_int w) with
            | Some vp -> vp >= pos
            | None -> false))
  in
  (* A target still matters at (config, pos) when it is the primary view,
     already materialized, or not yet decided. *)
  let target_alive hv pos ti =
    let vp = prep.target_view_pos.(ti) in
    vp < 0 || vp >= pos
    ||
    match prep.targets.(ti) with
    | Element.View w -> hv w
    | Element.Base _ -> true
  in
  let h_hat eval hv pos =

    (* Gap tables: how far each expression's current cost sits above its
       full-configuration floor — an upper bound on what future features can
       still save on it. *)
    let ins_gap = Array.make_matrix n_targets n_rels 0. in
    for ti = 0 to n_targets - 1 do
      let elem = prep.targets.(ti) in
      if target_alive hv pos ti then
        Bitset.iter
          (fun r ->
            let gap = ins_eval_of eval elem r -. prep.full_ins.(ti).(r) in
            if gap > 0. then ins_gap.(ti).(r) <- gap)
          (Element.rels elem)
    done;
    (* Bound 1 (per-feature): each remaining feature nets at least
       lb_cost − its capped benefit. *)
    let h1 = ref 0. in
    for k = pos to n - 1 do
      if eligible hv pos k then begin
        let benefit =
          List.fold_left
            (fun acc (ti, r) -> acc +. ins_gap.(ti).(r))
            prep.key_benefit.(k) prep.affected.(k)
        in
        let term = prep.lb_cost.(k) -. benefit in
        if term < 0. then h1 := !h1 +. term
      end
    done;
    (* Bound 2 (per-expression): the cost already counted in g can drop at
       most to its floor, and future features' own maintenance is >= 0. *)
    let h2 = ref 0. in
    for ti = 0 to n_targets - 1 do
      let elem = prep.targets.(ti) in
      let maintained =
        match elem with
        | Element.View w ->
            Bitset.equal w (Schema.all_relations schema) || hv w
        | Element.Base _ -> true
      in
      if maintained then
        Bitset.iter
          (fun r ->
            let d, u = delupd_of eval elem r in
            let dgap = Float.max 0. (d -. prep.full_del.(ti).(r)) in
            let ugap = Float.max 0. (u -. prep.full_upd.(ti).(r)) in
            h2 := !h2 -. ins_gap.(ti).(r) -. dgap -. ugap)
          (Element.rels elem)
    done;
    for r = 0 to n_rels - 1 do
      let d, u = delupd_of eval (Element.Base r) r in
      h2 := !h2 -. Float.max 0. (d -. prep.full_base_del.(r));
      h2 := !h2 -. Float.max 0. (u -. prep.full_base_upd.(r))
    done;
    Float.max !h1 !h2
  in
  let queue = Pqueue.create () in
  (* A known complete solution bounds the search from above: states that
     cannot beat it are never enqueued, which keeps the frontier small.
     The greedy heuristic provides a good initial bound cheaply. *)
  let seed =
    Search_stats.time sstats "greedy-seed" (fun () -> Greedy.search ~pool p)
  in
  let upper_bound = ref seed.Greedy.best_cost in
  let incumbent = ref seed.Greedy.best in
  (* Successor handling is split in two: [eval_state] is a pure function of
     the state (the expensive cost-model work, safe to fan out over the
     pool), while [commit] performs every bound check, incumbent update,
     queue mutation and counter bump sequentially on the coordinator, in the
     same order the all-sequential code would.  [g] and [ĉ] do not read the
     incumbent bound, so evaluating successors concurrently and committing
     them in order is bit-identical to sequential search. *)
  let eval_state (pos, s) =
    match s with
    | USucc config ->
        let eval = Problem.evaluator p config in
        let g = Cost.total eval in
        let c_hat = g +. h_hat eval (Config.has_view config) pos in
        (pos, Plain config, g, c_hat)
    | PSucc (mask, parent) ->
        let cid, _ = Option.get packed in
        let ie =
          match parent with
          | None -> Config_id.eval cid mask
          | Some pie -> Config_id.eval_from cid pie mask
        in
        let g = Cost.ieval_total ie in
        let eval = Config_id.evaluator cid mask in
        let c_hat = g +. h_hat eval (Config_id.has_view cid mask) pos in
        (pos, Packed ie, g, c_hat)
  in
  let config_of_state = function
    | Plain config -> config
    | Packed ie ->
        let cid, _ = Option.get packed in
        Config_id.config_of_mask cid (Cost.ieval_mask ie)
  in
  let commit (pos, st, g, c_hat) =
    Search_stats.evaluate sstats;
    if c_hat <= !upper_bound +. 1e-9 then begin
      if pos = n && g < !upper_bound then begin
        upper_bound := g;
        incumbent := config_of_state st
      end;
      Search_stats.generate sstats;
      (* Among equal bounds, prefer the deeper state: it completes sooner. *)
      Pqueue.push ~tie:(n - pos) queue c_hat (pos, st, g);
      Search_stats.observe_frontier sstats (Pqueue.length queue)
    end
    else Search_stats.prune sstats "incumbent-bound"
  in
  let push pos s = commit (eval_state (pos, s)) in
  (* Fanning the two successor evaluations out only pays once states carry
     enough cost-model work; both paths compute identical values. *)
  let par_expansion = Parallel.jobs pool > 1 && n >= 12 in
  let finish best best_cost =
    check_admissibility best_cost;
    ({ best; best_cost; stats = stats (); search_stats = sstats }, true)
  in
  push 0
    (match packed with Some _ -> PSucc (0, None) | None -> USucc Config.empty);
  let rec loop () =
    match Pqueue.pop_min queue with
    | None ->
        (* The frontier emptied without a complete state being popped: every
           remaining completion was pruned by the incumbent bound, so the
           incumbent is optimal. *)
        finish !incumbent !upper_bound
    | Some (c_hat, (pos, st, g)) ->
        record_pop c_hat;
        if pos = n then finish (config_of_state st) g
        else begin
          Search_stats.expand sstats;
          if Search_stats.expanded sstats > max_expanded then begin
            Search_stats.prune ~count:(Pqueue.length queue) sstats
              "expansion-budget";
            on_budget
              {
                best = !incumbent;
                best_cost = !upper_bound;
                stats = stats ();
                search_stats = sstats;
              }
          end
          else begin
            let succs =
              match st with
              | Packed ie -> begin
                  let cid, prep_bit = Option.get packed in
                  let mask = Cost.ieval_mask ie in
                  let with_f = mask lor (1 lsl prep_bit.(pos)) in
                  match prep.features.(pos) with
                  | Problem.F_view _ ->
                      [|
                        (pos + 1, PSucc (mask, Some ie));
                        (pos + 1, PSucc (with_f, Some ie));
                      |]
                  | Problem.F_index _ ->
                      if eligible (Config_id.has_view cid mask) pos pos then
                        [|
                          (pos + 1, PSucc (mask, Some ie));
                          (pos + 1, PSucc (with_f, Some ie));
                        |]
                      else begin
                        Search_stats.prune sstats "ineligible-index";
                        [| (pos + 1, PSucc (mask, Some ie)) |]
                      end
                end
              | Plain config -> (
                  match prep.features.(pos) with
                  | Problem.F_view w ->
                      [|
                        (pos + 1, USucc config);
                        (pos + 1, USucc (Config.add_view config w));
                      |]
                  | Problem.F_index ix ->
                      if eligible (Config.has_view config) pos pos then
                        [|
                          (pos + 1, USucc config);
                          (pos + 1, USucc (Config.add_index config ix));
                        |]
                      else begin
                        Search_stats.prune sstats "ineligible-index";
                        [| (pos + 1, USucc config) |]
                      end)
            in
            let evaled =
              if par_expansion && Array.length succs > 1 then
                Parallel.map_array ~chunk:1 pool eval_state succs
              else Array.map eval_state succs
            in
            Array.iter commit evaled;
            loop ()
          end
        end
  in
  (* Record the pool shape even when the search exits through the expansion
     budget (Budget_exceeded / Exit unwind through here). *)
  Fun.protect
    ~finally:(fun () ->
      if Parallel.jobs pool > 1 then
        Search_stats.set_parallel sstats ~jobs:(Parallel.jobs pool)
          ~work:
            (Parallel.diff_counts ~before:work_before
               ~after:(Parallel.work_counts pool)))
    (fun () -> Search_stats.time sstats "search" loop)

let search ?(max_expanded = 5_000_000) ?jobs p =
  Parallel.using ?jobs (fun pool ->
      fst
        (search_internal ~max_expanded
           ~on_budget:(fun r -> raise (Budget_exceeded r.stats))
           ~pool p))

let search_anytime ?(max_expanded = 5_000_000) ?jobs p =
  Parallel.using ?jobs (fun pool ->
      let result = ref None in
      match
        search_internal ~max_expanded
          ~on_budget:(fun r ->
            result := Some r;
            raise Exit)
          ~pool p
      with
      | r, optimal -> (r, optimal)
      | exception Exit -> (Option.get !result, false))
