module Bitset = Vis_util.Bitset
module Config = Vis_costmodel.Config

exception Too_large of float

type result = {
  best : Config.t;
  best_cost : float;
  states : int;
  view_states : int;
  search_stats : Search_stats.t;
}

(* Subsets of a list, driven by an integer mask; [n] must stay small. *)
let list_subsets items ~f =
  let arr = Array.of_list items in
  let n = Array.length arr in
  if n > 24 then invalid_arg "Exhaustive: too many items to enumerate";
  for mask = 0 to (1 lsl n) - 1 do
    let subset = ref [] in
    for i = n - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then subset := arr.(i) :: !subset
    done;
    f !subset
  done

(* Σ over view subsets S of 2^(always-on + Σ_{v∈S} per-view candidates)
   = 2^always-on · Π_v (1 + 2^candidates(v)) — closed form, since each
   view contributes its candidate indexes independently. *)
let count_states p =
  let always = List.length (Problem.indexes_for_views p []) in
  List.fold_left
    (fun acc v ->
      let c =
        List.length
          (Problem.candidate_indexes_on p (Vis_costmodel.Element.View v))
      in
      acc *. (1. +. (2. ** float_of_int c)))
    (2. ** float_of_int always)
    p.Problem.candidate_views

let enumerate p ~f =
  let states = ref 0 in
  list_subsets p.Problem.candidate_views ~f:(fun views ->
      let indexes = Problem.indexes_for_views p views in
      list_subsets indexes ~f:(fun ixs ->
          let config = Config.make ~views ~indexes:ixs in
          let cost = Problem.total p config in
          let space = Config.space p.Problem.derived config in
          incr states;
          f config ~cost ~space));
  !states

let search ?(max_states = 2_000_000) p =
  let expected = count_states p in
  if expected > float_of_int max_states then raise (Too_large expected);
  let sstats = Search_stats.create ~algorithm:"exhaustive" () in
  let best = ref Config.empty in
  let best_cost = ref infinity in
  let view_states = ref 0 in
  list_subsets p.Problem.candidate_views ~f:(fun _ -> incr view_states);
  let states =
    Search_stats.time sstats "enumerate" (fun () ->
        enumerate p ~f:(fun config ~cost ~space:_ ->
            Search_stats.generate sstats;
            Search_stats.evaluate sstats;
            Search_stats.expand sstats;
            if cost < !best_cost then begin
              best_cost := cost;
              best := config
            end))
  in
  {
    best = !best;
    best_cost = !best_cost;
    states;
    view_states = !view_states;
    search_stats = sstats;
  }

let fold_index_subsets p views ~init ~f =
  let indexes = Problem.indexes_for_views p views in
  let acc = ref init in
  let states = ref 0 in
  list_subsets indexes ~f:(fun ixs ->
      let config = Config.make ~views ~indexes:ixs in
      let cost = Problem.total p config in
      incr states;
      acc := f !acc config cost);
  (!acc, !states)

let best_indexes_for_views p views =
  let (config, cost), states =
    fold_index_subsets p views
      ~init:(Config.empty, infinity)
      ~f:(fun (bc, bcost) config cost ->
        if cost < bcost then (config, cost) else (bc, bcost))
  in
  (config, cost, states)

let worst_indexes_for_views p views =
  let (config, cost), states =
    fold_index_subsets p views
      ~init:(Config.empty, neg_infinity)
      ~f:(fun (bc, bcost) config cost ->
        if cost > bcost then (config, cost) else (bc, bcost))
  in
  (config, cost, states)

let per_view_set p =
  let results = ref [] in
  list_subsets p.Problem.candidate_views ~f:(fun views ->
      let (lo, hi), _ =
        fold_index_subsets p views ~init:(infinity, neg_infinity)
          ~f:(fun (lo, hi) _ cost -> (Float.min lo cost, Float.max hi cost))
      in
      results := (views, lo, hi) :: !results);
  List.sort (fun (_, a, _) (_, b, _) -> Float.compare a b) !results
