module Bitset = Vis_util.Bitset
module Parallel = Vis_util.Parallel
module Config = Vis_costmodel.Config

exception Too_large of float

type result = {
  best : Config.t;
  best_cost : float;
  states : int;
  view_states : int;
  search_stats : Search_stats.t;
}

(* Subsets of a list, driven by an integer mask; [n] must stay small. *)
let list_subsets items ~f =
  let arr = Array.of_list items in
  let n = Array.length arr in
  if n > 24 then invalid_arg "Exhaustive: too many items to enumerate";
  for mask = 0 to (1 lsl n) - 1 do
    let subset = ref [] in
    for i = n - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then subset := arr.(i) :: !subset
    done;
    f !subset
  done

(* Beyond the view subsets, the inner axis enumerates every
   always-applicable extra feature: eligible indexes plus compression
   candidates (always-materialized elements, so independent of the view
   choice). *)
let apply_extra config = function
  | Problem.F_view w -> Config.add_view config w
  | Problem.F_index ix -> Config.add_index config ix
  | Problem.F_compress e -> Config.add_compress config e

(* Σ over view subsets S of 2^(always-on + Σ_{v∈S} per-view candidates)
   = 2^always-on · Π_v (1 + 2^candidates(v)) — closed form, since each
   view contributes its candidate indexes independently.  [always] counts
   base/primary indexes and compression candidates alike. *)
let count_states p =
  let always = List.length (Problem.extra_features_for_views p []) in
  List.fold_left
    (fun acc v ->
      let c =
        List.length
          (Problem.candidate_indexes_on p (Vis_costmodel.Element.View v))
      in
      acc *. (1. +. (2. ** float_of_int c)))
    (2. ** float_of_int always)
    p.Problem.candidate_views

let enumerate p ~f =
  let states = ref 0 in
  list_subsets p.Problem.candidate_views ~f:(fun views ->
      let extras = Problem.extra_features_for_views p views in
      list_subsets extras ~f:(fun feats ->
          let config =
            List.fold_left apply_extra (Config.make ~views ~indexes:[]) feats
          in
          let cost = Problem.total p config in
          let space = Config.space p.Problem.derived config in
          incr states;
          f config ~cost ~space));
  !states

(* [subset_of_mask arr mask] builds the same list [list_subsets] would pass
   to [f] for [mask] — the shard boundaries below address enumeration states
   by (view mask, index mask) instead of iterating a nested loop. *)
let subset_of_mask arr mask =
  let n = Array.length arr in
  let subset = ref [] in
  for i = n - 1 downto 0 do
    if mask land (1 lsl i) <> 0 then subset := arr.(i) :: !subset
  done;
  !subset

(* The enumeration is sharded over the worker pool: every state has a global
   index [gidx] equal to its position in the sequential nested-loop order,
   the state space is cut into contiguous [gidx] ranges (never crossing a
   view-subset boundary, so a shard evaluates one eligible-index universe),
   and each shard reports its best (cost, gidx, config).  Shards share a
   lock-free incumbent bound so hopeless states are not recorded, but a
   state whose cost *ties* the bound is always kept — the merge therefore
   sees every state that attains the global minimum and picks the smallest
   [gidx], which is exactly the state the sequential first-strict-improvement
   scan would have kept.  Results are bit-identical at any [jobs] setting. *)
let search ?jobs ?(max_states = 2_000_000) p =
  let expected = count_states p in
  if expected > float_of_int max_states then raise (Too_large expected);
  let sstats = Search_stats.create ~algorithm:"exhaustive" () in
  Parallel.using ?jobs (fun pool ->
      let work_before = Parallel.work_counts pool in
      let views_arr = Array.of_list p.Problem.candidate_views in
      let nv = Array.length views_arr in
      if nv > 24 then invalid_arg "Exhaustive: too many items to enumerate";
      let view_states = 1 lsl nv in
      let per_view =
        Array.init view_states (fun vm ->
            let views = subset_of_mask views_arr vm in
            (views, Array.of_list (Problem.extra_features_for_views p views)))
      in
      let offsets = Array.make view_states 0 in
      let total = ref 0 in
      for vm = 0 to view_states - 1 do
        offsets.(vm) <- !total;
        total := !total + (1 lsl Array.length (snd per_view.(vm)))
      done;
      let total = !total in
      (* Fixed shard granularity (~64 shards), NOT derived from the pool
         width: shard boundaries are part of the deterministic structure
         (the sharding contract of {!Vis_util.Parallel}), and the per-shard
         state counts feed the machine-independent modeled speedup. *)
      let chunk_target = max 1 ((total + 63) / 64) in
      let ranges = ref [] in
      for vm = 0 to view_states - 1 do
        let n_inner = 1 lsl Array.length (snd per_view.(vm)) in
        let lo = ref 0 in
        while !lo < n_inner do
          let hi = min n_inner (!lo + chunk_target) in
          ranges := (vm, !lo, hi) :: !ranges;
          lo := hi
        done
      done;
      let ranges = Array.of_list (List.rev !ranges) in
      (* Packed enumeration: each view subset's global view-bit mask and the
         global bit of every eligible index are precomputed, so a state's
         packed configuration is [vg lor (bits of im)] — a shard walks its
         integer interval costing consecutive states incrementally from the
         previous one.  Costs are bitwise equal to [Problem.total], so the
         bound/tie logic and the merged winner are unchanged. *)
      let packed =
        match Config_id.of_problem p with
        | None -> None
        | Some cid -> (
            try
              let info =
                Array.map
                  (fun (views, extras) ->
                    let vg =
                      List.fold_left
                        (fun acc w ->
                          match
                            Config_id.bit_of_feature cid (Problem.F_view w)
                          with
                          | Some b -> acc lor (1 lsl b)
                          | None -> raise Exit)
                        0 views
                    in
                    let gb =
                      Array.map
                        (fun f ->
                          match Config_id.bit_of_feature cid f with
                          | Some b -> 1 lsl b
                          | None -> raise Exit)
                        extras
                    in
                    (vg, gb))
                  per_view
              in
              Some (cid, info)
            with Exit -> None)
      in
      let bound = Atomic.make infinity in
      let rec lower_bound c =
        let cur = Atomic.get bound in
        if c < cur && not (Atomic.compare_and_set bound cur c) then
          lower_bound c
      in
      let shard_best =
        Array.make (Array.length ranges) (infinity, max_int, None)
      in
      Search_stats.time sstats "enumerate" (fun () ->
          Parallel.run pool ~chunks:(Array.length ranges) (fun c ->
              let vm, lo, hi = ranges.(c) in
              let views, extras = per_view.(vm) in
              let goff = offsets.(vm) in
              let best_c = ref infinity in
              let best_g = ref max_int in
              let best_cfg = ref None in
              (match packed with
              | Some (cid, info) ->
                  let vg, gb = info.(vm) in
                  let prev = ref None in
                  for im = lo to hi - 1 do
                    let gmask = ref vg in
                    let m = ref im and i = ref 0 in
                    while !m <> 0 do
                      if !m land 1 <> 0 then gmask := !gmask lor gb.(!i);
                      incr i;
                      m := !m lsr 1
                    done;
                    let gmask = !gmask in
                    let ie =
                      match !prev with
                      | None -> Config_id.eval cid gmask
                      | Some pie -> Config_id.eval_from cid pie gmask
                    in
                    prev := Some ie;
                    let cost = Vis_costmodel.Cost.ieval_total ie in
                    if cost < !best_c && cost <= Atomic.get bound then begin
                      best_c := cost;
                      best_g := goff + im;
                      best_cfg := Some (Config_id.config_of_mask cid gmask);
                      lower_bound cost
                    end
                  done
              | None ->
                  for im = lo to hi - 1 do
                    let config =
                      List.fold_left apply_extra
                        (Config.make ~views ~indexes:[])
                        (subset_of_mask extras im)
                    in
                    let cost = Problem.total p config in
                    if cost < !best_c && cost <= Atomic.get bound then begin
                      best_c := cost;
                      best_g := goff + im;
                      best_cfg := Some config;
                      lower_bound cost
                    end
                  done);
              shard_best.(c) <- (!best_c, !best_g, !best_cfg));
          (* One batch = one exchange round; each shard's work is its state
             count, known up front. *)
          Search_stats.record_round sstats
            (Array.map (fun (_, lo, hi) -> hi - lo) ranges);
          Search_stats.add_generated sstats total;
          Search_stats.add_evaluated sstats total;
          Search_stats.add_expanded sstats total);
      let best = ref Config.empty in
      let best_cost = ref infinity in
      let best_g = ref max_int in
      Array.iter
        (fun (c, g, cfg) ->
          match cfg with
          | Some cfg when c < !best_cost || (c = !best_cost && g < !best_g) ->
              best_cost := c;
              best_g := g;
              best := cfg
          | Some _ | None -> ())
        shard_best;
      if Parallel.jobs pool > 1 then
        Search_stats.set_parallel sstats ~jobs:(Parallel.jobs pool)
          ~work:
            (Parallel.diff_counts ~before:work_before
               ~after:(Parallel.work_counts pool));
      {
        best = !best;
        best_cost = !best_cost;
        states = total;
        view_states;
        search_stats = sstats;
      })

let fold_index_subsets p views ~init ~f =
  let indexes = Problem.indexes_for_views p views in
  let acc = ref init in
  let states = ref 0 in
  list_subsets indexes ~f:(fun ixs ->
      let config = Config.make ~views ~indexes:ixs in
      let cost = Problem.total p config in
      incr states;
      acc := f !acc config cost);
  (!acc, !states)

let best_indexes_for_views p views =
  let (config, cost), states =
    fold_index_subsets p views
      ~init:(Config.empty, infinity)
      ~f:(fun (bc, bcost) config cost ->
        if cost < bcost then (config, cost) else (bc, bcost))
  in
  (config, cost, states)

let worst_indexes_for_views p views =
  let (config, cost), states =
    fold_index_subsets p views
      ~init:(Config.empty, neg_infinity)
      ~f:(fun (bc, bcost) config cost ->
        if cost > bcost then (config, cost) else (bc, bcost))
  in
  (config, cost, states)

let per_view_set p =
  let results = ref [] in
  list_subsets p.Problem.candidate_views ~f:(fun views ->
      let (lo, hi), _ =
        fold_index_subsets p views ~init:(infinity, neg_infinity)
          ~f:(fun (lo, hi) _ cost -> (Float.min lo cost, Float.max hi cost))
      in
      results := (views, lo, hi) :: !results);
  List.sort (fun (_, a, _) (_, b, _) -> Float.compare a b) !results
