(** The optimal A*-based algorithm of Section 4, with a coarse-grained
    sharded parallel mode and a budgeted anytime/beam mode.

    Partial states consider the problem's features in one fixed topological
    order consistent with the paper's partial order ≺ (subviews before
    superviews, elements before their indexes); each expansion branches on
    materializing or rejecting the next feature.  A state's priority is
    [ĉ = g + ĥ]:

    - [g] is the exact total maintenance cost of the configuration chosen so
      far (bases and the primary view included);
    - [ĥ ≤ 0] lower-bounds the effect of the remaining features:
      [Σ min(0, lb_cost(m) − max_benefit(m, M'))] over the not-yet-considered
      features still eligible.  [lb_cost(m)] is [m]'s maintenance cost with
      {e every} candidate structure materialized (the cheapest any completion
      can make it, index-maintenance excluded for views since indexes carry
      their own cost).  [max_benefit(m, M')] bounds the reduction [m] can
      bring to other views' maintenance: for each affected maintenance
      expression it charges that expression's {e current} evaluation cost
      under [M'] (a true upper bound because costs only decrease as features
      are added), plus the closed-form key-index saving of Section 4.1.

    This [ĥ] differs from the paper's in one respect recorded in DESIGN.md:
    each term is clamped at zero, which restores admissibility when a
    feature's cost exceeds its maximum benefit.  Optimality against
    exhaustive search is verified in the test suite.

    {2 The sharded parallel search}

    Small problems run the classic single-queue loop.  Problems that retain
    at least 32 features after dominance pruning (or any problem when
    [~shard:true] is forced) run the coarse-grained mode instead:

    + a sequential {e prefix} BFS over the first (up to) 6 feature
      decisions partitions the frontier by configuration-mask prefix; each
      level's successor evaluations fan out over the worker pool as one
      pure batch, and are committed in batch order;
    + every surviving prefix state seeds one {e shard} — a private A*
      sub-frontier with its own priority queue, counters and popped-[ĉ]
      audit trail;
    + the shards then run in {e exchange rounds}: one pool batch per round,
      one chunk per live shard, each chunk expanding up to a fixed quantum
      of states against the round-start incumbent bound (improved locally
      when the shard itself finds a completion).  At the barrier the
      coordinator merges counters and incumbents {e in shard order} and
      redistributes the tightened bound; a shard whose queue minimum
      exceeds the fresh bound discards its remaining states
      (["stale-bound"]).

    Chunk boundaries, per-shard work and merge order are all independent of
    the pool width (the sharding contract of {!Vis_util.Parallel}), so the
    optimum, its cost and {e every counter} are bit-identical at any [jobs]
    setting — the property the fuzzer's parallel-determinism oracle checks.
    Per-round work counts are recorded in {!Search_stats} for the
    machine-independent modeled speedup
    ({!Search_stats.modeled_speedup}). *)

type stats = {
  expanded : int;  (** partial states popped from the queue *)
  generated : int;  (** partial states pushed onto the queue *)
  exhaustive_states : float;
      (** size of the exhaustive search space, for pruning ratios *)
}

type result = {
  best : Vis_costmodel.Config.t;
  best_cost : float;
  stats : stats;
  search_stats : Search_stats.t;
      (** the full scoreboard: per-rule pruning counts (dominance,
          incumbent-bound, ineligible-index, stale-bound, beam-width,
          expansion-budget), frontier high-water mark, exchange rounds,
          per-phase timings, and the popped-[ĉ] admissibility audit *)
}

(** What a search proved about its answer.  [Optimal] means no reachable
    configuration can cost less (up to the 1e-9 tie epsilon used
    throughout).  [Bounded] is returned by {!search_budgeted} when the
    expansion budget or the beam discarded states that could — as far as
    the admissible [ĉ] can tell — still have improved on the answer:
    [lower_bound] is the smallest such discarded [ĉ] (a true lower bound on
    the unexplored optimum), and [gap = (best_cost − lower_bound) /
    best_cost] is the relative optimality gap. *)
type certificate = Optimal | Bounded of { lower_bound : float; gap : float }

exception Budget_exceeded of stats

(** [search ?max_expanded ?jobs ?shard p] runs A* to optimality.  Raises
    {!Budget_exceeded} after expanding more than [max_expanded] states
    (default 5,000,000).

    [jobs] (default {!Vis_util.Parallel.default_jobs}) sets the worker-pool
    width used for the per-feature precomputation, the greedy seed, the
    prefix successor batches and the shard rounds.  All parallel work is
    pure cost-model evaluation or shard-private queue manipulation; every
    cross-shard exchange happens on the coordinating domain in shard order,
    so results and counters are identical at any [jobs] setting.

    [shard] forces the coarse-grained sharded mode on ([Some true]) or off
    ([Some false]); by default problems with ≥ 32 post-dominance features
    shard and smaller ones use the single-queue loop.  Both modes prove the
    same optimum; they differ in traversal order, so per-rule pruning
    counts differ {e between} modes (never between pool widths).

    [warm_start] supplies a known-good configuration — typically the
    incumbent design of a running advisor when delta rates have drifted —
    whose cost seeds the upper bound (and the returned incumbent) when it
    beats the greedy seed.  A configuration whose features are not all
    candidates of [p] is silently ignored, so a mask optimized for a
    differently-scaled {!Vis_catalog.Schema.t} can be passed as-is.  The
    bound only tightens: the optimum is unchanged, and results stay
    bit-identical at any [jobs]. *)
val search :
  ?max_expanded:int ->
  ?jobs:int ->
  ?shard:bool ->
  ?warm_start:Vis_costmodel.Config.t ->
  Problem.t ->
  result

(** [search_budgeted ?max_expanded ?beam ?jobs ?shard p] is the anytime
    variant: instead of raising, it always returns the best configuration
    found plus a {!certificate}.

    [max_expanded] bounds expansions as in {!search}; when it trips, the
    incumbent (never worse than the greedy seed) is returned with a
    [Bounded] certificate whose [lower_bound] accounts for every state
    still on the frontier.  Under sharding the budget is checked at
    exchange-round granularity, so the final count can overshoot by up to
    one round.

    [beam] caps every frontier (each shard's, in sharded mode) at that many
    states: once a queue exceeds twice the beam it is trimmed back to the
    [beam] best entries, the discarded minimum feeding the certificate's
    [lower_bound].  A finished beam search whose discarded states all had
    [ĉ ≥ best_cost] still earns [Optimal].

    [warm_start] behaves as in {!search}: a valid configuration that beats
    the greedy seed becomes the initial incumbent, which matters most here —
    a budget-bounded search can then never return a design worse than the
    one the caller already runs.

    Raises [Invalid_argument] if [beam < 1]. *)
val search_budgeted :
  ?max_expanded:int ->
  ?beam:int ->
  ?jobs:int ->
  ?shard:bool ->
  ?warm_start:Vis_costmodel.Config.t ->
  Problem.t ->
  result * certificate

(** [search_anytime ?max_expanded ?jobs p] is
    [search_budgeted ?max_expanded ?jobs p] with the certificate collapsed
    to a boolean: [(result, true)] means proven optimal.  Kept for callers
    that do not need the optimality gap. *)
val search_anytime : ?max_expanded:int -> ?jobs:int -> Problem.t -> result * bool
