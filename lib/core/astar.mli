(** The optimal A*-based algorithm of Section 4.

    Partial states consider the problem's features in one fixed topological
    order consistent with the paper's partial order ≺ (subviews before
    superviews, elements before their indexes); each expansion branches on
    materializing or rejecting the next feature.  A state's priority is
    [ĉ = g + ĥ]:

    - [g] is the exact total maintenance cost of the configuration chosen so
      far (bases and the primary view included);
    - [ĥ ≤ 0] lower-bounds the effect of the remaining features:
      [Σ min(0, lb_cost(m) − max_benefit(m, M'))] over the not-yet-considered
      features still eligible.  [lb_cost(m)] is [m]'s maintenance cost with
      {e every} candidate structure materialized (the cheapest any completion
      can make it, index-maintenance excluded for views since indexes carry
      their own cost).  [max_benefit(m, M')] bounds the reduction [m] can
      bring to other views' maintenance: for each affected maintenance
      expression it charges that expression's {e current} evaluation cost
      under [M'] (a true upper bound because costs only decrease as features
      are added), plus the closed-form key-index saving of Section 4.1.

    This [ĥ] differs from the paper's in one respect recorded in DESIGN.md:
    each term is clamped at zero, which restores admissibility when a
    feature's cost exceeds its maximum benefit.  Optimality against
    exhaustive search is verified in the test suite. *)

type stats = {
  expanded : int;  (** partial states popped from the queue *)
  generated : int;  (** partial states pushed onto the queue *)
  exhaustive_states : float;
      (** size of the exhaustive search space, for pruning ratios *)
}

type result = {
  best : Vis_costmodel.Config.t;
  best_cost : float;
  stats : stats;
  search_stats : Search_stats.t;
      (** the full scoreboard: per-rule pruning counts (dominance,
          incumbent-bound, ineligible-index), frontier high-water mark,
          per-phase timings, and the post-hoc admissibility audit of every
          popped [ĉ] against the proven optimum *)
}

exception Budget_exceeded of stats

(** [search ?max_expanded ?jobs p] runs A* to optimality.  Raises
    {!Budget_exceeded} after popping more than [max_expanded] states
    (default 5,000,000).

    [jobs] (default {!Vis_util.Parallel.default_jobs}) sets the worker-pool
    width used for the per-feature precomputation, the greedy seed, and the
    successor evaluations of each expansion.  All parallel work is pure
    cost-model evaluation; every bound check, incumbent update and queue
    mutation happens sequentially on the coordinating domain in the same
    order as a sequential run, so the optimum, its cost, and every counter
    ([expanded], [generated], pruning counts) are identical at any [jobs]
    setting. *)
val search : ?max_expanded:int -> ?jobs:int -> Problem.t -> result

(** [search_anytime ?max_expanded ?jobs p] is [search] that degrades
    gracefully: the search is seeded with the greedy solution and keeps the
    best complete configuration met; when the budget runs out it returns
    that incumbent with [false] instead of raising.  [(result, true)] means
    the result is proven optimal. *)
val search_anytime : ?max_expanded:int -> ?jobs:int -> Problem.t -> result * bool
