module Bitset = Vis_util.Bitset
module Schema = Vis_catalog.Schema
module Derived = Vis_catalog.Derived
module Element = Vis_costmodel.Element
module Config = Vis_costmodel.Config
module Cost = Vis_costmodel.Cost

type feature = Config.feature =
  | F_view of Bitset.t
  | F_index of Element.index
  | F_compress of Element.t

type candidates = {
  cand_views : Bitset.t list;
  cand_attrs : (int * string) list;
}

type t = {
  schema : Schema.t;
  derived : Derived.t;
  cache : Cost.cache;
  share_cache : bool;
  candidate_views : Bitset.t list;
  compress_elems : Element.t list;
  features : feature list;
  encoding : Cost.encoding option;
  restricted : candidates option;
}

let receives_delupd schema i =
  let d = Schema.delta schema i in
  d.Schema.n_del +. d.Schema.n_upd > 0.

(* When a mined candidate set restricts the problem, query-driven index
   attributes (join and selection predicates) outside it are dropped;
   maintenance-driven key attributes of relations receiving deletions or
   updates are always kept — pruning them would break refresh, not just
   lose queries the log never saw. *)
let attr_allowed restrict =
  match restrict with
  | None -> fun _ -> true
  | Some c ->
      let set : (int * string, unit) Hashtbl.t =
        Hashtbl.create (1 + List.length c.cand_attrs)
      in
      List.iter (fun k -> Hashtbl.replace set k ()) c.cand_attrs;
      fun key -> Hashtbl.mem set key

(* Candidate index attributes for an element, per FST88 / Section 3.1.
   Dedup via a hash set keyed on (relation, attribute name): join-heavy
   schemas repeat the same attribute across many joins, and the linear
   [List.exists] rescans made this quadratic.  Prepend order (and hence the
   final reversed order) is identical to the original scan-based version —
   and the [restrict] filter preserves order too, so a full-coverage
   candidate set reproduces the unrestricted list bit for bit. *)
let candidate_attrs ?restrict schema elem =
  let allowed = attr_allowed restrict in
  let seen : (int * string, unit) Hashtbl.t = Hashtbl.create 16 in
  let add acc (a : Element.attr) =
    let key = (a.Element.a_rel, a.Element.a_name) in
    if Hashtbl.mem seen key then acc
    else begin
      Hashtbl.add seen key ();
      a :: acc
    end
  in
  let attrs =
    match elem with
    | Element.Base i ->
        let acc =
          if receives_delupd schema i then
            add [] { Element.a_rel = i; a_name = (Schema.relation schema i).Schema.key_attr }
          else []
        in
        let add_query acc name =
          if allowed (i, name) then add acc { Element.a_rel = i; a_name = name }
          else acc
        in
        let acc = List.fold_left add_query acc (Schema.join_attrs schema i) in
        List.fold_left add_query acc (Schema.selection_attrs schema i)
    | Element.View w ->
        let acc =
          Bitset.fold
            (fun i acc ->
              if receives_delupd schema i then
                add acc
                  { Element.a_rel = i; a_name = (Schema.relation schema i).Schema.key_attr }
              else acc)
            w []
        in
        let add_query acc rel name =
          if allowed (rel, name) then add acc { Element.a_rel = rel; a_name = name }
          else acc
        in
        List.fold_left
          (fun acc (j : Schema.join) ->
            if Bitset.mem j.Schema.left_rel w && not (Bitset.mem j.Schema.right_rel w)
            then add_query acc j.Schema.left_rel j.Schema.left_attr
            else if
              Bitset.mem j.Schema.right_rel w && not (Bitset.mem j.Schema.left_rel w)
            then add_query acc j.Schema.right_rel j.Schema.right_attr
            else acc)
          acc schema.Schema.joins
  in
  List.rev attrs

let candidate_views_of schema ~connected_only ~max_view_rels =
  let full = Schema.all_relations schema in
  Bitset.proper_nonempty_subsets full
  |> List.filter (fun s ->
         (match max_view_rels with
         | Some k -> Bitset.cardinal s <= k
         | None -> true)
         && (if connected_only then Schema.connected schema s else true)
         &&
         match Bitset.elements s with
         | [ i ] -> Schema.has_selection schema i
         | _ -> true)
  |> List.sort (fun a b ->
         match Int.compare (Bitset.cardinal a) (Bitset.cardinal b) with
         | 0 -> Bitset.compare a b
         | c -> c)

let slow_cost_env () =
  match Sys.getenv_opt "VISMAT_SLOW_COST" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

let make ?(connected_only = false) ?max_view_rels ?(share_cache = true)
    ?slow_cost ?(compression = false) ?candidates schema =
  (match max_view_rels with
  | Some k when k < 1 -> invalid_arg "Problem.make: max_view_rels must be >= 1"
  | Some _ | None -> ());
  let derived = Derived.create schema in
  let candidate_views = candidate_views_of schema ~connected_only ~max_view_rels in
  (* A mined candidate set narrows — never widens — the structural
     enumeration: views outside the lattice (or outside [max_view_rels] /
     [connected_only]) stay excluded even if the miner proposed them.  The
     order-preserving filter keeps a full-coverage candidate set
     bit-identical to the unrestricted problem. *)
  let candidate_views =
    match candidates with
    | None -> candidate_views
    | Some c ->
        let keep : (int, unit) Hashtbl.t =
          Hashtbl.create (1 + List.length c.cand_views)
        in
        List.iter (fun w -> Hashtbl.replace keep (Bitset.to_int w) ()) c.cand_views;
        List.filter (fun w -> Hashtbl.mem keep (Bitset.to_int w)) candidate_views
  in
  let indexes_of elem =
    List.map
      (fun a -> { Element.ix_elem = elem; ix_attr = a })
      (candidate_attrs ?restrict:candidates schema elem)
  in
  let n = Schema.n_relations schema in
  let base_ix = List.concat_map (fun i -> indexes_of (Element.Base i)) (List.init n Fun.id) in
  let primary_ix = indexes_of (Element.View (Schema.all_relations schema)) in
  (* Compression candidates are the always-materialized elements only (base
     replicas and the primary view), so an [F_compress] never depends on
     another feature being present — like the always-on indexes, it is
     applicable in every state. *)
  let compress_elems =
    if not compression then []
    else
      List.init n (fun i -> Element.Base i)
      @ [ Element.View (Schema.all_relations schema) ]
  in
  let features =
    List.map (fun e -> F_compress e) compress_elems
    @ List.map (fun ix -> F_index ix) (base_ix @ primary_ix)
    @ List.concat_map
        (fun w ->
          F_view w :: List.map (fun ix -> F_index ix) (indexes_of (Element.View w)))
        candidate_views
  in
  let slow_cost =
    match slow_cost with Some b -> b | None -> slow_cost_env ()
  in
  (* The packed evaluator shares one memo cache across all masked
     configurations by construction, so the no-sharing ablation
     ([share_cache = false]) must also disable it; [slow_cost] (or
     VISMAT_SLOW_COST=1) keeps the structural evaluator for differential
     checking. *)
  let encoding =
    if slow_cost || not share_cache then None
    else
      match Cost.make_encoding derived (Array.of_list features) with
      | enc -> Some enc
      | exception Cost.Encoding_too_large _ -> None
  in
  {
    schema;
    derived;
    cache = Cost.new_cache ();
    share_cache;
    candidate_views;
    compress_elems;
    features;
    encoding;
    restricted = candidates;
  }

let candidate_indexes_on p elem =
  List.map
    (fun a -> { Element.ix_elem = elem; ix_attr = a })
    (candidate_attrs ?restrict:p.restricted p.schema elem)

let always_on_indexes p =
  let n = Schema.n_relations p.schema in
  List.concat_map (fun i -> candidate_indexes_on p (Element.Base i)) (List.init n Fun.id)
  @ candidate_indexes_on p (Element.View (Schema.all_relations p.schema))

let indexes_for_views p views =
  always_on_indexes p
  @ List.concat_map (fun w -> candidate_indexes_on p (Element.View w)) views

let compress_candidates p = p.compress_elems

(* The always-applicable (state-independent) features beyond the view
   lattice: candidate indexes for the given view state plus every
   compression candidate.  The exhaustive search enumerates subsets of
   exactly this list per view state. *)
let extra_features_for_views p views =
  List.map (fun ix -> F_index ix) (indexes_for_views p views)
  @ List.map (fun e -> F_compress e) p.compress_elems

let evaluator p config =
  match p.encoding with
  | Some enc -> (
      (* Packed keys for in-universe configurations; anything outside the
         universe (e.g. Sensitivity costing an arbitrary configuration)
         falls back to the structural keying, which shares the same cache
         disjointly. *)
      match Cost.mask_of_config enc config with
      | Some mask -> Cost.create_masked ~cache:p.cache p.derived enc mask
      | None -> Cost.create ~cache:p.cache p.derived config)
  | None ->
      if p.share_cache then Cost.create ~cache:p.cache p.derived config
      else Cost.create p.derived config

let total p config = Cost.total (evaluator p config)

let feature_space p = function
  | F_view w -> Derived.view_pages p.derived w
  | F_index ix -> (Element.index_shape p.derived ix).Derived.ix_pages
  (* Compression consumes no extra pages (it frees some); the space
     constraint never excludes it. *)
  | F_compress _ -> 0.

let feature_name p = function
  | F_view w -> Element.name p.schema (Element.View w)
  | F_index ix -> Element.index_name p.schema ix
  | F_compress e -> "compress(" ^ Element.name p.schema e ^ ")"

let equal_feature = Config.equal_feature

let valid_config p config =
  let view_ok w = List.exists (Bitset.equal w) p.candidate_views in
  (* The eligible-index set depends only on the configuration's views:
     compute it once per call instead of once per index. *)
  let eligible = indexes_for_views p (Config.views config) in
  let index_ok ix =
    let elem_materialized =
      match ix.Element.ix_elem with
      | Element.Base _ -> true
      | Element.View w ->
          Bitset.equal w (Schema.all_relations p.schema)
          || List.exists (Bitset.equal w) (Config.views config)
    in
    elem_materialized && List.exists (Element.equal_index ix) eligible
  in
  let compress_ok e = List.exists (Element.equal e) p.compress_elems in
  List.for_all view_ok (Config.views config)
  && List.for_all index_ok (Config.indexes config)
  && List.for_all compress_ok (Config.compress config)
