(** A hill-climbing heuristic with add / drop / swap moves — one of the
    "heuristics for pruning the exhaustive search space" the paper's
    conclusion proposes to develop, included as a baseline between pure
    greedy and optimal A*.

    Starting from a seed configuration (the greedy solution by default),
    repeatedly apply the best cost-improving move among:
    - adding one applicable feature,
    - dropping one materialized feature (dropping a view also drops its
      indexes),
    - swapping one materialized feature for one absent feature.
    Stops at a local optimum or after [max_moves]. *)

type result = {
  best : Vis_costmodel.Config.t;
  best_cost : float;
  moves : int;  (** improving moves applied *)
  evaluations : int;  (** configurations costed *)
  search_stats : Search_stats.t;
      (** climb rounds (expanded), neighbours costed (generated), budget
          pruning counts and timing *)
}

val search :
  ?seed:Vis_costmodel.Config.t ->
  ?space_budget:float ->
  ?max_moves:int ->
  Problem.t ->
  result
