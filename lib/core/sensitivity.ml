type series = {
  se_estimate : float;
  se_config : Vis_costmodel.Config.t;
  se_ratios : (float * float) list;
}

let sweep ~make_schema ~values =
  let problems = List.map (fun v -> (v, Problem.make (make_schema v))) values in
  let optima =
    List.map
      (fun (v, p) ->
        let r = Astar.search p in
        (v, p, r.Astar.best, r.Astar.best_cost))
      problems
  in
  List.map
    (fun (est, _, config, _) ->
      let ratios =
        List.map
          (fun (actual, p, _, opt_cost) ->
            let cost = Problem.total p config in
            (actual, cost /. opt_cost))
          optima
      in
      { se_estimate = est; se_config = config; se_ratios = ratios })
    optima

let probe p ~incumbent =
  let g = Greedy.search ~jobs:1 p in
  if g.Greedy.best_cost <= 0. then 1.
  else Problem.total p incumbent /. g.Greedy.best_cost
