module Bitset = Vis_util.Bitset
module T = Vis_util.Tableprint
module Schema = Vis_catalog.Schema
module Element = Vis_costmodel.Element
module Config = Vis_costmodel.Config
module Cost = Vis_costmodel.Cost

type line = {
  l_element : string;
  l_delta : string;
  l_plan : string;
  l_eval : float;
  l_apply : float;
  l_save : float;
  l_index : float;
  l_total : float;
}

type report = {
  r_config : string;
  r_total : float;
  r_space : float;
  r_lines : line list;
}

let rel_name schema r = (Schema.relation schema r).Schema.rel_name

let render_locate schema = function
  | Cost.Loc_scan -> "scan, semijoin with shipped keys"
  | Cost.Loc_key_index ix ->
      Printf.sprintf "probe %s per shipped key" (Element.index_name schema ix)

let explain p config =
  let schema = p.Problem.schema in
  let eval = Problem.evaluator p config in
  let lines = ref [] in
  let add element delta plan (prop : Cost.prop) =
    if Cost.prop_total prop > 0. then
      lines :=
        {
          l_element = element;
          l_delta = delta;
          l_plan = plan;
          l_eval = prop.Cost.p_eval;
          l_apply = prop.Cost.p_apply;
          l_save = prop.Cost.p_save;
          l_index = prop.Cost.p_index;
          l_total = Cost.prop_total prop;
        }
        :: !lines
  in
  List.iter
    (fun elem ->
      let ename = Element.name schema elem in
      Bitset.iter
        (fun r ->
          let rn = rel_name schema r in
          let pi, plan = Cost.prop_ins eval ~target:elem ~rel:r in
          add ename
            (Printf.sprintf "\xce\x94%s" rn)
            (Format.asprintf "%a" (Cost.pp_ins_plan schema ~target:elem ~rel:r) plan)
            pi;
          let pd, how_d = Cost.prop_del eval ~target:elem ~rel:r in
          add ename
            (Printf.sprintf "\xe2\x88\x87%s" rn)
            (render_locate schema how_d) pd;
          let pu, how_u = Cost.prop_upd eval ~target:elem ~rel:r in
          add ename
            (Printf.sprintf "\xce\xbc%s" rn)
            (render_locate schema how_u) pu)
        (Element.rels elem))
    (Cost.maintained_elements eval);
  {
    r_config = Config.describe schema config;
    r_total = Cost.total eval;
    r_space = Config.space p.Problem.derived config;
    r_lines = List.rev !lines;
  }

let render report =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf report.r_config;
  Buffer.add_string buf
    (Printf.sprintf "\nadditional space: %.0f pages; total maintenance: %.1f I/Os\n\n"
       report.r_space report.r_total);
  let tbl =
    T.create [ "element"; "delta"; "eval"; "apply"; "save"; "index"; "total"; "update path" ]
  in
  List.iter
    (fun l ->
      T.add_row tbl
        [
          l.l_element;
          l.l_delta;
          T.fmt_compact l.l_eval;
          T.fmt_compact l.l_apply;
          T.fmt_compact l.l_save;
          T.fmt_compact l.l_index;
          T.fmt_compact l.l_total;
          l.l_plan;
        ])
    report.r_lines;
  Buffer.add_string buf (T.render tbl);
  Buffer.contents buf

let report_json report =
  let module Json = Vis_util.Json in
  let line l =
    Json.Obj
      [
        ("element", Json.String l.l_element);
        ("delta", Json.String l.l_delta);
        ("plan", Json.String l.l_plan);
        ("eval", Json.Float l.l_eval);
        ("apply", Json.Float l.l_apply);
        ("save", Json.Float l.l_save);
        ("index", Json.Float l.l_index);
        ("total", Json.Float l.l_total);
      ]
  in
  Json.Obj
    [
      ("config", Json.String report.r_config);
      ("total_cost", Json.Float report.r_total);
      ("space_pages", Json.Float report.r_space);
      ("propagations", Json.List (List.map line report.r_lines));
    ]

let compare_designs p configs =
  let reports = List.map (fun (name, c) -> (name, explain p c)) configs in
  let elements =
    (* Union of element names across designs, stable order. *)
    List.fold_left
      (fun acc (_, r) ->
        List.fold_left
          (fun acc l -> if List.mem l.l_element acc then acc else acc @ [ l.l_element ])
          acc r.r_lines)
      [] reports
  in
  let tbl = T.create ([ "element" ] @ List.map fst reports) in
  List.iter
    (fun elem ->
      let cells =
        List.map
          (fun (_, r) ->
            let subtotal =
              List.fold_left
                (fun acc l -> if l.l_element = elem then acc +. l.l_total else acc)
                0. r.r_lines
            in
            T.fmt_compact subtotal)
          reports
      in
      T.add_row tbl (elem :: cells))
    elements;
  T.add_row tbl
    ("TOTAL" :: List.map (fun (_, r) -> T.fmt_compact r.r_total) reports);
  T.add_row tbl
    ("space" :: List.map (fun (_, r) -> T.fmt_compact r.r_space) reports);
  T.render tbl
