(** A VIS problem instance: the schema plus the enumerated candidate
    supporting views and candidate indexes (Sections 2.1.1–2.1.2), and the
    feature order used by the search algorithms.

    Candidate views are the nodes of the primary view's expression DAG: every
    proper non-empty subset of the base relations (each with its local
    selections pushed down), except bare single relations without a selection
    — those are already stored.  With [connected_only] the cross-product
    nodes (e.g. [RT'] in the paper's Figure 3) are excluded; the paper keeps
    them, so the default is [false].

    Candidate indexes follow [FST88] as restricted by Section 3.1:
    - on a base relation: its key (when it receives deletions or updates),
      its attributes with join predicates, and its attributes with local
      selection predicates;
    - on the primary view or a supporting view [w]: the keys of base
      relations in [w] that receive deletions or updates, and attributes of
      relations in [w] joined to relations outside [w]. *)

type feature = Vis_costmodel.Config.feature =
  | F_view of Vis_util.Bitset.t
  | F_index of Vis_costmodel.Element.index
  | F_compress of Vis_costmodel.Element.t

(** A workload-mined restriction of the candidate space (see
    {!Vis_workload.Miner}): the supporting views and the query-driven index
    attributes the workload justifies.  [make ?candidates] intersects the
    structural enumeration with this set — it never adds candidates the
    schema would not generate — and maintenance-driven key attributes
    (relations receiving deletions or updates) are always kept regardless,
    since they serve refresh rather than queries.  A candidate set covering
    the full enumeration yields a problem bit-identical to the
    unrestricted one. *)
type candidates = {
  cand_views : Vis_util.Bitset.t list;
      (** allowed supporting-view relation sets *)
  cand_attrs : (int * string) list;
      (** allowed query-driven index attributes, as [(relation, attr)] *)
}

type t = {
  schema : Vis_catalog.Schema.t;
  derived : Vis_catalog.Derived.t;
  cache : Vis_costmodel.Cost.cache;
  share_cache : bool;
      (** when false, {!evaluator} gives every configuration a private cache
          — the memoization ablation used by tests and the benchmark *)
  candidate_views : Vis_util.Bitset.t list;  (** sorted by cardinality *)
  compress_elems : Vis_costmodel.Element.t list;
      (** page-compression candidates — the always-materialized elements
          (base replicas and the primary view); empty unless [make] was
          given [~compression:true] *)
  features : feature list;
      (** every candidate feature, topologically ordered for the paper's
          partial order ≺: subviews before superviews, every element before
          its indexes, compression then base-relation and primary-view
          indexes first (all state-independent) *)
  encoding : Vis_costmodel.Cost.encoding option;
      (** the problem's feature universe numbered into bits, when it fits in
          62 features and neither [slow_cost] nor the no-sharing ablation
          disabled it; searches use it via {!Config_id} for packed states
          and incremental delta-costing *)
  restricted : candidates option;
      (** the mined candidate restriction [make] was given, if any; consulted
          by {!candidate_indexes_on} so index enumeration and validation stay
          consistent with the restricted feature list *)
}

(** [make schema] enumerates the candidates.  [max_view_rels] caps candidate
    supporting views to subsets of at most that many relations — the
    candidate-pruning knob for star/snowflake schemas whose full subset
    lattice is intractable (and overflows the 62-bit packed encoding); the
    always-on base and primary-view indexes are unaffected, and the default
    ([None]) keeps the paper's complete enumeration.  [share_cache] (default true)
    makes every {!evaluator} share one {!Vis_costmodel.Cost.cache}, so cost
    derivations are reused across the many configurations a search visits;
    disabling it isolates each evaluation (for measuring what memoization
    saves) and also disables the packed encoding.  [slow_cost] (default: the
    [VISMAT_SLOW_COST] environment variable, true when set non-empty and
    non-zero) forces the structural evaluator everywhere — the escape hatch
    kept alive for differential checking of the packed path.  [compression]
    (default false) adds an [F_compress] candidate per always-materialized
    element — a new axis the searches trade on: compressed elements cost
    roughly half the I/Os but a CPU surcharge per page (see
    {!Vis_costmodel.Cost.compress_page_ratio}); the default keeps the
    search space and every cost bitwise identical to a compression-free
    problem.  [candidates] (default [None] — exhaustive enumeration)
    restricts the space to a workload-mined {!candidates} set; all searches,
    the packed encoding, and [Config_id] then run on the pruned universe. *)
val make :
  ?connected_only:bool ->
  ?max_view_rels:int ->
  ?share_cache:bool ->
  ?slow_cost:bool ->
  ?compression:bool ->
  ?candidates:candidates ->
  Vis_catalog.Schema.t ->
  t

(** [candidate_indexes_on p elem] enumerates candidate indexes for one
    element ([Base _], a candidate view, or the primary view). *)
val candidate_indexes_on : t -> Vis_costmodel.Element.t -> Vis_costmodel.Element.index list

(** [always_on_indexes p] is the candidate indexes on elements that are
    always materialized: the base relations and the primary view. *)
val always_on_indexes : t -> Vis_costmodel.Element.index list

(** [indexes_for_views p views] is [always_on_indexes] plus the candidate
    indexes of each view in [views] — the index search space of a given view
    state. *)
val indexes_for_views : t -> Vis_util.Bitset.t list -> Vis_costmodel.Element.index list

(** The problem's [F_compress] candidate elements (empty without
    [~compression:true]). *)
val compress_candidates : t -> Vis_costmodel.Element.t list

(** [extra_features_for_views p views] is the non-view features applicable
    in a state materializing exactly [views]: candidate indexes for that
    view state plus every compression candidate.  The exhaustive search
    enumerates subsets of this list per view state. *)
val extra_features_for_views : t -> Vis_util.Bitset.t list -> feature list

(** [evaluator p config] is a cost evaluator sharing the problem's cache. *)
val evaluator : t -> Vis_costmodel.Config.t -> Vis_costmodel.Cost.t

(** [total p config] is the total maintenance cost of [config]. *)
val total : t -> Vis_costmodel.Config.t -> float

(** [feature_space p f] is the storage footprint of a feature, in pages. *)
val feature_space : t -> feature -> float

val feature_name : t -> feature -> string

val equal_feature : feature -> feature -> bool

(** [valid_config p config] checks that a configuration only uses candidate
    views and candidate indexes, and that each index's element is
    materialized. *)
val valid_config : t -> Vis_costmodel.Config.t -> bool
