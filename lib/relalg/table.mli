(** A stored table: a heap file plus any number of attached B+-tree indexes,
    kept consistent by the modification operations.  Base-relation replicas,
    the primary view, and supporting views are all stored as tables. *)

type t

(** [create pool ~desc ~page_bytes ~attr_bytes] sizes the heap so a tuple
    occupies [arity · attr_bytes] bytes of a [page_bytes] page (at least one
    tuple per page).  [?compress_ratio] (in [(0, 1]]) stores the heap
    page-compressed: each page holds [1/ratio] times as many tuples, so the
    table occupies roughly [ratio] of the uncompressed page count.  Indexes
    are never compressed.  [?protect] (default false) checksum-registers
    every heap page — and, via {!add_index}, every index node — with the
    pool so silent corruption is convicted on read or scrub. *)
val create :
  ?compress_ratio:float ->
  ?protect:bool ->
  Vis_storage.Buffer_pool.t ->
  desc:Reldesc.t ->
  page_bytes:int ->
  attr_bytes:int ->
  t

(** Whether the heap was created with [compress_ratio]. *)
val compressed : t -> bool

val desc : t -> Reldesc.t

val heap : t -> Vis_storage.Heap_file.t

(** [insert t tuple] appends and maintains every index. *)
val insert : t -> int array -> Vis_storage.Heap_file.rid

(** [delete t rid] removes the tuple and its index entries; [false] when the
    slot was already empty. *)
val delete : t -> Vis_storage.Heap_file.rid -> bool

(** [update t rid tuple] overwrites in place.  Only non-indexed attributes
    may change (protected updates); raises [Invalid_argument] if an indexed
    attribute's value differs. *)
val update : t -> Vis_storage.Heap_file.rid -> int array -> bool

(** [restore t rid tuple] undoes a delete: refills the heap slot if empty
    and re-inserts any missing index entries.  Tolerant of partial
    application — each step is skipped when already in place. *)
val restore : t -> Vis_storage.Heap_file.rid -> int array -> bool

(** [unapply_insert t rid tuple] undoes an append whose predicted rid was
    [rid]: removes whichever index entries made it in, then truncates the
    heap tail if the append executed.  Must be called in strict LIFO order
    over the batch's log. *)
val unapply_insert : t -> Vis_storage.Heap_file.rid -> int array -> bool

(** [unapply_update t rid before] writes the before image back (directly at
    the heap — indexed attributes cannot have changed under protected
    updates); [false] when the slot is empty, i.e. the update never ran. *)
val unapply_update : t -> Vis_storage.Heap_file.rid -> int array -> bool

(** [add_index t ~offset] builds a B+-tree on the attribute at [offset] by
    scanning the heap; fanout is [page_bytes / index_entry_bytes] with 16
    bytes per entry.  Returns the existing index if one is already
    attached. *)
val add_index : t -> offset:int -> Vis_storage.Btree.t

(** [rebuild_index t ~offset] repairs a corrupt index: discards and
    unregisters every node page of the existing tree, then rebuilds it
    from the heap by a fresh scan (same I/O shape as {!add_index}).
    Raises [Invalid_argument] when no index exists on that attribute. *)
val rebuild_index : t -> offset:int -> Vis_storage.Btree.t

(** Enable checksum protection on the heap and every attached index (new
    indexes inherit it).  Idempotent. *)
val protect : t -> unit

val protected : t -> bool

(** [index_on t ~offset] — the index on that attribute, if any. *)
val index_on : t -> offset:int -> Vis_storage.Btree.t option

val indexes : t -> (int * Vis_storage.Btree.t) list

val n_tuples : t -> int

val n_pages : t -> int
