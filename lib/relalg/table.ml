module Heap_file = Vis_storage.Heap_file
module Btree = Vis_storage.Btree

type t = {
  pool : Vis_storage.Buffer_pool.t;
  tdesc : Reldesc.t;
  theap : Heap_file.t;
  ix_fanout : int;
  tcompressed : bool;
  mutable tindexes : (int * Btree.t) list;
}

let index_entry_bytes = 16

let create ?compress_ratio ?(protect = false) pool ~desc ~page_bytes ~attr_bytes =
  let tuple_bytes = max 1 (Reldesc.arity desc) * attr_bytes in
  let tpp = max 1 (page_bytes / tuple_bytes) in
  let tpp, compressed =
    match compress_ratio with
    | None -> (tpp, false)
    | Some r ->
        if not (r > 0. && r <= 1.) then
          invalid_arg "Table.create: compress_ratio must be in (0, 1]";
        (* A compressed page holds proportionally more tuples; index pages
           keep their fanout (indexes are never compressed). *)
        (max 1 (int_of_float (Float.ceil (float_of_int tpp /. r))), true)
  in
  let theap = Heap_file.create pool ~tuples_per_page:tpp in
  if protect then Heap_file.protect theap;
  {
    pool;
    tdesc = desc;
    theap;
    ix_fanout = max 4 (page_bytes / index_entry_bytes);
    tcompressed = compressed;
    tindexes = [];
  }

let compressed t = t.tcompressed

let desc t = t.tdesc

let heap t = t.theap

let insert t tuple =
  if Array.length tuple <> Reldesc.arity t.tdesc then
    invalid_arg "Table.insert: arity mismatch";
  let rid = Heap_file.append t.theap tuple in
  List.iter
    (fun (offset, ix) -> Btree.insert ix ~key:tuple.(offset) rid)
    t.tindexes;
  rid

let delete t rid =
  match Heap_file.get t.theap rid with
  | None -> false
  | Some tuple ->
      List.iter
        (fun (offset, ix) -> ignore (Btree.remove ix ~key:tuple.(offset) rid))
        t.tindexes;
      Heap_file.delete t.theap rid

let update t rid tuple =
  match Heap_file.get t.theap rid with
  | None -> false
  | Some old ->
      List.iter
        (fun (offset, _) ->
          if old.(offset) <> tuple.(offset) then
            invalid_arg "Table.update: protected update touches an indexed attribute")
        t.tindexes;
      Heap_file.update t.theap rid tuple

(* Tolerant undo primitives for crash recovery: a crash may have interrupted
   the original operation between its heap and index steps, so each undo
   step checks what is actually there ([Btree.mem], slot emptiness) and
   only reverses what exists.  Undo must run in strict LIFO log order. *)

let restore t rid tuple =
  let restored = Heap_file.restore t.theap rid tuple in
  List.iter
    (fun (offset, ix) ->
      if not (Btree.mem ix ~key:tuple.(offset) rid) then
        Btree.insert ix ~key:tuple.(offset) rid)
    t.tindexes;
  restored

let unapply_insert t rid tuple =
  List.iter
    (fun (offset, ix) -> ignore (Btree.remove ix ~key:tuple.(offset) rid))
    t.tindexes;
  Heap_file.truncate_last t.theap rid

let unapply_update t rid before = Heap_file.update t.theap rid before

let add_index t ~offset =
  if offset < 0 || offset >= Reldesc.arity t.tdesc then
    invalid_arg "Table.add_index: bad offset";
  match List.assoc_opt offset t.tindexes with
  | Some ix -> ix
  | None ->
      (* Indexes inherit the heap's protection: a checksummed table keeps
         its whole access-path surface verifiable. *)
      let ix =
        Btree.create ~protect:(Heap_file.protected t.theap) t.pool
          ~fanout:t.ix_fanout
      in
      Heap_file.scan t.theap ~f:(fun rid tuple ->
          Btree.insert ix ~key:tuple.(offset) rid);
      t.tindexes <- (offset, ix) :: t.tindexes;
      ix

(* Self-healing repair for a corrupt index: unregister and abandon every
   node page of the old tree, then rebuild from the (trusted) heap by a
   fresh scan.  The rebuilt tree has new gids, which is fine — physical
   signatures cover entry sequences, not page identifiers. *)
let rebuild_index t ~offset =
  match List.assoc_opt offset t.tindexes with
  | None -> invalid_arg "Table.rebuild_index: no index on this attribute"
  | Some old ->
      List.iter
        (fun gid ->
          Vis_storage.Buffer_pool.discard t.pool gid;
          Vis_storage.Buffer_pool.unprotect t.pool gid)
        (Btree.page_gids old);
      t.tindexes <- List.remove_assoc offset t.tindexes;
      add_index t ~offset

let protect t =
  Heap_file.protect t.theap;
  List.iter (fun (_, ix) -> Btree.protect ix) t.tindexes

let protected t = Heap_file.protected t.theap

let index_on t ~offset = List.assoc_opt offset t.tindexes

let indexes t = t.tindexes

let n_tuples t = Heap_file.n_tuples t.theap

let n_pages t = Heap_file.n_pages t.theap
