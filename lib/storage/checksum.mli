(** Word-granular FNV-1a checksums for simulated page payloads and WAL
    records.

    The device model stores native words, not bytes, so checksums fold
    words directly.  All operations are pure and host-independent: the
    same payload always hashes to the same non-negative int, which is what
    lets a stored checksum computed at write-out time convict a payload
    that rotted afterwards. *)

(** Running-state seed for incremental use via {!add}. *)
val empty : int

(** [add h w] folds one word into a running checksum. *)
val add : int -> int -> int

(** [finish h] clamps a running checksum to a non-negative int. *)
val finish : int -> int

(** [array a] — checksum of an int array ([init] continues a running
    state). *)
val array : ?init:int -> int array -> int

(** [arena a ~off ~len] — checksum of an arena window, without
    materializing it. *)
val arena : ?init:int -> Arena.t -> off:int -> len:int -> int
