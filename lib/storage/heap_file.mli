(** An unordered heap file of fixed-arity tuples (int arrays), paged through
    a {!Buffer_pool}.  Relations, materialized views and shipped deltas are
    all stored as heap files (Section 3.1: relations and views are stored as
    heaps).

    Tuple data lives off the OCaml heap in a per-file {!Arena}: a page is a
    zero-copy block of native-int words (one presence flag plus the
    attributes per slot), so file contents put no pressure on the GC and
    {!scan_slices} can hand out slot windows by reference.  The file's arity
    is fixed at {!create} or by the first {!append}; later operations with a
    different arity raise [Invalid_argument]. *)

type rid = { rid_page : int; rid_slot : int }
(** Record identifier: page index within the file and slot within the
    page. *)

type t

(** [create ?arity pool ~tuples_per_page] — an empty file.  Without [arity]
    the first {!append} fixes it. *)
val create : ?arity:int -> Buffer_pool.t -> tuples_per_page:int -> t

(** [append t tuple] stores a tuple at the end of the file (touching the tail
    page, allocating a new one when full) and returns its rid.  The tuple is
    copied into the arena, so later mutation of [tuple] is invisible. *)
val append : t -> int array -> rid

(** [get t rid] fetches a tuple (materialized fresh from the arena), or
    [None] when the slot was deleted.  Touches the page. *)
val get : t -> rid -> int array option

(** [delete t rid] clears the slot; [false] when it was already empty. *)
val delete : t -> rid -> bool

(** [update t rid tuple] overwrites the slot in place; [false] when empty. *)
val update : t -> rid -> int array -> bool

(** [next_rid t] is the rid the next {!append} will return — used by the
    write-ahead log to record an insertion's destination before applying
    it. *)
val next_rid : t -> rid

(** [restore t rid tuple] refills an emptied slot (undo of a delete);
    [false] when the slot is already occupied — a tolerant no-op, since
    recovery cannot know how far the crashed operation got. *)
val restore : t -> rid -> int array -> bool

(** [truncate_last t rid] removes the tail slot if [rid] is it (undo of an
    append), dropping the tail page entirely when the append had grown it
    (its arena block is released LIFO).  [false] when [rid] points one past
    the tail, i.e. the logged append never executed.  Raises
    [Invalid_argument] if [rid] is neither — undo must run in strict LIFO
    order. *)
val truncate_last : t -> rid -> bool

(** [scan t ~f] visits every live tuple in file order, touching every page
    (including pages that became empty).  Tuples are materialized fresh. *)
val scan : t -> f:(rid -> int array -> unit) -> unit

(** [scan_slices t ~f] is {!scan} without the copies: [f] receives each live
    slot's attribute window straight into the arena.  The window is only
    valid until the file next grows. *)
val scan_slices : t -> f:(rid -> Arena.words -> unit) -> unit

(** Number of live tuples. *)
val n_tuples : t -> int

(** Number of pages the file occupies. *)
val n_pages : t -> int

val tuples_per_page : t -> int

(** Arena words currently backing the file (page blocks in use). *)
val arena_words : t -> int

(** [page_gid t i] is the buffer-pool page identifier of the file's [i]-th
    page (for tests). *)
val page_gid : t -> int -> int

(** [protect t] enables checksum protection: every current and future page
    is registered with the pool ({!Buffer_pool.protect}) using a checksum
    over its whole arena block, so silent damage is convicted on the next
    miss-read or scrub probe.  Idempotent. *)
val protect : t -> unit

val protected : t -> bool
