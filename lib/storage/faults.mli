(** Deterministic fault injection for the simulated storage device.

    A {e fault plan} decides, per physical page operation, whether that
    operation fails.  The buffer pool consults the plan at every read
    (miss), write (dirty eviction, write-back) and page allocation, so a
    plan can fail any I/O the storage engine performs — by schedule ("fail
    the Nth write"), by page ("every write to page 17 fails"), or by a
    seeded per-operation coin flip.  Plans are pure functions of their
    construction arguments: the same plan consulted by the same operation
    sequence injects the same faults, whatever the host or [--jobs]
    setting, which is what makes crash-recovery runs replayable.

    Faults come in three kinds:

    - {e transient} faults model recoverable device hiccups.  The injection
      site itself retries with bounded exponential backoff (the delays are
      charged to a simulated clock, never a real [sleep]); only when the
      retry budget is exhausted does the fault escalate and surface.
    - {e crash} faults model a process death mid-batch: they fire once and
      are then spent, so a recovery followed by a re-run of the batch
      succeeds.
    - {e permanent} faults model corrupted media: they fire on every
      matching operation, so re-running the batch fails again and the
      maintenance layer must degrade to recomputation.

    All surfaced faults are raised as the single typed exception
    {!Injected}, which the maintenance layer catches at its API boundary
    and converts to a [result] — no other exception ever crosses the
    storage API because of an injected fault.

    {2 Silent corruption}

    A fourth and fifth failure mode damage data instead of refusing
    operations: {!corruption} faults ([Bit_flip], [Torn_write]) fire on the
    {e successful} completion of a write-class operation and mutate the
    page payload the device just accepted.  A bit flip is entirely silent —
    the operation reports success and only a later checksum verification
    (read-path or scrub) can convict the page.  A torn write persists a
    prefix of the payload and then surfaces as a {!Crash} (the process died
    mid-transfer), so recovery runs against a half-written page or log
    tail.  Corruption schedules are polled on a separate {!damage} pass
    with their own hit counters, so adding them to a plan never perturbs
    the fail-stop schedules' counting or probability stream.

    {2 Schedule edge cases and precedence (pinned behavior)}

    - [Fail_nth]/[Corrupt_nth] with [n <= 0] never fires: hit counters are
      1-based, so no operation count ever equals a non-positive [n].
    - [Fail_prob] with [p = 0.0] never fires (draws are in [[0, 1)] and the
      test is strict [draw < p]); with [p = 1.0] it fires on {e every}
      matching operation — under kind [Transient] the in-place retries all
      fail too, so the fault escalates after the retry budget.
    - When several schedules fire on the same operation (e.g. a [Fail_page]
      and a [Fail_nth] both matching it), every firing slot still advances
      its own counters, then the {e most severe} kind wins —
      [Transient < Crash < Permanent] — with ties going to the earliest
      slot in the plan's list.  Firing [Crash] slots are spent even when a
      more severe fault shadows them, so the shadowed crash does not fire
      again later.
    - When a [Bit_flip] and a [Torn_write] corruption both fire on one
      write, the torn write wins (it subsumes the flip: the payload is
      already half-gone); every firing corruption slot is spent. *)

type op = Read | Write | Alloc

type kind =
  | Transient  (** retried in place; surfaces only past the retry budget *)
  | Crash  (** one-shot; spent once it fires *)
  | Permanent  (** fires on every matching operation *)

type fault = {
  f_op : op;
  f_kind : kind;
  f_page : int;  (** page the failing operation addressed *)
  f_seq : int;  (** global operation sequence number at injection *)
  f_retries : int;  (** transient retries spent before surfacing *)
}

exception Injected of fault

type corruption =
  | Bit_flip  (** flip one payload bit post-write; fully silent *)
  | Torn_write
      (** persist only a payload prefix, then surface as a {!Crash} *)

type schedule =
  | Fail_nth of { op : op option; n : int; kind : kind }
      (** fail the [n]-th (1-based) operation of type [op] ([None] = any) *)
  | Fail_page of { op : op option; page : int; kind : kind }
      (** fail every matching operation addressing [page] *)
  | Fail_prob of { op : op option; p : float; kind : kind }
      (** fail each matching operation with probability [p], drawn from the
          plan's private seeded RNG *)
  | Corrupt_nth of { op : op option; n : int; way : corruption }
      (** damage the payload of the [n]-th successful matching write-class
          operation (own 1-based counter, independent of [Fail_nth]) *)
  | Corrupt_page of { op : op option; page : int; way : corruption }
      (** damage [page]'s payload on its next successful matching write *)
  | Corrupt_prob of { op : op option; p : float; way : corruption }
      (** damage each successful matching write with probability [p] *)

type policy = {
  max_retries : int;  (** transient attempts before escalating *)
  base_delay_ms : float;  (** first backoff delay *)
  multiplier : float;  (** backoff growth per retry *)
  max_delay_ms : float;  (** backoff cap *)
}

(** 4 retries, 1 ms base delay, doubling, capped at 50 ms. *)
val default_policy : policy

type t

(** [make ?policy ?seed schedules] — [seed] feeds the private RNG behind
    [Fail_prob] draws (default 0).  The plan starts {e disarmed}. *)
val make : ?policy:policy -> ?seed:int -> schedule list -> t

(** A plan with no schedules: never injects. *)
val none : unit -> t

(** [random ?policy ?schedules ~rng ()] draws a small random plan —
    [schedules] (default 3) schedules of random op/kind/site — entirely from
    [rng], so a [(seed, trial)]-keyed state replays the same plan. *)
val random : ?policy:policy -> ?schedules:int -> rng:Random.State.t -> unit -> t

(** Arming gates injection: a disarmed plan passes every operation through
    (counters still advance), so callers can scope faults to exactly the
    region under test (e.g. delta application but not staging or
    recovery). *)
val arm : t -> unit

val disarm : t -> unit

val armed : t -> bool

(** [check t op ~page] — called by the buffer pool on each physical
    operation.  Returns normally when the operation succeeds (possibly
    after internal transient retries), raises {!Injected} when it fails. *)
val check : t -> op -> page:int -> unit

(** [damage t op ~page] — polled by the buffer pool after a write-class
    operation {e succeeded}: [Some (way, selector)] means the device
    damaged the payload it just accepted.  The selector is a non-negative
    seeded draw the payload owner maps onto a damage site (which bit,
    where to tear), so the whole event is a pure function of the plan.
    Corruption slots are spent once fired; a disarmed plan never returns
    damage.  Does not advance the fail-stop operation sequence. *)
val damage : t -> op -> page:int -> (corruption * int) option

(** [random_damage ?n ~rng ~targets ()] draws a pure {e at-rest} damage
    plan: up to [n] (default 2) [(way, pick, selector)] triples with
    distinct [pick]s in [[0, targets)], entirely from [rng].  Callers map
    [pick] onto a deterministic target-page list and apply the damage
    directly to a quiesced store ([Buffer_pool.corrupt_page]) — this is
    how the corruption-recovery oracle injects media rot that no write
    triggered. *)
val random_damage :
  ?n:int -> rng:Random.State.t -> targets:int -> unit ->
  (corruption * int * int) list

(** Operations consulted so far (including while disarmed). *)
val seq : t -> int

(** Faults surfaced (raised) so far. *)
val injected : t -> int

(** Transient retries performed so far. *)
val retries : t -> int

(** Simulated milliseconds spent in backoff delays. *)
val elapsed_ms : t -> float

val pp_fault : Format.formatter -> fault -> unit

val op_name : op -> string

val kind_name : kind -> string

val corruption_name : corruption -> string
