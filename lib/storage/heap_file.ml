type rid = { rid_page : int; rid_slot : int }

(* A page is a zero-copy window into the file's {!Arena}: [off] is the word
   offset of its block, holding [tpp] slots of [1 + arity] words each — word
   0 is the presence flag, words 1..arity the attributes.  Tuple data lives
   off the OCaml heap; the page records only bookkeeping. *)
type page = { gid : int; off : int; mutable live : int }

type t = {
  pool : Buffer_pool.t;
  tpp : int;
  arena : Arena.t;
  mutable arity : int;  (* -1 until the first append fixes it *)
  mutable pages : page array;
  mutable n_pages : int;
  mutable n_tuples : int;
  mutable tail_used : int;  (* slots handed out on the last page *)
  mutable prot : bool;  (* checksum-protect pages as they are created *)
}

let create ?arity pool ~tuples_per_page =
  if tuples_per_page < 1 then invalid_arg "Heap_file.create";
  (match arity with
  | Some a when a < 0 -> invalid_arg "Heap_file.create: negative arity"
  | _ -> ());
  {
    pool;
    tpp = tuples_per_page;
    arena = Arena.create ();
    arity = (match arity with Some a -> a | None -> -1);
    pages = [||];
    n_pages = 0;
    n_tuples = 0;
    tail_used = 0;
    prot = false;
  }

let slot_words t = 1 + t.arity

let page_words t = t.tpp * slot_words t

let slot_off t page slot = page.off + (slot * slot_words t)

let fix_arity t tuple =
  let a = Array.length tuple in
  if t.arity = -1 then t.arity <- a
  else if a <> t.arity then invalid_arg "Heap_file: arity mismatch"

(* Register a page's arena window with the pool's corruption machinery.
   The checksum covers the whole block (presence flags included), so any
   damaged word convicts the page.  Damage selectors map onto the block
   deterministically: a bit flip picks a word and one of its low 62 bits, a
   torn write keeps a word prefix and zeroes the rest. *)
let protect_page t page =
  Buffer_pool.protect t.pool page.gid
    {
      Buffer_pool.hk_checksum =
        Some (fun () -> Checksum.arena t.arena ~off:page.off ~len:(page_words t));
      hk_corrupt =
        (fun way sel ->
          let words = page_words t in
          match way with
          | Faults.Bit_flip ->
              let w = page.off + (sel mod words) in
              let b = sel / words mod 62 in
              Arena.set t.arena w (Arena.get t.arena w lxor (1 lsl b))
          | Faults.Torn_write ->
              (* The unwritten tail holds stale device garbage, marked with
                 a high bit no real attribute carries — so a tear is
                 detectably wrong even over a run of empty slots. *)
              for w = sel mod words to words - 1 do
                Arena.set t.arena (page.off + w) ((sel + w) lor (1 lsl 60))
              done);
    }

let grow t =
  (* Both fault points (the allocation, and the eviction a touch_new may
     force) fire before any heap mutation, so a failed grow leaves the file
     exactly as it was — including the arena, whose block is only carved out
     afterwards. *)
  let gid = Buffer_pool.fresh_page t.pool in
  Buffer_pool.touch_new t.pool gid;
  let off = Arena.alloc t.arena (page_words t) in
  let page = { gid; off; live = 0 } in
  if t.prot then protect_page t page;
  if t.n_pages = Array.length t.pages then begin
    let ncap = max 8 (2 * Array.length t.pages) in
    let npages = Array.make ncap page in
    Array.blit t.pages 0 npages 0 t.n_pages;
    t.pages <- npages
  end;
  t.pages.(t.n_pages) <- page;
  t.n_pages <- t.n_pages + 1;
  t.tail_used <- 0;
  page

let write_slot t page slot tuple =
  let off = slot_off t page slot in
  Arena.set t.arena off 1;
  Arena.blit_from_array t.arena ~off:(off + 1) tuple

let slot_live t page slot = Arena.get t.arena (slot_off t page slot) <> 0

let clear_slot t page slot = Arena.set t.arena (slot_off t page slot) 0

let read_slot t page slot =
  Arena.to_array t.arena ~off:(slot_off t page slot + 1) ~len:t.arity

let append t tuple =
  fix_arity t tuple;
  let page =
    if t.n_pages = 0 || t.tail_used >= t.tpp then grow t
    else begin
      let page = t.pages.(t.n_pages - 1) in
      Buffer_pool.touch t.pool page.gid ~dirty:true;
      page
    end
  in
  let slot = t.tail_used in
  write_slot t page slot tuple;
  page.live <- page.live + 1;
  t.tail_used <- t.tail_used + 1;
  t.n_tuples <- t.n_tuples + 1;
  { rid_page = t.n_pages - 1; rid_slot = slot }

let next_rid t =
  if t.n_pages = 0 || t.tail_used >= t.tpp then { rid_page = t.n_pages; rid_slot = 0 }
  else { rid_page = t.n_pages - 1; rid_slot = t.tail_used }

let check_rid t rid =
  rid.rid_page >= 0 && rid.rid_page < t.n_pages && rid.rid_slot >= 0
  && rid.rid_slot < t.tpp

let get t rid =
  if not (check_rid t rid) then invalid_arg "Heap_file.get: bad rid";
  let page = t.pages.(rid.rid_page) in
  Buffer_pool.touch t.pool page.gid ~dirty:false;
  if slot_live t page rid.rid_slot then Some (read_slot t page rid.rid_slot)
  else None

let delete t rid =
  if not (check_rid t rid) then invalid_arg "Heap_file.delete: bad rid";
  let page = t.pages.(rid.rid_page) in
  Buffer_pool.touch t.pool page.gid ~dirty:true;
  if not (slot_live t page rid.rid_slot) then false
  else begin
    clear_slot t page rid.rid_slot;
    page.live <- page.live - 1;
    t.n_tuples <- t.n_tuples - 1;
    true
  end

let update t rid tuple =
  if not (check_rid t rid) then invalid_arg "Heap_file.update: bad rid";
  fix_arity t tuple;
  let page = t.pages.(rid.rid_page) in
  Buffer_pool.touch t.pool page.gid ~dirty:true;
  if not (slot_live t page rid.rid_slot) then false
  else begin
    write_slot t page rid.rid_slot tuple;
    true
  end

let restore t rid tuple =
  if not (check_rid t rid) then invalid_arg "Heap_file.restore: bad rid";
  fix_arity t tuple;
  let page = t.pages.(rid.rid_page) in
  Buffer_pool.touch t.pool page.gid ~dirty:true;
  if slot_live t page rid.rid_slot then false
  else begin
    write_slot t page rid.rid_slot tuple;
    page.live <- page.live + 1;
    t.n_tuples <- t.n_tuples + 1;
    true
  end

let truncate_last t rid =
  (* Tolerant: the rid was *predicted* before the append ran, so when undo
     reaches it the append may never have happened — then the rid still
     points one past the tail and there is nothing to remove. *)
  if
    rid.rid_page >= t.n_pages
    || (rid.rid_page = t.n_pages - 1 && rid.rid_slot >= t.tail_used)
  then false
  else if rid.rid_page = t.n_pages - 1 && rid.rid_slot = t.tail_used - 1 then begin
    let page = t.pages.(rid.rid_page) in
    Buffer_pool.touch t.pool page.gid ~dirty:true;
    if slot_live t page rid.rid_slot then begin
      clear_slot t page rid.rid_slot;
      page.live <- page.live - 1;
      t.n_tuples <- t.n_tuples - 1
    end;
    t.tail_used <- t.tail_used - 1;
    if t.tail_used = 0 then begin
      (* The append that created this slot also grew the page: drop it
         without a write-back, returning its arena block (LIFO — the tail
         page's block is the arena's tail) and restoring the pre-append
         page count. *)
      Buffer_pool.discard t.pool page.gid;
      if t.prot then Buffer_pool.unprotect t.pool page.gid;
      Arena.release t.arena (page_words t);
      t.n_pages <- t.n_pages - 1;
      t.tail_used <- (if t.n_pages = 0 then 0 else t.tpp)
    end;
    true
  end
  else invalid_arg "Heap_file.truncate_last: rid is not the tail"

let scan t ~f =
  for p = 0 to t.n_pages - 1 do
    let page = t.pages.(p) in
    Buffer_pool.touch t.pool page.gid ~dirty:false;
    for s = 0 to t.tpp - 1 do
      if slot_live t page s then f { rid_page = p; rid_slot = s } (read_slot t page s)
    done
  done

(* Zero-copy scan: hands [f] the arena window of each slot's attributes
   instead of materializing tuples on the OCaml heap. *)
let scan_slices t ~f =
  for p = 0 to t.n_pages - 1 do
    let page = t.pages.(p) in
    Buffer_pool.touch t.pool page.gid ~dirty:false;
    for s = 0 to t.tpp - 1 do
      if slot_live t page s then
        f
          { rid_page = p; rid_slot = s }
          (Arena.slice t.arena ~off:(slot_off t page s + 1) ~len:t.arity)
    done
  done

let n_tuples t = t.n_tuples

let n_pages t = t.n_pages

let tuples_per_page t = t.tpp

let arena_words t = Arena.used_words t.arena

let page_gid t i =
  if i < 0 || i >= t.n_pages then invalid_arg "Heap_file.page_gid";
  t.pages.(i).gid

let protect t =
  if not t.prot then begin
    t.prot <- true;
    for i = 0 to t.n_pages - 1 do
      protect_page t t.pages.(i)
    done
  end

let protected t = t.prot
