type rid = { rid_page : int; rid_slot : int }

type page = { gid : int; slots : int array option array; mutable live : int }

type t = {
  pool : Buffer_pool.t;
  tpp : int;
  mutable pages : page array;
  mutable n_pages : int;
  mutable n_tuples : int;
  mutable tail_used : int;  (* slots handed out on the last page *)
}

let create pool ~tuples_per_page =
  if tuples_per_page < 1 then invalid_arg "Heap_file.create";
  {
    pool;
    tpp = tuples_per_page;
    pages = [||];
    n_pages = 0;
    n_tuples = 0;
    tail_used = 0;
  }

let grow t =
  (* Both fault points (the allocation, and the eviction a touch_new may
     force) fire before any heap mutation, so a failed grow leaves the file
     exactly as it was. *)
  let gid = Buffer_pool.fresh_page t.pool in
  Buffer_pool.touch_new t.pool gid;
  let page = { gid; slots = Array.make t.tpp None; live = 0 } in
  if t.n_pages = Array.length t.pages then begin
    let ncap = max 8 (2 * Array.length t.pages) in
    let npages = Array.make ncap page in
    Array.blit t.pages 0 npages 0 t.n_pages;
    t.pages <- npages
  end;
  t.pages.(t.n_pages) <- page;
  t.n_pages <- t.n_pages + 1;
  t.tail_used <- 0;
  page

let append t tuple =
  let page =
    if t.n_pages = 0 || t.tail_used >= t.tpp then grow t
    else begin
      let page = t.pages.(t.n_pages - 1) in
      Buffer_pool.touch t.pool page.gid ~dirty:true;
      page
    end
  in
  let slot = t.tail_used in
  page.slots.(slot) <- Some (Array.copy tuple);
  page.live <- page.live + 1;
  t.tail_used <- t.tail_used + 1;
  t.n_tuples <- t.n_tuples + 1;
  { rid_page = t.n_pages - 1; rid_slot = slot }

let next_rid t =
  if t.n_pages = 0 || t.tail_used >= t.tpp then { rid_page = t.n_pages; rid_slot = 0 }
  else { rid_page = t.n_pages - 1; rid_slot = t.tail_used }

let check_rid t rid =
  rid.rid_page >= 0 && rid.rid_page < t.n_pages && rid.rid_slot >= 0
  && rid.rid_slot < t.tpp

let get t rid =
  if not (check_rid t rid) then invalid_arg "Heap_file.get: bad rid";
  let page = t.pages.(rid.rid_page) in
  Buffer_pool.touch t.pool page.gid ~dirty:false;
  page.slots.(rid.rid_slot)

let delete t rid =
  if not (check_rid t rid) then invalid_arg "Heap_file.delete: bad rid";
  let page = t.pages.(rid.rid_page) in
  Buffer_pool.touch t.pool page.gid ~dirty:true;
  match page.slots.(rid.rid_slot) with
  | None -> false
  | Some _ ->
      page.slots.(rid.rid_slot) <- None;
      page.live <- page.live - 1;
      t.n_tuples <- t.n_tuples - 1;
      true

let update t rid tuple =
  if not (check_rid t rid) then invalid_arg "Heap_file.update: bad rid";
  let page = t.pages.(rid.rid_page) in
  Buffer_pool.touch t.pool page.gid ~dirty:true;
  match page.slots.(rid.rid_slot) with
  | None -> false
  | Some _ ->
      page.slots.(rid.rid_slot) <- Some (Array.copy tuple);
      true

let restore t rid tuple =
  if not (check_rid t rid) then invalid_arg "Heap_file.restore: bad rid";
  let page = t.pages.(rid.rid_page) in
  Buffer_pool.touch t.pool page.gid ~dirty:true;
  match page.slots.(rid.rid_slot) with
  | Some _ -> false
  | None ->
      page.slots.(rid.rid_slot) <- Some (Array.copy tuple);
      page.live <- page.live + 1;
      t.n_tuples <- t.n_tuples + 1;
      true

let truncate_last t rid =
  (* Tolerant: the rid was *predicted* before the append ran, so when undo
     reaches it the append may never have happened — then the rid still
     points one past the tail and there is nothing to remove. *)
  if
    rid.rid_page >= t.n_pages
    || (rid.rid_page = t.n_pages - 1 && rid.rid_slot >= t.tail_used)
  then false
  else if rid.rid_page = t.n_pages - 1 && rid.rid_slot = t.tail_used - 1 then begin
    let page = t.pages.(rid.rid_page) in
    Buffer_pool.touch t.pool page.gid ~dirty:true;
    (match page.slots.(rid.rid_slot) with
    | Some _ ->
        page.slots.(rid.rid_slot) <- None;
        page.live <- page.live - 1;
        t.n_tuples <- t.n_tuples - 1
    | None -> ());
    t.tail_used <- t.tail_used - 1;
    if t.tail_used = 0 then begin
      (* The append that created this slot also grew the page: drop it
         without a write-back, restoring the pre-append page count. *)
      Buffer_pool.discard t.pool page.gid;
      t.n_pages <- t.n_pages - 1;
      t.tail_used <- (if t.n_pages = 0 then 0 else t.tpp)
    end;
    true
  end
  else invalid_arg "Heap_file.truncate_last: rid is not the tail"

let scan t ~f =
  for p = 0 to t.n_pages - 1 do
    let page = t.pages.(p) in
    Buffer_pool.touch t.pool page.gid ~dirty:false;
    for s = 0 to t.tpp - 1 do
      match page.slots.(s) with
      | Some tuple -> f { rid_page = p; rid_slot = s } tuple
      | None -> ()
    done
  done

let n_tuples t = t.n_tuples

let n_pages t = t.n_pages

let tuples_per_page t = t.tpp

let page_gid t i =
  if i < 0 || i >= t.n_pages then invalid_arg "Heap_file.page_gid";
  t.pages.(i).gid
