(* FNV-1a over native words.  The simulated device stores whole words, so
   the checksum folds each word in directly instead of byte-splitting; the
   multiply wraps in native int arithmetic, which is deterministic across
   hosts (OCaml ints are 63-bit everywhere this repo builds). *)

(* FNV-1a offset basis, truncated to OCaml's 63-bit int range.  Only
   consistency matters here, not the exact FNV constants. *)
let fnv_offset = 0x3bf29ce484222325
let fnv_prime = 0x100000001b3

let mix h w = (h lxor w) * fnv_prime

let empty = fnv_offset

let add = mix

let finish h = h land max_int

let array ?(init = empty) a =
  finish (Array.fold_left mix init a)

let arena ?(init = empty) arena ~off ~len =
  let h = ref init in
  for i = off to off + len - 1 do
    h := mix !h (Arena.get arena i)
  done;
  finish !h
