(* Logical write-ahead log.  See wal.mli for the protocol.  The in-memory
   record list is the log's contents; the buffer-pool pages only model its
   I/O footprint.  Every fault point in [append]/[sync] fires before the
   record list or page metadata changes, so a failed log operation leaves
   the log exactly as it was (and the protected data operation, which only
   runs after its record is logged, never happens either). *)

type record =
  | Begin
  | Commit
  | Ins of { table : int; rid : Heap_file.rid; tuple : int array }
  | Del of { table : int; rid : Heap_file.rid; before : int array }
  | Upd of { table : int; rid : Heap_file.rid; before : int array; after : int array }

type t = {
  pool : Buffer_pool.t;
  page_bytes : int;
  mutable records : record list;  (* newest first *)
  mutable n_records : int;
  mutable pages : int list;  (* gids, newest (tail) first *)
  mutable tail_bytes : int;  (* bytes used on the tail page *)
  mutable synced : int;  (* records covered by the last successful [sync] *)
  mutable t_total_records : int;
  mutable t_total_pages : int;
}

let word = 8

(* tag+table header, rid as two words, payload words. *)
let record_bytes = function
  | Begin | Commit -> word
  | Ins r -> word * (4 + Array.length r.tuple)
  | Del r -> word * (4 + Array.length r.before)
  | Upd r -> word * (4 + Array.length r.before + Array.length r.after)

let create pool ~page_bytes =
  if page_bytes < 5 * word then invalid_arg "Wal.create: page_bytes too small";
  {
    pool;
    page_bytes;
    records = [];
    n_records = 0;
    pages = [];
    tail_bytes = 0;
    synced = 0;
    t_total_records = 0;
    t_total_pages = 0;
  }

let tail t = match t.pages with [] -> None | gid :: _ -> Some gid

let append t r =
  let bytes = record_bytes r in
  let fits =
    match tail t with
    | Some _ -> t.tail_bytes + bytes <= t.page_bytes
    | None -> false
  in
  if fits then begin
    (* Tail is resident and pinned: a hit, no fault point. *)
    Buffer_pool.touch t.pool (Option.get (tail t)) ~dirty:true;
    t.tail_bytes <- t.tail_bytes + bytes
  end
  else begin
    (* Seal the old tail (forced out now — one WAL write), then allocate as
       many fresh pages as the record spans.  A fault anywhere here leaves
       the old tail pinned and the metadata untouched; the retried append
       redoes the seal as a no-op (the page is clean by then). *)
    (match tail t with Some gid -> Buffer_pool.write_back t.pool gid | None -> ());
    let n_new = max 1 ((bytes + t.page_bytes - 1) / t.page_bytes) in
    let gids =
      List.init n_new (fun _ ->
          let gid = Buffer_pool.fresh_page t.pool in
          Buffer_pool.touch_new t.pool gid;
          gid)
    in
    let new_tail = List.nth gids (n_new - 1) in
    Buffer_pool.pin t.pool new_tail;
    (match tail t with Some gid -> Buffer_pool.unpin t.pool gid | None -> ());
    t.pages <- List.rev_append gids t.pages;
    t.t_total_pages <- t.t_total_pages + n_new;
    t.tail_bytes <- bytes - ((n_new - 1) * t.page_bytes)
  end;
  t.records <- r :: t.records;
  t.n_records <- t.n_records + 1;
  t.t_total_records <- t.t_total_records + 1

let sync t =
  (* The write-back is the fault point; [synced] only advances once the
     force actually happened. *)
  (match tail t with Some gid -> Buffer_pool.write_back t.pool gid | None -> ());
  t.synced <- t.n_records

let checkpoint t =
  (match tail t with Some gid -> Buffer_pool.unpin t.pool gid | None -> ());
  List.iter (fun gid -> Buffer_pool.discard t.pool gid) t.pages;
  t.records <- [];
  t.n_records <- 0;
  t.pages <- [];
  t.tail_bytes <- 0;
  t.synced <- 0

(* A Commit at the head decides the batch's fate only once [sync] has
   forced it out: a crash between appending Commit and forcing the log
   means the commit never became durable, so the batch aborts and its
   records roll back exactly as if the Commit were never written. *)
let committed t =
  match t.records with Commit :: _ -> t.synced >= t.n_records | _ -> false

let unfinished t =
  let newest_first =
    match t.records with
    | Commit :: rest when not (committed t) -> rest
    | records -> records
  in
  match newest_first with
  | [] | Commit :: _ -> []
  | newest_first ->
      (* Collect newest-first until the batch's Begin (or a stale Commit);
         the accumulator flips to oldest-first, so flip back. *)
      let rec upto_begin acc = function
        | [] | Begin :: _ | Commit :: _ -> acc
        | r :: rest -> upto_begin (r :: acc) rest
      in
      List.rev (upto_begin [] newest_first)

let in_flight t =
  match t.records with [] -> false | Commit :: _ -> not (committed t) | _ -> true

let page_gids t = t.pages

let n_records t = t.n_records

let total_records t = t.t_total_records

let total_pages t = t.t_total_pages
