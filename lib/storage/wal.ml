(* Logical write-ahead log.  See wal.mli for the protocol.  The in-memory
   record list is the log's contents; the buffer-pool pages only model its
   I/O footprint.  Every fault point in [append]/[sync] fires before the
   record list or page metadata changes, so a failed log operation leaves
   the log exactly as it was (and the protected data operation, which only
   runs after its record is logged, never happens either).

   Durability is a sequence-number high-water mark: [synced] counts the
   records covered by the last successful [sync].  A batch's [Commit] is
   durable iff its position is <= [synced], which is what lets group commit
   keep several committed-but-unforced batches in the log and cover them
   all with one force.  Rollback undoes everything after the last durable
   commit, newest first — cross-batch LIFO. *)

type record =
  | Begin
  | Commit
  | Ins of { table : int; rid : Heap_file.rid; tuple : int array }
  | Del of { table : int; rid : Heap_file.rid; before : int array }
  | Upd of { table : int; rid : Heap_file.rid; before : int array; after : int array }

type t = {
  pool : Buffer_pool.t;
  page_bytes : int;
  mutable records : record list;  (* newest first *)
  mutable n_records : int;
  mutable pages : int list;  (* gids, newest (tail) first *)
  mutable tail_bytes : int;  (* bytes used on the tail page *)
  mutable synced : int;  (* records covered by the last successful [sync] *)
  mutable t_total_records : int;
  mutable t_total_pages : int;
  mutable t_total_bytes : int;
  mutable t_total_syncs : int;
}

let word = 8

(* tag+table header, rid as two words, payload words. *)
let record_bytes = function
  | Begin | Commit -> word
  | Ins r -> word * (4 + Array.length r.tuple)
  | Del r -> word * (4 + Array.length r.before)
  | Upd r -> word * (4 + Array.length r.before + Array.length r.after)

let create pool ~page_bytes =
  if page_bytes < 5 * word then invalid_arg "Wal.create: page_bytes too small";
  {
    pool;
    page_bytes;
    records = [];
    n_records = 0;
    pages = [];
    tail_bytes = 0;
    synced = 0;
    t_total_records = 0;
    t_total_pages = 0;
    t_total_bytes = 0;
    t_total_syncs = 0;
  }

let tail t = match t.pages with [] -> None | gid :: _ -> Some gid

let append t r =
  let bytes = record_bytes r in
  let fits =
    match tail t with
    | Some _ -> t.tail_bytes + bytes <= t.page_bytes
    | None -> false
  in
  if fits then begin
    (* Tail is resident and pinned: a hit, no fault point. *)
    Buffer_pool.touch t.pool (Option.get (tail t)) ~dirty:true;
    t.tail_bytes <- t.tail_bytes + bytes
  end
  else begin
    (* Seal the old tail (forced out now — one WAL write), then allocate as
       many fresh pages as the record spans.  A fault anywhere here leaves
       the old tail pinned and the metadata untouched; the retried append
       redoes the seal as a no-op (the page is clean by then). *)
    (match tail t with Some gid -> Buffer_pool.write_back t.pool gid | None -> ());
    let n_new = max 1 ((bytes + t.page_bytes - 1) / t.page_bytes) in
    let gids =
      List.init n_new (fun _ ->
          let gid = Buffer_pool.fresh_page t.pool in
          Buffer_pool.touch_new t.pool gid;
          gid)
    in
    let new_tail = List.nth gids (n_new - 1) in
    Buffer_pool.pin t.pool new_tail;
    (match tail t with Some gid -> Buffer_pool.unpin t.pool gid | None -> ());
    t.pages <- List.rev_append gids t.pages;
    t.t_total_pages <- t.t_total_pages + n_new;
    t.tail_bytes <- bytes - ((n_new - 1) * t.page_bytes)
  end;
  t.records <- r :: t.records;
  t.n_records <- t.n_records + 1;
  t.t_total_records <- t.t_total_records + 1;
  t.t_total_bytes <- t.t_total_bytes + bytes

let sync t =
  (* The write-back is the fault point; [synced] only advances (and the sync
     is only counted) once the force actually happened. *)
  (match tail t with Some gid -> Buffer_pool.write_back t.pool gid | None -> ());
  t.synced <- t.n_records;
  t.t_total_syncs <- t.t_total_syncs + 1;
  Iostats.record_wal_sync (Buffer_pool.stats t.pool)

let checkpoint t =
  (match tail t with Some gid -> Buffer_pool.unpin t.pool gid | None -> ());
  List.iter (fun gid -> Buffer_pool.discard t.pool gid) t.pages;
  t.records <- [];
  t.n_records <- 0;
  t.pages <- [];
  t.tail_bytes <- 0;
  t.synced <- 0

(* A Commit decides its batch's fate only once [sync] has forced it: a
   crash between appending Commit and forcing the log means the commit
   never became durable, so the batch aborts and its records roll back
   exactly as if the Commit were never written.  [committed] asks whether
   the *newest* batch is durably committed. *)
let committed t =
  match t.records with Commit :: _ -> t.synced >= t.n_records | _ -> false

(* Everything after the last durable Commit, newest first, markers
   excluded.  With group commit several batches may sit in that region
   (committed but unforced); their records interleave in append order, so
   undoing the returned list front-to-back is cross-batch LIFO. *)
let unfinished t =
  let rec go acc idx = function
    (* [idx] is the 0-based position from the oldest record of the list
       head; walking newest-first it starts at n_records - 1. *)
    | [] -> acc
    | Commit :: _ when idx + 1 <= t.synced -> acc
    | (Commit | Begin) :: rest -> go acc (idx - 1) rest
    | r :: rest -> go (r :: acc) (idx - 1) rest
  in
  (* The accumulator flips to oldest-first, so flip back. *)
  List.rev (go [] (t.n_records - 1) t.records)

(* Whether any record sits after the last durable Commit — i.e. the head is
   anything but a durable Commit (durable prefixes end at a Commit because
   checkpoints only run on fully-durable logs). *)
let in_flight t = t.n_records > 0 && not (committed t)

let n_unsynced t = t.n_records - t.synced

let page_gids t = t.pages

let n_records t = t.n_records

let total_records t = t.t_total_records

let total_pages t = t.t_total_pages

let total_bytes t = t.t_total_bytes

let total_syncs t = t.t_total_syncs
