(* Logical write-ahead log.  See wal.mli for the protocol.  The in-memory
   record list is the log's contents; the buffer-pool pages only model its
   I/O footprint.  Every fault point in [append]/[sync] fires before the
   record list or page metadata changes, so a failed log operation leaves
   the log exactly as it was (and the protected data operation, which only
   runs after its record is logged, never happens either).

   Durability is a sequence-number high-water mark: [synced] counts the
   records covered by the last successful [sync].  A batch's [Commit] is
   durable iff its position is <= [synced], which is what lets group commit
   keep several committed-but-unforced batches in the log and cover them
   all with one force.  Rollback undoes everything after the last durable
   commit, newest first — cross-batch LIFO. *)

type record =
  | Begin
  | Commit
  | Ins of { table : int; rid : Heap_file.rid; tuple : int array }
  | Del of { table : int; rid : Heap_file.rid; before : int array }
  | Upd of { table : int; rid : Heap_file.rid; before : int array; after : int array }

(* Each logged record is framed with a lifetime sequence number, its length
   and a CRC over header plus payload — the on-disk envelope that lets a
   post-crash scan tell a half-written tail from mid-log rot.  [e_crc] is
   the CRC {e as stored}: damage mutates it (or sets [e_torn], the analogue
   of a record whose tail never hit the device), while the payload stays
   recomputable, so verification means re-deriving the CRC from the record
   and comparing. *)
type entry = {
  e_seq : int;
  e_len : int;
  e_record : record;
  e_page : int;  (* gid of the page the record (or its tail) landed on *)
  mutable e_crc : int;
  mutable e_torn : bool;
}

type scan = Clean | Torn of { first_seq : int; torn : int } | Corrupt of { seq : int }

exception Corrupt_record of int

type t = {
  pool : Buffer_pool.t;
  page_bytes : int;
  mutable entries : entry list;  (* newest first *)
  mutable n_records : int;
  mutable pages : int list;  (* gids, newest (tail) first *)
  mutable tail_bytes : int;  (* bytes used on the tail page *)
  mutable synced : int;  (* records covered by the last successful [sync] *)
  mutable t_total_records : int;
  mutable t_total_pages : int;
  mutable t_total_bytes : int;
  mutable t_total_syncs : int;
}

let word = 8

(* tag+table header, rid as two words, payload words. *)
let record_bytes = function
  | Begin | Commit -> word
  | Ins r -> word * (4 + Array.length r.tuple)
  | Del r -> word * (4 + Array.length r.before)
  | Upd r -> word * (4 + Array.length r.before + Array.length r.after)

let entry_crc ~seq ~len r =
  let h = ref (Checksum.add (Checksum.add Checksum.empty seq) len) in
  let add w = h := Checksum.add !h w in
  let add_rid rid =
    add rid.Heap_file.rid_page;
    add rid.Heap_file.rid_slot
  in
  (match r with
  | Begin -> add 0
  | Commit -> add 1
  | Ins x ->
      add 2;
      add x.table;
      add_rid x.rid;
      Array.iter add x.tuple
  | Del x ->
      add 3;
      add x.table;
      add_rid x.rid;
      Array.iter add x.before
  | Upd x ->
      add 4;
      add x.table;
      add_rid x.rid;
      Array.iter add x.before;
      Array.iter add x.after);
  Checksum.finish !h

let entry_ok e = (not e.e_torn) && e.e_crc = entry_crc ~seq:e.e_seq ~len:e.e_len e.e_record

let create pool ~page_bytes =
  if page_bytes < 5 * word then invalid_arg "Wal.create: page_bytes too small";
  {
    pool;
    page_bytes;
    entries = [];
    n_records = 0;
    pages = [];
    tail_bytes = 0;
    synced = 0;
    t_total_records = 0;
    t_total_pages = 0;
    t_total_bytes = 0;
    t_total_syncs = 0;
  }

let tail t = match t.pages with [] -> None | gid :: _ -> Some gid

(* Device-side damage to a log page (polled by the pool's corruption
   machinery on a write of [gid]): a bit flip rots one stored record's CRC
   envelope, a torn write marks the newest records on the page as
   half-persisted.  WAL pages register with [hk_checksum = None] — records
   self-verify via their own CRCs, there is no page-level seal. *)
let page_damage t gid way sel =
  let on_page = List.filter (fun e -> e.e_page = gid) t.entries in
  let n = List.length on_page in
  if n > 0 then
    match way with
    | Faults.Bit_flip ->
        let e = List.nth on_page (sel mod n) in
        e.e_crc <- e.e_crc lxor (1 lsl (sel mod 62))
    | Faults.Torn_write ->
        let k = 1 + (sel mod n) in
        List.iteri (fun i e -> if i < k then e.e_torn <- true) on_page

let append t r =
  let bytes = record_bytes r in
  let fits =
    match tail t with
    | Some _ -> t.tail_bytes + bytes <= t.page_bytes
    | None -> false
  in
  if fits then begin
    (* Tail is resident and pinned: a hit, no fault point. *)
    Buffer_pool.touch t.pool (Option.get (tail t)) ~dirty:true;
    t.tail_bytes <- t.tail_bytes + bytes
  end
  else begin
    (* Seal the old tail (forced out now — one WAL write), then allocate as
       many fresh pages as the record spans.  A fault anywhere here leaves
       the old tail pinned and the metadata untouched; the retried append
       redoes the seal as a no-op (the page is clean by then). *)
    (match tail t with Some gid -> Buffer_pool.write_back t.pool gid | None -> ());
    let n_new = max 1 ((bytes + t.page_bytes - 1) / t.page_bytes) in
    let gids =
      List.init n_new (fun _ ->
          let gid = Buffer_pool.fresh_page t.pool in
          Buffer_pool.touch_new t.pool gid;
          Buffer_pool.protect t.pool gid
            { Buffer_pool.hk_checksum = None; hk_corrupt = page_damage t gid };
          gid)
    in
    let new_tail = List.nth gids (n_new - 1) in
    Buffer_pool.pin t.pool new_tail;
    (match tail t with Some gid -> Buffer_pool.unpin t.pool gid | None -> ());
    t.pages <- List.rev_append gids t.pages;
    t.t_total_pages <- t.t_total_pages + n_new;
    t.tail_bytes <- bytes - ((n_new - 1) * t.page_bytes)
  end;
  let seq = t.t_total_records + 1 in
  let entry =
    {
      e_seq = seq;
      e_len = bytes;
      e_record = r;
      e_page = (match tail t with Some gid -> gid | None -> -1);
      e_crc = entry_crc ~seq ~len:bytes r;
      e_torn = false;
    }
  in
  t.entries <- entry :: t.entries;
  t.n_records <- t.n_records + 1;
  t.t_total_records <- t.t_total_records + 1;
  t.t_total_bytes <- t.t_total_bytes + bytes

let sync t =
  (* The write-back is the fault point; [synced] only advances (and the sync
     is only counted) once the force actually happened. *)
  (match tail t with Some gid -> Buffer_pool.write_back t.pool gid | None -> ());
  t.synced <- t.n_records;
  t.t_total_syncs <- t.t_total_syncs + 1;
  Iostats.record_wal_sync (Buffer_pool.stats t.pool)

let checkpoint t =
  (match tail t with Some gid -> Buffer_pool.unpin t.pool gid | None -> ());
  List.iter
    (fun gid ->
      Buffer_pool.discard t.pool gid;
      Buffer_pool.unprotect t.pool gid)
    t.pages;
  t.entries <- [];
  t.n_records <- 0;
  t.pages <- [];
  t.tail_bytes <- 0;
  t.synced <- 0

(* A Commit decides its batch's fate only once [sync] has forced it: a
   crash between appending Commit and forcing the log means the commit
   never became durable, so the batch aborts and its records roll back
   exactly as if the Commit were never written.  [committed] asks whether
   the *newest* batch is durably committed. *)
let committed t =
  match t.entries with
  | { e_record = Commit; _ } :: _ -> t.synced >= t.n_records
  | _ -> false

(* Everything after the last durable Commit, newest first, markers
   excluded.  With group commit several batches may sit in that region
   (committed but unforced); their records interleave in append order, so
   undoing the returned list front-to-back is cross-batch LIFO. *)
let unfinished t =
  let rec go acc idx = function
    (* [idx] is the 0-based position from the oldest record of the list
       head; walking newest-first it starts at n_records - 1. *)
    | [] -> acc
    | { e_record = Commit; _ } :: _ when idx + 1 <= t.synced -> acc
    | { e_record = Commit | Begin; _ } :: rest -> go acc (idx - 1) rest
    | e :: rest -> go (e.e_record :: acc) (idx - 1) rest
  in
  (* The accumulator flips to oldest-first, so flip back. *)
  List.rev (go [] (t.n_records - 1) t.entries)

(* Whether any record sits after the last durable Commit — i.e. the head is
   anything but a durable Commit (durable prefixes end at a Commit because
   checkpoints only run on fully-durable logs). *)
let in_flight t = t.n_records > 0 && not (committed t)

let n_unsynced t = t.n_records - t.synced

(* Classify the log's damage, positionally.  A {e torn tail} is a
   contiguous suffix of half-persisted records, all strictly after the last
   durable commit: those records were never acknowledged, so truncating
   them and proceeding with recovery is sound.  Anything else — a CRC
   mismatch anywhere, or a torn record at or before a durable commit — is
   mid-log corruption: the durable history itself is untrustworthy, and
   recovery must stop with a typed error naming the first bad record. *)
let verify_scan t =
  let oldest_first = List.rev t.entries in
  (* 1-based position of the last durable Commit. *)
  let durable_pos = ref 0 in
  List.iteri
    (fun i e ->
      if i + 1 <= t.synced && e.e_record = Commit then durable_pos := i + 1)
    oldest_first;
  let n = t.n_records in
  let first_bad = ref None in
  let suffix_torn = ref true in
  List.iteri
    (fun i e ->
      let pos = i + 1 in
      if not (entry_ok e) then begin
        if !first_bad = None then first_bad := Some (pos, e);
        if pos <= !durable_pos || not e.e_torn then suffix_torn := false
      end
      else match !first_bad with
        | Some _ ->
            (* A clean record after a bad one: not a tail tear. *)
            suffix_torn := false
        | None -> ())
    oldest_first;
  match !first_bad with
  | None -> Clean
  | Some (pos, e) ->
      if !suffix_torn then Torn { first_seq = e.e_seq; torn = n - pos + 1 }
      else Corrupt { seq = e.e_seq }

(* Drop the torn suffix (undo has already consumed the in-memory records by
   the time recovery truncates).  Returns the number of records dropped. *)
let truncate_torn t =
  let torn, intact = List.partition (fun e -> e.e_torn) t.entries in
  let dropped = List.length torn in
  if dropped > 0 then begin
    let bytes = List.fold_left (fun a e -> a + e.e_len) 0 torn in
    t.entries <- intact;
    t.n_records <- t.n_records - dropped;
    t.tail_bytes <- max 0 (t.tail_bytes - bytes);
    if t.synced > t.n_records then t.synced <- t.n_records
  end;
  dropped

(* Test hooks: precise, page-independent damage. *)

let corrupt_record t ~seq =
  match List.find_opt (fun e -> e.e_seq = seq) t.entries with
  | Some e ->
      e.e_crc <- e.e_crc lxor 1;
      true
  | None -> false

let tear_tail t ~keep =
  let keep = max 0 keep in
  let torn = ref 0 in
  List.iteri
    (fun i e ->
      (* entries are newest first: the first [n_records - keep] are the tail *)
      if i < t.n_records - keep then begin
        e.e_torn <- true;
        incr torn
      end)
    t.entries;
  !torn

let page_gids t = t.pages

let n_records t = t.n_records

let total_records t = t.t_total_records

let total_pages t = t.t_total_pages

let total_bytes t = t.t_total_bytes

let total_syncs t = t.t_total_syncs
