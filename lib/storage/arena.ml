(* A growable off-heap word store backed by a [Bigarray].  The arena is the
   backing memory of a heap file's pages: fixed-size page blocks are carved
   out of one flat array of native ints living outside the OCaml heap, so
   tuple data puts no pressure on the GC and a page is a zero-copy slice
   (offset + length) rather than an allocation.

   Blocks are handed out bump-pointer style and released strictly LIFO
   (only the tail block can be dropped) — exactly the discipline of heap
   files, whose pages grow at the tail and are only ever dropped by
   [truncate_last] undoing the append that grew them. *)

type words = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { mutable data : words; mutable used : int }

let alloc_words n : words = Bigarray.(Array1.create int c_layout) n

let create ?(initial_words = 1024) () =
  if initial_words < 1 then invalid_arg "Arena.create";
  { data = alloc_words initial_words; used = 0 }

let capacity_words t = Bigarray.Array1.dim t.data

let used_words t = t.used

(* Doubling growth; the old block is blitted once and becomes garbage for
   the OS allocator, never for the OCaml GC. *)
let ensure t n =
  let cap = Bigarray.Array1.dim t.data in
  if t.used + n > cap then begin
    let ncap = ref (max 8 (2 * cap)) in
    while t.used + n > !ncap do
      ncap := 2 * !ncap
    done;
    let ndata = alloc_words !ncap in
    Bigarray.Array1.blit
      (Bigarray.Array1.sub t.data 0 t.used)
      (Bigarray.Array1.sub ndata 0 t.used);
    t.data <- ndata
  end

(* [alloc t n] hands out a zero-filled block of [n] words and returns its
   offset. *)
let alloc t n =
  if n < 0 then invalid_arg "Arena.alloc";
  ensure t n;
  let off = t.used in
  Bigarray.Array1.fill (Bigarray.Array1.sub t.data off n) 0;
  t.used <- t.used + n;
  off

(* [release t n] returns the last [n] words to the arena — only the tail
   block may be released (LIFO). *)
let release t n =
  if n < 0 || n > t.used then invalid_arg "Arena.release";
  t.used <- t.used - n

let get t off = Bigarray.Array1.get t.data off

let set t off v = Bigarray.Array1.set t.data off v

(* A zero-copy window onto the block at [off]: writes through the slice are
   writes to the arena. *)
let slice t ~off ~len : words = Bigarray.Array1.sub t.data off len

let blit_from_array t ~off (src : int array) =
  for i = 0 to Array.length src - 1 do
    Bigarray.Array1.set t.data (off + i) src.(i)
  done

let to_array t ~off ~len =
  Array.init len (fun i -> Bigarray.Array1.get t.data (off + i))
