(** A scrub pass over a buffer pool's checksum-protected pages.

    {!sweep} probes every protected page in ascending gid order via
    {!Buffer_pool.verify} — each probe counts a checksum verification (and
    the checksum-page touch) in {!Iostats}, so scrubbing has a measurable
    I/O cost — and quarantines every page whose payload no longer hashes
    to its stored seal.  Detection only: repair (rebuilding views and
    indexes from base relations, refusing on base-relation damage) lives
    in the maintenance layer, which owns the page-to-structure mapping. *)

type report = {
  sr_scanned : int;  (** protected pages probed *)
  sr_clean : int;  (** pages that verified *)
  sr_corrupt : int list;
      (** gids convicted this sweep (or found already quarantined),
          ascending *)
}

val sweep : Buffer_pool.t -> report

val pp : Format.formatter -> report -> unit
