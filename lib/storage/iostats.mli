(** Counters of physical page I/O, shared by a buffer pool and read by the
    experiments that validate the cost model against execution. *)

type t

val create : unit -> t

(** Physical page reads (buffer-pool misses). *)
val reads : t -> int

(** Physical page writes (dirty evictions and flushes). *)
val writes : t -> int

(** Logical page accesses (hits + misses). *)
val accesses : t -> int

(** Write-ahead-log page writes — a subset of {!writes}, tallied separately
    so logging overhead stays visible next to the base I/O. *)
val wal_writes : t -> int

(** Durability barriers: calls to [Wal.sync].  Group commit amortizes one
    sync over many batches, so this falls while {!wal_writes} stays put. *)
val wal_syncs : t -> int

(** Buffer-pool accesses answered without a physical read. *)
val pool_hits : t -> int

(** Buffer-pool accesses that had to admit the page (reads plus fresh-page
    admissions that skip the read). *)
val pool_misses : t -> int

(** Pages evicted to make room (clean or dirty). *)
val pool_evictions : t -> int

(** Admissions that grew the pool past capacity because every resident frame
    was pinned — a sizing red flag surfaced by [visadvisor --stats]. *)
val pool_overflows : t -> int

(** Page checksum verifications performed (every miss-read of a protected
    page, plus every scrub probe). *)
val checksum_verifications : t -> int

(** Verifications whose recomputed checksum disagreed with the stored one —
    detected silent corruption. *)
val checksum_failures : t -> int

val total_io : t -> int

val record_read : t -> unit

val record_write : t -> unit

val record_access : t -> unit

(** Counts one physical write and one WAL write. *)
val record_wal_write : t -> unit

(** Counts one durability barrier (no page transfer by itself). *)
val record_wal_sync : t -> unit

val record_pool_hit : t -> unit

val record_pool_miss : t -> unit

val record_pool_eviction : t -> unit

val record_pool_overflow : t -> unit

val record_checksum_verification : t -> unit

(** Counted on top of the verification that uncovered it. *)
val record_checksum_failure : t -> unit

val reset : t -> unit

val pp : Format.formatter -> t -> unit
