(** Counters of physical page I/O, shared by a buffer pool and read by the
    experiments that validate the cost model against execution. *)

type t

val create : unit -> t

(** Physical page reads (buffer-pool misses). *)
val reads : t -> int

(** Physical page writes (dirty evictions and flushes). *)
val writes : t -> int

(** Logical page accesses (hits + misses). *)
val accesses : t -> int

(** Write-ahead-log page writes — a subset of {!writes}, tallied separately
    so logging overhead stays visible next to the base I/O. *)
val wal_writes : t -> int

val total_io : t -> int

val record_read : t -> unit

val record_write : t -> unit

val record_access : t -> unit

(** Counts one physical write and one WAL write. *)
val record_wal_write : t -> unit

val reset : t -> unit

val pp : Format.formatter -> t -> unit
