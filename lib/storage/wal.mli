(** A logical write-ahead log for refresh batches, with group commit.

    The log is an append-only sequence of pages charged through the shared
    {!Buffer_pool}, so logging costs surface in {!Iostats} next to the base
    I/O they protect ([wal_writes]; durability barriers in [wal_syncs]).
    Records are {e logical} with before images — [Ins]/[Del]/[Upd] on a
    numbered durable table — rather than physical page deltas, because the
    simulated pages hold no bytes; what makes recovery sound is the
    protocol, which mirrors the classical one:

    - {e log before apply}: a record is appended (and its destination rid
      predicted via [Heap_file.next_rid]) before the data operation runs,
      so the log always covers at least as much as the data;
    - {e force at commit}: a batch counts as committed only once a [sync]
      covered its [Commit] record, so a crash between the two aborts it;
    - {e checkpoint once durable}: the log truncates only when every record
      in it is covered by a sync.

    Durability is a sequence-number high-water mark ({!n_unsynced} exposes
    the gap), so several batches can commit back to back and one [sync]
    makes them all durable — group commit.  {!unfinished} returns every
    record after the last {e durable} commit, newest first, for strict
    cross-batch LIFO undo. *)

type record =
  | Begin
  | Commit
  | Ins of { table : int; rid : Heap_file.rid; tuple : int array }
      (** [rid] is the {e predicted} destination — when undo reaches it the
          append may not have executed *)
  | Del of { table : int; rid : Heap_file.rid; before : int array }
  | Upd of { table : int; rid : Heap_file.rid; before : int array; after : int array }

type t

(** [create pool ~page_bytes] — an empty log writing [page_bytes]-sized
    pages through [pool].  The current tail page stays pinned so data-page
    pressure can never evict it mid-batch. *)
val create : Buffer_pool.t -> page_bytes:int -> t

(** [append t r] logs a record: the tail page is touched dirty; when the
    record does not fit, the tail is sealed (forced out, one WAL write) and
    a fresh page allocated.  All fault points precede any log mutation.  *)
val append : t -> record -> unit

(** [sync t] forces the tail page out if dirty (one WAL write) and marks
    every record appended so far durable — including the [Commit] records
    of every batch appended since the previous sync, which is what makes a
    sync a {e group} commit.  Counted in [Iostats] [wal_syncs] (only once
    the force succeeded — the write-back is the fault point). *)
val sync : t -> unit

(** [checkpoint t] truncates the log: unpins and drops all log pages.
    Callers only invoke it when every record is durable (after a [sync]) or
    after rollback has undone the unfinished suffix. *)
val checkpoint : t -> unit

(** Every record after the last {e durable} [Commit], newest first and
    without the [Begin]/[Commit] markers; [[]] when the log is empty or
    fully committed.  Under group commit this spans all
    committed-but-unforced batches plus the one in flight — undoing
    front-to-back is cross-batch LIFO. *)
val unfinished : t -> record list

(** Whether any record sits after the last durable [Commit]. *)
val in_flight : t -> bool

(** Records appended since the last successful [sync] — the group-commit
    backlog one sync would make durable. *)
val n_unsynced : t -> int

(** Buffer-pool page ids currently holding the log, newest first — recovery
    touches them to charge its log reads. *)
val page_gids : t -> int list

(** Records currently in the log. *)
val n_records : t -> int

(** Records appended over the log's lifetime (survives checkpoints). *)
val total_records : t -> int

(** Pages allocated to the log over its lifetime. *)
val total_pages : t -> int

(** Log bytes appended over the log's lifetime. *)
val total_bytes : t -> int

(** Successful [sync] calls over the log's lifetime. *)
val total_syncs : t -> int

val record_bytes : record -> int
