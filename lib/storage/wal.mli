(** A logical write-ahead log for refresh batches.

    The log is an append-only sequence of pages charged through the shared
    {!Buffer_pool}, so logging costs surface in {!Iostats} next to the base
    I/O they protect ([wal_writes]).  Records are {e logical} with before
    images — [Ins]/[Del]/[Upd] on a numbered durable table — rather than
    physical page deltas, because the simulated pages hold no bytes; what
    makes recovery sound is the protocol, which mirrors the classical one:

    - {e log before apply}: a record is appended (and its destination rid
      predicted via [Heap_file.next_rid]) before the data operation runs,
      so the log always covers at least as much as the data;
    - {e force at commit}: the commit record is appended and then [sync]
      writes the tail page out — a batch counts as committed only once the
      force succeeded, so a crash between the two aborts it;
    - {e checkpoint after commit}: the log truncates once a batch is fully
      committed, so at most one batch is ever in flight.

    Recovery ({!unfinished}) returns the suffix of records belonging to an
    uncommitted batch, newest first, for strict LIFO undo. *)

type record =
  | Begin
  | Commit
  | Ins of { table : int; rid : Heap_file.rid; tuple : int array }
      (** [rid] is the {e predicted} destination — when undo reaches it the
          append may not have executed *)
  | Del of { table : int; rid : Heap_file.rid; before : int array }
  | Upd of { table : int; rid : Heap_file.rid; before : int array; after : int array }

type t

(** [create pool ~page_bytes] — an empty log writing [page_bytes]-sized
    pages through [pool].  The current tail page stays pinned so data-page
    pressure can never evict it mid-batch. *)
val create : Buffer_pool.t -> page_bytes:int -> t

(** [append t r] logs a record: the tail page is touched dirty; when the
    record does not fit, the tail is sealed (forced out, one WAL write) and
    a fresh page allocated.  All fault points precede any log mutation.  *)
val append : t -> record -> unit

(** [sync t] forces the tail page out if dirty (one WAL write) and marks
    every record appended so far durable.  A [Commit] record decides the
    batch's fate only once a [sync] has covered it: if the force itself
    fails, the commit never became durable and {!unfinished} still returns
    the batch's records for rollback — the classical "commit is the log
    force" rule. *)
val sync : t -> unit

(** [checkpoint t] truncates the log after a committed batch: unpins and
    drops all log pages (they are clean by then — no writes). *)
val checkpoint : t -> unit

(** Records of the latest batch iff it lacks a {e forced} [Commit], newest
    first and without the [Begin]/[Commit] markers; [[]] when the log is
    empty or the batch durably committed. *)
val unfinished : t -> record list

(** Whether a [Begin] without a matching forced [Commit] is in the log. *)
val in_flight : t -> bool

(** Buffer-pool page ids currently holding the log, newest first — recovery
    touches them to charge its log reads. *)
val page_gids : t -> int list

(** Records currently in the log. *)
val n_records : t -> int

(** Records appended over the log's lifetime (survives checkpoints). *)
val total_records : t -> int

(** Pages allocated to the log over its lifetime. *)
val total_pages : t -> int

val record_bytes : record -> int
