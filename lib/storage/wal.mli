(** A logical write-ahead log for refresh batches, with group commit.

    The log is an append-only sequence of pages charged through the shared
    {!Buffer_pool}, so logging costs surface in {!Iostats} next to the base
    I/O they protect ([wal_writes]; durability barriers in [wal_syncs]).
    Records are {e logical} with before images — [Ins]/[Del]/[Upd] on a
    numbered durable table — rather than physical page deltas, because the
    simulated pages hold no bytes; what makes recovery sound is the
    protocol, which mirrors the classical one:

    - {e log before apply}: a record is appended (and its destination rid
      predicted via [Heap_file.next_rid]) before the data operation runs,
      so the log always covers at least as much as the data;
    - {e force at commit}: a batch counts as committed only once a [sync]
      covered its [Commit] record, so a crash between the two aborts it;
    - {e checkpoint once durable}: the log truncates only when every record
      in it is covered by a sync.

    Durability is a sequence-number high-water mark ({!n_unsynced} exposes
    the gap), so several batches can commit back to back and one [sync]
    makes them all durable — group commit.  {!unfinished} returns every
    record after the last {e durable} commit, newest first, for strict
    cross-batch LIFO undo. *)

type record =
  | Begin
  | Commit
  | Ins of { table : int; rid : Heap_file.rid; tuple : int array }
      (** [rid] is the {e predicted} destination — when undo reaches it the
          append may not have executed *)
  | Del of { table : int; rid : Heap_file.rid; before : int array }
  | Upd of { table : int; rid : Heap_file.rid; before : int array; after : int array }

type t

(** Result of {!verify_scan}: each logged record carries a sequence/length
    header and a CRC over header plus payload, so a post-crash scan can
    classify damage positionally.  [Torn] — a contiguous suffix of
    half-persisted records, all strictly after the last durable commit
    (never acknowledged; truncate via {!truncate_torn} and proceed).
    [Corrupt] — a CRC mismatch anywhere, or a tear reaching into the
    durable history: recovery must stop with {!Corrupt_record}. *)
type scan = Clean | Torn of { first_seq : int; torn : int } | Corrupt of { seq : int }

(** Raised by recovery when {!verify_scan} reports mid-log corruption; the
    payload is the sequence number of the first bad record. *)
exception Corrupt_record of int

(** [create pool ~page_bytes] — an empty log writing [page_bytes]-sized
    pages through [pool].  The current tail page stays pinned so data-page
    pressure can never evict it mid-batch.  Log pages register with the
    pool's corruption machinery (no page checksum — records self-verify via
    their CRCs), so injected write damage rots record envelopes. *)
val create : Buffer_pool.t -> page_bytes:int -> t

(** [append t r] logs a record: the tail page is touched dirty; when the
    record does not fit, the tail is sealed (forced out, one WAL write) and
    a fresh page allocated.  All fault points precede any log mutation.  *)
val append : t -> record -> unit

(** [sync t] forces the tail page out if dirty (one WAL write) and marks
    every record appended so far durable — including the [Commit] records
    of every batch appended since the previous sync, which is what makes a
    sync a {e group} commit.  Counted in [Iostats] [wal_syncs] (only once
    the force succeeded — the write-back is the fault point). *)
val sync : t -> unit

(** [checkpoint t] truncates the log: unpins and drops all log pages.
    Callers only invoke it when every record is durable (after a [sync]) or
    after rollback has undone the unfinished suffix. *)
val checkpoint : t -> unit

(** Every record after the last {e durable} [Commit], newest first and
    without the [Begin]/[Commit] markers; [[]] when the log is empty or
    fully committed.  Under group commit this spans all
    committed-but-unforced batches plus the one in flight — undoing
    front-to-back is cross-batch LIFO. *)
val unfinished : t -> record list

(** Whether any record sits after the last durable [Commit]. *)
val in_flight : t -> bool

(** Records appended since the last successful [sync] — the group-commit
    backlog one sync would make durable. *)
val n_unsynced : t -> int

(** Buffer-pool page ids currently holding the log, newest first — recovery
    touches them to charge its log reads. *)
val page_gids : t -> int list

(** Records currently in the log. *)
val n_records : t -> int

(** Records appended over the log's lifetime (survives checkpoints). *)
val total_records : t -> int

(** Pages allocated to the log over its lifetime. *)
val total_pages : t -> int

(** Log bytes appended over the log's lifetime. *)
val total_bytes : t -> int

(** Successful [sync] calls over the log's lifetime. *)
val total_syncs : t -> int

val record_bytes : record -> int

(** Re-derive every record's CRC and classify any damage (see {!scan}).
    Pure: performs no I/O and never mutates the log. *)
val verify_scan : t -> scan

(** Drop all torn records (recovery calls this after undo consumed the
    in-memory records, when {!verify_scan} reported [Torn]).  Returns the
    number of records dropped. *)
val truncate_torn : t -> int

(** Test hook: flip a bit in the stored CRC of the record with this
    lifetime sequence number.  [false] when no such record is in the
    log. *)
val corrupt_record : t -> seq:int -> bool

(** Test hook: mark every record but the oldest [keep] as half-persisted
    (a torn tail).  Returns the number of records torn. *)
val tear_tail : t -> keep:int -> int
