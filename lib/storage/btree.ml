type rid = Heap_file.rid

(* Entries are totally ordered by (key, rid), which makes every entry unique
   and lets leaves split anywhere, even inside a run of duplicate keys. *)
type entry = int * rid

let cmp_entry ((k1, r1) : entry) ((k2, r2) : entry) =
  match Int.compare k1 k2 with
  | 0 -> (
      match Int.compare r1.Heap_file.rid_page r2.Heap_file.rid_page with
      | 0 -> Int.compare r1.Heap_file.rid_slot r2.Heap_file.rid_slot
      | c -> c)
  | c -> c

let min_rid = { Heap_file.rid_page = min_int; rid_slot = min_int }

type node = Leaf of leaf | Inner of inner

and leaf = {
  lgid : int;
  mutable entries : entry array;
  mutable next : leaf option;
}

and inner = {
  igid : int;
  (* seps.(i) bounds the subtrees: everything in kids.(i) is < seps.(i) and
     everything in kids.(i+1) is >= seps.(i). *)
  mutable seps : entry array;
  mutable kids : node array;
}

type t = {
  pool : Buffer_pool.t;
  fanout : int;
  mutable root : node;
  mutable count : int;
  mutable pages : int;
  mutable prot : bool;  (* checksum-protect nodes as they are created *)
}

(* --- Corruption protection.

   Node payloads are OCaml values, so each registered page checksums its
   entry (or separator) array plus a per-node damage mask.  Injected damage
   never mutates tree *structure* (array lengths, kid pointers): a bit flip
   xors one bit of one entry field, a torn write replaces a suffix of
   entries with zeroed stale fields — the tree stays safe to traverse while
   damaged, and the scrub pass convicts it by checksum.  Every damage also
   flips a mask bit, so even damage that lands on an empty node or an
   already-zero suffix is guaranteed detectable. *)

let fold_entries h entries =
  let h = ref (Checksum.add h (Array.length entries)) in
  Array.iter
    (fun (k, r) ->
      h := Checksum.add !h k;
      h := Checksum.add !h r.Heap_file.rid_page;
      h := Checksum.add !h r.Heap_file.rid_slot)
    entries;
  !h

let zero_rid = { Heap_file.rid_page = 0; rid_slot = 0 }

let damage_entries entries way sel =
  let n = Array.length entries in
  if n = 0 then entries
  else
    match way with
    | Faults.Bit_flip ->
        let field = sel mod (3 * n) in
        let i = field / 3 and bit = 1 lsl (sel / (3 * n) mod 62) in
        let k, r = entries.(i) in
        let e' =
          match field mod 3 with
          | 0 -> (k lxor bit, r)
          | 1 -> (k, { r with Heap_file.rid_page = r.Heap_file.rid_page lxor bit })
          | _ -> (k, { r with Heap_file.rid_slot = r.Heap_file.rid_slot lxor bit })
        in
        let out = Array.copy entries in
        out.(i) <- e';
        out
    | Faults.Torn_write ->
        let keep = sel mod n in
        Array.mapi (fun i e -> if i < keep then e else (0, zero_rid)) entries

let register_leaf pool l =
  let dmg = ref 0 in
  Buffer_pool.protect pool l.lgid
    {
      Buffer_pool.hk_checksum =
        Some (fun () -> Checksum.finish (fold_entries (Checksum.add Checksum.empty !dmg) l.entries));
      hk_corrupt =
        (fun way sel ->
          dmg := !dmg lxor (1 lsl (sel mod 62));
          l.entries <- damage_entries l.entries way sel);
    }

let register_inner pool nd =
  let dmg = ref 0 in
  Buffer_pool.protect pool nd.igid
    {
      Buffer_pool.hk_checksum =
        Some (fun () -> Checksum.finish (fold_entries (Checksum.add Checksum.empty !dmg) nd.seps));
      hk_corrupt =
        (fun way sel ->
          dmg := !dmg lxor (1 lsl (sel mod 62));
          nd.seps <- damage_entries nd.seps way sel);
    }

let create ?(protect = false) pool ~fanout =
  if fanout < 4 then invalid_arg "Btree.create: fanout < 4";
  let gid = Buffer_pool.fresh_page pool in
  Buffer_pool.touch_new pool gid;
  let root = { lgid = gid; entries = [||]; next = None } in
  if protect then register_leaf pool root;
  {
    pool;
    fanout;
    root = Leaf root;
    count = 0;
    pages = 1;
    prot = protect;
  }

let length t = t.count

let n_pages t = t.pages

let height t =
  let rec depth = function
    | Leaf _ -> 1
    | Inner n -> 1 + depth n.kids.(0)
  in
  depth t.root

(* Index of the child an entry belongs to: the number of separators <= it. *)
let child_index seps e =
  let lo = ref 0 and hi = ref (Array.length seps) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp_entry seps.(mid) e <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Position of the first array element >= e. *)
let lower_bound entries e =
  let lo = ref 0 and hi = ref (Array.length entries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp_entry entries.(mid) e < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let array_insert arr pos x =
  let n = Array.length arr in
  let out = Array.make (n + 1) x in
  Array.blit arr 0 out 0 pos;
  Array.blit arr pos out (pos + 1) (n - pos);
  out

let array_remove arr pos =
  let n = Array.length arr in
  let out = Array.make (n - 1) arr.(0) in
  Array.blit arr 0 out 0 pos;
  Array.blit arr (pos + 1) out pos (n - 1 - pos);
  out

let insert t ~key rid =
  let e = (key, rid) in
  (* Fault atomicity: every pool interaction — the path touches and the
     page allocations any splits will need — happens in a first phase, so
     an injected fault leaves the tree untouched; the mutation phase below
     performs no pool calls.  The touch/alloc sequence replicates the
     naive single-pass insert's exactly, keeping the operation stream (and
     with it fault schedules) unchanged on the fault-free path. *)
  let rec descend acc = function
    | Leaf l -> (acc, l)
    | Inner nd ->
        Buffer_pool.touch t.pool nd.igid ~dirty:false;
        descend (nd :: acc) nd.kids.(child_index nd.seps e)
  in
  (* [inners] is the search path, deepest inner first. *)
  let inners, leaf = descend [] t.root in
  Buffer_pool.touch t.pool leaf.lgid ~dirty:true;
  let pos = lower_bound leaf.entries e in
  if pos < Array.length leaf.entries && cmp_entry leaf.entries.(pos) e = 0 then
    invalid_arg "Btree.insert: duplicate (key, rid) entry";
  let alloc () =
    let gid = Buffer_pool.fresh_page t.pool in
    Buffer_pool.touch_new t.pool gid;
    gid
  in
  (* Pages for the split chain, in the order the mutation phase consumes
     them: the leaf's right sibling, then one per splitting inner going
     up, then the new root.  A node gains a kid iff its child split. *)
  let pages = ref [] in
  let gains = ref (Array.length leaf.entries + 1 > t.fanout) in
  if !gains then pages := alloc () :: !pages;
  List.iter
    (fun nd ->
      if !gains then begin
        Buffer_pool.touch t.pool nd.igid ~dirty:true;
        gains := Array.length nd.kids + 1 > t.fanout;
        if !gains then pages := alloc () :: !pages
      end)
    inners;
  if !gains then pages := alloc () :: !pages;
  let pages = ref (List.rev !pages) in
  let take () =
    match !pages with
    | gid :: rest ->
        pages := rest;
        t.pages <- t.pages + 1;
        gid
    | [] -> assert false
  in
  (* Mutation phase: returns the (separator, new right sibling) when the
     node split. *)
  let rec ins node =
    match node with
    | Leaf l ->
        l.entries <- array_insert l.entries pos e;
        if Array.length l.entries > t.fanout then begin
          let n = Array.length l.entries in
          let mid = n / 2 in
          let right_entries = Array.sub l.entries mid (n - mid) in
          let right = { lgid = take (); entries = right_entries; next = l.next } in
          (* Registration is side-table only (no pool I/O), so it is safe
             inside the no-pool-calls mutation phase. *)
          if t.prot then register_leaf t.pool right;
          l.entries <- Array.sub l.entries 0 mid;
          l.next <- Some right;
          Some (right.entries.(0), Leaf right)
        end
        else None
    | Inner nd -> (
        let i = child_index nd.seps e in
        match ins nd.kids.(i) with
        | None -> None
        | Some (sep, right) ->
            nd.seps <- array_insert nd.seps i sep;
            nd.kids <- array_insert nd.kids (i + 1) right;
            if Array.length nd.kids > t.fanout then begin
              let k = Array.length nd.kids in
              let mid = k / 2 in
              (* kids mid..k-1 and seps mid..k-2 go right; seps.(mid-1)
                 becomes the separator pushed up. *)
              let up = nd.seps.(mid - 1) in
              let right =
                {
                  igid = take ();
                  seps = Array.sub nd.seps mid (k - 1 - mid);
                  kids = Array.sub nd.kids mid (k - mid);
                }
              in
              if t.prot then register_inner t.pool right;
              nd.seps <- Array.sub nd.seps 0 (mid - 1);
              nd.kids <- Array.sub nd.kids 0 mid;
              Some (up, Inner right)
            end
            else None)
  in
  (match ins t.root with
  | None -> ()
  | Some (sep, right) ->
      let root = { igid = take (); seps = [| sep |]; kids = [| t.root; right |] } in
      if t.prot then register_inner t.pool root;
      t.root <- Inner root);
  assert (!pages = []);
  t.count <- t.count + 1

let find_leaf t e =
  let rec descend = function
    | Leaf l ->
        Buffer_pool.touch t.pool l.lgid ~dirty:false;
        l
    | Inner nd ->
        Buffer_pool.touch t.pool nd.igid ~dirty:false;
        descend nd.kids.(child_index nd.seps e)
  in
  descend t.root

let mem t ~key rid =
  let e = (key, rid) in
  let leaf = find_leaf t e in
  let pos = lower_bound leaf.entries e in
  pos < Array.length leaf.entries && cmp_entry leaf.entries.(pos) e = 0

let remove t ~key rid =
  let e = (key, rid) in
  let leaf = find_leaf t e in
  let pos = lower_bound leaf.entries e in
  if pos < Array.length leaf.entries && cmp_entry leaf.entries.(pos) e = 0 then begin
    Buffer_pool.touch t.pool leaf.lgid ~dirty:true;
    leaf.entries <- array_remove leaf.entries pos;
    t.count <- t.count - 1;
    true
  end
  else false

let lookup t ~key =
  let probe = (key, min_rid) in
  let leaf = find_leaf t probe in
  let rec collect l pos acc =
    if pos >= Array.length l.entries then
      match l.next with
      | Some next ->
          Buffer_pool.touch t.pool next.lgid ~dirty:false;
          collect next 0 acc
      | None -> acc
    else
      let k, rid = l.entries.(pos) in
      if k = key then collect l (pos + 1) (rid :: acc)
      else if k > key then acc
      else collect l (pos + 1) acc
  in
  List.rev (collect leaf (lower_bound leaf.entries probe) [])

let range t ~lo ~hi =
  if lo > hi then []
  else begin
    let probe = (lo, min_rid) in
    let leaf = find_leaf t probe in
    let rec collect l pos acc =
      if pos >= Array.length l.entries then
        match l.next with
        | Some next ->
            Buffer_pool.touch t.pool next.lgid ~dirty:false;
            collect next 0 acc
        | None -> acc
      else
        let ((k, _) as entry) = l.entries.(pos) in
        if k > hi then acc else collect l (pos + 1) (entry :: acc)
    in
    List.rev (collect leaf (lower_bound leaf.entries probe) [])
  end

let iter t ~f =
  let rec leftmost = function
    | Leaf l ->
        Buffer_pool.touch t.pool l.lgid ~dirty:false;
        l
    | Inner nd ->
        Buffer_pool.touch t.pool nd.igid ~dirty:false;
        leftmost nd.kids.(0)
  in
  let rec walk l =
    Array.iter (fun (k, rid) -> f k rid) l.entries;
    match l.next with
    | Some next ->
        Buffer_pool.touch t.pool next.lgid ~dirty:false;
        walk next
    | None -> ()
  in
  walk (leftmost t.root)

(* All node gids, root first — the unprotect list when an index is rebuilt
   away, and the scrub sweep's view of the index. *)
let page_gids t =
  let rec walk acc = function
    | Leaf l -> l.lgid :: acc
    | Inner nd -> Array.fold_left walk (nd.igid :: acc) nd.kids
  in
  List.rev (walk [] t.root)

let protect t =
  if not t.prot then begin
    t.prot <- true;
    let rec walk = function
      | Leaf l -> register_leaf t.pool l
      | Inner nd ->
          register_inner t.pool nd;
          Array.iter walk nd.kids
    in
    walk t.root
  end

let protected t = t.prot

exception Check_failed of string

let check t =
  let fail fmt = Printf.ksprintf (fun s -> raise (Check_failed s)) fmt in
  let rec depth = function
    | Leaf _ -> 1
    | Inner n -> 1 + depth n.kids.(0)
  in
  let d = depth t.root in
  let counted = ref 0 in
  (* lo/hi are exclusive/inclusive composite bounds on the subtree. *)
  let rec walk node level lo hi =
    (match node with
    | Leaf l ->
        if level <> d then fail "leaf at depth %d, expected %d" level d;
        Array.iteri
          (fun i e ->
            incr counted;
            (match lo with
            | Some b when cmp_entry e b < 0 -> fail "entry below lower bound"
            | _ -> ());
            (match hi with
            | Some b when cmp_entry e b >= 0 -> fail "entry above upper bound"
            | _ -> ());
            if i > 0 && cmp_entry l.entries.(i - 1) e >= 0 then
              fail "leaf entries not strictly sorted")
          l.entries;
        if Array.length l.entries > t.fanout then fail "leaf overflow"
    | Inner n ->
        let nk = Array.length n.kids in
        if nk <> Array.length n.seps + 1 then fail "inner arity mismatch";
        if nk > t.fanout then fail "inner overflow";
        if nk < 2 then fail "inner underflow";
        Array.iteri
          (fun i s ->
            if i > 0 && cmp_entry n.seps.(i - 1) s >= 0 then
              fail "separators not sorted")
          n.seps;
        Array.iteri
          (fun i kid ->
            let lo' = if i = 0 then lo else Some n.seps.(i - 1) in
            let hi' = if i = nk - 1 then hi else Some n.seps.(i) in
            walk kid (level + 1) lo' hi')
          n.kids);
  in
  try
    walk t.root 1 None None;
    if !counted <> t.count then
      fail "count mismatch: counted %d, recorded %d" !counted t.count
    else Ok ()
  with Check_failed msg -> Error msg
