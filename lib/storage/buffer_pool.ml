(* LRU as a doubly-linked list threaded through a hashtable of frames.

   Every physical operation — read on miss, write on dirty eviction or
   write-back, page allocation — consults the pool's fault plan *before*
   mutating any pool state, so an injected fault leaves the pool exactly as
   it was: the failed operation simply never happened.  That ordering is
   what lets the maintenance layer treat a fault as "the device refused"
   rather than "the device is now in an unknown state". *)

type frame = {
  page : int;
  mutable dirty : bool;
  mutable pins : int;
  mutable prev : frame option;  (* towards most recently used *)
  mutable next : frame option;  (* towards least recently used *)
}

type t = {
  cap : int;
  io : Iostats.t;
  frames : (int, frame) Hashtbl.t;
  mutable mru : frame option;
  mutable lru : frame option;
  mutable next_page : int;
  mutable plan : Faults.t;
}

let create ~capacity ~stats =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity < 1";
  {
    cap = capacity;
    io = stats;
    frames = Hashtbl.create (2 * capacity);
    mru = None;
    lru = None;
    next_page = 0;
    plan = Faults.none ();
  }

let capacity t = t.cap

let stats t = t.io

let set_faults t plan = t.plan <- plan

let faults t = t.plan

let fresh_page t =
  (* Fault check before the counter bump: a failed allocation can be retried
     and will hand out the same identifier. *)
  Faults.check t.plan Faults.Alloc ~page:t.next_page;
  let id = t.next_page in
  t.next_page <- t.next_page + 1;
  id

let unlink t f =
  (match f.prev with
  | Some p -> p.next <- f.next
  | None -> t.mru <- f.next);
  (match f.next with
  | Some n -> n.prev <- f.prev
  | None -> t.lru <- f.prev);
  f.prev <- None;
  f.next <- None

let push_front t f =
  f.next <- t.mru;
  f.prev <- None;
  (match t.mru with Some m -> m.prev <- Some f | None -> ());
  t.mru <- Some f;
  if t.lru = None then t.lru <- Some f

(* Least recently used unpinned frame, or [None] when every frame is
   pinned (the pool then grows past capacity rather than evicting). *)
let victim t =
  let rec up = function
    | None -> None
    | Some f -> if f.pins = 0 then Some f else up f.prev
  in
  up t.lru

let evict t f =
  unlink t f;
  Hashtbl.remove t.frames f.page;
  Iostats.record_pool_eviction t.io;
  if f.dirty then Iostats.record_write t.io

let insert_resident t page ~dirty ~count_read =
  (* Pick the eviction victim first so its write fault (if any) fires before
     we count the read or mutate anything. *)
  let at_capacity = Hashtbl.length t.frames >= t.cap in
  let v = if at_capacity then victim t else None in
  (match v with
  | Some f when f.dirty -> Faults.check t.plan Faults.Write ~page:f.page
  | _ -> ());
  if count_read then begin
    Faults.check t.plan Faults.Read ~page;
    Iostats.record_read t.io
  end;
  Iostats.record_pool_miss t.io;
  (* Every resident frame pinned: admit past capacity instead of evicting. *)
  if at_capacity && v = None then Iostats.record_pool_overflow t.io;
  (match v with Some f -> evict t f | None -> ());
  let f = { page; dirty; pins = 0; prev = None; next = None } in
  Hashtbl.replace t.frames page f;
  push_front t f

let touch t page ~dirty =
  Iostats.record_access t.io;
  match Hashtbl.find_opt t.frames page with
  | Some f ->
      Iostats.record_pool_hit t.io;
      unlink t f;
      push_front t f;
      if dirty then f.dirty <- true
  | None -> insert_resident t page ~dirty ~count_read:true

let touch_new t page =
  Iostats.record_access t.io;
  match Hashtbl.find_opt t.frames page with
  | Some f ->
      Iostats.record_pool_hit t.io;
      unlink t f;
      push_front t f;
      f.dirty <- true
  | None -> insert_resident t page ~dirty:true ~count_read:false

let pin t page =
  (match Hashtbl.find_opt t.frames page with
  | Some _ -> Iostats.record_pool_hit t.io
  | None -> insert_resident t page ~dirty:false ~count_read:true);
  let f = Hashtbl.find t.frames page in
  f.pins <- f.pins + 1

let unpin t page =
  match Hashtbl.find_opt t.frames page with
  | Some f when f.pins > 0 -> f.pins <- f.pins - 1
  | Some _ -> invalid_arg "Buffer_pool.unpin: page not pinned"
  | None -> invalid_arg "Buffer_pool.unpin: page not resident"

let pinned t page =
  match Hashtbl.find_opt t.frames page with
  | Some f -> f.pins > 0
  | None -> false

let write_back t page =
  match Hashtbl.find_opt t.frames page with
  | Some f when f.dirty ->
      Faults.check t.plan Faults.Write ~page;
      Iostats.record_wal_write t.io;
      f.dirty <- false
  | _ -> ()

let discard t page =
  match Hashtbl.find_opt t.frames page with
  | Some f ->
      unlink t f;
      Hashtbl.remove t.frames f.page
  | None -> ()

let flush t =
  (* Flush ignores pins: it models an orderly shutdown, after which nothing
     holds a reference.  Dirty pages are written unconditionally (no fault
     check — callers flush outside the faulted region). *)
  while t.lru <> None do
    match t.lru with
    | None -> ()
    | Some f ->
        unlink t f;
        Hashtbl.remove t.frames f.page;
        if f.dirty then Iostats.record_write t.io
  done

let resident t page = Hashtbl.mem t.frames page
