(* LRU as a doubly-linked list threaded through a hashtable of frames.

   Every physical operation — read on miss, write on dirty eviction or
   write-back, page allocation — consults the pool's fault plan *before*
   mutating any pool state, so an injected fault leaves the pool exactly as
   it was: the failed operation simply never happened.  That ordering is
   what lets the maintenance layer treat a fault as "the device refused"
   rather than "the device is now in an unknown state". *)

type frame = {
  page : int;
  mutable dirty : bool;
  mutable pins : int;
  mutable prev : frame option;  (* towards most recently used *)
  mutable next : frame option;  (* towards least recently used *)
}

(* The pool holds no page contents, so checksums and corruption are
   delegated to the structure that owns each page's payload: it registers
   [hk_checksum] (recompute the payload's checksum now) and [hk_corrupt]
   (apply a given damage to the payload).  Pages registered with
   [hk_checksum = None] (WAL pages, whose records carry their own CRCs)
   are damageable but not pool-verified. *)
type page_hooks = {
  hk_checksum : (unit -> int) option;
  hk_corrupt : Faults.corruption -> int -> unit;
}

exception Corruption of int

(* Protected pages' stored checksums live on dedicated checksum pages, one
   per [cs_span]-gid bucket; read-path verification touches the bucket page
   so the detection overhead shows up in I/O counts, machine-independently.
   The span models 8-byte checksums packed into a 4 KB page: 512 seals per
   bucket page, so whole-warehouse protection needs only a handful of
   them. *)
let cs_span = 512

type t = {
  cap : int;
  io : Iostats.t;
  frames : (int, frame) Hashtbl.t;
  mutable mru : frame option;
  mutable lru : frame option;
  mutable next_page : int;
  mutable plan : Faults.t;
  hooks : (int, page_hooks) Hashtbl.t;
  sealed : (int, int) Hashtbl.t;  (* gid -> checksum stored at last write-out *)
  quarantine : (int, unit) Hashtbl.t;
  cs_pages : (int, int) Hashtbl.t;  (* gid / cs_span -> checksum-page gid *)
}

let create ~capacity ~stats =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity < 1";
  {
    cap = capacity;
    io = stats;
    frames = Hashtbl.create (2 * capacity);
    mru = None;
    lru = None;
    next_page = 0;
    plan = Faults.none ();
    hooks = Hashtbl.create 64;
    sealed = Hashtbl.create 64;
    quarantine = Hashtbl.create 8;
    cs_pages = Hashtbl.create 8;
  }

let capacity t = t.cap

let stats t = t.io

let set_faults t plan = t.plan <- plan

let faults t = t.plan

let fresh_page t =
  (* Fault check before the counter bump: a failed allocation can be retried
     and will hand out the same identifier. *)
  Faults.check t.plan Faults.Alloc ~page:t.next_page;
  let id = t.next_page in
  t.next_page <- t.next_page + 1;
  id

let unlink t f =
  (match f.prev with
  | Some p -> p.next <- f.next
  | None -> t.mru <- f.next);
  (match f.next with
  | Some n -> n.prev <- f.prev
  | None -> t.lru <- f.prev);
  f.prev <- None;
  f.next <- None

let push_front t f =
  f.next <- t.mru;
  f.prev <- None;
  (match t.mru with Some m -> m.prev <- Some f | None -> ());
  t.mru <- Some f;
  if t.lru = None then t.lru <- Some f

(* Least recently used unpinned frame, or [None] when every frame is
   pinned (the pool then grows past capacity rather than evicting). *)
let victim t =
  let rec up = function
    | None -> None
    | Some f -> if f.pins = 0 then Some f else up f.prev
  in
  up t.lru

(* Update the stored checksum from the payload about to hit the device.
   Side-table only: the checksum piggybacks on the page write itself, so
   resealing never issues I/O of its own (and never re-enters the pool
   from inside an eviction). *)
let reseal t page =
  match Hashtbl.find_opt t.hooks page with
  | Some { hk_checksum = Some cs; _ } -> Hashtbl.replace t.sealed page (cs ())
  | _ -> ()

(* A physical write of [page] just succeeded: reseal, then poll the fault
   plan for silent damage.  Damage lands *after* the reseal, so the stored
   checksum was computed from the intact payload and convicts the damaged
   one at the next verification.  A torn write additionally surfaces as
   the crash that interrupted the transfer. *)
let wrote t page =
  reseal t page;
  match Faults.damage t.plan Faults.Write ~page with
  | None -> ()
  | Some (way, sel) ->
      (match Hashtbl.find_opt t.hooks page with
      | Some h -> h.hk_corrupt way sel
      | None -> ());
      if way = Faults.Torn_write then
        raise
          (Faults.Injected
             {
               f_op = Faults.Write;
               f_kind = Faults.Crash;
               f_page = page;
               f_seq = Faults.seq t.plan;
               f_retries = 0;
             })

let evict t f =
  unlink t f;
  Hashtbl.remove t.frames f.page;
  Iostats.record_pool_eviction t.io;
  if f.dirty then begin
    Iostats.record_write t.io;
    wrote t f.page
  end

let insert_resident t page ~dirty ~count_read =
  (* Pick the eviction victim first so its write fault (if any) fires before
     we count the read or mutate anything. *)
  let at_capacity = Hashtbl.length t.frames >= t.cap in
  let v = if at_capacity then victim t else None in
  (match v with
  | Some f when f.dirty -> Faults.check t.plan Faults.Write ~page:f.page
  | _ -> ());
  if count_read then begin
    Faults.check t.plan Faults.Read ~page;
    Iostats.record_read t.io
  end;
  Iostats.record_pool_miss t.io;
  (* Every resident frame pinned: admit past capacity instead of evicting. *)
  if at_capacity && v = None then Iostats.record_pool_overflow t.io;
  (match v with Some f -> evict t f | None -> ());
  let f = { page; dirty; pins = 0; prev = None; next = None } in
  Hashtbl.replace t.frames page f;
  push_front t f

(* Read-path verification of a protected page that was just miss-read.
   Recomputes the payload checksum, compares against the seal stored at the
   last write-out, and touches the page's checksum bucket page — that touch
   is the (small, machine-independent) I/O cost of detection.  Checksum
   pages are never themselves protected, so the recursion through [touch]
   is one level deep.  Mismatches quarantine the page and count a failure;
   [verify_seal]'s caller decides whether to raise. *)
let rec verify_seal t page cs =
  Iostats.record_checksum_verification t.io;
  (match Hashtbl.find_opt t.cs_pages (page / cs_span) with
  | Some g ->
      (* Checksum pages are hot, tiny metadata: pin the bucket page on its
         first admission so capacity pressure cannot thrash it — one read
         per residency burst, hits thereafter.  (A flush still drops it;
         the next verification re-reads and re-pins.) *)
      if Hashtbl.mem t.frames g then touch t g ~dirty:false else pin t g
  | None -> ());
  let ok = Hashtbl.find_opt t.sealed page = Some (cs ()) in
  if not ok then begin
    Iostats.record_checksum_failure t.io;
    Hashtbl.replace t.quarantine page ()
  end;
  ok

(* Quarantined pages are fenced by the scrub pipeline — re-reading one does
   not re-raise, so rebuild passes can run without tripping over the page
   they are replacing. *)
and verify_on_read t page =
  if not (Hashtbl.mem t.quarantine page) then
    match Hashtbl.find_opt t.hooks page with
    | Some { hk_checksum = Some cs; _ } ->
        if not (verify_seal t page cs) then raise (Corruption page)
    | _ -> ()

and touch t page ~dirty =
  Iostats.record_access t.io;
  match Hashtbl.find_opt t.frames page with
  | Some f ->
      Iostats.record_pool_hit t.io;
      unlink t f;
      push_front t f;
      if dirty then f.dirty <- true
  | None ->
      insert_resident t page ~dirty ~count_read:true;
      verify_on_read t page

and pin t page =
  let missed = not (Hashtbl.mem t.frames page) in
  (match Hashtbl.find_opt t.frames page with
  | Some _ -> Iostats.record_pool_hit t.io
  | None -> insert_resident t page ~dirty:false ~count_read:true);
  let f = Hashtbl.find t.frames page in
  f.pins <- f.pins + 1;
  (* Verify after the pin so the checksum-page touch cannot evict the frame
     we just admitted (it is pinned now). *)
  if missed then verify_on_read t page

let touch_new t page =
  Iostats.record_access t.io;
  match Hashtbl.find_opt t.frames page with
  | Some f ->
      Iostats.record_pool_hit t.io;
      unlink t f;
      push_front t f;
      f.dirty <- true
  | None -> insert_resident t page ~dirty:true ~count_read:false

let unpin t page =
  match Hashtbl.find_opt t.frames page with
  | Some f when f.pins > 0 -> f.pins <- f.pins - 1
  | Some _ -> invalid_arg "Buffer_pool.unpin: page not pinned"
  | None -> invalid_arg "Buffer_pool.unpin: page not resident"

let pinned t page =
  match Hashtbl.find_opt t.frames page with
  | Some f -> f.pins > 0
  | None -> false

let write_back t page =
  match Hashtbl.find_opt t.frames page with
  | Some f when f.dirty ->
      Faults.check t.plan Faults.Write ~page;
      Iostats.record_wal_write t.io;
      f.dirty <- false;
      wrote t page
  | _ -> ()

let discard t page =
  match Hashtbl.find_opt t.frames page with
  | Some f ->
      unlink t f;
      Hashtbl.remove t.frames f.page
  | None -> ()

let flush t =
  (* Flush ignores pins: it models an orderly shutdown, after which nothing
     holds a reference.  Dirty pages are written unconditionally (no fault
     check — callers flush outside the faulted region). *)
  while t.lru <> None do
    match t.lru with
    | None -> ()
    | Some f ->
        unlink t f;
        Hashtbl.remove t.frames f.page;
        if f.dirty then begin
          Iostats.record_write t.io;
          (* Orderly shutdown still reseals (the write is real), but polls
             no damage — flush runs outside the faulted region. *)
          reseal t f.page
        end
  done

let resident t page = Hashtbl.mem t.frames page

(* --- Corruption protection ------------------------------------------- *)

let protect t page hooks =
  Hashtbl.replace t.hooks page hooks;
  Hashtbl.remove t.quarantine page;
  match hooks.hk_checksum with
  | Some cs ->
      (* Lazily allocate the bucket's checksum page.  Not via [fresh_page]:
         checksum pages are pool metadata, and [protect] runs inside
         callers' no-pool-calls mutation phases (a B+-tree split registers
         its new sibling mid-mutation), so it must not hit a fault point. *)
      let bucket = page / cs_span in
      if not (Hashtbl.mem t.cs_pages bucket) then begin
        let gid = t.next_page in
        t.next_page <- t.next_page + 1;
        Hashtbl.add t.cs_pages bucket gid
      end;
      Hashtbl.replace t.sealed page (cs ())
  | None -> ()

let unprotect t page =
  Hashtbl.remove t.hooks page;
  Hashtbl.remove t.sealed page;
  Hashtbl.remove t.quarantine page

let protected t page = Hashtbl.mem t.hooks page

(* Non-raising verification probe for the scrub pass.  Unverifiable pages
   (unprotected, or registered without a checksum hook) report clean. *)
let verify t page =
  if Hashtbl.mem t.quarantine page then false
  else
    match Hashtbl.find_opt t.hooks page with
    | Some { hk_checksum = Some cs; _ } -> verify_seal t page cs
    | _ -> true

let quarantined t page = Hashtbl.mem t.quarantine page

let quarantine t page = Hashtbl.replace t.quarantine page ()

(* At-rest damage injection for oracles and benches: mutate the payload
   directly, bypassing the device write path, so the stored seal (computed
   at the last write-out) convicts the page.  No-op on pages that own no
   payload. *)
let corrupt_page t page way sel =
  match Hashtbl.find_opt t.hooks page with
  | Some h -> h.hk_corrupt way sel
  | None -> ()

(* Sorted, so damage plans indexing into it replay identically. *)
let protected_gids t =
  Hashtbl.fold
    (fun g h acc -> if h.hk_checksum <> None then g :: acc else acc)
    t.hooks []
  |> List.sort compare
