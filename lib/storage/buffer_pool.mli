(** An LRU buffer pool over simulated page identifiers.

    The pool does not hold page contents — data structures keep their own
    state — it only models residency: {!touch} brings a page in (counting a
    physical read on a miss), possibly evicting the least recently used page
    (counting a physical write if that page was dirty).  This is the
    mechanism by which executed maintenance plans produce measured I/O counts
    comparable to the cost model's estimates.

    Each physical operation consults the pool's {!Faults} plan before any
    pool state changes, so an injected fault leaves the pool untouched: the
    failed read/write/allocation simply never happened.

    Residency traffic is tallied in {!Iostats}: hits ({!touch}/{!touch_new}/
    {!pin} on a resident frame), misses (every admission), evictions under
    capacity pressure, and overflow admissions when every frame is pinned.
    {!flush} models orderly shutdown and does not count evictions.

    {2 Corruption detection}

    Because the pool holds no contents, checksum protection is a
    collaboration: the structure owning a page's payload registers
    {!page_hooks} via {!protect}.  The pool then maintains a stored
    checksum per protected page, {e resealed} from the payload at every
    physical write-out (dirty eviction, {!write_back}, {!flush}) and
    {e verified} on every miss-read — a mismatch counts a checksum failure
    in {!Iostats}, quarantines the page and raises {!Corruption}.  Silent
    damage (injected via the fault plan's corruption schedules, or at rest
    via {!corrupt_page}) mutates the payload {e after} the reseal, which is
    exactly why the stored checksum convicts it.  Stored checksums live on
    dedicated checksum pages (one per 512-gid bucket) that verification
    touches, so detection has a real, machine-independent I/O cost; being
    hot, tiny metadata, a bucket page is pinned from its first admission,
    so the cost is one read per residency burst rather than one per
    capacity-pressure round trip. *)

type t

(** Payload callbacks registered by the structure that owns a page:
    [hk_checksum] recomputes the payload checksum now ([None] for pages
    that self-verify, e.g. WAL pages whose records carry their own CRCs);
    [hk_corrupt way sel] applies the given damage, mapping the seeded
    selector onto a damage site. *)
type page_hooks = {
  hk_checksum : (unit -> int) option;
  hk_corrupt : Faults.corruption -> int -> unit;
}

(** Raised by a read-path verification that caught a corrupt page (the
    payload's recomputed checksum disagreed with the stored seal). *)
exception Corruption of int

(** [create ~capacity ~stats] — [capacity] pages; raises [Invalid_argument]
    when [capacity < 1]. *)
val create : capacity:int -> stats:Iostats.t -> t

val capacity : t -> int

val stats : t -> Iostats.t

(** [set_faults t plan] installs a fault plan; the default is
    [Faults.none ()].  All pools sharing a device under test should share
    one plan so the operation sequence numbering is global. *)
val set_faults : t -> Faults.t -> unit

val faults : t -> Faults.t

(** [fresh_page t] allocates a new page identifier (not resident yet).
    Fault point: [Alloc]; a failed allocation retried later hands out the
    same identifier. *)
val fresh_page : t -> int

(** [touch t page ~dirty] accesses [page]: a miss counts one read, and marks
    it dirty when [dirty] so its eventual eviction counts one write. *)
val touch : t -> int -> dirty:bool -> unit

(** [touch_new t page] registers a page created in memory (e.g. the fresh
    half of a split): resident and dirty without counting a read. *)
val touch_new : t -> int -> unit

(** [pin t page] brings [page] in if needed (counting a read on a miss) and
    increments its pin count.  Pinned pages are never chosen as eviction
    victims; when every frame is pinned the pool grows past capacity rather
    than evicting.  The write-ahead log pins its tail page so log appends
    cannot be evicted out from under a running batch. *)
val pin : t -> int -> unit

(** [unpin t page] decrements the pin count.  Raises [Invalid_argument] if
    the page is not resident or not pinned (a programmer error, not an
    injectable fault). *)
val unpin : t -> int -> unit

val pinned : t -> int -> bool

(** [write_back t page] forces [page] to the device now if it is resident
    and dirty: one physical write, tallied as a WAL write ([Iostats]
    [wal_writes]) since forcing the log tail at commit/sync points is this
    primitive's purpose.  No-op when clean or absent.  Fault point:
    [Write]. *)
val write_back : t -> int -> unit

(** [discard t page] drops a page without writing it back (for deallocated
    pages). *)
val discard : t -> int -> unit

(** [flush t] evicts everything (pins notwithstanding — it models orderly
    shutdown), writing back dirty pages without fault checks. *)
val flush : t -> unit

(** [resident t page] — whether the page is currently buffered. *)
val resident : t -> int -> bool

(** [protect t page hooks] registers [page] for corruption detection and,
    when [hooks.hk_checksum] is present, seals its current payload
    checksum (allocating the bucket's checksum page on first use).
    Re-protecting replaces the hooks and clears any quarantine. *)
val protect : t -> int -> page_hooks -> unit

(** Drops hooks, stored checksum and quarantine state for [page] (for
    deallocated or rebuilt-away pages). *)
val unprotect : t -> int -> unit

val protected : t -> int -> bool

(** [verify t page] — non-raising verification probe for the scrub pass:
    [false] when the page is quarantined or its checksum mismatches (the
    mismatch is counted and the page quarantined), [true] for clean or
    unverifiable pages. *)
val verify : t -> int -> bool

val quarantined : t -> int -> bool

(** Fence a page manually (scrub uses this for pages convicted by
    evidence other than their own checksum). *)
val quarantine : t -> int -> unit

(** [corrupt_page t page way sel] applies at-rest damage directly to the
    page's payload, bypassing the device write path: the stored seal is
    left stale, so the next verification convicts the page.  No-op for
    pages without hooks. *)
val corrupt_page : t -> int -> Faults.corruption -> int -> unit

(** Gids of all checksum-protected pages, sorted ascending — the scrub
    sweep order, and the target list damage plans index into. *)
val protected_gids : t -> int list
