(** An LRU buffer pool over simulated page identifiers.

    The pool does not hold page contents — data structures keep their own
    state — it only models residency: {!touch} brings a page in (counting a
    physical read on a miss), possibly evicting the least recently used page
    (counting a physical write if that page was dirty).  This is the
    mechanism by which executed maintenance plans produce measured I/O counts
    comparable to the cost model's estimates.

    Each physical operation consults the pool's {!Faults} plan before any
    pool state changes, so an injected fault leaves the pool untouched: the
    failed read/write/allocation simply never happened.

    Residency traffic is tallied in {!Iostats}: hits ({!touch}/{!touch_new}/
    {!pin} on a resident frame), misses (every admission), evictions under
    capacity pressure, and overflow admissions when every frame is pinned.
    {!flush} models orderly shutdown and does not count evictions. *)

type t

(** [create ~capacity ~stats] — [capacity] pages; raises [Invalid_argument]
    when [capacity < 1]. *)
val create : capacity:int -> stats:Iostats.t -> t

val capacity : t -> int

val stats : t -> Iostats.t

(** [set_faults t plan] installs a fault plan; the default is
    [Faults.none ()].  All pools sharing a device under test should share
    one plan so the operation sequence numbering is global. *)
val set_faults : t -> Faults.t -> unit

val faults : t -> Faults.t

(** [fresh_page t] allocates a new page identifier (not resident yet).
    Fault point: [Alloc]; a failed allocation retried later hands out the
    same identifier. *)
val fresh_page : t -> int

(** [touch t page ~dirty] accesses [page]: a miss counts one read, and marks
    it dirty when [dirty] so its eventual eviction counts one write. *)
val touch : t -> int -> dirty:bool -> unit

(** [touch_new t page] registers a page created in memory (e.g. the fresh
    half of a split): resident and dirty without counting a read. *)
val touch_new : t -> int -> unit

(** [pin t page] brings [page] in if needed (counting a read on a miss) and
    increments its pin count.  Pinned pages are never chosen as eviction
    victims; when every frame is pinned the pool grows past capacity rather
    than evicting.  The write-ahead log pins its tail page so log appends
    cannot be evicted out from under a running batch. *)
val pin : t -> int -> unit

(** [unpin t page] decrements the pin count.  Raises [Invalid_argument] if
    the page is not resident or not pinned (a programmer error, not an
    injectable fault). *)
val unpin : t -> int -> unit

val pinned : t -> int -> bool

(** [write_back t page] forces [page] to the device now if it is resident
    and dirty: one physical write, tallied as a WAL write ([Iostats]
    [wal_writes]) since forcing the log tail at commit/sync points is this
    primitive's purpose.  No-op when clean or absent.  Fault point:
    [Write]. *)
val write_back : t -> int -> unit

(** [discard t page] drops a page without writing it back (for deallocated
    pages). *)
val discard : t -> int -> unit

(** [flush t] evicts everything (pins notwithstanding — it models orderly
    shutdown), writing back dirty pages without fault checks. *)
val flush : t -> unit

(** [resident t page] — whether the page is currently buffered. *)
val resident : t -> int -> bool
