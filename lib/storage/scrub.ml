(* A scrub pass: probe every checksum-protected page and quarantine the
   ones whose payloads no longer hash to their stored seals.  The sweep is
   detection only — classifying a convicted page (view? index? base
   relation?) and repairing it is the maintenance layer's job
   (Warehouse.scrub), which owns the page-to-structure mapping. *)

type report = {
  sr_scanned : int;
  sr_clean : int;
  sr_corrupt : int list;  (* gids convicted (or already quarantined), ascending *)
}

let sweep pool =
  let gids = Buffer_pool.protected_gids pool in
  let corrupt =
    List.filter (fun gid -> not (Buffer_pool.verify pool gid)) gids
  in
  {
    sr_scanned = List.length gids;
    sr_clean = List.length gids - List.length corrupt;
    sr_corrupt = corrupt;
  }

let pp ppf r =
  Format.fprintf ppf "scanned=%d clean=%d corrupt=%d" r.sr_scanned r.sr_clean
    (List.length r.sr_corrupt)
