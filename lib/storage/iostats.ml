type t = {
  mutable n_reads : int;
  mutable n_writes : int;
  mutable n_accesses : int;
  mutable n_wal_writes : int;
  mutable n_wal_syncs : int;
  mutable n_pool_hits : int;
  mutable n_pool_misses : int;
  mutable n_pool_evictions : int;
  mutable n_pool_overflows : int;
  mutable n_checksum_verifications : int;
  mutable n_checksum_failures : int;
}

let create () =
  {
    n_reads = 0;
    n_writes = 0;
    n_accesses = 0;
    n_wal_writes = 0;
    n_wal_syncs = 0;
    n_pool_hits = 0;
    n_pool_misses = 0;
    n_pool_evictions = 0;
    n_pool_overflows = 0;
    n_checksum_verifications = 0;
    n_checksum_failures = 0;
  }

let reads t = t.n_reads

let writes t = t.n_writes

let accesses t = t.n_accesses

let wal_writes t = t.n_wal_writes

let wal_syncs t = t.n_wal_syncs

let pool_hits t = t.n_pool_hits

let pool_misses t = t.n_pool_misses

let pool_evictions t = t.n_pool_evictions

let pool_overflows t = t.n_pool_overflows

let checksum_verifications t = t.n_checksum_verifications

let checksum_failures t = t.n_checksum_failures

let total_io t = t.n_reads + t.n_writes

let record_read t = t.n_reads <- t.n_reads + 1

let record_write t = t.n_writes <- t.n_writes + 1

let record_access t = t.n_accesses <- t.n_accesses + 1

(* WAL page writes are real writes (they count in [writes]) but are also
   tallied separately so the logging overhead stays visible. *)
let record_wal_write t =
  t.n_writes <- t.n_writes + 1;
  t.n_wal_writes <- t.n_wal_writes + 1

(* A sync is a durability barrier, not a page transfer: it forces the dirty
   WAL tail (counted by {!record_wal_write} when a write actually happens)
   and is tallied on its own so group commit's amortization is visible. *)
let record_wal_sync t = t.n_wal_syncs <- t.n_wal_syncs + 1

let record_pool_hit t = t.n_pool_hits <- t.n_pool_hits + 1

let record_pool_miss t = t.n_pool_misses <- t.n_pool_misses + 1

let record_pool_eviction t = t.n_pool_evictions <- t.n_pool_evictions + 1

let record_pool_overflow t = t.n_pool_overflows <- t.n_pool_overflows + 1

let record_checksum_verification t =
  t.n_checksum_verifications <- t.n_checksum_verifications + 1

(* A failure is counted on top of its verification. *)
let record_checksum_failure t =
  t.n_checksum_failures <- t.n_checksum_failures + 1

let reset t =
  t.n_reads <- 0;
  t.n_writes <- 0;
  t.n_accesses <- 0;
  t.n_wal_writes <- 0;
  t.n_wal_syncs <- 0;
  t.n_pool_hits <- 0;
  t.n_pool_misses <- 0;
  t.n_pool_evictions <- 0;
  t.n_pool_overflows <- 0;
  t.n_checksum_verifications <- 0;
  t.n_checksum_failures <- 0

let pp ppf t =
  Format.fprintf ppf
    "reads=%d writes=%d (wal=%d, syncs=%d) accesses=%d pool(hit=%d miss=%d \
     evict=%d overflow=%d) checksum(verify=%d fail=%d)"
    t.n_reads t.n_writes t.n_wal_writes t.n_wal_syncs t.n_accesses
    t.n_pool_hits t.n_pool_misses t.n_pool_evictions t.n_pool_overflows
    t.n_checksum_verifications t.n_checksum_failures
