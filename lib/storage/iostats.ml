type t = {
  mutable n_reads : int;
  mutable n_writes : int;
  mutable n_accesses : int;
  mutable n_wal_writes : int;
}

let create () = { n_reads = 0; n_writes = 0; n_accesses = 0; n_wal_writes = 0 }

let reads t = t.n_reads

let writes t = t.n_writes

let accesses t = t.n_accesses

let wal_writes t = t.n_wal_writes

let total_io t = t.n_reads + t.n_writes

let record_read t = t.n_reads <- t.n_reads + 1

let record_write t = t.n_writes <- t.n_writes + 1

let record_access t = t.n_accesses <- t.n_accesses + 1

(* WAL page writes are real writes (they count in [writes]) but are also
   tallied separately so the logging overhead stays visible. *)
let record_wal_write t =
  t.n_writes <- t.n_writes + 1;
  t.n_wal_writes <- t.n_wal_writes + 1

let reset t =
  t.n_reads <- 0;
  t.n_writes <- 0;
  t.n_accesses <- 0;
  t.n_wal_writes <- 0

let pp ppf t =
  Format.fprintf ppf "reads=%d writes=%d (wal=%d) accesses=%d" t.n_reads
    t.n_writes t.n_wal_writes t.n_accesses
