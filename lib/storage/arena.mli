(** A growable off-heap word store backed by a [Bigarray] of native ints —
    the backing memory of {!Heap_file} pages.

    Tuple data lives outside the OCaml heap: a page is a fixed-size block of
    words carved out of the arena, addressed by offset, and {!slice} hands
    out a zero-copy window rather than copying.  Blocks are allocated
    bump-pointer style and released strictly LIFO ({!release} drops the tail
    block only), matching how heap files grow and how [truncate_last] undoes
    the append that grew a page. *)

type words = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

val create : ?initial_words:int -> unit -> t

val capacity_words : t -> int

val used_words : t -> int

(** [alloc t n] hands out a zero-filled block of [n] words, returning its
    word offset.  Amortized O(1): the arena doubles when full (one off-heap
    blit, invisible to the GC). *)
val alloc : t -> int -> int

(** [release t n] returns the last [n] words to the arena.  Raises
    [Invalid_argument] when [n] exceeds the words in use. *)
val release : t -> int -> unit

val get : t -> int -> int

val set : t -> int -> int -> unit

(** [slice t ~off ~len] is a zero-copy window: reads and writes through it go
    straight to the arena's memory. *)
val slice : t -> off:int -> len:int -> words

(** [blit_from_array t ~off src] copies [src] into the arena at [off]. *)
val blit_from_array : t -> off:int -> int array -> unit

(** [to_array t ~off ~len] materializes a block as a fresh [int array] (for
    callers that need an OCaml-heap tuple). *)
val to_array : t -> off:int -> len:int -> int array
