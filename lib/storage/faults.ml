(* Deterministic fault injection for the simulated storage device.  See
   faults.mli for the model.  The key property is replayability: a plan's
   behavior is a pure function of (schedules, seed, operation sequence), so
   any fault trace can be reproduced from the integers that built it. *)

type op = Read | Write | Alloc

type kind = Transient | Crash | Permanent

type fault = {
  f_op : op;
  f_kind : kind;
  f_page : int;
  f_seq : int;
  f_retries : int;
}

exception Injected of fault

(* Silent-corruption fault kinds.  Unlike the fail-stop kinds above they do
   not raise at the injection site: a Bit_flip damages the payload the
   device just "wrote" and returns normally, a Torn_write persists only a
   prefix of it and then surfaces as a crash.  Both are polled on a
   separate [damage] pass so their counters and RNG draws never perturb a
   fail-stop plan's stream. *)
type corruption = Bit_flip | Torn_write

type schedule =
  | Fail_nth of { op : op option; n : int; kind : kind }
  | Fail_page of { op : op option; page : int; kind : kind }
  | Fail_prob of { op : op option; p : float; kind : kind }
  | Corrupt_nth of { op : op option; n : int; way : corruption }
  | Corrupt_page of { op : op option; page : int; way : corruption }
  | Corrupt_prob of { op : op option; p : float; way : corruption }

type policy = {
  max_retries : int;
  base_delay_ms : float;
  multiplier : float;
  max_delay_ms : float;
}

let default_policy =
  { max_retries = 4; base_delay_ms = 1.0; multiplier = 2.0; max_delay_ms = 50.0 }

(* A live schedule carries its own match counter ([s_hits]) so Fail_nth
   counts matching operations, and a [s_spent] flag so Crash faults fire
   exactly once. *)
type slot = { sched : schedule; mutable s_hits : int; mutable s_spent : bool }

type t = {
  policy : policy;
  slots : slot list;
  rng : Random.State.t;  (* private stream for Fail_prob draws *)
  mutable t_armed : bool;
  mutable t_seq : int;
  mutable t_injected : int;
  mutable t_retries : int;
  mutable t_elapsed_ms : float;
}

let make ?(policy = default_policy) ?(seed = 0) schedules =
  {
    policy;
    slots = List.map (fun sched -> { sched; s_hits = 0; s_spent = false }) schedules;
    rng = Random.State.make [| 0x4661756c; seed |];
    t_armed = false;
    t_seq = 0;
    t_injected = 0;
    t_retries = 0;
    t_elapsed_ms = 0.0;
  }

let none () = make []

let random ?(policy = default_policy) ?(schedules = 3) ~rng () =
  let random_op () =
    match Random.State.int rng 4 with
    | 0 -> None
    | 1 -> Some Read
    | 2 -> Some Write
    | _ -> Some Alloc
  in
  let random_kind () =
    (* Bias toward Crash: it exercises the recovery path, which is what the
       crash-recovery oracle is for.  Transient and Permanent still appear
       often enough to cover retry and degradation. *)
    match Random.State.int rng 8 with
    | 0 | 1 -> Transient
    | 2 -> Permanent
    | _ -> Crash
  in
  let random_schedule () =
    match Random.State.int rng 3 with
    | 0 ->
        Fail_nth
          { op = random_op (); n = 1 + Random.State.int rng 400; kind = random_kind () }
    | 1 ->
        Fail_page
          { op = random_op (); page = Random.State.int rng 64; kind = random_kind () }
    | _ ->
        Fail_prob
          {
            op = random_op ();
            p = 0.001 +. (Random.State.float rng 0.01);
            kind = random_kind ();
          }
  in
  let n = 1 + Random.State.int rng schedules in
  (* Seed the plan's private Fail_prob stream from the caller's RNG so the
     whole plan replays from the caller's (seed, trial) state. *)
  let seed = Random.State.bits rng in
  make ~policy ~seed (List.init n (fun _ -> random_schedule ()))

let arm t = t.t_armed <- true

let disarm t = t.t_armed <- false

let armed t = t.t_armed

let op_matches filter op =
  match filter with None -> true | Some o -> o = op

(* Decide whether [slot] fires for this operation.  Must be called for every
   matching operation even when a fault from an earlier slot already fired,
   so counters and the probability stream stay aligned with the fault-free
   replay of the same plan.  Corruption slots never fire here — they are
   polled by [damage] after the operation succeeded. *)
let slot_fires t slot op ~page =
  match slot.sched with
  | Fail_nth s ->
      if op_matches s.op op then begin
        slot.s_hits <- slot.s_hits + 1;
        (not slot.s_spent) && slot.s_hits = s.n
      end
      else false
  | Fail_page s ->
      op_matches s.op op && page = s.page && not slot.s_spent
  | Fail_prob s ->
      if op_matches s.op op then begin
        let draw = Random.State.float t.rng 1.0 in
        (not slot.s_spent) && draw < s.p
      end
      else false
  | Corrupt_nth _ | Corrupt_page _ | Corrupt_prob _ -> false

let kind_rank = function Transient -> 0 | Crash -> 1 | Permanent -> 2

(* One pass over the schedules: every slot sees the operation (keeping all
   counters/RNG draws in lockstep), and if several fire at once the most
   severe kind wins.  Firing Crash slots are spent even when a more severe
   fault shadows them. *)
let poll t op ~page =
  let fired = ref None in
  List.iter
    (fun slot ->
      if slot_fires t slot op ~page then begin
        (match slot.sched with
        | Fail_nth { kind = Crash; _ }
        | Fail_page { kind = Crash; _ }
        | Fail_prob { kind = Crash; _ } ->
            slot.s_spent <- true
        | _ -> ());
        let kind =
          match slot.sched with
          | Fail_nth s -> s.kind
          | Fail_page s -> s.kind
          | Fail_prob s -> s.kind
          | Corrupt_nth _ | Corrupt_page _ | Corrupt_prob _ ->
              assert false (* corruption slots never fire in slot_fires *)
        in
        match !fired with
        | Some k when kind_rank k >= kind_rank kind -> ()
        | _ -> fired := Some kind
      end)
    t.slots;
  !fired

(* Corruption counterpart of [slot_fires]: consulted once per *successful*
   write-class operation, with its own hit counters, so fail-stop and
   corruption schedules in one plan keep independent, replayable streams.
   Every firing corruption slot is spent — the device damages a given
   target once. *)
let damage_fires t slot op ~page =
  match slot.sched with
  | Fail_nth _ | Fail_page _ | Fail_prob _ -> false
  | Corrupt_nth s ->
      if op_matches s.op op then begin
        slot.s_hits <- slot.s_hits + 1;
        (not slot.s_spent) && slot.s_hits = s.n
      end
      else false
  | Corrupt_page s -> op_matches s.op op && page = s.page && not slot.s_spent
  | Corrupt_prob s ->
      if op_matches s.op op then begin
        let draw = Random.State.float t.rng 1.0 in
        (not slot.s_spent) && draw < s.p
      end
      else false

(* [damage t op ~page] — polled by the buffer pool after a write-class
   operation succeeded.  Returns the corruption to apply to the page's
   payload plus a seeded selector (which bit to flip / where to tear),
   drawn from the plan's private RNG so the damage site replays with the
   plan.  A Torn_write shadows a Bit_flip when both fire on one op. *)
let damage t op ~page =
  if not (t.t_armed && t.slots <> []) then None
  else begin
    let fired = ref None in
    List.iter
      (fun slot ->
        if damage_fires t slot op ~page then begin
          slot.s_spent <- true;
          let way =
            match slot.sched with
            | Corrupt_nth s -> s.way
            | Corrupt_page s -> s.way
            | Corrupt_prob s -> s.way
            | Fail_nth _ | Fail_page _ | Fail_prob _ -> assert false
          in
          match (!fired, way) with
          | None, _ | Some (Bit_flip, _), Torn_write ->
              fired := Some (way, Random.State.bits t.rng)
          | Some _, _ -> ()
        end)
      t.slots;
    if !fired <> None then t.t_injected <- t.t_injected + 1;
    !fired
  end

(* A pure at-rest damage plan: [n] (way, target pick, selector) triples
   drawn entirely from [rng], for callers that corrupt a quiesced store
   directly (the corruption-recovery oracle, [visadvisor validate
   --scrub]).  [pick] indexes the caller's deterministic target-page list;
   two draws never pick the same target. *)
let random_damage ?(n = 2) ~rng ~targets () =
  if targets <= 0 then []
  else begin
    let n = min n targets in
    let picked = Hashtbl.create 8 in
    let rec fresh_pick () =
      let p = Random.State.int rng targets in
      if Hashtbl.mem picked p then fresh_pick ()
      else begin
        Hashtbl.replace picked p ();
        p
      end
    in
    List.init n (fun _ ->
        let way =
          if Random.State.int rng 3 = 0 then Torn_write else Bit_flip
        in
        let pick = fresh_pick () in
        let sel = Random.State.bits rng in
        (way, pick, sel))
  end

let check t op ~page =
  t.t_seq <- t.t_seq + 1;
  if t.t_armed && t.slots <> [] then begin
    match poll t op ~page with
    | None -> ()
    | Some Transient ->
        (* Retry in place with bounded exponential backoff on a simulated
           clock.  Each retry re-polls the plan: a retried operation can hit
           a *different* schedule (e.g. the Nth-op counter advanced), which
           is exactly how a real device retry behaves. *)
        let p = t.policy in
        let rec retry attempt delay_ms =
          if attempt > p.max_retries then
            begin
              t.t_injected <- t.t_injected + 1;
              raise
                (Injected
                   {
                     f_op = op;
                     f_kind = Transient;
                     f_page = page;
                     f_seq = t.t_seq;
                     f_retries = attempt - 1;
                   })
            end
          else begin
            t.t_retries <- t.t_retries + 1;
            t.t_elapsed_ms <- t.t_elapsed_ms +. delay_ms;
            t.t_seq <- t.t_seq + 1;
            match poll t op ~page with
            | None -> ()
            | Some Transient ->
                retry (attempt + 1)
                  (Float.min (delay_ms *. p.multiplier) p.max_delay_ms)
            | Some kind ->
                t.t_injected <- t.t_injected + 1;
                raise
                  (Injected
                     {
                       f_op = op;
                       f_kind = kind;
                       f_page = page;
                       f_seq = t.t_seq;
                       f_retries = attempt;
                     })
          end
        in
        retry 1 p.base_delay_ms
    | Some kind ->
        t.t_injected <- t.t_injected + 1;
        raise
          (Injected
             { f_op = op; f_kind = kind; f_page = page; f_seq = t.t_seq; f_retries = 0 })
  end

let seq t = t.t_seq

let injected t = t.t_injected

let retries t = t.t_retries

let elapsed_ms t = t.t_elapsed_ms

let op_name = function Read -> "read" | Write -> "write" | Alloc -> "alloc"

let kind_name = function
  | Transient -> "transient"
  | Crash -> "crash"
  | Permanent -> "permanent"

let corruption_name = function
  | Bit_flip -> "bit-flip"
  | Torn_write -> "torn-write"

let pp_fault ppf f =
  Format.fprintf ppf "%s %s on page %d at op #%d (%d retries)"
    (kind_name f.f_kind) (op_name f.f_op) f.f_page f.f_seq f.f_retries
