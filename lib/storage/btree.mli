(** A B+-tree index over integer keys mapping to heap-file rids, with its
    nodes registered in a {!Buffer_pool} so traversals and updates produce
    page I/O.  Duplicate keys are allowed (an entry is a (key, rid) pair).

    Inserts split full nodes in the classical way.  Deletes remove the entry
    from its leaf without rebalancing (lazy deletion, as in many production
    systems); structure invariants that tests rely on are: sorted keys within
    nodes, correct separator keys, and all leaves at the same depth. *)

type t

(** [create ?protect pool ~fanout] — [fanout] is the maximum number of
    entries (or children) per node; at least 4.  With [~protect:true]
    (default false) every node page — current and future splits — is
    checksum-registered with the pool ({!Buffer_pool.protect}), so silent
    damage to an index page is convicted on the next miss-read or scrub
    probe. *)
val create : ?protect:bool -> Buffer_pool.t -> fanout:int -> t

(** Raises [Invalid_argument] when the exact (key, rid) entry is already
    present — an index holds one entry per stored tuple. *)
val insert : t -> key:int -> Heap_file.rid -> unit

(** [remove t ~key rid] deletes one matching entry; [false] when absent. *)
val remove : t -> key:int -> Heap_file.rid -> bool

(** [mem t ~key rid] — whether the exact (key, rid) entry is present.
    Recovery uses it for tolerant undo: re-insert only what is absent,
    remove only what is present. *)
val mem : t -> key:int -> Heap_file.rid -> bool

(** [lookup t ~key] returns the rids of all entries with this key, touching
    the root-to-leaf path (and overflowing right siblings for
    duplicates). *)
val lookup : t -> key:int -> Heap_file.rid list

(** [range t ~lo ~hi] returns all entries with [lo <= key <= hi] in key
    order. *)
val range : t -> lo:int -> hi:int -> (int * Heap_file.rid) list

(** Number of entries. *)
val length : t -> int

(** Levels, leaf included (an empty tree has height 1). *)
val height : t -> int

(** Total node pages. *)
val n_pages : t -> int

(** [iter t ~f] visits every entry in key order, touching the leaf level. *)
val iter : t -> f:(int -> Heap_file.rid -> unit) -> unit

(** [check t] verifies structural invariants; [Error description] when one
    is violated (used by property tests and the crash-recovery oracle). *)
val check : t -> (unit, string) result

(** All node gids, root first — the unprotect list when an index is
    rebuilt away. *)
val page_gids : t -> int list

(** Enable checksum protection on an existing tree (registers every
    current node; splits keep new nodes registered).  Idempotent. *)
val protect : t -> unit

val protected : t -> bool
