include Vis_workload.Stream
