(** The multi-tenant advisor daemon: many {!Vis_maintenance.Warehouse}
    instances, each fed a seeded delta stream, refreshed in parallel
    refresh groups on a {!Vis_util.Parallel} domain pool, and watched by a
    per-tenant {!Monitor} that triggers {!Vis_core.Sensitivity}-gated
    re-optimization — warm-started from the incumbent mask via
    {!Vis_core.Astar.search_budgeted} — when the observed delta rates
    drift away from the rates the incumbent configuration was optimized
    for.

    {2 The tick loop}

    Time advances in {e ticks} of the simulated clock.  Each {!tick} runs
    three phases:

    + {b Arrivals} (coordinator, sequential in tenant order): for every
      tenant, draw the tick's batch count from {!Stream.arrivals} and the
      batch contents from the tenant's private RNG with
      {!Vis_workload.Datagen.deltas_evolving}, scaled by the tenant's
      {!Stream.drift} profile.  The tenant's logical dataset mirror
      advances with {!Vis_workload.Datagen.apply}.
    + {b Refresh} (parallel): every tenant with arrivals runs its batches
      as one {!Vis_maintenance.Refresh.run_protected_many} group-commit
      stream.  Tenants share {e no} storage state — each owns its pool,
      arena, WAL and counters — so one pool task per tenant
      ({!Vis_util.Parallel.run_tasks}) mutates disjoint state and the
      round is deterministic at any pool width.
    + {b Monitor & re-optimize} (coordinator, sequential in tenant
      order): feed each tenant's observed delta rows into its EWMA
      monitor; when the rate has {!Monitor.drifted} outside the band
      (after [sv_warmup] ticks), run the {!Vis_core.Sensitivity.probe} at
      the estimated drifted rates, and only if the incumbent's ratio
      exceeds [sv_gate] run the budgeted warm-started A*.  A strictly
      better design is swapped in {e between} refresh groups: the tenant's
      warehouse is rebuilt from its logical mirror under the new
      configuration, so no batch ever sees half a configuration and no
      delta is lost or applied twice.  A budget-bounded search
      ([Bounded] certificate) that fails to improve keeps the incumbent —
      the degradation path: the service never swaps to a worse design.

    Every phase is a pure function of [(seed, registered tenants, tick)];
    the pool only ever executes tenant-disjoint work, so the entire daemon
    end-state — physical signatures, every counter, every latency — is
    bit-identical at any [sv_jobs].  Injected faults (per-tenant
    {!Vis_storage.Faults} plans) ride the same refresh protocol and stay
    contained: a crash inside one tenant's group perturbs no other
    tenant's state or counters. *)

type config = {
  sv_seed : int;  (** root seed of every stream draw *)
  sv_jobs : int;  (** refresh-pool width (and re-optimizer [jobs]) *)
  sv_tick_ms : float;  (** simulated wall time one tick represents *)
  sv_group : Vis_maintenance.Refresh.group_policy;
      (** group-commit policy of each tenant's per-tick stream *)
  sv_max_attempts : int;  (** per-batch retry budget under faults *)
  sv_alpha : float;  (** EWMA weight of the newest rate observation *)
  sv_band : float;  (** re-optimization trigger band (e.g. 1.5 = ±50%) *)
  sv_gate : float;
      (** sensitivity-probe threshold: re-optimize only when the incumbent
          costs more than [sv_gate ×] the greedy design at the drifted
          rates *)
  sv_warmup : int;  (** ticks before the monitor may trigger *)
  sv_budget : int;  (** A* expansion budget per re-optimization *)
  sv_beam : int option;  (** beam width for the budgeted search *)
  sv_min_gain : float;
      (** minimum relative cost improvement required to swap (0.01 = 1%) *)
  sv_minsup : float option;
      (** when set, each re-optimization first mines the tenant's recent
          query history ({!Vis_workload.Miner}, at this minimum support)
          and searches the workload-proportional candidate set; [None]
          (the default) keeps the exhaustive enumeration, bit-identical to
          the pre-mining daemon *)
  sv_log_queries : int;
      (** queries per mined tenant history (deterministic in seed, tenant
          and tick); only read when [sv_minsup] is set *)
  sv_scrub_every : int;
      (** when positive, build every tenant warehouse checksum-protected
          and run a {!Vis_maintenance.Warehouse.scrub} pass over each
          tenant every this-many ticks (a fourth, sequential phase after
          re-optimization).  The daemon scrubs with
          [fail_unrecoverable:false]: corrupt base pages are counted, left
          quarantined, and never kill the tick loop.  [0] (the default)
          disables both checksums and scrubbing. *)
}

(** Seed 0, jobs 1, 100 ms ticks, the refresh default group policy,
    2 attempts, α 0.3, band 1.5, gate 1.02, warmup 2, budget 20,000,
    beam 64, min gain 1%, no mining (256 queries per history when
    enabled), no scrubbing. *)
val default_config : config

(** A snapshot of one tenant's counters.  All simulated-clock derived;
    comparable with [=] across runs (the service-replay oracle does
    exactly that). *)
type tenant_stats = {
  ts_id : int;
  ts_name : string;
  ts_ticks : int;  (** ticks while registered *)
  ts_batches : int;  (** delta batches arrived *)
  ts_rows : int;  (** delta rows arrived *)
  ts_groups : int;  (** refresh-group runs (ticks with work) *)
  ts_group_syncs : int;
  ts_replayed : int;  (** batches replayed individually after faults *)
  ts_failed : int;  (** group runs that ended in [Error] *)
  ts_injected : int;  (** faults surfaced past retry *)
  ts_rollbacks : int;
  ts_degraded : int;  (** runs that degraded to view recomputation *)
  ts_io : int;  (** measured page I/O across all runs *)
  ts_wal_syncs : int;
  ts_checks : int;  (** drift triggers examined *)
  ts_gated : int;  (** triggers dismissed by the sensitivity probe *)
  ts_reopts : int;  (** full budgeted A* runs *)
  ts_bounded : int;  (** re-optimizations with a [Bounded] certificate *)
  ts_swaps : int;  (** configuration swaps applied *)
  ts_scrubs : int;  (** scrub passes run over this tenant *)
  ts_scrub_corrupt : int;  (** pages convicted across all passes *)
  ts_scrub_rebuilt : int;  (** views + indexes rebuilt by scrubbing *)
  ts_unrecoverable : int;  (** corrupt base pages (quarantined, not fatal) *)
  ts_opt_factor : float;
      (** delta-scale factor the incumbent is optimized for (1.0 at
          registration) *)
  ts_ewma_ratio : float;  (** monitor ratio at snapshot time *)
  ts_latencies_ms : float list;
      (** per-batch commit latencies, oldest first *)
}

(** Aggregate figures across live and retired tenants. *)
type totals = {
  tt_tenants : int;  (** tenants ever registered *)
  tt_ticks : int;
  tt_clock_ms : float;  (** simulated time served *)
  tt_batches : int;
  tt_rows : int;
  tt_failed : int;
  tt_reopts : int;
  tt_swaps : int;
  tt_scrubs : int;
  tt_scrub_corrupt : int;
  tt_scrub_rebuilt : int;
  tt_mean_latency_ms : float;  (** 0 when no batch committed *)
  tt_p99_latency_ms : float;
}

type t

val create : ?config:config -> unit -> t
val config : t -> config

(** [add_tenant t schema] registers a tenant over [schema] (which must be
    executable — raises {!Vis_workload.Datagen.Unsupported} otherwise) and
    returns its id.  The initial dataset realizes the schema's statistics
    from [seed] (default: the tenant id); [rate] (default 2.0) is the mean
    batches per tick; [drift] (default {!Stream.Constant}) scales the
    stream's delta volume over time; [faults] installs a per-tenant fault
    plan for every refresh run; [config] overrides the initial design
    (default: a fresh budgeted A* design at the declared rates). *)
val add_tenant :
  ?name:string ->
  ?seed:int ->
  ?rate:float ->
  ?drift:Stream.drift ->
  ?faults:Vis_storage.Faults.t ->
  ?config:Vis_costmodel.Config.t ->
  t ->
  Vis_catalog.Schema.t ->
  int

(** [remove_tenant t id] tears the tenant down and returns its final
    counters (also kept for {!totals}).  Raises [Not_found] on an unknown
    or already-removed id. *)
val remove_tenant : t -> int -> tenant_stats

val n_tenants : t -> int
val tenant_ids : t -> int list

(** One tick of the three-phase loop described above. *)
val tick : t -> unit

(** [run t ~ticks] — [tick] that many times. *)
val run : t -> ticks:int -> unit

val stats : t -> int -> tenant_stats

(** The tenant's current configuration. *)
val incumbent : t -> int -> Vis_costmodel.Config.t

(** Physical digest of the tenant's warehouse
    ({!Vis_maintenance.Warehouse.signature}) — scans the storage, so call
    it at comparison points, not mid-measurement. *)
val signature : t -> int -> string

(** Logical digest ({!Vis_maintenance.Warehouse.logical_signature}). *)
val logical_signature : t -> int -> string

(** Configuration-independent digest of the tenant's base replicas and
    primary view contents — invariant across a swap (supporting views and
    indexes change; the data they serve must not). *)
val core_digest : t -> int -> string

val totals : t -> totals

(** [percentile ~p xs] — the p-th percentile (nearest-rank, [p ∈ [0,1]])
    of [xs]; 0 on the empty list. *)
val percentile : p:float -> float list -> float

(** Shuts the domain pool down.  The service must not be ticked after. *)
val shutdown : t -> unit
