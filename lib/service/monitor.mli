(** Per-tenant delta-rate monitor: an exponentially weighted moving average
    of observed delta rows per tick, compared against the rate the
    incumbent configuration was optimized for (the {e reference}).

    The monitor is the trigger side of the service's re-optimization loop:
    when {!ratio} leaves the band [[1/band, band]] the observed load has
    drifted far enough from the optimized-for load that the §6.2
    sensitivity probe is worth running.  Pure single-threaded state — each
    tenant owns one monitor, updated on the coordinating domain only. *)

type t

(** [create ~alpha ~reference] — [alpha ∈ (0, 1]] is the EWMA weight of the
    newest observation; [reference] the expected rows/tick of the incumbent
    design.  Raises [Invalid_argument] outside those ranges
    ([reference] must be positive). *)
val create : alpha:float -> reference:float -> t

(** [observe m rows] feeds one tick's observed delta rows.  The first
    observation initializes the average directly (no zero-bias). *)
val observe : t -> float -> unit

(** The current moving average (0 before any observation). *)
val ewma : t -> float

val reference : t -> float

(** Observed/optimized-for rate: [ewma m /. reference m]; 1.0 before any
    observation. *)
val ratio : t -> float

val observations : t -> int

(** [drifted m ~band] — whether {!ratio} lies strictly outside
    [[1/band, band]] ([band > 1]; e.g. 1.5 tolerates ±50%). *)
val drifted : t -> band:float -> bool

(** [rebase m ~reference] resets the reference after a configuration swap
    (the new design is optimized for the drifted rate), keeping the
    average and observation count. *)
val rebase : t -> reference:float -> unit
