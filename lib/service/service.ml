module Schema = Vis_catalog.Schema
module Config = Vis_costmodel.Config
module Problem = Vis_core.Problem
module Astar = Vis_core.Astar
module Sensitivity = Vis_core.Sensitivity
module Datagen = Vis_workload.Datagen
module Warehouse = Vis_maintenance.Warehouse
module Refresh = Vis_maintenance.Refresh
module Parallel = Vis_util.Parallel
module Bitset = Vis_util.Bitset

type config = {
  sv_seed : int;
  sv_jobs : int;
  sv_tick_ms : float;
  sv_group : Refresh.group_policy;
  sv_max_attempts : int;
  sv_alpha : float;
  sv_band : float;
  sv_gate : float;
  sv_warmup : int;
  sv_budget : int;
  sv_beam : int option;
  sv_min_gain : float;
  sv_minsup : float option;
  sv_log_queries : int;
  sv_scrub_every : int;
}

let default_config =
  {
    sv_seed = 0;
    sv_jobs = 1;
    sv_tick_ms = 100.;
    sv_group = Refresh.default_group_policy;
    sv_max_attempts = 2;
    sv_alpha = 0.3;
    sv_band = 1.5;
    sv_gate = 1.02;
    sv_warmup = 2;
    sv_budget = 20_000;
    sv_beam = Some 64;
    sv_min_gain = 0.01;
    sv_minsup = None;
    sv_log_queries = 256;
    sv_scrub_every = 0;
  }

type tenant_stats = {
  ts_id : int;
  ts_name : string;
  ts_ticks : int;
  ts_batches : int;
  ts_rows : int;
  ts_groups : int;
  ts_group_syncs : int;
  ts_replayed : int;
  ts_failed : int;
  ts_injected : int;
  ts_rollbacks : int;
  ts_degraded : int;
  ts_io : int;
  ts_wal_syncs : int;
  ts_checks : int;
  ts_gated : int;
  ts_reopts : int;
  ts_bounded : int;
  ts_swaps : int;
  ts_scrubs : int;
  ts_scrub_corrupt : int;
  ts_scrub_rebuilt : int;
  ts_unrecoverable : int;
  ts_opt_factor : float;
  ts_ewma_ratio : float;
  ts_latencies_ms : float list;
}

type totals = {
  tt_tenants : int;
  tt_ticks : int;
  tt_clock_ms : float;
  tt_batches : int;
  tt_rows : int;
  tt_failed : int;
  tt_reopts : int;
  tt_swaps : int;
  tt_scrubs : int;
  tt_scrub_corrupt : int;
  tt_scrub_rebuilt : int;
  tt_mean_latency_ms : float;
  tt_p99_latency_ms : float;
}

type tenant = {
  tn_id : int;
  tn_name : string;
  tn_schema : Schema.t;
  tn_rate : float;
  tn_drift : Stream.drift;
  tn_faults : Vis_storage.Faults.t option;
  tn_rng : Random.State.t;  (* batch-content draws, advanced only by this
                               tenant's own arrivals *)
  tn_monitor : Monitor.t;
  tn_base_rows : float;  (* expected rows/tick at drift factor 1.0 *)
  mutable tn_config : Config.t;
  mutable tn_opt_factor : float;
  mutable tn_warehouse : Warehouse.t;
  mutable tn_dataset : Datagen.dataset;  (* logical mirror of the stored
                                            bases, for swap rebuilds *)
  mutable tn_pending : Datagen.batch list;
  (* counters *)
  mutable c_ticks : int;
  mutable c_batches : int;
  mutable c_rows : int;
  mutable c_groups : int;
  mutable c_group_syncs : int;
  mutable c_replayed : int;
  mutable c_failed : int;
  mutable c_injected : int;
  mutable c_rollbacks : int;
  mutable c_degraded : int;
  mutable c_io : int;
  mutable c_wal_syncs : int;
  mutable c_checks : int;
  mutable c_gated : int;
  mutable c_reopts : int;
  mutable c_bounded : int;
  mutable c_swaps : int;
  mutable c_scrubs : int;
  mutable c_scrub_corrupt : int;
  mutable c_scrub_rebuilt : int;
  mutable c_unrecoverable : int;
  mutable c_latencies : float list;  (* newest first *)
}

type t = {
  cfg : config;
  pool : Parallel.pool;
  mutable tenants : tenant list;  (* live, ascending id *)
  mutable retired : tenant_stats list;
  mutable next_id : int;
  mutable ticks : int;
}

let create ?(config = default_config) () =
  if config.sv_jobs < 1 then invalid_arg "Service.create: sv_jobs < 1";
  if config.sv_band <= 1. then invalid_arg "Service.create: sv_band <= 1";
  if config.sv_scrub_every < 0 then
    invalid_arg "Service.create: sv_scrub_every < 0";
  {
    cfg = config;
    pool = Parallel.create ~jobs:config.sv_jobs ();
    tenants = [];
    retired = [];
    next_id = 0;
    ticks = 0;
  }

let config t = t.cfg
let n_tenants t = List.length t.tenants
let tenant_ids t = List.map (fun tn -> tn.tn_id) t.tenants

let find t id =
  match List.find_opt (fun tn -> tn.tn_id = id) t.tenants with
  | Some tn -> tn
  | None -> raise Not_found

(* Expected delta rows one batch carries at drift factor 1.0 — the same
   rounding [Datagen] applies when drawing. *)
let rows_per_batch schema =
  let n = Schema.n_relations schema in
  let total = ref 0. in
  for rel = 0 to n - 1 do
    let d = Schema.delta schema rel in
    total :=
      !total
      +. Float.round d.Schema.n_ins
      +. Float.round d.Schema.n_del
      +. Float.round d.Schema.n_upd
  done;
  !total

let add_tenant ?name ?seed ?(rate = 2.0) ?(drift = Stream.Constant) ?faults
    ?config t schema =
  if rate < 0. then invalid_arg "Service.add_tenant: rate < 0";
  let id = t.next_id in
  t.next_id <- id + 1;
  let name =
    match name with Some n -> n | None -> Printf.sprintf "tenant-%d" id
  in
  let seed = match seed with Some s -> s | None -> id in
  let dataset = Datagen.generate ~rng:(Random.State.make [| seed |]) schema in
  let design =
    match config with
    | Some c -> c
    | None ->
        let r, _ =
          Astar.search_budgeted ~max_expanded:t.cfg.sv_budget
            ?beam:t.cfg.sv_beam ~jobs:t.cfg.sv_jobs (Problem.make schema)
        in
        r.Astar.best
  in
  let warehouse =
    Warehouse.build ~checksums:(t.cfg.sv_scrub_every > 0) schema design dataset
  in
  let base_rows = rate *. rows_per_batch schema in
  let tn =
    {
      tn_id = id;
      tn_name = name;
      tn_schema = schema;
      tn_rate = rate;
      tn_drift = drift;
      tn_faults = faults;
      tn_rng = Random.State.make [| t.cfg.sv_seed; seed; 0x7e4a47 |];
      tn_monitor =
        Monitor.create ~alpha:t.cfg.sv_alpha
          ~reference:(Float.max 1e-6 base_rows);
      tn_base_rows = base_rows;
      tn_config = design;
      tn_opt_factor = 1.;
      tn_warehouse = warehouse;
      tn_dataset = dataset;
      tn_pending = [];
      c_ticks = 0;
      c_batches = 0;
      c_rows = 0;
      c_groups = 0;
      c_group_syncs = 0;
      c_replayed = 0;
      c_failed = 0;
      c_injected = 0;
      c_rollbacks = 0;
      c_degraded = 0;
      c_io = 0;
      c_wal_syncs = 0;
      c_checks = 0;
      c_gated = 0;
      c_reopts = 0;
      c_bounded = 0;
      c_swaps = 0;
      c_scrubs = 0;
      c_scrub_corrupt = 0;
      c_scrub_rebuilt = 0;
      c_unrecoverable = 0;
      c_latencies = [];
    }
  in
  t.tenants <- t.tenants @ [ tn ];
  id

let snapshot tn =
  {
    ts_id = tn.tn_id;
    ts_name = tn.tn_name;
    ts_ticks = tn.c_ticks;
    ts_batches = tn.c_batches;
    ts_rows = tn.c_rows;
    ts_groups = tn.c_groups;
    ts_group_syncs = tn.c_group_syncs;
    ts_replayed = tn.c_replayed;
    ts_failed = tn.c_failed;
    ts_injected = tn.c_injected;
    ts_rollbacks = tn.c_rollbacks;
    ts_degraded = tn.c_degraded;
    ts_io = tn.c_io;
    ts_wal_syncs = tn.c_wal_syncs;
    ts_checks = tn.c_checks;
    ts_gated = tn.c_gated;
    ts_reopts = tn.c_reopts;
    ts_bounded = tn.c_bounded;
    ts_swaps = tn.c_swaps;
    ts_scrubs = tn.c_scrubs;
    ts_scrub_corrupt = tn.c_scrub_corrupt;
    ts_scrub_rebuilt = tn.c_scrub_rebuilt;
    ts_unrecoverable = tn.c_unrecoverable;
    ts_opt_factor = tn.tn_opt_factor;
    ts_ewma_ratio = Monitor.ratio tn.tn_monitor;
    ts_latencies_ms = List.rev tn.c_latencies;
  }

let stats t id = snapshot (find t id)
let incumbent t id = (find t id).tn_config
let signature t id = Warehouse.signature (find t id).tn_warehouse

let logical_signature t id =
  Warehouse.logical_signature (find t id).tn_warehouse

let table_rows tbl =
  let acc = ref [] in
  Vis_storage.Heap_file.scan (Vis_relalg.Table.heap tbl) ~f:(fun _rid tuple ->
      acc := tuple :: !acc);
  List.rev !acc

let core_digest t id =
  let w = (find t id).tn_warehouse in
  let buf = Buffer.create 4096 in
  let add_table tag tbl =
    Buffer.add_string buf tag;
    List.iter
      (fun tuple ->
        Array.iter
          (fun v ->
            Buffer.add_string buf (string_of_int v);
            Buffer.add_char buf ',')
          tuple;
        Buffer.add_char buf ';')
      (List.sort compare (table_rows tbl))
  in
  Array.iteri
    (fun i tbl -> add_table (Printf.sprintf "base%d:" i) tbl)
    w.Warehouse.w_bases;
  let all = Schema.all_relations w.Warehouse.w_schema in
  (match
     List.find_opt (fun (set, _) -> Bitset.equal set all) w.Warehouse.w_views
   with
  | Some (_, tbl) -> add_table "primary:" tbl
  | None -> ());
  Digest.to_hex (Digest.string (Buffer.contents buf))

let remove_tenant t id =
  let tn = find t id in
  let s = snapshot tn in
  t.tenants <- List.filter (fun tn -> tn.tn_id <> id) t.tenants;
  t.retired <- s :: t.retired;
  s

(* Resynchronize the logical mirror from the stored bases after a failed
   group run: a durable prefix legitimately survives an [Error] stream, so
   the optimistic mirror (all batches applied) is re-read from the engine.
   Heap scan order is key-ascending — initial load and every insert append
   in key order; deletes only leave gaps — so the mirror invariant holds.
   [ds_next_key] keeps its high-water mark: rolled-back inserts burnt their
   keys, and reusing a key could collide with a later replay. *)
let resync_mirror tn =
  let tuples = Array.map table_rows tn.tn_warehouse.Warehouse.w_bases in
  tn.tn_dataset <-
    {
      Datagen.ds_tuples = tuples;
      ds_next_key = Array.copy tn.tn_dataset.Datagen.ds_next_key;
    }

let absorb tn outcome =
  tn.c_groups <- tn.c_groups + 1;
  match outcome with
  | Ok (report, fstats, gstats) ->
      tn.c_io <- tn.c_io + Refresh.total_io report;
      tn.c_wal_syncs <- tn.c_wal_syncs + report.Refresh.rp_wal_syncs;
      tn.c_group_syncs <- tn.c_group_syncs + gstats.Refresh.gr_group_syncs;
      tn.c_replayed <- tn.c_replayed + gstats.Refresh.gr_replayed;
      tn.c_injected <- tn.c_injected + fstats.Refresh.fs_injected;
      tn.c_rollbacks <- tn.c_rollbacks + fstats.Refresh.fs_rollbacks;
      if fstats.Refresh.fs_degraded then tn.c_degraded <- tn.c_degraded + 1;
      List.iter
        (fun l -> tn.c_latencies <- l :: tn.c_latencies)
        gstats.Refresh.gr_latencies_ms
  | Error e ->
      tn.c_failed <- tn.c_failed + 1;
      tn.c_injected <- tn.c_injected + e.Refresh.err_stats.Refresh.fs_injected;
      tn.c_rollbacks <-
        tn.c_rollbacks + e.Refresh.err_stats.Refresh.fs_rollbacks;
      if e.Refresh.err_stats.Refresh.fs_degraded then
        tn.c_degraded <- tn.c_degraded + 1;
      resync_mirror tn

(* The monitor-and-re-optimize phase for one tenant, on the coordinator.
   The drifted-rate estimate comes from the EWMA: [ratio × opt_factor] is
   the drift factor the observations imply, since the reference rate
   corresponds to [opt_factor].  All searches are budgeted and bit-identical
   at any [jobs], so this phase cannot break jobs-determinism. *)
let reoptimize t tn =
  let cfg = t.cfg in
  tn.c_checks <- tn.c_checks + 1;
  let est =
    Float.min 50.
      (Float.max 0.05 (Monitor.ratio tn.tn_monitor *. tn.tn_opt_factor))
  in
  let drifted = Schema.scale_deltas tn.tn_schema est in
  (* Workload-driven rung of the ladder: before the budgeted search, mine
     the tenant's recent query history (a deterministic synthetic log keyed
     by seed, tenant and current tick — the same determinism contract as
     the arrival stream) so re-optimization searches a
     workload-proportional candidate set.  Off ([sv_minsup = None]) the
     problem is the exhaustive one, bit-identical to the pre-mining
     daemon.  An incumbent using features outside the mined space simply
     fails [valid_config] and falls through to the search, where the
     invalid warm start is ignored — still deterministic in (seed, jobs). *)
  let p =
    match cfg.sv_minsup with
    | None -> Problem.make drifted
    | Some minsup ->
        let seed =
          (cfg.sv_seed * 1_000_003) + (tn.tn_id * 1_009) + t.ticks
        in
        let log =
          Vis_workload.Querygen.generate ~seed ~n:cfg.sv_log_queries drifted
        in
        let m = Vis_workload.Miner.mine ~minsup drifted log in
        Problem.make ~candidates:m.Vis_workload.Miner.m_candidates drifted
  in
  if
    Problem.valid_config p tn.tn_config
    && Sensitivity.probe p ~incumbent:tn.tn_config <= cfg.sv_gate
  then tn.c_gated <- tn.c_gated + 1
  else begin
    tn.c_reopts <- tn.c_reopts + 1;
    let r, cert =
      Astar.search_budgeted ~max_expanded:cfg.sv_budget ?beam:cfg.sv_beam
        ~jobs:cfg.sv_jobs ~warm_start:tn.tn_config p
    in
    (match cert with
    | Astar.Bounded _ -> tn.c_bounded <- tn.c_bounded + 1
    | Astar.Optimal -> ());
    let inc_cost = Problem.total p tn.tn_config in
    if
      r.Astar.best_cost < inc_cost *. (1. -. cfg.sv_min_gain)
      && not (Config.equal r.Astar.best tn.tn_config)
    then begin
      (* Swap between refresh groups: rebuild the warehouse from the
         logical mirror under the new design.  No group is in flight
         (phase 2 finished), so no batch ever runs against a half-swapped
         configuration, and the mirror guarantees the bases and primary
         view carry exactly the stream's contents across the swap. *)
      tn.tn_warehouse <-
        Warehouse.build ~checksums:(cfg.sv_scrub_every > 0) drifted
          r.Astar.best tn.tn_dataset;
      tn.tn_config <- r.Astar.best;
      tn.tn_opt_factor <- est;
      Monitor.rebase tn.tn_monitor
        ~reference:(Float.max 1e-6 (tn.tn_base_rows *. est));
      tn.c_swaps <- tn.c_swaps + 1
    end
  end

let tick t =
  t.ticks <- t.ticks + 1;
  let tick_no = t.ticks in
  (* Phase 1 — arrivals, sequential in tenant order.  Every RNG draw here
     is keyed to the tenant (arrival counts) or private to it (contents),
     so the phase is a pure function of (seed, tenants, tick). *)
  let rows_this_tick = Hashtbl.create 8 in
  List.iter
    (fun tn ->
      tn.c_ticks <- tn.c_ticks + 1;
      let k =
        Stream.arrivals ~seed:t.cfg.sv_seed ~tenant:tn.tn_id ~tick:tick_no
          ~mean:tn.tn_rate
      in
      let d = Stream.drift_factor tn.tn_drift ~tick:tick_no in
      let sch =
        if d = 1. then tn.tn_schema else Schema.scale_deltas tn.tn_schema d
      in
      let batches = ref [] in
      let rows = ref 0 in
      for _ = 1 to k do
        let b = Datagen.deltas_evolving ~rng:tn.tn_rng sch tn.tn_dataset in
        tn.tn_dataset <- Datagen.apply tn.tn_schema tn.tn_dataset b;
        rows := !rows + Datagen.batch_rows b;
        batches := b :: !batches
      done;
      tn.tn_pending <- List.rev !batches;
      tn.c_batches <- tn.c_batches + k;
      tn.c_rows <- tn.c_rows + !rows;
      Hashtbl.replace rows_this_tick tn.tn_id !rows)
    t.tenants;
  (* Phase 2 — refresh, one pool task per tenant with work.  Tenants share
     no storage state, so the tasks mutate disjoint structures; results
     come back in tenant order whatever the pool width. *)
  let work =
    Array.of_list (List.filter (fun tn -> tn.tn_pending <> []) t.tenants)
  in
  let outcomes =
    Parallel.run_tasks t.pool
      (Array.map
         (fun tn () ->
           Refresh.run_protected_many ?faults:tn.tn_faults
             ~max_attempts:t.cfg.sv_max_attempts ~policy:t.cfg.sv_group
             tn.tn_warehouse tn.tn_pending)
         work)
  in
  Array.iteri
    (fun i tn ->
      absorb tn outcomes.(i);
      tn.tn_pending <- [])
    work;
  (* Phase 3 — monitor and re-optimize, sequential in tenant order. *)
  List.iter
    (fun tn ->
      let rows =
        match Hashtbl.find_opt rows_this_tick tn.tn_id with
        | Some r -> float_of_int r
        | None -> 0.
      in
      Monitor.observe tn.tn_monitor rows;
      if
        tn.c_ticks > t.cfg.sv_warmup
        && Monitor.drifted tn.tn_monitor ~band:t.cfg.sv_band
      then reoptimize t tn)
    t.tenants;
  (* Phase 4 — scrub rung, sequential in tenant order every
     [sv_scrub_every] ticks.  The daemon never dies on damage it cannot
     repair: unrecoverable base pages are counted and left quarantined
     (reads of those pages no longer raise), so healthy tenants keep
     being served. *)
  if t.cfg.sv_scrub_every > 0 && tick_no mod t.cfg.sv_scrub_every = 0 then
    List.iter
      (fun tn ->
        let r = Warehouse.scrub ~fail_unrecoverable:false tn.tn_warehouse in
        tn.c_scrubs <- tn.c_scrubs + 1;
        tn.c_scrub_corrupt <- tn.c_scrub_corrupt + r.Warehouse.sc_corrupt;
        tn.c_scrub_rebuilt <-
          tn.c_scrub_rebuilt + r.Warehouse.sc_views_rebuilt
          + r.Warehouse.sc_indexes_rebuilt;
        tn.c_unrecoverable <-
          tn.c_unrecoverable + List.length r.Warehouse.sc_unrecoverable)
      t.tenants

let run t ~ticks =
  for _ = 1 to ticks do
    tick t
  done

let percentile ~p xs =
  match xs with
  | [] -> 0.
  | _ ->
      let arr = Array.of_list xs in
      Array.sort compare arr;
      let n = Array.length arr in
      let rank =
        int_of_float (Float.ceil (Float.max 0. (Float.min 1. p) *. float_of_int n))
      in
      arr.(Int.max 0 (Int.min (n - 1) (rank - 1)))

let totals t =
  let live = List.map snapshot t.tenants in
  let all = live @ t.retired in
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 all in
  let latencies =
    List.concat_map (fun s -> s.ts_latencies_ms) all
  in
  let n_lat = List.length latencies in
  {
    tt_tenants = t.next_id;
    tt_ticks = t.ticks;
    tt_clock_ms = float_of_int t.ticks *. t.cfg.sv_tick_ms;
    tt_batches = sum (fun s -> s.ts_batches);
    tt_rows = sum (fun s -> s.ts_rows);
    tt_failed = sum (fun s -> s.ts_failed);
    tt_reopts = sum (fun s -> s.ts_reopts);
    tt_swaps = sum (fun s -> s.ts_swaps);
    tt_scrubs = sum (fun s -> s.ts_scrubs);
    tt_scrub_corrupt = sum (fun s -> s.ts_scrub_corrupt);
    tt_scrub_rebuilt = sum (fun s -> s.ts_scrub_rebuilt);
    tt_mean_latency_ms =
      (if n_lat = 0 then 0.
       else List.fold_left ( +. ) 0. latencies /. float_of_int n_lat);
    tt_p99_latency_ms = percentile ~p:0.99 latencies;
  }

let shutdown t = Parallel.shutdown t.pool
