(** Re-export of {!Vis_workload.Stream} under its historical path.

    The seeded load processes started life inside the service daemon; the
    query-log generator ({!Vis_workload.Querygen}) reuses the same drift
    profiles and zipfian weights, so the implementation now lives in
    [vismat.workload].  The type equations below keep every
    [Vis_service.Stream] call site source- and behaviour-compatible. *)

type drift = Vis_workload.Stream.drift =
  | Constant
  | Step of { at : int; factor : float }
  | Ramp of { from_tick : int; over : int; factor : float }

val drift_factor : drift -> tick:int -> float
val zipf_weight : s:float -> rank:int -> float
val arrivals : seed:int -> tenant:int -> tick:int -> mean:float -> int
