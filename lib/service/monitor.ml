type t = {
  alpha : float;
  mutable reference : float;
  mutable ewma : float;
  mutable observations : int;
}

let create ~alpha ~reference =
  if not (alpha > 0. && alpha <= 1.) then
    invalid_arg "Monitor.create: alpha must be in (0, 1]";
  if not (reference > 0.) then
    invalid_arg "Monitor.create: reference must be positive";
  { alpha; reference; ewma = 0.; observations = 0 }

let observe m rows =
  if m.observations = 0 then m.ewma <- rows
  else m.ewma <- (m.alpha *. rows) +. ((1. -. m.alpha) *. m.ewma);
  m.observations <- m.observations + 1

let ewma m = m.ewma
let reference m = m.reference
let observations m = m.observations
let ratio m = if m.observations = 0 then 1. else m.ewma /. m.reference

let drifted m ~band =
  if band <= 1. then invalid_arg "Monitor.drifted: band must be > 1";
  let r = ratio m in
  r > band || r < 1. /. band

let rebase m ~reference =
  if not (reference > 0.) then
    invalid_arg "Monitor.rebase: reference must be positive";
  m.reference <- reference
