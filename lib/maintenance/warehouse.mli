(** An executable warehouse: base-relation replicas, the primary view and the
    configuration's supporting views and indexes, all stored on the simulated
    storage engine behind one buffer pool.  Building loads synthetic data and
    materializes every view; the I/O counters are reset afterwards so a
    subsequent {!Refresh.run} measures only maintenance work. *)

type t = {
  w_schema : Vis_catalog.Schema.t;
  w_derived : Vis_catalog.Derived.t;
  w_config : Vis_costmodel.Config.t;
  w_pool : Vis_storage.Buffer_pool.t;
  w_stats : Vis_storage.Iostats.t;
  w_bases : Vis_relalg.Table.t array;
  mutable w_views : (Vis_util.Bitset.t * Vis_relalg.Table.t) list;
      (** supporting views and the primary view, by increasing size;
          mutable because {!scrub} swaps in rebuilt view tables in place
          (positions — and with them WAL table ids — never change) *)
  w_wal : Vis_storage.Wal.t;
      (** the refresh write-ahead log, sharing the warehouse's pool *)
}

(** Attribute width used to size heap pages; schemas meant for execution
    should use [tuple_bytes = arity · attr_bytes] so that the cost model and
    the engine agree on page counts. *)
val attr_bytes : int

(** [view_desc schema set] — the canonical layout of a view: relations in
    ascending index order, each with its declared attributes. *)
val view_desc : Vis_catalog.Schema.t -> Vis_util.Bitset.t -> Vis_relalg.Reldesc.t

(** [build ?checksums schema config dataset] loads and materializes
    everything, flushes the pool and resets the counters.  With
    [~checksums:true] (default false) every base, view and index page is
    checksum-registered with the pool, so reads verify and {!scrub} can
    convict silent corruption — at a small, measured read-I/O cost. *)
val build :
  ?checksums:bool ->
  Vis_catalog.Schema.t -> Vis_costmodel.Config.t -> Vis_workload.Datagen.dataset -> t

(** [element_table w elem] — the stored table of a base relation or
    materialized view; [None] for views outside the configuration. *)
val element_table : t -> Vis_costmodel.Element.t -> Vis_relalg.Table.t option

(** [compute_view_in_memory schema ~tuples set] joins the given per-relation
    tuple lists into the canonical view contents (selections applied) —
    pure, used for materialization and for validation. *)
val compute_view_in_memory :
  Vis_catalog.Schema.t -> tuples:int array list array -> Vis_util.Bitset.t -> int array list

(** [reset_stats w] flushes the pool and zeroes the counters. *)
val reset_stats : t -> unit

(** {1 Logged modifications and crash recovery}

    The refresh protects a delta batch by bracketing it in
    {!begin_batch}/{!commit_batch} and performing every durable-table
    mutation through the [logged_*] operations, which append a logical
    record with before images to {!w_wal} {e before} applying the change.
    If a fault aborts the batch, {!recover} undoes the unfinished records
    in LIFO order, provably restoring the pre-batch stored state (see
    {!signature}). *)

(** Base replicas then views, in the fixed order WAL records index them. *)
val durable_tables : t -> Vis_relalg.Table.t array

(** Heap pages across every durable table; configurations with compressed
    elements ({!Vis_costmodel.Config.compress}) occupy fewer. *)
val total_data_pages : t -> int

(** [logged_insert w table tuple] — logs the insertion (destination rid
    predicted) then applies it. [table] must be one of
    {!durable_tables}. *)
val logged_insert : t -> Vis_relalg.Table.t -> int array -> Vis_storage.Heap_file.rid

(** [logged_delete w table rid] — logs the before image then deletes;
    [false] when the slot was already empty (nothing logged). *)
val logged_delete : t -> Vis_relalg.Table.t -> Vis_storage.Heap_file.rid -> bool

(** [logged_update w table rid after] — logs before and after images then
    updates in place; [false] when the slot is empty (nothing logged). *)
val logged_update :
  t -> Vis_relalg.Table.t -> Vis_storage.Heap_file.rid -> int array -> bool

val begin_batch : t -> unit

(** Appends the commit record, forces the log tail, truncates the log. *)
val commit_batch : t -> unit

(** Group commit: appends the commit record {e without} forcing the log.
    The batch is not durable — a crash before the next {!sync_batches}
    rolls it back — but one later sync covers every deferred commit at
    once. *)
val commit_batch_deferred : t -> unit

(** Forces the log tail (one sync covering every deferred commit since the
    last one) and truncates the now fully-durable log. *)
val sync_batches : t -> unit

(** [recover w] rolls back the unfinished batch, if any: undoes its records
    newest-first (tolerant of partially applied operations), charging one
    read per log page.  Runs with the fault plan disarmed (recovery models
    a clean restart); re-arms it afterwards if it was armed.  Returns the
    number of records undone — [0] when the log was empty or committed.

    Recovery first verifies the log ({!Vis_storage.Wal.verify_scan}): a
    torn tail is truncated and recovery proceeds; mid-log corruption
    raises {!Vis_storage.Wal.Corrupt_record} with the sequence number of
    the first bad record, before anything is undone. *)
val recover : t -> int

(** {1 Scrub, quarantine and self-healing rebuild} *)

(** Raised by {!scrub} (under [fail_unrecoverable]) when a base-relation
    heap page is corrupt: base replicas have no redundant source to
    rebuild from.  [u_table] is the durable-table id. *)
exception Unrecoverable of { u_gid : int; u_table : int }

type scrub_report = {
  sc_scanned : int;  (** protected pages probed *)
  sc_corrupt : int;  (** pages convicted (checksum mismatch) *)
  sc_views_rebuilt : int;
  sc_indexes_rebuilt : int;  (** index rebuilds not subsumed by a view rebuild *)
  sc_unrecoverable : (int * int) list;  (** corrupt base pages: (gid, table id) *)
}

(** [rebuild_view w set] rebuilds one view canonically from the current
    base replicas (scan, in-memory join, fresh table with the same
    compression/protection/indexes), discarding and unregistering the old
    table's pages.  The rebuilt table takes the old position in
    [w_views], keeping WAL table ids stable.  Repair I/O is charged to
    the warehouse counters.  Returns the rebuilt row count. *)
val rebuild_view : t -> Vis_util.Bitset.t -> int

(** [scrub w] runs one detect-quarantine-repair pass: sweeps every
    checksum-protected page ({!Vis_storage.Scrub.sweep}), then rebuilds
    every view with a convicted heap page and every index with a convicted
    node (from its heap; subsumed by the view rebuild when both).  Corrupt
    base-relation pages cannot be rebuilt: they are reported in
    [sc_unrecoverable] and — with [fail_unrecoverable], the default —
    raised as {!Unrecoverable} after all possible repairs ran. *)
val scrub : ?fail_unrecoverable:bool -> t -> scrub_report

(** {1 State digests and integrity}

    These scan every durable table (moving the pool and counters), so call
    them outside measured regions. *)

(** Physical digest: exact heap slot layout and index entry sequences.
    Equal iff the stored state is bit-for-bit identical. *)
val signature : t -> string

(** Logical digest: per-table sorted tuple multisets, ignoring physical
    placement — what a degraded (recomputed) refresh preserves. *)
val logical_signature : t -> string

(** Structural soundness of every index plus exact agreement between each
    index's (key, rid) entries and its heap. *)
val integrity_check : t -> (unit, string) result
