(** Cross-checks between the executed warehouse and ground truth:

    - {e correctness}: after a refresh, every materialized view must equal
      the view recomputed from scratch over the refreshed base replicas;
    - {e cost-model accuracy}: the measured physical I/O of a refresh should
      track the cost model's prediction (the experiments report the ratio;
      the paper's conclusions depend on relative costs, so a stable ratio
      across configurations is what matters). *)

type view_check = {
  vc_view : string;
  vc_expected : int;  (** tuples in the recomputed view *)
  vc_actual : int;  (** tuples stored *)
  vc_ok : bool;  (** multiset equality, not just counts *)
}

(** [check_views w] recomputes every materialized view from the current base
    replicas and compares contents. *)
val check_views : Warehouse.t -> view_check list

val all_ok : view_check list -> bool

(** [run_cycle ?seed schema config] generates data, builds the warehouse,
    runs one refresh, and returns the refresh report together with the view
    checks — the complete validation experiment for one configuration. *)
val run_cycle :
  ?seed:int ->
  Vis_catalog.Schema.t ->
  Vis_costmodel.Config.t ->
  Refresh.report * view_check list

type scrub_check = {
  sk_injected : int;  (** distinct rebuildable pages damaged *)
  sk_report : Warehouse.scrub_report;
  sk_views_ok : bool;  (** post-repair view contents re-verified *)
  sk_integrity_ok : bool;  (** {!Warehouse.integrity_check} after repair *)
}

(** [scrub_cycle ?seed ?damage schema config] — the corruption-recovery
    validation experiment: build the warehouse checksum-protected, refresh
    once, inject [damage] (default 3) seeded bit-flips/torn-writes into
    rebuildable pages (view heaps and index nodes — never base heaps),
    scrub with [fail_unrecoverable:false], and re-verify every view and
    index against the base replicas.  The cycle passes when the scrub
    convicted every damaged page ([sk_report.sc_corrupt = sk_injected])
    and both [sk_views_ok] and [sk_integrity_ok] hold. *)
val scrub_cycle :
  ?seed:int ->
  ?damage:int ->
  Vis_catalog.Schema.t ->
  Vis_costmodel.Config.t ->
  scrub_check
