(** Execution of one refresh cycle: the shipped deltas of every base relation
    are propagated, relation by relation, onto the base replicas, the
    supporting views, and the primary view, following exactly the update
    paths the cost model's optimizer chose (nested-block vs. index joins,
    saved-delta reuse, key-index vs. scan locating).  The buffer pool records
    the physical I/O, which {!Validate} compares with the cost model's
    prediction.

    Relations are processed in index order; within a relation, insertions
    are propagated to views smallest-first (so saved deltas exist when a
    superview's plan reuses them), then applied to the base replica, then
    deletions, then protected updates.  This sequential discipline makes the
    incremental result exact: each maintenance expression runs against
    states already consistent with the previously processed deltas. *)

type report = {
  rp_reads : int;
  rp_writes : int;
  rp_accesses : int;
  rp_wal_writes : int;  (** log pages forced (a subset of [rp_writes]) *)
  rp_wal_syncs : int;  (** durability barriers *)
  rp_pool_hits : int;
  rp_pool_misses : int;
  rp_pool_evictions : int;
  rp_pool_overflows : int;  (** frames pinned past pool capacity *)
  rp_predicted : float;  (** the cost model's [C(M')] for the same batch *)
}

val total_io : report -> int

(** [run warehouse batch] executes the refresh and reports measured vs.
    predicted I/O.  The warehouse's counters are reset first; on return they
    hold just this refresh (pool flushed into the counts). *)
val run : Warehouse.t -> Vis_workload.Datagen.batch -> report

(** {1 Fault-protected refresh}

    {!run_protected} executes the same cycle under WAL protection: every
    durable mutation is logged with before images before it is applied, and
    the batch is bracketed by begin/commit records.  A fault injected by
    the warehouse pool's {!Vis_storage.Faults} plan aborts the attempt,
    [Warehouse.recover] rolls the stored state back to the pre-batch
    snapshot, and the batch retries:

    - transient faults are retried with bounded exponential backoff at the
      failing page operation itself and normally never surface;
    - one-shot crash faults (and escalated transients) retry the whole
      batch, up to [max_attempts] times;
    - permanent faults degrade gracefully — the deltas are applied to the
      base replicas only and every view is {e recomputed} from the
      refreshed bases (still WAL-protected), charging the recomputation
      I/O to the counters.

    The outcome is therefore always one of: the post-batch state
    ([Ok] — logically identical to a fault-free {!run}, and bit-identical
    unless degradation rebuilt the views), or the pre-batch state
    ([Error] — every attempt rolled back cleanly).  Only the typed
    [Faults.Injected] exception is handled; anything else is a bug and
    propagates. *)

type fault_stats = {
  fs_attempts : int;  (** batch attempts, degraded ones included *)
  fs_injected : int;  (** faults surfaced past retry *)
  fs_retries : int;  (** page-level transient retries *)
  fs_backoff_ms : float;  (** simulated backoff time *)
  fs_rollbacks : int;  (** recovery invocations *)
  fs_undone : int;  (** log records undone across rollbacks *)
  fs_degraded : bool;  (** views were recomputed rather than patched *)
  fs_wal_records : int;  (** log records appended over the run *)
  fs_wal_pages : int;  (** log pages allocated over the run *)
  fs_recomputed_rows : int;  (** view rows rebuilt by degradation *)
}

type error = { err_fault : Vis_storage.Faults.fault; err_stats : fault_stats }

(** [run_protected ?faults ?max_attempts w batch] — [faults] defaults to a
    plan that never injects (measuring pure WAL overhead); [max_attempts]
    (default 2, minimum 1) bounds the normal-path attempts and, separately,
    the degraded-path attempts.  The plan is installed on the warehouse's
    pool and disarmed on return. *)
val run_protected :
  ?faults:Vis_storage.Faults.t ->
  ?max_attempts:int ->
  Warehouse.t ->
  Vis_workload.Datagen.batch ->
  (report * fault_stats, error) result

(** {1 Group commit}

    {!run_protected_many} runs a stream of delta batches under WAL
    protection with {e group commit}: each batch is bracketed and applied
    as in {!run_protected}, but its commit record is appended without
    forcing the log ({!Warehouse.commit_batch_deferred}).  One
    {!Warehouse.sync_batches} then covers every deferred commit at once,
    so [n] batches cost one durability barrier instead of [n].

    Scheduling runs on a simulated clock (batches arrive [10]ms apart) and
    is a pure function of that clock and the pending set — a sync fires
    when the pending group reaches [gp_max_group], when the oldest pending
    commit has waited [gp_window_ms], or at end of stream.  Runs therefore
    replay bit-identically, fault plans included.

    A fault while a group is open rolls back {e every} non-durable batch
    (cross-batch LIFO undo via [Warehouse.recover]) and the rolled-back
    batches are then {e replayed} one by one under the immediate-sync
    protocol of {!run_protected} — retries, backoff and graceful
    degradation per batch — before the group resumes.  The outcome is the
    same all-batches-applied state a fault-free run produces (or [Error]
    when a replayed batch exhausts its attempts). *)

(** [gp_max_group] bounds how many deferred commits one sync may cover
    ([1] degenerates to per-batch forcing, i.e. {!run_protected}'s
    behaviour); [gp_window_ms] bounds how long the oldest pending commit
    may wait on the simulated clock. *)
type group_policy = { gp_max_group : int; gp_window_ms : float }

(** [{ gp_max_group = 4; gp_window_ms = 40. }] *)
val default_group_policy : group_policy

type group_stats = {
  gr_batches : int;  (** batches in the stream *)
  gr_group_syncs : int;  (** group-mode syncs that confirmed a group *)
  gr_max_group : int;  (** largest group one sync covered *)
  gr_replayed : int;  (** batches replayed individually after a fault *)
  gr_clock_ms : float;  (** simulated clock at completion *)
  gr_latency_ms_total : float;
      (** summed commit latency: for each batch, simulated time from its
          arrival to the sync (or replay) that made it durable — the
          latency group commit trades against sync count *)
  gr_latencies_ms : float list;
      (** the per-batch commit latencies behind that sum, in arrival order
          (only durable batches appear).  The service layer feeds these
          into its p99 figure. *)
}

(** [run_protected_many ?faults ?max_attempts ?policy w batches] — the
    warehouse counters cover the whole stream; [fault_stats] aggregates
    every attempt (group-mode and replays). *)
val run_protected_many :
  ?faults:Vis_storage.Faults.t ->
  ?max_attempts:int ->
  ?policy:group_policy ->
  Warehouse.t ->
  Vis_workload.Datagen.batch list ->
  (report * fault_stats * group_stats, error) result
