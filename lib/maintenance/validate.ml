module Bitset = Vis_util.Bitset
module Schema = Vis_catalog.Schema
module Element = Vis_costmodel.Element
module Table = Vis_relalg.Table
module Exec = Vis_relalg.Exec
module Datagen = Vis_workload.Datagen

type view_check = {
  vc_view : string;
  vc_expected : int;
  vc_actual : int;
  vc_ok : bool;
}

let multiset_of rows =
  let t = Hashtbl.create 256 in
  List.iter
    (fun row ->
      let key = Array.to_list row in
      Hashtbl.replace t key (1 + Option.value ~default:0 (Hashtbl.find_opt t key)))
    rows;
  t

let multiset_equal a b =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold
       (fun k v acc -> acc && Hashtbl.find_opt b k = Some v)
       a true

let check_views w =
  let schema = w.Warehouse.w_schema in
  let n = Schema.n_relations schema in
  (* Current base contents, straight from the replicas. *)
  let tuples = Array.init n (fun r -> Exec.scan w.Warehouse.w_bases.(r) ()) in
  List.map
    (fun (set, table) ->
      let expected = Warehouse.compute_view_in_memory schema ~tuples set in
      let actual = Exec.scan table () in
      let ok = multiset_equal (multiset_of expected) (multiset_of actual) in
      {
        vc_view = Element.name schema (Element.View set);
        vc_expected = List.length expected;
        vc_actual = List.length actual;
        vc_ok = ok;
      })
    w.Warehouse.w_views

let all_ok checks = List.for_all (fun c -> c.vc_ok) checks

let run_cycle ?(seed = 42) schema config =
  let rng = Random.State.make [| seed |] in
  let dataset = Datagen.generate ~rng schema in
  let warehouse = Warehouse.build schema config dataset in
  let batch = Datagen.deltas ~rng schema dataset in
  let report = Refresh.run warehouse batch in
  let checks = check_views warehouse in
  (report, checks)

type scrub_check = {
  sk_injected : int;  (* distinct pages damaged *)
  sk_report : Warehouse.scrub_report;
  sk_views_ok : bool;  (* post-repair view contents re-verified *)
  sk_integrity_ok : bool;
}

(* Every page rebuildable from base relations: view heap pages plus every
   index node (indexes on bases rebuild from their heaps).  Base heap
   pages are excluded — damaging those is unrecoverable by design. *)
let rebuildable_gids w =
  let module Heap_file = Vis_storage.Heap_file in
  let module Btree = Vis_storage.Btree in
  let heap_gids tbl =
    let h = Table.heap tbl in
    List.init (Heap_file.n_pages h) (Heap_file.page_gid h)
  in
  let index_gids tbl =
    List.concat_map (fun (_, ix) -> Btree.page_gids ix) (Table.indexes tbl)
  in
  let base_ix =
    List.concat_map index_gids (Array.to_list w.Warehouse.w_bases)
  in
  let views =
    List.concat_map
      (fun (_, tbl) -> heap_gids tbl @ index_gids tbl)
      w.Warehouse.w_views
  in
  List.sort_uniq compare (base_ix @ views)

let scrub_cycle ?(seed = 42) ?(damage = 3) schema config =
  let rng = Random.State.make [| seed |] in
  let dataset = Datagen.generate ~rng schema in
  let w = Warehouse.build ~checksums:true schema config dataset in
  let batch = Datagen.deltas ~rng schema dataset in
  ignore (Refresh.run w batch);
  let targets = Array.of_list (rebuildable_gids w) in
  let hits =
    Vis_storage.Faults.random_damage ~n:damage
      ~rng:(Random.State.make [| seed; 0x5c2b |])
      ~targets:(Array.length targets) ()
  in
  List.iter
    (fun (way, pick, sel) ->
      Vis_storage.Buffer_pool.corrupt_page w.Warehouse.w_pool targets.(pick)
        way sel)
    hits;
  let report = Warehouse.scrub ~fail_unrecoverable:false w in
  let checks = check_views w in
  {
    sk_injected = List.length hits;
    sk_report = report;
    sk_views_ok = all_ok checks;
    sk_integrity_ok = Result.is_ok (Warehouse.integrity_check w);
  }
