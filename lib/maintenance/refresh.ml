module Bitset = Vis_util.Bitset
module Schema = Vis_catalog.Schema
module Element = Vis_costmodel.Element
module Cost = Vis_costmodel.Cost
module Table = Vis_relalg.Table
module Reldesc = Vis_relalg.Reldesc
module Exec = Vis_relalg.Exec
module Datagen = Vis_workload.Datagen
module Heap_file = Vis_storage.Heap_file
module Buffer_pool = Vis_storage.Buffer_pool
module Faults = Vis_storage.Faults
module Wal = Vis_storage.Wal

type report = {
  rp_reads : int;
  rp_writes : int;
  rp_accesses : int;
  rp_wal_writes : int;
  rp_wal_syncs : int;
  rp_pool_hits : int;
  rp_pool_misses : int;
  rp_pool_evictions : int;
  rp_pool_overflows : int;
  rp_predicted : float;
}

let total_io r = r.rp_reads + r.rp_writes

let rels_of_desc desc =
  List.fold_left
    (fun acc (r, _) -> Bitset.add r acc)
    Bitset.empty (Reldesc.attrs desc)

(* Equality conditions linking the rows described by [desc] with a join
   unit, as (outer offset, inner offset) pairs. *)
let equalities schema desc unit_desc =
  let left = rels_of_desc desc in
  let right = rels_of_desc unit_desc in
  List.filter_map
    (fun (j : Schema.join) ->
      if Bitset.mem j.Schema.left_rel left && Bitset.mem j.Schema.right_rel right
      then
        Some
          ( Reldesc.offset desc ~rel:j.Schema.left_rel ~attr:j.Schema.left_attr,
            Reldesc.offset unit_desc ~rel:j.Schema.right_rel
              ~attr:j.Schema.right_attr )
      else if
        Bitset.mem j.Schema.right_rel left && Bitset.mem j.Schema.left_rel right
      then
        Some
          ( Reldesc.offset desc ~rel:j.Schema.right_rel ~attr:j.Schema.right_attr,
            Reldesc.offset unit_desc ~rel:j.Schema.left_rel ~attr:j.Schema.left_attr
          )
      else None)
    schema.Schema.joins

(* Residual predicate on combined tuples: remaining equalities plus the
   pushed-down selections of a base-relation unit. *)
let residual_filter schema ~outer_arity ~eqs ~elem ~unit_desc =
  let sel_checks =
    match elem with
    | Element.View _ -> []
    | Element.Base i ->
        List.filter_map
          (fun (s : Schema.selection) ->
            if s.Schema.sel_rel <> i then None
            else
              let off =
                outer_arity
                + Reldesc.offset unit_desc ~rel:i ~attr:s.Schema.sel_attr
              in
              let bound =
                int_of_float
                  (s.Schema.selectivity *. float_of_int Datagen.sel_resolution)
              in
              Some (fun (t : int array) -> t.(off) < bound))
          schema.Schema.selections
  in
  let eq_checks =
    List.map
      (fun (oo, io) -> fun (t : int array) -> t.(oo) = t.(outer_arity + io))
      eqs
  in
  match sel_checks @ eq_checks with
  | [] -> None
  | checks -> Some (fun t -> List.for_all (fun c -> c t) checks)

let block_tuples_for schema desc =
  let bytes = max 1 (Reldesc.arity desc) * Warehouse.attr_bytes in
  let tpp = max 1 (schema.Schema.page_bytes / bytes) in
  max 1 (schema.Schema.mem_pages * tpp)

(* Reorder a tuple produced with layout [from_desc] into [to_desc]. *)
let permutation ~from_desc ~to_desc =
  Array.of_list
    (List.map
       (fun (rel, attr) -> Reldesc.offset from_desc ~rel ~attr)
       (Reldesc.attrs to_desc))

let temp_table pool schema desc =
  Table.create pool ~desc ~page_bytes:schema.Schema.page_bytes
    ~attr_bytes:Warehouse.attr_bytes

(* Execute the optimizer's insertion update path for one (view, relation)
   pair, returning rows in the view's canonical layout. *)
let exec_ins_plan w ~saved ~ins_temp ~rel ~target_set (plan : Cost.ins_plan) =
  let schema = w.Warehouse.w_schema in
  let start_desc, start_rows =
    match plan.Cost.ip_start with
    | Cost.From_delta ->
        let raw = Exec.scan ins_temp () in
        ( Reldesc.of_relation schema rel,
          List.filter (Datagen.passes_selections schema ~rel) raw )
    | Cost.From_saved wset ->
        let temp : Table.t = Hashtbl.find saved (rel, Bitset.to_int wset) in
        (Warehouse.view_desc schema wset, Exec.scan temp ())
  in
  let step (desc, rows) (elem, how) =
    let table =
      match Warehouse.element_table w elem with
      | Some t -> t
      | None -> invalid_arg "Refresh: plan references an unmaterialized element"
    in
    let unit_desc = Table.desc table in
    let eqs = equalities schema desc unit_desc in
    let outer_arity = Reldesc.arity desc in
    let joined =
      match how with
      | Cost.Nbj -> (
          let block_tuples = block_tuples_for schema desc in
          match eqs with
          | [] ->
              let filter =
                residual_filter schema ~outer_arity ~eqs:[] ~elem ~unit_desc
              in
              Exec.block_cross_join ~outer:rows ~block_tuples ~inner:table
                ?filter ()
          | (oo, io) :: residual ->
              let filter =
                residual_filter schema ~outer_arity ~eqs:residual ~elem
                  ~unit_desc
              in
              Exec.nested_block_join ~outer:rows ~outer_offset:oo ~block_tuples
                ~inner:table ~inner_offset:io ?filter ())
      | Cost.Index_join ix -> (
          let inner_offset =
            Reldesc.offset unit_desc ~rel:ix.Element.ix_attr.Element.a_rel
              ~attr:ix.Element.ix_attr.Element.a_name
          in
          match List.partition (fun (_, io) -> io = inner_offset) eqs with
          | (oo, io) :: extra_same, residual ->
              let filter =
                residual_filter schema ~outer_arity ~eqs:(extra_same @ residual)
                  ~elem ~unit_desc
              in
              Exec.index_join ~outer:rows ~outer_offset:oo ~inner:table
                ~inner_offset:io ?filter ()
          | [], _ ->
              invalid_arg "Refresh: index join without a matching equality")
    in
    (Reldesc.concat desc unit_desc, joined)
  in
  let desc, rows = List.fold_left step (start_desc, start_rows) plan.Cost.ip_steps in
  let canonical = Warehouse.view_desc schema target_set in
  if Reldesc.equal desc canonical then rows
  else begin
    let perm = permutation ~from_desc:desc ~to_desc:canonical in
    List.map (fun row -> Array.map (fun o -> row.(o)) perm) rows
  end

(* Locate the target tuples carrying one of [keys] in relation [rel]'s key
   attribute, by the optimizer's chosen method. *)
let locate w table ~rel ~keys how =
  let schema = w.Warehouse.w_schema in
  let key_attr = (Schema.relation schema rel).Schema.key_attr in
  let offset = Reldesc.offset (Table.desc table) ~rel ~attr:key_attr in
  match how with
  | Cost.Loc_scan -> Exec.locate_by_scan table ~offset ~keys
  | Cost.Loc_key_index _ -> Exec.locate_by_index table ~offset ~keys

(* How durable-table mutations are performed: straight through [Table] for
   the classic unprotected refresh, or through the warehouse's logged
   operations when the batch runs under WAL protection.  Temporary tables
   (staged deltas, saved view deltas) always bypass the sink — they are
   scratch and need no recovery. *)
type sink = {
  s_insert : Table.t -> int array -> unit;
  s_delete : Table.t -> Heap_file.rid -> unit;
  s_update : Table.t -> Heap_file.rid -> int array -> unit;
}

let unlogged_sink =
  {
    s_insert = (fun t row -> ignore (Table.insert t row));
    s_delete = (fun t rid -> ignore (Table.delete t rid));
    s_update = (fun t rid row -> ignore (Table.update t rid row));
  }

let logged_sink w =
  {
    s_insert = (fun t row -> ignore (Warehouse.logged_insert w t row));
    s_delete = (fun t rid -> ignore (Warehouse.logged_delete w t rid));
    s_update = (fun t rid row -> ignore (Warehouse.logged_update w t rid row));
  }

type staged = {
  st_ins : Table.t array;
  st_del : Table.t array;
  st_upd : Table.t array;
}

let key_offset schema r =
  let key_attr = (Schema.relation schema r).Schema.key_attr in
  Schema.attr_pos schema r key_attr

(* Stage the shipped deltas in temporary tables: maintenance proper starts
   with the deltas on disk, so staging happens before the counters reset
   and before any fault plan arms. *)
let stage w (batch : Datagen.batch) =
  let schema = w.Warehouse.w_schema in
  let pool = w.Warehouse.w_pool in
  let n = Schema.n_relations schema in
  let st_ins =
    Array.init n (fun r ->
        let t = temp_table pool schema (Reldesc.of_relation schema r) in
        List.iter (fun row -> ignore (Table.insert t row)) batch.Datagen.b_ins.(r);
        t)
  in
  (* Deletions ship as key-only tuples; we stage them at full relation width
     (zero-padded), matching the cost model's page estimate for ∇R. *)
  let st_del =
    Array.init n (fun r ->
        let desc = Reldesc.of_relation schema r in
        let t = temp_table pool schema desc in
        let arity = Reldesc.arity desc in
        let ko = key_offset schema r in
        List.iter
          (fun key ->
            let row = Array.make arity 0 in
            row.(ko) <- key;
            ignore (Table.insert t row))
          batch.Datagen.b_del.(r);
        t)
  in
  let st_upd =
    Array.init n (fun r ->
        let t = temp_table pool schema (Reldesc.of_relation schema r) in
        List.iter
          (fun (_, row) -> ignore (Table.insert t row))
          batch.Datagen.b_upd.(r);
        t)
  in
  { st_ins; st_del; st_upd }

(* The per-relation propagation loop.  [with_views:false] applies the
   deltas to the base replicas only (the degraded path recomputes views
   afterwards). *)
let apply w eval ~sink ~with_views ~staged (batch : Datagen.batch) =
  let schema = w.Warehouse.w_schema in
  let pool = w.Warehouse.w_pool in
  let n = Schema.n_relations schema in
  let saved : (int * int, Table.t) Hashtbl.t = Hashtbl.create 16 in
  for r = 0 to n - 1 do
    (* Insertions: views smallest-first, then the base replica. *)
    if batch.Datagen.b_ins.(r) <> [] then begin
      if with_views then
        List.iter
          (fun (set, vtable) ->
            if Bitset.mem r set then begin
              let _, plan = Cost.prop_ins eval ~target:(Element.View set) ~rel:r in
              let rows =
                exec_ins_plan w ~saved ~ins_temp:staged.st_ins.(r) ~rel:r
                  ~target_set:set plan
              in
              List.iter (fun row -> sink.s_insert vtable row) rows;
              if not (Bitset.equal set (Schema.all_relations schema)) then begin
                let save = temp_table pool schema (Warehouse.view_desc schema set) in
                List.iter (fun row -> ignore (Table.insert save row)) rows;
                Hashtbl.replace saved (r, Bitset.to_int set) save
              end
            end)
          w.Warehouse.w_views;
      let raw = Exec.scan staged.st_ins.(r) () in
      List.iter (fun row -> sink.s_insert w.Warehouse.w_bases.(r) row) raw
    end;
    (* Deletions: read the shipped keys, then locate and remove. *)
    if batch.Datagen.b_del.(r) <> [] then begin
      let ko = key_offset schema r in
      let read_keys () =
        List.map (fun row -> row.(ko)) (Exec.scan staged.st_del.(r) ())
      in
      if with_views then
        List.iter
          (fun (set, vtable) ->
            if Bitset.mem r set then begin
              let _, how = Cost.prop_del eval ~target:(Element.View set) ~rel:r in
              let located = locate w vtable ~rel:r ~keys:(read_keys ()) how in
              List.iter (fun (rid, _) -> sink.s_delete vtable rid) located
            end)
          w.Warehouse.w_views;
      let _, how = Cost.prop_del eval ~target:(Element.Base r) ~rel:r in
      let located =
        locate w w.Warehouse.w_bases.(r) ~rel:r ~keys:(read_keys ()) how
      in
      List.iter
        (fun (rid, _) -> sink.s_delete w.Warehouse.w_bases.(r) rid)
        located
    end;
    (* Protected updates: read the shipped replacement rows, then locate
       and overwrite in place. *)
    if batch.Datagen.b_upd.(r) <> [] then begin
      let ko = key_offset schema r in
      let shipped = Exec.scan staged.st_upd.(r) () in
      let keys = List.map (fun row -> row.(ko)) shipped in
      let replacement = Hashtbl.create (2 * List.length shipped) in
      List.iter (fun row -> Hashtbl.replace replacement row.(ko) row) shipped;
      if with_views then
        List.iter
          (fun (set, vtable) ->
            if Bitset.mem r set then begin
              let _, how = Cost.prop_upd eval ~target:(Element.View set) ~rel:r in
              let located = locate w vtable ~rel:r ~keys how in
              let desc = Table.desc vtable in
              let key_attr = (Schema.relation schema r).Schema.key_attr in
              let key_off = Reldesc.offset desc ~rel:r ~attr:key_attr in
              List.iter
                (fun (rid, old_row) ->
                  match Hashtbl.find_opt replacement old_row.(key_off) with
                  | None -> ()
                  | Some fresh ->
                      let updated = Array.copy old_row in
                      List.iteri
                        (fun pos (drel, dattr) ->
                          if drel = r then
                            updated.(pos) <-
                              fresh.(Schema.attr_pos schema r dattr))
                        (Reldesc.attrs desc);
                      sink.s_update vtable rid updated)
                located
            end)
          w.Warehouse.w_views;
      let _, how = Cost.prop_upd eval ~target:(Element.Base r) ~rel:r in
      let located = locate w w.Warehouse.w_bases.(r) ~rel:r ~keys how in
      List.iter
        (fun (rid, old_row) ->
          match Hashtbl.find_opt replacement old_row.(ko) with
          | None -> ()
          | Some fresh -> sink.s_update w.Warehouse.w_bases.(r) rid fresh)
        located
    end
  done

let report_of w ~predicted =
  let stats = w.Warehouse.w_stats in
  {
    rp_reads = Vis_storage.Iostats.reads stats;
    rp_writes = Vis_storage.Iostats.writes stats;
    rp_accesses = Vis_storage.Iostats.accesses stats;
    rp_wal_writes = Vis_storage.Iostats.wal_writes stats;
    rp_wal_syncs = Vis_storage.Iostats.wal_syncs stats;
    rp_pool_hits = Vis_storage.Iostats.pool_hits stats;
    rp_pool_misses = Vis_storage.Iostats.pool_misses stats;
    rp_pool_evictions = Vis_storage.Iostats.pool_evictions stats;
    rp_pool_overflows = Vis_storage.Iostats.pool_overflows stats;
    rp_predicted = predicted;
  }

let run w (batch : Datagen.batch) =
  let eval = Cost.create w.Warehouse.w_derived w.Warehouse.w_config in
  let predicted = Cost.total eval in
  let staged = stage w batch in
  Warehouse.reset_stats w;
  apply w eval ~sink:unlogged_sink ~with_views:true ~staged batch;
  Vis_storage.Buffer_pool.flush w.Warehouse.w_pool;
  report_of w ~predicted

(* ------------------------------------------------------------------ *)
(* Fault-protected refresh. *)

type fault_stats = {
  fs_attempts : int;
  fs_injected : int;
  fs_retries : int;
  fs_backoff_ms : float;
  fs_rollbacks : int;
  fs_undone : int;
  fs_degraded : bool;
  fs_wal_records : int;
  fs_wal_pages : int;
  fs_recomputed_rows : int;
}

type error = { err_fault : Faults.fault; err_stats : fault_stats }

(* Graceful degradation: with the base replicas already refreshed (bases
   only), rebuild every view from scratch — scan the bases, join in memory,
   then replace each view's contents through the logged operations so even
   a crash mid-recomputation rolls back cleanly.  The scans and rewrites
   are charged to [Iostats] like any other I/O: degradation has a visible
   price. *)
let recompute_views w recomputed =
  let schema = w.Warehouse.w_schema in
  let n = Schema.n_relations schema in
  let tuples =
    Array.init n (fun r ->
        let acc = ref [] in
        Heap_file.scan
          (Table.heap w.Warehouse.w_bases.(r))
          ~f:(fun _ t -> acc := Array.copy t :: !acc);
        List.rev !acc)
  in
  List.iter
    (fun (set, vtable) ->
      let fresh = Warehouse.compute_view_in_memory schema ~tuples set in
      let rids = ref [] in
      Heap_file.scan (Table.heap vtable) ~f:(fun rid _ -> rids := rid :: !rids);
      List.iter
        (fun rid -> ignore (Warehouse.logged_delete w vtable rid))
        (List.rev !rids);
      List.iter (fun row -> ignore (Warehouse.logged_insert w vtable row)) fresh;
      recomputed := !recomputed + List.length fresh)
    w.Warehouse.w_views

(* Mutable tallies shared by the single-batch runner and the group runner:
   both funnel their attempts through [protected_one], so the fault
   statistics aggregate naturally across a whole group run. *)
type tallies = {
  mutable tl_attempts : int;
  mutable tl_rollbacks : int;
  mutable tl_undone : int;
  mutable tl_recomputed : int;
  mutable tl_degraded : bool;
}

let fresh_tallies () =
  {
    tl_attempts = 0;
    tl_rollbacks = 0;
    tl_undone = 0;
    tl_recomputed = 0;
    tl_degraded = false;
  }

let stats_of w plan tl =
  {
    fs_attempts = tl.tl_attempts;
    fs_injected = Faults.injected plan;
    fs_retries = Faults.retries plan;
    fs_backoff_ms = Faults.elapsed_ms plan;
    fs_rollbacks = tl.tl_rollbacks;
    fs_undone = tl.tl_undone;
    fs_degraded = tl.tl_degraded;
    fs_wal_records = Wal.total_records w.Warehouse.w_wal;
    fs_wal_pages = Wal.total_pages w.Warehouse.w_wal;
    fs_recomputed_rows = tl.tl_recomputed;
  }

(* One WAL-protected batch under the immediate-sync protocol: retry the
   whole batch on one-shot (crash) or escalated transient faults, degrade
   to view recomputation on permanent ones.  Shared by [run_protected] and
   the group runner's per-batch replay after a group rollback. *)
let protected_one w eval plan ~max_attempts ~sink ~staged ~batch tl =
  (* One bracketed attempt.  Only the typed fault exception is caught —
     anything else is a genuine bug and must surface. *)
  let attempt ~with_views =
    tl.tl_attempts <- tl.tl_attempts + 1;
    Faults.arm plan;
    match
      (* The Begin append can itself fault (log-page alloc or seal), so it
         sits inside the bracket too; recovery of a batch that died in
         [begin_batch] finds nothing to undo. *)
      Warehouse.begin_batch w;
      apply w eval ~sink ~with_views ~staged batch;
      if not with_views then begin
        let rc = ref tl.tl_recomputed in
        recompute_views w rc;
        tl.tl_recomputed <- !rc
      end;
      Warehouse.commit_batch w
    with
    | () ->
        Faults.disarm plan;
        None
    | exception Faults.Injected f ->
        Faults.disarm plan;
        tl.tl_rollbacks <- tl.tl_rollbacks + 1;
        tl.tl_undone <- tl.tl_undone + Warehouse.recover w;
        Some f
  in
  (* Normal path: a permanent fault would fail identically on retry, so
     skip straight to degradation. *)
  let rec normal k =
    match attempt ~with_views:true with
    | None -> Ok ()
    | Some f when f.Faults.f_kind = Faults.Permanent -> Error f
    | Some f when k >= max_attempts -> Error f
    | Some _ -> normal (k + 1)
  in
  let rec degrade k =
    match attempt ~with_views:false with
    | None -> Ok ()
    | Some f when k >= max_attempts -> Error f
    | Some _ -> degrade (k + 1)
  in
  match normal 1 with
  | Ok () -> Ok ()
  | Error _ ->
      tl.tl_degraded <- true;
      degrade 1

let run_protected ?faults ?(max_attempts = 2) w (batch : Datagen.batch) =
  let max_attempts = max 1 max_attempts in
  let plan = match faults with Some p -> p | None -> Faults.none () in
  let pool = w.Warehouse.w_pool in
  Buffer_pool.set_faults pool plan;
  let eval = Cost.create w.Warehouse.w_derived w.Warehouse.w_config in
  let predicted = Cost.total eval in
  let staged = stage w batch in
  Warehouse.reset_stats w;
  let sink = logged_sink w in
  let tl = fresh_tallies () in
  let outcome = protected_one w eval plan ~max_attempts ~sink ~staged ~batch tl in
  Faults.disarm plan;
  Vis_storage.Buffer_pool.flush pool;
  let stats = stats_of w plan tl in
  match outcome with
  | Ok () -> Ok (report_of w ~predicted, stats)
  | Error f -> Error { err_fault = f; err_stats = stats }

(* ------------------------------------------------------------------ *)
(* Group commit. *)

type group_policy = { gp_max_group : int; gp_window_ms : float }

let default_group_policy = { gp_max_group = 4; gp_window_ms = 40. }

(* Simulated inter-arrival time of one batch on the group clock.  The
   scheduler below is a pure function of this clock and the pending set,
   so a run (including any fault plan's injection points) replays
   bit-identically regardless of host timing. *)
let batch_ms = 10.

type group_stats = {
  gr_batches : int;
  gr_group_syncs : int;
  gr_max_group : int;
  gr_replayed : int;
  gr_clock_ms : float;
  gr_latency_ms_total : float;
  gr_latencies_ms : float list;
}

let run_protected_many ?faults ?(max_attempts = 2)
    ?(policy = default_group_policy) w (batches : Datagen.batch list) =
  let max_attempts = max 1 max_attempts in
  if policy.gp_max_group < 1 then
    invalid_arg "Refresh.run_protected_many: gp_max_group < 1";
  let plan = match faults with Some p -> p | None -> Faults.none () in
  let pool = w.Warehouse.w_pool in
  Buffer_pool.set_faults pool plan;
  let eval = Cost.create w.Warehouse.w_derived w.Warehouse.w_config in
  let batch_arr = Array.of_list batches in
  let n = Array.length batch_arr in
  let predicted = Cost.total eval *. float_of_int n in
  let staged_arr = Array.map (stage w) batch_arr in
  Warehouse.reset_stats w;
  let sink = logged_sink w in
  let tl = fresh_tallies () in
  let clock = ref 0. in
  (* Per-batch commit latency (arrival order), settled at whichever
     durability point confirmed the batch: the group sync or its individual
     replay.  [nan] marks a batch the failure path never made durable. *)
  let latencies = Array.make n Float.nan in
  let group_syncs = ref 0 in
  let max_group = ref 0 in
  let replayed = ref 0 in
  (* Batch indexes committed-deferred but not yet covered by a sync, newest
     first.  Their staged deltas are kept until durability confirms. *)
  let pending = ref [] in
  let failure = ref None in
  let arrival i = float_of_int i *. batch_ms in
  let settle i = latencies.(i) <- !clock -. arrival i in
  (* After a rollback every non-durable batch was undone (cross-batch
     LIFO); replay them oldest-first, each under the immediate-sync
     protocol with its own retry/degrade budget.  The group resumes with
     the remaining batches afterwards. *)
  let replay idxs =
    List.iter
      (fun i ->
        if !failure = None then begin
          incr replayed;
          match
            protected_one w eval plan ~max_attempts ~sink
              ~staged:staged_arr.(i) ~batch:batch_arr.(i) tl
          with
          | Ok () -> settle i
          | Error f -> failure := Some f
        end)
      idxs
  in
  (* Force the log once for every pending deferred commit.  The sync's
     write-back is itself a fault point: a crash there rolls back the whole
     pending group, which then replays batch by batch. *)
  let flush_group () =
    if !pending <> [] then begin
      let size = List.length !pending in
      Faults.arm plan;
      match Warehouse.sync_batches w with
      | () ->
          Faults.disarm plan;
          incr group_syncs;
          if size > !max_group then max_group := size;
          List.iter settle !pending;
          pending := []
      | exception Faults.Injected _ ->
          Faults.disarm plan;
          tl.tl_rollbacks <- tl.tl_rollbacks + 1;
          tl.tl_undone <- tl.tl_undone + Warehouse.recover w;
          let idxs = List.rev !pending in
          pending := [];
          replay idxs
    end
  in
  let i = ref 0 in
  while !failure = None && !i < n do
    let idx = !i in
    clock := !clock +. batch_ms;
    tl.tl_attempts <- tl.tl_attempts + 1;
    Faults.arm plan;
    (match
       Warehouse.begin_batch w;
       apply w eval ~sink ~with_views:true ~staged:staged_arr.(idx)
         batch_arr.(idx);
       Warehouse.commit_batch_deferred w
     with
    | () ->
        Faults.disarm plan;
        pending := idx :: !pending;
        (* Deterministic scheduler: sync when the group is full, the oldest
           pending commit has waited out the window, or the stream ends. *)
        let window_elapsed =
          match List.rev !pending with
          | oldest :: _ -> !clock -. arrival oldest >= policy.gp_window_ms
          | [] -> false
        in
        if
          List.length !pending >= policy.gp_max_group
          || window_elapsed
          || idx = n - 1
        then flush_group ()
    | exception Faults.Injected _ ->
        (* The crash takes down the current batch and every deferred one:
           none of their commits were forced, so [recover] undoes them all
           newest-first before the individual replay. *)
        Faults.disarm plan;
        tl.tl_rollbacks <- tl.tl_rollbacks + 1;
        tl.tl_undone <- tl.tl_undone + Warehouse.recover w;
        let idxs = List.rev (idx :: !pending) in
        pending := [];
        replay idxs);
    incr i
  done;
  (* Normally empty here (the last batch forces a flush); only a trailing
     fault path can leave stragglers. *)
  flush_group ();
  Faults.disarm plan;
  Vis_storage.Buffer_pool.flush pool;
  let stats = stats_of w plan tl in
  let gstats =
    {
      gr_batches = n;
      gr_group_syncs = !group_syncs;
      gr_max_group = !max_group;
      gr_replayed = !replayed;
      gr_clock_ms = !clock;
      gr_latency_ms_total =
        Array.fold_left
          (fun acc l -> if Float.is_nan l then acc else acc +. l)
          0. latencies;
      gr_latencies_ms =
        List.filter (fun l -> not (Float.is_nan l)) (Array.to_list latencies);
    }
  in
  match !failure with
  | None -> Ok (report_of w ~predicted, stats, gstats)
  | Some f -> Error { err_fault = f; err_stats = stats }
