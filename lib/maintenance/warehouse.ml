module Bitset = Vis_util.Bitset
module Schema = Vis_catalog.Schema
module Derived = Vis_catalog.Derived
module Element = Vis_costmodel.Element
module Config = Vis_costmodel.Config
module Table = Vis_relalg.Table
module Reldesc = Vis_relalg.Reldesc
module Datagen = Vis_workload.Datagen

module Heap_file = Vis_storage.Heap_file
module Btree = Vis_storage.Btree
module Buffer_pool = Vis_storage.Buffer_pool
module Wal = Vis_storage.Wal
module Faults = Vis_storage.Faults

type t = {
  w_schema : Schema.t;
  w_derived : Derived.t;
  w_config : Config.t;
  w_pool : Vis_storage.Buffer_pool.t;
  w_stats : Vis_storage.Iostats.t;
  w_bases : Table.t array;
  mutable w_views : (Bitset.t * Table.t) list;
  w_wal : Wal.t;
}

let attr_bytes = 8

let view_desc schema set =
  Bitset.fold
    (fun i acc ->
      let d = Reldesc.of_relation schema i in
      match acc with None -> Some d | Some prev -> Some (Reldesc.concat prev d))
    set None
  |> function
  | Some d -> d
  | None -> invalid_arg "Warehouse.view_desc: empty set"

(* In-memory hash join of the view's relations, selections applied, in
   canonical relation order. *)
let compute_view_in_memory schema ~tuples set =
  let rels = Bitset.elements set in
  match rels with
  | [] -> invalid_arg "Warehouse.compute_view_in_memory: empty set"
  | first :: rest ->
      let filtered rel =
        List.filter
          (Datagen.passes_selections schema ~rel)
          tuples.(rel)
      in
      let init =
        (Reldesc.of_relation schema first, filtered first)
      in
      let step (desc, rows) rel =
        let rdesc = Reldesc.of_relation schema rel in
        let conds =
          List.filter_map
            (fun (j : Schema.join) ->
              if
                j.Schema.left_rel = rel
                && Reldesc.mem desc ~rel:j.Schema.right_rel ~attr:j.Schema.right_attr
              then
                Some
                  ( Reldesc.offset desc ~rel:j.Schema.right_rel ~attr:j.Schema.right_attr,
                    Schema.attr_pos schema rel j.Schema.left_attr )
              else if
                j.Schema.right_rel = rel
                && Reldesc.mem desc ~rel:j.Schema.left_rel ~attr:j.Schema.left_attr
              then
                Some
                  ( Reldesc.offset desc ~rel:j.Schema.left_rel ~attr:j.Schema.left_attr,
                    Schema.attr_pos schema rel j.Schema.right_attr )
              else None)
            schema.Schema.joins
        in
        let new_rows = filtered rel in
        let combined =
          match conds with
          | [] ->
              (* Cross product. *)
              List.concat_map
                (fun a -> List.map (fun b -> Array.append a b) new_rows)
                rows
          | (lo, ro) :: residual ->
              let hash = Hashtbl.create (2 * List.length new_rows) in
              List.iter (fun b -> Hashtbl.add hash b.(ro) b) new_rows;
              List.concat_map
                (fun a ->
                  List.filter_map
                    (fun b ->
                      if
                        List.for_all
                          (fun (lo', ro') -> a.(lo') = b.(ro'))
                          residual
                      then Some (Array.append a b)
                      else None)
                    (Hashtbl.find_all hash a.(lo)))
                rows
        in
        (Reldesc.concat desc rdesc, combined)
      in
      let _, rows = List.fold_left step init rest in
      rows

(* Elements the configuration compresses are stored page-compressed with
   the cost model's page ratio, so measured page counts line up with the
   modeled I/O savings. *)
let compress_ratio_of config e =
  if Config.has_compress config e then Some Vis_costmodel.Cost.compress_page_ratio
  else None

let build ?(checksums = false) schema config dataset =
  let stats = Vis_storage.Iostats.create () in
  let pool =
    Vis_storage.Buffer_pool.create ~capacity:schema.Schema.mem_pages ~stats
  in
  let n = Schema.n_relations schema in
  let bases =
    Array.init n (fun i ->
        let table =
          Table.create
            ?compress_ratio:(compress_ratio_of config (Element.Base i))
            ~protect:checksums pool
            ~desc:(Reldesc.of_relation schema i)
            ~page_bytes:schema.Schema.page_bytes ~attr_bytes
        in
        List.iter
          (fun tuple -> ignore (Table.insert table tuple))
          dataset.Datagen.ds_tuples.(i);
        table)
  in
  let view_sets =
    (Config.views config @ [ Schema.all_relations schema ])
    |> List.sort_uniq (fun a b ->
           match Int.compare (Bitset.cardinal a) (Bitset.cardinal b) with
           | 0 -> Bitset.compare a b
           | c -> c)
  in
  let views =
    List.map
      (fun set ->
        let table =
          Table.create
            ?compress_ratio:(compress_ratio_of config (Element.View set))
            ~protect:checksums pool
            ~desc:(view_desc schema set)
            ~page_bytes:schema.Schema.page_bytes ~attr_bytes
        in
        List.iter
          (fun tuple -> ignore (Table.insert table tuple))
          (compute_view_in_memory schema ~tuples:dataset.Datagen.ds_tuples set);
        (set, table))
      view_sets
  in
  let element_table = function
    | Element.Base i -> bases.(i)
    | Element.View set -> List.assoc set views
  in
  List.iter
    (fun (ix : Element.index) ->
      let table = element_table ix.Element.ix_elem in
      let offset =
        Reldesc.offset (Table.desc table) ~rel:ix.Element.ix_attr.Element.a_rel
          ~attr:ix.Element.ix_attr.Element.a_name
      in
      ignore (Table.add_index table ~offset))
    (Config.indexes config);
  Vis_storage.Buffer_pool.flush pool;
  Vis_storage.Iostats.reset stats;
  {
    w_schema = schema;
    w_derived = Derived.create schema;
    w_config = config;
    w_pool = pool;
    w_stats = stats;
    w_bases = bases;
    w_views = views;
    w_wal = Wal.create pool ~page_bytes:schema.Schema.page_bytes;
  }

let element_table w = function
  | Element.Base i ->
      if i >= 0 && i < Array.length w.w_bases then Some w.w_bases.(i) else None
  | Element.View set ->
      Option.map snd (List.find_opt (fun (s, _) -> Bitset.equal s set) w.w_views)

let reset_stats w =
  Vis_storage.Buffer_pool.flush w.w_pool;
  Vis_storage.Iostats.reset w.w_stats

(* ------------------------------------------------------------------ *)
(* Durable-table registry: WAL records name tables by index — bases first,
   then the views in [w_views] order (both fixed at build time). *)

let durable_tables w =
  Array.append w.w_bases (Array.of_list (List.map snd w.w_views))

(* Heap pages across every durable table — the stored footprint the
   compression bench compares against an uncompressed build. *)
let total_data_pages w =
  Array.fold_left (fun acc t -> acc + Table.n_pages t) 0 (durable_tables w)

let table_id w table =
  let tables = durable_tables w in
  let rec find i =
    if i >= Array.length tables then
      invalid_arg "Warehouse.table_id: not a durable table"
    else if tables.(i) == table then i
    else find (i + 1)
  in
  find 0

(* ------------------------------------------------------------------ *)
(* Logged modifications: log before apply.  The before images come from a
   [get] the refresh just performed anyway (the page is hot), so logging
   adds WAL appends but no extra base-page reads. *)

let logged_insert w table tuple =
  let id = table_id w table in
  let rid = Heap_file.next_rid (Table.heap table) in
  Wal.append w.w_wal (Wal.Ins { table = id; rid; tuple = Array.copy tuple });
  let actual = Table.insert table tuple in
  assert (actual = rid);
  actual

let logged_delete w table rid =
  match Heap_file.get (Table.heap table) rid with
  | None -> false
  | Some before ->
      let id = table_id w table in
      Wal.append w.w_wal (Wal.Del { table = id; rid; before = Array.copy before });
      Table.delete table rid

let logged_update w table rid after =
  match Heap_file.get (Table.heap table) rid with
  | None -> false
  | Some before ->
      let id = table_id w table in
      Wal.append w.w_wal
        (Wal.Upd { table = id; rid; before = Array.copy before; after = Array.copy after });
      Table.update table rid after

let begin_batch w = Wal.append w.w_wal Wal.Begin

let commit_batch w =
  Wal.append w.w_wal Wal.Commit;
  Wal.sync w.w_wal;
  Wal.checkpoint w.w_wal

(* Group commit: append the Commit record but defer the force.  The batch
   is NOT durable until a later {!sync_batches} covers it — until then a
   crash rolls it back together with everything after the last durable
   commit. *)
let commit_batch_deferred w = Wal.append w.w_wal Wal.Commit

(* One force makes every deferred commit durable; the log is then fully
   covered, so it can truncate. *)
let sync_batches w =
  Wal.sync w.w_wal;
  Wal.checkpoint w.w_wal

(* Roll back the unfinished batch (if any) by undoing its log records in
   strict LIFO order.  Runs with faults disarmed — recovery models a clean
   restart — and charges one read per log page so the recovery cost shows
   up in the counters.  Returns the number of records undone.

   Recovery trusts the log only after {!Wal.verify_scan} re-derived every
   record CRC: a torn tail (half-persisted, never-acknowledged suffix) is
   truncated once undo has consumed the records, and recovery proceeds;
   mid-log corruption means the durable history itself is rotten, so
   recovery stops immediately with {!Wal.Corrupt_record} naming the first
   bad record — there is no sound state to roll back to. *)
let recover w =
  (match Wal.verify_scan w.w_wal with
  | Wal.Clean | Wal.Torn _ -> ()
  | Wal.Corrupt { seq } -> raise (Wal.Corrupt_record seq));
  let plan = Buffer_pool.faults w.w_pool in
  let was_armed = Faults.armed plan in
  Faults.disarm plan;
  let undo = Wal.unfinished w.w_wal in
  List.iter
    (fun gid -> Buffer_pool.touch w.w_pool gid ~dirty:false)
    (Wal.page_gids w.w_wal);
  let tables = durable_tables w in
  List.iter
    (fun r ->
      match r with
      | Wal.Ins { table; rid; tuple } ->
          ignore (Table.unapply_insert tables.(table) rid tuple)
      | Wal.Del { table; rid; before } ->
          ignore (Table.restore tables.(table) rid before)
      | Wal.Upd { table; rid; before; _ } ->
          ignore (Table.unapply_update tables.(table) rid before)
      | Wal.Begin | Wal.Commit -> ())
    undo;
  ignore (Wal.truncate_torn w.w_wal);
  Wal.checkpoint w.w_wal;
  if was_armed then Faults.arm plan;
  List.length undo

(* ------------------------------------------------------------------ *)
(* Scrub, quarantine and self-healing rebuild. *)

exception Unrecoverable of { u_gid : int; u_table : int }

type scrub_report = {
  sc_scanned : int;
  sc_corrupt : int;
  sc_views_rebuilt : int;
  sc_indexes_rebuilt : int;
  sc_unrecoverable : (int * int) list;  (* (gid, durable table id) *)
}

let heap_gids table =
  let h = Table.heap table in
  List.init (Heap_file.n_pages h) (Heap_file.page_gid h)

let find_view w set =
  match List.find_opt (fun (s, _) -> Bitset.equal s set) w.w_views with
  | Some (_, table) -> table
  | None -> invalid_arg "Warehouse: no such view"

(* Canonical rebuild of one view from the current base replicas: scan the
   bases (trusted — base damage is unrecoverable), join in memory, and
   load a fresh table with the same compression, protection and index set
   as the old one.  The old table's pages are discarded and unregistered;
   the rebuilt table takes the old one's position in [w_views], so WAL
   table ids never move.  All scans and loads run through the pool —
   repair I/O is charged like any other.  Returns the rebuilt row
   count. *)
let rebuild_view w set =
  let schema = w.w_schema in
  let old = find_view w set in
  let tuples =
    Array.init (Schema.n_relations schema) (fun r ->
        let acc = ref [] in
        Heap_file.scan (Table.heap w.w_bases.(r)) ~f:(fun _ t ->
            acc := Array.copy t :: !acc);
        List.rev !acc)
  in
  let rows = compute_view_in_memory schema ~tuples set in
  let offsets = List.map fst (Table.indexes old) in
  List.iter
    (fun gid ->
      Buffer_pool.discard w.w_pool gid;
      Buffer_pool.unprotect w.w_pool gid)
    (heap_gids old
    @ List.concat_map (fun (_, ix) -> Btree.page_gids ix) (Table.indexes old));
  let fresh =
    Table.create
      ?compress_ratio:(compress_ratio_of w.w_config (Element.View set))
      ~protect:(Table.protected old) w.w_pool ~desc:(view_desc schema set)
      ~page_bytes:schema.Schema.page_bytes ~attr_bytes
  in
  List.iter (fun row -> ignore (Table.insert fresh row)) rows;
  List.iter (fun offset -> ignore (Table.add_index fresh ~offset)) offsets;
  w.w_views <-
    List.map
      (fun (s, t) -> if Bitset.equal s set then (s, fresh) else (s, t))
      w.w_views;
  List.length rows

(* One scrub pass: sweep every protected page, quarantine convictions, then
   repair what can be rebuilt from base relations — a corrupt view page
   costs the whole view (its heap layout cannot be reconstructed
   piecemeal), a corrupt index node costs one index rebuild from its heap.
   Base-relation heap damage has no redundant source to rebuild from: it is
   collected in [sc_unrecoverable] and, with [fail_unrecoverable] (the
   default), raised as the typed error {!Unrecoverable}. *)
let scrub ?(fail_unrecoverable = true) w =
  let rep = Vis_storage.Scrub.sweep w.w_pool in
  let corrupt = rep.Vis_storage.Scrub.sr_corrupt in
  let n_bases = Array.length w.w_bases in
  (* Decide every repair before mutating anything: rebuilds change the
     page-ownership map the classification reads. *)
  let views_to_rebuild = ref [] in
  let index_rebuilds = ref [] in  (* (durable table id, attribute offset) *)
  let unrecoverable = ref [] in
  let classify gid =
    let tables = durable_tables w in
    let owner = ref None in
    Array.iteri
      (fun ti table ->
        if !owner = None then
          if List.mem gid (heap_gids table) then owner := Some (ti, None)
          else
            List.iter
              (fun (offset, ix) ->
                if !owner = None && List.mem gid (Btree.page_gids ix) then
                  owner := Some (ti, Some offset))
              (Table.indexes table))
      tables;
    match !owner with
    | None ->
        (* A page no structure owns (stale quarantine survivor): nothing to
           rebuild, nothing lost. *)
        ()
    | Some (ti, Some offset) ->
        if not (List.mem (ti, offset) !index_rebuilds) then
          index_rebuilds := (ti, offset) :: !index_rebuilds
    | Some (ti, None) ->
        if ti < n_bases then unrecoverable := (gid, ti) :: !unrecoverable
        else
          let set, _ = List.nth w.w_views (ti - n_bases) in
          if not (List.exists (Bitset.equal set) !views_to_rebuild) then
            views_to_rebuild := set :: !views_to_rebuild
  in
  List.iter classify corrupt;
  (* A rebuilt view recreates its indexes too — drop subsumed index
     rebuilds. *)
  let subsumed ti =
    ti >= n_bases
    && List.exists
         (Bitset.equal (fst (List.nth w.w_views (ti - n_bases))))
         !views_to_rebuild
  in
  let index_rebuilds = List.filter (fun (ti, _) -> not (subsumed ti)) !index_rebuilds in
  List.iter
    (fun (ti, offset) ->
      let tables = durable_tables w in
      ignore (Table.rebuild_index tables.(ti) ~offset))
    (List.rev index_rebuilds);
  List.iter (fun set -> ignore (rebuild_view w set)) (List.rev !views_to_rebuild);
  let report =
    {
      sc_scanned = rep.Vis_storage.Scrub.sr_scanned;
      sc_corrupt = List.length corrupt;
      sc_views_rebuilt = List.length !views_to_rebuild;
      sc_indexes_rebuilt = List.length index_rebuilds;
      sc_unrecoverable = List.rev !unrecoverable;
    }
  in
  (match (fail_unrecoverable, report.sc_unrecoverable) with
  | true, (gid, ti) :: _ -> raise (Unrecoverable { u_gid = gid; u_table = ti })
  | _ -> ());
  report

(* ------------------------------------------------------------------ *)
(* State digests and integrity checks used by tests and the crash-recovery
   oracle.  Computing them scans every table, which moves the buffer pool
   and counters — callers compare states, they don't measure I/O here. *)

let add_int buf i =
  Buffer.add_string buf (string_of_int i);
  Buffer.add_char buf ';'

let sorted_indexes table =
  List.sort (fun (a, _) (b, _) -> Int.compare a b) (Table.indexes table)

(* Physical signature: exact slot layout of every heap plus exact entry
   sequence of every index.  Two warehouses agree iff they are the same
   bit-for-bit stored state. *)
let signature w =
  let buf = Buffer.create 8192 in
  Array.iter
    (fun table ->
      let h = Table.heap table in
      Buffer.add_string buf "#heap:";
      add_int buf (Heap_file.n_pages h);
      add_int buf (Heap_file.n_tuples h);
      Heap_file.scan h ~f:(fun rid tuple ->
          add_int buf rid.Heap_file.rid_page;
          add_int buf rid.Heap_file.rid_slot;
          Array.iter (add_int buf) tuple);
      List.iter
        (fun (offset, ix) ->
          Buffer.add_string buf "#ix:";
          add_int buf offset;
          Btree.iter ix ~f:(fun key rid ->
              add_int buf key;
              add_int buf rid.Heap_file.rid_page;
              add_int buf rid.Heap_file.rid_slot))
        (sorted_indexes table))
    (durable_tables w);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Logical signature: per-table sorted tuple multisets, ignoring placement.
   A degraded refresh (views recomputed rather than incrementally patched)
   matches the fault-free run logically but not physically. *)
let logical_signature w =
  let buf = Buffer.create 8192 in
  Array.iter
    (fun table ->
      let rows = ref [] in
      Heap_file.scan (Table.heap table) ~f:(fun _ tuple ->
          rows := Array.to_list tuple :: !rows);
      Buffer.add_string buf "#table:";
      List.iter
        (fun row -> List.iter (add_int buf) row)
        (List.sort compare !rows))
    (durable_tables w);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Every index is structurally sound and holds exactly the (key, rid)
   multiset of its heap. *)
let integrity_check w =
  let tables = durable_tables w in
  let result = ref (Ok ()) in
  Array.iteri
    (fun ti table ->
      if !result = Ok () then
        let h = Table.heap table in
        List.iter
          (fun (offset, ix) ->
            if !result = Ok () then begin
              (match Btree.check ix with
              | Ok () -> ()
              | Error msg ->
                  result := Error (Printf.sprintf "table %d index %d: %s" ti offset msg));
              if !result = Ok () then begin
                let heap_entries = ref [] in
                Heap_file.scan h ~f:(fun rid tuple ->
                    heap_entries := (tuple.(offset), rid) :: !heap_entries);
                let ix_entries = ref [] in
                Btree.iter ix ~f:(fun key rid -> ix_entries := (key, rid) :: !ix_entries);
                if
                  List.sort compare !heap_entries <> List.sort compare !ix_entries
                then
                  result :=
                    Error
                      (Printf.sprintf
                         "table %d index %d: entries disagree with heap (%d vs %d)"
                         ti offset (List.length !ix_entries)
                         (List.length !heap_entries))
              end
            end)
          (sorted_indexes table))
    tables;
  !result
