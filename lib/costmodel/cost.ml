module Bitset = Vis_util.Bitset
module Num = Vis_util.Num
module Schema = Vis_catalog.Schema
module Derived = Vis_catalog.Derived

type join_method = Nbj | Index_join of Element.index

type ins_start = From_delta | From_saved of Bitset.t

type ins_plan = { ip_start : ins_start; ip_steps : (Element.t * join_method) list }

type locate_method = Loc_scan | Loc_key_index of Element.index

type prop = {
  p_eval : float;
  p_apply : float;
  p_save : float;
  p_index : float;
  p_result_tuples : float;
}

let prop_total p = p.p_eval +. p.p_apply +. p.p_save +. p.p_index

let zero_prop =
  { p_eval = 0.; p_apply = 0.; p_save = 0.; p_index = 0.; p_result_tuples = 0. }

type memo_value =
  | M_ins of prop * ins_plan
  | M_loc of prop * locate_method
  | M_elem of float

(* Memoization keys: (element code, kind, relation, restricted feature
   bitmask, restricted-configuration signature).  Evaluators over a
   problem's numbered feature universe key by the restricted bitmask alone
   (4th slot >= 0, empty signature) — a single-word key with no allocation
   per restriction; evaluators for configurations outside any universe fall
   back to the structural signature (4th slot = -1).  The two key spaces are
   disjoint, so both kinds can share one cache.  A custom hash mixes the
   whole signature — the polymorphic hash only samples a prefix, which
   collides badly when enumerating index subsets. *)
module Key = struct
  type t = int * int * int * int * int list

  let equal (a1, b1, c1, m1, l1) (a2, b2, c2, m2, l2) =
    a1 = a2 && b1 = b2 && c1 = c2 && m1 = m2
    &&
    let rec eq l1 l2 =
      match (l1, l2) with
      | [], [] -> true
      | (x : int) :: r1, y :: r2 -> x = y && eq r1 r2
      | [], _ :: _ | _ :: _, [] -> false
    in
    eq l1 l2

  let hash (a, b, c, m, l) =
    let mix h x = (h * 0x01000193) lxor (x land 0xffffffff) in
    let h = mix (mix (mix (mix 0x811c9dc5 a) b) c) m in
    List.fold_left mix h l land max_int
end

module Ktbl = Hashtbl.Make (Key)

(* The cache is shared by every evaluator of a problem — including, since
   the multicore work, evaluators running concurrently on several domains.
   It is lock-striped: keys hash to one of a fixed set of stripes, each a
   small independent cache (table, FIFO eviction queue, counters) guarded by
   its own mutex.  Counter updates happen under the stripe lock, so
   hits + misses equals the number of lookups exactly even under concurrent
   use — no lost updates — while domains touching different stripes never
   contend.  Cached values equal freshly computed ones (the cost model is a
   pure function of the restricted configuration signature), so concurrent
   duplicate computation of a missed key is wasteful but harmless. *)

type stripe = {
  tbl : memo_value Ktbl.t;
  fifo : Key.t Queue.t;  (* insertion order; only kept for bounded stripes *)
  s_capacity : int;  (* per-stripe bound; 0 = unbounded *)
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type cache = { stripes : stripe array; mask : int }

type cache_stats = {
  cs_hits : int;
  cs_misses : int;
  cs_evictions : int;
  cs_entries : int;
}

let new_stripe s_capacity =
  {
    tbl = Ktbl.create 512;
    fifo = Queue.create ();
    s_capacity;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let new_cache ?(capacity = 0) () : cache =
  if capacity < 0 then invalid_arg "Cost.new_cache: negative capacity";
  (* Bounded caches get at most [capacity] stripes so the per-stripe bounds
     sum to exactly [capacity]; stripe counts stay powers of two for the
     mask-based stripe selection. *)
  let n_stripes =
    if capacity = 0 then 16
    else begin
      let rec pow2 p = if 2 * p <= min capacity 16 then pow2 (2 * p) else p in
      pow2 1
    end
  in
  let stripes =
    Array.init n_stripes (fun i ->
        if capacity = 0 then new_stripe 0
        else
          new_stripe
            ((capacity / n_stripes)
            + (if i < capacity mod n_stripes then 1 else 0)))
  in
  { stripes; mask = n_stripes - 1 }

let stripe_of c key =
  (* The table inside each stripe indexes buckets by the low bits of
     [Key.hash]; pick the stripe from remixed high bits so striping does not
     empty out bucket ranges. *)
  let h = Key.hash key in
  let h = h lxor (h lsr 29) in
  c.stripes.(((h lsr 16) lxor h) land c.mask)

let locked s f =
  Mutex.lock s.lock;
  let r = f () in
  Mutex.unlock s.lock;
  r

let cache_size c =
  Array.fold_left
    (fun acc s -> acc + locked s (fun () -> Ktbl.length s.tbl))
    0 c.stripes

let cache_stats c =
  Array.fold_left
    (fun acc s ->
      locked s (fun () ->
          {
            cs_hits = acc.cs_hits + s.hits;
            cs_misses = acc.cs_misses + s.misses;
            cs_evictions = acc.cs_evictions + s.evictions;
            cs_entries = acc.cs_entries + Ktbl.length s.tbl;
          }))
    { cs_hits = 0; cs_misses = 0; cs_evictions = 0; cs_entries = 0 }
    c.stripes

let hit_rate s =
  let lookups = s.cs_hits + s.cs_misses in
  if lookups = 0 then 0. else float_of_int s.cs_hits /. float_of_int lookups

let reset_cache_stats c =
  Array.iter
    (fun s ->
      locked s (fun () ->
          s.hits <- 0;
          s.misses <- 0;
          s.evictions <- 0))
    c.stripes

let cache_stats_json c =
  let s = cache_stats c in
  Vis_util.Json.Obj
    [
      ("hits", Vis_util.Json.Int s.cs_hits);
      ("misses", Vis_util.Json.Int s.cs_misses);
      ("evictions", Vis_util.Json.Int s.cs_evictions);
      ("entries", Vis_util.Json.Int s.cs_entries);
      ("hit_rate", Vis_util.Json.Float (hit_rate s));
    ]

(* A lookup that maintains the counters; [store] inserts the freshly
   computed value, evicting the oldest entry of a bounded stripe.  Both run
   under the stripe lock. *)
let cache_find c key =
  let s = stripe_of c key in
  locked s (fun () ->
      match Ktbl.find_opt s.tbl key with
      | Some _ as r ->
          s.hits <- s.hits + 1;
          r
      | None ->
          s.misses <- s.misses + 1;
          None)

let cache_store c key value =
  let s = stripe_of c key in
  locked s (fun () ->
      if s.s_capacity > 0 then begin
        if Ktbl.length s.tbl >= s.s_capacity then begin
          match Queue.take_opt s.fifo with
          | Some oldest ->
              Ktbl.remove s.tbl oldest;
              s.evictions <- s.evictions + 1
          | None -> ()
        end;
        Queue.add key s.fifo
      end;
      Ktbl.replace s.tbl key value)

let elem_sig_code schema = function
  | Element.Base i -> (2 * i) + 1
  | Element.View s ->
      ignore schema;
      2 * Bitset.to_int s

let index_sig_code schema ix =
  let attr =
    (64 * ix.Element.ix_attr.Element.a_rel)
    + Schema.attr_pos schema ix.Element.ix_attr.Element.a_rel
        ix.Element.ix_attr.Element.a_name
  in
  lnot ((elem_sig_code schema ix.Element.ix_elem * 4096) + attr)

(* ------------------------------------------------------------------ *)
(* Feature encoding: a problem's candidate features (views + indexes)
   numbered once into bits 0..61, so a configuration drawn from that
   universe is a single [int] mask.  The encoding also precomputes, per
   maintained element, the *relevance mask* — the bits of features whose
   relation set is contained in the element's (exactly the features
   [Config.restrict] would keep) — so the memoization key of an element
   under mask [m] is just [m land relevance].  Everything here is immutable
   after construction (the counters are atomics), so encodings are shared
   freely across worker domains. *)

exception Encoding_too_large of int

type incr_stats = {
  is_full : int;  (** configurations costed from scratch *)
  is_delta : int;  (** configurations costed from a neighbour *)
  is_reused : int;  (** zero-change evaluations answered by the parent *)
  is_elems_computed : int;  (** per-element costs (re)derived *)
  is_elems_copied : int;  (** per-element costs copied from the parent *)
}

type encoding = {
  en_schema : Schema.t;
  en_features : Config.feature array;  (* bit i <-> en_features.(i) *)
  en_view_bit : (int, int) Hashtbl.t;  (* view-set int -> bit *)
  en_index_bit : (int, int) Hashtbl.t;  (* index signature code -> bit *)
  en_compress_bit : (int, int) Hashtbl.t;  (* element signature code -> bit *)
  en_relevance : (int, int) Hashtbl.t;  (* relation-set int -> relevance mask *)
  en_n_rels : int;
  (* Incremental-evaluation slots: base relations 0..n-1, then the
     candidate views ascending by [Bitset.compare] (the order [Config.views]
     yields, so totals re-sum in the canonical order), then the primary
     view.  [en_slot_elems]/[en_slot_relevance]/[en_slot_bit] describe each
     slot; [en_slot_bit] is -1 for always-maintained slots. *)
  en_slot_elems : Element.t array;
  en_slot_relevance : int array;
  en_slot_bit : int array;
  (* Exact work counters for the incremental evaluator. *)
  en_full : int Atomic.t;
  en_delta : int Atomic.t;
  en_reused : int Atomic.t;
  en_elems_computed : int Atomic.t;
  en_elems_copied : int Atomic.t;
}

let compute_relevance features rels =
  let m = ref 0 in
  Array.iteri
    (fun i f -> if Bitset.subset (Config.feature_rels f) rels then m := !m lor (1 lsl i))
    features;
  !m

let make_encoding derived features =
  let schema = Derived.schema derived in
  let n_features = Array.length features in
  if n_features > 62 then raise (Encoding_too_large n_features);
  let view_bit = Hashtbl.create 32 in
  let index_bit = Hashtbl.create 64 in
  let compress_bit = Hashtbl.create 16 in
  Array.iteri
    (fun i f ->
      match f with
      | Config.F_view w -> Hashtbl.replace view_bit (Bitset.to_int w) i
      | Config.F_index ix -> Hashtbl.replace index_bit (index_sig_code schema ix) i
      | Config.F_compress e ->
          Hashtbl.replace compress_bit (elem_sig_code schema e) i)
    features;
  let n_rels = Schema.n_relations schema in
  let views =
    Array.to_list features
    |> List.filter_map (function
         | Config.F_view w -> Some w
         | Config.F_index _ | Config.F_compress _ -> None)
    |> List.sort Bitset.compare
  in
  let slot_elems =
    Array.of_list
      (List.init n_rels (fun i -> Element.Base i)
      @ List.map (fun w -> Element.View w) views
      @ [ Element.View (Schema.all_relations schema) ])
  in
  let relevance_tbl = Hashtbl.create 64 in
  let relevance_of rels =
    let key = Bitset.to_int rels in
    match Hashtbl.find_opt relevance_tbl key with
    | Some m -> m
    | None ->
        let m = compute_relevance features rels in
        Hashtbl.replace relevance_tbl key m;
        m
  in
  let slot_relevance =
    Array.map (fun e -> relevance_of (Element.rels e)) slot_elems
  in
  let slot_bit =
    Array.map
      (fun e ->
        match e with
        | Element.Base _ -> -1
        | Element.View w when Bitset.equal w (Schema.all_relations schema) -> -1
        | Element.View w -> Hashtbl.find view_bit (Bitset.to_int w))
      slot_elems
  in
  {
    en_schema = schema;
    en_features = features;
    en_view_bit = view_bit;
    en_index_bit = index_bit;
    en_compress_bit = compress_bit;
    en_relevance = relevance_tbl;
    en_n_rels = n_rels;
    en_slot_elems = slot_elems;
    en_slot_relevance = slot_relevance;
    en_slot_bit = slot_bit;
    en_full = Atomic.make 0;
    en_delta = Atomic.make 0;
    en_reused = Atomic.make 0;
    en_elems_computed = Atomic.make 0;
    en_elems_copied = Atomic.make 0;
  }

let encoding_features enc = enc.en_features

(* Relevance of an arbitrary element; the table covers every maintained
   element of the universe, so misses only happen for out-of-universe
   queries, answered by a pure scan without mutating the shared table. *)
let relevance enc rels =
  match Hashtbl.find_opt enc.en_relevance (Bitset.to_int rels) with
  | Some m -> m
  | None -> compute_relevance enc.en_features rels

let feature_bit enc = function
  | Config.F_view w -> Hashtbl.find_opt enc.en_view_bit (Bitset.to_int w)
  | Config.F_index ix ->
      Hashtbl.find_opt enc.en_index_bit (index_sig_code enc.en_schema ix)
  | Config.F_compress e ->
      Hashtbl.find_opt enc.en_compress_bit (elem_sig_code enc.en_schema e)

let view_feature_bit enc w = Hashtbl.find_opt enc.en_view_bit (Bitset.to_int w)

exception Out_of_universe

let mask_of_config enc config =
  match
    let m =
      List.fold_left
        (fun acc w ->
          match view_feature_bit enc w with
          | Some b -> acc lor (1 lsl b)
          | None -> raise Out_of_universe)
        0 (Config.views config)
    in
    let m =
      List.fold_left
        (fun acc ix ->
          match
            Hashtbl.find_opt enc.en_index_bit (index_sig_code enc.en_schema ix)
          with
          | Some b -> acc lor (1 lsl b)
          | None -> raise Out_of_universe)
        m (Config.indexes config)
    in
    List.fold_left
      (fun acc e ->
        match
          Hashtbl.find_opt enc.en_compress_bit (elem_sig_code enc.en_schema e)
        with
        | Some b -> acc lor (1 lsl b)
        | None -> raise Out_of_universe)
      m (Config.compress config)
  with
  | m -> Some m
  | exception Out_of_universe -> None

let config_of_mask enc mask =
  let views = ref [] and indexes = ref [] and compress = ref [] in
  Array.iteri
    (fun i f ->
      if mask land (1 lsl i) <> 0 then
        match f with
        | Config.F_view w -> views := w :: !views
        | Config.F_index ix -> indexes := ix :: !indexes
        | Config.F_compress e -> compress := e :: !compress)
    enc.en_features;
  List.fold_left Config.add_compress
    (Config.make ~views:!views ~indexes:!indexes)
    !compress

let incr_stats enc =
  {
    is_full = Atomic.get enc.en_full;
    is_delta = Atomic.get enc.en_delta;
    is_reused = Atomic.get enc.en_reused;
    is_elems_computed = Atomic.get enc.en_elems_computed;
    is_elems_copied = Atomic.get enc.en_elems_copied;
  }

let reset_incr_stats enc =
  Atomic.set enc.en_full 0;
  Atomic.set enc.en_delta 0;
  Atomic.set enc.en_reused 0;
  Atomic.set enc.en_elems_computed 0;
  Atomic.set enc.en_elems_copied 0

let incr_stats_json enc =
  let s = incr_stats enc in
  Vis_util.Json.Obj
    [
      ("full_evals", Vis_util.Json.Int s.is_full);
      ("delta_evals", Vis_util.Json.Int s.is_delta);
      ("reused_evals", Vis_util.Json.Int s.is_reused);
      ("elems_computed", Vis_util.Json.Int s.is_elems_computed);
      ("elems_copied", Vis_util.Json.Int s.is_elems_copied);
    ]

(* ------------------------------------------------------------------ *)

type structural_keying = {
  enc_views : (Bitset.t * int) list;
  enc_indexes : (Bitset.t * int) list;
  enc_compress : (Bitset.t * int) list;
  (* Per-element restricted signature, memoized per evaluator. *)
  mutable prefixes : (int * int list) list;
}

type keying =
  | K_masked of { enc : encoding; kmask : int }
      (* a configuration inside a numbered universe: restriction is a mask
         intersection, keys carry no allocation *)
  | K_structural of structural_keying

type t = {
  derived : Derived.t;
  (* Decoded from the mask only when a computation actually needs the
     symbolic configuration (i.e. on cache misses). *)
  config : Config.t Lazy.t;
  cache : cache;
  keying : keying;
}

let create ?cache derived config =
  let cache = match cache with Some c -> c | None -> new_cache () in
  let schema = Derived.schema derived in
  let enc_views =
    List.map (fun v -> (v, 2 * Bitset.to_int v)) (Config.views config)
  in
  let enc_indexes =
    List.map
      (fun ix -> (Element.rels ix.Element.ix_elem, index_sig_code schema ix))
      (Config.indexes config)
  in
  (* Codes must match {!Config.signature_ints} so structural keys agree with
     the packed universe's decoded configurations. *)
  let enc_compress =
    List.map
      (fun e -> (Element.rels e, lnot ((1 lsl 40) + elem_sig_code schema e)))
      (Config.compress config)
  in
  {
    derived;
    config = Lazy.from_val config;
    cache;
    keying = K_structural { enc_views; enc_indexes; enc_compress; prefixes = [] };
  }

let create_masked ?cache derived enc mask =
  let cache = match cache with Some c -> c | None -> new_cache () in
  {
    derived;
    config = lazy (config_of_mask enc mask);
    cache;
    keying = K_masked { enc; kmask = mask };
  }

let config t = Lazy.force t.config

(* Page-level compression.  A compressed element stores its tuples in
   roughly [compress_page_ratio] of the pages, so each logical data-page
   access moves half the I/O — but pays a CPU surcharge to decode (reads)
   or encode (writes), charged in page-cost units.  The net per-page
   factors are applied multiplicatively at every charging site that touches
   the element's *data* pages; index pages, shipped deltas and scratch
   saved deltas are never compressed.  Keeping the factors linear (page
   counts in the formulas stay uncompressed) is what lets the A* bounds
   scale floors by [compress_read_factor] exactly. *)

let compress_page_ratio = 0.5

(* ratio + decode CPU: 0.5 + 0.15 *)
let compress_read_factor = 0.65

(* ratio + encode CPU: 0.5 + 0.60 — writing compressed pages costs more
   than it saves, which is what makes compression a genuine trade-off. *)
let compress_write_factor = 1.10

let read_f t e =
  if Config.has_compress (config t) e then compress_read_factor else 1.

let write_f t e =
  if Config.has_compress (config t) e then compress_write_factor else 1.

let derived t = t.derived

let schema t = Derived.schema t.derived

let mem_pages t = float_of_int (schema t).Schema.mem_pages

let elem_code = function
  | Element.Base i -> (2 * i) + 1
  | Element.View s -> 2 * Bitset.to_int s

let elem_prefix k target =
  let code = elem_code target in
  match List.assq_opt code k.prefixes with
  | Some p -> p
  | None ->
      let rels = Element.rels target in
      let keep (frels, c) = if Bitset.subset frels rels then Some c else None in
      let p =
        List.filter_map keep k.enc_views
        @ List.filter_map keep k.enc_indexes
        @ List.filter_map keep k.enc_compress
      in
      k.prefixes <- (code, p) :: k.prefixes;
      p

let memo_key t ~target ~rel ~kind : Key.t =
  match t.keying with
  | K_masked { enc; kmask } ->
      ( elem_code target,
        Char.code kind,
        rel,
        kmask land relevance enc (Element.rels target),
        [] )
  | K_structural k -> (elem_code target, Char.code kind, rel, -1, elem_prefix k target)

(* ------------------------------------------------------------------ *)
(* Index maintenance: Apply_ix of Table 4.  [k] is the number of delta
   tuples applied to [elem]; per index we charge the internal-page reads
   (root cached, hence H-1 levels) estimated with Y_WAP plus the leaf
   pages written estimated with yao (entries of one batch are applied in
   sorted order). *)

let apply_one_index t elem attr k =
  ignore attr;
  if k <= 0. then 0.
  else begin
    let card = Element.card t.derived elem in
    let shape = Derived.index_shape t.derived ~entries:card in
    let reads =
      Yao.y_wap ~n:card ~p:shape.Derived.ix_pages
        ~k:(k *. float_of_int (shape.Derived.ix_height - 1))
        ~m:(mem_pages t)
    in
    let writes = Yao.yao ~n:card ~p:shape.Derived.ix_leaf_pages ~k in
    reads +. writes
  end

let apply_ix t elem k =
  List.fold_left
    (fun acc attr -> acc +. apply_one_index t elem attr k)
    0.
    (Config.indexes_on (config t) elem)

(* ------------------------------------------------------------------ *)

let nbj_cost t ~outer_pages ~inner_pages =
  Float.ceil (outer_pages /. mem_pages t) *. inner_pages

(* Accessing the inner side of a nested-block join.  A stored view or a
   replica is scanned; a base relation carrying a local selection may
   instead be read through an index on the selection attribute (Table 5's
   index scan), when such an index is materialized. *)
let inner_access_cost t unit =
  let rf = read_f t unit in
  let scan = rf *. Element.pages t.derived unit in
  match unit with
  | Element.View _ -> scan
  | Element.Base i ->
      let s = schema t in
      let sel_attrs = Schema.selection_attrs s i in
      if sel_attrs = [] then scan
      else begin
        let card = Derived.base_card t.derived i in
        let pages = Derived.base_pages t.derived i in
        let shape = Derived.index_shape t.derived ~entries:card in
        let matching = Derived.eff_card t.derived i in
        let via_index attr_name =
          let attr = { Element.a_rel = i; a_name = attr_name } in
          if Config.has_index (config t) unit attr then
            (* Index pages are never compressed; only the data pages
               fetched through the index pay (or enjoy) the factor. *)
            Some
              (float_of_int (shape.Derived.ix_height - 1)
              +. Num.fceil (shape.Derived.ix_pages *. matching /. Float.max card 1e-9)
              +. rf *. Yao.y_wap ~n:card ~p:pages ~k:matching ~m:(mem_pages t))
          else None
        in
        List.fold_left
          (fun best a ->
            match via_index a with Some c -> Float.min best c | None -> best)
          scan sel_attrs
      end

(* ------------------------------------------------------------------ *)
(* Propagating insertions: Eval(ΔR ⋈ ...) by dynamic programming over the
   covered relation subsets, starting from the shipped delta or from a
   saved delta of a materialized subview, and extending with base
   relations or materialized views via nested-block or index joins. *)

(* A join unit available for covering part of the target, with its costs
   precomputed for the inner loop. *)
type unit_info = {
  u_elem : Element.t;
  u_mask : int;  (* dense mask of the relations it covers *)
  u_inner_access : float;  (* per-block cost of the nested-block inner side *)
  u_read_f : float;  (* compression read factor for the unit's data pages *)
  u_probes : (int * float * float * float * float * Element.attr) list;
      (* per indexed join attribute reachable from outside the unit:
         (dense bit of the outside relation, matches per probe,
          index pages, per-probe index pages, data pages, probed attr) *)
}

let eval_ins t target_set r =
  let d = t.derived in
  let s = schema t in
  let i_r = (Schema.delta s r).Schema.n_ins in
  let scale = i_r /. Derived.base_card d r in
  let pm = mem_pages t in
  let half_mem = pm /. 2. in
  (* Dense encoding of the subsets of [target_set]. *)
  let positions = Array.of_list (Bitset.elements target_set) in
  let k = Array.length positions in
  let nstates = 1 lsl k in
  let dense_bit_of_rel = Array.make (Schema.n_relations s) (-1) in
  Array.iteri (fun bit rel -> dense_bit_of_rel.(rel) <- bit) positions;
  let dense_of_set set =
    Bitset.fold (fun rel acc -> acc lor (1 lsl dense_bit_of_rel.(rel))) set 0
  in
  (* sets.(code) is the Bitset for a dense code; built incrementally. *)
  let sets = Array.make nstates Bitset.empty in
  for code = 1 to nstates - 1 do
    let low = code land -code in
    let bit = ref 0 and v = ref low in
    while !v > 1 do
      incr bit;
      v := !v lsr 1
    done;
    sets.(code) <- Bitset.add positions.(!bit) sets.(code land (code - 1))
  done;
  let count code = Derived.view_card d sets.(code) *. scale in
  let result_pages code =
    Derived.pages_of_tuples d ~set:sets.(code) ~tuples:(count code)
  in
  let r_bit = 1 lsl dense_bit_of_rel.(r) in
  (* Units: base relations of the target and materialized views inside the
     target that avoid the delta relation. *)
  let make_unit elem =
    let urels = Element.rels elem in
    let probes =
      List.filter_map
        (fun (j : Schema.join) ->
          let inside_attr =
            if
              Bitset.mem j.Schema.left_rel urels
              && (not (Bitset.mem j.Schema.right_rel urels))
              && Bitset.mem j.Schema.right_rel target_set
            then
              Some
                ( { Element.a_rel = j.Schema.left_rel; a_name = j.Schema.left_attr },
                  j.Schema.right_rel )
            else if
              Bitset.mem j.Schema.right_rel urels
              && (not (Bitset.mem j.Schema.left_rel urels))
              && Bitset.mem j.Schema.left_rel target_set
            then
              Some
                ( { Element.a_rel = j.Schema.right_rel; a_name = j.Schema.right_attr },
                  j.Schema.left_rel )
            else None
          in
          match inside_attr with
          | Some (attr, outside_rel) when Config.has_index (config t) elem attr ->
              let card = Element.card d elem in
              let pages = Element.pages d elem in
              let shape = Derived.index_shape d ~entries:card in
              let matches = card *. j.Schema.join_sel in
              let per_probe =
                float_of_int (max 0 (shape.Derived.ix_height - 2))
                +. Num.fceil
                     (shape.Derived.ix_pages *. matches /. Float.max card 1e-9)
              in
              Some
                ( 1 lsl dense_bit_of_rel.(outside_rel),
                  matches,
                  shape.Derived.ix_pages,
                  per_probe,
                  pages,
                  attr )
          | _ -> None)
        s.Schema.joins
    in
    {
      u_elem = elem;
      u_mask = dense_of_set urels;
      u_inner_access = inner_access_cost t elem;
      u_read_f = read_f t elem;
      u_probes = probes;
    }
  in
  let units =
    Bitset.fold
      (fun i acc -> if i = r then acc else make_unit (Element.Base i) :: acc)
      target_set []
    @ List.filter_map
        (fun w ->
          if Bitset.subset w target_set && not (Bitset.mem r w) then
            Some (make_unit (Element.View w))
          else None)
        (Config.views (config t))
  in
  (* DP tables. *)
  let cost = Array.make nstates infinity in
  let from = Array.make nstates (-1) in
  let step = Array.make nstates None in
  let start = Array.make nstates From_delta in
  let relax code c prev st sstart =
    if c < cost.(code) then begin
      cost.(code) <- c;
      from.(code) <- prev;
      step.(code) <- st;
      start.(code) <- sstart
    end
  in
  relax r_bit (Derived.delta_pages d ~rel:r ~count:i_r) (-1) None From_delta;
  List.iter
    (fun w ->
      if Bitset.mem r w && Bitset.proper_subset w target_set then begin
        let code = dense_of_set w in
        relax code (result_pages code) (-1) None (From_saved w)
      end)
    (Config.views (config t));
  for code = r_bit to nstates - 1 do
    if code land r_bit <> 0 && cost.(code) < infinity then begin
      let outer_tuples = count code in
      let outer_pages = result_pages code in
      let blocks = Float.ceil (outer_pages /. pm) in
      List.iter
        (fun u ->
          if code land u.u_mask = 0 then begin
            let next = code lor u.u_mask in
            let base = cost.(code) in
            relax next
              (base +. (blocks *. u.u_inner_access))
              code
              (Some (u.u_elem, Nbj))
              start.(code);
            List.iter
              (fun (outside_bit, matches, ix_pages, per_probe, pages, attr) ->
                if code land outside_bit <> 0 then begin
                  let card = Element.card d u.u_elem in
                  let c =
                    Yao.y_wap ~n:card ~p:ix_pages
                      ~k:(outer_tuples *. per_probe) ~m:half_mem
                    +. u.u_read_f
                       *. Yao.y_wap ~n:card ~p:pages
                            ~k:(outer_tuples *. matches) ~m:half_mem
                  in
                  let ix = { Element.ix_elem = u.u_elem; ix_attr = attr } in
                  relax next (base +. c) code
                    (Some (u.u_elem, Index_join ix))
                    start.(code)
                end)
              u.u_probes
          end)
        units
    end
  done;
  let final = nstates - 1 in
  assert (cost.(final) < infinity);
  (* Reconstruct the winning update path. *)
  let rec walk code acc =
    match (from.(code), step.(code)) with
    | prev, Some st when prev >= 0 -> walk prev (st :: acc)
    | _ -> (start.(code), acc)
  in
  let st, steps = walk final [] in
  (cost.(final), { ip_start = st; ip_steps = steps })

let prop_ins_uncached t ~target ~rel =
  let d = t.derived in
  let s = schema t in
  let i_r = (Schema.delta s rel).Schema.n_ins in
  if i_r <= 0. then (zero_prop, { ip_start = From_delta; ip_steps = [] })
  else
    match target with
    | Element.Base i ->
        assert (i = rel);
        let dp = Derived.delta_pages d ~rel ~count:i_r in
        ( {
            p_eval = dp;
            p_apply = write_f t target *. dp;
            p_save = 0.;
            p_index = apply_ix t target i_r;
            p_result_tuples = i_r;
          },
          { ip_start = From_delta; ip_steps = [] } )
    | Element.View set ->
        let eval, plan = eval_ins t set rel in
        let tuples =
          Derived.view_card d set *. i_r /. Derived.base_card d rel
        in
        let result_pages = Derived.pages_of_tuples d ~set ~tuples in
        let is_supporting =
          not (Bitset.equal set (Schema.all_relations s))
        in
        ( {
            p_eval = eval;
            p_apply = write_f t target *. result_pages;
            (* Saved deltas live in scratch space and are never compressed. *)
            p_save = (if is_supporting then result_pages else 0.);
            p_index = apply_ix t target tuples;
            p_result_tuples = tuples;
          },
          plan )

(* ------------------------------------------------------------------ *)
(* Propagating deletions and protected updates: locate the affected target
   tuples by key (index semijoin or scan), then rewrite them. *)

let prop_delupd_uncached t ~target ~rel ~kind =
  let d = t.derived in
  let s = schema t in
  let delta = Schema.delta s rel in
  let count_src =
    match kind with `Del -> delta.Schema.n_del | `Upd -> delta.Schema.n_upd
  in
  if count_src <= 0. then (zero_prop, Loc_scan)
  else begin
    let card_v = Element.card d target in
    let pages_v = Element.pages d target in
    let s_key =
      match target with
      | Element.Base i ->
          assert (i = rel);
          1.
      | Element.View set -> Derived.matches_per_key d ~view:set ~rel
    in
    let affected = count_src *. s_key in
    let delta_pages = Derived.delta_pages d ~rel ~count:count_src in
    let pm = mem_pages t in
    let rf = read_f t target and wf = write_f t target in
    (* Option 1: scan the target with the delta keys in memory.  The shipped
       delta is uncompressed; only the target's data pages carry factors. *)
    let scan_eval =
      delta_pages
      +. rf *. nbj_cost t ~outer_pages:delta_pages ~inner_pages:pages_v
    in
    let scan_apply = wf *. Yao.yao ~n:card_v ~p:pages_v ~k:affected in
    let best = ref (scan_eval, scan_apply, Loc_scan) in
    (* Option 2: probe an index on the key attribute of [rel]. *)
    let key_attr =
      { Element.a_rel = rel; a_name = (Schema.relation s rel).Schema.key_attr }
    in
    if Config.has_index (config t) target key_attr then begin
      let shape = Derived.index_shape d ~entries:card_v in
      let per_probe =
        float_of_int (max 0 (shape.Derived.ix_height - 2))
        +. Num.fceil (shape.Derived.ix_pages *. s_key /. Float.max card_v 1e-9)
      in
      let ix_eval =
        delta_pages
        +. Yao.y_wap ~n:card_v ~p:shape.Derived.ix_pages
             ~k:(count_src *. per_probe) ~m:(pm /. 2.)
        +. rf *. Yao.y_wap ~n:card_v ~p:pages_v ~k:affected ~m:(pm /. 2.)
      in
      let ix_apply = wf *. Yao.y_wap ~n:card_v ~p:pages_v ~k:affected ~m:pm in
      let ix = { Element.ix_elem = target; ix_attr = key_attr } in
      let scan_total = scan_eval +. scan_apply in
      if ix_eval +. ix_apply < scan_total then
        best := (ix_eval, ix_apply, Loc_key_index ix)
    end;
    let eval, apply, how = !best in
    let p_index = match kind with `Del -> apply_ix t target affected | `Upd -> 0. in
    ( {
        p_eval = eval;
        p_apply = apply;
        p_save = 0.;
        p_index;
        p_result_tuples = affected;
      },
      how )
  end

(* ------------------------------------------------------------------ *)
(* Memoized entry points. *)

let prop_ins t ~target ~rel =
  let key = memo_key t ~target ~rel ~kind:'i' in
  match cache_find t.cache key with
  | Some (M_ins (p, plan)) -> (p, plan)
  | Some (M_loc _ | M_elem _) -> assert false
  | None ->
      let p, plan = prop_ins_uncached t ~target ~rel in
      cache_store t.cache key (M_ins (p, plan));
      (p, plan)

let prop_loc t ~target ~rel ~kind =
  let tag = match kind with `Del -> 'd' | `Upd -> 'u' in
  let key = memo_key t ~target ~rel ~kind:tag in
  match cache_find t.cache key with
  | Some (M_loc (p, how)) -> (p, how)
  | Some (M_ins _ | M_elem _) -> assert false
  | None ->
      let p, how = prop_delupd_uncached t ~target ~rel ~kind in
      cache_store t.cache key (M_loc (p, how));
      (p, how)

let prop_del t ~target ~rel = prop_loc t ~target ~rel ~kind:`Del

let prop_upd t ~target ~rel = prop_loc t ~target ~rel ~kind:`Upd

let element_cost t elem =
  let key = memo_key t ~target:elem ~rel:(-1) ~kind:'E' in
  match cache_find t.cache key with
  | Some (M_elem c) -> c
  | Some (M_ins _ | M_loc _) -> assert false
  | None ->
      let c =
        Bitset.fold
          (fun r acc ->
            let pi, _ = prop_ins t ~target:elem ~rel:r in
            let pd, _ = prop_del t ~target:elem ~rel:r in
            let pu, _ = prop_upd t ~target:elem ~rel:r in
            acc +. prop_total pi +. prop_total pd +. prop_total pu)
          (Element.rels elem) 0.
      in
      cache_store t.cache key (M_elem c);
      c

let index_maint_cost t ix =
  let elem = ix.Element.ix_elem in
  Bitset.fold
    (fun r acc ->
      let pi, _ = prop_ins t ~target:elem ~rel:r in
      let pd, _ = prop_del t ~target:elem ~rel:r in
      acc
      +. apply_one_index t elem ix.Element.ix_attr pi.p_result_tuples
      +. apply_one_index t elem ix.Element.ix_attr pd.p_result_tuples)
    (Element.rels elem) 0.

let maintained_elements t =
  let s = schema t in
  let n = Schema.n_relations s in
  List.init n (fun i -> Element.Base i)
  @ List.map (fun w -> Element.View w) (Config.views (config t))
  @ [ Element.View (Schema.all_relations s) ]

let total t =
  List.fold_left (fun acc e -> acc +. element_cost t e) 0. (maintained_elements t)

let total_of ?cache derived config = total (create ?cache derived config)

(* ------------------------------------------------------------------ *)
(* Incremental evaluation over a feature universe.  An [ieval] carries the
   per-slot maintenance costs of one masked configuration; costing a
   neighbour (one feature flipped) recomputes only the slots whose relevance
   mask meets the changed bits and copies the rest, so a successor
   evaluation touches O(affected elements) instead of the whole plan.
   Totals re-sum every active slot in the exact order [total] folds
   [maintained_elements] — bases ascending, present views ascending by
   [Bitset.compare], then the primary view — so fast and slow paths agree
   bitwise, not just approximately. *)

type ieval = {
  ie_enc : encoding;
  ie_mask : int;
  ie_total : float;
  ie_elems : float array;  (* per-slot cost; only active slots meaningful *)
}

let ieval_total ie = ie.ie_total

let ieval_mask ie = ie.ie_mask

let slot_active enc mask s =
  let b = enc.en_slot_bit.(s) in
  b < 0 || mask land (1 lsl b) <> 0

let eval_mask ?cache derived enc mask =
  Atomic.incr enc.en_full;
  let t = create_masked ?cache derived enc mask in
  let n = Array.length enc.en_slot_elems in
  let elems = Array.make n 0. in
  let total = ref 0. in
  for s = 0 to n - 1 do
    if slot_active enc mask s then begin
      let c = element_cost t enc.en_slot_elems.(s) in
      elems.(s) <- c;
      total := !total +. c;
      Atomic.incr enc.en_elems_computed
    end
  done;
  { ie_enc = enc; ie_mask = mask; ie_total = !total; ie_elems = elems }

let eval_delta ?cache derived parent mask =
  let enc = parent.ie_enc in
  let changed = parent.ie_mask lxor mask in
  if changed = 0 then begin
    Atomic.incr enc.en_reused;
    parent
  end
  else begin
    Atomic.incr enc.en_delta;
    let t = create_masked ?cache derived enc mask in
    let n = Array.length enc.en_slot_elems in
    let elems = Array.copy parent.ie_elems in
    let total = ref 0. in
    for s = 0 to n - 1 do
      if slot_active enc mask s then begin
        (* A slot newly activated by this delta has its own feature bit in
           [changed] (its relevance contains that bit), so stale values from
           a mask where the slot was inactive can never be copied. *)
        if enc.en_slot_relevance.(s) land changed <> 0 then begin
          elems.(s) <- element_cost t enc.en_slot_elems.(s);
          Atomic.incr enc.en_elems_computed
        end
        else Atomic.incr enc.en_elems_copied;
        total := !total +. elems.(s)
      end
    done;
    { ie_enc = enc; ie_mask = mask; ie_total = !total; ie_elems = elems }
  end

let pp_ins_plan s ~target ~rel ppf plan =
  ignore target;
  let rel_name = (Schema.relation s rel).Schema.rel_name in
  (match plan.ip_start with
  | From_delta -> Format.fprintf ppf "\xce\x94%s" rel_name
  | From_saved w ->
      Format.fprintf ppf "\xce\x94%s^save(%s)" rel_name
        (Element.name s (Element.View w)));
  List.iter
    (fun (unit, how) ->
      match how with
      | Nbj -> Format.fprintf ppf " \xe2\x8b\x88nbj %s" (Element.name s unit)
      | Index_join ix ->
          Format.fprintf ppf " \xe2\x8b\x88ix[%s] %s"
            (Element.index_name s ix) (Element.name s unit))
    plan.ip_steps
