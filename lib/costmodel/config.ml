module Bitset = Vis_util.Bitset

type feature =
  | F_view of Bitset.t
  | F_index of Element.index
  | F_compress of Element.t

let feature_rels = function
  | F_view w -> w
  | F_index ix -> Element.rels ix.Element.ix_elem
  | F_compress e -> Element.rels e

let equal_feature a b =
  match (a, b) with
  | F_view v, F_view w -> Bitset.equal v w
  | F_index i, F_index j -> Element.equal_index i j
  | F_compress d, F_compress e -> Element.equal d e
  | (F_view _ | F_index _ | F_compress _), _ -> false

type t = {
  cviews : Bitset.t list;
  cindexes : Element.index list;
  ccompress : Element.t list;
}

let empty = { cviews = []; cindexes = []; ccompress = [] }

let sort_views vs = List.sort_uniq Bitset.compare vs

let sort_indexes ixs = List.sort_uniq Element.compare_index ixs

let sort_compress es = List.sort_uniq Element.compare es

let make ~views ~indexes =
  { cviews = sort_views views; cindexes = sort_indexes indexes; ccompress = [] }

let views c = c.cviews

let indexes c = c.cindexes

let has_view c v = List.exists (Bitset.equal v) c.cviews

let has_index c elem attr =
  List.exists
    (fun ix -> Element.equal ix.Element.ix_elem elem && Element.equal_attr ix.Element.ix_attr attr)
    c.cindexes

let indexes_on c elem =
  List.filter_map
    (fun ix ->
      if Element.equal ix.Element.ix_elem elem then Some ix.Element.ix_attr
      else None)
    c.cindexes

let add_view c v = { c with cviews = sort_views (v :: c.cviews) }

let remove_view c v =
  { c with cviews = List.filter (fun w -> not (Bitset.equal w v)) c.cviews }

let add_index c ix = { c with cindexes = sort_indexes (ix :: c.cindexes) }

let remove_index c ix =
  {
    c with
    cindexes = List.filter (fun i -> not (Element.equal_index i ix)) c.cindexes;
  }

let compress c = c.ccompress

let has_compress c e = List.exists (Element.equal e) c.ccompress

let add_compress c e = { c with ccompress = sort_compress (e :: c.ccompress) }

let remove_compress c e =
  { c with ccompress = List.filter (fun d -> not (Element.equal d e)) c.ccompress }

let equal a b =
  List.length a.cviews = List.length b.cviews
  && List.length a.cindexes = List.length b.cindexes
  && List.length a.ccompress = List.length b.ccompress
  && List.for_all2 Bitset.equal a.cviews b.cviews
  && List.for_all2 Element.equal_index a.cindexes b.cindexes
  && List.for_all2 Element.equal a.ccompress b.ccompress

let restrict c ~rels =
  {
    cviews = List.filter (fun v -> Bitset.subset v rels) c.cviews;
    cindexes =
      List.filter
        (fun ix -> Bitset.subset (Element.rels ix.Element.ix_elem) rels)
        c.cindexes;
    ccompress =
      List.filter (fun e -> Bitset.subset (Element.rels e) rels) c.ccompress;
  }

let space derived c =
  let view_space =
    List.fold_left
      (fun acc v -> acc +. Vis_catalog.Derived.view_pages derived v)
      0. c.cviews
  in
  List.fold_left
    (fun acc ix -> acc +. (Element.index_shape derived ix).Vis_catalog.Derived.ix_pages)
    view_space c.cindexes

let signature c =
  let buf = Buffer.create 64 in
  List.iter
    (fun v ->
      Buffer.add_char buf 'v';
      Buffer.add_string buf (string_of_int (Bitset.to_int v));
      Buffer.add_char buf ';')
    c.cviews;
  List.iter
    (fun ix ->
      (match ix.Element.ix_elem with
      | Element.Base i ->
          Buffer.add_char buf 'B';
          Buffer.add_string buf (string_of_int i)
      | Element.View s ->
          Buffer.add_char buf 'V';
          Buffer.add_string buf (string_of_int (Bitset.to_int s)));
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int ix.Element.ix_attr.Element.a_rel);
      Buffer.add_char buf '.';
      Buffer.add_string buf ix.Element.ix_attr.Element.a_name;
      Buffer.add_char buf ';')
    c.cindexes;
  List.iter
    (fun e ->
      Buffer.add_char buf 'z';
      (match e with
      | Element.Base i -> Buffer.add_string buf ("B" ^ string_of_int i)
      | Element.View s ->
          Buffer.add_string buf ("V" ^ string_of_int (Bitset.to_int s)));
      Buffer.add_char buf ';')
    c.ccompress;
  Buffer.contents buf

let signature_ints schema c =
  let elem_code = function
    | Element.Base i -> (2 * i) + 1
    | Element.View s -> 2 * Bitset.to_int s
  in
  (* Views first (even codes shifted into a distinct range), then indexes,
     then compressed elements (codes offset past any index encoding); all
     three lists are sorted, so the encoding is canonical. *)
  List.map (fun v -> 2 * Bitset.to_int v) c.cviews
  @ List.map
      (fun ix ->
        let attr =
          (64 * ix.Element.ix_attr.Element.a_rel)
          + Vis_catalog.Schema.attr_pos schema ix.Element.ix_attr.Element.a_rel
              ix.Element.ix_attr.Element.a_name
        in
        lnot ((elem_code ix.Element.ix_elem * 4096) + attr))
      c.cindexes
  @ List.map (fun e -> lnot ((1 lsl 40) + elem_code e)) c.ccompress

let describe schema c =
  let views =
    match c.cviews with
    | [] -> "views: (none)"
    | vs ->
        "views: "
        ^ String.concat ", "
            (List.map (fun v -> Element.name schema (Element.View v)) vs)
  in
  let indexes =
    match c.cindexes with
    | [] -> "indexes: (none)"
    | ixs ->
        "indexes: " ^ String.concat ", " (List.map (Element.index_name schema) ixs)
  in
  let compressed =
    match c.ccompress with
    | [] -> ""
    | es ->
        "; compressed: "
        ^ String.concat ", " (List.map (Element.name schema) es)
  in
  views ^ "; " ^ indexes ^ compressed
