(** Materializable elements of the physical design (Section 2's problem
    statement): stored base-relation replicas and (sub)views of the primary
    view, plus indexes on them (Section 3.1).

    [View set] always means the join of the relations in [set] with every
    local selection pushed down; [View (full set)] is the primary view and
    [View {i}] is a σR-style selection view.  [Base i] is the unfiltered
    replica of relation [i]; its statistics differ from [View {i}] exactly
    when relation [i] carries a selection. *)

type t =
  | Base of int
  | View of Vis_util.Bitset.t

(** A qualified attribute: relation index and attribute name. *)
type attr = { a_rel : int; a_name : string }

(** An index is a B+-tree on a single attribute of an element (Section
    3.1). *)
type index = { ix_elem : t; ix_attr : attr }

val equal : t -> t -> bool

val compare : t -> t -> int

val equal_attr : attr -> attr -> bool

val equal_index : index -> index -> bool

val compare_index : index -> index -> int

(** [rels elem] is the set of base relations the element covers. *)
val rels : t -> Vis_util.Bitset.t

(** [card d elem] is [T(elem)]: full cardinality for [Base], selected and
    joined cardinality for [View]. *)
val card : Vis_catalog.Derived.t -> t -> float

(** [pages d elem] is [P(elem)]. *)
val pages : Vis_catalog.Derived.t -> t -> float

(** [index_shape d ix] sizes the B+-tree of [ix] over [card] entries. *)
val index_shape : Vis_catalog.Derived.t -> index -> Vis_catalog.Derived.index_shape

(** [name schema elem] renders an element, e.g. ["R"], ["σT"], ["RST"],
    [V] for the primary view. *)
val name : Vis_catalog.Schema.t -> t -> string

(** [index_name schema ix] renders e.g. ["ix(RST, T.T0)"]. *)
val index_name : Vis_catalog.Schema.t -> index -> string
