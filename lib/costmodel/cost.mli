(** The Appendix-A maintenance cost model.

    Costs are estimated page I/Os for one refresh batch.  The evaluator binds
    a schema's derived statistics to a physical configuration; the total cost
    [C(M')] of the paper is {!total}: the sum of maintaining every base
    relation, the primary view, every supporting view, and every index.

    Maintenance of a view [V] for deltas of a base relation [R ∈ R(V)]
    follows Table 4:
    - insertions: [Eval(ΔR ⋈ …)] over the best update path (answering the
      maintenance expression from base relations, materialized subviews, and
      saved deltas of materialized subviews — the paper's limited
      multiple-query optimization) + appending the result + saving it for
      reuse (supporting views only) + updating [V]'s indexes;
    - deletions: locating the affected tuples by a key-attribute index
      semijoin or by scanning [V], + deleting them + updating indexes;
    - protected updates: like deletions but without index maintenance.

    The plan space of [Eval] is searched exhaustively by dynamic programming
    over covered relation subsets with left-deep joins, costing nested-block
    and index joins per Table 5.  Evaluations are memoized in a {!cache}
    keyed by the configuration restricted to the features that can influence
    the expression (see {!Config.restrict}), so search algorithms evaluating
    many configurations share work. *)

type cache

(** [new_cache ?capacity ()] is a fresh shared store.  With [capacity] the
    cache is bounded: when full, the oldest entry is evicted (FIFO) and
    counted; without it the cache grows with the distinct evaluations.  The
    search algorithms share one unbounded cache per problem by default.

    The cache is safe for concurrent use from multiple domains (it is
    lock-striped; see {!Vis_util.Parallel}).  Counters are updated under the
    stripe locks, so [cs_hits + cs_misses] equals the number of lookups
    exactly even under contention.  A bounded cache distributes [capacity]
    over the stripes, so the total entry count never exceeds [capacity]. *)
val new_cache : ?capacity:int -> unit -> cache

(** Number of distinct (target, delta, restricted-configuration) evaluations
    stored — a measure of optimizer work. *)
val cache_size : cache -> int

(** Observability counters of a shared cache.  [cs_misses] is the number of
    cost derivations actually performed; [cs_hits] the number a fresh cache
    would have re-derived — so the cache cut cost-model work by the factor
    [(cs_hits + cs_misses) / cs_misses]. *)
type cache_stats = {
  cs_hits : int;
  cs_misses : int;
  cs_evictions : int;
  cs_entries : int;  (** entries currently stored *)
}

val cache_stats : cache -> cache_stats

(** Fraction of lookups served from the store, in [0, 1]; 0 when no lookup
    happened yet. *)
val hit_rate : cache_stats -> float

(** Zero the hit/miss/eviction counters without dropping entries — for
    measuring one search phase in isolation. *)
val reset_cache_stats : cache -> unit

val cache_stats_json : cache -> Vis_util.Json.t

type t

(** [create ?cache derived config] binds the evaluator.  Without [cache] a
    private one is created. *)
val create : ?cache:cache -> Vis_catalog.Derived.t -> Config.t -> t

val config : t -> Config.t

val derived : t -> Vis_catalog.Derived.t

(** {1 Plans} *)

type join_method =
  | Nbj  (** nested-block join with the (small) delta as the outer *)
  | Index_join of Element.index
      (** probe [ix] on the inner element per outer tuple *)

type ins_start =
  | From_delta  (** start from the shipped delta [ΔR] *)
  | From_saved of Vis_util.Bitset.t
      (** reuse the saved insertion delta [ΔV'^save_R] of materialized
          subview [V'] *)

type ins_plan = {
  ip_start : ins_start;
  ip_steps : (Element.t * join_method) list;  (** in join order *)
}

type locate_method =
  | Loc_scan  (** scan the view, semijoin in memory *)
  | Loc_key_index of Element.index  (** probe the key index per delta tuple *)

(** Cost breakdown of propagating one delta type of one relation onto one
    element (Table 4's [Prop_*]). *)
type prop = {
  p_eval : float;  (** computing the delta result *)
  p_apply : float;  (** applying it to the stored element *)
  p_save : float;  (** saving [ΔV^save] for reuse (insertions only) *)
  p_index : float;  (** maintaining the element's indexes *)
  p_result_tuples : float;  (** size of the delta result *)
}

val prop_total : prop -> float

(** {1 Costs} *)

(** [prop_ins t ~target ~rel] is the cost of propagating insertions of
    [rel] onto [target], with the winning update path.  Zero-cost with an
    empty plan when the relation has no insertions. *)
val prop_ins : t -> target:Element.t -> rel:int -> prop * ins_plan

(** [prop_del t ~target ~rel] — deletions, with the winning locate method. *)
val prop_del : t -> target:Element.t -> rel:int -> prop * locate_method

(** [prop_upd t ~target ~rel] — protected updates. *)
val prop_upd : t -> target:Element.t -> rel:int -> prop * locate_method

(** [element_cost t elem] sums [Prop_ins + Prop_del + Prop_upd] over the base
    relations of [elem] (Table 4's [Cost_v(V)]). *)
val element_cost : t -> Element.t -> float

(** [index_maint_cost t ix] is the index's own share of the maintenance cost:
    the [Apply_ix] terms it contributes for insertions and deletions
    propagated to its element. *)
val index_maint_cost : t -> Element.index -> float

(** [maintained_elements t] is every element whose maintenance [total]
    charges: all base relations, all supporting views of the configuration,
    and the primary view. *)
val maintained_elements : t -> Element.t list

(** [total t] is [C(M')]: the total maintenance cost of the warehouse under
    the evaluator's configuration. *)
val total : t -> float

(** [total_of ?cache derived config] is a convenience for
    [total (create ?cache derived config)]. *)
val total_of : ?cache:cache -> Vis_catalog.Derived.t -> Config.t -> float

(** {1 Rendering} *)

val pp_ins_plan :
  Vis_catalog.Schema.t -> target:Element.t -> rel:int -> Format.formatter -> ins_plan -> unit
