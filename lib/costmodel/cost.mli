(** The Appendix-A maintenance cost model.

    Costs are estimated page I/Os for one refresh batch.  The evaluator binds
    a schema's derived statistics to a physical configuration; the total cost
    [C(M')] of the paper is {!total}: the sum of maintaining every base
    relation, the primary view, every supporting view, and every index.

    Maintenance of a view [V] for deltas of a base relation [R ∈ R(V)]
    follows Table 4:
    - insertions: [Eval(ΔR ⋈ …)] over the best update path (answering the
      maintenance expression from base relations, materialized subviews, and
      saved deltas of materialized subviews — the paper's limited
      multiple-query optimization) + appending the result + saving it for
      reuse (supporting views only) + updating [V]'s indexes;
    - deletions: locating the affected tuples by a key-attribute index
      semijoin or by scanning [V], + deleting them + updating indexes;
    - protected updates: like deletions but without index maintenance.

    The plan space of [Eval] is searched exhaustively by dynamic programming
    over covered relation subsets with left-deep joins, costing nested-block
    and index joins per Table 5.  Evaluations are memoized in a {!cache}
    keyed by the configuration restricted to the features that can influence
    the expression (see {!Config.restrict}), so search algorithms evaluating
    many configurations share work. *)

type cache

(** [new_cache ?capacity ()] is a fresh shared store.  With [capacity] the
    cache is bounded: when full, the oldest entry is evicted (FIFO) and
    counted; without it the cache grows with the distinct evaluations.  The
    search algorithms share one unbounded cache per problem by default.

    The cache is safe for concurrent use from multiple domains (it is
    lock-striped; see {!Vis_util.Parallel}).  Counters are updated under the
    stripe locks, so [cs_hits + cs_misses] equals the number of lookups
    exactly even under contention.  A bounded cache distributes [capacity]
    over the stripes, so the total entry count never exceeds [capacity]. *)
val new_cache : ?capacity:int -> unit -> cache

(** Number of distinct (target, delta, restricted-configuration) evaluations
    stored — a measure of optimizer work. *)
val cache_size : cache -> int

(** Observability counters of a shared cache.  [cs_misses] is the number of
    cost derivations actually performed; [cs_hits] the number a fresh cache
    would have re-derived — so the cache cut cost-model work by the factor
    [(cs_hits + cs_misses) / cs_misses]. *)
type cache_stats = {
  cs_hits : int;
  cs_misses : int;
  cs_evictions : int;
  cs_entries : int;  (** entries currently stored *)
}

val cache_stats : cache -> cache_stats

(** Fraction of lookups served from the store, in [0, 1]; 0 when no lookup
    happened yet. *)
val hit_rate : cache_stats -> float

(** Zero the hit/miss/eviction counters without dropping entries — for
    measuring one search phase in isolation. *)
val reset_cache_stats : cache -> unit

val cache_stats_json : cache -> Vis_util.Json.t

type t

(** [create ?cache derived config] binds the evaluator.  Without [cache] a
    private one is created. *)
val create : ?cache:cache -> Vis_catalog.Derived.t -> Config.t -> t

val config : t -> Config.t

val derived : t -> Vis_catalog.Derived.t

(** {1 Page-level compression}

    A compressed element ({!Config.compress}) stores its tuples in
    [compress_page_ratio] of the pages.  The model charges this as linear
    per-page factors at every site touching the element's data pages:
    reads cost [compress_read_factor] (fewer I/Os plus decode CPU, net
    win) and writes cost [compress_write_factor] (encode CPU outweighs
    the I/O saving) per uncompressed-equivalent page.  Index pages,
    shipped deltas, and saved deltas are never compressed.  With no
    compressed elements all factors are [1.0] and every formula is
    bitwise identical to the uncompressed model. *)

val compress_page_ratio : float

val compress_read_factor : float

val compress_write_factor : float

(** {1 Plans} *)

type join_method =
  | Nbj  (** nested-block join with the (small) delta as the outer *)
  | Index_join of Element.index
      (** probe [ix] on the inner element per outer tuple *)

type ins_start =
  | From_delta  (** start from the shipped delta [ΔR] *)
  | From_saved of Vis_util.Bitset.t
      (** reuse the saved insertion delta [ΔV'^save_R] of materialized
          subview [V'] *)

type ins_plan = {
  ip_start : ins_start;
  ip_steps : (Element.t * join_method) list;  (** in join order *)
}

type locate_method =
  | Loc_scan  (** scan the view, semijoin in memory *)
  | Loc_key_index of Element.index  (** probe the key index per delta tuple *)

(** Cost breakdown of propagating one delta type of one relation onto one
    element (Table 4's [Prop_*]). *)
type prop = {
  p_eval : float;  (** computing the delta result *)
  p_apply : float;  (** applying it to the stored element *)
  p_save : float;  (** saving [ΔV^save] for reuse (insertions only) *)
  p_index : float;  (** maintaining the element's indexes *)
  p_result_tuples : float;  (** size of the delta result *)
}

val prop_total : prop -> float

(** {1 Costs} *)

(** [prop_ins t ~target ~rel] is the cost of propagating insertions of
    [rel] onto [target], with the winning update path.  Zero-cost with an
    empty plan when the relation has no insertions. *)
val prop_ins : t -> target:Element.t -> rel:int -> prop * ins_plan

(** [prop_del t ~target ~rel] — deletions, with the winning locate method. *)
val prop_del : t -> target:Element.t -> rel:int -> prop * locate_method

(** [prop_upd t ~target ~rel] — protected updates. *)
val prop_upd : t -> target:Element.t -> rel:int -> prop * locate_method

(** [element_cost t elem] sums [Prop_ins + Prop_del + Prop_upd] over the base
    relations of [elem] (Table 4's [Cost_v(V)]). *)
val element_cost : t -> Element.t -> float

(** [index_maint_cost t ix] is the index's own share of the maintenance cost:
    the [Apply_ix] terms it contributes for insertions and deletions
    propagated to its element. *)
val index_maint_cost : t -> Element.index -> float

(** [maintained_elements t] is every element whose maintenance [total]
    charges: all base relations, all supporting views of the configuration,
    and the primary view. *)
val maintained_elements : t -> Element.t list

(** [total t] is [C(M')]: the total maintenance cost of the warehouse under
    the evaluator's configuration. *)
val total : t -> float

(** [total_of ?cache derived config] is a convenience for
    [total (create ?cache derived config)]. *)
val total_of : ?cache:cache -> Vis_catalog.Derived.t -> Config.t -> float

(** {1 Feature encoding and incremental evaluation}

    A problem's candidate features (supporting views and indexes) can be
    numbered once into bits [0..61]; a configuration drawn from that universe
    is then a single [int] mask, subset and dominance tests are single-word
    bit operations, and the memo-cache key of an element under a mask is the
    mask intersected with the element's precomputed {e relevance mask} — no
    allocation per restriction.  [Vis_core.Config_id] (which depends on
    this library) wraps this per problem; the raw machinery lives here so
    the evaluator and the catalog can share the numbering. *)

(** Raised by {!make_encoding} when the universe exceeds 62 features (the
    paper's schemas stay far below; callers fall back to the structural
    evaluator). *)
exception Encoding_too_large of int

type encoding

(** [make_encoding derived features] numbers [features] — bit [i] is
    [features.(i)] — and precomputes per-element relevance masks and the
    incremental-evaluation slot table.  The encoding is immutable (counters
    aside) and safely shared across domains. *)
val make_encoding : Vis_catalog.Derived.t -> Config.feature array -> encoding

val encoding_features : encoding -> Config.feature array

(** The bit of a feature, or [None] if it is outside the universe. *)
val feature_bit : encoding -> Config.feature -> int option

(** The bit of the feature [F_view w]. *)
val view_feature_bit : encoding -> Vis_util.Bitset.t -> int option

(** [mask_of_config enc c] packs a symbolic configuration, or [None] when any
    of its features is outside the universe. *)
val mask_of_config : encoding -> Config.t -> int option

(** [config_of_mask enc m] decodes a mask back to the canonical symbolic
    configuration ([mask_of_config] is its left inverse). *)
val config_of_mask : encoding -> int -> Config.t

(** [create_masked ?cache derived enc mask] is an evaluator over a packed
    configuration: behaviourally identical to
    [create ?cache derived (config_of_mask enc mask)] — same cached values,
    same cache-hit equivalence classes — but its memo keys are single-word
    masks and the symbolic configuration is decoded lazily. *)
val create_masked : ?cache:cache -> Vis_catalog.Derived.t -> encoding -> int -> t

(** The per-element costs of one masked configuration, reusable to cost
    neighbouring masks incrementally. *)
type ieval

(** The configuration's total maintenance cost, bit-identical to {!total} of
    the equivalent symbolic evaluator. *)
val ieval_total : ieval -> float

val ieval_mask : ieval -> int

(** [eval_mask ?cache derived enc mask] costs a configuration from scratch
    (every maintained element). *)
val eval_mask : ?cache:cache -> Vis_catalog.Derived.t -> encoding -> int -> ieval

(** [eval_delta ?cache derived parent mask] costs [mask] by reusing
    [parent]'s per-element costs: only elements whose relevance mask meets
    the changed bits are re-derived; with no changed bits [parent] itself is
    returned.  The result is bitwise equal to [eval_mask] of the same
    mask. *)
val eval_delta : ?cache:cache -> Vis_catalog.Derived.t -> ieval -> int -> ieval

(** Exact counters of the incremental evaluator's work, accumulated in the
    encoding (atomically, so they are exact at any [--jobs]). *)
type incr_stats = {
  is_full : int;  (** configurations costed from scratch *)
  is_delta : int;  (** configurations costed from a neighbour *)
  is_reused : int;  (** zero-change evaluations answered by the parent *)
  is_elems_computed : int;  (** per-element costs (re)derived *)
  is_elems_copied : int;  (** per-element costs copied from the parent *)
}

val incr_stats : encoding -> incr_stats

val reset_incr_stats : encoding -> unit

val incr_stats_json : encoding -> Vis_util.Json.t

(** {1 Rendering} *)

val pp_ins_plan :
  Vis_catalog.Schema.t -> target:Element.t -> rel:int -> Format.formatter -> ins_plan -> unit
