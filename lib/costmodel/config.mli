(** A physical configuration: the set of materialized supporting views and
    the set of indexes.  Base relations and the primary view are always
    materialized and are not part of the configuration (Section 4.1); indexes
    on them are.

    Configurations are immutable; [add_*]/[remove_*] return new values.
    Views and indexes are kept sorted so that [signature] is canonical. *)

(** A candidate feature of the search space: a supporting view to
    materialize, an index to build, or page-level compression to enable on
    an always-materialized element ([F_compress] — fewer I/Os per access,
    more CPU per page; see {!Cost.compress_page_ratio}).  Lives here
    (rather than in the search layer) so the cost model can number a
    problem's features once and key its caches by feature bitmask;
    [Vis_core.Problem.feature] re-exports the constructors. *)
type feature =
  | F_view of Vis_util.Bitset.t
  | F_index of Element.index
  | F_compress of Element.t

(** The base relations a feature's maintenance depends on: the view's
    relation set, or the indexed element's. *)
val feature_rels : feature -> Vis_util.Bitset.t

val equal_feature : feature -> feature -> bool

type t

val empty : t

val make : views:Vis_util.Bitset.t list -> indexes:Element.index list -> t

val views : t -> Vis_util.Bitset.t list

val indexes : t -> Element.index list

val has_view : t -> Vis_util.Bitset.t -> bool

val has_index : t -> Element.t -> Element.attr -> bool

(** [indexes_on c elem] is the attributes indexed on [elem]. *)
val indexes_on : t -> Element.t -> Element.attr list

val add_view : t -> Vis_util.Bitset.t -> t

val remove_view : t -> Vis_util.Bitset.t -> t

val add_index : t -> Element.index -> t

val remove_index : t -> Element.index -> t

(** {2 Page-level compression}

    Elements stored compressed: roughly half the pages
    ({!Cost.compress_page_ratio}), at a CPU surcharge per page read or
    written.  [make] starts with no compression; the set is sorted and
    canonical like views and indexes. *)

val compress : t -> Element.t list

val has_compress : t -> Element.t -> bool

val add_compress : t -> Element.t -> t

val remove_compress : t -> Element.t -> t

val equal : t -> t -> bool

(** [restrict c ~rels] keeps only the features relevant to maintaining a view
    over [rels]: views whose relation set is contained in [rels] and indexes
    whose element's relation set is contained in [rels].  Used as a
    memoization key so that configurations differing only in irrelevant
    features share cost evaluations. *)
val restrict : t -> rels:Vis_util.Bitset.t -> t

(** [space derived c] is the additional storage, in pages, of every view and
    index in the configuration. *)
val space : Vis_catalog.Derived.t -> t -> float

(** Canonical textual form, suitable as a hash key. *)
val signature : t -> string

(** [signature_ints schema c] is a canonical compact integer encoding of the
    configuration, cheaper to build and hash than {!signature}; used for
    memoization in the cost evaluator. *)
val signature_ints : Vis_catalog.Schema.t -> t -> int list

(** [describe schema c] renders the configuration for humans, e.g.
    ["views: σT, ST; indexes: ix(V, R.R0), ix(ST, S.S1)"]. *)
val describe : Vis_catalog.Schema.t -> t -> string
