(** Frequent-access-pattern mining over a query log, after Aouiche &
    Darmont (arXiv 0707.1548): the candidate features fed to the optimizer
    are made proportional to the {e workload} instead of the schema.

    Each query contributes one transaction — the set of [(relation,
    attribute)] pairs it accesses — plus the set of relations it touches.
    Mining proceeds in four steps:

    + {b frequent attributes}: attributes appearing in at least
      [minsup × |log|] transactions become the allowed query-driven index
      attributes;
    + {b closed frequent itemsets}: transactions are projected onto the
      frequent attributes; the closure (intersection of all containing
      transactions) of each distinct projection with sufficient support is
      reported — the compact lattice of co-access patterns;
    + {b candidate views}: relation groups supported by enough queries
      (counted by containment), seeded from both the itemsets' touched
      relations and the observed per-query relation sets, are expanded
      into their sub-join lattices;
    + {b clause-affinity merging}: two frequent groups whose union retains
      at least [affinity] of the rarer group's support are merged, so one
      composite sub-join can serve both clauses.

    At [minsup = 0] (or an empty log) the miner falls back to full
    coverage: the returned candidates span the complete structural
    enumeration and {!Vis_core.Problem.make}[ ~candidates] is bit-identical
    to the unrestricted problem. *)

type itemset = {
  items : (int * string) list;  (** sorted by (relation, attribute) *)
  support : int;  (** number of supporting transactions *)
}

type stats = {
  mn_queries : int;
  mn_threshold : int;  (** absolute support threshold, [ceil (minsup·N)] *)
  mn_universe : int;  (** query-driven attributes in the schema *)
  mn_frequent_attrs : int;
  mn_itemsets : int;  (** closed frequent itemsets reported *)
  mn_views : int;  (** candidate views after expansion and merging *)
}

type result = {
  m_candidates : Vis_core.Problem.candidates;
  m_itemsets : itemset list;
      (** closed frequent itemsets, most supported first; empty in the
          full-coverage fallback *)
  m_stats : stats;
}

(** [mine schema log] mines candidates at [minsup] (default 0.1, must be
    in [0, 1]) and clause-affinity threshold [affinity] (default 0.5).
    Deterministic: the result is a pure function of the arguments. *)
val mine :
  ?minsup:float ->
  ?affinity:float ->
  Vis_catalog.Schema.t ->
  Querygen.log ->
  result
