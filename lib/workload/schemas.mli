(** The experiment schemas of the paper's Figure 5, parameterized so the
    Section 5/6 experiments can sweep sizes, rates and selectivities, plus a
    random schema generator for property-based testing.

    Schema 1: [V = R ⋈ S ⋈ σT] — a linear foreign-key join with the local
    selection on [T] and relative cardinalities [T(R) = 3·T(S) = 9·T(T)].

    Schema 2: [V = R ⋈ σS ⋈ T] — a linear foreign-key join with the local
    selection on [S] and equal cardinalities. *)

(** [schema1 ()] with defaults: [T(T) = 10_000] ([base_card]), 10%
    selectivity on [T.T1], 40-byte tuples, insertion fraction 0.01 and
    deletion fraction 0.001 of each relation's cardinality, no updates,
    [mem_pages = 100].  [sel_join_s]/[sel_join_t] override the foreign-key
    join selectivities (defaults [1/T(S)] and [1/T(T)]). *)
val schema1 :
  ?base_card:float ->
  ?sel_t:float ->
  ?tuple_bytes:int ->
  ?ins_frac:float ->
  ?del_frac:float ->
  ?upd_frac:float ->
  ?mem_pages:int ->
  ?sel_join_s:float ->
  ?sel_join_t:float ->
  unit ->
  Vis_catalog.Schema.t

(** [schema2 ()] with defaults: all cardinalities 30_000, 10% selectivity on
    [S.S1], otherwise as {!schema1}. *)
val schema2 :
  ?card:float ->
  ?sel_s:float ->
  ?tuple_bytes:int ->
  ?ins_frac:float ->
  ?del_frac:float ->
  ?upd_frac:float ->
  ?mem_pages:int ->
  unit ->
  Vis_catalog.Schema.t

(** [two_relation ()] — the smallest interesting instance, [V = R ⋈ σS],
    used by fast unit tests and Table 2's first rows. *)
val two_relation :
  ?card_r:float ->
  ?card_s:float ->
  ?sel_s:float ->
  ?ins_frac:float ->
  ?del_frac:float ->
  ?mem_pages:int ->
  unit ->
  Vis_catalog.Schema.t

(** [chain ~n ()] — a linear foreign-key chain of [n] relations
    [R1 ⋈ R2 ⋈ … ⋈ σRn] with geometric cardinalities, for scaling
    experiments. *)
val chain :
  ?base_card:float ->
  ?sel_last:float ->
  ?ins_frac:float ->
  ?del_frac:float ->
  ?mem_pages:int ->
  n:int ->
  unit ->
  Vis_catalog.Schema.t

(** [star ~n_dims ()] — a star warehouse schema of [n_dims + 1] relations: a
    fact table [F] (cardinality [fact_mult · base_card], default 10×) with a
    separate foreign-key attribute [Fi] per dimension, and insert-only
    dimensions [DA, DB, …] of mildly varied sizes.  The first [n_sel]
    dimensions (default [n_dims / 3], at least 1) carry a local selection of
    selectivity [sel].  Foreign keys are distinct from primary keys, so
    {!Vis_workload.Datagen} can realize the schema and refreshes are
    executable.  Use [Problem.make ~connected_only:true ~max_view_rels] to
    keep the candidate-view lattice (and the packed encoding) tractable at
    this scale. *)
val star :
  ?base_card:float ->
  ?fact_mult:float ->
  ?sel:float ->
  ?n_sel:int ->
  ?ins_frac:float ->
  ?del_frac:float ->
  ?dim_ins_frac:float ->
  ?mem_pages:int ->
  n_dims:int ->
  unit ->
  Vis_catalog.Schema.t

(** [snowflake ~arms ~depth ()] — a snowflake warehouse schema of
    [1 + arms·depth] relations: the fact table joins [arms] dimension
    chains, each normalized [depth] levels deep with halving cardinalities;
    every arm's outermost (leaf) dimension carries a selection.  Delta
    profile and executability as {!star}. *)
val snowflake :
  ?base_card:float ->
  ?fact_mult:float ->
  ?sel:float ->
  ?ins_frac:float ->
  ?del_frac:float ->
  ?dim_ins_frac:float ->
  ?mem_pages:int ->
  arms:int ->
  depth:int ->
  unit ->
  Vis_catalog.Schema.t

(** [random ~rng ()] draws a connected schema of 2–4 relations with random
    chain joins, selections, cardinalities (small, so exhaustive search is
    feasible) and delta rates.  Intended for A*-vs-exhaustive property
    tests. *)
val random : rng:Random.State.t -> unit -> Vis_catalog.Schema.t

(** [validation ()] — a Schema-1-shaped instance whose foreign keys are
    separate attributes from the primary keys, so synthetic data exactly
    realizing its statistics can be generated and maintenance plans can be
    {e executed} on the storage engine: [R(R0,R1,R2) ⋈ S(S0,S1,S2) ⋈
    σT(T0,T1,T2)] with [R.R1 → S.S0], [S.S1 → T.T0], a 10% selection on
    [T.T1] and an unindexed payload attribute per relation for protected
    updates.  Defaults are small ([base_card = 400], 512-byte pages) so
    executions stay fast. *)
val validation :
  ?base_card:float ->
  ?sel_t:float ->
  ?ins_frac:float ->
  ?del_frac:float ->
  ?upd_frac:float ->
  ?mem_pages:int ->
  ?page_bytes:int ->
  unit ->
  Vis_catalog.Schema.t
