module Bitset = Vis_util.Bitset
module Schema = Vis_catalog.Schema
module Problem = Vis_core.Problem

type itemset = { items : (int * string) list; support : int }

type stats = {
  mn_queries : int;
  mn_threshold : int;
  mn_universe : int;
  mn_frequent_attrs : int;
  mn_itemsets : int;
  mn_views : int;
}

type result = {
  m_candidates : Problem.candidates;
  m_itemsets : itemset list;
  m_stats : stats;
}

let compare_attr (r1, n1) (r2, n2) =
  match Int.compare r1 r2 with 0 -> String.compare n1 n2 | c -> c

let compare_items = List.compare compare_attr

(* Supporting views may be any sub-join of a frequently co-accessed
   relation group; expanding a group into its full subset lattice is the
   paper's DAG restricted to that group.  Groups are small (a star-join
   template touches at most four relations), but guard against a
   pathological log where one observed group covers most of the schema. *)
let subset_cap = 6

let views_of_rel_set all s =
  let proper w = Bitset.proper_subset w all in
  if Bitset.cardinal s <= subset_cap then
    List.filter proper (Bitset.nonempty_subsets s)
  else
    List.filter proper
      (s :: List.map Bitset.singleton (Bitset.elements s))

let sort_views views =
  List.sort_uniq
    (fun a b ->
      match Int.compare (Bitset.cardinal a) (Bitset.cardinal b) with
      | 0 -> Bitset.compare a b
      | c -> c)
    views

(* Exhaustive fallback: a candidate set covering the complete structural
   enumeration, so [Problem.make ~candidates] is bit-identical to the
   unrestricted problem.  Used when the support threshold is zero (minsup
   0, or an empty log). *)
let full_coverage schema =
  let all = Schema.all_relations schema in
  {
    Problem.cand_views = Bitset.proper_nonempty_subsets all;
    cand_attrs = Array.to_list (Querygen.attr_universe schema);
  }

let mine ?(minsup = 0.1) ?(affinity = 0.5) schema (log : Querygen.log) =
  if minsup < 0. || minsup > 1. then
    invalid_arg "Miner.mine: minsup must be in [0, 1]";
  let n_queries = List.length log in
  let threshold = int_of_float (Float.ceil (minsup *. float_of_int n_queries)) in
  let universe = Querygen.attr_universe schema in
  let stats ~frequent ~itemsets ~views =
    {
      mn_queries = n_queries;
      mn_threshold = threshold;
      mn_universe = Array.length universe;
      mn_frequent_attrs = frequent;
      mn_itemsets = itemsets;
      mn_views = views;
    }
  in
  if threshold = 0 then
    let c = full_coverage schema in
    {
      m_candidates = c;
      m_itemsets = [];
      m_stats =
        stats
          ~frequent:(List.length c.Problem.cand_attrs)
          ~itemsets:0
          ~views:(List.length c.Problem.cand_views);
    }
  else begin
    (* 1. Frequent single attributes.  Transactions are sets: an attribute
       counts once per query however often the query references it. *)
    let attr_support : (int * string, int) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (q : Querygen.query) ->
        List.iter
          (fun a ->
            Hashtbl.replace attr_support a
              (1 + Option.value ~default:0 (Hashtbl.find_opt attr_support a)))
          q.Querygen.q_attrs)
      log;
    let frequent a =
      Option.value ~default:0 (Hashtbl.find_opt attr_support a) >= threshold
    in
    let cand_attrs = List.filter frequent (Array.to_list universe) in
    (* 2. Closed frequent itemsets.  Project every transaction onto the
       frequent attributes; for each distinct projection P, support(P) is
       the number of transactions whose projection contains P, and its
       closure is the intersection of all such projections.  Closures of
       observed transactions are exactly the closed itemsets reachable
       from the log, and distinct-projection counts keep this quadratic in
       the (small) number of distinct access shapes, not in the log. *)
    let projections : ((int * string) list, int) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (q : Querygen.query) ->
        let p =
          List.sort_uniq compare_attr (List.filter frequent q.Querygen.q_attrs)
        in
        if p <> [] then
          Hashtbl.replace projections p
            (1 + Option.value ~default:0 (Hashtbl.find_opt projections p)))
      log;
    let distinct =
      Hashtbl.fold (fun p c acc -> (p, c) :: acc) projections []
      |> List.sort (fun (p1, _) (p2, _) -> compare_items p1 p2)
    in
    let contains sup sub = List.for_all (fun a -> List.mem a sup) sub in
    let inter a b = List.filter (fun x -> List.mem x b) a in
    let itemsets =
      List.filter_map
        (fun (p, _) ->
          let supers = List.filter (fun (q, _) -> contains q p) distinct in
          let support = List.fold_left (fun acc (_, c) -> acc + c) 0 supers in
          if support < threshold then None
          else
            let closure =
              List.fold_left (fun acc (q, _) -> inter acc q) p supers
            in
            Some { items = closure; support })
        distinct
      |> List.sort_uniq (fun a b ->
             match compare_items a.items b.items with
             | 0 -> Int.compare a.support b.support
             | c -> c)
      |> List.sort (fun a b ->
             match Int.compare b.support a.support with
             | 0 -> compare_items a.items b.items
             | c -> c)
    in
    (* 3. Candidate views: frequent relation groups.  A query supports
       every relation set it covers, so group support is counted by
       containment over the distinct observed rel-sets.  Groups come from
       two sources: the relations a closed itemset touches (0707.1548's
       itemset → view mapping) and the observed per-query rel-sets
       themselves. *)
    let rel_sets : (int, int) Hashtbl.t = Hashtbl.create 32 in
    List.iter
      (fun (q : Querygen.query) ->
        if not (Bitset.is_empty q.Querygen.q_rels) then
          let key = Bitset.to_int q.Querygen.q_rels in
          Hashtbl.replace rel_sets key
            (1 + Option.value ~default:0 (Hashtbl.find_opt rel_sets key)))
      log;
    let observed =
      Hashtbl.fold (fun k c acc -> (Bitset.of_int k, c) :: acc) rel_sets []
      |> List.sort (fun (a, _) (b, _) -> Bitset.compare a b)
    in
    let group_support s =
      List.fold_left
        (fun acc (o, c) -> if Bitset.subset s o then acc + c else acc)
        0 observed
    in
    let from_itemsets =
      List.map
        (fun is -> Bitset.of_list (List.map fst is.items))
        itemsets
    in
    let from_queries =
      List.filter_map
        (fun (s, _) -> if group_support s >= threshold then Some s else None)
        observed
    in
    let groups = sort_views (from_itemsets @ from_queries) in
    (* 4. Clause-affinity merging: two frequent groups whose union is
       nearly as frequent as the rarer of the two describe one composite
       clause — merge them so the sub-join covering both becomes a
       candidate. *)
    let merged =
      let rec pairs acc = function
        | [] -> acc
        | s :: rest ->
            let acc =
              List.fold_left
                (fun acc s' ->
                  let u = Bitset.union s s' in
                  if Bitset.equal u s || Bitset.equal u s' then acc
                  else
                    let m = Int.min (group_support s) (group_support s') in
                    if
                      m > 0
                      && float_of_int (group_support u) /. float_of_int m
                         >= affinity
                    then u :: acc
                    else acc)
                acc rest
            in
            pairs acc rest
      in
      pairs [] groups
    in
    let all = Schema.all_relations schema in
    let cand_views =
      sort_views
        (List.concat_map (views_of_rel_set all) (groups @ merged))
    in
    {
      m_candidates = { Problem.cand_views; cand_attrs };
      m_itemsets = itemsets;
      m_stats =
        stats
          ~frequent:(List.length cand_attrs)
          ~itemsets:(List.length itemsets)
          ~views:(List.length cand_views);
    }
  end
