module Schema = Vis_catalog.Schema

let rel name card tuple_bytes =
  {
    Schema.rel_name = name;
    card;
    tuple_bytes;
    key_attr = name ^ "0";
    attrs = [ name ^ "0"; name ^ "1" ];
  }

let delta card ~ins_frac ~del_frac ~upd_frac =
  {
    Schema.n_ins = ins_frac *. card;
    n_del = del_frac *. card;
    n_upd = upd_frac *. card;
  }

let schema1 ?(base_card = 10_000.) ?(sel_t = 0.1) ?(tuple_bytes = 40)
    ?(ins_frac = 0.01) ?(del_frac = 0.001) ?(upd_frac = 0.) ?(mem_pages = 100)
    ?sel_join_s ?sel_join_t () =
  let card_t = base_card in
  let card_s = 3. *. base_card in
  let card_r = 9. *. base_card in
  let f_s = match sel_join_s with Some f -> f | None -> 1. /. card_s in
  let f_t = match sel_join_t with Some f -> f | None -> 1. /. card_t in
  let d card = delta card ~ins_frac ~del_frac ~upd_frac in
  Schema.make ~mem_pages
    ~relations:[ rel "R" card_r tuple_bytes; rel "S" card_s tuple_bytes; rel "T" card_t tuple_bytes ]
    ~selections:[ { Schema.sel_rel = 2; sel_attr = "T1"; selectivity = sel_t } ]
    ~joins:
      [
        {
          Schema.left_rel = 0;
          left_attr = "R1";
          right_rel = 1;
          right_attr = "S1";
          join_sel = f_s;
        };
        {
          Schema.left_rel = 1;
          left_attr = "S0";
          right_rel = 2;
          right_attr = "T0";
          join_sel = f_t;
        };
      ]
    ~deltas:[ d card_r; d card_s; d card_t ]
    ()

let schema2 ?(card = 30_000.) ?(sel_s = 0.1) ?(tuple_bytes = 40)
    ?(ins_frac = 0.01) ?(del_frac = 0.001) ?(upd_frac = 0.) ?(mem_pages = 100)
    () =
  let d c = delta c ~ins_frac ~del_frac ~upd_frac in
  Schema.make ~mem_pages
    ~relations:[ rel "R" card tuple_bytes; rel "S" card tuple_bytes; rel "T" card tuple_bytes ]
    ~selections:[ { Schema.sel_rel = 1; sel_attr = "S1"; selectivity = sel_s } ]
    ~joins:
      [
        {
          Schema.left_rel = 0;
          left_attr = "R1";
          right_rel = 1;
          right_attr = "S1";
          join_sel = 1. /. card;
        };
        {
          Schema.left_rel = 1;
          left_attr = "S0";
          right_rel = 2;
          right_attr = "T0";
          join_sel = 1. /. card;
        };
      ]
    ~deltas:[ d card; d card; d card ]
    ()

let two_relation ?(card_r = 30_000.) ?(card_s = 10_000.) ?(sel_s = 0.1)
    ?(ins_frac = 0.01) ?(del_frac = 0.001) ?(mem_pages = 100) () =
  let d c = delta c ~ins_frac ~del_frac ~upd_frac:0. in
  Schema.make ~mem_pages
    ~relations:[ rel "R" card_r 40; rel "S" card_s 40 ]
    ~selections:[ { Schema.sel_rel = 1; sel_attr = "S1"; selectivity = sel_s } ]
    ~joins:
      [
        {
          Schema.left_rel = 0;
          left_attr = "R1";
          right_rel = 1;
          right_attr = "S0";
          join_sel = 1. /. card_s;
        };
      ]
    ~deltas:[ d card_r; d card_s ]
    ()

let chain ?(base_card = 10_000.) ?(sel_last = 0.1) ?(ins_frac = 0.01)
    ?(del_frac = 0.001) ?(mem_pages = 100) ~n () =
  if n < 2 then invalid_arg "Schemas.chain: need at least 2 relations";
  let name i = Printf.sprintf "A%c" (Char.chr (Char.code 'A' + i)) in
  let card i = base_card *. (3. ** float_of_int (n - 1 - i)) in
  let relations = List.init n (fun i -> rel (name i) (card i) 40) in
  let joins =
    List.init (n - 1) (fun i ->
        {
          Schema.left_rel = i;
          left_attr = name i ^ "1";
          right_rel = i + 1;
          right_attr = name (i + 1) ^ "0";
          join_sel = 1. /. card (i + 1);
        })
  in
  let deltas =
    List.init n (fun i -> delta (card i) ~ins_frac ~del_frac ~upd_frac:0.)
  in
  Schema.make ~mem_pages ~relations
    ~selections:
      [ { Schema.sel_rel = n - 1; sel_attr = name (n - 1) ^ "1"; selectivity = sel_last } ]
    ~joins ~deltas ()

(* Large warehouse shapes for the parallel-scaling studies.  Both keep the
   foreign keys as separate attributes from the primary keys (fact.F1..Fn
   reference the dimension keys), so [Datagen.generate] can realize them and
   maintenance plans are executable.  Dimensions are insert-only (classic
   slowly-changing warehouse dimensions): they receive no deletions or
   updates, which keeps the candidate-index space from exploding with key
   indexes that would never pay off. *)

let star ?(base_card = 2_000.) ?(fact_mult = 10.) ?(sel = 0.1) ?n_sel
    ?(ins_frac = 0.02) ?(del_frac = 0.002) ?(dim_ins_frac = 0.001)
    ?(mem_pages = 200) ~n_dims () =
  if n_dims < 2 then invalid_arg "Schemas.star: need at least 2 dimensions";
  if n_dims > 24 then invalid_arg "Schemas.star: too many dimensions";
  let n_sel =
    match n_sel with
    | Some k -> min (max 1 k) n_dims
    | None -> max 1 (n_dims / 3)
  in
  let dim_name i = Printf.sprintf "D%c" (Char.chr (Char.code 'A' + i)) in
  let fact_card = fact_mult *. base_card in
  (* Mildly varied dimension sizes so shards see uneven work. *)
  let dim_card i = base_card *. (1. +. float_of_int (i mod 3)) in
  let fact =
    {
      Schema.rel_name = "F";
      card = fact_card;
      tuple_bytes = 8 * (1 + n_dims);
      key_attr = "F0";
      attrs = "F0" :: List.init n_dims (fun i -> Printf.sprintf "F%d" (i + 1));
    }
  in
  let dims =
    List.init n_dims (fun i ->
        {
          Schema.rel_name = dim_name i;
          card = dim_card i;
          tuple_bytes = 24;
          key_attr = dim_name i ^ "0";
          attrs = [ dim_name i ^ "0"; dim_name i ^ "1" ];
        })
  in
  let joins =
    List.init n_dims (fun i ->
        {
          Schema.left_rel = 0;
          left_attr = Printf.sprintf "F%d" (i + 1);
          right_rel = i + 1;
          right_attr = dim_name i ^ "0";
          join_sel = 1. /. dim_card i;
        })
  in
  let selections =
    List.init n_sel (fun i ->
        { Schema.sel_rel = i + 1; sel_attr = dim_name i ^ "1"; selectivity = sel })
  in
  let deltas =
    delta fact_card ~ins_frac ~del_frac ~upd_frac:0.
    :: List.init n_dims (fun i ->
           delta (dim_card i) ~ins_frac:dim_ins_frac ~del_frac:0. ~upd_frac:0.)
  in
  Schema.make ~mem_pages ~relations:(fact :: dims) ~selections ~joins ~deltas ()

let snowflake ?(base_card = 2_000.) ?(fact_mult = 10.) ?(sel = 0.1)
    ?(ins_frac = 0.02) ?(del_frac = 0.002) ?(dim_ins_frac = 0.001)
    ?(mem_pages = 200) ~arms ~depth () =
  if arms < 1 then invalid_arg "Schemas.snowflake: need at least 1 arm";
  if depth < 1 then invalid_arg "Schemas.snowflake: need depth >= 1";
  if arms * depth > 24 then invalid_arg "Schemas.snowflake: too many relations";
  (* Relation index of arm [a] (0-based), level [l] (1-based). *)
  let rel_of a l = 1 + (a * depth) + (l - 1) in
  let name a l = Printf.sprintf "D%c%d" (Char.chr (Char.code 'A' + a)) l in
  let fact_card = fact_mult *. base_card in
  (* Normalization shrinks outer levels. *)
  let card l = base_card /. (2. ** float_of_int (l - 1)) in
  let fact =
    {
      Schema.rel_name = "F";
      card = fact_card;
      tuple_bytes = 8 * (1 + arms);
      key_attr = "F0";
      attrs = "F0" :: List.init arms (fun a -> Printf.sprintf "F%d" (a + 1));
    }
  in
  let dims =
    List.concat
      (List.init arms (fun a ->
           List.init depth (fun l0 ->
               let l = l0 + 1 in
               let n = name a l in
               {
                 Schema.rel_name = n;
                 card = card l;
                 tuple_bytes = 24;
                 key_attr = n ^ "0";
                 (* [n1] is the foreign key to the next level out on inner
                    levels, the selection attribute on the leaf *)
                 attrs = [ n ^ "0"; n ^ "1" ];
               })))
  in
  let joins =
    List.concat
      (List.init arms (fun a ->
           {
             Schema.left_rel = 0;
             left_attr = Printf.sprintf "F%d" (a + 1);
             right_rel = rel_of a 1;
             right_attr = name a 1 ^ "0";
             join_sel = 1. /. card 1;
           }
           :: List.init (depth - 1) (fun l0 ->
                  let l = l0 + 1 in
                  {
                    Schema.left_rel = rel_of a l;
                    left_attr = name a l ^ "1";
                    right_rel = rel_of a (l + 1);
                    right_attr = name a (l + 1) ^ "0";
                    join_sel = 1. /. card (l + 1);
                  })))
  in
  (* One selection per arm, on the outermost (leaf) dimension. *)
  let selections =
    List.init arms (fun a ->
        {
          Schema.sel_rel = rel_of a depth;
          sel_attr = name a depth ^ "1";
          selectivity = sel;
        })
  in
  let deltas =
    delta fact_card ~ins_frac ~del_frac ~upd_frac:0.
    :: List.concat
         (List.init arms (fun _ ->
              List.init depth (fun l0 ->
                  delta (card (l0 + 1)) ~ins_frac:dim_ins_frac ~del_frac:0.
                    ~upd_frac:0.)))
  in
  Schema.make ~mem_pages ~relations:(fact :: dims) ~selections ~joins ~deltas ()

let validation ?(base_card = 400.) ?(sel_t = 0.1) ?(ins_frac = 0.02)
    ?(del_frac = 0.005) ?(upd_frac = 0.005) ?(mem_pages = 40)
    ?(page_bytes = 512) () =
  let attr_bytes = 8 in
  let rel3 name card =
    {
      Schema.rel_name = name;
      card;
      tuple_bytes = 3 * attr_bytes;
      key_attr = name ^ "0";
      attrs = [ name ^ "0"; name ^ "1"; name ^ "2" ];
    }
  in
  let card_t = base_card in
  let card_s = 3. *. base_card in
  let card_r = 9. *. base_card in
  let d c = delta c ~ins_frac ~del_frac ~upd_frac in
  Schema.make ~page_bytes ~mem_pages
    ~relations:[ rel3 "R" card_r; rel3 "S" card_s; rel3 "T" card_t ]
    ~selections:[ { Schema.sel_rel = 2; sel_attr = "T1"; selectivity = sel_t } ]
    ~joins:
      [
        {
          Schema.left_rel = 0;
          left_attr = "R1";
          right_rel = 1;
          right_attr = "S0";
          join_sel = 1. /. card_s;
        };
        {
          Schema.left_rel = 1;
          left_attr = "S1";
          right_rel = 2;
          right_attr = "T0";
          join_sel = 1. /. card_t;
        };
      ]
    ~deltas:[ d card_r; d card_s; d card_t ]
    ()

let random ~rng () =
  let n = 2 + Random.State.int rng 3 in
  let name i = String.make 1 (Char.chr (Char.code 'A' + i)) in
  let card _ = float_of_int (100 * (1 + Random.State.int rng 50)) in
  let cards = Array.init n card in
  let relations =
    List.init n (fun i -> rel (name i) cards.(i) (16 + (8 * Random.State.int rng 6)))
  in
  let joins =
    List.init (n - 1) (fun i ->
        let fk = Random.State.bool rng in
        let f =
          if fk then 1. /. cards.(i + 1)
          else Float.min 1. (float_of_int (1 + Random.State.int rng 5) /. cards.(i + 1))
        in
        {
          Schema.left_rel = i;
          left_attr = name i ^ "1";
          right_rel = i + 1;
          right_attr = name (i + 1) ^ "0";
          join_sel = f;
        })
  in
  let selections =
    List.concat
      (List.init n (fun i ->
           if Random.State.int rng 100 < 40 then
             [
               {
                 Schema.sel_rel = i;
                 sel_attr = name i ^ "1";
                 selectivity = 0.05 +. Random.State.float rng 0.9;
               };
             ]
           else []))
  in
  let deltas =
    List.init n (fun i ->
        let frac () =
          match Random.State.int rng 4 with
          | 0 -> 0.
          | 1 -> 0.001 +. Random.State.float rng 0.01
          | 2 -> 0.01 +. Random.State.float rng 0.05
          | _ -> 0.1 *. Random.State.float rng 1.
        in
        delta cards.(i) ~ins_frac:(frac ()) ~del_frac:(frac ())
          ~upd_frac:(if Random.State.bool rng then frac () /. 2. else 0.))
  in
  Schema.make
    ~mem_pages:(10 + Random.State.int rng 200)
    ~relations ~selections ~joins ~deltas ()
