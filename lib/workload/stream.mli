(** Seeded tenant load processes for the advisor service.

    A tenant's traffic is described by a mean batch-arrival rate (batches
    per service tick) and a {!drift} profile scaling its delta volume over
    time.  Both are pure functions of their arguments: the number of
    batches arriving for tenant [t] at tick [k] depends only on
    [(seed, t, k, mean)], never on pool width, other tenants, or host
    timing — the root of the daemon's [(seed, jobs)] determinism. *)

(** How a tenant's delta volume evolves over the run, as a multiplicative
    factor on the schema's declared delta statistics. *)
type drift =
  | Constant  (** the rates the design was optimized for *)
  | Step of { at : int; factor : float }
      (** [factor] from tick [at] onwards — a regime change *)
  | Ramp of { from_tick : int; over : int; factor : float }
      (** linear from 1.0 at [from_tick] to [factor] over [over] ticks *)

(** [drift_factor d ~tick] — the volume multiplier at [tick] (1.0 before
    any drift begins; never negative). *)
val drift_factor : drift -> tick:int -> float

(** [zipf_weight ~s ~rank] is [1 / (rank + 1)^s] — the classical zipfian
    weight used to skew per-tenant rates (rank 0 is the heaviest
    tenant). *)
val zipf_weight : s:float -> rank:int -> float

(** [arrivals ~seed ~tenant ~tick ~mean] — how many delta batches arrive
    for [tenant] during [tick]: a Poisson draw with the given mean,
    deterministic in the four arguments.  [mean] is clamped to [0, 50]. *)
val arrivals : seed:int -> tenant:int -> tick:int -> mean:float -> int
