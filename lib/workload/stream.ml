type drift =
  | Constant
  | Step of { at : int; factor : float }
  | Ramp of { from_tick : int; over : int; factor : float }

let drift_factor d ~tick =
  match d with
  | Constant -> 1.
  | Step { at; factor } -> if tick >= at then Float.max 0. factor else 1.
  | Ramp { from_tick; over; factor } ->
      if tick <= from_tick then 1.
      else if over <= 0 || tick >= from_tick + over then Float.max 0. factor
      else
        let frac = float_of_int (tick - from_tick) /. float_of_int over in
        Float.max 0. (1. +. ((factor -. 1.) *. frac))

let zipf_weight ~s ~rank = 1. /. (float_of_int (rank + 1) ** s)

(* Knuth's product-of-uniforms Poisson sampler: exact for the small means a
   service tick sees (the clamp keeps [exp (-mean)] well away from
   underflow).  The RNG is keyed by every argument, so the draw is a pure
   function — two runs at different pool widths see identical arrivals. *)
let arrivals ~seed ~tenant ~tick ~mean =
  let mean = Float.min 50. (Float.max 0. mean) in
  if mean = 0. then 0
  else begin
    let rng = Random.State.make [| seed; tenant; tick; 0x5ca1ab1e |] in
    let limit = Float.exp (-.mean) in
    let rec draw k p =
      let p = p *. Random.State.float rng 1. in
      if p <= limit then k else draw (k + 1) p
    in
    draw 0 1.
  end
