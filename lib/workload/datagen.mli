(** Synthetic data and delta batches realizing a schema's statistics, for
    executing maintenance plans on the storage engine.

    Value conventions (shared with the executor in [vis_maintenance]):
    - key attributes hold distinct consecutive integers starting at 0;
    - a foreign-key attribute (the non-key side of a join whose other side
      is the referenced relation's key) holds a uniformly drawn existing key
      of the referenced relation;
    - a selection attribute holds a uniform value in [0, 1000); a tuple
      passes the condition when the value is below [selectivity · 1000];
    - remaining attributes are payload and may be changed by protected
      updates.

    [generate] raises [Unsupported] for joins where neither side is the
    other relation's key, or when an attribute would need to be both a key
    and a foreign key (e.g. the literal Figure 5 schema, where [S.S0 =
    T.T0] equates two keys) — use {!Schemas.validation} for executable
    instances. *)

exception Unsupported of string

(** Domain of selection attributes; predicates compare against
    [selectivity · resolution]. *)
val sel_resolution : int

type dataset = {
  ds_tuples : int array list array;  (** per relation, in key order *)
  ds_next_key : int array;  (** first unused key per relation *)
}

type batch = {
  b_ins : int array list array;  (** fresh tuples per relation *)
  b_del : int list array;  (** keys to delete, per relation *)
  b_upd : (int * int array) list array;
      (** (key, replacement tuple) — only payload attributes differ *)
}

val generate : rng:Random.State.t -> Vis_catalog.Schema.t -> dataset

(** [deltas ~rng schema dataset] draws a batch with the sizes of the
    schema's delta statistics (rounded); deleted and updated keys are
    distinct existing keys. *)
val deltas : rng:Random.State.t -> Vis_catalog.Schema.t -> dataset -> batch

(** [apply schema dataset batch] — the dataset after the engine applies
    [batch]: tuples with deleted keys removed, updated keys replaced by
    their replacement tuples, inserts appended (their keys continue from
    [ds_next_key], so the key-sorted invariant holds).  This is the logical
    mirror the advisor service keeps per tenant so a configuration swap can
    rebuild a warehouse at the stream's current contents. *)
val apply : Vis_catalog.Schema.t -> dataset -> batch -> dataset

(** [deltas_evolving ~rng schema dataset] is {!deltas} for long-running
    streams: deleted and updated keys are sampled from the tuples actually
    present (by position, not by raw key), so it stays correct after
    earlier batches have made the key space sparse — where {!deltas} would
    draw dangling keys.  Counts still follow the schema's delta statistics,
    capped by the live population.  Draws a disjoint delete/update set per
    relation; deterministic in [rng]. *)
val deltas_evolving :
  rng:Random.State.t -> Vis_catalog.Schema.t -> dataset -> batch

(** [batch_rows b] — total delta rows (inserts + deletes + updates) across
    all relations, the unit of the service's rate monitoring. *)
val batch_rows : batch -> int

(** [passes_selections schema ~rel tuple] — whether the tuple satisfies every
    local selection of its relation. *)
val passes_selections : Vis_catalog.Schema.t -> rel:int -> int array -> bool

(** [protected_attrs schema rel] — attribute names of [rel] that are neither
    its key, nor join attributes, nor selection attributes. *)
val protected_attrs : Vis_catalog.Schema.t -> int -> string list
