(** Seeded synthetic query-log generation.

    A warehouse's workload is modelled as a stream of queries drawn from
    four templates — point lookups, range restrictions, star joins, and
    grouped aggregates — over a {!Vis_catalog.Schema.t}.  Attribute
    popularity is zipf-weighted over the schema's query-driven attributes
    (join and local-selection predicates, the same universe the
    candidate-index enumeration draws on), and a {!Stream.drift} profile
    evolves the skew over the log's 64 logical ticks: a drift factor above
    1 flattens the zipf exponent (the workload spreads onto the tail), one
    below 1 sharpens it.

    Generation is a pure function of [(seed, n, zipf, drift, schema)] —
    the same determinism contract as {!Stream.arrivals} — so mined
    candidate sets, and therefore the whole optimizer pipeline, replay
    bit-identically. *)

type template = Point | Range | Star_join | Aggregate

val template_name : template -> string

type query = {
  q_tick : int;  (** logical tick in [0, 64) the query arrived at *)
  q_template : template;
  q_rels : Vis_util.Bitset.t;  (** base relations the query touches *)
  q_attrs : (int * string) list;
      (** accessed [(relation, attribute)] pairs — join, restriction and
          grouping attributes, deduplicated, in access order *)
}

type log = query list

(** [generate ~seed schema] draws [n] queries (default 512).  [zipf]
    (default 1.2) is the popularity skew [s]; 0 makes every attribute
    equally likely.  [drift] (default [Constant]) evolves the skew over
    the log.  The empty list is returned when the schema has no join or
    selection attributes (nothing to access, nothing to mine). *)
val generate :
  ?n:int ->
  ?zipf:float ->
  ?drift:Stream.drift ->
  seed:int ->
  Vis_catalog.Schema.t ->
  log

(** The query-driven attribute universe of a schema, in the deterministic
    rank order the generator uses (per relation: join attributes then
    selection attributes). *)
val attr_universe : Vis_catalog.Schema.t -> (int * string) array
