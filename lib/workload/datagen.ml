module Schema = Vis_catalog.Schema

exception Unsupported of string

let sel_resolution = 1000

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

type dataset = { ds_tuples : int array list array; ds_next_key : int array }

type batch = {
  b_ins : int array list array;
  b_del : int list array;
  b_upd : (int * int array) list array;
}

(* Per attribute of a relation: how to draw its value. *)
type role =
  | Key
  | Fk of int  (* referenced relation; draw an existing key *)
  | Sel of float  (* selectivity; uniform over [0, sel_resolution) *)
  | Payload

let roles schema rel =
  let r = Schema.relation schema rel in
  List.map
    (fun attr ->
      let is_key = String.equal attr r.Schema.key_attr in
      let fk_target =
        List.fold_left
          (fun acc (j : Schema.join) ->
            let referenced this_rel this_attr other_rel other_attr =
              (* this side is the FK when the other side is the key *)
              this_rel = rel
              && String.equal this_attr attr
              && String.equal other_attr
                   (Schema.relation schema other_rel).Schema.key_attr
            in
            if referenced j.Schema.left_rel j.Schema.left_attr j.Schema.right_rel j.Schema.right_attr
            then Some j.Schema.right_rel
            else if
              referenced j.Schema.right_rel j.Schema.right_attr j.Schema.left_rel j.Schema.left_attr
            then Some j.Schema.left_rel
            else acc)
          None schema.Schema.joins
      in
      let in_some_join =
        List.exists
          (fun (j : Schema.join) ->
            (j.Schema.left_rel = rel && String.equal j.Schema.left_attr attr)
            || (j.Schema.right_rel = rel && String.equal j.Schema.right_attr attr))
          schema.Schema.joins
      in
      let sel =
        List.fold_left
          (fun acc (s : Schema.selection) ->
            if s.Schema.sel_rel = rel && String.equal s.Schema.sel_attr attr then
              Some s.Schema.selectivity
            else acc)
          None schema.Schema.selections
      in
      match (is_key, fk_target, sel) with
      | true, Some _, _ ->
          unsupported "%s.%s is both a key and a foreign key" r.Schema.rel_name attr
      | true, None, Some _ ->
          unsupported "%s.%s is both a key and a selection attribute"
            r.Schema.rel_name attr
      | true, None, None ->
          (* A key being joined from elsewhere is fine: the other side is
             the foreign key. *)
          Key
      | false, Some _, Some _ ->
          unsupported "%s.%s is both a foreign key and a selection attribute"
            r.Schema.rel_name attr
      | false, Some target, None -> Fk target
      | false, None, Some s ->
          if in_some_join then
            unsupported "%s.%s is both a join and a selection attribute"
              r.Schema.rel_name attr
          else Sel s
      | false, None, None ->
          if in_some_join then
            unsupported
              "%s.%s joins an attribute that is not the other side's key"
              r.Schema.rel_name attr
          else Payload)
    r.Schema.attrs

let draw_tuple ~rng schema rel ~key =
  let cards =
    Array.map (fun (r : Schema.relation) -> int_of_float r.Schema.card)
      schema.Schema.relations
  in
  roles schema rel
  |> List.map (fun role ->
         match role with
         | Key -> key
         | Fk target -> Random.State.int rng (max 1 cards.(target))
         | Sel _ -> Random.State.int rng sel_resolution
         | Payload -> Random.State.int rng 1_000_000)
  |> Array.of_list

let generate ~rng schema =
  let n = Schema.n_relations schema in
  let ds_tuples =
    Array.init n (fun rel ->
        let card = int_of_float (Schema.relation schema rel).Schema.card in
        List.init card (fun key -> draw_tuple ~rng schema rel ~key))
  in
  let ds_next_key =
    Array.init n (fun rel -> int_of_float (Schema.relation schema rel).Schema.card)
  in
  { ds_tuples; ds_next_key }

let passes_selections schema ~rel tuple =
  List.for_all
    (fun (s : Schema.selection) ->
      if s.Schema.sel_rel <> rel then true
      else
        let pos = Schema.attr_pos schema rel s.Schema.sel_attr in
        tuple.(pos) < int_of_float (s.Schema.selectivity *. float_of_int sel_resolution))
    schema.Schema.selections

let protected_attrs schema rel =
  let r = Schema.relation schema rel in
  List.filter
    (fun attr ->
      (not (String.equal attr r.Schema.key_attr))
      && (not (List.mem attr (Schema.join_attrs schema rel)))
      && not (List.mem attr (Schema.selection_attrs schema rel)))
    r.Schema.attrs

(* Draw [count] distinct values from [0, bound) excluding [avoid]. *)
let sample_distinct ~rng ~count ~bound avoid =
  let taken = Hashtbl.create (2 * count) in
  List.iter (fun k -> Hashtbl.replace taken k ()) avoid;
  let rec draw acc remaining guard =
    if remaining = 0 || guard > 100 * count then acc
    else
      let k = Random.State.int rng bound in
      if Hashtbl.mem taken k then draw acc remaining (guard + 1)
      else begin
        Hashtbl.replace taken k ();
        draw (k :: acc) (remaining - 1) guard
      end
  in
  draw [] count 0

let deltas ~rng schema dataset =
  let n = Schema.n_relations schema in
  let b_ins =
    Array.init n (fun rel ->
        let d = Schema.delta schema rel in
        let count = int_of_float (Float.round d.Schema.n_ins) in
        let base = dataset.ds_next_key.(rel) in
        List.init count (fun i -> draw_tuple ~rng schema rel ~key:(base + i)))
  in
  let b_del =
    Array.init n (fun rel ->
        let d = Schema.delta schema rel in
        let count = int_of_float (Float.round d.Schema.n_del) in
        sample_distinct ~rng ~count ~bound:dataset.ds_next_key.(rel) [])
  in
  let b_upd =
    Array.init n (fun rel ->
        let d = Schema.delta schema rel in
        let count = int_of_float (Float.round d.Schema.n_upd) in
        let prot = protected_attrs schema rel in
        if prot = [] then []
        else begin
          let keys =
            sample_distinct ~rng ~count ~bound:dataset.ds_next_key.(rel)
              b_del.(rel)
          in
          let originals = Array.of_list dataset.ds_tuples.(rel) in
          List.filter_map
            (fun key ->
              if key >= Array.length originals then None
              else begin
                let tuple = Array.copy originals.(key) in
                List.iter
                  (fun attr ->
                    let pos = Schema.attr_pos schema rel attr in
                    tuple.(pos) <- Random.State.int rng 1_000_000)
                  prot;
                Some (key, tuple)
              end)
            keys
        end)
  in
  { b_ins; b_del; b_upd }

let key_pos schema rel =
  Schema.attr_pos schema rel (Schema.relation schema rel).Schema.key_attr

let apply schema dataset batch =
  let n = Array.length dataset.ds_tuples in
  let ds_tuples =
    Array.init n (fun rel ->
        let kp = key_pos schema rel in
        let dels = Hashtbl.create 16 in
        List.iter (fun k -> Hashtbl.replace dels k ()) batch.b_del.(rel);
        let upds = Hashtbl.create 16 in
        List.iter
          (fun (k, tuple) -> Hashtbl.replace upds k tuple)
          batch.b_upd.(rel);
        let kept =
          List.filter_map
            (fun tuple ->
              let k = tuple.(kp) in
              if Hashtbl.mem dels k then None
              else
                match Hashtbl.find_opt upds k with
                | Some replacement -> Some replacement
                | None -> Some tuple)
            dataset.ds_tuples.(rel)
        in
        (* Inserted keys start at [ds_next_key] and ascend, so appending
           preserves the key-sorted invariant. *)
        kept @ batch.b_ins.(rel))
  in
  let ds_next_key =
    Array.init n (fun rel ->
        dataset.ds_next_key.(rel) + List.length batch.b_ins.(rel))
  in
  { ds_tuples; ds_next_key }

let deltas_evolving ~rng schema dataset =
  let n = Schema.n_relations schema in
  let b_ins =
    Array.init n (fun rel ->
        let d = Schema.delta schema rel in
        let count = int_of_float (Float.round d.Schema.n_ins) in
        let base = dataset.ds_next_key.(rel) in
        List.init count (fun i -> draw_tuple ~rng schema rel ~key:(base + i)))
  in
  (* Deletes and updates are drawn as positions into the current tuple list
     (not raw keys as in {!deltas}): after earlier batches removed tuples
     the key space is sparse, and only positions are guaranteed to name
     live tuples. *)
  let tuples = Array.map Array.of_list dataset.ds_tuples in
  let del_pos =
    Array.init n (fun rel ->
        let d = Schema.delta schema rel in
        let count = int_of_float (Float.round d.Schema.n_del) in
        let bound = Array.length tuples.(rel) in
        if bound = 0 || count = 0 then []
        else sample_distinct ~rng ~count:(min count bound) ~bound [])
  in
  let b_del =
    Array.init n (fun rel ->
        let kp = key_pos schema rel in
        List.map (fun i -> tuples.(rel).(i).(kp)) del_pos.(rel))
  in
  let b_upd =
    Array.init n (fun rel ->
        let d = Schema.delta schema rel in
        let count = int_of_float (Float.round d.Schema.n_upd) in
        let prot = protected_attrs schema rel in
        let bound = Array.length tuples.(rel) in
        let avail = bound - List.length del_pos.(rel) in
        if prot = [] || count = 0 || avail <= 0 then []
        else begin
          let kp = key_pos schema rel in
          let poss =
            sample_distinct ~rng ~count:(min count avail) ~bound
              del_pos.(rel)
          in
          List.map
            (fun i ->
              let tuple = Array.copy tuples.(rel).(i) in
              List.iter
                (fun attr ->
                  let pos = Schema.attr_pos schema rel attr in
                  tuple.(pos) <- Random.State.int rng 1_000_000)
                prot;
              (tuple.(kp), tuple))
            poss
        end)
  in
  { b_ins; b_del; b_upd }

let batch_rows batch =
  let count per = Array.fold_left (fun acc l -> acc + List.length l) 0 per in
  count batch.b_ins + count batch.b_del + count batch.b_upd
