module Bitset = Vis_util.Bitset
module Schema = Vis_catalog.Schema

type template = Point | Range | Star_join | Aggregate

let template_name = function
  | Point -> "point"
  | Range -> "range"
  | Star_join -> "star_join"
  | Aggregate -> "aggregate"

type query = {
  q_tick : int;
  q_template : template;
  q_rels : Bitset.t;
  q_attrs : (int * string) list;
}

type log = query list

(* The query-driven attribute universe, in deterministic schema order:
   per relation, join attributes then local-selection attributes.  These
   are exactly the attributes the candidate-index enumeration draws on
   (FST88 / Section 3.1 minus the maintenance-driven keys), so a query
   only ever "accesses" attributes the optimizer could index. *)
let attr_universe schema =
  let n = Schema.n_relations schema in
  let seen : (int * string, unit) Hashtbl.t = Hashtbl.create 32 in
  let acc = ref [] in
  for i = 0 to n - 1 do
    List.iter
      (fun name ->
        if not (Hashtbl.mem seen (i, name)) then begin
          Hashtbl.add seen (i, name) ();
          acc := (i, name) :: !acc
        end)
      (Schema.join_attrs schema i @ Schema.selection_attrs schema i)
  done;
  Array.of_list (List.rev !acc)

(* Weighted draw over [weights]; total is strictly positive because every
   zipf weight is. *)
let weighted_pick rng weights =
  let total = Array.fold_left ( +. ) 0. weights in
  let x = Random.State.float rng total in
  let n = Array.length weights in
  let rec go i acc =
    if i >= n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.

let dedup_attrs attrs =
  let seen : (int * string, unit) Hashtbl.t = Hashtbl.create 8 in
  List.filter
    (fun a ->
      if Hashtbl.mem seen a then false
      else begin
        Hashtbl.add seen a ();
        true
      end)
    attrs

let generate ?(n = 512) ?(zipf = 1.2) ?(drift = Stream.Constant) ~seed schema =
  if n < 0 then invalid_arg "Querygen.generate: n must be >= 0";
  let universe = attr_universe schema in
  let n_attrs = Array.length universe in
  if n_attrs = 0 then []
  else begin
    let rng = Random.State.make [| seed; 0x9e7109 |] in
    let joins = Array.of_list schema.Schema.joins in
    let n_joins = Array.length joins in
    (* Rank of each attribute in the popularity order = its universe
       position; drift flattens (factor > 1) or sharpens (factor < 1) the
       zipf skew over time, shifting which attribute sets are frequent. *)
    let weights_at tick =
      let f = Float.max 0.05 (Stream.drift_factor drift ~tick) in
      let s = zipf /. f in
      Array.init n_attrs (fun rank -> Stream.zipf_weight ~s ~rank)
    in
    (* A join's popularity is its more-popular endpoint attribute's. *)
    let attr_rank : (int * string, int) Hashtbl.t = Hashtbl.create n_attrs in
    Array.iteri (fun rank a -> Hashtbl.replace attr_rank a rank) universe;
    let join_weight weights (j : Schema.join) =
      let w_of rel name =
        match Hashtbl.find_opt attr_rank (rel, name) with
        | Some rank -> weights.(rank)
        | None -> 0.
      in
      Float.max
        (w_of j.Schema.left_rel j.Schema.left_attr)
        (w_of j.Schema.right_rel j.Schema.right_attr)
    in
    let pick_attr weights = universe.(weighted_pick rng weights) in
    (* Weighted pick restricted to attributes satisfying [p]; None when no
       attribute does. *)
    let pick_attr_where weights p =
      let masked =
        Array.mapi (fun i w -> if p universe.(i) then w else 0.) weights
      in
      if Array.for_all (fun w -> w = 0.) masked then None
      else Some universe.(weighted_pick rng masked)
    in
    let sel_attrs : (int * string, unit) Hashtbl.t = Hashtbl.create 16 in
    for i = 0 to Schema.n_relations schema - 1 do
      List.iter
        (fun name -> Hashtbl.replace sel_attrs (i, name) ())
        (Schema.selection_attrs schema i)
    done;
    let is_sel a = Hashtbl.mem sel_attrs a in
    let ticks = 64 in
    let query i =
      let tick = if n <= 1 then 0 else i * ticks / n in
      let weights = weights_at tick in
      let u = Random.State.float rng 1. in
      let template =
        if n_joins = 0 then (if u < 0.6 then Point else Range)
        else if u < 0.25 then Point
        else if u < 0.45 then Range
        else if u < 0.8 then Star_join
        else Aggregate
      in
      let single_rel_query t =
        let (rel, name) =
          match
            if t = Range then pick_attr_where weights is_sel else None
          with
          | Some a -> a
          | None -> pick_attr weights
        in
        {
          q_tick = tick;
          q_template = t;
          q_rels = Bitset.singleton rel;
          q_attrs = [ (rel, name) ];
        }
      in
      match template with
      | Point -> single_rel_query Point
      | Range -> single_rel_query Range
      | Star_join | Aggregate ->
          let k = 1 + Random.State.int rng (Int.min 3 n_joins) in
          let jw = Array.map (join_weight weights) joins in
          let chosen : (int, unit) Hashtbl.t = Hashtbl.create 4 in
          for _ = 1 to k do
            Hashtbl.replace chosen (weighted_pick rng jw) ()
          done;
          let rels, attrs =
            Array.to_list joins
            |> List.mapi (fun idx j -> (idx, j))
            |> List.filter (fun (idx, _) -> Hashtbl.mem chosen idx)
            |> List.fold_left
                 (fun (rels, attrs) (_, (j : Schema.join)) ->
                   ( Bitset.add j.Schema.left_rel
                       (Bitset.add j.Schema.right_rel rels),
                     (j.Schema.right_rel, j.Schema.right_attr)
                     :: (j.Schema.left_rel, j.Schema.left_attr)
                     :: attrs ))
                 (Bitset.empty, [])
          in
          let involved a = Bitset.mem (fst a) rels in
          let attrs =
            (* A restriction (star-join) or grouping (aggregate) on one of
               the joined relations, when the schema offers one. *)
            let want_extra =
              template = Aggregate || Random.State.float rng 1. < 0.5
            in
            if not want_extra then attrs
            else
              match
                pick_attr_where weights (fun a -> is_sel a && involved a)
              with
              | Some a -> a :: attrs
              | None -> attrs
          in
          {
            q_tick = tick;
            q_template = template;
            q_rels = rels;
            q_attrs = dedup_attrs (List.rev attrs);
          }
    in
    List.init n query
  end
