module Bitset = Vis_util.Bitset

type cached = { c_card : float; c_width : int; c_pages : float }

type t = {
  schema : Schema.t;
  eager : cached array;
      (* complete subset table indexed by the set's bit mask; empty when the
         schema is past the eager cutoff *)
  by_set : (int, cached) Hashtbl.t;  (* lazy path only *)
  lock : Mutex.t;  (* guards by_set *)
  eff : float array;  (* σ_i · T_i *)
  sel : float array;  (* combined selectivity per relation *)
}

let schema t = t.schema

let tuples_per_page t i =
  let r = Schema.relation t.schema i in
  Float.max 1. (float_of_int (t.schema.Schema.page_bytes / r.Schema.tuple_bytes))

let base_card t i = (Schema.relation t.schema i).Schema.card

let base_pages t i =
  Float.max 1. (Vis_util.Num.fceil (base_card t i /. tuples_per_page t i))

let eff_card t i = t.eff.(i)

let compute_set t set =
  let card =
    Bitset.fold (fun i acc -> acc *. t.eff.(i)) set 1.0
    *. List.fold_left
         (fun acc j -> acc *. j.Schema.join_sel)
         1.0
         (Schema.joins_within t.schema set)
  in
  let width =
    Bitset.fold
      (fun i acc -> acc + (Schema.relation t.schema i).Schema.tuple_bytes)
      set 0
  in
  let tpp =
    Float.max 1. (float_of_int (t.schema.Schema.page_bytes / max 1 width))
  in
  let pages =
    if card <= 0. then 0. else Float.max 1. (Vis_util.Num.fceil (card /. tpp))
  in
  { c_card = card; c_width = width; c_pages = pages }

(* Subset statistics are queried from every worker domain during parallel
   search.  For the schema sizes of the paper (and any realistic star
   schema) we precompute all [2^n] subsets up front into a flat array
   indexed by the set's bit mask — lookups are a bounds check and a load,
   no hashing, no locking.  Past the precomputation cutoff, [get] memoizes
   lazily in [by_set] under [lock]. *)
let eager_cutoff = 12

let create schema =
  let n = Schema.n_relations schema in
  let sel = Array.init n (Schema.combined_selectivity schema) in
  let eff =
    Array.init n (fun i -> sel.(i) *. (Schema.relation schema i).Schema.card)
  in
  let complete = n <= eager_cutoff in
  let t =
    {
      schema;
      eager = [||];
      by_set = Hashtbl.create (if complete then 1 else 64);
      lock = Mutex.create ();
      eff;
      sel;
    }
  in
  if complete then
    { t with eager = Array.init (1 lsl n) (fun mask -> compute_set t (Bitset.of_int mask)) }
  else t

let get t set =
  let key = Bitset.to_int set in
  if key >= 0 && key < Array.length t.eager then Array.unsafe_get t.eager key
  else if Array.length t.eager > 0 then
    (* complete table, out-of-universe set: compute without mutating shared
       state *)
    compute_set t set
  else begin
    Mutex.lock t.lock;
    match Hashtbl.find_opt t.by_set key with
    | Some c ->
        Mutex.unlock t.lock;
        c
    | None ->
        let c =
          match compute_set t set with
          | c -> c
          | exception e ->
              Mutex.unlock t.lock;
              raise e
        in
        Hashtbl.add t.by_set key c;
        Mutex.unlock t.lock;
        c
  end

let view_card t set = (get t set).c_card

let view_width t set = (get t set).c_width

let view_pages t set = (get t set).c_pages

let pages_of_tuples t ~set ~tuples =
  if tuples <= 0. then 0.
  else
    let width = max 1 (view_width t set) in
    let tpp =
      Float.max 1. (float_of_int (t.schema.Schema.page_bytes / width))
    in
    Float.max 1. (Vis_util.Num.fceil (tuples /. tpp))

let matches_per_join_probe t ~view ~join =
  view_card t view *. join.Schema.join_sel

let matches_per_key t ~view ~rel =
  if not (Bitset.mem rel view) then
    invalid_arg "Derived.matches_per_key: relation not in view";
  view_card t view /. base_card t rel

let delta_pages t ~rel ~count =
  if count <= 0. then 0.
  else Float.max 1. (Vis_util.Num.fceil (count /. tuples_per_page t rel))

type index_shape = {
  ix_entries : float;
  ix_leaf_pages : float;
  ix_pages : float;
  ix_height : int;
}

let index_shape t ~entries =
  let epp =
    Float.max 2.
      (float_of_int (t.schema.Schema.page_bytes / t.schema.Schema.index_entry_bytes))
  in
  if entries <= 0. then
    { ix_entries = 0.; ix_leaf_pages = 1.; ix_pages = 1.; ix_height = 1 }
  else begin
    let leaf = Float.max 1. (Vis_util.Num.fceil (entries /. epp)) in
    let rec levels pages height total =
      if pages <= 1. then (height, total)
      else
        let above = Vis_util.Num.fceil (pages /. epp) in
        levels above (height + 1) (total +. above)
    in
    let height, total = levels leaf 1 leaf in
    { ix_entries = entries; ix_leaf_pages = leaf; ix_pages = total; ix_height = height }
  end
