(** Random bounded VIS problem instances for the differential-validation
    fuzzer.

    Two generator profiles:

    - {!executable} draws connected {e tree-shaped} join graphs whose every
      join is a true foreign key held in a dedicated attribute (the
      {!Vis_workload.Datagen} value conventions), with a payload attribute
      per relation so protected updates are executable — every schema it
      produces can be loaded into the storage engine and refreshed for real,
      and its declared join selectivities exactly match the synthetic data;
    - {!abstract} delegates to {!Vis_workload.Schemas.random}: chain joins
      with possibly non-FK selectivities and selections that may collide
      with join attributes.  Such schemas exercise the cost model and the
      search algorithms but are not executable (oracles that need the
      engine skip them).

    All draws are bounded so exhaustive enumeration stays feasible on most
    instances: 2–4 relations, cardinalities in the hundreds, one page size
    from a small menu.  Determinism: every schema is a pure function of the
    supplied [rng] state. *)

(** [schema ~rng ()] draws from a mixture of the two profiles (3:1 in
    favor of {!executable}). *)
val schema : rng:Random.State.t -> unit -> Vis_catalog.Schema.t

(** [executable ~rng ()] — Datagen-compatible tree-join instances. *)
val executable : rng:Random.State.t -> unit -> Vis_catalog.Schema.t

(** [abstract ~rng ()] — {!Vis_workload.Schemas.random} instances. *)
val abstract : rng:Random.State.t -> unit -> Vis_catalog.Schema.t

(** [fk_consistent schema] — true when every join's selectivity equals
    [1 / T(key side)] (the foreign-key semantics the synthetic data
    realizes), so measured I/O can meaningfully be compared with the
    model's prediction. *)
val fk_consistent : Vis_catalog.Schema.t -> bool
