module Schema = Vis_catalog.Schema

(* Rebuild a schema through [Schema.make] (revalidating) with some fields
   replaced; [None] when the result is not a valid schema. *)
let remake (s : Schema.t) ?relations ?selections ?joins ?deltas () =
  let relations =
    match relations with Some r -> r | None -> Array.to_list s.Schema.relations
  in
  let deltas =
    match deltas with Some d -> d | None -> Array.to_list s.Schema.deltas
  in
  let selections =
    match selections with Some l -> l | None -> s.Schema.selections
  in
  let joins = match joins with Some j -> j | None -> s.Schema.joins in
  match
    Schema.make ~page_bytes:s.Schema.page_bytes ~mem_pages:s.Schema.mem_pages
      ~index_entry_bytes:s.Schema.index_entry_bytes ~relations ~selections
      ~joins ~deltas ()
  with
  | s' -> Some s'
  | exception _ -> None

let drop_relation (s : Schema.t) i =
  let n = Schema.n_relations s in
  if n < 2 then None
  else begin
    let remap j = if j > i then j - 1 else j in
    let relations =
      List.filteri (fun j _ -> j <> i) (Array.to_list s.Schema.relations)
    in
    let deltas =
      List.filteri (fun j _ -> j <> i) (Array.to_list s.Schema.deltas)
    in
    let selections =
      List.filter_map
        (fun (sel : Schema.selection) ->
          if sel.Schema.sel_rel = i then None
          else Some { sel with Schema.sel_rel = remap sel.Schema.sel_rel })
        s.Schema.selections
    in
    let joins =
      List.filter_map
        (fun (j : Schema.join) ->
          if j.Schema.left_rel = i || j.Schema.right_rel = i then None
          else
            Some
              {
                j with
                Schema.left_rel = remap j.Schema.left_rel;
                right_rel = remap j.Schema.right_rel;
              })
        s.Schema.joins
    in
    match remake s ~relations ~selections ~joins ~deltas () with
    | Some s' when Schema.connected s' (Schema.all_relations s') -> Some s'
    | _ -> None
  end

let drop_selection (s : Schema.t) k =
  if k >= List.length s.Schema.selections then None
  else
    remake s ~selections:(List.filteri (fun j _ -> j <> k) s.Schema.selections) ()

let zero_delta (s : Schema.t) i field =
  let d = s.Schema.deltas.(i) in
  let d' =
    match field with
    | `Ins when d.Schema.n_ins > 0. -> Some { d with Schema.n_ins = 0. }
    | `Del when d.Schema.n_del > 0. -> Some { d with Schema.n_del = 0. }
    | `Upd when d.Schema.n_upd > 0. -> Some { d with Schema.n_upd = 0. }
    | _ -> None
  in
  match d' with
  | None -> None
  | Some d' ->
      remake s
        ~deltas:
          (List.mapi
             (fun j old -> if j = i then d' else old)
             (Array.to_list s.Schema.deltas))
        ()

let with_relation (s : Schema.t) i f =
  let r = s.Schema.relations.(i) in
  match f r with
  | None -> None
  | Some r' ->
      remake s
        ~relations:
          (List.mapi
             (fun j old -> if j = i then r' else old)
             (Array.to_list s.Schema.relations))
        ()

let round_card (s : Schema.t) i target =
  with_relation s i (fun r ->
      if r.Schema.card > target then Some { r with Schema.card = target }
      else None)

let halve_card (s : Schema.t) i =
  with_relation s i (fun r ->
      if r.Schema.card > 100. then
        Some { r with Schema.card = Float.round (r.Schema.card /. 2.) }
      else None)

let normalize_width (s : Schema.t) i =
  with_relation s i (fun r ->
      let w = 8 * List.length r.Schema.attrs in
      if r.Schema.tuple_bytes <> w then Some { r with Schema.tuple_bytes = w }
      else None)

let round_selectivity (s : Schema.t) k =
  match List.nth_opt s.Schema.selections k with
  | None -> None
  | Some sel ->
      if sel.Schema.selectivity = 0.5 then None
      else
        remake s
          ~selections:
            (List.mapi
               (fun j old ->
                 if j = k then { old with Schema.selectivity = 0.5 } else old)
               s.Schema.selections)
          ()

let round_deltas (s : Schema.t) =
  let rounded =
    List.map
      (fun (d : Schema.delta) ->
        {
          Schema.n_ins = Float.round d.Schema.n_ins;
          n_del = Float.round d.Schema.n_del;
          n_upd = Float.round d.Schema.n_upd;
        })
      (Array.to_list s.Schema.deltas)
  in
  if rounded = Array.to_list s.Schema.deltas then None
  else remake s ~deltas:rounded ()

let set_physical (s : Schema.t) ~page_bytes ~mem_pages ~index_entry_bytes =
  if
    s.Schema.page_bytes = page_bytes
    && s.Schema.mem_pages = mem_pages
    && s.Schema.index_entry_bytes = index_entry_bytes
  then None
  else
    match
      Schema.make ~page_bytes ~mem_pages ~index_entry_bytes
        ~relations:(Array.to_list s.Schema.relations)
        ~selections:s.Schema.selections ~joins:s.Schema.joins
        ~deltas:(Array.to_list s.Schema.deltas)
        ()
    with
    | s' -> Some s'
    | exception _ -> None

let candidates (s : Schema.t) =
  let n = Schema.n_relations s in
  let n_sel = List.length s.Schema.selections in
  let idx f count = List.filter_map f (List.init count Fun.id) in
  idx (drop_relation s) n
  @ idx (drop_selection s) n_sel
  @ idx (fun i -> zero_delta s i `Upd) n
  @ idx (fun i -> zero_delta s i `Del) n
  @ idx (fun i -> zero_delta s i `Ins) n
  @ idx (fun i -> round_card s i 50.) n
  @ idx (halve_card s) n
  @ idx (round_selectivity s) n_sel
  @ Option.to_list (round_deltas s)
  @ Option.to_list
      (set_physical s ~page_bytes:512 ~mem_pages:50 ~index_entry_bytes:16)
  @ idx (normalize_width s) n

let still_fails ~oracle ~ctx s =
  match oracle.Oracles.o_check (ctx ()) s with
  | Oracles.Fail _ -> true
  | Oracles.Pass | Oracles.Skip _ -> false
  (* The runner treats an oracle exception as a failure; preserve that
     through shrinking so crashing repros also minimize. *)
  | exception _ -> true

let shrink ?(max_steps = 200) ~oracle ~ctx schema =
  let rec go steps s =
    if steps >= max_steps then s
    else
      match List.find_opt (still_fails ~oracle ~ctx) (candidates s) with
      | Some smaller -> go (steps + 1) smaller
      | None -> s
  in
  go 0 schema
