(** Replayable failure reproductions.

    A repro is one JSON document carrying the (shrunk) schema that makes an
    oracle fail, the oracle's name and failure message, and the seed/trial
    coordinates of the run that found it — enough for
    [visfuzz --replay repro.json] to re-execute the check deterministically,
    and for a human to read the instance at a glance.

    Schemas round-trip exactly: floats are printed by {!Vis_util.Json} with
    17 significant digits, and {!schema_of_json} rebuilds the schema through
    {!Vis_catalog.Schema.make}, so a loaded repro revalidates. *)

exception Malformed of string

(** Structural schema serialization (all fields, including the physical
    parameters). *)
val schema_to_json : Vis_catalog.Schema.t -> Vis_util.Json.t

(** Raises {!Malformed} (or {!Vis_catalog.Schema.Invalid}) on documents that
    do not describe a valid schema. *)
val schema_of_json : Vis_util.Json.t -> Vis_catalog.Schema.t

type t = {
  r_seed : int;  (** base seed of the fuzz run *)
  r_trial : int;  (** trial index within the run *)
  r_oracle : string;
  r_failure : string;  (** the oracle's failure message *)
  r_schema : Vis_catalog.Schema.t;  (** the shrunk failing instance *)
  r_original : Vis_catalog.Schema.t option;  (** pre-shrink instance *)
}

val to_json : t -> Vis_util.Json.t

val of_json : Vis_util.Json.t -> t

val save : string -> t -> unit

(** Raises {!Malformed} / {!Vis_util.Json.Parse_error} / [Sys_error]. *)
val load : string -> t
