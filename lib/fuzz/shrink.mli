(** Greedy minimization of a failing schema.

    Starting from an instance on which an oracle returns [Fail], repeatedly
    try simplifying transformations — drop a relation (keeping the join
    graph connected), drop a selection, zero a delta component, round
    cardinalities, selectivities and the physical parameters — and keep any
    transformation under which the oracle {e still} fails.  Stops at a
    fixpoint (no candidate keeps the failure) or after [max_steps]
    accepted simplifications.

    The oracle is re-run with a fresh context from [ctx] for every probe,
    so oracles that draw from their context RNG replay deterministically. *)

val shrink :
  ?max_steps:int ->
  oracle:Oracles.t ->
  ctx:(unit -> Oracles.ctx) ->
  Vis_catalog.Schema.t ->
  Vis_catalog.Schema.t

(** The one-step simplification candidates of a schema, simplest-first —
    exposed for tests. Every candidate is a valid schema. *)
val candidates : Vis_catalog.Schema.t -> Vis_catalog.Schema.t list
