module Schema = Vis_catalog.Schema

let attr_bytes = Vis_maintenance.Warehouse.attr_bytes

let name_of i = String.make 1 (Char.chr (Char.code 'A' + i))

(* A connected tree-shaped join graph over [n] relations where every join is
   a genuine foreign key: one side is a dedicated FK attribute, the other is
   the referenced relation's key, and the join selectivity is 1/T(key side).
   This is exactly the class Datagen can realize, so the executed refresh
   matches the declared statistics. *)
let executable ~rng () =
  let n = 2 + Random.State.int rng 3 in
  let cards =
    Array.init n (fun _ -> float_of_int (50 * (1 + Random.State.int rng 20)))
  in
  (* Per relation: key attr, then FK attrs as edges assign them, then an
     optional selection attr, then a payload attr (so protected updates have
     somewhere to land). *)
  let fk_attrs = Array.make n [] in
  let fk_count = Array.make n 0 in
  let fresh_fk i =
    fk_count.(i) <- fk_count.(i) + 1;
    let a = Printf.sprintf "%sf%d" (name_of i) fk_count.(i) in
    fk_attrs.(i) <- a :: fk_attrs.(i);
    a
  in
  let joins =
    List.init (n - 1) (fun k ->
        let child = k + 1 in
        let parent = Random.State.int rng (k + 1) in
        (* Either the child references the parent's key or vice versa. *)
        let holder, target =
          if Random.State.bool rng then (child, parent) else (parent, child)
        in
        {
          Schema.left_rel = holder;
          left_attr = fresh_fk holder;
          right_rel = target;
          right_attr = name_of target ^ "0";
          join_sel = 1. /. cards.(target);
        })
  in
  let selections =
    List.concat
      (List.init n (fun i ->
           if Random.State.int rng 100 < 45 then
             [
               {
                 Schema.sel_rel = i;
                 sel_attr = name_of i ^ "s";
                 selectivity = 0.05 +. Random.State.float rng 0.9;
               };
             ]
           else []))
  in
  let has_sel i =
    List.exists (fun (s : Schema.selection) -> s.Schema.sel_rel = i) selections
  in
  let relations =
    List.init n (fun i ->
        let attrs =
          ((name_of i ^ "0") :: List.rev fk_attrs.(i))
          @ (if has_sel i then [ name_of i ^ "s" ] else [])
          @ [ name_of i ^ "p" ]
        in
        {
          Schema.rel_name = name_of i;
          card = cards.(i);
          tuple_bytes = attr_bytes * List.length attrs;
          key_attr = name_of i ^ "0";
          attrs;
        })
  in
  let deltas =
    List.init n (fun i ->
        let frac () =
          match Random.State.int rng 4 with
          | 0 -> 0.
          | 1 -> 0.002 +. Random.State.float rng 0.01
          | 2 -> 0.01 +. Random.State.float rng 0.04
          | _ -> 0.05 *. Random.State.float rng 1.
        in
        {
          Schema.n_ins = frac () *. cards.(i);
          n_del = frac () *. cards.(i);
          n_upd = (if Random.State.bool rng then frac () /. 2. *. cards.(i) else 0.);
        })
  in
  let page_bytes = [| 256; 512; 1024 |].(Random.State.int rng 3) in
  Schema.make ~page_bytes
    ~mem_pages:(10 + Random.State.int rng 150)
    ~relations ~selections ~joins ~deltas ()

let abstract ~rng () = Vis_workload.Schemas.random ~rng ()

let schema ~rng () =
  if Random.State.int rng 4 = 0 then abstract ~rng () else executable ~rng ()

let fk_consistent schema =
  List.for_all
    (fun (j : Schema.join) ->
      let key_side_card rel attr =
        if String.equal (Schema.relation schema rel).Schema.key_attr attr then
          Some (Schema.relation schema rel).Schema.card
        else None
      in
      let card =
        match key_side_card j.Schema.right_rel j.Schema.right_attr with
        | Some c -> Some c
        | None -> key_side_card j.Schema.left_rel j.Schema.left_attr
      in
      match card with
      | None -> false
      | Some c -> Vis_util.Num.approx_equal ~eps:1e-9 j.Schema.join_sel (1. /. c))
    schema.Schema.joins
