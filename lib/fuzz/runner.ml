module Schema = Vis_catalog.Schema
module Json = Vis_util.Json
module Tableprint = Vis_util.Tableprint

type config = {
  cf_seed : int;
  cf_trials : int;
  cf_time_budget : float option;
  cf_oracles : Oracles.t list;
  cf_max_states : float;
  cf_io_band : float;
  cf_exec_tuples : float;
  cf_jobs : int;
  cf_fault_seed : int;
  cf_fault_rounds : int;
  cf_shrink : bool;
  cf_max_failures : int;
}

let default_config () =
  {
    cf_seed = 0;
    cf_trials = 100;
    cf_time_budget = None;
    cf_oracles = Oracles.all;
    cf_max_states = 20_000.;
    cf_io_band = 25.;
    cf_exec_tuples = 20_000.;
    cf_jobs = 3;
    cf_fault_seed = 0;
    cf_fault_rounds = 1;
    cf_shrink = true;
    cf_max_failures = 20;
  }

type oracle_stats = {
  os_name : string;
  os_pass : int;
  os_skip : int;
  os_fail : int;
  os_seconds : float;
}

type failure = {
  f_trial : int;
  f_oracle : string;
  f_message : string;
  f_schema : Schema.t;
  f_original : Schema.t option;
}

type report = {
  rp_config : config;
  rp_trials_run : int;
  rp_elapsed : float;
  rp_oracles : oracle_stats list;
  rp_failures : failure list;
}

(* The context RNG is keyed by the oracle's position in the full registry,
   not in [cf_oracles], so fuzzing a subset replays the same draws. *)
let registry_index (o : Oracles.t) =
  let rec go i = function
    | [] -> invalid_arg ("unregistered oracle " ^ o.Oracles.o_name)
    | (r : Oracles.t) :: rest -> if r.o_name = o.o_name then i else go (i + 1) rest
  in
  go 0 Oracles.all

let ctx_for cf ~trial o =
  let rng = Random.State.make [| cf.cf_seed; trial; registry_index o |] in
  Oracles.make_ctx ~max_states:cf.cf_max_states ~io_band:cf.cf_io_band
    ~exec_tuples:cf.cf_exec_tuples ~jobs:cf.cf_jobs
    ~fault_seed:cf.cf_fault_seed ~fault_rounds:cf.cf_fault_rounds ~rng ()

let check_once cf ~trial (o : Oracles.t) schema =
  match o.Oracles.o_check (ctx_for cf ~trial o) schema with
  | outcome -> outcome
  | exception e -> Oracles.Fail (Printf.sprintf "exception: %s" (Printexc.to_string e))

let check_schema cf ~trial schema =
  List.map (fun o -> (o.Oracles.o_name, check_once cf ~trial o schema)) cf.cf_oracles

let run cf =
  let t0 = Unix.gettimeofday () in
  let stats =
    List.map
      (fun (o : Oracles.t) ->
        (o.Oracles.o_name, ref { os_name = o.o_name; os_pass = 0; os_skip = 0; os_fail = 0; os_seconds = 0. }))
      cf.cf_oracles
  in
  let failures = ref [] in
  let n_failures = ref 0 in
  let trials_run = ref 0 in
  let out_of_budget () =
    match cf.cf_time_budget with
    | None -> false
    | Some budget -> Unix.gettimeofday () -. t0 >= budget
  in
  (try
     for trial = 0 to cf.cf_trials - 1 do
       if out_of_budget () || !n_failures >= cf.cf_max_failures then raise Exit;
       incr trials_run;
       let rng = Random.State.make [| cf.cf_seed; trial |] in
       let schema = Gen.schema ~rng () in
       List.iter
         (fun (o : Oracles.t) ->
           let cell = List.assoc o.Oracles.o_name stats in
           let t1 = Unix.gettimeofday () in
           let outcome = check_once cf ~trial o schema in
           let dt = Unix.gettimeofday () -. t1 in
           let s = !cell in
           let s = { s with os_seconds = s.os_seconds +. dt } in
           cell :=
             (match outcome with
             | Oracles.Pass -> { s with os_pass = s.os_pass + 1 }
             | Oracles.Skip _ -> { s with os_skip = s.os_skip + 1 }
             | Oracles.Fail message ->
                 incr n_failures;
                 let shrunk =
                   if cf.cf_shrink then
                     Shrink.shrink ~oracle:o
                       ~ctx:(fun () -> ctx_for cf ~trial o)
                       schema
                   else schema
                 in
                 let message =
                   (* Report the failure message of the shrunk instance; it
                      names the same breakage on the smaller schema. *)
                   match check_once cf ~trial o shrunk with
                   | Oracles.Fail m -> m
                   | Oracles.Pass | Oracles.Skip _ -> message
                 in
                 failures :=
                   {
                     f_trial = trial;
                     f_oracle = o.Oracles.o_name;
                     f_message = message;
                     f_schema = shrunk;
                     f_original = (if shrunk = schema then None else Some schema);
                   }
                   :: !failures;
                 { s with os_fail = s.os_fail + 1 }))
         cf.cf_oracles
     done
   with Exit -> ());
  {
    rp_config = cf;
    rp_trials_run = !trials_run;
    rp_elapsed = Unix.gettimeofday () -. t0;
    rp_oracles = List.map (fun (_, cell) -> !cell) stats;
    rp_failures = List.rev !failures;
  }

let failure_to_repro ~seed f =
  {
    Repro.r_seed = seed;
    r_trial = f.f_trial;
    r_oracle = f.f_oracle;
    r_failure = f.f_message;
    r_schema = f.f_schema;
    r_original = f.f_original;
  }

let render rp =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "seed %d: %d trial%s in %.1fs, %d failure%s\n"
       rp.rp_config.cf_seed rp.rp_trials_run
       (if rp.rp_trials_run = 1 then "" else "s")
       rp.rp_elapsed
       (List.length rp.rp_failures)
       (if List.length rp.rp_failures = 1 then "" else "s"));
  let table = Tableprint.create [ "oracle"; "pass"; "skip"; "fail"; "secs" ] in
  List.iter
    (fun s ->
      Tableprint.add_row table
        [
          s.os_name;
          string_of_int s.os_pass;
          string_of_int s.os_skip;
          string_of_int s.os_fail;
          Tableprint.fmt_float ~digits:2 s.os_seconds;
        ])
    rp.rp_oracles;
  Buffer.add_string buf (Tableprint.render table);
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "FAIL trial %d oracle %s: %s\n" f.f_trial f.f_oracle
           f.f_message))
    rp.rp_failures;
  Buffer.contents buf

let report_json rp =
  Json.Obj
    [
      ("seed", Json.Int rp.rp_config.cf_seed);
      ("trials_run", Json.Int rp.rp_trials_run);
      ("elapsed_seconds", Json.Float rp.rp_elapsed);
      ( "oracles",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("name", Json.String s.os_name);
                   ("pass", Json.Int s.os_pass);
                   ("skip", Json.Int s.os_skip);
                   ("fail", Json.Int s.os_fail);
                   ("seconds", Json.Float s.os_seconds);
                 ])
             rp.rp_oracles) );
      ( "failures",
        Json.List
          (List.map
             (fun f ->
               Repro.to_json (failure_to_repro ~seed:rp.rp_config.cf_seed f))
             rp.rp_failures) );
    ]
