module Schema = Vis_catalog.Schema
module Json = Vis_util.Json

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* ------------------------------------------------------------------ *)
(* JSON field access. *)

let get name v =
  match Json.member name v with
  | Json.Null -> malformed "missing field %S" name
  | field -> field

let to_int name = function
  | Json.Int i -> i
  | v -> malformed "field %S: expected an integer, found %s" name (Json.to_string v)

let to_float name = function
  | Json.Int i -> float_of_int i
  | Json.Float x -> x
  | v -> malformed "field %S: expected a number, found %s" name (Json.to_string v)

let to_string name = function
  | Json.String s -> s
  | v -> malformed "field %S: expected a string, found %s" name (Json.to_string v)

let to_list name = function
  | Json.List items -> items
  | v -> malformed "field %S: expected a list, found %s" name (Json.to_string v)

let geti name v = to_int name (get name v)

let getf name v = to_float name (get name v)

let gets name v = to_string name (get name v)

let getl name v = to_list name (get name v)

(* ------------------------------------------------------------------ *)
(* Schema serialization. *)

let schema_to_json (s : Schema.t) =
  Json.Obj
    [
      ("page_bytes", Json.Int s.Schema.page_bytes);
      ("mem_pages", Json.Int s.Schema.mem_pages);
      ("index_entry_bytes", Json.Int s.Schema.index_entry_bytes);
      ( "relations",
        Json.List
          (Array.to_list s.Schema.relations
          |> List.map (fun (r : Schema.relation) ->
                 Json.Obj
                   [
                     ("name", Json.String r.Schema.rel_name);
                     ("cardinality", Json.Float r.Schema.card);
                     ("tuple_bytes", Json.Int r.Schema.tuple_bytes);
                     ("key", Json.String r.Schema.key_attr);
                     ( "attrs",
                       Json.List
                         (List.map (fun a -> Json.String a) r.Schema.attrs) );
                   ])) );
      ( "selections",
        Json.List
          (List.map
             (fun (sel : Schema.selection) ->
               Json.Obj
                 [
                   ("rel", Json.Int sel.Schema.sel_rel);
                   ("attr", Json.String sel.Schema.sel_attr);
                   ("selectivity", Json.Float sel.Schema.selectivity);
                 ])
             s.Schema.selections) );
      ( "joins",
        Json.List
          (List.map
             (fun (j : Schema.join) ->
               Json.Obj
                 [
                   ("left_rel", Json.Int j.Schema.left_rel);
                   ("left_attr", Json.String j.Schema.left_attr);
                   ("right_rel", Json.Int j.Schema.right_rel);
                   ("right_attr", Json.String j.Schema.right_attr);
                   ("selectivity", Json.Float j.Schema.join_sel);
                 ])
             s.Schema.joins) );
      ( "deltas",
        Json.List
          (Array.to_list s.Schema.deltas
          |> List.map (fun (d : Schema.delta) ->
                 Json.Obj
                   [
                     ("insert", Json.Float d.Schema.n_ins);
                     ("delete", Json.Float d.Schema.n_del);
                     ("update", Json.Float d.Schema.n_upd);
                   ])) );
    ]

let schema_of_json v =
  let relations =
    List.map
      (fun r ->
        {
          Schema.rel_name = gets "name" r;
          card = getf "cardinality" r;
          tuple_bytes = geti "tuple_bytes" r;
          key_attr = gets "key" r;
          attrs = List.map (to_string "attrs") (getl "attrs" r);
        })
      (getl "relations" v)
  in
  let selections =
    List.map
      (fun s ->
        {
          Schema.sel_rel = geti "rel" s;
          sel_attr = gets "attr" s;
          selectivity = getf "selectivity" s;
        })
      (getl "selections" v)
  in
  let joins =
    List.map
      (fun j ->
        {
          Schema.left_rel = geti "left_rel" j;
          left_attr = gets "left_attr" j;
          right_rel = geti "right_rel" j;
          right_attr = gets "right_attr" j;
          join_sel = getf "selectivity" j;
        })
      (getl "joins" v)
  in
  let deltas =
    List.map
      (fun d ->
        {
          Schema.n_ins = getf "insert" d;
          n_del = getf "delete" d;
          n_upd = getf "update" d;
        })
      (getl "deltas" v)
  in
  Schema.make ~page_bytes:(geti "page_bytes" v) ~mem_pages:(geti "mem_pages" v)
    ~index_entry_bytes:(geti "index_entry_bytes" v)
    ~relations ~selections ~joins ~deltas ()

(* ------------------------------------------------------------------ *)
(* The repro document. *)

type t = {
  r_seed : int;
  r_trial : int;
  r_oracle : string;
  r_failure : string;
  r_schema : Schema.t;
  r_original : Schema.t option;
}

let to_json r =
  Json.Obj
    ([
       ("seed", Json.Int r.r_seed);
       ("trial", Json.Int r.r_trial);
       ("oracle", Json.String r.r_oracle);
       ("failure", Json.String r.r_failure);
       ("schema", schema_to_json r.r_schema);
     ]
    @
    match r.r_original with
    | None -> []
    | Some s -> [ ("original_schema", schema_to_json s) ])

let of_json v =
  {
    r_seed = geti "seed" v;
    r_trial = geti "trial" v;
    r_oracle = gets "oracle" v;
    r_failure = gets "failure" v;
    r_schema = schema_of_json (get "schema" v);
    r_original =
      (match Json.member "original_schema" v with
      | Json.Null -> None
      | s -> Some (schema_of_json s));
  }

let save path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~indent:2 (to_json r));
      output_char oc '\n')

let load path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_json (Json.of_string text)
