(** The fuzzing loop: generate, check, shrink, report.

    Every trial draws one schema from {!Gen.schema} with an RNG seeded from
    [(seed, trial)], then runs each selected oracle with a context whose RNG
    is seeded from [(seed, trial, oracle index in the registry)].  The same
    [(seed, trial)] therefore always replays to the same outcome, and the
    outcome of one oracle never depends on which other oracles were
    selected.  An exception escaping an oracle is recorded as a failure
    (message ["exception: ..."]), not a crash of the fuzzer. *)

type config = {
  cf_seed : int;
  cf_trials : int;  (** maximum number of trials *)
  cf_time_budget : float option;
      (** wall-clock budget in seconds; the loop stops before starting a
          trial once the budget is exhausted *)
  cf_oracles : Oracles.t list;  (** in registry order *)
  cf_max_states : float;
  cf_io_band : float;
  cf_exec_tuples : float;
  cf_jobs : int;
  cf_fault_seed : int;
      (** folded into the crash-recovery oracle's fault plans *)
  cf_fault_rounds : int;
      (** fault plans the crash-recovery oracle tries per schema *)
  cf_shrink : bool;  (** minimize failing schemas before reporting *)
  cf_max_failures : int;  (** stop the loop after this many failures *)
}

(** [default_config ()] fuzzes all oracles: seed 0, 100 trials, no time
    budget, shrinking on, stop after 20 failures, and the {!Oracles.make_ctx}
    defaults for the context knobs. *)
val default_config : unit -> config

type oracle_stats = {
  os_name : string;
  os_pass : int;
  os_skip : int;
  os_fail : int;
  os_seconds : float;  (** total wall-clock spent in this oracle *)
}

type failure = {
  f_trial : int;
  f_oracle : string;
  f_message : string;
  f_schema : Vis_catalog.Schema.t;  (** shrunk when [cf_shrink] *)
  f_original : Vis_catalog.Schema.t option;
      (** the pre-shrink schema, when shrinking changed it *)
}

type report = {
  rp_config : config;
  rp_trials_run : int;
  rp_elapsed : float;
  rp_oracles : oracle_stats list;
  rp_failures : failure list;
}

val run : config -> report

(** [check_schema config ~trial schema] runs the configured oracles on one
    schema with the deterministic per-oracle contexts of [trial] — the
    replay path for a saved repro.  No shrinking. *)
val check_schema :
  config -> trial:int -> Vis_catalog.Schema.t -> (string * Oracles.outcome) list

val failure_to_repro : seed:int -> failure -> Repro.t

(** Render the per-oracle pass/skip/fail table and the failure list. *)
val render : report -> string

val report_json : report -> Vis_util.Json.t
