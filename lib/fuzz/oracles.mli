(** The registry of differential-validation oracles.

    Each oracle takes a generated schema and checks one equivalence or
    invariant the paper's claims rest on: the A* optimizer against
    exhaustive enumeration (Section 4), parallel search against the
    sequential run, the memoization ablation, the heuristic orderings, the
    Section-6 studies' staircase/sensitivity shapes, the Appendix-A page
    estimators' bounds, and — on executable instances — the storage
    engine's view contents and measured I/O against the cost model, plus
    the WAL-protected refresh's recover-or-rollback guarantee under
    injected storage faults.

    Oracles are pure given their {!ctx}: the embedded RNG state is the only
    source of randomness, so a (seed, trial, oracle) triple always replays
    to the same outcome.  An oracle returns [Skip] rather than guessing
    when an instance is out of its scope (state space too large, schema not
    executable). *)

type outcome =
  | Pass
  | Skip of string  (** instance out of scope; the reason is reported *)
  | Fail of string  (** invariant violated; the message names the breakage *)

type ctx = {
  cx_rng : Random.State.t;  (** private randomness for oracle-internal draws *)
  cx_max_states : float;
      (** exhaustive-enumeration budget; larger instances are skipped by the
          oracles that need full enumeration *)
  cx_max_expanded : int;
      (** A*-expansion budget; instances the heuristic cannot prune within
          it are skipped by the oracles that need the optimum *)
  cx_io_band : float;
      (** allowed measured/predicted I/O ratio band: the executed-refresh
          oracle fails outside [[1/band, band]] *)
  cx_exec_tuples : float;  (** cardinality budget for executed refreshes *)
  cx_jobs : int;  (** alternate worker-pool width for the determinism oracle *)
  cx_fault_seed : int;
      (** extra seed folded into the crash-recovery oracle's fault plans,
          so a fuzz run can explore different fault schedules over the same
          schema stream *)
  cx_fault_rounds : int;
      (** fault plans the crash-recovery oracle tries per schema *)
}

(** Defaults: [max_states = 20_000], [max_expanded = 12_000],
    [io_band = 25.], [exec_tuples = 20_000.], [jobs = 3], [fault_seed = 0],
    [fault_rounds = 1]. *)
val make_ctx :
  ?max_states:float ->
  ?max_expanded:int ->
  ?io_band:float ->
  ?exec_tuples:float ->
  ?jobs:int ->
  ?fault_seed:int ->
  ?fault_rounds:int ->
  rng:Random.State.t ->
  unit ->
  ctx

type t = {
  o_name : string;
  o_doc : string;  (** one line, shown by [visfuzz --list-oracles] *)
  o_check : ctx -> Vis_catalog.Schema.t -> outcome;
}

(** All oracles, in execution order. *)
val all : t list

val find : string -> t option

(** [resolve name] finds one oracle; [Error msg] names the unknown oracle
    {e and} lists every known one — shared by {!select} and
    [visfuzz --replay]'s repro-JSON diagnostics, so a typo in a saved
    repro's oracle field gets the same actionable message as one on the
    command line. *)
val resolve : string -> (t, string) result

(** [select names] resolves a list of oracle names, preserving registry
    order; [Error msg] names the first unknown oracle. *)
val select : string list -> (t list, string) result
