module Bitset = Vis_util.Bitset
module Num = Vis_util.Num
module Schema = Vis_catalog.Schema
module Config = Vis_costmodel.Config
module Cost = Vis_costmodel.Cost
module Yao = Vis_costmodel.Yao
module Problem = Vis_core.Problem
module Config_id = Vis_core.Config_id
module Astar = Vis_core.Astar
module Exhaustive = Vis_core.Exhaustive
module Greedy = Vis_core.Greedy
module Local_search = Vis_core.Local_search
module Space = Vis_core.Space
module Sensitivity = Vis_core.Sensitivity
module Search_stats = Vis_core.Search_stats
module Datagen = Vis_workload.Datagen
module Querygen = Vis_workload.Querygen
module Miner = Vis_workload.Miner
module Validate = Vis_maintenance.Validate
module Refresh = Vis_maintenance.Refresh
module Warehouse = Vis_maintenance.Warehouse
module Faults = Vis_storage.Faults
module Buffer_pool = Vis_storage.Buffer_pool
module Heap_file = Vis_storage.Heap_file
module Btree = Vis_storage.Btree
module Wal = Vis_storage.Wal
module Scrub = Vis_storage.Scrub
module Table = Vis_relalg.Table
module Service = Vis_service.Service
module Stream = Vis_service.Stream

type outcome = Pass | Skip of string | Fail of string

type ctx = {
  cx_rng : Random.State.t;
  cx_max_states : float;
  cx_max_expanded : int;
  cx_io_band : float;
  cx_exec_tuples : float;
  cx_jobs : int;
  cx_fault_seed : int;
  cx_fault_rounds : int;
}

let make_ctx ?(max_states = 20_000.) ?(max_expanded = 12_000) ?(io_band = 25.)
    ?(exec_tuples = 20_000.) ?(jobs = 3) ?(fault_seed = 0) ?(fault_rounds = 1)
    ~rng () =
  {
    cx_rng = rng;
    cx_max_states = max_states;
    cx_max_expanded = max_expanded;
    cx_io_band = io_band;
    cx_exec_tuples = exec_tuples;
    cx_jobs = jobs;
    cx_fault_seed = fault_seed;
    cx_fault_rounds = fault_rounds;
  }

type t = {
  o_name : string;
  o_doc : string;
  o_check : ctx -> Schema.t -> outcome;
}

let fail fmt = Printf.ksprintf (fun s -> Fail s) fmt

let skip fmt = Printf.ksprintf (fun s -> Skip s) fmt

let approx = Num.approx_equal ~eps:1e-9

(* The searches compare costs against each other with a small relative
   slack: totals are sums of hundreds of float terms whose association
   order differs between algorithms. *)
let close = Num.approx_equal ~eps:1e-6

(* A* worst case is exponential, and the generator occasionally produces an
   instance where the heuristic barely prunes.  Every oracle that runs A*
   caps the expansion count and skips (or degrades) past the cap, keeping
   trial time bounded. *)
let astar_capped ?jobs ?shard cx p =
  match Astar.search ~max_expanded:cx.cx_max_expanded ?jobs ?shard p with
  | r -> Some r
  | exception Astar.Budget_exceeded _ -> None

(* ------------------------------------------------------------------ *)
(* A* against exhaustive enumeration (Section 4's optimality claim). *)

let check_astar_optimal cx schema =
  let p = Problem.make schema in
  let states = Exhaustive.count_states p in
  if states > cx.cx_max_states then
    skip "state space too large (%.3g states)" states
  else
    let ex = Exhaustive.search ~max_states:(int_of_float cx.cx_max_states) p in
    let a = Astar.search p in
    if not (close ex.Exhaustive.best_cost a.Astar.best_cost) then
      fail "A* cost %.6f differs from exhaustive optimum %.6f"
        a.Astar.best_cost ex.Exhaustive.best_cost
    else if not (Problem.valid_config p a.Astar.best) then
      Fail "A* returned a configuration outside the candidate space"
    else if not (close (Problem.total p a.Astar.best) a.Astar.best_cost) then
      fail "A* best_cost %.6f does not re-evaluate (%.6f)" a.Astar.best_cost
        (Problem.total p a.Astar.best)
    else if
      Search_stats.admissibility_violations a.Astar.search_stats > 0
    then
      fail "heuristic admissibility violated on %d popped states"
        (Search_stats.admissibility_violations a.Astar.search_stats)
    else Pass

(* ------------------------------------------------------------------ *)
(* jobs=1 vs jobs=N bit-identical results (PR 2's determinism guarantee). *)

let check_parallel_determinism cx schema =
  match astar_capped ~jobs:1 cx (Problem.make schema) with
  | None -> skip "A* expansion budget exceeded (%d)" cx.cx_max_expanded
  | Some a1 ->
  match astar_capped ~jobs:cx.cx_jobs cx (Problem.make schema) with
  | None ->
      (* Identical expansion sequences are the guarantee: if jobs=1 fits
         under the cap, jobs=N must too. *)
      fail "jobs=%d exceeded the expansion budget jobs=1 finished under"
        cx.cx_jobs
  | Some an ->
  if a1.Astar.best_cost <> an.Astar.best_cost then
    fail "A* cost differs: jobs=1 %.17g vs jobs=%d %.17g" a1.Astar.best_cost
      cx.cx_jobs an.Astar.best_cost
  else if not (Config.equal a1.Astar.best an.Astar.best) then
    fail "A* configuration differs between jobs=1 and jobs=%d" cx.cx_jobs
  else if
    a1.Astar.stats.Astar.expanded <> an.Astar.stats.Astar.expanded
    || a1.Astar.stats.Astar.generated <> an.Astar.stats.Astar.generated
  then
    fail "A* counters differ: jobs=1 %d/%d vs jobs=%d %d/%d"
      a1.Astar.stats.Astar.expanded a1.Astar.stats.Astar.generated cx.cx_jobs
      an.Astar.stats.Astar.expanded an.Astar.stats.Astar.generated
  else
  (* The coarse-grained sharded mode (generated schemas are small, so the
     auto-gate would never pick it): the same jobs=1 vs jobs=N identity must
     hold with sharding forced on, and both modes must prove the same
     optimum.  Counters legitimately differ *between* modes (traversal
     order), never between pool widths. *)
  match astar_capped ~jobs:1 ~shard:true cx (Problem.make schema) with
  | None ->
      (* The sharded budget is checked at round granularity, so it can trip
         where the sequential loop finished — not a determinism failure. *)
      Pass
  | Some s1 ->
  match astar_capped ~jobs:cx.cx_jobs ~shard:true cx (Problem.make schema) with
  | None ->
      fail "sharded jobs=%d exceeded the expansion budget jobs=1 finished under"
        cx.cx_jobs
  | Some sn ->
  if s1.Astar.best_cost <> sn.Astar.best_cost then
    fail "sharded A* cost differs: jobs=1 %.17g vs jobs=%d %.17g"
      s1.Astar.best_cost cx.cx_jobs sn.Astar.best_cost
  else if not (Config.equal s1.Astar.best sn.Astar.best) then
    fail "sharded A* configuration differs between jobs=1 and jobs=%d"
      cx.cx_jobs
  else if
    s1.Astar.stats.Astar.expanded <> sn.Astar.stats.Astar.expanded
    || s1.Astar.stats.Astar.generated <> sn.Astar.stats.Astar.generated
  then
    fail "sharded A* counters differ: jobs=1 %d/%d vs jobs=%d %d/%d"
      s1.Astar.stats.Astar.expanded s1.Astar.stats.Astar.generated cx.cx_jobs
      sn.Astar.stats.Astar.expanded sn.Astar.stats.Astar.generated
  else if not (close s1.Astar.best_cost a1.Astar.best_cost) then
    fail "sharded optimum %.9f differs from single-queue optimum %.9f"
      s1.Astar.best_cost a1.Astar.best_cost
  else begin
    let p = Problem.make schema in
    if Exhaustive.count_states p > cx.cx_max_states then Pass
    else
      let e1 = Exhaustive.search ~jobs:1 (Problem.make schema) in
      let en = Exhaustive.search ~jobs:cx.cx_jobs (Problem.make schema) in
      if e1.Exhaustive.best_cost <> en.Exhaustive.best_cost then
        fail "exhaustive cost differs: jobs=1 %.17g vs jobs=%d %.17g"
          e1.Exhaustive.best_cost cx.cx_jobs en.Exhaustive.best_cost
      else if not (Config.equal e1.Exhaustive.best en.Exhaustive.best) then
        fail "exhaustive configuration differs between jobs=1 and jobs=%d"
          cx.cx_jobs
      else if e1.Exhaustive.states <> en.Exhaustive.states then
        fail "exhaustive state counts differ: %d vs %d" e1.Exhaustive.states
          en.Exhaustive.states
      else Pass
  end

(* ------------------------------------------------------------------ *)
(* Cost-cache on/off equivalence (PR 1's memoization transparency). *)

let check_cache_equivalence cx schema =
  match astar_capped cx (Problem.make schema) with
  | None -> skip "A* expansion budget exceeded (%d)" cx.cx_max_expanded
  | Some shared ->
  match astar_capped cx (Problem.make ~share_cache:false schema) with
  | None ->
      Fail "cache off exceeded the expansion budget cache on finished under"
  | Some private_ ->
  if not (approx shared.Astar.best_cost private_.Astar.best_cost) then
    fail "cache on/off changes the optimum: %.9f vs %.9f"
      shared.Astar.best_cost private_.Astar.best_cost
  else if not (Config.equal shared.Astar.best private_.Astar.best) then
    Fail "cache on/off changes the chosen configuration"
  else Pass

(* ------------------------------------------------------------------ *)
(* Heuristic cost ordering: optimum <= local search <= greedy <= empty. *)

let check_heuristics_bounded cx schema =
  let p = Problem.make schema in
  let a = astar_capped cx p in
  let g = Greedy.search p in
  let l = Local_search.search p in
  let empty = Problem.total p Config.empty in
  let eps = 1e-6 *. Float.max 1. empty in
  let beats_optimum =
    match a with
    | None -> None
    | Some a ->
        if g.Greedy.best_cost < a.Astar.best_cost -. eps then
          Some
            (Printf.sprintf "greedy %.6f beats the proven optimum %.6f"
               g.Greedy.best_cost a.Astar.best_cost)
        else if l.Local_search.best_cost < a.Astar.best_cost -. eps then
          Some
            (Printf.sprintf "local search %.6f beats the proven optimum %.6f"
               l.Local_search.best_cost a.Astar.best_cost)
        else None
  in
  match beats_optimum with
  | Some msg -> Fail msg
  | None ->
  if l.Local_search.best_cost > g.Greedy.best_cost +. eps then
    fail "local search %.6f worse than its greedy seed %.6f"
      l.Local_search.best_cost g.Greedy.best_cost
  else if g.Greedy.best_cost > empty +. eps then
    fail "greedy %.6f worse than the empty design %.6f" g.Greedy.best_cost
      empty
  else if not (Problem.valid_config p g.Greedy.best) then
    Fail "greedy returned an invalid configuration"
  else if not (Problem.valid_config p l.Local_search.best) then
    Fail "local search returned an invalid configuration"
  else
    (* Greedy steps must strictly improve. *)
    let rec decreasing prev = function
      | [] -> true
      | s :: rest ->
          s.Greedy.s_cost_after < prev && decreasing s.Greedy.s_cost_after rest
    in
    if not (decreasing empty g.Greedy.steps) then
      Fail "greedy accepted a non-improving step"
    else if Option.is_none a then
      skip "orderings hold; optimum unavailable (A* budget %d)"
        cx.cx_max_expanded
    else Pass

(* ------------------------------------------------------------------ *)
(* Space staircase (Section 6.1): monotone steps, consistent cost_at. *)

let check_space_staircase cx schema =
  let p = Problem.make schema in
  let states = Exhaustive.count_states p in
  if states > cx.cx_max_states then
    skip "state space too large (%.3g states)" states
  else
    match Space.sweep ~max_states:(int_of_float cx.cx_max_states) p with
    | exception Exhaustive.Too_large n -> skip "sweep too large (%.3g)" n
    | sw -> (
        let empty = Problem.total p Config.empty in
        match sw.Space.sw_steps with
        | [] -> Fail "sweep produced no steps"
        | first :: _ ->
            let last =
              List.nth sw.Space.sw_steps (List.length sw.Space.sw_steps - 1)
            in
            if first.Space.st_space <> 0. then
              fail "first step occupies %.1f pages, not 0" first.Space.st_space
            else if not (close first.Space.st_cost empty) then
              fail "first step cost %.6f is not the empty design's %.6f"
                first.Space.st_cost empty
            else if
              not (close last.Space.st_cost sw.Space.sw_unconstrained_cost)
            then
              fail "last step %.6f differs from the unconstrained optimum %.6f"
                last.Space.st_cost sw.Space.sw_unconstrained_cost
            else begin
              let rec monotone = function
                | a :: (b :: _ as rest) ->
                    if a.Space.st_space >= b.Space.st_space then
                      fail "staircase space not increasing at %.1f"
                        b.Space.st_space
                    else if a.Space.st_cost <= b.Space.st_cost then
                      fail "staircase cost not decreasing at space %.1f"
                        b.Space.st_space
                    else monotone rest
                | _ -> Pass
              in
              match monotone sw.Space.sw_steps with
              | (Fail _ | Skip _) as r -> r
              | Pass -> (
                  (* cost_at is the staircase: exact at boundaries, the
                     previous step between them. *)
                  let boundary_bad =
                    List.find_opt
                      (fun st ->
                        not
                          (close
                             (Space.cost_at sw ~budget:st.Space.st_space)
                             st.Space.st_cost))
                      sw.Space.sw_steps
                  in
                  let rec between_bad = function
                    | a :: (b :: _ as rest) ->
                        let mid =
                          (a.Space.st_space +. b.Space.st_space) /. 2.
                        in
                        (* The midpoint can coincide with b's budget when the
                           steps are one page apart; only probe real gaps. *)
                        if
                          mid > a.Space.st_space
                          && mid < b.Space.st_space
                          && not
                               (close (Space.cost_at sw ~budget:mid)
                                  a.Space.st_cost)
                        then Some mid
                        else between_bad rest
                    | _ -> None
                  in
                  match (boundary_bad, between_bad sw.Space.sw_steps) with
                  | Some st, _ ->
                      fail "cost_at(%.1f) is not the step cost %.6f"
                        st.Space.st_space st.Space.st_cost
                  | None, Some mid ->
                      fail "cost_at between steps wrong at budget %.1f" mid
                  | None, None ->
                      (* feature_order: unique names, budgets non-decreasing
                         and all on the staircase. *)
                      let order = Space.feature_order sw in
                      let names = List.map fst order in
                      if
                        List.length names
                        <> List.length (List.sort_uniq compare names)
                      then Fail "feature_order lists a feature twice"
                      else
                        let rec nondecreasing = function
                          | (_, b1) :: ((_, b2) :: _ as rest) ->
                              b1 <= b2 && nondecreasing rest
                          | _ -> true
                        in
                        if not (nondecreasing order) then
                          Fail "feature_order budgets decrease"
                        else if
                          List.exists
                            (fun (_, b) ->
                              not
                                (List.exists
                                   (fun st -> st.Space.st_space = b)
                                   sw.Space.sw_steps))
                            order
                        then Fail "feature_order budget off the staircase"
                        else Pass)
            end)

(* ------------------------------------------------------------------ *)
(* Sensitivity (Section 6.2): ratios >= 1, exactly 1 at the estimate,
   and the chosen design valid under every swept schema. *)

let check_sensitivity cx schema =
  let factors = [ 0.5; 1.0; 2.0 ] in
  let make f = Schema.scale_deltas schema f in
  (* [Sensitivity.sweep] runs unbounded A* per value; probe each value with
     the capped search first — the sweep repeats exactly these searches, so
     if every probe terminates under the cap the sweep terminates too. *)
  if
    List.exists
      (fun f -> Option.is_none (astar_capped cx (Problem.make (make f))))
      factors
  then skip "A* expansion budget exceeded (%d)" cx.cx_max_expanded
  else
  let series = Sensitivity.sweep ~make_schema:make ~values:factors in
  let problems = List.map (fun f -> (f, Problem.make (make f))) factors in
  let bad =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun (actual, ratio) ->
            if ratio < 1. -. 1e-6 then
              Some
                (Printf.sprintf
                   "design for estimate %g beats the optimum at %g (ratio %.9f)"
                   s.Sensitivity.se_estimate actual ratio)
            else if
              approx actual s.Sensitivity.se_estimate && ratio > 1. +. 1e-6
            then
              Some
                (Printf.sprintf
                   "design for estimate %g is not optimal at its own estimate \
                    (ratio %.9f)"
                   s.Sensitivity.se_estimate ratio)
            else None)
          s.Sensitivity.se_ratios
        @ List.filter_map
            (fun (f, p) ->
              if Problem.valid_config p s.Sensitivity.se_config then None
              else
                Some
                  (Printf.sprintf
                     "design for estimate %g invalid under factor %g"
                     s.Sensitivity.se_estimate f))
            problems)
      series
  in
  match bad with [] -> Pass | msg :: _ -> Fail msg

(* ------------------------------------------------------------------ *)
(* Yao / Y_WAP page-estimator bounds (Appendix A). *)

let check_yao_bounds cx schema =
  let rng = cx.cx_rng in
  (* Derive plausible magnitudes from the schema so the draws track the
     instances the cost model actually sees. *)
  let max_card =
    Array.fold_left
      (fun acc (r : Schema.relation) -> Float.max acc r.Schema.card)
      1. schema.Schema.relations
  in
  let draw_p () = 1. +. Random.State.float rng (4. *. max_card) in
  let result = ref Pass in
  let check cond fmt =
    Printf.ksprintf (fun s -> if not cond && !result = Pass then result := Fail s) fmt
  in
  for _ = 1 to 200 do
    let p = draw_p () in
    let n = p *. (1. +. Random.State.float rng 100.) in
    let k = -10. +. Random.State.float rng (3. *. p +. 20.) in
    let m = 1. +. Random.State.float rng 2000. in
    let y = Yao.yao ~n ~p ~k in
    let w = Yao.y_wap ~n ~p ~k ~m in
    check (y >= 0.) "yao(p=%g,k=%g) = %g < 0" p k y;
    check (w >= 0.) "y_wap(p=%g,k=%g,m=%g) = %g < 0" p k m w;
    if k <= 0. then begin
      check (y = 0.) "yao(p=%g,k=%g) = %g, expected 0 for k<=0" p k y;
      check (w = 0.) "y_wap(p=%g,k=%g) = %g, expected 0 for k<=0" p k w
    end
    else begin
      check
        (y <= Float.min k p +. 1e-9)
        "yao(p=%g,k=%g) = %g exceeds min(k, pages)" p k y;
      check (w <= k +. 1e-9) "y_wap(p=%g,k=%g,m=%g) = %g exceeds k" p k m w;
      if p <= m then
        check
          (approx w (Float.min k p))
          "y_wap(p=%g,k=%g,m=%g) = %g, expected min(k,p) when the relation \
           fits in memory"
          p k m w
    end;
    (* Monotone in the fetch count. *)
    let k' = k +. Random.State.float rng p in
    check
      (Yao.yao ~n ~p ~k:k' >= y -. 1e-9)
      "yao not monotone in k at p=%g, k=%g -> %g" p k k';
    check
      (Yao.y_wap ~n ~p ~k:k' ~m >= w -. 1e-9)
      "y_wap not monotone in k at p=%g, k=%g -> %g" p k k'
  done;
  !result

(* ------------------------------------------------------------------ *)
(* Executed maintenance: view contents exact, measured I/O inside the
   predicted band (the Extra-1 experiment as a property). *)

let executable_blockers cx schema =
  let n = Schema.n_relations schema in
  let total_tuples =
    Array.fold_left
      (fun acc (r : Schema.relation) -> acc +. r.Schema.card)
      0. schema.Schema.relations
  in
  if total_tuples > cx.cx_exec_tuples then
    Some (Printf.sprintf "too many tuples to execute (%.0f)" total_tuples)
  else if not (Gen.fk_consistent schema) then
    Some "join selectivities are not foreign-key-consistent"
  else if
    List.exists
      (fun i ->
        let d = Schema.delta schema i in
        d.Schema.n_upd > 0. && Datagen.protected_attrs schema i = [])
      (List.init n Fun.id)
  then Some "protected updates with no protected attribute"
  else if
    List.exists
      (fun i ->
        let r = Schema.relation schema i in
        r.Schema.tuple_bytes
        <> List.length r.Schema.attrs * Vis_maintenance.Warehouse.attr_bytes)
      (List.init n Fun.id)
  then Some "tuple_bytes disagrees with the engine's attribute width"
  else None

let check_maintenance_cycle cx schema =
  match executable_blockers cx schema with
  | Some reason -> Skip reason
  | None -> (
      let p = Problem.make schema in
      (* The cycle checks any configuration; fall back to the greedy design
         when the optimum is out of the A* budget. *)
      let best_name, best =
        match astar_capped cx p with
        | Some a -> ("optimal", a.Astar.best)
        | None -> ("greedy", (Greedy.search p).Greedy.best)
      in
      let seed = Random.State.int cx.cx_rng 1_000_000 in
      let run name config =
        match Validate.run_cycle ~seed schema config with
        | exception Datagen.Unsupported msg ->
            Skip (Printf.sprintf "datagen: %s" msg)
        | report, checks ->
            if not (Validate.all_ok checks) then
              let bad =
                List.find (fun c -> not c.Validate.vc_ok) checks
              in
              fail
                "%s design: view %s diverged from its recomputation \
                 (%d stored vs %d expected)"
                name bad.Validate.vc_view bad.Validate.vc_actual
                bad.Validate.vc_expected
            else begin
              let measured = float_of_int (Refresh.total_io report) in
              let predicted = report.Refresh.rp_predicted in
              (* Tiny batches drown in fixed costs; only judge the ratio
                 when both sides are macroscopic. *)
              if Float.min measured predicted < 20. then Pass
              else
                let ratio = measured /. predicted in
                if ratio > cx.cx_io_band || ratio < 1. /. cx.cx_io_band then
                  fail
                    "%s design: measured I/O %.0f vs predicted %.0f (ratio \
                     %.2f outside band %.0f)"
                    name measured predicted ratio cx.cx_io_band
                else Pass
            end
      in
      match run best_name best with
      | Pass -> run "empty" Config.empty
      | other -> other)

(* ------------------------------------------------------------------ *)
(* Packed bitset evaluator vs the VISMAT_SLOW_COST structural path: every
   delta-costed total is bitwise equal to a from-scratch structural
   derivation, and A*/greedy pick identical optima with identical
   counters. *)

let fast_vs_slow ~compression cx schema =
  let fast = Problem.make ~compression schema in
  match Config_id.of_problem fast with
  | None -> skip "packed encoding unavailable (>62 features or disabled)"
  | Some cid ->
  let slow = Problem.make ~compression ~slow_cost:true schema in
  let n = Config_id.n_features cid in
  (* Random walk of applicable feature toggles: each step is delta-costed
     from its predecessor, then re-derived from scratch by the slow
     evaluator on the decoded configuration.  Exact float equality — the
     packed evaluator replicates the structural summation order. *)
  let rec walk mask ie steps =
    if steps = 0 then Pass
    else
      let b = Random.State.int cx.cx_rng n in
      let mask' =
        if Config_id.has_feature cid mask b then Config_id.drop cid mask b
        else if Config_id.applicable cid mask b then Config_id.add cid mask b
        else mask
      in
      if mask' = mask then walk mask ie (steps - 1)
      else
        let ie' = Config_id.eval_from cid ie mask' in
        let fast_total = Cost.ieval_total ie' in
        let config = Config_id.config_of_mask cid mask' in
        let slow_total = Problem.total slow config in
        if fast_total <> slow_total then
          fail "delta-costed total %.17g differs from slow evaluator %.17g"
            fast_total slow_total
        else walk mask' ie' (steps - 1)
  in
  match walk 0 (Config_id.eval cid 0) 15 with
  | (Fail _ | Skip _) as r -> r
  | Pass -> (
  match astar_capped cx fast with
  | None -> skip "A* expansion budget exceeded (%d)" cx.cx_max_expanded
  | Some af -> (
  match astar_capped cx slow with
  | None ->
      Fail
        "slow path exceeded the expansion budget the fast path finished under"
  | Some as_ ->
  if af.Astar.best_cost <> as_.Astar.best_cost then
    fail "A* optimum differs: fast %.17g vs slow %.17g" af.Astar.best_cost
      as_.Astar.best_cost
  else if not (Config.equal af.Astar.best as_.Astar.best) then
    Fail "A* configuration differs between fast and slow evaluators"
  else if
    af.Astar.stats.Astar.expanded <> as_.Astar.stats.Astar.expanded
    || af.Astar.stats.Astar.generated <> as_.Astar.stats.Astar.generated
  then
    fail "A* counters differ: fast %d/%d vs slow %d/%d"
      af.Astar.stats.Astar.expanded af.Astar.stats.Astar.generated
      as_.Astar.stats.Astar.expanded as_.Astar.stats.Astar.generated
  else
    let gf = Greedy.search fast and gs = Greedy.search slow in
    if gf.Greedy.best_cost <> gs.Greedy.best_cost then
      fail "greedy cost differs: fast %.17g vs slow %.17g" gf.Greedy.best_cost
        gs.Greedy.best_cost
    else if not (Config.equal gf.Greedy.best gs.Greedy.best) then
      Fail "greedy configuration differs between fast and slow evaluators"
    else Pass))

let check_fast_vs_slow cx schema = fast_vs_slow ~compression:false cx schema

(* The same walk with the compression axis enabled: page-compression
   features join the packed encoding, and every delta-costed total —
   compression factors included — must stay bitwise equal to the slow
   structural derivation.  A memo-key collision between a compressed and an
   uncompressed configuration shows up here immediately. *)
let check_fast_vs_slow_compression cx schema =
  fast_vs_slow ~compression:true cx schema

(* ------------------------------------------------------------------ *)
(* WAL-protected refresh under a random seeded fault plan (PR 5): the
   batch either completes — bit-identical to a fault-free refresh, or
   logically identical when it degraded to view recomputation — or every
   attempt rolled back and the warehouse is bit-identical to its pre-batch
   state.  Storage integrity (index structure, heap/index agreement) must
   hold in every terminal state, and no exception other than the typed
   [Faults.Injected] may escape the storage API — an escaping exception
   surfaces through the runner's catch-all as a Fail. *)

let check_crash_recovery cx schema =
  match executable_blockers cx schema with
  | Some reason -> Skip reason
  | None -> (
      let p = Problem.make schema in
      (* Greedy is cheap, deterministic, and still exercises views, indexes
         and saved-delta plans; the optimum adds nothing the WAL cares
         about. *)
      let config = (Greedy.search p).Greedy.best in
      let data_seed = Random.State.int cx.cx_rng 1_000_000 in
      (* Identical worlds on demand: a fresh warehouse plus the batch to
         apply, both a pure function of [data_seed]. *)
      let world () =
        let rng = Random.State.make [| data_seed |] in
        let ds = Datagen.generate ~rng schema in
        let w = Warehouse.build schema config ds in
        let batch = Datagen.deltas ~rng schema ds in
        (w, batch)
      in
      match world () with
      | exception Datagen.Unsupported msg -> skip "datagen: %s" msg
      | w_ref, batch_ref ->
          let _ = Refresh.run w_ref batch_ref in
          let physical_ref = Warehouse.signature w_ref in
          let logical_ref = Warehouse.logical_signature w_ref in
          let checked round w outcome =
            match Warehouse.integrity_check w with
            | Error m -> fail "round %d: storage integrity broken: %s" round m
            | Ok () -> outcome
          in
          let one round =
            let w, batch = world () in
            let pre = Warehouse.signature w in
            let plan_rng =
              Random.State.make
                [| Random.State.bits cx.cx_rng; cx.cx_fault_seed; round |]
            in
            let plan = Faults.random ~rng:plan_rng () in
            match Refresh.run_protected ~faults:plan w batch with
            | Ok (_, fs) when fs.Refresh.fs_degraded ->
                if Warehouse.logical_signature w <> logical_ref then
                  fail
                    "round %d: degraded refresh (%d rows recomputed) is not \
                     logically identical to the fault-free run"
                    round fs.Refresh.fs_recomputed_rows
                else checked round w Pass
            | Ok (_, fs) ->
                if Warehouse.signature w <> physical_ref then
                  fail
                    "round %d: recovered state (%d attempts, %d injected) \
                     differs bit-for-bit from the fault-free refresh"
                    round fs.Refresh.fs_attempts fs.Refresh.fs_injected
                else checked round w Pass
            | Error e ->
                if Warehouse.signature w <> pre then
                  fail
                    "round %d: failed batch (%s) did not roll back to the \
                     pre-batch state"
                    round
                    (Format.asprintf "%a" Faults.pp_fault e.Refresh.err_fault)
                else checked round w Pass
          in
          let rec go round =
            if round >= cx.cx_fault_rounds then Pass
            else match one round with Pass -> go (round + 1) | r -> r
          in
          go 0)

(* ------------------------------------------------------------------ *)
(* Group-commit stream under faults, on a compressed design (PR 7): a
   stream of sub-batches refreshed with deferred commits and grouped syncs
   must spend fewer durability barriers than batches, and under a random
   fault plan must end either bit-identical to the fault-free stream
   (logically identical when degraded) or with storage integrity intact
   after a clean failure.  Compression is enabled in the searched design so
   the WAL's before-images and the denser heap layout are exercised
   together. *)

(* Deal one batch into [k] conflict-free sub-batches (keys within a batch
   are distinct, so any partition applies cleanly in stream order). *)
let split_batch k (b : Datagen.batch) =
  let deal j l = List.filteri (fun i _ -> i mod k = j) l in
  List.init k (fun j ->
      {
        Datagen.b_ins = Array.map (deal j) b.Datagen.b_ins;
        b_del = Array.map (deal j) b.Datagen.b_del;
        b_upd = Array.map (deal j) b.Datagen.b_upd;
      })

let check_group_commit_recovery cx schema =
  match executable_blockers cx schema with
  | Some reason -> Skip reason
  | None -> (
      let p = Problem.make ~compression:true schema in
      let config = (Greedy.search p).Greedy.best in
      let data_seed = Random.State.int cx.cx_rng 1_000_000 in
      let world () =
        let rng = Random.State.make [| data_seed |] in
        let ds = Datagen.generate ~rng schema in
        let w = Warehouse.build schema config ds in
        let batches = split_batch 4 (Datagen.deltas ~rng schema ds) in
        (w, batches)
      in
      match world () with
      | exception Datagen.Unsupported msg -> skip "datagen: %s" msg
      | w_ref, batches_ref -> (
          match Refresh.run_protected_many w_ref batches_ref with
          | Error e ->
              fail "fault-free group stream failed: %s"
                (Format.asprintf "%a" Faults.pp_fault e.Refresh.err_fault)
          | Ok (r_ref, _, g_ref) ->
              if r_ref.Refresh.rp_wal_syncs >= g_ref.Refresh.gr_batches then
                fail
                  "group commit did not reduce syncs: %d syncs for %d batches"
                  r_ref.Refresh.rp_wal_syncs g_ref.Refresh.gr_batches
              else
                let physical_ref = Warehouse.signature w_ref in
                let logical_ref = Warehouse.logical_signature w_ref in
                let checked round w outcome =
                  match Warehouse.integrity_check w with
                  | Error m ->
                      fail "round %d: storage integrity broken: %s" round m
                  | Ok () -> outcome
                in
                let one round =
                  let w, batches = world () in
                  let plan_rng =
                    Random.State.make
                      [|
                        Random.State.bits cx.cx_rng; cx.cx_fault_seed;
                        round; 7;
                      |]
                  in
                  let plan = Faults.random ~rng:plan_rng () in
                  match Refresh.run_protected_many ~faults:plan w batches with
                  | Ok (_, fs, _) when fs.Refresh.fs_degraded ->
                      if Warehouse.logical_signature w <> logical_ref then
                        fail
                          "round %d: degraded group stream is not logically \
                           identical to the fault-free stream"
                          round
                      else checked round w Pass
                  | Ok (_, fs, g) ->
                      if Warehouse.signature w <> physical_ref then
                        fail
                          "round %d: recovered stream (%d attempts, %d \
                           injected, %d replayed) differs bit-for-bit from \
                           the fault-free stream"
                          round fs.Refresh.fs_attempts fs.Refresh.fs_injected
                          g.Refresh.gr_replayed
                      else checked round w Pass
                  | Error _ ->
                      (* Durable prefixes legitimately survive a failed
                         stream; integrity is the invariant here. *)
                      checked round w Pass
                in
                let rec go round =
                  if round >= cx.cx_fault_rounds then Pass
                  else match one round with Pass -> go (round + 1) | r -> r
                in
                go 0))

(* ------------------------------------------------------------------ *)
(* Workload-driven candidate mining (the querygen → miner → restricted
   Problem pipeline): the mined feature universe must be a subset of the
   exhaustive one, the mined optimum must be a valid configuration of both
   problems whose cost re-evaluates structurally and never beats the
   exhaustive optimum, and mining at minsup 0 must reproduce the
   unrestricted problem bit for bit — features, optimum, cost and search
   counters. *)

let check_mined_candidates cx schema =
  let seed = Random.State.int cx.cx_rng 1_000_000 in
  let minsup = 0.02 +. Random.State.float cx.cx_rng 0.38 in
  let log = Querygen.generate ~seed schema in
  let m = Miner.mine ~minsup schema log in
  let p_full = Problem.make schema in
  let p_mined = Problem.make ~candidates:m.Miner.m_candidates schema in
  let subset_of big small =
    List.for_all
      (fun f -> List.exists (Problem.equal_feature f) big.Problem.features)
      small.Problem.features
  in
  if not (subset_of p_full p_mined) then
    fail "minsup %.3f mined a feature outside the exhaustive enumeration"
      minsup
  else
    (* minsup 0 keeps every query-driven candidate: the restricted problem
       must equal the unrestricted one feature for feature, and the searches
       on both must be indistinguishable. *)
    let m0 = Miner.mine ~minsup:0. schema log in
    let p0 = Problem.make ~candidates:m0.Miner.m_candidates schema in
    if
      List.length p0.Problem.features <> List.length p_full.Problem.features
      || not
           (List.for_all2 Problem.equal_feature p0.Problem.features
              p_full.Problem.features)
    then
      fail "minsup 0 feature universe differs: %d features vs %d exhaustive"
        (List.length p0.Problem.features)
        (List.length p_full.Problem.features)
    else
      match astar_capped cx p_full with
      | None -> skip "A* expansion budget exceeded (%d)" cx.cx_max_expanded
      | Some full -> (
          match astar_capped cx p0 with
          | None ->
              Fail
                "minsup 0 search exceeded the budget the exhaustive search \
                 finished under"
          | Some a0 ->
              if
                a0.Astar.best_cost <> full.Astar.best_cost
                || not (Config.equal a0.Astar.best full.Astar.best)
                || a0.Astar.stats.Astar.expanded
                   <> full.Astar.stats.Astar.expanded
                || a0.Astar.stats.Astar.generated
                   <> full.Astar.stats.Astar.generated
              then
                fail
                  "minsup 0 search differs from exhaustive: cost %.17g/%.17g \
                   counters %d/%d vs %d/%d"
                  a0.Astar.best_cost full.Astar.best_cost
                  a0.Astar.stats.Astar.expanded
                  a0.Astar.stats.Astar.generated
                  full.Astar.stats.Astar.expanded
                  full.Astar.stats.Astar.generated
              else (
                match astar_capped cx p_mined with
                | None ->
                    skip "mined A* expansion budget exceeded (%d)"
                      cx.cx_max_expanded
                | Some mined ->
                    let eps =
                      1e-6 *. Float.max 1. full.Astar.best_cost
                    in
                    if not (Problem.valid_config p_mined mined.Astar.best)
                    then
                      Fail
                        "mined optimum is not a valid configuration of the \
                         mined problem"
                    else if not (Problem.valid_config p_full mined.Astar.best)
                    then
                      Fail
                        "mined optimum is not a valid configuration of the \
                         exhaustive problem"
                    else if
                      not
                        (close
                           (Problem.total p_full mined.Astar.best)
                           mined.Astar.best_cost)
                    then
                      fail
                        "mined best_cost %.9f does not re-evaluate \
                         structurally (%.9f)"
                        mined.Astar.best_cost
                        (Problem.total p_full mined.Astar.best)
                    else if
                      mined.Astar.best_cost < full.Astar.best_cost -. eps
                    then
                      fail
                        "mined optimum %.9f beats the exhaustive optimum \
                         %.9f on a subset space"
                        mined.Astar.best_cost full.Astar.best_cost
                    else Pass))

(* The advisor daemon end-to-end: a 3-tenant service over the generated
   schema (one tenant drifting, so the monitor/re-optimize/swap path runs)
   must reach bit-identical end states — physical signatures and every
   counter — at jobs=1 and jobs=N, fault-free and with a crash plan inside
   one tenant's refresh stream.  The crash must also leave the other
   tenants' end states exactly as in the fault-free run: tenants share no
   storage, so faults cannot leak across them. *)
let check_service_replay cx schema =
  match executable_blockers cx schema with
  | Some reason -> Skip reason
  | None -> (
      let data_seed = Random.State.int cx.cx_rng 1_000_000 in
      let design = (Greedy.search (Problem.make schema)).Greedy.best in
      let run ~jobs ~fault =
        let config =
          {
            Service.default_config with
            Service.sv_seed = data_seed;
            sv_jobs = jobs;
            sv_budget = min cx.cx_max_expanded 4_000;
            sv_warmup = 1;
            sv_band = 1.3;
          }
        in
        let svc = Service.create ~config () in
        Fun.protect
          ~finally:(fun () -> Service.shutdown svc)
          (fun () ->
            for k = 0 to 2 do
              let faults =
                if fault && k = 1 then
                  Some
                    (Faults.make
                       [
                         Faults.Fail_nth
                           {
                             op = Some Faults.Write;
                             n = 20;
                             kind = Faults.Crash;
                           };
                       ])
                else None
              in
              let drift =
                if k = 0 then Stream.Step { at = 2; factor = 2.5 }
                else Stream.Constant
              in
              ignore
                (Service.add_tenant ~seed:(data_seed + k)
                   ~rate:(2. -. (0.5 *. float_of_int k))
                   ~drift ?faults ~config:design svc schema)
            done;
            Service.run svc ~ticks:4;
            List.map
              (fun id ->
                (id, Service.signature svc id, Service.stats svc id))
              (Service.tenant_ids svc))
      in
      match run ~jobs:1 ~fault:false with
      | exception Datagen.Unsupported msg -> skip "datagen: %s" msg
      | base ->
          if run ~jobs:cx.cx_jobs ~fault:false <> base then
            fail "service end-state differs between jobs=1 and jobs=%d"
              cx.cx_jobs
          else
            let f1 = run ~jobs:1 ~fault:true in
            if run ~jobs:cx.cx_jobs ~fault:true <> f1 then
              fail
                "faulted service end-state differs between jobs=1 and jobs=%d"
                cx.cx_jobs
            else
              let others l = List.filter (fun (id, _, _) -> id <> 1) l in
              if others f1 <> others base then
                fail
                  "a crash inside tenant 1's refresh stream perturbed other \
                   tenants' end states"
              else Pass)

(* ------------------------------------------------------------------ *)
(* Silent corruption and self-healing (checksums + scrub + WAL CRCs):
   build the warehouse checksum-protected, refresh it fault-free, inject
   seeded bit-flips and torn writes into protected pages, and require

   - {e detection}: a scrub sweep convicts exactly the damaged pages —
     every one of them (100% detection) and nothing else (no false
     positives on clean pages);
   - {e classification}: damaged base-relation heap pages — which have no
     redundant source — are reported unrecoverable, never "repaired";
   - {e repair}: with only rebuildable damage (view heaps, index nodes),
     the post-scrub warehouse is logically identical to the fault-free
     run, passes the integrity check, and is {e bit-identical} to a
     fault-free reference performing the same canonical rebuilds;
   - {e replay}: the whole damage→scrub→rebuild episode is a pure
     function of (seed, trial) — running it twice gives bit-identical
     signatures and reports, which is what makes corruption schedules
     reproducible at any --jobs.

   A separate WAL leg exercises the record-CRC envelope on a live batch:
   a torn tail must be truncated (recovery proceeds and restores the
   pre-batch state), while mid-log corruption must raise the typed
   [Wal.Corrupt_record] naming the first bad record. *)

let check_corruption_recovery cx schema =
  match executable_blockers cx schema with
  | Some reason -> Skip reason
  | None -> (
      let p = Problem.make schema in
      let config = (Greedy.search p).Greedy.best in
      let data_seed = Random.State.int cx.cx_rng 1_000_000 in
      let world () =
        let rng = Random.State.make [| data_seed |] in
        let ds = Datagen.generate ~rng schema in
        let w = Warehouse.build ~checksums:true schema config ds in
        let batch = Datagen.deltas ~rng schema ds in
        (w, batch)
      in
      match world () with
      | exception Datagen.Unsupported msg -> skip "datagen: %s" msg
      | w_ref0, batch_ref0 ->
          ignore (Refresh.run w_ref0 batch_ref0);
          let logical_ref = Warehouse.logical_signature w_ref0 in
          let heap_gids tbl =
            let h = Table.heap tbl in
            List.init (Heap_file.n_pages h) (Heap_file.page_gid h)
          in
          (* Ownership map of one world's damaged gids, expressed in
             durable-table positions (bases first, then views — the WAL's
             own table ids).  Worlds are pure in [data_seed], so a
             classification computed on the damaged warehouse applies
             verbatim to the reference world. *)
          let classify w gid =
            let tables = Warehouse.durable_tables w in
            let n_bases = Array.length w.Warehouse.w_bases in
            let in_heap tbl = List.mem gid (heap_gids tbl) in
            let in_index tbl =
              List.find_opt
                (fun (_, ix) -> List.mem gid (Btree.page_gids ix))
                (Table.indexes tbl)
            in
            let rec walk ti =
              if ti >= Array.length tables then `Unowned
              else if in_heap tables.(ti) then
                if ti < n_bases then `Base else `View ti
              else
                match in_index tables.(ti) with
                | Some (off, _) -> `Index (ti, off)
                | None -> walk (ti + 1)
            in
            walk 0
          in
          (* The Bitset key of the view stored at durable-table position
             [ti] — what [Warehouse.rebuild_view] takes. *)
          let view_set w ti =
            let n_bases = Array.length w.Warehouse.w_bases in
            fst (List.nth w.Warehouse.w_views (ti - n_bases))
          in
          (* One full damage→scrub→rebuild episode, pure in [seeds]. *)
          let episode seeds =
            let w, batch = world () in
            ignore (Refresh.run w batch);
            Buffer_pool.flush w.Warehouse.w_pool;
            let targets =
              Array.of_list (Buffer_pool.protected_gids w.Warehouse.w_pool)
            in
            let hits =
              Faults.random_damage ~n:3 ~rng:(Random.State.make seeds)
                ~targets:(Array.length targets) ()
            in
            let damaged =
              List.sort_uniq compare
                (List.map (fun (_, pick, _) -> targets.(pick)) hits)
            in
            List.iter
              (fun (way, pick, sel) ->
                Buffer_pool.corrupt_page w.Warehouse.w_pool targets.(pick) way
                  sel)
              hits;
            (* Classify before the scrub: repair swaps rebuilt tables in,
               orphaning the damaged pages' gids. *)
            let kinds = List.map (fun g -> (g, classify w g)) damaged in
            let sweep = Scrub.sweep w.Warehouse.w_pool in
            let report = Warehouse.scrub ~fail_unrecoverable:false w in
            (w, damaged, kinds, sweep.Scrub.sr_corrupt, report)
          in
          let one round =
            let seeds =
              [| Random.State.bits cx.cx_rng; cx.cx_fault_seed; round; 13 |]
            in
            let w, damaged, kinds, convicted, report = episode seeds in
            let w2, _, _, convicted2, report2 = episode seeds in
            if convicted <> damaged then
              fail
                "round %d: scrub convicted pages [%s], damaged were [%s]"
                round
                (String.concat ";" (List.map string_of_int convicted))
                (String.concat ";" (List.map string_of_int damaged))
            else if
              convicted2 <> convicted || report2 <> report
              || Warehouse.signature w2 <> Warehouse.signature w
            then
              fail
                "round %d: the damage/scrub episode is not a pure function \
                 of (seed, trial)"
                round
            else
              let expect_unrec =
                List.filter_map
                  (fun (g, k) -> if k = `Base then Some g else None)
                  kinds
              in
              let got_unrec =
                List.sort_uniq compare
                  (List.map fst report.Warehouse.sc_unrecoverable)
              in
              if got_unrec <> expect_unrec then
                fail
                  "round %d: unrecoverable pages [%s], damaged base pages \
                   [%s]"
                  round
                  (String.concat ";" (List.map string_of_int got_unrec))
                  (String.concat ";" (List.map string_of_int expect_unrec))
              else if expect_unrec <> [] then Pass
                (* base damage has no redundant source; classification is
                   the whole guarantee *)
              else if Warehouse.logical_signature w <> logical_ref then
                fail
                  "round %d: repaired warehouse is not logically identical \
                   to the fault-free run"
                  round
              else begin
                match Warehouse.integrity_check w with
                | Error m ->
                    fail "round %d: integrity broken after repair: %s" round m
                | Ok () ->
                    (* Fresh fault-free reference performing the same
                       canonical rebuilds: physical signatures exclude page
                       ids, so the repaired state must match it bit for
                       bit. *)
                    let w_ref, batch_ref = world () in
                    ignore (Refresh.run w_ref batch_ref);
                    let tables_ref = Warehouse.durable_tables w_ref in
                    let view_tis =
                      List.sort_uniq compare
                        (List.filter_map
                           (fun (_, k) ->
                             match k with `View ti -> Some ti | _ -> None)
                           kinds)
                    in
                    List.iter
                      (fun (_, k) ->
                        match k with
                        | `Index (ti, off) when not (List.mem ti view_tis) ->
                            ignore
                              (Table.rebuild_index tables_ref.(ti) ~offset:off)
                        | _ -> ())
                      kinds;
                    List.iter
                      (fun ti ->
                        ignore
                          (Warehouse.rebuild_view w_ref (view_set w_ref ti)))
                      view_tis;
                    if Warehouse.signature w <> Warehouse.signature w_ref then
                      fail
                        "round %d: repaired state differs bit-for-bit from \
                         the fault-free reference with identical rebuilds \
                         (damage: %s; report: views %d indexes %d)"
                        round
                        (String.concat ", "
                           (List.map
                              (fun (g, k) ->
                                Printf.sprintf "%d=%s" g
                                  (match k with
                                  | `Base -> "base"
                                  | `View ti -> Printf.sprintf "view@%d" ti
                                  | `Index (ti, off) ->
                                      Printf.sprintf "ix@%d.%d" ti off
                                  | `Unowned -> "unowned"))
                              kinds))
                        report.Warehouse.sc_views_rebuilt
                        report.Warehouse.sc_indexes_rebuilt
                    else Pass
              end
          in
          let rec go round =
            if round >= cx.cx_fault_rounds then Pass
            else match one round with Pass -> go (round + 1) | r -> r
          in
          (* The WAL's record-CRC envelope, on a live uncommitted batch. *)
          let wal_legs () =
            (* Torn tail: the newest appends never reached the disk image;
               recovery must truncate them, proceed, and restore the
               pre-batch state. *)
            let w, _ = world () in
            let pre = Warehouse.signature w in
            let tbl = (Warehouse.durable_tables w).(0) in
            let arity = Vis_relalg.Reldesc.arity (Table.desc tbl) in
            Warehouse.begin_batch w;
            for i = 1 to 6 do
              ignore (Warehouse.logged_insert w tbl (Array.make arity (9_000 + i)))
            done;
            let torn = Wal.tear_tail w.Warehouse.w_wal ~keep:3 in
            match Wal.verify_scan w.Warehouse.w_wal with
            | Wal.Torn { torn = t; _ } when t = torn -> (
                ignore (Warehouse.recover w);
                if Warehouse.signature w <> pre then
                  Fail
                    "torn-tail recovery did not restore the pre-batch state"
                else
                  (* Mid-log corruption: a bad CRC with intact records after
                     it is not a torn tail; recovery must stop with the
                     typed error naming the record, not replay past it. *)
                  let w2, _ = world () in
                  let tbl2 = (Warehouse.durable_tables w2).(0) in
                  Warehouse.begin_batch w2;
                  for i = 1 to 6 do
                    ignore
                      (Warehouse.logged_insert w2 tbl2 (Array.make arity i))
                  done;
                  let wal = w2.Warehouse.w_wal in
                  let seq =
                    Wal.total_records wal - Wal.n_records wal + 2
                  in
                  if not (Wal.corrupt_record wal ~seq) then
                    fail "no WAL record with seq %d to corrupt" seq
                  else (
                    match Wal.verify_scan wal with
                    | Wal.Corrupt { seq = s } when s = seq -> (
                        match Warehouse.recover w2 with
                        | exception Wal.Corrupt_record s when s = seq -> Pass
                        | exception Wal.Corrupt_record s ->
                            fail
                              "mid-log corruption named record %d, expected \
                               %d"
                              s seq
                        | _ ->
                            Fail
                              "recovery replayed past mid-log corruption \
                               without a typed error")
                    | _ ->
                        fail
                          "verify_scan did not classify a bad CRC at seq %d \
                           as mid-log corruption"
                          seq))
            | _ ->
                fail "verify_scan did not report the torn tail (%d entries)"
                  torn
          in
          (match go 0 with Pass -> wal_legs () | r -> r))

(* ------------------------------------------------------------------ *)

let all =
  [
    {
      o_name = "astar-optimal";
      o_doc = "A* finds the exhaustive optimum (Section 4)";
      o_check = check_astar_optimal;
    };
    {
      o_name = "parallel-determinism";
      o_doc = "jobs=1 and jobs=N produce bit-identical results";
      o_check = check_parallel_determinism;
    };
    {
      o_name = "cache-equivalence";
      o_doc = "shared cost cache on/off leaves the optimum unchanged";
      o_check = check_cache_equivalence;
    };
    {
      o_name = "heuristics-bounded";
      o_doc = "optimum <= local search <= greedy <= empty design";
      o_check = check_heuristics_bounded;
    };
    {
      o_name = "space-staircase";
      o_doc = "Space.sweep staircase monotone, cost_at consistent (6.1)";
      o_check = check_space_staircase;
    };
    {
      o_name = "sensitivity";
      o_doc = "sensitivity ratios >= 1 and = 1 at the estimate (6.2)";
      o_check = check_sensitivity;
    };
    {
      o_name = "yao-bounds";
      o_doc = "yao / Y_WAP page estimators stay inside their bounds";
      o_check = check_yao_bounds;
    };
    {
      o_name = "maintenance-cycle";
      o_doc = "executed refresh: views exact, I/O inside the predicted band";
      o_check = check_maintenance_cycle;
    };
    (* Appended last: the trial RNG is keyed by registry position, so
       inserting earlier would perturb every older oracle's stream. *)
    {
      o_name = "fast-vs-slow-cost";
      o_doc = "packed delta-costing bitwise equal to the slow evaluator";
      o_check = check_fast_vs_slow;
    };
    (* Appended last — see the note above. *)
    {
      o_name = "crash-recovery";
      o_doc = "faulted refresh recovers bit-identical or rolls back cleanly";
      o_check = check_crash_recovery;
    };
    (* Appended last — see the note above. *)
    {
      o_name = "fast-vs-slow-compression";
      o_doc = "delta-costing bitwise equal to slow evaluator with compression";
      o_check = check_fast_vs_slow_compression;
    };
    (* Appended last — see the note above. *)
    {
      o_name = "group-commit-recovery";
      o_doc = "faulted group-commit stream on a compressed design recovers";
      o_check = check_group_commit_recovery;
    };
    {
      o_name = "service-replay";
      o_doc = "multi-tenant daemon end-state bit-identical at any jobs";
      o_check = check_service_replay;
    };
    (* Appended last — see the note above. *)
    {
      o_name = "mined-candidates";
      o_doc = "mined candidate space is sound; minsup 0 is bit-identical";
      o_check = check_mined_candidates;
    };
    (* Appended last — see the note above. *)
    {
      o_name = "corruption-recovery";
      o_doc = "scrub convicts all injected corruption; rebuilds bit-identical";
      o_check = check_corruption_recovery;
    };
  ]

let find name = List.find_opt (fun o -> o.o_name = name) all

let resolve name =
  match find name with
  | Some o -> Ok o
  | None ->
      Error
        (Printf.sprintf "unknown oracle %S (known: %s)" name
           (String.concat ", " (List.map (fun o -> o.o_name) all)))

let select names =
  let unknown =
    List.find_map
      (fun n -> match resolve n with Error e -> Some e | Ok _ -> None)
      names
  in
  match unknown with
  | Some e -> Error e
  | None -> Ok (List.filter (fun o -> List.mem o.o_name names) all)
