(* visserve — the multi-tenant advisor daemon on the simulated clock.

   Runs [Vis_service.Service] over N tenants of the executable validation
   schema: seeded zipfian delta streams, parallel group-commit refreshes,
   EWMA rate monitoring and sensitivity-gated online re-optimization with
   warm-started budgeted A*.  Everything is deterministic in
   (--seed, tenants, ticks): two runs at different --jobs print identical
   counters and signatures.

     visserve --tenants 3 --ticks 20 --seed 42 --jobs 4
     visserve --tenants 2 --ticks 12 --drift-tenant 0 --drift-factor 3 \
              --drift-at 4 --fault-tenant 1 --fault-nth 40 --stats

   Exit status: 0 on a clean run, 1 when any tenant's stream failed
   (a replayed batch exhausted its attempts), 2 on usage errors. *)

open Cmdliner
module Json = Vis_util.Json
module Service = Vis_service.Service
module Stream = Vis_service.Stream
module Faults = Vis_storage.Faults

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("visserve: " ^ msg);
      exit 2)
    fmt

(* ------------------------------------------------------------------ *)
(* Arguments. *)

let tenants_arg =
  let doc = "Number of tenants to register." in
  Arg.(value & opt int 3 & info [ "tenants" ] ~docv:"N" ~doc)

let ticks_arg =
  let doc = "Service ticks to run." in
  Arg.(value & opt int 20 & info [ "ticks" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Root seed of every stream draw." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc = "Domain-pool width for the parallel refresh rounds (and the \
             re-optimizer)." in
  Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N" ~doc)

let rate_arg =
  let doc = "Mean batches/tick of the heaviest tenant; tenant $(i,k) gets \
             this weighted by $(i,1/(k+1)^zipf)." in
  Arg.(value & opt float 3.0 & info [ "rate" ] ~docv:"R" ~doc)

let zipf_arg =
  let doc = "Zipf exponent skewing per-tenant rates." in
  Arg.(value & opt float 1.0 & info [ "zipf" ] ~docv:"S" ~doc)

let base_card_arg =
  let doc = "Base-relation cardinality of the validation schema each \
             tenant runs." in
  Arg.(value & opt float 400. & info [ "base-card" ] ~docv:"N" ~doc)

let drift_tenant_arg =
  let doc = "Tenant whose delta volume drifts (default: none)." in
  Arg.(value & opt (some int) None & info [ "drift-tenant" ] ~docv:"ID" ~doc)

let drift_factor_arg =
  let doc = "Step-drift volume factor." in
  Arg.(value & opt float 3.0 & info [ "drift-factor" ] ~docv:"F" ~doc)

let drift_at_arg =
  let doc = "Tick the step drift begins at." in
  Arg.(value & opt int 4 & info [ "drift-at" ] ~docv:"TICK" ~doc)

let fault_tenant_arg =
  let doc = "Tenant that gets a crash fault plan injected (default: none)." in
  Arg.(value & opt (some int) None & info [ "fault-tenant" ] ~docv:"ID" ~doc)

let fault_nth_arg =
  let doc = "The crash fires on this tenant's $(docv)-th page write." in
  Arg.(value & opt int 40 & info [ "fault-nth" ] ~docv:"N" ~doc)

let budget_arg =
  let doc = "A* expansion budget per re-optimization." in
  Arg.(value & opt int 20_000 & info [ "budget" ] ~docv:"N" ~doc)

let band_arg =
  let doc = "EWMA trigger band (e.g. 1.5 tolerates ±50% rate drift)." in
  Arg.(value & opt float 1.5 & info [ "band" ] ~docv:"F" ~doc)

let gate_arg =
  let doc = "Sensitivity-probe gate ratio above which a full \
             re-optimization runs." in
  Arg.(value & opt float 1.02 & info [ "gate" ] ~docv:"F" ~doc)

let warmup_arg =
  let doc = "Ticks before the monitor may trigger." in
  Arg.(value & opt int 2 & info [ "warmup" ] ~docv:"N" ~doc)

let minsup_arg =
  let doc =
    "Enable workload-driven re-optimization: before each budgeted search, \
     mine the tenant's recent synthetic query history at this minimum \
     support and restrict the candidate space to the mined features.  \
     Omitted: exhaustive enumeration (the pre-mining daemon, bit for bit)."
  in
  Arg.(value & opt (some float) None & info [ "minsup" ] ~docv:"F" ~doc)

let mine_arg =
  let doc = "Shorthand for $(b,--minsup) 0.1." in
  Arg.(value & flag & info [ "mine" ] ~doc)

let log_queries_arg =
  let doc = "Queries per mined tenant history (with $(b,--minsup))." in
  Arg.(value & opt int 256 & info [ "log-queries" ] ~docv:"N" ~doc)

let scrub_every_arg =
  let doc =
    "Build every tenant checksum-protected and run a scrub (detect, \
     quarantine, rebuild) pass over each tenant every $(docv) ticks.  \
     0 disables checksums and scrubbing."
  in
  Arg.(value & opt int 0 & info [ "scrub-every" ] ~docv:"N" ~doc)

let stats_arg =
  let doc = "Print the per-tenant counter table." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let json_arg =
  let doc = "Emit one machine-readable JSON report instead of the tables." in
  Arg.(value & flag & info [ "json" ] ~doc)

(* ------------------------------------------------------------------ *)

let tenant_json (s : Service.tenant_stats) signature =
  Json.Obj
    [
      ("id", Json.Int s.Service.ts_id);
      ("name", Json.String s.Service.ts_name);
      ("batches", Json.Int s.Service.ts_batches);
      ("rows", Json.Int s.Service.ts_rows);
      ("groups", Json.Int s.Service.ts_groups);
      ("group_syncs", Json.Int s.Service.ts_group_syncs);
      ("replayed", Json.Int s.Service.ts_replayed);
      ("failed", Json.Int s.Service.ts_failed);
      ("injected", Json.Int s.Service.ts_injected);
      ("rollbacks", Json.Int s.Service.ts_rollbacks);
      ("degraded", Json.Int s.Service.ts_degraded);
      ("io", Json.Int s.Service.ts_io);
      ("checks", Json.Int s.Service.ts_checks);
      ("gated", Json.Int s.Service.ts_gated);
      ("reopts", Json.Int s.Service.ts_reopts);
      ("bounded", Json.Int s.Service.ts_bounded);
      ("swaps", Json.Int s.Service.ts_swaps);
      ("scrubs", Json.Int s.Service.ts_scrubs);
      ("scrub_corrupt", Json.Int s.Service.ts_scrub_corrupt);
      ("scrub_rebuilt", Json.Int s.Service.ts_scrub_rebuilt);
      ("unrecoverable", Json.Int s.Service.ts_unrecoverable);
      ("opt_factor", Json.Float s.Service.ts_opt_factor);
      ("ewma_ratio", Json.Float s.Service.ts_ewma_ratio);
      ( "p99_latency_ms",
        Json.Float (Service.percentile ~p:0.99 s.Service.ts_latencies_ms) );
      ("signature", Json.String signature);
    ]

let serve tenants ticks seed jobs rate zipf base_card drift_tenant
    drift_factor drift_at fault_tenant fault_nth budget band gate warmup
    minsup mine log_queries scrub_every stats json =
  if tenants < 1 then die "--tenants must be >= 1";
  if ticks < 1 then die "--ticks must be >= 1";
  if jobs < 1 then die "--jobs must be >= 1";
  if band <= 1. then die "--band must be > 1";
  if scrub_every < 0 then die "--scrub-every must be >= 0";
  let minsup =
    match minsup with
    | Some s when s < 0. || s > 1. -> die "--minsup must be in [0,1]"
    | Some _ as s -> s
    | None -> if mine then Some 0.1 else None
  in
  if log_queries < 1 then die "--log-queries must be >= 1";
  let schema = Vis_workload.Schemas.validation ~base_card () in
  let config =
    {
      Service.default_config with
      Service.sv_seed = seed;
      sv_jobs = jobs;
      sv_budget = budget;
      sv_band = band;
      sv_gate = gate;
      sv_warmup = warmup;
      sv_minsup = minsup;
      sv_log_queries = log_queries;
      sv_scrub_every = scrub_every;
    }
  in
  let svc = Service.create ~config () in
  (* Every tenant runs the same schema, so one optimized design serves as
     every tenant's initial configuration — cheaper than re-searching per
     tenant and identical to what add_tenant would compute. *)
  let design =
    let r, _ =
      Vis_core.Astar.search_budgeted ~max_expanded:budget ~jobs
        (Vis_core.Problem.make schema)
    in
    r.Vis_core.Astar.best
  in
  for k = 0 to tenants - 1 do
    let drift =
      match drift_tenant with
      | Some id when id = k ->
          Stream.Step { at = drift_at; factor = drift_factor }
      | _ -> Stream.Constant
    in
    let faults =
      match fault_tenant with
      | Some id when id = k ->
          Some
            (Faults.make
               [
                 Faults.Fail_nth
                   { op = Some Faults.Write; n = fault_nth; kind = Faults.Crash };
               ])
      | _ -> None
    in
    ignore
      (Service.add_tenant ~seed:(seed + k)
         ~rate:(rate *. Stream.zipf_weight ~s:zipf ~rank:k)
         ~drift ?faults ~config:design svc schema)
  done;
  Service.run svc ~ticks;
  let totals = Service.totals svc in
  let per_tenant =
    List.map
      (fun id -> (Service.stats svc id, Service.signature svc id))
      (Service.tenant_ids svc)
  in
  let seconds = totals.Service.tt_clock_ms /. 1000. in
  let deltas_per_sec =
    if seconds > 0. then float_of_int totals.Service.tt_rows /. seconds else 0.
  in
  if json then
    print_endline
      (Json.to_string ~indent:2
         (Json.Obj
            [
              ("seed", Json.Int seed);
              ("jobs", Json.Int jobs);
              ("ticks", Json.Int ticks);
              ("tenants", Json.Int tenants);
              ("clock_ms", Json.Float totals.Service.tt_clock_ms);
              ("batches", Json.Int totals.Service.tt_batches);
              ("rows", Json.Int totals.Service.tt_rows);
              ("deltas_per_sec", Json.Float deltas_per_sec);
              ("failed", Json.Int totals.Service.tt_failed);
              ("reopts", Json.Int totals.Service.tt_reopts);
              ("swaps", Json.Int totals.Service.tt_swaps);
              ("scrubs", Json.Int totals.Service.tt_scrubs);
              ("scrub_corrupt", Json.Int totals.Service.tt_scrub_corrupt);
              ("scrub_rebuilt", Json.Int totals.Service.tt_scrub_rebuilt);
              ( "mean_latency_ms",
                Json.Float totals.Service.tt_mean_latency_ms );
              ("p99_latency_ms", Json.Float totals.Service.tt_p99_latency_ms);
              ( "tenants_detail",
                Json.List
                  (List.map (fun (s, sg) -> tenant_json s sg) per_tenant) );
            ]))
  else begin
    Printf.printf
      "served %d tenants for %d ticks (%.1f simulated s, seed %d, jobs %d)\n"
      tenants ticks seconds seed jobs;
    Printf.printf
      "  %d batches, %d delta rows (%.0f deltas/s), latency mean %.1f ms  \
       p99 %.1f ms\n"
      totals.Service.tt_batches totals.Service.tt_rows deltas_per_sec
      totals.Service.tt_mean_latency_ms totals.Service.tt_p99_latency_ms;
    Printf.printf "  re-optimizations %d, swaps %d, failed streams %d\n"
      totals.Service.tt_reopts totals.Service.tt_swaps
      totals.Service.tt_failed;
    if scrub_every > 0 then
      Printf.printf
        "  scrub passes %d, pages convicted %d, structures rebuilt %d\n"
        totals.Service.tt_scrubs totals.Service.tt_scrub_corrupt
        totals.Service.tt_scrub_rebuilt;
    if stats then begin
      let t =
        Vis_util.Tableprint.create
          [
            "tenant";
            "batches";
            "rows";
            "syncs";
            "replayed";
            "injected";
            "degraded";
            "checks";
            "gated";
            "reopts";
            "swaps";
            "p99 ms";
            "signature";
          ]
      in
      List.iter
        (fun ((s : Service.tenant_stats), signature) ->
          Vis_util.Tableprint.add_row t
            [
              s.Service.ts_name;
              string_of_int s.Service.ts_batches;
              string_of_int s.Service.ts_rows;
              string_of_int s.Service.ts_group_syncs;
              string_of_int s.Service.ts_replayed;
              string_of_int s.Service.ts_injected;
              string_of_int s.Service.ts_degraded;
              string_of_int s.Service.ts_checks;
              string_of_int s.Service.ts_gated;
              string_of_int s.Service.ts_reopts;
              string_of_int s.Service.ts_swaps;
              Printf.sprintf "%.1f"
                (Service.percentile ~p:0.99 s.Service.ts_latencies_ms);
              String.sub signature 0 (min 12 (String.length signature));
            ])
        per_tenant;
      Vis_util.Tableprint.print t
    end
  end;
  Service.shutdown svc;
  if totals.Service.tt_failed > 0 then exit 1

let cmd =
  let doc = "multi-tenant advisor daemon with online re-optimization" in
  let info = Cmd.info "visserve" ~doc in
  Cmd.v info
    Term.(
      const serve $ tenants_arg $ ticks_arg $ seed_arg $ jobs_arg $ rate_arg
      $ zipf_arg $ base_card_arg $ drift_tenant_arg $ drift_factor_arg
      $ drift_at_arg $ fault_tenant_arg $ fault_nth_arg $ budget_arg
      $ band_arg $ gate_arg $ warmup_arg $ minsup_arg $ mine_arg
      $ log_queries_arg $ scrub_every_arg $ stats_arg $ json_arg)

let () = exit (Cmd.eval cmd)
