(* visadvisor — command-line front end for the VIS optimizer.

   Subcommands:
     optimize     A* optimal view/index selection
     exhaustive   exhaustive baseline (small schemas only)
     greedy       greedy heuristic
     advise       Section-5 rules of thumb with per-decision explanations
     space        space-constrained sweep (Figures 10/11)
     sensitivity  delta-rate sensitivity (Figure 12)
     validate     execute one refresh on the storage engine
     dag          print the expression DAG
     example      print a sample schema description

   Running visadvisor with no subcommand is `optimize`.  The search
   subcommands take --stats (search counters, pruning, cache hit rates),
   --trace (the chosen design's update paths), and --json (one
   machine-readable document instead of the human tables).

   Schemas are read from a file in the vis_catalog DSL, or one of the
   built-ins (--builtin schema1|schema2|validation). *)

open Cmdliner

module Schema = Vis_catalog.Schema
module Config = Vis_costmodel.Config
module Cost = Vis_costmodel.Cost
module Element = Vis_costmodel.Element
module Json = Vis_util.Json
module T = Vis_util.Tableprint
module Problem = Vis_core.Problem
module Search_stats = Vis_core.Search_stats

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("visadvisor: " ^ msg);
      exit 2)
    fmt

(* "star8" -> Some 8, "snowflake7" -> Some 7 (relative to its prefix). *)
let parse_sized prefix name =
  let pl = String.length prefix in
  if String.length name > pl && String.sub name 0 pl = prefix then
    int_of_string_opt (String.sub name pl (String.length name - pl))
  else None

let load_schema file builtin =
  match (file, builtin) with
  | Some path, _ -> (
      try Vis_catalog.Dsl.parse_file path with
      | Vis_catalog.Dsl.Parse_error (line, msg) ->
          die "%s, line %d: %s" path line msg
      | Sys_error msg -> die "%s" msg)
  | None, "schema1" -> Vis_workload.Schemas.schema1 ()
  | None, "schema2" -> Vis_workload.Schemas.schema2 ()
  | None, "validation" -> Vis_workload.Schemas.validation ()
  | None, other -> (
      (* star<N>: a star warehouse of N relations (one fact, N−1 dims);
         snowflake<N>: N relations as (N−1)/2 arms normalized 2 deep. *)
      match (parse_sized "star" other, parse_sized "snowflake" other) with
      | Some k, _ when 3 <= k && k <= 25 ->
          Vis_workload.Schemas.star ~n_dims:(k - 1) ()
      | Some k, _ -> die "star<N>: N must be 3..25 relations (got %d)" k
      | _, Some k when k >= 5 && k mod 2 = 1 && k <= 25 ->
          Vis_workload.Schemas.snowflake ~arms:((k - 1) / 2) ~depth:2 ()
      | _, Some k -> die "snowflake<N>: N must be odd, 5..25 (got %d)" k
      | None, None ->
          die
            "unknown builtin schema %S (expected schema1, schema2, \
             validation, star<N> or snowflake<N>)"
            other)

let schema_name file builtin =
  match file with Some path -> path | None -> builtin

let file_arg =
  let doc = "Schema description file (vis DSL); see $(b,visadvisor example)." in
  Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)

let builtin_arg =
  let doc =
    "Built-in schema: schema1, schema2, validation, star$(b,N) (a star \
     warehouse of $(b,N) relations, e.g. star8) or snowflake$(b,N) \
     ($(b,N) odd: (N-1)/2 dimension arms normalized two levels deep, e.g. \
     snowflake7).  For the generated warehouses combine with \
     $(b,--connected-only) and $(b,--cap-views) to keep the candidate \
     lattice tractable."
  in
  Arg.(value & opt string "schema1" & info [ "builtin" ] ~docv:"NAME" ~doc)

let stats_arg =
  let doc =
    "Print search statistics: states expanded/generated, per-rule pruning \
     counts, frontier high-water mark, admissibility checks, per-phase \
     timings, and cost-cache hit rates."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let trace_arg =
  let doc =
    "Print the chosen design's full cost breakdown: every update path the \
     optimizer would execute, with per-component I/O estimates."
  in
  Arg.(value & flag & info [ "trace" ] ~doc)

let json_arg =
  let doc =
    "Emit one machine-readable JSON document (configuration, cost, search \
     statistics, cache counters, and the --trace breakdown) instead of the \
     human tables."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel search phases (default: the \
     $(b,VISMAT_JOBS) environment variable, else the number of cores). \
     The chosen design, its cost, and every search counter are identical \
     at any setting; only wall-clock time changes."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cap_views_arg =
  let doc =
    "Cap candidate supporting views at $(docv) base relations per view \
     (see Problem.make's max_view_rels).  Recommended for star/snowflake \
     builtins, whose full subset lattice is intractable."
  in
  Arg.(value & opt (some int) None & info [ "cap-views" ] ~docv:"K" ~doc)

let connected_only_arg =
  let doc =
    "Exclude cross-product candidate views (keep only connected relation \
     subsets).  The paper keeps them, so the default is off."
  in
  Arg.(value & flag & info [ "connected-only" ] ~doc)

let compression_arg =
  let doc =
    "Add page-level compression candidates: one per always-materialized \
     element (base replicas and the primary view), a third feature axis \
     the search trades on (reads x0.65, writes x1.10 per page, half the \
     stored pages).  Off by default — without it every cost is bitwise \
     identical to the compression-free model."
  in
  Arg.(value & flag & info [ "compression" ] ~doc)

let budget_arg =
  let doc =
    "Switch to the budgeted anytime search: stop after about $(docv) \
     expansions and report the best design found with a proven \
     optimality-gap certificate instead of failing."
  in
  Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"N" ~doc)

let beam_arg =
  let doc =
    "Beam width: cap every search frontier at $(docv) states, discarding \
     the least promising (their best discarded bound feeds the optimality \
     gap).  Implies the budgeted anytime mode."
  in
  Arg.(value & opt (some int) None & info [ "beam" ] ~docv:"B" ~doc)

let shard_arg =
  let doc =
    "Force the coarse-grained sharded search on ($(b,--shard=true)) or off \
     ($(b,--shard=false)).  Default: problems with at least 32 \
     post-dominance features shard, smaller ones run the single-queue \
     loop.  Results are identical either way."
  in
  Arg.(value & opt (some bool) None & info [ "shard" ] ~docv:"BOOL" ~doc)

let mine_arg =
  let doc =
    "Workload-driven mode: generate a seeded synthetic query log over the \
     schema, mine frequent access patterns (closed itemsets), and run the \
     search on the pruned, workload-proportional candidate set instead of \
     the exhaustive enumeration."
  in
  Arg.(value & flag & info [ "mine" ] ~doc)

let minsup_arg =
  let doc =
    "Minimum support for the miner, as a fraction of the log in [0, 1]: \
     an access pattern must appear in at least this share of queries to \
     yield candidates.  0 keeps full coverage (bit-identical to the \
     unpruned enumeration).  Implies $(b,--mine)."
  in
  Arg.(value & opt (some float) None & info [ "minsup" ] ~docv:"F" ~doc)

let log_queries_arg =
  let doc =
    "Number of synthetic queries to generate for mining.  Implies \
     $(b,--mine)."
  in
  Arg.(value & opt (some int) None & info [ "log-queries" ] ~docv:"N" ~doc)

let log_seed_arg =
  let doc = "Seed of the synthetic query log (mining is deterministic)." in
  Arg.(value & opt int 42 & info [ "log-seed" ] ~docv:"SEED" ~doc)

let log_zipf_arg =
  let doc =
    "Zipf skew of attribute popularity in the generated log; 0 makes \
     every query-relevant attribute equally popular."
  in
  Arg.(value & opt float 1.2 & info [ "log-zipf" ] ~docv:"S" ~doc)

let report_config schema config cost =
  Printf.printf "total maintenance cost: %.1f page I/Os\n" cost;
  Printf.printf "%s\n" (Config.describe schema config)

let print_cache_stats cache =
  let s = Cost.cache_stats cache in
  let tbl = T.create [ "cost cache"; "value" ] in
  T.add_row tbl [ "hits"; string_of_int s.Cost.cs_hits ];
  T.add_row tbl [ "misses (= derivations)"; string_of_int s.Cost.cs_misses ];
  T.add_row tbl [ "evictions"; string_of_int s.Cost.cs_evictions ];
  T.add_row tbl [ "entries"; string_of_int s.Cost.cs_entries ];
  T.add_row tbl
    [ "hit rate"; Printf.sprintf "%.2f%%" (100. *. Cost.hit_rate s) ];
  T.print tbl

(* One observability document shared by every search subcommand: what ran,
   what it chose, what it cost, and what the search and the cost cache did. *)
let emit_json ~schema_name ~algorithm ~schema ~p ~config ~cost ~search_stats
    ~extra =
  let report = Vis_core.Explain.explain p config in
  let doc =
    Json.Obj
      ([
         ("schema", Json.String schema_name);
         ("algorithm", Json.String algorithm);
         ("total_cost", Json.Float cost);
         ("config", Json.String (Config.describe schema config));
         ("space_pages", Json.Float (Config.space p.Problem.derived config));
         ("search", Search_stats.to_json search_stats);
         ("cache", Cost.cache_stats_json p.Problem.cache);
         ( "incremental_costing",
           match p.Problem.encoding with
           | Some enc -> Cost.incr_stats_json enc
           | None -> Json.Null );
         ("explain", Vis_core.Explain.report_json report);
       ]
      @ extra)
  in
  print_endline (Json.to_string ~indent:2 doc)

let print_incr_stats enc =
  let s = Cost.incr_stats enc in
  let tbl = T.create [ "incremental costing"; "value" ] in
  T.add_row tbl [ "full evaluations"; string_of_int s.Cost.is_full ];
  T.add_row tbl [ "delta evaluations"; string_of_int s.Cost.is_delta ];
  T.add_row tbl [ "reused unchanged"; string_of_int s.Cost.is_reused ];
  T.add_row tbl [ "elements computed"; string_of_int s.Cost.is_elems_computed ];
  T.add_row tbl [ "elements copied"; string_of_int s.Cost.is_elems_copied ];
  T.print tbl

let emit_human ~stats ~trace ~schema ~p ~config ~search_stats () =
  if stats then begin
    print_newline ();
    print_string (Search_stats.render search_stats);
    print_newline ();
    print_cache_stats p.Problem.cache;
    match p.Problem.encoding with
    | Some enc ->
        print_newline ();
        print_incr_stats enc
    | None -> ()
  end;
  if trace then begin
    print_newline ();
    print_string (Vis_core.Explain.render (Vis_core.Explain.explain p config))
  end;
  ignore schema

let certificate_json = function
  | Vis_core.Astar.Optimal -> Json.Obj [ ("optimal", Json.Bool true) ]
  | Vis_core.Astar.Bounded { lower_bound; gap } ->
      Json.Obj
        [
          ("optimal", Json.Bool false);
          ("lower_bound", Json.Float lower_bound);
          ("gap", Json.Float gap);
        ]

let print_certificate = function
  | Vis_core.Astar.Optimal -> print_endline "certificate: optimal"
  | Vis_core.Astar.Bounded { lower_bound; gap } ->
      Printf.printf
        "certificate: best found (optimum is >= %.1f, gap <= %.1f%%)\n"
        lower_bound (100. *. gap)

(* Fail fast on nonsense worker counts instead of handing them to the
   domain pool downstream. *)
let check_jobs jobs =
  match jobs with
  | Some j when j < 1 -> die "--jobs must be >= 1 (got %d)" j
  | _ -> ()

let run_optimize file builtin stats trace json jobs cap_views connected_only
    compression budget beam shard mine minsup log_queries log_seed log_zipf =
  check_jobs jobs;
  let schema = load_schema file builtin in
  let mine = mine || minsup <> None || log_queries <> None in
  let make ?candidates () =
    Problem.make ~connected_only ~compression ?max_view_rels:cap_views
      ?candidates schema
  in
  (* Workload-driven mode: the unpruned problem is still enumerated (its
     feature count is the reduction baseline) but only the mined one is
     searched. *)
  let p, mining =
    if not mine then (make (), None)
    else begin
      let minsup = Option.value ~default:0.1 minsup in
      if minsup < 0. || minsup > 1. then
        die "--minsup must be in [0,1] (got %g)" minsup;
      let n = Option.value ~default:400 log_queries in
      if n < 1 then die "--log-queries must be >= 1 (got %d)" n;
      let log =
        Vis_workload.Querygen.generate ~seed:log_seed ~n ~zipf:log_zipf schema
      in
      let m = Vis_workload.Miner.mine ~minsup schema log in
      let p_full = make () in
      let p = make ~candidates:m.Vis_workload.Miner.m_candidates () in
      (p, Some (m, p_full))
    end
  in
  let budgeted = budget <> None || beam <> None in
  let r, certificate =
    if budgeted then
      let r, c =
        Vis_core.Astar.search_budgeted ?max_expanded:budget ?beam ?jobs ?shard
          p
      in
      (r, Some c)
    else (Vis_core.Astar.search ?jobs ?shard p, None)
  in
  let sstats = r.Vis_core.Astar.search_stats in
  let ex_states = r.Vis_core.Astar.stats.Vis_core.Astar.exhaustive_states in
  let mining_json =
    match mining with
    | None -> []
    | Some (m, p_full) ->
        let st = m.Vis_workload.Miner.m_stats in
        [
          ( "mining",
            Json.Obj
              [
                ("queries", Json.Int st.Vis_workload.Miner.mn_queries);
                ("support_threshold", Json.Int st.Vis_workload.Miner.mn_threshold);
                ("attr_universe", Json.Int st.Vis_workload.Miner.mn_universe);
                ("frequent_attrs", Json.Int st.Vis_workload.Miner.mn_frequent_attrs);
                ("closed_itemsets", Json.Int st.Vis_workload.Miner.mn_itemsets);
                ("views_full", Json.Int (List.length p_full.Problem.candidate_views));
                ("views_mined", Json.Int (List.length p.Problem.candidate_views));
                ("features_full", Json.Int (List.length p_full.Problem.features));
                ("features_mined", Json.Int (List.length p.Problem.features));
              ] );
        ]
  in
  if json then
    emit_json ~schema_name:(schema_name file builtin) ~algorithm:"astar"
      ~schema ~p ~config:r.Vis_core.Astar.best ~cost:r.Vis_core.Astar.best_cost
      ~search_stats:sstats
      ~extra:
        (("exhaustive_states", Json.Float ex_states)
        :: (mining_json
           @
           match certificate with
           | Some c -> [ ("certificate", certificate_json c) ]
           | None -> []))
  else begin
    (match mining with
    | None -> ()
    | Some (m, p_full) ->
        let st = m.Vis_workload.Miner.m_stats in
        Printf.printf
          "mined %d queries at support >= %d: %d/%d frequent attributes, %d \
           closed itemsets; candidates %d -> %d views, %d -> %d features\n"
          st.Vis_workload.Miner.mn_queries st.Vis_workload.Miner.mn_threshold
          st.Vis_workload.Miner.mn_frequent_attrs
          st.Vis_workload.Miner.mn_universe st.Vis_workload.Miner.mn_itemsets
          (List.length p_full.Problem.candidate_views)
          (List.length p.Problem.candidate_views)
          (List.length p_full.Problem.features)
          (List.length p.Problem.features));
    Printf.printf
      "A* expanded %d states (exhaustive space: %.0f, pruning %.2f%%)\n"
      r.Vis_core.Astar.stats.Vis_core.Astar.expanded ex_states
      (100.
      *. (1.
         -. float_of_int r.Vis_core.Astar.stats.Vis_core.Astar.expanded
            /. Float.max 1. ex_states));
    report_config schema r.Vis_core.Astar.best r.Vis_core.Astar.best_cost;
    Option.iter print_certificate certificate;
    emit_human ~stats ~trace ~schema ~p ~config:r.Vis_core.Astar.best
      ~search_stats:sstats ()
  end

let optimize_term =
  Term.(
    const run_optimize $ file_arg $ builtin_arg $ stats_arg $ trace_arg
    $ json_arg $ jobs_arg $ cap_views_arg $ connected_only_arg
    $ compression_arg $ budget_arg $ beam_arg $ shard_arg $ mine_arg
    $ minsup_arg $ log_queries_arg $ log_seed_arg $ log_zipf_arg)

let optimize_cmd =
  Cmd.v (Cmd.info "optimize" ~doc:"Optimal view/index selection with A*")
    optimize_term

let exhaustive_cmd =
  let run file builtin stats trace json jobs =
    check_jobs jobs;
    let schema = load_schema file builtin in
    let p = Problem.make schema in
    let r = Vis_core.Exhaustive.search ?jobs p in
    let sstats = r.Vis_core.Exhaustive.search_stats in
    if json then
      emit_json ~schema_name:(schema_name file builtin) ~algorithm:"exhaustive"
        ~schema ~p ~config:r.Vis_core.Exhaustive.best
        ~cost:r.Vis_core.Exhaustive.best_cost ~search_stats:sstats ~extra:[]
    else begin
      Printf.printf "exhaustive enumerated %d states\n"
        r.Vis_core.Exhaustive.states;
      report_config schema r.Vis_core.Exhaustive.best
        r.Vis_core.Exhaustive.best_cost;
      emit_human ~stats ~trace ~schema ~p ~config:r.Vis_core.Exhaustive.best
        ~search_stats:sstats ()
    end
  in
  Cmd.v
    (Cmd.info "exhaustive" ~doc:"Exhaustive baseline (small schemas only)")
    Term.(
      const run $ file_arg $ builtin_arg $ stats_arg $ trace_arg $ json_arg
      $ jobs_arg)

let greedy_cmd =
  let run file builtin stats trace json jobs =
    check_jobs jobs;
    let schema = load_schema file builtin in
    let p = Problem.make schema in
    let r = Vis_core.Greedy.search ?jobs p in
    let sstats = r.Vis_core.Greedy.search_stats in
    if json then
      emit_json ~schema_name:(schema_name file builtin) ~algorithm:"greedy"
        ~schema ~p ~config:r.Vis_core.Greedy.best
        ~cost:r.Vis_core.Greedy.best_cost ~search_stats:sstats ~extra:[]
    else begin
      Printf.printf "greedy evaluated %d configurations\n"
        r.Vis_core.Greedy.evaluations;
      List.iter
        (fun s ->
          Printf.printf "  + %s -> %.1f\n"
            (Problem.feature_name p s.Vis_core.Greedy.s_feature)
            s.Vis_core.Greedy.s_cost_after)
        r.Vis_core.Greedy.steps;
      report_config schema r.Vis_core.Greedy.best r.Vis_core.Greedy.best_cost;
      emit_human ~stats ~trace ~schema ~p ~config:r.Vis_core.Greedy.best
        ~search_stats:sstats ()
    end
  in
  Cmd.v
    (Cmd.info "greedy" ~doc:"Greedy heuristic")
    Term.(
      const run $ file_arg $ builtin_arg $ stats_arg $ trace_arg $ json_arg
      $ jobs_arg)

let advise_cmd =
  let run file builtin =
    let schema = load_schema file builtin in
    let p = Problem.make schema in
    let a = Vis_core.Rules.advise p in
    List.iter
      (fun d ->
        Printf.printf "%s %-22s rule %-8s benefit %10.0f cost %10.0f  %s\n"
          (if d.Vis_core.Rules.d_chosen then "+" else "-")
          (Problem.feature_name p d.Vis_core.Rules.d_feature)
          d.Vis_core.Rules.d_rule d.Vis_core.Rules.d_benefit
          d.Vis_core.Rules.d_cost d.Vis_core.Rules.d_why)
      a.Vis_core.Rules.a_decisions;
    let cost = Problem.total p a.Vis_core.Rules.a_config in
    report_config schema a.Vis_core.Rules.a_config cost
  in
  Cmd.v
    (Cmd.info "advise" ~doc:"Rules-of-thumb advisor (Section 5)")
    Term.(const run $ file_arg $ builtin_arg)

let explain_cmd =
  let run file builtin algorithm json =
    let schema = load_schema file builtin in
    let p = Problem.make schema in
    let config =
      match algorithm with
      | "optimal" -> (Vis_core.Astar.search p).Vis_core.Astar.best
      | "greedy" -> (Vis_core.Greedy.search p).Vis_core.Greedy.best
      | "local" -> (Vis_core.Local_search.search p).Vis_core.Local_search.best
      | "rules" -> (Vis_core.Rules.advise p).Vis_core.Rules.a_config
      | "none" -> Config.empty
      | other -> Printf.ksprintf failwith "unknown algorithm %s" other
    in
    if json then
      print_endline
        (Json.to_string ~indent:2
           (Vis_core.Explain.report_json (Vis_core.Explain.explain p config)))
    else begin
      print_string
        (Vis_core.Explain.render (Vis_core.Explain.explain p config));
      print_newline ();
      print_string
        (Vis_core.Explain.compare_designs p
           [ ("bare", Config.empty); ("chosen", config) ])
    end
  in
  let algorithm =
    Arg.(
      value & opt string "optimal"
      & info [ "algorithm" ] ~docv:"ALG"
          ~doc:"Design to explain: optimal, greedy, local, rules or none.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show every update path and cost component of a design")
    Term.(const run $ file_arg $ builtin_arg $ algorithm $ json_arg)

let space_cmd =
  let run file builtin =
    let schema = load_schema file builtin in
    let p = Problem.make schema in
    let sw = Vis_core.Space.sweep p in
    Printf.printf
      "base relations: %.0f pages; unconstrained optimum: %.1f I/Os\n"
      sw.Vis_core.Space.sw_base_pages sw.Vis_core.Space.sw_unconstrained_cost;
    List.iter
      (fun st ->
        Printf.printf "space %8.0f (%.3f of base)  cost %10.1f  +[%s] -[%s]\n"
          st.Vis_core.Space.st_space
          (st.Vis_core.Space.st_space /. sw.Vis_core.Space.sw_base_pages)
          st.Vis_core.Space.st_cost
          (String.concat ", " st.Vis_core.Space.st_added)
          (String.concat ", " st.Vis_core.Space.st_dropped))
      sw.Vis_core.Space.sw_steps
  in
  Cmd.v
    (Cmd.info "space" ~doc:"Space-constrained sweep (Section 6.1)")
    Term.(const run $ file_arg $ builtin_arg)

let sensitivity_cmd =
  let run () =
    let rates = [ 0.001; 0.00316; 0.01; 0.0316; 0.1 ] in
    let make rate =
      Vis_workload.Schemas.schema1 ~ins_frac:(rate /. 2.) ~del_frac:(rate /. 2.) ()
    in
    let series =
      Vis_core.Sensitivity.sweep ~make_schema:make ~values:rates
    in
    List.iter
      (fun s ->
        Printf.printf "estimated %-8g:" s.Vis_core.Sensitivity.se_estimate;
        List.iter
          (fun (actual, ratio) -> Printf.printf "  %g->%.2f" actual ratio)
          s.Vis_core.Sensitivity.se_ratios;
        print_newline ())
      series
  in
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"Sensitivity of the optimum to the insertion-deletion rate (Section 6.2)")
    Term.(const run $ const ())

let validate_cmd =
  let run seed faults fault_seed scrub damage stats json =
    if faults < 0 then die "--faults must be >= 0 (got %d)" faults;
    if damage < 1 then die "--damage must be >= 1 (got %d)" damage;
    let schema = Vis_workload.Schemas.validation () in
    let p = Problem.make schema in
    let r = Vis_core.Astar.search p in
    let best = r.Vis_core.Astar.best in
    let report, checks = Vis_maintenance.Validate.run_cycle ~seed schema best in
    let module R = Vis_maintenance.Refresh in
    if json then
      print_endline
        (Json.to_string ~indent:2
           (Json.Obj
              [
                ("config", Json.String (Config.describe schema best));
                ("predicted_io", Json.Float report.R.rp_predicted);
                ("measured_io", Json.Int (R.total_io report));
                ("reads", Json.Int report.R.rp_reads);
                ("writes", Json.Int report.R.rp_writes);
                ("accesses", Json.Int report.R.rp_accesses);
                ("wal_writes", Json.Int report.R.rp_wal_writes);
                ("wal_syncs", Json.Int report.R.rp_wal_syncs);
                ( "pool",
                  Json.Obj
                    [
                      ("hits", Json.Int report.R.rp_pool_hits);
                      ("misses", Json.Int report.R.rp_pool_misses);
                      ("evictions", Json.Int report.R.rp_pool_evictions);
                      ("overflows", Json.Int report.R.rp_pool_overflows);
                    ] );
                ( "views",
                  Json.List
                    (List.map
                       (fun c ->
                         Json.Obj
                           [
                             ("view", Json.String c.Vis_maintenance.Validate.vc_view);
                             ("expected", Json.Int c.Vis_maintenance.Validate.vc_expected);
                             ("stored", Json.Int c.Vis_maintenance.Validate.vc_actual);
                             ("ok", Json.Bool c.Vis_maintenance.Validate.vc_ok);
                           ])
                       checks) );
              ]))
    else begin
      Printf.printf "config: %s\n" (Config.describe schema best);
      Printf.printf "predicted I/O: %.0f, measured: %d (reads %d, writes %d)\n"
        report.R.rp_predicted
        (R.total_io report)
        report.R.rp_reads report.R.rp_writes;
      if stats then begin
        let accesses = report.R.rp_pool_hits + report.R.rp_pool_misses in
        Printf.printf
          "pool: hits %d, misses %d (hit rate %.1f%%), evictions %d, \
           overflows %d\n"
          report.R.rp_pool_hits report.R.rp_pool_misses
          (if accesses = 0 then 0.
           else 100. *. float_of_int report.R.rp_pool_hits /. float_of_int accesses)
          report.R.rp_pool_evictions report.R.rp_pool_overflows;
        Printf.printf "wal: %d page writes, %d syncs\n" report.R.rp_wal_writes
          report.R.rp_wal_syncs
      end;
      List.iter
        (fun c ->
          Printf.printf "view %-8s expected %6d stored %6d %s\n"
            c.Vis_maintenance.Validate.vc_view c.Vis_maintenance.Validate.vc_expected
            c.Vis_maintenance.Validate.vc_actual
            (if c.Vis_maintenance.Validate.vc_ok then "OK" else "MISMATCH"))
        checks
    end;
    let ok = ref (Vis_maintenance.Validate.all_ok checks) in
    if faults > 0 then begin
      let module Datagen = Vis_workload.Datagen in
      let module Warehouse = Vis_maintenance.Warehouse in
      let module Refresh = Vis_maintenance.Refresh in
      let module Faults = Vis_storage.Faults in
      (* The same world [run_cycle] built, reconstructible on demand. *)
      let world () =
        let rng = Random.State.make [| seed |] in
        let ds = Datagen.generate ~rng schema in
        let w = Warehouse.build schema best ds in
        let batch = Datagen.deltas ~rng schema ds in
        (w, batch)
      in
      let w_ref, batch_ref = world () in
      ignore (Refresh.run w_ref batch_ref);
      let physical_ref = Warehouse.signature w_ref in
      let logical_ref = Warehouse.logical_signature w_ref in
      for trial = 1 to faults do
        let w, batch = world () in
        let pre = Warehouse.signature w in
        let plan =
          Faults.random ~rng:(Random.State.make [| fault_seed; trial |]) ()
        in
        let verdict, stats =
          match Refresh.run_protected ~faults:plan w batch with
          | Ok (_, fs) ->
              let v =
                if fs.Refresh.fs_degraded then
                  if Warehouse.logical_signature w = logical_ref then
                    "degraded, logically exact"
                  else begin ok := false; "DEGRADED VIEW MISMATCH" end
                else if Warehouse.signature w = physical_ref then
                  "recovered bit-identical"
                else begin ok := false; "RECOVERED STATE MISMATCH" end
              in
              (v, fs)
          | Error e ->
              let v =
                if Warehouse.signature w = pre then
                  Format.asprintf "rolled back cleanly (%a)" Faults.pp_fault
                    e.Refresh.err_fault
                else begin ok := false; "ROLLBACK MISMATCH" end
              in
              (v, e.Refresh.err_stats)
        in
        (match Warehouse.integrity_check w with
        | Ok () -> ()
        | Error m ->
            ok := false;
            Printf.printf "fault trial %2d: INTEGRITY: %s\n" trial m);
        Printf.printf
          "fault trial %2d: attempts %d, injected %d, retries %d (backoff \
           %.1fms), rollbacks %d, undone %d, wal %d rec/%d pages — %s\n"
          trial stats.Refresh.fs_attempts stats.Refresh.fs_injected
          stats.Refresh.fs_retries stats.Refresh.fs_backoff_ms
          stats.Refresh.fs_rollbacks stats.Refresh.fs_undone
          stats.Refresh.fs_wal_records stats.Refresh.fs_wal_pages verdict
      done
    end;
    if scrub then begin
      let module W = Vis_maintenance.Warehouse in
      let c = Vis_maintenance.Validate.scrub_cycle ~seed ~damage schema best in
      let r = c.Vis_maintenance.Validate.sk_report in
      let detected_all = r.W.sc_corrupt = c.Vis_maintenance.Validate.sk_injected in
      Printf.printf
        "scrub: injected %d, scanned %d, convicted %d, views rebuilt %d, \
         indexes rebuilt %d, unrecoverable %d — %s\n"
        c.Vis_maintenance.Validate.sk_injected r.W.sc_scanned r.W.sc_corrupt
        r.W.sc_views_rebuilt r.W.sc_indexes_rebuilt
        (List.length r.W.sc_unrecoverable)
        (if
           detected_all
           && c.Vis_maintenance.Validate.sk_views_ok
           && c.Vis_maintenance.Validate.sk_integrity_ok
         then "repaired, views exact"
         else "SCRUB FAILURE");
      if not detected_all then begin
        ok := false;
        Printf.printf "scrub: DETECTION MISS (%d of %d damaged pages)\n"
          r.W.sc_corrupt c.Vis_maintenance.Validate.sk_injected
      end;
      if not c.Vis_maintenance.Validate.sk_views_ok then begin
        ok := false;
        print_endline "scrub: POST-REPAIR VIEW MISMATCH"
      end;
      if not c.Vis_maintenance.Validate.sk_integrity_ok then begin
        ok := false;
        print_endline "scrub: POST-REPAIR INTEGRITY FAILURE"
      end
    end;
    if not !ok then exit 1
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")
  in
  let faults =
    Arg.(
      value & opt int 0
      & info [ "faults" ] ~docv:"N"
          ~doc:
            "Additionally run $(docv) WAL-protected refreshes under random \
             seeded fault plans and check the recover-or-rollback guarantee.")
  in
  let fault_seed =
    Arg.(
      value & opt int 0
      & info [ "fault-seed" ] ~docv:"S"
          ~doc:"Seed for the injected fault plans.")
  in
  let scrub =
    Arg.(
      value & flag
      & info [ "scrub" ]
          ~doc:
            "Additionally run the corruption-recovery cycle: build \
             checksum-protected, inject seeded bit-flips/torn-writes into \
             rebuildable pages, scrub, and re-verify every view and index.")
  in
  let damage =
    Arg.(
      value & opt int 3
      & info [ "damage" ] ~docv:"N"
          ~doc:"Pages to damage in the $(b,--scrub) cycle.")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Execute one refresh on the storage engine and check correctness")
    Term.(
      const run $ seed $ faults $ fault_seed $ scrub $ damage $ stats_arg
      $ json_arg)

let dag_cmd =
  let run file builtin =
    let schema = load_schema file builtin in
    let p = Problem.make schema in
    Format.printf "%a@." (fun ppf () -> Vis_core.Dag.pp p ppf ()) ()
  in
  Cmd.v
    (Cmd.info "dag" ~doc:"Print the primary view's expression DAG (Figure 3)")
    Term.(const run $ file_arg $ builtin_arg)

let example_cmd =
  let run () =
    print_string (Vis_catalog.Dsl.to_string (Vis_workload.Schemas.schema1 ()))
  in
  Cmd.v
    (Cmd.info "example" ~doc:"Print a sample schema description (Schema 1)")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "visadvisor" ~version:"1.0.0"
      ~doc:
        "View and index selection for data warehouse maintenance (Labio, \
         Quass & Adelberg, ICDE 1997)"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default:optimize_term info
          [
            optimize_cmd;
            exhaustive_cmd;
            greedy_cmd;
            advise_cmd;
            explain_cmd;
            space_cmd;
            sensitivity_cmd;
            validate_cmd;
            dag_cmd;
            example_cmd;
          ]))
