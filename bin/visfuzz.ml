(* visfuzz — property-based fuzzer for the VIS optimizer stack.

   Each trial generates a random bounded schema and checks it against a
   registry of differential oracles: A* vs exhaustive enumeration, parallel
   vs sequential search, the cost-cache ablation, heuristic orderings, the
   Section-6 staircase and sensitivity shapes, the Appendix-A page
   estimators, and executed refreshes on the storage engine.  Failing
   schemas are shrunk to minimal repros and written as replayable JSON.

     visfuzz --seed 42 --trials 200
     visfuzz --seed 42 --trials 5000 --time-budget 600 --out repros
     visfuzz --oracles astar-optimal,space-staircase --stats
     visfuzz --replay repros/repro-17-astar-optimal.json

   Exit status: 0 when every trial passed, 1 on any oracle failure,
   2 on usage errors. *)

open Cmdliner
module Json = Vis_util.Json
module Oracles = Vis_fuzz.Oracles
module Runner = Vis_fuzz.Runner
module Repro = Vis_fuzz.Repro

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("visfuzz: " ^ msg);
      exit 2)
    fmt

let ensure_dir path =
  match Unix.mkdir path 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | exception Unix.Unix_error (e, _, _) ->
      die "cannot create %s: %s" path (Unix.error_message e)

let outcome_tag = function
  | Oracles.Pass -> "pass"
  | Oracles.Skip _ -> "skip"
  | Oracles.Fail _ -> "FAIL"

let outcome_detail = function
  | Oracles.Pass -> ""
  | Oracles.Skip reason -> ": " ^ reason
  | Oracles.Fail msg -> ": " ^ msg

(* ------------------------------------------------------------------ *)
(* Arguments. *)

let seed_arg =
  let doc = "Seed for the deterministic trial stream." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc)

let trials_arg =
  let doc = "Maximum number of trials." in
  Arg.(value & opt int 100 & info [ "trials" ] ~docv:"N" ~doc)

let budget_arg =
  let doc = "Stop after $(docv) seconds of wall clock, whichever of trial \
             count and budget comes first." in
  Arg.(value & opt (some float) None & info [ "time-budget" ] ~docv:"SECONDS" ~doc)

let oracles_arg =
  let doc = "Comma-separated oracle names to run (default: all); see \
             $(b,--list-oracles)." in
  Arg.(value & opt (some string) None & info [ "oracles" ] ~docv:"NAMES" ~doc)

let replay_arg =
  let doc = "Replay a saved repro JSON against its recorded oracle instead \
             of fuzzing." in
  (* A plain string, not [Arg.file]: a missing path should get the same
     one-line file-naming diagnostic (exit 2) as a malformed one, not a
     cmdliner usage dump. *)
  Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)

let stats_arg =
  let doc = "Print the per-oracle pass/skip/fail table." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let json_arg =
  let doc = "Emit one machine-readable JSON report instead of the tables." in
  Arg.(value & flag & info [ "json" ] ~doc)

let out_arg =
  let doc = "Directory for repro JSON files of any failures." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc)

let max_states_arg =
  let doc = "State-count budget above which exhaustive-comparison oracles \
             skip an instance." in
  Arg.(value & opt float 20_000. & info [ "max-states" ] ~docv:"N" ~doc)

let io_band_arg =
  let doc = "Allowed measured/predicted I/O ratio band for executed \
             refreshes." in
  Arg.(value & opt float 25. & info [ "io-band" ] ~docv:"FACTOR" ~doc)

let exec_tuples_arg =
  let doc = "Total-cardinality budget above which the maintenance oracle \
             skips an instance." in
  Arg.(value & opt float 20_000. & info [ "exec-tuples" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc = "Worker-pool width checked against the sequential run by the \
             determinism oracle." in
  Arg.(value & opt int 3 & info [ "jobs" ] ~docv:"N" ~doc)

let faults_arg =
  let doc = "Random fault plans the crash-recovery oracle injects per \
             schema." in
  Arg.(value & opt int 1 & info [ "faults" ] ~docv:"N" ~doc)

let fault_seed_arg =
  let doc = "Extra seed folded into the crash-recovery oracle's fault \
             plans; vary it to explore different fault schedules over the \
             same schema stream." in
  Arg.(value & opt int 0 & info [ "fault-seed" ] ~docv:"N" ~doc)

let no_shrink_arg =
  let doc = "Report failing schemas as generated, without minimization." in
  Arg.(value & flag & info [ "no-shrink" ] ~doc)

let max_failures_arg =
  let doc = "Stop fuzzing after $(docv) failures." in
  Arg.(value & opt int 20 & info [ "max-failures" ] ~docv:"N" ~doc)

let list_arg =
  let doc = "List the registered oracles and exit." in
  Arg.(value & flag & info [ "list-oracles" ] ~doc)

(* ------------------------------------------------------------------ *)
(* Modes. *)

let list_oracles () =
  let t = Vis_util.Tableprint.create [ "oracle"; "checks" ] in
  List.iter
    (fun (o : Oracles.t) -> Vis_util.Tableprint.add_row t [ o.o_name; o.o_doc ])
    Oracles.all;
  Vis_util.Tableprint.print t

let select_oracles = function
  | None -> Oracles.all
  | Some names -> (
      let names =
        String.split_on_char ',' names
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      match Oracles.select names with
      | Ok oracles -> oracles
      | Error msg -> die "%s" msg)

let replay config path json =
  let repro = try Repro.load path with
    | Repro.Malformed msg -> die "%s: %s" path msg
    | Json.Parse_error msg -> die "%s: %s" path msg
    | Vis_catalog.Schema.Invalid msg -> die "%s: field %S: %s" path "schema" msg
    | Sys_error msg -> die "%s" msg
  in
  let config =
    {
      config with
      Runner.cf_seed = repro.Repro.r_seed;
      cf_oracles =
        (match Oracles.resolve repro.Repro.r_oracle with
        | Ok o -> [ o ]
        | Error msg -> die "%s: field %S: %s" path "oracle" msg);
    }
  in
  let outcomes =
    Runner.check_schema config ~trial:repro.Repro.r_trial repro.Repro.r_schema
  in
  let failed =
    List.exists (fun (_, o) -> match o with Oracles.Fail _ -> true | _ -> false)
      outcomes
  in
  if json then
    print_endline
      (Json.to_string ~indent:2
         (Json.Obj
            [
              ("replay", Json.String path);
              ("seed", Json.Int repro.Repro.r_seed);
              ("trial", Json.Int repro.Repro.r_trial);
              ("recorded_failure", Json.String repro.Repro.r_failure);
              ( "outcomes",
                Json.List
                  (List.map
                     (fun (name, o) ->
                       Json.Obj
                         [
                           ("oracle", Json.String name);
                           ("outcome", Json.String (outcome_tag o));
                           ( "detail",
                             Json.String
                               (match o with
                               | Oracles.Pass -> ""
                               | Oracles.Skip r | Oracles.Fail r -> r) );
                         ])
                     outcomes) );
            ]))
  else begin
    Printf.printf "replaying %s (seed %d, trial %d)\n" path repro.Repro.r_seed
      repro.Repro.r_trial;
    Printf.printf "recorded failure: %s\n" repro.Repro.r_failure;
    List.iter
      (fun (name, o) ->
        Printf.printf "%-22s %s%s\n" name (outcome_tag o) (outcome_detail o))
      outcomes
  end;
  if failed then exit 1

let save_repros out report =
  match (out, report.Runner.rp_failures) with
  | None, _ | _, [] -> ()
  | Some dir, failures ->
      ensure_dir dir;
      List.iter
        (fun (f : Runner.failure) ->
          let path =
            Filename.concat dir
              (Printf.sprintf "repro-%d-%s.json" f.Runner.f_trial
                 f.Runner.f_oracle)
          in
          Repro.save path
            (Runner.failure_to_repro ~seed:report.Runner.rp_config.cf_seed f);
          Printf.printf "wrote %s\n" path)
        failures

let fuzz seed trials budget oracles stats json out max_states io_band
    exec_tuples jobs faults fault_seed no_shrink max_failures list replay_file
    =
  if list then (list_oracles (); exit 0);
  if trials < 1 then die "--trials must be >= 1 (got %d)" trials;
  if jobs < 1 then die "--jobs must be >= 1 (got %d)" jobs;
  if faults < 0 then die "--faults must be >= 0 (got %d)" faults;
  if max_failures < 1 then die "--max-failures must be >= 1 (got %d)" max_failures;
  let config =
    {
      Runner.cf_seed = seed;
      cf_trials = trials;
      cf_time_budget = budget;
      cf_oracles = select_oracles oracles;
      cf_max_states = max_states;
      cf_io_band = io_band;
      cf_exec_tuples = exec_tuples;
      cf_jobs = jobs;
      cf_fault_seed = fault_seed;
      cf_fault_rounds = faults;
      cf_shrink = not no_shrink;
      cf_max_failures = max_failures;
    }
  in
  match replay_file with
  | Some path -> replay config path json
  | None ->
      let report = Runner.run config in
      if json then
        print_endline (Json.to_string ~indent:2 (Runner.report_json report))
      else begin
        if stats then print_string (Runner.render report)
        else begin
          Printf.printf "seed %d: %d trials in %.1fs, %d failures\n"
            config.Runner.cf_seed report.Runner.rp_trials_run
            report.Runner.rp_elapsed
            (List.length report.Runner.rp_failures);
          List.iter
            (fun (f : Runner.failure) ->
              Printf.printf "FAIL trial %d oracle %s: %s\n" f.Runner.f_trial
                f.Runner.f_oracle f.Runner.f_message)
            report.Runner.rp_failures
        end
      end;
      save_repros out report;
      if report.Runner.rp_failures <> [] then exit 1

let cmd =
  let doc = "property-based fuzzing of the VIS optimizer stack" in
  let info = Cmd.info "visfuzz" ~version:"%%VERSION%%" ~doc in
  Cmd.v info
    Term.(
      const fuzz $ seed_arg $ trials_arg $ budget_arg $ oracles_arg
      $ stats_arg $ json_arg $ out_arg $ max_states_arg $ io_band_arg
      $ exec_tuples_arg $ jobs_arg $ faults_arg $ fault_seed_arg
      $ no_shrink_arg $ max_failures_arg $ list_arg $ replay_arg)

let () = exit (Cmd.eval cmd)
