(* A retail warehouse: four source relations joined into one wide primary
   view, the kind of workload the paper's introduction motivates.

     sales(sale_id, item_fk, store_fk, qty)    -- hot: heavy insertions
     items(item_id, supplier_fk, price)        -- warm: some updates
     suppliers(supp_id, region, rating)        -- region-filtered, stable
     stores(store_id, city, size)              -- small and stable

   The nightly batch ships many sales insertions, a few item price updates
   (protected), and occasional deletions.  We compare three physical
   designs: nothing extra, the Section-5 rules of thumb, and the optimal
   A* selection — and explain where the savings come from.

     dune exec examples/retail_warehouse.exe *)

module Schema = Vis_catalog.Schema
module Config = Vis_costmodel.Config
module Element = Vis_costmodel.Element

let schema =
  let rel name card attrs =
    {
      Schema.rel_name = name;
      card;
      tuple_bytes = 8 * List.length attrs;
      key_attr = List.hd attrs;
      attrs;
    }
  in
  Schema.make ~mem_pages:200
    ~relations:
      [
        rel "sales" 500_000. [ "sale_id"; "item_fk"; "store_fk"; "qty" ];
        rel "items" 50_000. [ "item_id"; "supplier_fk"; "price" ];
        rel "suppliers" 2_000. [ "supp_id"; "region"; "rating" ];
        rel "stores" 500. [ "store_id"; "city"; "size" ];
      ]
    ~selections:
      [ { Schema.sel_rel = 2; sel_attr = "region"; selectivity = 0.25 } ]
    ~joins:
      [
        {
          Schema.left_rel = 0;
          left_attr = "item_fk";
          right_rel = 1;
          right_attr = "item_id";
          join_sel = 1. /. 50_000.;
        };
        {
          Schema.left_rel = 1;
          left_attr = "supplier_fk";
          right_rel = 2;
          right_attr = "supp_id";
          join_sel = 1. /. 2_000.;
        };
        {
          Schema.left_rel = 0;
          left_attr = "store_fk";
          right_rel = 3;
          right_attr = "store_id";
          join_sel = 1. /. 500.;
        };
      ]
    ~deltas:
      [
        { Schema.n_ins = 10_000.; n_del = 500.; n_upd = 0. };
        { Schema.n_ins = 100.; n_del = 20.; n_upd = 400. };
        { Schema.n_ins = 5.; n_del = 1.; n_upd = 10. };
        { Schema.n_ins = 1.; n_del = 0.; n_upd = 2. };
      ]
    ()

let () =
  let p = Vis_core.Problem.make schema in
  Printf.printf "Primary view: sales |><| items |><| sigma(suppliers) |><| stores\n";
  Printf.printf "Candidate supporting views: %d; candidate features: %d\n"
    (List.length p.Vis_core.Problem.candidate_views)
    (List.length p.Vis_core.Problem.features);

  let baseline = Vis_core.Problem.total p Config.empty in
  Printf.printf "\nNo supporting structures: %.0f I/Os per refresh\n" baseline;

  (* Rules of thumb (what a WHA would do by hand). *)
  let advice = Vis_core.Rules.advise p in
  let advised_cost = Vis_core.Problem.total p advice.Vis_core.Rules.a_config in
  Printf.printf "\nRules-of-thumb design: %.0f I/Os (%.1fx better than nothing)\n"
    advised_cost (baseline /. advised_cost);
  Printf.printf "  %s\n" (Config.describe schema advice.Vis_core.Rules.a_config);
  List.iter
    (fun d ->
      if d.Vis_core.Rules.d_chosen then
        Printf.printf "  rule %-7s -> %s\n" d.Vis_core.Rules.d_rule
          (Vis_core.Problem.feature_name p d.Vis_core.Rules.d_feature))
    advice.Vis_core.Rules.a_decisions;

  (* Optimal. *)
  let r = Vis_core.Astar.search p in
  Printf.printf "\nOptimal design (A*): %.0f I/Os (%.1fx better than nothing)\n"
    r.Vis_core.Astar.best_cost
    (baseline /. r.Vis_core.Astar.best_cost);
  Printf.printf "  %s\n" (Config.describe schema r.Vis_core.Astar.best);
  Printf.printf "  found after expanding %d states; exhaustive would visit %.3g\n"
    r.Vis_core.Astar.stats.Vis_core.Astar.expanded
    r.Vis_core.Astar.stats.Vis_core.Astar.exhaustive_states;

  (* Why: show the winning update path for the hot delta (sales insertions)
     onto the primary view under each design. *)
  let target = Element.View (Schema.all_relations schema) in
  let show name config =
    let eval = Vis_core.Problem.evaluator p config in
    let prop, plan = Vis_costmodel.Cost.prop_ins eval ~target ~rel:0 in
    Format.printf "  %-14s eval=%8.0f I/Os: %a@." name prop.Vis_costmodel.Cost.p_eval
      (Vis_costmodel.Cost.pp_ins_plan schema ~target ~rel:0)
      plan
  in
  Printf.printf "\nPropagating the 10k sales insertions onto the view:\n";
  show "bare" Config.empty;
  show "rules" advice.Vis_core.Rules.a_config;
  show "optimal" r.Vis_core.Astar.best
