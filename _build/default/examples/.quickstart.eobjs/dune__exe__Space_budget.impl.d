examples/space_budget.ml: List Printf String Vis_core Vis_workload
