examples/retail_warehouse.ml: Format List Printf Vis_catalog Vis_core Vis_costmodel
