examples/quickstart.mli:
