examples/validate_costmodel.ml: List Printf Vis_core Vis_costmodel Vis_maintenance Vis_workload
