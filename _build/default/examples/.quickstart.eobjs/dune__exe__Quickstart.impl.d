examples/quickstart.ml: Format List Printf String Vis_catalog Vis_core Vis_costmodel
