examples/validate_costmodel.mli:
