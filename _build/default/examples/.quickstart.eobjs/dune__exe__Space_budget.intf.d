examples/space_budget.mli:
