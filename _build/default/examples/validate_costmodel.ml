(* Execute maintenance for real: build the warehouse on the storage engine
   (heap files, B+-trees, LRU buffer pool), run one refresh following the
   optimizer's update paths, and compare the measured page I/O against the
   cost model's prediction — for several physical designs.

     dune exec examples/validate_costmodel.exe *)

module Config = Vis_costmodel.Config

let () =
  let schema = Vis_workload.Schemas.validation () in
  let p = Vis_core.Problem.make schema in
  let optimal = (Vis_core.Astar.search p).Vis_core.Astar.best in
  let advice = (Vis_core.Rules.advise p).Vis_core.Rules.a_config in
  let worst =
    (* Materialize everything: usually a poor design. *)
    Config.make ~views:p.Vis_core.Problem.candidate_views
      ~indexes:(Vis_core.Problem.indexes_for_views p p.Vis_core.Problem.candidate_views)
  in
  let designs =
    [
      ("nothing extra", Config.empty);
      ("rules of thumb", advice);
      ("optimal (A*)", optimal);
      ("everything", worst);
    ]
  in
  Printf.printf "%-16s %12s %12s %8s %8s %6s\n" "design" "predicted" "measured"
    "reads" "writes" "views";
  List.iter
    (fun (name, config) ->
      let report, checks = Vis_maintenance.Validate.run_cycle schema config in
      Printf.printf "%-16s %12.0f %12d %8d %8d %6s\n" name
        report.Vis_maintenance.Refresh.rp_predicted
        (Vis_maintenance.Refresh.total_io report)
        report.Vis_maintenance.Refresh.rp_reads
        report.Vis_maintenance.Refresh.rp_writes
        (if Vis_maintenance.Validate.all_ok checks then "OK" else "BAD"))
    designs;
  Printf.printf
    "\nEvery view stays exactly equal to its from-scratch recomputation;\n\
     the cost ordering of the designs matches the model's prediction.\n"
