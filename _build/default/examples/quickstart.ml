(* Quickstart: describe a warehouse, run the optimal A* view/index selection,
   and print what to materialize.

     dune exec examples/quickstart.exe *)

let schema_text =
  {|
# A warehouse replicating three source relations, with the primary view
#   V = R |><| S |><| sigma(T)
# maintained nightly from the shipped deltas.
memory_pages 100

relation R key R0 attrs R0,R1 cardinality 90000 tuple_bytes 40
relation S key S0 attrs S0,S1 cardinality 30000 tuple_bytes 40
relation T key T0 attrs T0,T1 cardinality 10000 tuple_bytes 40

join R.R1 = S.S1 fk
join S.S0 = T.T0 fk
select T.T1 selectivity 0.1

delta R insert 1% delete 0.1% update 0
delta S insert 1% delete 0.1% update 0
delta T insert 1% delete 0.1% update 0
|}

let () =
  let schema = Vis_catalog.Dsl.parse_string schema_text in
  let problem = Vis_core.Problem.make schema in
  Printf.printf "Candidate supporting views: %s\n"
    (String.concat ", "
       (List.map
          (fun w ->
            Vis_costmodel.Element.name schema (Vis_costmodel.Element.View w))
          problem.Vis_core.Problem.candidate_views));

  (* Cost of maintaining the warehouse with no supporting structures. *)
  let baseline = Vis_core.Problem.total problem Vis_costmodel.Config.empty in
  Printf.printf "Maintenance cost with nothing extra: %.0f page I/Os\n" baseline;

  (* Optimal selection. *)
  let result = Vis_core.Astar.search problem in
  Printf.printf "Optimal cost:                        %.0f page I/Os (%.1fx better)\n"
    result.Vis_core.Astar.best_cost
    (baseline /. result.Vis_core.Astar.best_cost);
  Printf.printf "Materialize: %s\n"
    (Vis_costmodel.Config.describe schema result.Vis_core.Astar.best);
  Printf.printf
    "A* considered %d partial states out of an exhaustive space of %.0f (%.2f%% pruned)\n"
    result.Vis_core.Astar.stats.Vis_core.Astar.expanded
    result.Vis_core.Astar.stats.Vis_core.Astar.exhaustive_states
    (100.
    *. (1.
       -. float_of_int result.Vis_core.Astar.stats.Vis_core.Astar.expanded
          /. result.Vis_core.Astar.stats.Vis_core.Astar.exhaustive_states));

  (* How the optimizer would propagate insertions to R onto the view. *)
  let eval = Vis_core.Problem.evaluator problem result.Vis_core.Astar.best in
  let target = Vis_costmodel.Element.View (Vis_catalog.Schema.all_relations schema) in
  let _, plan = Vis_costmodel.Cost.prop_ins eval ~target ~rel:0 in
  Format.printf "Update path for insertions to R: %a@."
    (Vis_costmodel.Cost.pp_ins_plan schema ~target ~rel:0)
    plan
