(* Space-constrained physical design (Section 6.1): when storage is tight,
   what should be materialized first?  Sweeps the storage budget on Schema 1
   and narrates the staircase of designs, Figure 10/11 style.

     dune exec examples/space_budget.exe *)

let () =
  (* The paper's regime: deltas small relative to the relations, so indexes
     genuinely compete with scans and the staircase is rich. *)
  let schema =
    Vis_workload.Schemas.schema1 ~base_card:40_000. ~ins_frac:0.001
      ~del_frac:0.0002 ~upd_frac:0.002 ()
  in
  let p = Vis_core.Problem.make schema in
  let sw = Vis_core.Space.sweep p in
  Printf.printf "Base relations occupy %.0f pages.\n" sw.Vis_core.Space.sw_base_pages;
  Printf.printf "Unconstrained optimum: %.0f I/Os per refresh.\n\n"
    sw.Vis_core.Space.sw_unconstrained_cost;
  Printf.printf "%-10s %-12s %-10s %s\n" "space" "space/base" "cost/opt" "design change";
  List.iter
    (fun st ->
      let change =
        String.concat ", "
          (List.map (fun s -> "+" ^ s) st.Vis_core.Space.st_added
          @ List.map (fun s -> "-" ^ s) st.Vis_core.Space.st_dropped)
      in
      Printf.printf "%-10.0f %-12.3f %-10.3f %s\n" st.Vis_core.Space.st_space
        (st.Vis_core.Space.st_space /. sw.Vis_core.Space.sw_base_pages)
        (st.Vis_core.Space.st_cost /. sw.Vis_core.Space.sw_unconstrained_cost)
        change)
    sw.Vis_core.Space.sw_steps;
  Printf.printf "\nOrder in which features first enter the design (Figure 11):\n";
  List.iteri
    (fun i (name, budget) ->
      Printf.printf "  %2d. %-20s (needs %.0f pages)\n" (i + 1) name budget)
    (Vis_core.Space.feature_order sw);
  (* Where does 95%% of the benefit land? *)
  let full_range =
    match sw.Vis_core.Space.sw_steps with
    | first :: _ -> first.Vis_core.Space.st_cost -. sw.Vis_core.Space.sw_unconstrained_cost
    | [] -> 0.
  in
  let target = sw.Vis_core.Space.sw_unconstrained_cost +. (0.05 *. full_range) in
  let within =
    List.find_opt (fun st -> st.Vis_core.Space.st_cost <= target) sw.Vis_core.Space.sw_steps
  in
  match within with
  | Some st ->
      Printf.printf
        "\n95%% of the achievable savings needs only %.0f pages (%.1f%% of the base data).\n"
        st.Vis_core.Space.st_space
        (100. *. st.Vis_core.Space.st_space /. sw.Vis_core.Space.sw_base_pages)
  | None -> ()
