(* Tests for vis_relalg: tuple layouts, tables with index maintenance, and
   the physical operators compared against naive references. *)

module Bitset = Vis_util.Bitset
module Schema = Vis_catalog.Schema
module Iostats = Vis_storage.Iostats
module Buffer_pool = Vis_storage.Buffer_pool
module Reldesc = Vis_relalg.Reldesc
module Table = Vis_relalg.Table
module Exec = Vis_relalg.Exec

let checkb = Alcotest.(check bool)

let checki = Alcotest.(check int)

let schema = Vis_workload.Schemas.validation ()

let fresh_pool ?(capacity = 64) () =
  let stats = Iostats.create () in
  (Buffer_pool.create ~capacity ~stats, stats)

(* ------------------------------------------------------------------ *)
(* Reldesc. *)

let test_reldesc () =
  let r = Reldesc.of_relation schema 0 in
  let s = Reldesc.of_relation schema 1 in
  checki "arity" 3 (Reldesc.arity r);
  checki "offset R1" 1 (Reldesc.offset r ~rel:0 ~attr:"R1");
  checkb "mem" true (Reldesc.mem r ~rel:0 ~attr:"R2");
  checkb "not mem" false (Reldesc.mem r ~rel:1 ~attr:"S0");
  let rs = Reldesc.concat r s in
  checki "concat arity" 6 (Reldesc.arity rs);
  checki "offset across concat" 4 (Reldesc.offset rs ~rel:1 ~attr:"S1");
  checkb "equal" true (Reldesc.equal rs (Reldesc.concat r s));
  Alcotest.check_raises "overlap rejected"
    (Invalid_argument "Reldesc.concat: overlapping attribute") (fun () ->
      ignore (Reldesc.concat r r));
  Alcotest.check_raises "unknown attr" Not_found (fun () ->
      ignore (Reldesc.offset r ~rel:0 ~attr:"nope"))

(* ------------------------------------------------------------------ *)
(* Tables. *)

let small_table ?(rows = 20) () =
  let pool, stats = fresh_pool () in
  let t =
    Table.create pool ~desc:(Reldesc.of_relation schema 2) ~page_bytes:512
      ~attr_bytes:8
  in
  for i = 0 to rows - 1 do
    ignore (Table.insert t [| i; i mod 5; 100 + i |])
  done;
  (t, stats)

let test_table_index_consistency () =
  let t, _ = small_table () in
  let ix = Table.add_index t ~offset:1 in
  checki "index covers table" 20 (Vis_storage.Btree.length ix);
  (* Inserts keep indexes in sync. *)
  let _ = Table.insert t [| 100; 3; 0 |] in
  checki "insert indexed" 21 (Vis_storage.Btree.length ix);
  let hits = Vis_storage.Btree.lookup ix ~key:3 in
  checki "duplicates found" 5 (List.length hits);
  (* Deletes remove index entries. *)
  let victim = List.hd hits in
  checkb "delete" true (Table.delete t victim);
  checki "delete unindexed" 20 (Vis_storage.Btree.length ix);
  (* Same index handle when added twice. *)
  checkb "add_index idempotent" true (Table.add_index t ~offset:1 == ix)

let test_table_protected_update () =
  let t, _ = small_table () in
  ignore (Table.add_index t ~offset:0);
  let located = Exec.locate_by_index t ~offset:0 ~keys:[ 7 ] in
  (match located with
  | [ (rid, old) ] ->
      let fresh = Array.copy old in
      fresh.(2) <- 999;
      checkb "payload update ok" true (Table.update t rid fresh);
      let fresh2 = Array.copy old in
      fresh2.(0) <- 42;
      Alcotest.check_raises "indexed attribute immutable"
        (Invalid_argument "Table.update: protected update touches an indexed attribute")
        (fun () -> ignore (Table.update t rid fresh2))
  | _ -> Alcotest.fail "expected one match");
  ()

(* ------------------------------------------------------------------ *)
(* Operators vs references. *)

let reference_join outer rows inner_rows ~oo ~io =
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b -> if a.(oo) = b.(io) then Some (Array.append a b) else None)
        inner_rows)
    (ignore rows; outer)

let sorted_rows rows = List.sort compare (List.map Array.to_list rows)

let test_scan_filter () =
  let t, _ = small_table () in
  let all = Exec.scan t () in
  checki "all rows" 20 (List.length all);
  let even = Exec.scan t ~filter:(fun r -> r.(0) mod 2 = 0) () in
  checki "filtered" 10 (List.length even)

let test_index_scan () =
  let t, _ = small_table () in
  ignore (Table.add_index t ~offset:0);
  let rows = Exec.index_scan t ~offset:0 ~lo:5 ~hi:9 () in
  checki "range rows" 5 (List.length rows);
  Alcotest.check_raises "no index"
    (Invalid_argument "Exec.index_scan: no index on attribute") (fun () ->
      ignore (Exec.index_scan t ~offset:2 ~lo:0 ~hi:1 ()))

let test_nbj_matches_reference () =
  let t, _ = small_table ~rows:30 () in
  let inner_rows = Exec.scan t () in
  let outer = List.init 12 (fun i -> [| i * 7; i mod 5 |]) in
  (* join outer.(1) = inner.(1) *)
  let want = reference_join outer () inner_rows ~oo:1 ~io:1 in
  List.iter
    (fun block_tuples ->
      let got =
        Exec.nested_block_join ~outer ~outer_offset:1 ~block_tuples ~inner:t
          ~inner_offset:1 ()
      in
      Alcotest.(check (list (list int)))
        (Printf.sprintf "block=%d" block_tuples)
        (sorted_rows want) (sorted_rows got))
    [ 1; 3; 100 ]

let test_index_join_matches_reference () =
  let t, _ = small_table ~rows:30 () in
  ignore (Table.add_index t ~offset:1);
  let inner_rows = Exec.scan t () in
  let outer = List.init 12 (fun i -> [| i * 7; i mod 6 |]) in
  let want = reference_join outer () inner_rows ~oo:1 ~io:1 in
  let got = Exec.index_join ~outer ~outer_offset:1 ~inner:t ~inner_offset:1 () in
  Alcotest.(check (list (list int))) "index join" (sorted_rows want) (sorted_rows got)

let test_cross_join () =
  let t, _ = small_table ~rows:4 () in
  let outer = [ [| 1 |]; [| 2 |]; [| 3 |] ] in
  let got = Exec.block_cross_join ~outer ~block_tuples:2 ~inner:t () in
  checki "3x4 combinations" 12 (List.length got);
  let filtered =
    Exec.block_cross_join ~outer ~block_tuples:2 ~inner:t
      ~filter:(fun row -> row.(0) = 1)
      ()
  in
  checki "filter applies" 4 (List.length filtered)

let test_locate () =
  let t, _ = small_table () in
  let by_scan = Exec.locate_by_scan t ~offset:0 ~keys:[ 3; 7; 99 ] in
  checki "scan finds two" 2 (List.length by_scan);
  ignore (Table.add_index t ~offset:0);
  let by_index = Exec.locate_by_index t ~offset:0 ~keys:[ 3; 7; 99 ] in
  Alcotest.(check (list (list int)))
    "same rows either way"
    (sorted_rows (List.map snd by_scan))
    (sorted_rows (List.map snd by_index))

let test_nbj_io_blocks () =
  (* The inner is rescanned once per outer block: I/O grows with blocks. *)
  let pool, stats = fresh_pool ~capacity:4 () in
  let t =
    Table.create pool ~desc:(Reldesc.of_relation schema 2) ~page_bytes:512
      ~attr_bytes:8
  in
  for i = 0 to 199 do
    ignore (Table.insert t [| i; i mod 5; 0 |])
  done;
  Buffer_pool.flush pool;
  let outer = List.init 50 (fun i -> [| i; i mod 5 |]) in
  Iostats.reset stats;
  ignore
    (Exec.nested_block_join ~outer ~outer_offset:1 ~block_tuples:50 ~inner:t
       ~inner_offset:1 ());
  let one_block = Iostats.reads stats in
  Iostats.reset stats;
  Buffer_pool.flush pool;
  ignore
    (Exec.nested_block_join ~outer ~outer_offset:1 ~block_tuples:10 ~inner:t
       ~inner_offset:1 ());
  let five_blocks = Iostats.reads stats in
  checkb "more blocks, more reads" true (five_blocks > one_block)

(* Property: NBJ and index join agree on random data. *)
let prop_joins_agree =
  QCheck2.Test.make ~name:"exec: nested-block and index join agree" ~count:50
    QCheck2.Gen.(
      pair (int_range 1 2000)
        (pair (list_size (int_bound 40) (int_bound 8)) (int_range 1 60)))
    (fun (seed, (outer_keys, inner_rows)) ->
      let rng = Random.State.make [| seed |] in
      let pool, _ = fresh_pool ~capacity:128 () in
      let t =
        Table.create pool ~desc:(Reldesc.of_relation schema 2) ~page_bytes:512
          ~attr_bytes:8
      in
      for i = 0 to inner_rows - 1 do
        ignore (Table.insert t [| i; Random.State.int rng 8; i |])
      done;
      ignore (Table.add_index t ~offset:1);
      let outer = List.map (fun k -> [| k |]) outer_keys in
      let a =
        Exec.nested_block_join ~outer ~outer_offset:0 ~block_tuples:7 ~inner:t
          ~inner_offset:1 ()
      in
      let b = Exec.index_join ~outer ~outer_offset:0 ~inner:t ~inner_offset:1 () in
      sorted_rows a = sorted_rows b)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "vis_relalg"
    [
      ("reldesc", [ Alcotest.test_case "layouts" `Quick test_reldesc ]);
      ( "table",
        [
          Alcotest.test_case "index consistency" `Quick test_table_index_consistency;
          Alcotest.test_case "protected updates" `Quick test_table_protected_update;
        ] );
      ( "operators",
        [
          Alcotest.test_case "scan" `Quick test_scan_filter;
          Alcotest.test_case "index scan" `Quick test_index_scan;
          Alcotest.test_case "nbj reference" `Quick test_nbj_matches_reference;
          Alcotest.test_case "index join reference" `Quick test_index_join_matches_reference;
          Alcotest.test_case "cross join" `Quick test_cross_join;
          Alcotest.test_case "locate" `Quick test_locate;
          Alcotest.test_case "nbj block I/O" `Quick test_nbj_io_blocks;
        ]
        @ qt [ prop_joins_agree ] );
    ]
