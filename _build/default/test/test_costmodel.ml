(* Tests for vis_costmodel: the yao/Y_WAP estimators, elements, configurations
   and the Appendix-A cost engine (golden values on Schema 1 plus structural
   properties like monotonicity in the configuration). *)

module Bitset = Vis_util.Bitset
module Schema = Vis_catalog.Schema
module Derived = Vis_catalog.Derived
module Yao = Vis_costmodel.Yao
module Element = Vis_costmodel.Element
module Config = Vis_costmodel.Config
module Cost = Vis_costmodel.Cost

let checkb = Alcotest.(check bool)

let checkf msg = Alcotest.(check (float 1e-6)) msg

let schema1 () = Vis_workload.Schemas.schema1 ()

(* ------------------------------------------------------------------ *)
(* yao and Y_WAP. *)

let test_yao_cases () =
  checkf "few fetches: k" 10. (Yao.yao ~n:1000. ~p:100. ~k:10.);
  checkf "middle: (k+p)/3" ((100. +. 100.) /. 3.) (Yao.yao ~n:1000. ~p:100. ~k:100.);
  checkf "many fetches: p" 100. (Yao.yao ~n:1000. ~p:100. ~k:300.);
  checkf "zero fetches" 0. (Yao.yao ~n:1000. ~p:100. ~k:0.);
  checkf "boundary p/2" ((50. +. 100.) /. 3.) (Yao.yao ~n:1000. ~p:100. ~k:50.)

let test_ywap_cases () =
  checkf "fits in memory: min(k,p)" 30. (Yao.y_wap ~n:0. ~p:50. ~k:30. ~m:100.);
  checkf "fits in memory, k>p" 50. (Yao.y_wap ~n:0. ~p:50. ~k:90. ~m:100.);
  checkf "few fetches: k" 20. (Yao.y_wap ~n:0. ~p:200. ~k:20. ~m:100.);
  checkf "thrashing" (100. +. (100. *. (200. -. 100.) /. 200.))
    (Yao.y_wap ~n:0. ~p:200. ~k:200. ~m:100.);
  checkf "zero" 0. (Yao.y_wap ~n:0. ~p:200. ~k:0. ~m:100.)

let prop_yao_bounded =
  QCheck2.Test.make ~name:"yao: result within [0, min(k,p)] .. p" ~count:300
    QCheck2.Gen.(pair (float_bound_inclusive 1e5) (float_bound_inclusive 1e5))
    (fun (p, k) ->
      let r = Yao.yao ~n:1e6 ~p ~k in
      r >= 0. && r <= p +. 1e-9 && (k <= 0. || p <= 0. || r > 0.))

(* Y_WAP is not monotone in memory at the regime boundary (the paper's
   piecewise definition jumps from thrashing to min(k, p)); the invariants
   that do hold are 0 <= Y_WAP <= k, with equality min(k,p) when the
   relation fits in the buffer. *)
let prop_ywap_bounded =
  QCheck2.Test.make ~name:"Y_WAP: bounded by the fetch count" ~count:300
    QCheck2.Gen.(triple (float_range 1. 1e4) (float_range 0. 1e4) (float_range 1. 1e4))
    (fun (p, k, m) ->
      let r = Yao.y_wap ~n:0. ~p ~k ~m in
      r >= 0. && r <= k +. 1e-9
      && (p > m || r = Float.min k p))

(* ------------------------------------------------------------------ *)
(* Elements and configurations. *)

let st = Bitset.of_list [ 1; 2 ]

let ix_v_r0 schema =
  {
    Element.ix_elem = Element.View (Schema.all_relations schema);
    ix_attr = { Element.a_rel = 0; a_name = "R0" };
  }

let ix_st_s1 =
  { Element.ix_elem = Element.View st; ix_attr = { Element.a_rel = 1; a_name = "S1" } }

let test_element_stats () =
  let s = schema1 () in
  let d = Derived.create s in
  (* Base T is the full replica; View {T} is the σ-view. *)
  checkf "T(Base T)" 10000. (Element.card d (Element.Base 2));
  checkf "T(View σT)" 1000. (Element.card d (Element.View (Bitset.singleton 2)));
  checkb "σ-view smaller" true
    (Element.pages d (Element.View (Bitset.singleton 2))
    < Element.pages d (Element.Base 2));
  Alcotest.(check string) "name V" "V"
    (Element.name s (Element.View (Schema.all_relations s)));
  Alcotest.(check string) "name base" "T" (Element.name s (Element.Base 2));
  Alcotest.(check string) "σ name" "\xcf\x83T"
    (Element.name s (Element.View (Bitset.singleton 2)))

let test_config_ops () =
  let s = schema1 () in
  let c = Config.empty in
  checkb "empty has no view" false (Config.has_view c st);
  let c = Config.add_view c st in
  checkb "added view" true (Config.has_view c st);
  let c = Config.add_index c ix_st_s1 in
  checkb "added index" true
    (Config.has_index c (Element.View st) { Element.a_rel = 1; a_name = "S1" });
  Alcotest.(check int) "indexes_on" 1
    (List.length (Config.indexes_on c (Element.View st)));
  let c2 = Config.remove_index c ix_st_s1 in
  checkb "removed index" false
    (Config.has_index c2 (Element.View st) { Element.a_rel = 1; a_name = "S1" });
  (* Canonical signature is order independent. *)
  let a =
    Config.make ~views:[ st; Bitset.singleton 2 ] ~indexes:[ ix_st_s1; ix_v_r0 s ]
  in
  let b =
    Config.make ~views:[ Bitset.singleton 2; st ] ~indexes:[ ix_v_r0 s; ix_st_s1 ]
  in
  Alcotest.(check string) "signature canonical" (Config.signature a) (Config.signature b);
  checkb "equal" true (Config.equal a b)

let test_config_restrict_space () =
  let s = schema1 () in
  let d = Derived.create s in
  let c = Config.make ~views:[ st ] ~indexes:[ ix_st_s1; ix_v_r0 s ] in
  let r = Config.restrict c ~rels:st in
  Alcotest.(check int) "restricted keeps subview" 1 (List.length (Config.views r));
  Alcotest.(check int) "restricted drops V index" 1 (List.length (Config.indexes r));
  let space = Config.space d c in
  checkb "space positive" true (space > 0.);
  checkf "space additive"
    (Derived.view_pages d st
    +. (Element.index_shape d ix_st_s1).Derived.ix_pages
    +. (Element.index_shape d (ix_v_r0 s)).Derived.ix_pages)
    space

(* ------------------------------------------------------------------ *)
(* Cost engine. *)

let test_zero_deltas_zero_cost () =
  let s =
    Schema.with_deltas (schema1 ())
      (List.init 3 (fun _ -> { Schema.n_ins = 0.; n_del = 0.; n_upd = 0. }))
  in
  let d = Derived.create s in
  checkf "no deltas, no cost" 0. (Cost.total_of d Config.empty)

let test_base_insert_cost () =
  let s = schema1 () in
  let d = Derived.create s in
  let eval = Cost.create d Config.empty in
  (* 900 insertions at 102 tuples/page: read 9 pages, append 9 pages. *)
  let p, plan = Cost.prop_ins eval ~target:(Element.Base 0) ~rel:0 in
  checkf "eval reads delta" 9. p.Cost.p_eval;
  checkf "apply appends" 9. p.Cost.p_apply;
  checkf "no index cost" 0. p.Cost.p_index;
  checkb "trivial plan" true (plan.Cost.ip_steps = []);
  checkf "result tuples" 900. p.Cost.p_result_tuples

let test_primary_ins_plan_uses_view () =
  let s = schema1 () in
  let d = Derived.create s in
  let full = Schema.all_relations s in
  (* With ST' materialized, ΔR should join it directly instead of S and T. *)
  let config = Config.make ~views:[ st ] ~indexes:[] in
  let eval = Cost.create d config in
  let p_with, plan = Cost.prop_ins eval ~target:(Element.View full) ~rel:0 in
  (match plan.Cost.ip_steps with
  | [ (Element.View w, Cost.Nbj) ] -> checkb "joins ST'" true (Bitset.equal w st)
  | _ -> Alcotest.fail "expected a single join with ST'");
  let p_without, _ =
    Cost.prop_ins (Cost.create d Config.empty) ~target:(Element.View full) ~rel:0
  in
  checkb "view makes insertions cheaper" true
    (p_with.Cost.p_eval < p_without.Cost.p_eval)

let test_saved_delta_reuse () =
  let s = schema1 () in
  let d = Derived.create s in
  let full = Schema.all_relations s in
  (* With RS materialized, insertions to R onto V can start from ΔRS^save. *)
  let rs = Bitset.of_list [ 0; 1 ] in
  let config = Config.make ~views:[ rs ] ~indexes:[] in
  let eval = Cost.create d config in
  let _, plan = Cost.prop_ins eval ~target:(Element.View full) ~rel:0 in
  match plan.Cost.ip_start with
  | Cost.From_saved w -> checkb "starts from saved ΔRS" true (Bitset.equal w rs)
  | Cost.From_delta -> Alcotest.fail "expected saved-delta reuse"

let test_del_uses_key_index () =
  let s = schema1 () in
  let d = Derived.create s in
  let full = Schema.all_relations s in
  let target = Element.View full in
  let no_ix = Cost.create d Config.empty in
  let p_scan, how_scan = Cost.prop_del no_ix ~target ~rel:0 in
  checkb "scan without index" true (how_scan = Cost.Loc_scan);
  let with_ix = Cost.create d (Config.make ~views:[] ~indexes:[ ix_v_r0 s ]) in
  let p_ix, how_ix = Cost.prop_del with_ix ~target ~rel:0 in
  (match how_ix with
  | Cost.Loc_key_index _ -> ()
  | Cost.Loc_scan -> Alcotest.fail "expected key-index locate");
  checkb "index locate cheaper" true
    (p_ix.Cost.p_eval +. p_ix.Cost.p_apply < p_scan.Cost.p_eval +. p_scan.Cost.p_apply);
  (* The index itself must now be maintained for insertions/deletions. *)
  let pi, _ = Cost.prop_ins with_ix ~target ~rel:0 in
  checkb "index maintenance charged" true (pi.Cost.p_index > 0.)

let test_upd_no_index_maintenance () =
  let s =
    Schema.with_deltas (schema1 ())
      [
        { Schema.n_ins = 0.; n_del = 0.; n_upd = 100. };
        { Schema.n_ins = 0.; n_del = 0.; n_upd = 0. };
        { Schema.n_ins = 0.; n_del = 0.; n_upd = 0. };
      ]
  in
  let d = Derived.create s in
  let eval = Cost.create d (Config.make ~views:[] ~indexes:[ ix_v_r0 s ]) in
  let p, _ = Cost.prop_upd eval ~target:(Element.View (Schema.all_relations s)) ~rel:0 in
  checkf "protected updates do not touch indexes" 0. p.Cost.p_index;
  checkb "but they do cost" true (p.Cost.p_eval +. p.Cost.p_apply > 0.)

let test_supporting_view_save_charged () =
  let s = schema1 () in
  let d = Derived.create s in
  let eval = Cost.create d (Config.make ~views:[ st ] ~indexes:[]) in
  let p_sup, _ = Cost.prop_ins eval ~target:(Element.View st) ~rel:1 in
  checkb "supporting view saves its delta" true (p_sup.Cost.p_save > 0.);
  let p_pri, _ =
    Cost.prop_ins eval ~target:(Element.View (Schema.all_relations s)) ~rel:1
  in
  checkf "primary view does not save" 0. p_pri.Cost.p_save

let test_total_structure () =
  let s = schema1 () in
  let d = Derived.create s in
  let eval = Cost.create d (Config.make ~views:[ st ] ~indexes:[]) in
  let elems = Cost.maintained_elements eval in
  Alcotest.(check int) "3 bases + ST' + V" 5 (List.length elems);
  let sum = List.fold_left (fun acc e -> acc +. Cost.element_cost eval e) 0. elems in
  checkf "total is the sum over elements" sum (Cost.total eval)

let test_index_maint_cost () =
  let s = schema1 () in
  let d = Derived.create s in
  let ix = ix_v_r0 s in
  let eval = Cost.create d (Config.make ~views:[] ~indexes:[ ix ]) in
  let own = Cost.index_maint_cost eval ix in
  checkb "index maintenance positive" true (own > 0.);
  (* It is part of the element's total. *)
  let with_ix = Cost.element_cost eval (Element.View (Schema.all_relations s)) in
  let without =
    Cost.element_cost (Cost.create d Config.empty)
      (Element.View (Schema.all_relations s))
  in
  (* The key index may reduce del/upd cost but its Apply_ix is included. *)
  checkb "element cost changed" true (abs_float (with_ix -. without) > 1e-9)

(* Properties: adding structures never increases any expression's
   evaluation cost (the plan space only grows), and the memoization cache
   is consistent across evaluators. *)

let random_config ~rng p =
  let views =
    List.filter (fun _ -> Random.State.bool rng) p.Vis_core.Problem.candidate_views
  in
  let indexes =
    List.filter (fun _ -> Random.State.bool rng)
      (Vis_core.Problem.indexes_for_views p views)
  in
  Config.make ~views ~indexes

let prop_eval_monotone =
  QCheck2.Test.make ~name:"cost: adding a feature never raises an eval cost"
    ~count:60
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let schema = Vis_workload.Schemas.random ~rng () in
      let p = Vis_core.Problem.make schema in
      let config = random_config ~rng p in
      let bigger =
        Config.make
          ~views:p.Vis_core.Problem.candidate_views
          ~indexes:
            (Vis_core.Problem.indexes_for_views p p.Vis_core.Problem.candidate_views)
      in
      let e1 = Vis_core.Problem.evaluator p config in
      let e2 = Vis_core.Problem.evaluator p bigger in
      let target = Element.View (Schema.all_relations schema) in
      Bitset.for_all
        (fun r ->
          let a, _ = Cost.prop_ins e1 ~target ~rel:r in
          let b, _ = Cost.prop_ins e2 ~target ~rel:r in
          b.Cost.p_eval <= a.Cost.p_eval +. 1e-6)
        (Schema.all_relations schema))

let prop_total_nonnegative =
  QCheck2.Test.make ~name:"cost: totals are finite and non-negative" ~count:60
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let schema = Vis_workload.Schemas.random ~rng () in
      let p = Vis_core.Problem.make schema in
      let total = Vis_core.Problem.total p (random_config ~rng p) in
      Float.is_finite total && total >= 0.)

let prop_shared_cache_consistent =
  QCheck2.Test.make ~name:"cost: shared cache returns identical totals"
    ~count:40
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let schema = Vis_workload.Schemas.random ~rng () in
      let p = Vis_core.Problem.make schema in
      let config = random_config ~rng p in
      let d = Derived.create schema in
      let fresh = Cost.total_of d config in
      let shared = Vis_core.Problem.total p config in
      let again = Vis_core.Problem.total p config in
      Vis_util.Num.approx_equal fresh shared && shared = again)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "vis_costmodel"
    [
      ( "estimators",
        [
          Alcotest.test_case "yao cases" `Quick test_yao_cases;
          Alcotest.test_case "Y_WAP cases" `Quick test_ywap_cases;
        ]
        @ qt [ prop_yao_bounded; prop_ywap_bounded ] );
      ( "elements and configs",
        [
          Alcotest.test_case "element stats" `Quick test_element_stats;
          Alcotest.test_case "config operations" `Quick test_config_ops;
          Alcotest.test_case "restrict and space" `Quick test_config_restrict_space;
        ] );
      ( "cost engine",
        [
          Alcotest.test_case "zero deltas" `Quick test_zero_deltas_zero_cost;
          Alcotest.test_case "base insertions" `Quick test_base_insert_cost;
          Alcotest.test_case "plans use views" `Quick test_primary_ins_plan_uses_view;
          Alcotest.test_case "saved-delta reuse" `Quick test_saved_delta_reuse;
          Alcotest.test_case "key-index locate" `Quick test_del_uses_key_index;
          Alcotest.test_case "protected updates" `Quick test_upd_no_index_maintenance;
          Alcotest.test_case "save charged" `Quick test_supporting_view_save_charged;
          Alcotest.test_case "total structure" `Quick test_total_structure;
          Alcotest.test_case "index maintenance" `Quick test_index_maint_cost;
        ]
        @ qt
            [
              prop_eval_monotone;
              prop_total_nonnegative;
              prop_shared_cache_consistent;
            ] );
    ]
