(* Tests for vis_catalog: schema construction and validation, derived
   statistics (cardinalities, pages, index shapes), and the DSL parser. *)

module Schema = Vis_catalog.Schema
module Derived = Vis_catalog.Derived
module Dsl = Vis_catalog.Dsl
module Bitset = Vis_util.Bitset

let checkb = Alcotest.(check bool)

let checkf msg = Alcotest.(check (float 1e-9)) msg

let schema1 () = Vis_workload.Schemas.schema1 ()

(* ------------------------------------------------------------------ *)
(* Schema validation. *)

let rel name card =
  {
    Schema.rel_name = name;
    card;
    tuple_bytes = 40;
    key_attr = name ^ "0";
    attrs = [ name ^ "0"; name ^ "1" ];
  }

let zero = { Schema.n_ins = 0.; n_del = 0.; n_upd = 0. }

let expect_invalid msg f =
  match f () with
  | exception Schema.Invalid _ -> ()
  | _ -> Alcotest.failf "expected Schema.Invalid: %s" msg

let test_schema_accessors () =
  let s = schema1 () in
  Alcotest.(check int) "3 relations" 3 (Schema.n_relations s);
  Alcotest.(check int) "R index" 0 (Schema.rel_index s "R");
  Alcotest.(check int) "T index" 2 (Schema.rel_index s "T");
  checkb "T has selection" true (Schema.has_selection s 2);
  checkb "R has none" false (Schema.has_selection s 0);
  checkf "T selectivity" 0.1 (Schema.combined_selectivity s 2);
  checkf "R selectivity" 1.0 (Schema.combined_selectivity s 0);
  Alcotest.(check (list string)) "T selection attrs" [ "T1" ]
    (Schema.selection_attrs s 2);
  Alcotest.(check (list string)) "S join attrs" [ "S1"; "S0" ]
    (Schema.join_attrs s 1);
  Alcotest.(check int) "attr_pos" 1 (Schema.attr_pos s 1 "S1")

let test_schema_validation () =
  expect_invalid "no relations" (fun () ->
      Schema.make ~relations:[] ~selections:[] ~joins:[] ~deltas:[] ());
  expect_invalid "duplicate names" (fun () ->
      Schema.make ~relations:[ rel "R" 10.; rel "R" 10. ] ~selections:[]
        ~joins:[] ~deltas:[ zero; zero ] ());
  expect_invalid "bad cardinality" (fun () ->
      Schema.make ~relations:[ rel "R" 0. ] ~selections:[] ~joins:[]
        ~deltas:[ zero ] ());
  expect_invalid "key not an attribute" (fun () ->
      Schema.make
        ~relations:[ { (rel "R" 10.) with Schema.key_attr = "nope" } ]
        ~selections:[] ~joins:[] ~deltas:[ zero ] ());
  expect_invalid "selection out of range" (fun () ->
      Schema.make ~relations:[ rel "R" 10. ]
        ~selections:[ { Schema.sel_rel = 1; sel_attr = "R1"; selectivity = 0.5 } ]
        ~joins:[] ~deltas:[ zero ] ());
  expect_invalid "selectivity > 1" (fun () ->
      Schema.make ~relations:[ rel "R" 10. ]
        ~selections:[ { Schema.sel_rel = 0; sel_attr = "R1"; selectivity = 1.5 } ]
        ~joins:[] ~deltas:[ zero ] ());
  expect_invalid "self join" (fun () ->
      Schema.make ~relations:[ rel "R" 10. ] ~selections:[]
        ~joins:
          [
            {
              Schema.left_rel = 0;
              left_attr = "R0";
              right_rel = 0;
              right_attr = "R1";
              join_sel = 0.1;
            };
          ]
        ~deltas:[ zero ] ());
  expect_invalid "negative delta" (fun () ->
      Schema.make ~relations:[ rel "R" 10. ] ~selections:[] ~joins:[]
        ~deltas:[ { Schema.n_ins = -1.; n_del = 0.; n_upd = 0. } ] ());
  expect_invalid "more deletions than tuples" (fun () ->
      Schema.make ~relations:[ rel "R" 10. ] ~selections:[] ~joins:[]
        ~deltas:[ { Schema.n_ins = 0.; n_del = 11.; n_upd = 0. } ] ())

let test_schema_connected () =
  let s = schema1 () in
  checkb "RS connected" true (Schema.connected s (Bitset.of_list [ 0; 1 ]));
  checkb "RT disconnected" false (Schema.connected s (Bitset.of_list [ 0; 2 ]));
  checkb "RST connected" true (Schema.connected s (Bitset.of_list [ 0; 1; 2 ]));
  checkb "singleton connected" true (Schema.connected s (Bitset.singleton 2))

let test_schema_rewrites () =
  let s = schema1 () in
  let s2 = Schema.scale_deltas s 2. in
  checkf "scaled insertions"
    (2. *. (Schema.delta s 0).Schema.n_ins)
    (Schema.delta s2 0).Schema.n_ins;
  let s3 = Schema.with_mem_pages s 555 in
  Alcotest.(check int) "mem pages" 555 s3.Schema.mem_pages

(* ------------------------------------------------------------------ *)
(* Derived statistics.  Schema 1 defaults: T(R)=90000, T(S)=30000,
   T(T)=10000, 40-byte tuples, 4096-byte pages => 102 tuples/page; joins
   f1=1/30000, f2=1/10000; selection 0.1 on T. *)

let test_derived_base () =
  let d = Derived.create (schema1 ()) in
  checkf "T(R)" 90000. (Derived.base_card d 0);
  checkf "tuples/page" 102. (Derived.tuples_per_page d 0);
  checkf "P(R)" (Float.ceil (90000. /. 102.)) (Derived.base_pages d 0);
  checkf "eff T" 1000. (Derived.eff_card d 2);
  checkf "eff R" 90000. (Derived.eff_card d 0)

let test_derived_views () =
  let d = Derived.create (schema1 ()) in
  checkf "T(RS)" 90000. (Derived.view_card d (Bitset.of_list [ 0; 1 ]));
  Alcotest.(check int) "width RS" 80 (Derived.view_width d (Bitset.of_list [ 0; 1 ]));
  checkf "P(RS)"
    (Float.ceil (90000. /. 51.))
    (Derived.view_pages d (Bitset.of_list [ 0; 1 ]));
  checkf "T(ST')" 3000. (Derived.view_card d (Bitset.of_list [ 1; 2 ]));
  checkf "T(V)" 9000. (Derived.view_card d (Bitset.of_list [ 0; 1; 2 ]));
  checkf "T(RT') cross" 90_000_000. (Derived.view_card d (Bitset.of_list [ 0; 2 ]));
  checkf "T(σT)" 1000. (Derived.view_card d (Bitset.singleton 2))

let test_derived_matches () =
  let d = Derived.create (schema1 ()) in
  let st = Bitset.of_list [ 1; 2 ] in
  let j1 = List.hd (schema1 ()).Schema.joins in
  checkf "S(ST', R join)" 0.1 (Derived.matches_per_join_probe d ~view:st ~join:j1);
  checkf "S(ST', key S)" 0.1 (Derived.matches_per_key d ~view:st ~rel:1);
  Alcotest.check_raises "key not in view"
    (Invalid_argument "Derived.matches_per_key: relation not in view") (fun () ->
      ignore (Derived.matches_per_key d ~view:st ~rel:0))

let test_derived_pages_edge () =
  let d = Derived.create (schema1 ()) in
  checkf "tiny view still 1 page" 1.
    (Derived.pages_of_tuples d ~set:(Bitset.singleton 2) ~tuples:0.3);
  checkf "zero tuples zero pages" 0.
    (Derived.pages_of_tuples d ~set:(Bitset.singleton 2) ~tuples:0.);
  checkf "delta pages" 1. (Derived.delta_pages d ~rel:0 ~count:5.);
  checkf "no delta no pages" 0. (Derived.delta_pages d ~rel:0 ~count:0.)

let test_index_shape () =
  let d = Derived.create (schema1 ()) in
  (* 4096/16 = 256 entries per page. *)
  let sh = Derived.index_shape d ~entries:90000. in
  checkf "leaves" (Float.ceil (90000. /. 256.)) sh.Derived.ix_leaf_pages;
  Alcotest.(check int) "height 3 (352 leaves, 2 inner, 1 root)" 3 sh.Derived.ix_height;
  checkf "total pages" (352. +. 2. +. 1.) sh.Derived.ix_pages;
  let small = Derived.index_shape d ~entries:10. in
  Alcotest.(check int) "height 1" 1 small.Derived.ix_height;
  checkf "single page" 1. small.Derived.ix_pages;
  let empty = Derived.index_shape d ~entries:0. in
  Alcotest.(check int) "empty height" 1 empty.Derived.ix_height

let prop_view_card_chain =
  QCheck2.Test.make ~name:"derived: chain prefixes multiply cardinalities"
    ~count:50
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let schema = Vis_workload.Schemas.random ~rng () in
      let d = Derived.create schema in
      let rec walk set rest =
        match rest with
        | [] -> true
        | i :: tl ->
            let set' = Bitset.add i set in
            let f =
              List.fold_left
                (fun acc (j : Schema.join) ->
                  if
                    (Bitset.mem j.Schema.left_rel set && j.Schema.right_rel = i)
                    || (Bitset.mem j.Schema.right_rel set && j.Schema.left_rel = i)
                  then acc *. j.Schema.join_sel
                  else acc)
                1.0 schema.Schema.joins
            in
            let expected = Derived.view_card d set *. Derived.eff_card d i *. f in
            Vis_util.Num.approx_equal ~eps:1e-6 expected (Derived.view_card d set')
            && walk set' tl
      in
      match Bitset.elements (Schema.all_relations schema) with
      | [] -> true
      | first :: rest -> walk (Bitset.singleton first) rest)

(* ------------------------------------------------------------------ *)
(* DSL. *)

let test_dsl_roundtrip () =
  let s = schema1 () in
  let s' = Dsl.parse_string (Dsl.to_string s) in
  Alcotest.(check int) "relations" (Schema.n_relations s) (Schema.n_relations s');
  let d = Derived.create s and d' = Derived.create s' in
  checkf "same T(V)"
    (Derived.view_card d (Schema.all_relations s))
    (Derived.view_card d' (Schema.all_relations s'));
  Alcotest.(check int) "mem pages" s.Schema.mem_pages s'.Schema.mem_pages

let test_dsl_features () =
  let s =
    Dsl.parse_string
      {|
# comment line
page_bytes 1024
memory_pages 64
relation A key A0 attrs A0,A1 cardinality 1000 tuple_bytes 16
relation B key B0 attrs B0,B1 cardinality 100 tuple_bytes 16
join A.A1 = B.B0 fk     # foreign key
select B.B1 selectivity 0.2
delta A insert 5% delete 10 update 0
|}
  in
  Alcotest.(check int) "page bytes" 1024 s.Schema.page_bytes;
  checkf "fk selectivity" 0.01 (List.hd s.Schema.joins).Schema.join_sel;
  checkf "percent insert" 50. (Schema.delta s 0).Schema.n_ins;
  checkf "absolute delete" 10. (Schema.delta s 0).Schema.n_del;
  checkf "default delta" 0. (Schema.delta s 1).Schema.n_ins

let expect_parse_error text =
  match Dsl.parse_string text with
  | exception Dsl.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error"

let test_dsl_errors () =
  expect_parse_error "relation A key A0";
  expect_parse_error "join A.A1 = B.B0 fk";
  expect_parse_error "frobnicate 3";
  expect_parse_error "relation A key A0 attrs A0 cardinality ten tuple_bytes 8";
  expect_parse_error
    {|relation A key A0 attrs A0 cardinality 10 tuple_bytes 8
select A.A9 selectivity 0.5|}

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "vis_catalog"
    [
      ( "schema",
        [
          Alcotest.test_case "accessors" `Quick test_schema_accessors;
          Alcotest.test_case "validation" `Quick test_schema_validation;
          Alcotest.test_case "connectivity" `Quick test_schema_connected;
          Alcotest.test_case "rewrites" `Quick test_schema_rewrites;
        ] );
      ( "derived",
        [
          Alcotest.test_case "base stats" `Quick test_derived_base;
          Alcotest.test_case "view stats" `Quick test_derived_views;
          Alcotest.test_case "match counts" `Quick test_derived_matches;
          Alcotest.test_case "page edge cases" `Quick test_derived_pages_edge;
          Alcotest.test_case "index shapes" `Quick test_index_shape;
        ]
        @ qt [ prop_view_card_chain ] );
      ( "dsl",
        [
          Alcotest.test_case "roundtrip" `Quick test_dsl_roundtrip;
          Alcotest.test_case "directives" `Quick test_dsl_features;
          Alcotest.test_case "errors" `Quick test_dsl_errors;
        ] );
    ]
