test/test_relalg.ml: Alcotest Array List Printf QCheck2 QCheck_alcotest Random Vis_catalog Vis_relalg Vis_storage Vis_util Vis_workload
