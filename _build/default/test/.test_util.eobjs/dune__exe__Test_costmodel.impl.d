test/test_costmodel.ml: Alcotest Float List QCheck2 QCheck_alcotest Random Vis_catalog Vis_core Vis_costmodel Vis_util Vis_workload
