test/test_maintenance.ml: Alcotest Array Float Fun Hashtbl List Printf QCheck2 QCheck_alcotest Random Vis_catalog Vis_core Vis_costmodel Vis_maintenance Vis_relalg Vis_storage Vis_util Vis_workload
