test/test_storage.ml: Alcotest Array Fun Hashtbl List Option QCheck2 QCheck_alcotest Vis_storage
