test/test_util.ml: Alcotest Int List Option QCheck2 QCheck_alcotest String Vis_util
