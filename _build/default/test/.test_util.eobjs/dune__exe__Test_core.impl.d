test/test_core.ml: Alcotest Float Hashtbl List QCheck2 QCheck_alcotest Random String Vis_catalog Vis_core Vis_costmodel Vis_util Vis_workload
