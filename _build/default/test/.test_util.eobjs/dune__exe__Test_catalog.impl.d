test/test_catalog.ml: Alcotest Float List QCheck2 QCheck_alcotest Random Vis_catalog Vis_util Vis_workload
