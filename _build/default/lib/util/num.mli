(** Small numeric helpers shared by the cost model. *)

(** [ceil_div a b] is [⌈a / b⌉] for positive integers. *)
val ceil_div : int -> int -> int

(** [fceil x] is [ceil x] as a float; negative inputs are clamped to 0 —
    the cost model never produces negative page counts. *)
val fceil : float -> float

(** [clamp ~lo ~hi x]. *)
val clamp : lo:float -> hi:float -> float -> float

(** [approx_equal ?eps a b] compares floats with a relative tolerance
    (default [1e-9]) and an absolute floor of [1e-9]. *)
val approx_equal : ?eps:float -> float -> float -> bool

(** [log_base b x]. *)
val log_base : float -> float -> float
