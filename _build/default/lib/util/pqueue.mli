(** A mutable binary-heap priority queue with [float] priorities, smallest
    priority first.  Used by the A* search. *)

type 'a t

(** [create ()] is an empty queue. *)
val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

(** [push ?tie q priority value] inserts [value].  Among equal priorities,
    entries with a smaller [tie] (default 0) are popped first. *)
val push : ?tie:int -> 'a t -> float -> 'a -> unit

(** [pop_min q] removes and returns the entry with the smallest priority,
    or [None] if the queue is empty.  Ties are broken arbitrarily. *)
val pop_min : 'a t -> (float * 'a) option

(** [peek_min q] returns the smallest entry without removing it. *)
val peek_min : 'a t -> (float * 'a) option

val clear : 'a t -> unit
