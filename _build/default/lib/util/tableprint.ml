type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t cells =
  let ncols = List.length t.headers in
  let n = List.length cells in
  if n > ncols then invalid_arg "Tableprint.add_row: too many cells";
  let padded =
    if n = ncols then cells
    else cells @ List.init (ncols - n) (fun _ -> "")
  in
  t.rows <- padded :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let width col =
    List.fold_left (fun w row -> max w (String.length (List.nth row col))) 0 all
  in
  let widths = List.init ncols width in
  let buf = Buffer.create 256 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < ncols - 1 then
          Buffer.add_string buf (String.make (w - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  let total =
    List.fold_left ( + ) 0 widths + (2 * (ncols - 1))
  in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print t = print_string (render t)

let fmt_float ?(digits = 2) x = Printf.sprintf "%.*f" digits x

let fmt_compact x =
  if Float.is_integer x && Float.abs x < 1e15 then begin
    let s = Printf.sprintf "%.0f" x in
    (* Group thousands for readability of large I/O counts. *)
    let n = String.length s in
    let neg = n > 0 && s.[0] = '-' in
    let digits = if neg then String.sub s 1 (n - 1) else s in
    let dn = String.length digits in
    if dn <= 4 then s
    else begin
      let buf = Buffer.create (dn + (dn / 3)) in
      if neg then Buffer.add_char buf '-';
      String.iteri
        (fun i c ->
          if i > 0 && (dn - i) mod 3 = 0 then Buffer.add_char buf ',';
          Buffer.add_char buf c)
        digits;
      Buffer.contents buf
    end
  end
  else Printf.sprintf "%.2f" x
