let ceil_div a b =
  if b <= 0 then invalid_arg "Num.ceil_div";
  (a + b - 1) / b

let fceil x = if x <= 0. then 0. else Float.round (Float.ceil x)

let clamp ~lo ~hi x = Float.max lo (Float.min hi x)

let approx_equal ?(eps = 1e-9) a b =
  let scale = Float.max 1e-9 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= eps *. scale +. 1e-9

let log_base b x = log x /. log b
