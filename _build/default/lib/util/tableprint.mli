(** Fixed-width ASCII tables for the benchmark/experiment output.  Columns
    are sized to their widest cell; headers are separated by a rule. *)

type t

(** [create headers] starts a table with the given column headers. *)
val create : string list -> t

(** [add_row t cells] appends a row.  Rows shorter than the header are padded
    with empty cells; longer rows raise [Invalid_argument]. *)
val add_row : t -> string list -> unit

(** [render t] produces the formatted table, newline-terminated. *)
val render : t -> string

(** [print t] writes [render t] to [stdout]. *)
val print : t -> unit

(** Format a float with [digits] decimal places. *)
val fmt_float : ?digits:int -> float -> string

(** Format a float in a compact style: integers without a fraction, large
    values with thousands grouping. *)
val fmt_compact : float -> string
