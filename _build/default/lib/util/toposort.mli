(** Topological sorting of small dependency graphs, used to order VIS
    features consistently with the paper's partial order [≺]. *)

exception Cycle

(** [sort ~n ~edges] returns a permutation of [0 .. n-1] such that for every
    edge [(a, b)] (meaning [a] must come before [b]), [a] precedes [b].
    Among the eligible vertices the one with the smallest index is emitted
    first, making the order deterministic.  Raises [Cycle] if the graph has
    a cycle. *)
val sort : n:int -> edges:(int * int) list -> int list
