type t = int

let max_element = 61

let empty = 0

let is_empty s = s = 0

let check i =
  if i < 0 || i > max_element then
    invalid_arg (Printf.sprintf "Bitset: element %d out of range" i)

let singleton i =
  check i;
  1 lsl i

let mem i s = i >= 0 && i <= max_element && s land (1 lsl i) <> 0

let add i s =
  check i;
  s lor (1 lsl i)

let remove i s =
  check i;
  s land lnot (1 lsl i)

let union a b = a lor b

let inter a b = a land b

let diff a b = a land lnot b

let equal (a : int) b = a = b

let compare (a : int) b = Stdlib.compare a b

let subset a b = a land b = a

let proper_subset a b = subset a b && a <> b

let disjoint a b = a land b = 0

let cardinal s =
  let rec loop s acc = if s = 0 then acc else loop (s lsr 1) (acc + (s land 1)) in
  loop s 0

let full n =
  if n < 0 || n > max_element + 1 then invalid_arg "Bitset.full";
  if n = 0 then 0 else (1 lsl n) - 1

let of_list l = List.fold_left (fun s i -> add i s) empty l

let fold f s init =
  let rec loop i s acc =
    if s = 0 then acc
    else if s land 1 <> 0 then loop (i + 1) (s lsr 1) (f i acc)
    else loop (i + 1) (s lsr 1) acc
  in
  loop 0 s init

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let iter f s = fold (fun i () -> f i) s ()

let for_all p s = fold (fun i acc -> acc && p i) s true

let exists p s = fold (fun i acc -> acc || p i) s false

let choose s =
  if s = 0 then raise Not_found
  else
    let rec loop i = if s land (1 lsl i) <> 0 then i else loop (i + 1) in
    loop 0

(* Enumerate subsets of [s] by counting through the bits of [s] only: the
   standard [(sub - s) land s] trick visits each subset exactly once. *)
let subsets s =
  let rec loop sub acc =
    let acc = sub :: acc in
    if sub = s then List.rev acc else loop ((sub - s) land s) acc
  in
  loop 0 []

let nonempty_subsets s = List.filter (fun x -> x <> 0) (subsets s)

let proper_nonempty_subsets s =
  List.filter (fun x -> x <> 0 && x <> s) (subsets s)

let of_int i =
  if i < 0 then invalid_arg "Bitset.of_int";
  i

let to_int s = s

let pp ppf s =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (elements s)))
