lib/util/toposort.ml: Array List
