lib/util/tableprint.mli:
