lib/util/toposort.mli:
