lib/util/num.ml: Float
