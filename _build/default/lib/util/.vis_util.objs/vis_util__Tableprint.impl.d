lib/util/tableprint.ml: Buffer Float List Printf String
