lib/util/num.mli:
