lib/util/pqueue.mli:
