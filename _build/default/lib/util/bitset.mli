(** Compact sets of small integers (0 .. 61), used throughout the library to
    represent sets of base relations.  A view over relations [{0; 2}] is
    identified by the bitset [0b101].  All operations are O(1) except
    [elements], [cardinal] and the iterators. *)

type t = private int

val empty : t

val is_empty : t -> bool

(** [singleton i] is the set [{i}].  Raises [Invalid_argument] unless
    [0 <= i < 62]. *)
val singleton : int -> t

val mem : int -> t -> bool

val add : int -> t -> t

val remove : int -> t -> t

val union : t -> t -> t

val inter : t -> t -> t

(** [diff a b] is the set of elements of [a] not in [b]. *)
val diff : t -> t -> t

val equal : t -> t -> bool

val compare : t -> t -> int

val subset : t -> t -> bool

(** [proper_subset a b] is [subset a b && not (equal a b)]. *)
val proper_subset : t -> t -> bool

val disjoint : t -> t -> bool

val cardinal : t -> int

(** [full n] is the set [{0; ...; n-1}]. *)
val full : int -> t

val of_list : int list -> t

val elements : t -> int list

val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val for_all : (int -> bool) -> t -> bool

val exists : (int -> bool) -> t -> bool

(** [choose s] is the smallest element of [s].  Raises [Not_found] on the
    empty set. *)
val choose : t -> int

(** [subsets s] lists every subset of [s], including [empty] and [s]
    itself, in increasing order of their integer encoding. *)
val subsets : t -> t list

(** [nonempty_subsets s] is [subsets s] without [empty]. *)
val nonempty_subsets : t -> t list

(** [proper_nonempty_subsets s] excludes both [empty] and [s]. *)
val proper_nonempty_subsets : t -> t list

(** Unsafe constructor from the raw bit pattern; exposed for hashing and
    serialization.  [of_int (to_int s) = s]. *)
val of_int : int -> t

val to_int : t -> int

val pp : Format.formatter -> t -> unit
