type 'a entry = { prio : float; tie : int; value : 'a }

let before a b = a.prio < b.prio || (a.prio = b.prio && a.tie < b.tie)

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }

let is_empty q = q.size = 0

let length q = q.size

let grow q entry =
  let capacity = Array.length q.data in
  if q.size = capacity then begin
    let ncap = max 16 (2 * capacity) in
    let ndata = Array.make ncap entry in
    Array.blit q.data 0 ndata 0 q.size;
    q.data <- ndata
  end

let rec sift_up data i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before data.(i) data.(parent) then begin
      let tmp = data.(i) in
      data.(i) <- data.(parent);
      data.(parent) <- tmp;
      sift_up data parent
    end
  end

let rec sift_down data size i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < size && before data.(l) data.(i) then l else i in
  let smallest =
    if r < size && before data.(r) data.(smallest) then r else smallest
  in
  if smallest <> i then begin
    let tmp = data.(i) in
    data.(i) <- data.(smallest);
    data.(smallest) <- tmp;
    sift_down data size smallest
  end

let push ?(tie = 0) q prio value =
  let entry = { prio; tie; value } in
  grow q entry;
  q.data.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q.data (q.size - 1)

let pop_min q =
  if q.size = 0 then None
  else begin
    let top = q.data.(0) in
    q.size <- q.size - 1;
    q.data.(0) <- q.data.(q.size);
    (* Drop the stale slot so the GC can reclaim the value. *)
    q.data.(q.size) <- top;
    if q.size > 0 then sift_down q.data q.size 0;
    Some (top.prio, top.value)
  end

let peek_min q = if q.size = 0 then None else Some (q.data.(0).prio, q.data.(0).value)

let clear q =
  q.data <- [||];
  q.size <- 0
