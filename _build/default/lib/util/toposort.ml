exception Cycle

let sort ~n ~edges =
  let succs = Array.make n [] in
  let indegree = Array.make n 0 in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n then invalid_arg "Toposort.sort";
      succs.(a) <- b :: succs.(a);
      indegree.(b) <- indegree.(b) + 1)
    edges;
  (* A simple priority selection by smallest index keeps the output
     deterministic; n is small (tens of features) so O(n^2) is fine. *)
  let emitted = Array.make n false in
  let result = ref [] in
  let count = ref 0 in
  while !count < n do
    let next = ref (-1) in
    for i = n - 1 downto 0 do
      if (not emitted.(i)) && indegree.(i) = 0 then next := i
    done;
    if !next < 0 then raise Cycle;
    emitted.(!next) <- true;
    result := !next :: !result;
    incr count;
    List.iter (fun b -> indegree.(b) <- indegree.(b) - 1) succs.(!next)
  done;
  List.rev !result
