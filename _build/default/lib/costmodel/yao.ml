let yao ~n:_ ~p ~k =
  if k <= 0. || p <= 0. then 0.
  else
    let est =
      if k < p /. 2. then k
      else if k <= 2. *. p then (k +. p) /. 3.
      else p
    in
    Float.min est p

let y_wap ~n:_ ~p ~k ~m =
  if k <= 0. || p <= 0. then 0.
  else if p <= m then Float.min k p
  else if k <= m then k
  else m +. ((k -. m) *. (p -. m) /. p)
