module Bitset = Vis_util.Bitset
module Schema = Vis_catalog.Schema
module Derived = Vis_catalog.Derived

type t = Base of int | View of Bitset.t

type attr = { a_rel : int; a_name : string }

type index = { ix_elem : t; ix_attr : attr }

let equal a b =
  match (a, b) with
  | Base i, Base j -> i = j
  | View s, View t -> Bitset.equal s t
  | Base _, View _ | View _, Base _ -> false

let compare a b =
  match (a, b) with
  | Base i, Base j -> Int.compare i j
  | View s, View t -> Bitset.compare s t
  | Base _, View _ -> -1
  | View _, Base _ -> 1

let equal_attr a b = a.a_rel = b.a_rel && String.equal a.a_name b.a_name

let compare_attr a b =
  match Int.compare a.a_rel b.a_rel with
  | 0 -> String.compare a.a_name b.a_name
  | c -> c

let equal_index a b = equal a.ix_elem b.ix_elem && equal_attr a.ix_attr b.ix_attr

let compare_index a b =
  match compare a.ix_elem b.ix_elem with
  | 0 -> compare_attr a.ix_attr b.ix_attr
  | c -> c

let rels = function Base i -> Bitset.singleton i | View s -> s

let card d = function
  | Base i -> Derived.base_card d i
  | View s -> Derived.view_card d s

let pages d = function
  | Base i -> Derived.base_pages d i
  | View s -> Derived.view_pages d s

let index_shape d ix = Derived.index_shape d ~entries:(card d ix.ix_elem)

let name schema = function
  | Base i -> (Schema.relation schema i).Schema.rel_name
  | View s ->
      if Bitset.equal s (Schema.all_relations schema) then "V"
      else
        String.concat ""
          (List.map
             (fun i ->
               let base = (Schema.relation schema i).Schema.rel_name in
               if Schema.has_selection schema i then "\xcf\x83" ^ base else base)
             (Bitset.elements s))

let index_name schema ix =
  Printf.sprintf "ix(%s, %s.%s)" (name schema ix.ix_elem)
    (Schema.relation schema ix.ix_attr.a_rel).Schema.rel_name
    ix.ix_attr.a_name
