(** Page-access estimators used throughout the Appendix-A cost model.

    [yao] is Yao's classical estimate of page reads when [k] of [n] tuples
    are fetched from a relation of [p] pages, assuming accesses are sorted
    (or the relation fits in memory).  The paper uses the piecewise
    approximation of its Section A rather than the exact formula.

    [y_wap] is the estimator of Mackert & Lohman [ML89] for the number of
    page {e read operations} when [k] tuple fetches hit a relation of [p]
    pages through an [m]-page LRU buffer, with accesses in random order. *)

(** [yao ~n ~p ~k] — piecewise, per the paper:
    [k] when [k < p/2]; [(k + p)/3] when [p/2 ≤ k ≤ 2p]; [p] when [k > 2p].
    [n] (total tuples) is accepted for signature fidelity but unused by the
    approximation.  Results are clamped to [0, p] and to [0] when [k ≤ 0]. *)
val yao : n:float -> p:float -> k:float -> float

(** [y_wap ~n ~p ~k ~m]:
    [min(k, p)] when [p ≤ m]; [k] when [p > m] and [k ≤ m];
    [m + (k−m)·(p−m)/p] otherwise.  [0] when [k ≤ 0]. *)
val y_wap : n:float -> p:float -> k:float -> m:float -> float
