lib/costmodel/config.ml: Buffer Element List String Vis_catalog Vis_util
