lib/costmodel/cost.ml: Array Char Config Element Float Format Hashtbl List Vis_catalog Vis_util Yao
