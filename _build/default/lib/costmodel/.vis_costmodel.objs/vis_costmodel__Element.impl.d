lib/costmodel/element.ml: Int List Printf String Vis_catalog Vis_util
