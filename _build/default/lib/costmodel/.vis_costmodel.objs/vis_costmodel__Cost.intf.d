lib/costmodel/cost.mli: Config Element Format Vis_catalog Vis_util
