lib/costmodel/config.mli: Element Vis_catalog Vis_util
