lib/costmodel/yao.mli:
