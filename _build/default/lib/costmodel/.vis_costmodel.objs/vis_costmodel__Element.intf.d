lib/costmodel/element.mli: Vis_catalog Vis_util
