lib/costmodel/yao.ml: Float
