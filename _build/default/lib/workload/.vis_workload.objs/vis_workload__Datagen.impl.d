lib/workload/datagen.ml: Array Float Hashtbl List Printf Random String Vis_catalog
