lib/workload/datagen.mli: Random Vis_catalog
