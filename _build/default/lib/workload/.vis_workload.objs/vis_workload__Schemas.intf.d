lib/workload/schemas.mli: Random Vis_catalog
