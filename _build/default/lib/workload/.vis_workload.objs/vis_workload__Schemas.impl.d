lib/workload/schemas.ml: Array Char Float List Printf Random String Vis_catalog
