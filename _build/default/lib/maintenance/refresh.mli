(** Execution of one refresh cycle: the shipped deltas of every base relation
    are propagated, relation by relation, onto the base replicas, the
    supporting views, and the primary view, following exactly the update
    paths the cost model's optimizer chose (nested-block vs. index joins,
    saved-delta reuse, key-index vs. scan locating).  The buffer pool records
    the physical I/O, which {!Validate} compares with the cost model's
    prediction.

    Relations are processed in index order; within a relation, insertions
    are propagated to views smallest-first (so saved deltas exist when a
    superview's plan reuses them), then applied to the base replica, then
    deletions, then protected updates.  This sequential discipline makes the
    incremental result exact: each maintenance expression runs against
    states already consistent with the previously processed deltas. *)

type report = {
  rp_reads : int;
  rp_writes : int;
  rp_accesses : int;
  rp_predicted : float;  (** the cost model's [C(M')] for the same batch *)
}

val total_io : report -> int

(** [run warehouse batch] executes the refresh and reports measured vs.
    predicted I/O.  The warehouse's counters are reset first; on return they
    hold just this refresh (pool flushed into the counts). *)
val run : Warehouse.t -> Vis_workload.Datagen.batch -> report
