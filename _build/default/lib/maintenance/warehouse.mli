(** An executable warehouse: base-relation replicas, the primary view and the
    configuration's supporting views and indexes, all stored on the simulated
    storage engine behind one buffer pool.  Building loads synthetic data and
    materializes every view; the I/O counters are reset afterwards so a
    subsequent {!Refresh.run} measures only maintenance work. *)

type t = {
  w_schema : Vis_catalog.Schema.t;
  w_derived : Vis_catalog.Derived.t;
  w_config : Vis_costmodel.Config.t;
  w_pool : Vis_storage.Buffer_pool.t;
  w_stats : Vis_storage.Iostats.t;
  w_bases : Vis_relalg.Table.t array;
  w_views : (Vis_util.Bitset.t * Vis_relalg.Table.t) list;
      (** supporting views and the primary view, by increasing size *)
}

(** Attribute width used to size heap pages; schemas meant for execution
    should use [tuple_bytes = arity · attr_bytes] so that the cost model and
    the engine agree on page counts. *)
val attr_bytes : int

(** [view_desc schema set] — the canonical layout of a view: relations in
    ascending index order, each with its declared attributes. *)
val view_desc : Vis_catalog.Schema.t -> Vis_util.Bitset.t -> Vis_relalg.Reldesc.t

(** [build schema config dataset] loads and materializes everything, flushes
    the pool and resets the counters. *)
val build :
  Vis_catalog.Schema.t -> Vis_costmodel.Config.t -> Vis_workload.Datagen.dataset -> t

(** [element_table w elem] — the stored table of a base relation or
    materialized view.  Raises [Not_found] for views outside the
    configuration. *)
val element_table : t -> Vis_costmodel.Element.t -> Vis_relalg.Table.t

(** [compute_view_in_memory schema ~tuples set] joins the given per-relation
    tuple lists into the canonical view contents (selections applied) —
    pure, used for materialization and for validation. *)
val compute_view_in_memory :
  Vis_catalog.Schema.t -> tuples:int array list array -> Vis_util.Bitset.t -> int array list

(** [reset_stats w] flushes the pool and zeroes the counters. *)
val reset_stats : t -> unit
