module Bitset = Vis_util.Bitset
module Schema = Vis_catalog.Schema
module Element = Vis_costmodel.Element
module Table = Vis_relalg.Table
module Exec = Vis_relalg.Exec
module Datagen = Vis_workload.Datagen

type view_check = {
  vc_view : string;
  vc_expected : int;
  vc_actual : int;
  vc_ok : bool;
}

let multiset_of rows =
  let t = Hashtbl.create 256 in
  List.iter
    (fun row ->
      let key = Array.to_list row in
      Hashtbl.replace t key (1 + Option.value ~default:0 (Hashtbl.find_opt t key)))
    rows;
  t

let multiset_equal a b =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold
       (fun k v acc -> acc && Hashtbl.find_opt b k = Some v)
       a true

let check_views w =
  let schema = w.Warehouse.w_schema in
  let n = Schema.n_relations schema in
  (* Current base contents, straight from the replicas. *)
  let tuples = Array.init n (fun r -> Exec.scan w.Warehouse.w_bases.(r) ()) in
  List.map
    (fun (set, table) ->
      let expected = Warehouse.compute_view_in_memory schema ~tuples set in
      let actual = Exec.scan table () in
      let ok = multiset_equal (multiset_of expected) (multiset_of actual) in
      {
        vc_view = Element.name schema (Element.View set);
        vc_expected = List.length expected;
        vc_actual = List.length actual;
        vc_ok = ok;
      })
    w.Warehouse.w_views

let all_ok checks = List.for_all (fun c -> c.vc_ok) checks

let run_cycle ?(seed = 42) schema config =
  let rng = Random.State.make [| seed |] in
  let dataset = Datagen.generate ~rng schema in
  let warehouse = Warehouse.build schema config dataset in
  let batch = Datagen.deltas ~rng schema dataset in
  let report = Refresh.run warehouse batch in
  let checks = check_views warehouse in
  (report, checks)
