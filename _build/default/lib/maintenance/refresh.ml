module Bitset = Vis_util.Bitset
module Schema = Vis_catalog.Schema
module Element = Vis_costmodel.Element
module Cost = Vis_costmodel.Cost
module Table = Vis_relalg.Table
module Reldesc = Vis_relalg.Reldesc
module Exec = Vis_relalg.Exec
module Datagen = Vis_workload.Datagen

type report = {
  rp_reads : int;
  rp_writes : int;
  rp_accesses : int;
  rp_predicted : float;
}

let total_io r = r.rp_reads + r.rp_writes

let rels_of_desc desc =
  List.fold_left
    (fun acc (r, _) -> Bitset.add r acc)
    Bitset.empty (Reldesc.attrs desc)

(* Equality conditions linking the rows described by [desc] with a join
   unit, as (outer offset, inner offset) pairs. *)
let equalities schema desc unit_desc =
  let left = rels_of_desc desc in
  let right = rels_of_desc unit_desc in
  List.filter_map
    (fun (j : Schema.join) ->
      if Bitset.mem j.Schema.left_rel left && Bitset.mem j.Schema.right_rel right
      then
        Some
          ( Reldesc.offset desc ~rel:j.Schema.left_rel ~attr:j.Schema.left_attr,
            Reldesc.offset unit_desc ~rel:j.Schema.right_rel
              ~attr:j.Schema.right_attr )
      else if
        Bitset.mem j.Schema.right_rel left && Bitset.mem j.Schema.left_rel right
      then
        Some
          ( Reldesc.offset desc ~rel:j.Schema.right_rel ~attr:j.Schema.right_attr,
            Reldesc.offset unit_desc ~rel:j.Schema.left_rel ~attr:j.Schema.left_attr
          )
      else None)
    schema.Schema.joins

(* Residual predicate on combined tuples: remaining equalities plus the
   pushed-down selections of a base-relation unit. *)
let residual_filter schema ~outer_arity ~eqs ~elem ~unit_desc =
  let sel_checks =
    match elem with
    | Element.View _ -> []
    | Element.Base i ->
        List.filter_map
          (fun (s : Schema.selection) ->
            if s.Schema.sel_rel <> i then None
            else
              let off =
                outer_arity
                + Reldesc.offset unit_desc ~rel:i ~attr:s.Schema.sel_attr
              in
              let bound =
                int_of_float
                  (s.Schema.selectivity *. float_of_int Datagen.sel_resolution)
              in
              Some (fun (t : int array) -> t.(off) < bound))
          schema.Schema.selections
  in
  let eq_checks =
    List.map
      (fun (oo, io) -> fun (t : int array) -> t.(oo) = t.(outer_arity + io))
      eqs
  in
  match sel_checks @ eq_checks with
  | [] -> None
  | checks -> Some (fun t -> List.for_all (fun c -> c t) checks)

let block_tuples_for schema desc =
  let bytes = max 1 (Reldesc.arity desc) * Warehouse.attr_bytes in
  let tpp = max 1 (schema.Schema.page_bytes / bytes) in
  max 1 (schema.Schema.mem_pages * tpp)

(* Reorder a tuple produced with layout [from_desc] into [to_desc]. *)
let permutation ~from_desc ~to_desc =
  Array.of_list
    (List.map
       (fun (rel, attr) -> Reldesc.offset from_desc ~rel ~attr)
       (Reldesc.attrs to_desc))

let temp_table pool schema desc =
  Table.create pool ~desc ~page_bytes:schema.Schema.page_bytes
    ~attr_bytes:Warehouse.attr_bytes

(* Execute the optimizer's insertion update path for one (view, relation)
   pair, returning rows in the view's canonical layout. *)
let exec_ins_plan w ~saved ~ins_temp ~rel ~target_set (plan : Cost.ins_plan) =
  let schema = w.Warehouse.w_schema in
  let start_desc, start_rows =
    match plan.Cost.ip_start with
    | Cost.From_delta ->
        let raw = Exec.scan ins_temp () in
        ( Reldesc.of_relation schema rel,
          List.filter (Datagen.passes_selections schema ~rel) raw )
    | Cost.From_saved wset ->
        let temp : Table.t = Hashtbl.find saved (rel, Bitset.to_int wset) in
        (Warehouse.view_desc schema wset, Exec.scan temp ())
  in
  let step (desc, rows) (elem, how) =
    let table = Warehouse.element_table w elem in
    let unit_desc = Table.desc table in
    let eqs = equalities schema desc unit_desc in
    let outer_arity = Reldesc.arity desc in
    let joined =
      match how with
      | Cost.Nbj -> (
          let block_tuples = block_tuples_for schema desc in
          match eqs with
          | [] ->
              let filter =
                residual_filter schema ~outer_arity ~eqs:[] ~elem ~unit_desc
              in
              Exec.block_cross_join ~outer:rows ~block_tuples ~inner:table
                ?filter ()
          | (oo, io) :: residual ->
              let filter =
                residual_filter schema ~outer_arity ~eqs:residual ~elem
                  ~unit_desc
              in
              Exec.nested_block_join ~outer:rows ~outer_offset:oo ~block_tuples
                ~inner:table ~inner_offset:io ?filter ())
      | Cost.Index_join ix -> (
          let inner_offset =
            Reldesc.offset unit_desc ~rel:ix.Element.ix_attr.Element.a_rel
              ~attr:ix.Element.ix_attr.Element.a_name
          in
          match List.partition (fun (_, io) -> io = inner_offset) eqs with
          | (oo, io) :: extra_same, residual ->
              let filter =
                residual_filter schema ~outer_arity ~eqs:(extra_same @ residual)
                  ~elem ~unit_desc
              in
              Exec.index_join ~outer:rows ~outer_offset:oo ~inner:table
                ~inner_offset:io ?filter ()
          | [], _ ->
              invalid_arg "Refresh: index join without a matching equality")
    in
    (Reldesc.concat desc unit_desc, joined)
  in
  let desc, rows = List.fold_left step (start_desc, start_rows) plan.Cost.ip_steps in
  let canonical = Warehouse.view_desc schema target_set in
  if Reldesc.equal desc canonical then rows
  else begin
    let perm = permutation ~from_desc:desc ~to_desc:canonical in
    List.map (fun row -> Array.map (fun o -> row.(o)) perm) rows
  end

(* Locate the target tuples carrying one of [keys] in relation [rel]'s key
   attribute, by the optimizer's chosen method. *)
let locate w table ~rel ~keys how =
  let schema = w.Warehouse.w_schema in
  let key_attr = (Schema.relation schema rel).Schema.key_attr in
  let offset = Reldesc.offset (Table.desc table) ~rel ~attr:key_attr in
  match how with
  | Cost.Loc_scan -> Exec.locate_by_scan table ~offset ~keys
  | Cost.Loc_key_index _ -> Exec.locate_by_index table ~offset ~keys

let run w (batch : Datagen.batch) =
  let schema = w.Warehouse.w_schema in
  let pool = w.Warehouse.w_pool in
  let eval = Cost.create w.Warehouse.w_derived w.Warehouse.w_config in
  let predicted = Cost.total eval in
  let n = Schema.n_relations schema in
  (* Stage the shipped deltas in temporary tables, then reset the counters:
     maintenance starts with the deltas on disk. *)
  let ins_temp =
    Array.init n (fun r ->
        let t = temp_table pool schema (Reldesc.of_relation schema r) in
        List.iter (fun row -> ignore (Table.insert t row)) batch.Datagen.b_ins.(r);
        t)
  in
  (* Deletions ship as key-only tuples; we stage them at full relation width
     (zero-padded), matching the cost model's page estimate for ∇R. *)
  let key_offset r =
    let key_attr = (Schema.relation schema r).Schema.key_attr in
    Schema.attr_pos schema r key_attr
  in
  let del_temp =
    Array.init n (fun r ->
        let desc = Reldesc.of_relation schema r in
        let t = temp_table pool schema desc in
        let arity = Reldesc.arity desc in
        let ko = key_offset r in
        List.iter
          (fun key ->
            let row = Array.make arity 0 in
            row.(ko) <- key;
            ignore (Table.insert t row))
          batch.Datagen.b_del.(r);
        t)
  in
  let upd_temp =
    Array.init n (fun r ->
        let t = temp_table pool schema (Reldesc.of_relation schema r) in
        List.iter
          (fun (_, row) -> ignore (Table.insert t row))
          batch.Datagen.b_upd.(r);
        t)
  in
  Warehouse.reset_stats w;
  let saved : (int * int, Table.t) Hashtbl.t = Hashtbl.create 16 in
  for r = 0 to n - 1 do
    (* Insertions: views smallest-first, then the base replica. *)
    if batch.Datagen.b_ins.(r) <> [] then begin
      List.iter
        (fun (set, vtable) ->
          if Bitset.mem r set then begin
            let _, plan = Cost.prop_ins eval ~target:(Element.View set) ~rel:r in
            let rows =
              exec_ins_plan w ~saved ~ins_temp:ins_temp.(r) ~rel:r
                ~target_set:set plan
            in
            List.iter (fun row -> ignore (Table.insert vtable row)) rows;
            if not (Bitset.equal set (Schema.all_relations schema)) then begin
              let save = temp_table pool schema (Warehouse.view_desc schema set) in
              List.iter (fun row -> ignore (Table.insert save row)) rows;
              Hashtbl.replace saved (r, Bitset.to_int set) save
            end
          end)
        w.Warehouse.w_views;
      let raw = Exec.scan ins_temp.(r) () in
      List.iter
        (fun row -> ignore (Table.insert w.Warehouse.w_bases.(r) row))
        raw
    end;
    (* Deletions: read the shipped keys, then locate and remove. *)
    if batch.Datagen.b_del.(r) <> [] then begin
      let ko = key_offset r in
      let read_keys () =
        List.map (fun row -> row.(ko)) (Exec.scan del_temp.(r) ())
      in
      List.iter
        (fun (set, vtable) ->
          if Bitset.mem r set then begin
            let _, how = Cost.prop_del eval ~target:(Element.View set) ~rel:r in
            let located = locate w vtable ~rel:r ~keys:(read_keys ()) how in
            List.iter (fun (rid, _) -> ignore (Table.delete vtable rid)) located
          end)
        w.Warehouse.w_views;
      let _, how = Cost.prop_del eval ~target:(Element.Base r) ~rel:r in
      let located =
        locate w w.Warehouse.w_bases.(r) ~rel:r ~keys:(read_keys ()) how
      in
      List.iter
        (fun (rid, _) -> ignore (Table.delete w.Warehouse.w_bases.(r) rid))
        located
    end;
    (* Protected updates: read the shipped replacement rows, then locate
       and overwrite in place. *)
    if batch.Datagen.b_upd.(r) <> [] then begin
      let ko = key_offset r in
      let shipped = Exec.scan upd_temp.(r) () in
      let keys = List.map (fun row -> row.(ko)) shipped in
      let replacement = Hashtbl.create (2 * List.length shipped) in
      List.iter (fun row -> Hashtbl.replace replacement row.(ko) row) shipped;
      List.iter
        (fun (set, vtable) ->
          if Bitset.mem r set then begin
            let _, how = Cost.prop_upd eval ~target:(Element.View set) ~rel:r in
            let located = locate w vtable ~rel:r ~keys how in
            let desc = Table.desc vtable in
            let key_attr = (Schema.relation schema r).Schema.key_attr in
            let key_off = Reldesc.offset desc ~rel:r ~attr:key_attr in
            List.iter
              (fun (rid, old_row) ->
                match Hashtbl.find_opt replacement old_row.(key_off) with
                | None -> ()
                | Some fresh ->
                    let updated = Array.copy old_row in
                    List.iteri
                      (fun pos (drel, dattr) ->
                        if drel = r then
                          updated.(pos) <-
                            fresh.(Schema.attr_pos schema r dattr))
                      (Reldesc.attrs desc);
                    ignore (Table.update vtable rid updated))
              located
          end)
        w.Warehouse.w_views;
      let _, how = Cost.prop_upd eval ~target:(Element.Base r) ~rel:r in
      let located = locate w w.Warehouse.w_bases.(r) ~rel:r ~keys how in
      List.iter
        (fun (rid, old_row) ->
          match Hashtbl.find_opt replacement old_row.(ko) with
          | None -> ()
          | Some fresh -> ignore (Table.update w.Warehouse.w_bases.(r) rid fresh))
        located
    end
  done;
  Vis_storage.Buffer_pool.flush pool;
  let stats = w.Warehouse.w_stats in
  {
    rp_reads = Vis_storage.Iostats.reads stats;
    rp_writes = Vis_storage.Iostats.writes stats;
    rp_accesses = Vis_storage.Iostats.accesses stats;
    rp_predicted = predicted;
  }
