module Bitset = Vis_util.Bitset
module Schema = Vis_catalog.Schema
module Derived = Vis_catalog.Derived
module Element = Vis_costmodel.Element
module Config = Vis_costmodel.Config
module Table = Vis_relalg.Table
module Reldesc = Vis_relalg.Reldesc
module Datagen = Vis_workload.Datagen

type t = {
  w_schema : Schema.t;
  w_derived : Derived.t;
  w_config : Config.t;
  w_pool : Vis_storage.Buffer_pool.t;
  w_stats : Vis_storage.Iostats.t;
  w_bases : Table.t array;
  w_views : (Bitset.t * Table.t) list;
}

let attr_bytes = 8

let view_desc schema set =
  Bitset.fold
    (fun i acc ->
      let d = Reldesc.of_relation schema i in
      match acc with None -> Some d | Some prev -> Some (Reldesc.concat prev d))
    set None
  |> function
  | Some d -> d
  | None -> invalid_arg "Warehouse.view_desc: empty set"

(* In-memory hash join of the view's relations, selections applied, in
   canonical relation order. *)
let compute_view_in_memory schema ~tuples set =
  let rels = Bitset.elements set in
  match rels with
  | [] -> invalid_arg "Warehouse.compute_view_in_memory: empty set"
  | first :: rest ->
      let filtered rel =
        List.filter
          (Datagen.passes_selections schema ~rel)
          tuples.(rel)
      in
      let init =
        (Reldesc.of_relation schema first, filtered first)
      in
      let step (desc, rows) rel =
        let rdesc = Reldesc.of_relation schema rel in
        let conds =
          List.filter_map
            (fun (j : Schema.join) ->
              if
                j.Schema.left_rel = rel
                && Reldesc.mem desc ~rel:j.Schema.right_rel ~attr:j.Schema.right_attr
              then
                Some
                  ( Reldesc.offset desc ~rel:j.Schema.right_rel ~attr:j.Schema.right_attr,
                    Schema.attr_pos schema rel j.Schema.left_attr )
              else if
                j.Schema.right_rel = rel
                && Reldesc.mem desc ~rel:j.Schema.left_rel ~attr:j.Schema.left_attr
              then
                Some
                  ( Reldesc.offset desc ~rel:j.Schema.left_rel ~attr:j.Schema.left_attr,
                    Schema.attr_pos schema rel j.Schema.right_attr )
              else None)
            schema.Schema.joins
        in
        let new_rows = filtered rel in
        let combined =
          match conds with
          | [] ->
              (* Cross product. *)
              List.concat_map
                (fun a -> List.map (fun b -> Array.append a b) new_rows)
                rows
          | (lo, ro) :: residual ->
              let hash = Hashtbl.create (2 * List.length new_rows) in
              List.iter (fun b -> Hashtbl.add hash b.(ro) b) new_rows;
              List.concat_map
                (fun a ->
                  List.filter_map
                    (fun b ->
                      if
                        List.for_all
                          (fun (lo', ro') -> a.(lo') = b.(ro'))
                          residual
                      then Some (Array.append a b)
                      else None)
                    (Hashtbl.find_all hash a.(lo)))
                rows
        in
        (Reldesc.concat desc rdesc, combined)
      in
      let _, rows = List.fold_left step init rest in
      rows

let build schema config dataset =
  let stats = Vis_storage.Iostats.create () in
  let pool =
    Vis_storage.Buffer_pool.create ~capacity:schema.Schema.mem_pages ~stats
  in
  let n = Schema.n_relations schema in
  let bases =
    Array.init n (fun i ->
        let table =
          Table.create pool
            ~desc:(Reldesc.of_relation schema i)
            ~page_bytes:schema.Schema.page_bytes ~attr_bytes
        in
        List.iter
          (fun tuple -> ignore (Table.insert table tuple))
          dataset.Datagen.ds_tuples.(i);
        table)
  in
  let view_sets =
    (Config.views config @ [ Schema.all_relations schema ])
    |> List.sort_uniq (fun a b ->
           match Int.compare (Bitset.cardinal a) (Bitset.cardinal b) with
           | 0 -> Bitset.compare a b
           | c -> c)
  in
  let views =
    List.map
      (fun set ->
        let table =
          Table.create pool ~desc:(view_desc schema set)
            ~page_bytes:schema.Schema.page_bytes ~attr_bytes
        in
        List.iter
          (fun tuple -> ignore (Table.insert table tuple))
          (compute_view_in_memory schema ~tuples:dataset.Datagen.ds_tuples set);
        (set, table))
      view_sets
  in
  let element_table = function
    | Element.Base i -> bases.(i)
    | Element.View set -> List.assoc set views
  in
  List.iter
    (fun (ix : Element.index) ->
      let table = element_table ix.Element.ix_elem in
      let offset =
        Reldesc.offset (Table.desc table) ~rel:ix.Element.ix_attr.Element.a_rel
          ~attr:ix.Element.ix_attr.Element.a_name
      in
      ignore (Table.add_index table ~offset))
    (Config.indexes config);
  Vis_storage.Buffer_pool.flush pool;
  Vis_storage.Iostats.reset stats;
  {
    w_schema = schema;
    w_derived = Derived.create schema;
    w_config = config;
    w_pool = pool;
    w_stats = stats;
    w_bases = bases;
    w_views = views;
  }

let element_table w = function
  | Element.Base i -> w.w_bases.(i)
  | Element.View set -> (
      match
        List.find_opt (fun (s, _) -> Bitset.equal s set) w.w_views
      with
      | Some (_, table) -> table
      | None -> raise Not_found)

let reset_stats w =
  Vis_storage.Buffer_pool.flush w.w_pool;
  Vis_storage.Iostats.reset w.w_stats
