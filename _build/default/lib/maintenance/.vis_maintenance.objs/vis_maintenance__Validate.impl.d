lib/maintenance/validate.ml: Array Hashtbl List Option Random Refresh Vis_catalog Vis_costmodel Vis_relalg Vis_util Vis_workload Warehouse
