lib/maintenance/warehouse.ml: Array Hashtbl Int List Vis_catalog Vis_costmodel Vis_relalg Vis_storage Vis_util Vis_workload
