lib/maintenance/refresh.mli: Vis_workload Warehouse
