lib/maintenance/validate.mli: Refresh Vis_catalog Vis_costmodel Warehouse
