(** A small line-oriented description language for warehouse schemas, used by
    the [visadvisor] command-line tool and the examples.

    Grammar (one directive per line, [#] starts a comment):
    {v
    page_bytes 4096
    memory_pages 1000
    index_entry_bytes 16
    relation R key R0 attrs R0,R1 cardinality 90000 tuple_bytes 40
    join R.R1 = S.S1 selectivity 3.3e-6
    join R.R1 = S.S1 fk          # foreign key join: f = 1/T(key side)
    select T.T1 selectivity 0.1
    delta R insert 900 delete 90 update 0
    delta R insert 1% delete 0.1% update 0   # percentages of T(R)
    v}
    Relations must be declared before they are referenced.  Relations without
    a [delta] line default to no changes. *)

exception Parse_error of int * string
(** [(line_number, message)] *)

(** [parse_string text] parses a schema description. *)
val parse_string : string -> Schema.t

(** [parse_file path] reads and parses [path]. *)
val parse_file : string -> Schema.t

(** [to_string schema] renders a schema back into the DSL; the result parses
    to an equivalent schema. *)
val to_string : Schema.t -> string
