lib/catalog/schema.mli: Format Vis_util
