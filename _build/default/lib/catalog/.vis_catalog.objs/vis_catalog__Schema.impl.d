lib/catalog/schema.ml: Array Format Hashtbl List Printf String Vis_util
