lib/catalog/derived.ml: Array Float Hashtbl List Schema Vis_util
