lib/catalog/dsl.mli: Schema
