lib/catalog/dsl.ml: Array Buffer Hashtbl List Printf Schema String
