lib/catalog/derived.mli: Schema Vis_util
