module Bitset = Vis_util.Bitset

type relation = {
  rel_name : string;
  card : float;
  tuple_bytes : int;
  key_attr : string;
  attrs : string list;
}

type selection = { sel_rel : int; sel_attr : string; selectivity : float }

type join = {
  left_rel : int;
  left_attr : string;
  right_rel : int;
  right_attr : string;
  join_sel : float;
}

type delta = { n_ins : float; n_del : float; n_upd : float }

type t = {
  relations : relation array;
  selections : selection list;
  joins : join list;
  deltas : delta array;
  page_bytes : int;
  mem_pages : int;
  index_entry_bytes : int;
}

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let validate t =
  let n = Array.length t.relations in
  if n = 0 then invalid "schema has no relations";
  if n > 20 then invalid "schema has too many relations (max 20)";
  let names = Hashtbl.create 16 in
  Array.iteri
    (fun i r ->
      if Hashtbl.mem names r.rel_name then
        invalid "duplicate relation name %s" r.rel_name;
      Hashtbl.add names r.rel_name i;
      if r.card <= 0. then invalid "%s: cardinality must be positive" r.rel_name;
      if r.tuple_bytes <= 0 then invalid "%s: tuple_bytes must be positive" r.rel_name;
      if r.tuple_bytes > t.page_bytes then
        invalid "%s: tuple wider than a page" r.rel_name;
      if not (List.mem r.key_attr r.attrs) then
        invalid "%s: key attribute %s not among attributes" r.rel_name r.key_attr;
      let seen = Hashtbl.create 8 in
      List.iter
        (fun a ->
          if Hashtbl.mem seen a then
            invalid "%s: duplicate attribute %s" r.rel_name a;
          Hashtbl.add seen a ())
        r.attrs)
    t.relations;
  let check_attr who i a =
    if i < 0 || i >= n then invalid "%s: relation index %d out of range" who i;
    if not (List.mem a t.relations.(i).attrs) then
      invalid "%s: unknown attribute %s.%s" who t.relations.(i).rel_name a
  in
  List.iter
    (fun s ->
      check_attr "selection" s.sel_rel s.sel_attr;
      if s.selectivity <= 0. || s.selectivity > 1. then
        invalid "selection on %s.%s: selectivity must be in (0,1]"
          t.relations.(s.sel_rel).rel_name s.sel_attr)
    t.selections;
  List.iter
    (fun j ->
      check_attr "join" j.left_rel j.left_attr;
      check_attr "join" j.right_rel j.right_attr;
      if j.left_rel = j.right_rel then invalid "self-joins are not supported";
      if j.join_sel <= 0. || j.join_sel > 1. then
        invalid "join selectivity must be in (0,1]")
    t.joins;
  if Array.length t.deltas <> n then
    invalid "expected %d delta entries, got %d" n (Array.length t.deltas);
  Array.iteri
    (fun i d ->
      if d.n_ins < 0. || d.n_del < 0. || d.n_upd < 0. then
        invalid "%s: delta counts must be non-negative" t.relations.(i).rel_name;
      if d.n_del +. d.n_upd > t.relations.(i).card then
        invalid "%s: more deletions+updates than tuples" t.relations.(i).rel_name)
    t.deltas;
  if t.page_bytes < 64 then invalid "page_bytes too small";
  if t.mem_pages < 2 then invalid "mem_pages must be at least 2";
  if t.index_entry_bytes <= 0 || t.index_entry_bytes > t.page_bytes then
    invalid "index_entry_bytes out of range";
  t

let make ?(page_bytes = 4096) ?(mem_pages = 1000) ?(index_entry_bytes = 16)
    ~relations ~selections ~joins ~deltas () =
  validate
    {
      relations = Array.of_list relations;
      selections;
      joins;
      deltas = Array.of_list deltas;
      page_bytes;
      mem_pages;
      index_entry_bytes;
    }

let n_relations t = Array.length t.relations

let all_relations t = Bitset.full (n_relations t)

let relation t i = t.relations.(i)

let delta t i = t.deltas.(i)

let rel_index t name =
  let n = n_relations t in
  let rec loop i =
    if i >= n then raise Not_found
    else if t.relations.(i).rel_name = name then i
    else loop (i + 1)
  in
  loop 0

let attr_pos t rel name =
  let attrs = t.relations.(rel).attrs in
  let rec loop i = function
    | [] -> raise Not_found
    | a :: rest -> if String.equal a name then i else loop (i + 1) rest
  in
  loop 0 attrs

let combined_selectivity t i =
  List.fold_left
    (fun acc s -> if s.sel_rel = i then acc *. s.selectivity else acc)
    1.0 t.selections

let has_selection t i = List.exists (fun s -> s.sel_rel = i) t.selections

let selection_attrs t i =
  List.fold_left
    (fun acc s ->
      if s.sel_rel = i && not (List.mem s.sel_attr acc) then s.sel_attr :: acc
      else acc)
    [] t.selections
  |> List.rev

let joins_within t set =
  List.filter
    (fun j -> Bitset.mem j.left_rel set && Bitset.mem j.right_rel set)
    t.joins

let joins_crossing t set =
  List.filter
    (fun j ->
      Bitset.mem j.left_rel set <> Bitset.mem j.right_rel set)
    t.joins

let connected t set =
  if Bitset.is_empty set then true
  else begin
    let start = Bitset.choose set in
    let rec grow reached =
      let next =
        List.fold_left
          (fun acc j ->
            if
              Bitset.mem j.left_rel set && Bitset.mem j.right_rel set
            then
              if Bitset.mem j.left_rel acc then Bitset.add j.right_rel acc
              else if Bitset.mem j.right_rel acc then Bitset.add j.left_rel acc
              else acc
            else acc)
          reached t.joins
      in
      if Bitset.equal next reached then reached else grow next
    in
    Bitset.equal (grow (Bitset.singleton start)) set
  end

let join_attrs t i =
  let add acc a = if List.mem a acc then acc else a :: acc in
  List.fold_left
    (fun acc j ->
      let acc = if j.left_rel = i then add acc j.left_attr else acc in
      if j.right_rel = i then add acc j.right_attr else acc)
    [] t.joins
  |> List.rev

let with_deltas t deltas = validate { t with deltas = Array.of_list deltas }

let with_mem_pages t m = validate { t with mem_pages = m }

let scale_deltas t factor =
  if factor < 0. then invalid "scale_deltas: negative factor";
  let deltas =
    Array.map
      (fun d ->
        {
          n_ins = d.n_ins *. factor;
          n_del = d.n_del *. factor;
          n_upd = d.n_upd *. factor;
        })
      t.deltas
  in
  validate { t with deltas }

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i r ->
      let d = t.deltas.(i) in
      Format.fprintf ppf "relation %s: T=%.0f width=%dB key=%s I=%.0f D=%.0f U=%.0f@,"
        r.rel_name r.card r.tuple_bytes r.key_attr d.n_ins d.n_del d.n_upd)
    t.relations;
  List.iter
    (fun s ->
      Format.fprintf ppf "selection %s.%s sel=%g@,"
        t.relations.(s.sel_rel).rel_name s.sel_attr s.selectivity)
    t.selections;
  List.iter
    (fun j ->
      Format.fprintf ppf "join %s.%s = %s.%s f=%g@,"
        t.relations.(j.left_rel).rel_name j.left_attr
        t.relations.(j.right_rel).rel_name j.right_attr j.join_sel)
    t.joins;
  Format.fprintf ppf "page_bytes=%d mem_pages=%d index_entry_bytes=%d@]"
    t.page_bytes t.mem_pages t.index_entry_bytes
