(** The warehouse schema: base relations replicated from the sources, the
    select-join primary view defined over them, per-relation delta statistics
    for one refresh batch, and the physical parameters of the warehouse.

    Relations are referred to by their index in [relations]; sets of
    relations are {!Vis_util.Bitset.t} values.  The primary view is always
    the join of {e all} base relations with every selection pushed down, per
    Section 3.1 of the paper. *)

type relation = {
  rel_name : string;
  card : float;  (** [T(R)]: number of tuples *)
  tuple_bytes : int;  (** width of one tuple in bytes *)
  key_attr : string;  (** every base relation has a key (Section 3.1) *)
  attrs : string list;  (** all attribute names, including [key_attr] *)
}

type selection = {
  sel_rel : int;  (** relation the local condition applies to *)
  sel_attr : string;
  selectivity : float;  (** fraction of tuples passing, in (0, 1] *)
}

type join = {
  left_rel : int;
  left_attr : string;
  right_rel : int;
  right_attr : string;
  join_sel : float;  (** [f] such that [|Ri ⋈ Rj| = f·T(Ri)·T(Rj)] *)
}

type delta = {
  n_ins : float;  (** [I(R)]: insertions in the batch *)
  n_del : float;  (** [D(R)]: deletions in the batch *)
  n_upd : float;  (** [U(R)]: protected updates in the batch *)
}

type t = {
  relations : relation array;
  selections : selection list;
  joins : join list;
  deltas : delta array;
  page_bytes : int;  (** size of a disk page *)
  mem_pages : int;  (** [P_m]: buffer pages available for maintenance *)
  index_entry_bytes : int;  (** width of a (key, rid) B+-tree entry *)
}

exception Invalid of string

(** [make ~relations ~selections ~joins ~deltas ()] builds and validates a
    schema.  Optional physical parameters default to 4096-byte pages, 1000
    memory pages, and 16-byte index entries.  Raises {!Invalid} when indices
    are out of range, attribute names unknown, selectivities outside (0, 1],
    cardinalities non-positive, delta counts negative, or two relations share
    a name. *)
val make :
  ?page_bytes:int ->
  ?mem_pages:int ->
  ?index_entry_bytes:int ->
  relations:relation list ->
  selections:selection list ->
  joins:join list ->
  deltas:delta list ->
  unit ->
  t

val n_relations : t -> int

(** [all_relations s] is the set [{0 .. n-1}] — the relation set of the
    primary view. *)
val all_relations : t -> Vis_util.Bitset.t

val relation : t -> int -> relation

val delta : t -> int -> delta

(** [rel_index s name] finds a relation by name.  Raises [Not_found]. *)
val rel_index : t -> string -> int

(** [attr_pos s rel name] is the position of attribute [name] within
    relation [rel]'s attribute list — a compact attribute identifier used
    for hashing.  Raises [Not_found] for unknown attributes. *)
val attr_pos : t -> int -> string -> int

(** [combined_selectivity s i] is the product of the selectivities of all
    local conditions on relation [i] (1.0 when there are none). *)
val combined_selectivity : t -> int -> float

(** [has_selection s i] tells whether relation [i] carries at least one local
    selection condition — such relations give rise to σR candidate views. *)
val has_selection : t -> int -> bool

(** [selection_attrs s i] is the attribute names of relation [i] with local
    conditions, without duplicates. *)
val selection_attrs : t -> int -> string list

(** [joins_within s set] is the joins with both ends in [set]. *)
val joins_within : t -> Vis_util.Bitset.t -> join list

(** [joins_crossing s set] is the joins with exactly one end in [set]. *)
val joins_crossing : t -> Vis_util.Bitset.t -> join list

(** [connected s set] tells whether [set] induces a connected subgraph of the
    join graph (singletons are connected). *)
val connected : t -> Vis_util.Bitset.t -> bool

(** [join_attrs s i] is the attributes of relation [i] used by some join
    condition of the primary view, without duplicates. *)
val join_attrs : t -> int -> string list

(** [with_deltas s deltas] replaces the delta statistics. *)
val with_deltas : t -> delta list -> t

(** [with_mem_pages s m] replaces [P_m]. *)
val with_mem_pages : t -> int -> t

(** [scale_deltas s factor] multiplies every delta count by [factor]. *)
val scale_deltas : t -> float -> t

val pp : Format.formatter -> t -> unit
