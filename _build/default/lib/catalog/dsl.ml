exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

type building = {
  mutable rels : Schema.relation list;  (* reversed *)
  mutable sels : Schema.selection list;
  mutable joins : Schema.join list;
  deltas : (string, Schema.delta) Hashtbl.t;
  mutable page_bytes : int;
  mutable mem_pages : int;
  mutable index_entry_bytes : int;
}

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let rel_index b line name =
  let rec loop i = function
    | [] -> fail line "unknown relation %s" name
    | r :: rest ->
        if r.Schema.rel_name = name then i else loop (i + 1) rest
  in
  loop 0 (List.rev b.rels)

let find_rel b line name =
  List.nth (List.rev b.rels) (rel_index b line name)

let parse_qualified line s =
  match String.split_on_char '.' s with
  | [ r; a ] when r <> "" && a <> "" -> (r, a)
  | _ -> fail line "expected REL.ATTR, got %s" s

let parse_float line s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail line "expected a number, got %s" s

let parse_int line s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail line "expected an integer, got %s" s

(* A delta count is either an absolute number or a percentage of T(R). *)
let parse_count line card s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '%' then
    parse_float line (String.sub s 0 (n - 1)) /. 100. *. card
  else parse_float line s

let parse_relation b line = function
  | [ name; "key"; key; "attrs"; attrs; "cardinality"; card; "tuple_bytes"; tb ]
    ->
      let attrs = String.split_on_char ',' attrs in
      if List.exists (fun a -> a = "") attrs then fail line "empty attribute name";
      b.rels <-
        {
          Schema.rel_name = name;
          card = parse_float line card;
          tuple_bytes = parse_int line tb;
          key_attr = key;
          attrs;
        }
        :: b.rels
  | _ ->
      fail line
        "expected: relation NAME key K attrs A,B cardinality N tuple_bytes W"

let parse_join b line = function
  | [ lhs; "="; rhs; "selectivity"; f ] ->
      let lr, la = parse_qualified line lhs in
      let rr, ra = parse_qualified line rhs in
      b.joins <-
        {
          Schema.left_rel = rel_index b line lr;
          left_attr = la;
          right_rel = rel_index b line rr;
          right_attr = ra;
          join_sel = parse_float line f;
        }
        :: b.joins
  | [ lhs; "="; rhs; "fk" ] ->
      (* Foreign-key join: selectivity 1 / T(key side), the right side. *)
      let lr, la = parse_qualified line lhs in
      let rr, ra = parse_qualified line rhs in
      let key_side = find_rel b line rr in
      b.joins <-
        {
          Schema.left_rel = rel_index b line lr;
          left_attr = la;
          right_rel = rel_index b line rr;
          right_attr = ra;
          join_sel = 1. /. key_side.Schema.card;
        }
        :: b.joins
  | _ -> fail line "expected: join R.A = S.B selectivity F | join R.A = S.B fk"

let parse_select b line = function
  | [ qattr; "selectivity"; f ] ->
      let r, a = parse_qualified line qattr in
      b.sels <-
        {
          Schema.sel_rel = rel_index b line r;
          sel_attr = a;
          selectivity = parse_float line f;
        }
        :: b.sels
  | _ -> fail line "expected: select R.A selectivity F"

let parse_delta b line = function
  | [ name; "insert"; i; "delete"; d; "update"; u ] ->
      let rel = find_rel b line name in
      let card = rel.Schema.card in
      Hashtbl.replace b.deltas name
        {
          Schema.n_ins = parse_count line card i;
          n_del = parse_count line card d;
          n_upd = parse_count line card u;
        }
  | _ -> fail line "expected: delta R insert I delete D update U"

let parse_string text =
  let b =
    {
      rels = [];
      sels = [];
      joins = [];
      deltas = Hashtbl.create 8;
      page_bytes = 4096;
      mem_pages = 1000;
      index_entry_bytes = 16;
    }
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let content =
        match String.index_opt raw '#' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      match split_words content with
      | [] -> ()
      | "relation" :: rest -> parse_relation b line rest
      | "join" :: rest -> parse_join b line rest
      | "select" :: rest -> parse_select b line rest
      | "delta" :: rest -> parse_delta b line rest
      | [ "page_bytes"; v ] -> b.page_bytes <- parse_int line v
      | [ "memory_pages"; v ] -> b.mem_pages <- parse_int line v
      | [ "index_entry_bytes"; v ] -> b.index_entry_bytes <- parse_int line v
      | word :: _ -> fail line "unknown directive %s" word)
    lines;
  let relations = List.rev b.rels in
  let deltas =
    List.map
      (fun r ->
        match Hashtbl.find_opt b.deltas r.Schema.rel_name with
        | Some d -> d
        | None -> { Schema.n_ins = 0.; n_del = 0.; n_upd = 0. })
      relations
  in
  try
    Schema.make ~page_bytes:b.page_bytes ~mem_pages:b.mem_pages
      ~index_entry_bytes:b.index_entry_bytes ~relations
      ~selections:(List.rev b.sels) ~joins:(List.rev b.joins) ~deltas ()
  with Schema.Invalid msg -> raise (Parse_error (0, msg))

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

let to_string (s : Schema.t) =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "page_bytes %d\n" s.Schema.page_bytes;
  add "memory_pages %d\n" s.Schema.mem_pages;
  add "index_entry_bytes %d\n" s.Schema.index_entry_bytes;
  Array.iter
    (fun r ->
      add "relation %s key %s attrs %s cardinality %.17g tuple_bytes %d\n"
        r.Schema.rel_name r.Schema.key_attr
        (String.concat "," r.Schema.attrs)
        r.Schema.card r.Schema.tuple_bytes)
    s.Schema.relations;
  let rel_name i = (Schema.relation s i).Schema.rel_name in
  List.iter
    (fun j ->
      add "join %s.%s = %s.%s selectivity %.17g\n" (rel_name j.Schema.left_rel)
        j.Schema.left_attr (rel_name j.Schema.right_rel) j.Schema.right_attr
        j.Schema.join_sel)
    s.Schema.joins;
  List.iter
    (fun sel ->
      add "select %s.%s selectivity %.17g\n" (rel_name sel.Schema.sel_rel)
        sel.Schema.sel_attr sel.Schema.selectivity)
    s.Schema.selections;
  Array.iteri
    (fun i d ->
      add "delta %s insert %.17g delete %.17g update %.17g\n" (rel_name i)
        d.Schema.n_ins d.Schema.n_del d.Schema.n_upd)
    s.Schema.deltas;
  Buffer.contents buf
