(** Derived statistics: cardinalities, widths and page counts of views
    (relation subsets with all local selections pushed down), expected match
    counts per probe, and B+-tree index shapes.  All results are memoized per
    relation subset, so repeated queries during search are cheap.

    Conventions, following Table 3 of the paper:
    - [T(V)]: tuples; [P(V)]: pages; both as floats.
    - A {e view} over set [S] applies each relation's local selections;
      the {e stored base relation} [R] does not (it is a full replica), so
      [base_pages] ≠ [view_pages (singleton i)] when [i] has a selection.
    - A materialized view occupies at least one page when non-empty. *)

type t

val create : Schema.t -> t

val schema : t -> Schema.t

(** [tuples_per_page d i] for base relation [i]'s tuple width. *)
val tuples_per_page : t -> int -> float

(** [base_card d i] is [T(R_i)] (no selection applied). *)
val base_card : t -> int -> float

(** [base_pages d i] is [P(R_i)] of the stored replica. *)
val base_pages : t -> int -> float

(** [eff_card d i] is [σ_i·T(R_i)] — the cardinality after local
    selections. *)
val eff_card : t -> int -> float

(** [view_card d set] is [T(V_set)]: the product of effective cardinalities
    times the selectivities of all joins internal to [set].  Disconnected
    sets are cross products. *)
val view_card : t -> Vis_util.Bitset.t -> float

(** [view_width d set] is the tuple width of the view, in bytes. *)
val view_width : t -> Vis_util.Bitset.t -> int

(** [view_pages d set] is [P(V_set)]; at least 1.0 when the view has any
    tuples. *)
val view_pages : t -> Vis_util.Bitset.t -> float

(** [pages_of_tuples d ~set ~tuples] sizes an intermediate result with the
    width of [set]; may be 0 when [tuples = 0]. *)
val pages_of_tuples : t -> set:Vis_util.Bitset.t -> tuples:float -> float

(** [matches_per_join_probe d ~view ~join] is [S(V, C)] for a join condition
    [C] linking [view] to an external relation: the expected number of view
    tuples joining one tuple of the other side, [T(V)·f]. *)
val matches_per_join_probe : t -> view:Vis_util.Bitset.t -> join:Schema.join -> float

(** [matches_per_key d ~view ~rel] is [S(V, key of rel)] — the expected view
    tuples derived from one (arbitrary) tuple of base relation [rel ∈ view]:
    [T(V)/T(rel)]. *)
val matches_per_key : t -> view:Vis_util.Bitset.t -> rel:int -> float

(** [delta_pages d ~rel ~count] is the pages occupied by a source delta of
    [count] tuples of relation [rel]. *)
val delta_pages : t -> rel:int -> count:float -> float

(** B+-tree shape for an index holding [entries] (key, rid) pairs. *)
type index_shape = {
  ix_entries : float;
  ix_leaf_pages : float;
  ix_pages : float;  (** total pages, [P(V, R.A)] *)
  ix_height : int;  (** levels including the leaf level, [H(V, R.A)] ≥ 1 *)
}

val index_shape : t -> entries:float -> index_shape
