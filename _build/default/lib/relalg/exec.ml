module Heap_file = Vis_storage.Heap_file
module Btree = Vis_storage.Btree

type tuple = int array

type pred = tuple -> bool

let keep filter tuple = match filter with None -> true | Some p -> p tuple

let scan t ?filter () =
  let acc = ref [] in
  Heap_file.scan (Table.heap t) ~f:(fun _ tuple ->
      if keep filter tuple then acc := tuple :: !acc);
  List.rev !acc

let index_scan t ~offset ~lo ~hi ?filter () =
  match Table.index_on t ~offset with
  | None -> invalid_arg "Exec.index_scan: no index on attribute"
  | Some ix ->
      let entries = Btree.range ix ~lo ~hi in
      List.filter_map
        (fun (_, rid) ->
          match Heap_file.get (Table.heap t) rid with
          | Some tuple when keep filter tuple -> Some tuple
          | Some _ | None -> None)
        entries

let combine a b =
  let out = Array.make (Array.length a + Array.length b) 0 in
  Array.blit a 0 out 0 (Array.length a);
  Array.blit b 0 out (Array.length a) (Array.length b);
  out

let rec take_block n acc = function
  | [] -> (List.rev acc, [])
  | x :: rest when n > 0 -> take_block (n - 1) (x :: acc) rest
  | rest -> (List.rev acc, rest)

let nested_block_join ~outer ~outer_offset ~block_tuples ~inner ~inner_offset
    ?filter () =
  if block_tuples < 1 then invalid_arg "Exec.nested_block_join: empty block";
  let results = ref [] in
  let rec blocks remaining =
    match remaining with
    | [] -> ()
    | _ ->
        let block, rest = take_block block_tuples [] remaining in
        let hash = Hashtbl.create (2 * List.length block) in
        List.iter
          (fun tuple -> Hashtbl.add hash tuple.(outer_offset) tuple)
          block;
        Heap_file.scan (Table.heap inner) ~f:(fun _ inner_tuple ->
            List.iter
              (fun outer_tuple ->
                let out = combine outer_tuple inner_tuple in
                if keep filter out then results := out :: !results)
              (Hashtbl.find_all hash inner_tuple.(inner_offset)));
        blocks rest
  in
  blocks outer;
  List.rev !results

let block_cross_join ~outer ~block_tuples ~inner ?filter () =
  if block_tuples < 1 then invalid_arg "Exec.block_cross_join: empty block";
  let results = ref [] in
  let rec blocks remaining =
    match remaining with
    | [] -> ()
    | _ ->
        let block, rest = take_block block_tuples [] remaining in
        Heap_file.scan (Table.heap inner) ~f:(fun _ inner_tuple ->
            List.iter
              (fun outer_tuple ->
                let out = combine outer_tuple inner_tuple in
                if keep filter out then results := out :: !results)
              block);
        blocks rest
  in
  blocks outer;
  List.rev !results

let index_join ~outer ~outer_offset ~inner ~inner_offset ?filter () =
  match Table.index_on inner ~offset:inner_offset with
  | None -> invalid_arg "Exec.index_join: no index on inner attribute"
  | Some ix ->
      let results = ref [] in
      List.iter
        (fun outer_tuple ->
          let rids = Btree.lookup ix ~key:outer_tuple.(outer_offset) in
          List.iter
            (fun rid ->
              match Heap_file.get (Table.heap inner) rid with
              | Some inner_tuple ->
                  let out = combine outer_tuple inner_tuple in
                  if keep filter out then results := out :: !results
              | None -> ())
            rids)
        outer;
      List.rev !results

let locate_by_scan t ~offset ~keys =
  let set = Hashtbl.create (2 * List.length keys) in
  List.iter (fun k -> Hashtbl.replace set k ()) keys;
  let acc = ref [] in
  Heap_file.scan (Table.heap t) ~f:(fun rid tuple ->
      if Hashtbl.mem set tuple.(offset) then acc := (rid, tuple) :: !acc);
  List.rev !acc

let locate_by_index t ~offset ~keys =
  match Table.index_on t ~offset with
  | None -> invalid_arg "Exec.locate_by_index: no index on attribute"
  | Some ix ->
      List.concat_map
        (fun key ->
          List.filter_map
            (fun rid ->
              match Heap_file.get (Table.heap t) rid with
              | Some tuple -> Some (rid, tuple)
              | None -> None)
            (Btree.lookup ix ~key))
        keys
