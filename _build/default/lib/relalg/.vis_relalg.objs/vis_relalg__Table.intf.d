lib/relalg/table.mli: Reldesc Vis_storage
