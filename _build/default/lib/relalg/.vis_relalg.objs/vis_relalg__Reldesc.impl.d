lib/relalg/reldesc.ml: List String Vis_catalog
