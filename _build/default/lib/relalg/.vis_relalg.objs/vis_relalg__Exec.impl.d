lib/relalg/exec.ml: Array Hashtbl List Table Vis_storage
