lib/relalg/exec.mli: Table Vis_storage
