lib/relalg/reldesc.mli: Vis_catalog
