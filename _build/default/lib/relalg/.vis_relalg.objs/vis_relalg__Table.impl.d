lib/relalg/table.ml: Array List Reldesc Vis_storage
