(** Physical operators over stored tables.  Intermediate results live in
    memory as tuple lists (the refresh deltas the paper propagates are small
    relative to the stored relations); all page I/O happens when stored
    tables and indexes are touched, and is recorded by the tables' buffer
    pool.

    Combined tuples are concatenations, matching {!Reldesc.concat}. *)

type tuple = int array

type pred = tuple -> bool

(** [scan t ?filter ()] — full scan, optionally filtered. *)
val scan : Table.t -> ?filter:pred -> unit -> tuple list

(** [index_scan t ~offset ~lo ~hi ?filter ()] — fetch the tuples whose
    attribute at [offset] is within [lo, hi], through the index on that
    attribute.  Raises [Invalid_argument] when no such index exists. *)
val index_scan :
  Table.t -> offset:int -> lo:int -> hi:int -> ?filter:pred -> unit -> tuple list

(** [nested_block_join ~outer ~outer_offset ~block_tuples ~inner
    ~inner_offset ?filter ()] joins the in-memory [outer] with stored
    [inner] on equality of the two attributes.  The outer is consumed in
    blocks of [block_tuples] (the memory budget); the inner is scanned once
    per block.  [filter] applies to combined tuples. *)
val nested_block_join :
  outer:tuple list ->
  outer_offset:int ->
  block_tuples:int ->
  inner:Table.t ->
  inner_offset:int ->
  ?filter:pred ->
  unit ->
  tuple list

(** [block_cross_join ~outer ~block_tuples ~inner ?filter ()] — degenerate
    nested-block join without an equality (a cross product, possibly
    restricted by [filter] on combined tuples). *)
val block_cross_join :
  outer:tuple list ->
  block_tuples:int ->
  inner:Table.t ->
  ?filter:pred ->
  unit ->
  tuple list

(** [index_join ~outer ~outer_offset ~inner ~inner_offset ?filter ()] probes
    the inner's index on [inner_offset] once per outer tuple and fetches the
    matching inner tuples.  Raises [Invalid_argument] when the index is
    missing. *)
val index_join :
  outer:tuple list ->
  outer_offset:int ->
  inner:Table.t ->
  inner_offset:int ->
  ?filter:pred ->
  unit ->
  tuple list

(** [locate_by_scan t ~offset ~keys] — the rids and tuples whose attribute at
    [offset] takes one of [keys], found by a single scan. *)
val locate_by_scan :
  Table.t -> offset:int -> keys:int list -> (Vis_storage.Heap_file.rid * tuple) list

(** [locate_by_index t ~offset ~keys] — the same through the index on
    [offset].  Raises [Invalid_argument] when the index is missing. *)
val locate_by_index :
  Table.t -> offset:int -> keys:int list -> (Vis_storage.Heap_file.rid * tuple) list
