type t = (int * string) list

let of_relation schema i =
  List.map
    (fun a -> (i, a))
    (Vis_catalog.Schema.relation schema i).Vis_catalog.Schema.attrs

let concat a b =
  List.iter
    (fun qa ->
      if List.mem qa a then
        invalid_arg "Reldesc.concat: overlapping attribute")
    b;
  a @ b

let arity = List.length

let offset t ~rel ~attr =
  let rec loop i = function
    | [] -> raise Not_found
    | (r, a) :: rest ->
        if r = rel && String.equal a attr then i else loop (i + 1) rest
  in
  loop 0 t

let mem t ~rel ~attr = List.exists (fun (r, a) -> r = rel && String.equal a attr) t

let attrs t = t

let equal a b =
  List.length a = List.length b
  && List.for_all2 (fun (r1, a1) (r2, a2) -> r1 = r2 && String.equal a1 a2) a b
