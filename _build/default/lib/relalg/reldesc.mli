(** Tuple layout of a stored table: an ordered list of qualified attributes
    (base-relation index, attribute name) mapping to offsets in the int-array
    tuples.  A join result's descriptor is the concatenation of its inputs'
    descriptors. *)

type t

(** [of_relation schema i] — the layout of base relation [i], attributes in
    declaration order. *)
val of_relation : Vis_catalog.Schema.t -> int -> t

(** [concat a b] — the layout of [a ⋈ b] results ([a]'s attributes first).
    Raises [Invalid_argument] when the two share an attribute. *)
val concat : t -> t -> t

val arity : t -> int

(** [offset t ~rel ~attr] — position of the attribute.  Raises
    [Not_found]. *)
val offset : t -> rel:int -> attr:string -> int

val mem : t -> rel:int -> attr:string -> bool

(** Qualified attributes in layout order. *)
val attrs : t -> (int * string) list

val equal : t -> t -> bool
