(** An LRU buffer pool over simulated page identifiers.

    The pool does not hold page contents — data structures keep their own
    state — it only models residency: {!touch} brings a page in (counting a
    physical read on a miss), possibly evicting the least recently used page
    (counting a physical write if that page was dirty).  This is the
    mechanism by which executed maintenance plans produce measured I/O counts
    comparable to the cost model's estimates. *)

type t

(** [create ~capacity ~stats] — [capacity] pages; raises [Invalid_argument]
    when [capacity < 1]. *)
val create : capacity:int -> stats:Iostats.t -> t

val capacity : t -> int

val stats : t -> Iostats.t

(** [fresh_page t] allocates a new page identifier (not resident yet). *)
val fresh_page : t -> int

(** [touch t page ~dirty] accesses [page]: a miss counts one read, and marks
    it dirty when [dirty] so its eventual eviction counts one write. *)
val touch : t -> int -> dirty:bool -> unit

(** [touch_new t page] registers a page created in memory (e.g. the fresh
    half of a split): resident and dirty without counting a read. *)
val touch_new : t -> int -> unit

(** [discard t page] drops a page without writing it back (for deallocated
    pages). *)
val discard : t -> int -> unit

(** [flush t] evicts everything, writing back dirty pages. *)
val flush : t -> unit

(** [resident t page] — whether the page is currently buffered. *)
val resident : t -> int -> bool
