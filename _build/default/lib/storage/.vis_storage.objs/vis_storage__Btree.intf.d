lib/storage/btree.mli: Buffer_pool Heap_file
