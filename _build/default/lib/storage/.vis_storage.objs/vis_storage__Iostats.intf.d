lib/storage/iostats.mli: Format
