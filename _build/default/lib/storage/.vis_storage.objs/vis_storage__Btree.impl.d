lib/storage/btree.ml: Array Buffer_pool Heap_file Int List Printf
