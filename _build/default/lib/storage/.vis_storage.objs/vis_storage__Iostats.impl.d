lib/storage/iostats.ml: Format
