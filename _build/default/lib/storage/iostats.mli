(** Counters of physical page I/O, shared by a buffer pool and read by the
    experiments that validate the cost model against execution. *)

type t

val create : unit -> t

(** Physical page reads (buffer-pool misses). *)
val reads : t -> int

(** Physical page writes (dirty evictions and flushes). *)
val writes : t -> int

(** Logical page accesses (hits + misses). *)
val accesses : t -> int

val total_io : t -> int

val record_read : t -> unit

val record_write : t -> unit

val record_access : t -> unit

val reset : t -> unit

val pp : Format.formatter -> t -> unit
