type rid = { rid_page : int; rid_slot : int }

type page = { gid : int; slots : int array option array; mutable live : int }

type t = {
  pool : Buffer_pool.t;
  tpp : int;
  mutable pages : page array;
  mutable n_pages : int;
  mutable n_tuples : int;
  mutable tail_used : int;  (* slots handed out on the last page *)
}

let create pool ~tuples_per_page =
  if tuples_per_page < 1 then invalid_arg "Heap_file.create";
  {
    pool;
    tpp = tuples_per_page;
    pages = [||];
    n_pages = 0;
    n_tuples = 0;
    tail_used = 0;
  }

let grow t =
  let gid = Buffer_pool.fresh_page t.pool in
  let page = { gid; slots = Array.make t.tpp None; live = 0 } in
  if t.n_pages = Array.length t.pages then begin
    let ncap = max 8 (2 * Array.length t.pages) in
    let npages = Array.make ncap page in
    Array.blit t.pages 0 npages 0 t.n_pages;
    t.pages <- npages
  end;
  t.pages.(t.n_pages) <- page;
  t.n_pages <- t.n_pages + 1;
  t.tail_used <- 0;
  Buffer_pool.touch_new t.pool gid;
  page

let append t tuple =
  let page =
    if t.n_pages = 0 || t.tail_used >= t.tpp then grow t
    else begin
      let page = t.pages.(t.n_pages - 1) in
      Buffer_pool.touch t.pool page.gid ~dirty:true;
      page
    end
  in
  let slot = t.tail_used in
  page.slots.(slot) <- Some (Array.copy tuple);
  page.live <- page.live + 1;
  t.tail_used <- t.tail_used + 1;
  t.n_tuples <- t.n_tuples + 1;
  { rid_page = t.n_pages - 1; rid_slot = slot }

let check_rid t rid =
  rid.rid_page >= 0 && rid.rid_page < t.n_pages && rid.rid_slot >= 0
  && rid.rid_slot < t.tpp

let get t rid =
  if not (check_rid t rid) then invalid_arg "Heap_file.get: bad rid";
  let page = t.pages.(rid.rid_page) in
  Buffer_pool.touch t.pool page.gid ~dirty:false;
  page.slots.(rid.rid_slot)

let delete t rid =
  if not (check_rid t rid) then invalid_arg "Heap_file.delete: bad rid";
  let page = t.pages.(rid.rid_page) in
  Buffer_pool.touch t.pool page.gid ~dirty:true;
  match page.slots.(rid.rid_slot) with
  | None -> false
  | Some _ ->
      page.slots.(rid.rid_slot) <- None;
      page.live <- page.live - 1;
      t.n_tuples <- t.n_tuples - 1;
      true

let update t rid tuple =
  if not (check_rid t rid) then invalid_arg "Heap_file.update: bad rid";
  let page = t.pages.(rid.rid_page) in
  Buffer_pool.touch t.pool page.gid ~dirty:true;
  match page.slots.(rid.rid_slot) with
  | None -> false
  | Some _ ->
      page.slots.(rid.rid_slot) <- Some (Array.copy tuple);
      true

let scan t ~f =
  for p = 0 to t.n_pages - 1 do
    let page = t.pages.(p) in
    Buffer_pool.touch t.pool page.gid ~dirty:false;
    for s = 0 to t.tpp - 1 do
      match page.slots.(s) with
      | Some tuple -> f { rid_page = p; rid_slot = s } tuple
      | None -> ()
    done
  done

let n_tuples t = t.n_tuples

let n_pages t = t.n_pages

let tuples_per_page t = t.tpp

let page_gid t i =
  if i < 0 || i >= t.n_pages then invalid_arg "Heap_file.page_gid";
  t.pages.(i).gid
