(* LRU as a doubly-linked list threaded through a hashtable of frames. *)

type frame = {
  page : int;
  mutable dirty : bool;
  mutable prev : frame option;  (* towards most recently used *)
  mutable next : frame option;  (* towards least recently used *)
}

type t = {
  cap : int;
  io : Iostats.t;
  frames : (int, frame) Hashtbl.t;
  mutable mru : frame option;
  mutable lru : frame option;
  mutable next_page : int;
}

let create ~capacity ~stats =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity < 1";
  {
    cap = capacity;
    io = stats;
    frames = Hashtbl.create (2 * capacity);
    mru = None;
    lru = None;
    next_page = 0;
  }

let capacity t = t.cap

let stats t = t.io

let fresh_page t =
  let id = t.next_page in
  t.next_page <- t.next_page + 1;
  id

let unlink t f =
  (match f.prev with
  | Some p -> p.next <- f.next
  | None -> t.mru <- f.next);
  (match f.next with
  | Some n -> n.prev <- f.prev
  | None -> t.lru <- f.prev);
  f.prev <- None;
  f.next <- None

let push_front t f =
  f.next <- t.mru;
  f.prev <- None;
  (match t.mru with Some m -> m.prev <- Some f | None -> ());
  t.mru <- Some f;
  if t.lru = None then t.lru <- Some f

let evict_lru t =
  match t.lru with
  | None -> ()
  | Some f ->
      unlink t f;
      Hashtbl.remove t.frames f.page;
      if f.dirty then Iostats.record_write t.io

let insert_resident t page ~dirty ~count_read =
  if count_read then Iostats.record_read t.io;
  if Hashtbl.length t.frames >= t.cap then evict_lru t;
  let f = { page; dirty; prev = None; next = None } in
  Hashtbl.replace t.frames page f;
  push_front t f

let touch t page ~dirty =
  Iostats.record_access t.io;
  match Hashtbl.find_opt t.frames page with
  | Some f ->
      unlink t f;
      push_front t f;
      if dirty then f.dirty <- true
  | None -> insert_resident t page ~dirty ~count_read:true

let touch_new t page =
  Iostats.record_access t.io;
  match Hashtbl.find_opt t.frames page with
  | Some f ->
      unlink t f;
      push_front t f;
      f.dirty <- true
  | None -> insert_resident t page ~dirty:true ~count_read:false

let discard t page =
  match Hashtbl.find_opt t.frames page with
  | Some f ->
      unlink t f;
      Hashtbl.remove t.frames f.page
  | None -> ()

let flush t =
  while t.lru <> None do
    evict_lru t
  done

let resident t page = Hashtbl.mem t.frames page
