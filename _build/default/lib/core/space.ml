module Bitset = Vis_util.Bitset
module Derived = Vis_catalog.Derived
module Config = Vis_costmodel.Config
module Element = Vis_costmodel.Element

type step = {
  st_space : float;
  st_cost : float;
  st_config : Config.t;
  st_added : string list;
  st_dropped : string list;
}

type sweep = {
  sw_base_pages : float;
  sw_unconstrained_cost : float;
  sw_steps : step list;
}

let feature_names p config =
  List.map
    (fun w -> Problem.feature_name p (Problem.F_view w))
    (Config.views config)
  @ List.map
      (fun ix -> Problem.feature_name p (Problem.F_index ix))
      (Config.indexes config)

let sweep ?(max_states = 2_000_000) p =
  let expected = Exhaustive.count_states p in
  if expected > float_of_int max_states then
    raise (Exhaustive.Too_large expected);
  (* Cheapest configuration per (rounded) footprint. *)
  let by_space : (int, float * Config.t) Hashtbl.t = Hashtbl.create 1024 in
  ignore
    (Exhaustive.enumerate p ~f:(fun config ~cost ~space ->
         let key = int_of_float (Float.round space) in
         match Hashtbl.find_opt by_space key with
         | Some (c, _) when c <= cost -> ()
         | _ -> Hashtbl.replace by_space key (cost, config)));
  let entries =
    Hashtbl.fold (fun space (cost, config) acc -> (space, cost, config) :: acc)
      by_space []
    |> List.sort (fun (s1, _, _) (s2, _, _) -> Int.compare s1 s2)
  in
  (* Prefix minimum: keep entries that improve on every smaller footprint. *)
  let steps_rev, _ =
    List.fold_left
      (fun (acc, best) (space, cost, config) ->
        if cost < best then
          (( float_of_int space, cost, config) :: acc, cost)
        else (acc, best))
      ([], infinity) entries
  in
  let steps = List.rev steps_rev in
  let with_diffs =
    let rec annotate prev = function
      | [] -> []
      | (space, cost, config) :: rest ->
          let names = feature_names p config in
          let prev_names = match prev with None -> [] | Some c -> feature_names p c in
          let added = List.filter (fun n -> not (List.mem n prev_names)) names in
          let dropped = List.filter (fun n -> not (List.mem n names)) prev_names in
          {
            st_space = space;
            st_cost = cost;
            st_config = config;
            st_added = added;
            st_dropped = dropped;
          }
          :: annotate (Some config) rest
    in
    annotate None steps
  in
  let schema = p.Problem.schema in
  let n = Vis_catalog.Schema.n_relations schema in
  let base_pages =
    List.fold_left
      (fun acc i -> acc +. Derived.base_pages p.Problem.derived i)
      0. (List.init n Fun.id)
  in
  let unconstrained =
    match List.rev with_diffs with
    | last :: _ -> last.st_cost
    | [] -> invalid_arg "Space.sweep: empty enumeration"
  in
  {
    sw_base_pages = base_pages;
    sw_unconstrained_cost = unconstrained;
    sw_steps = with_diffs;
  }

let cost_at sweep ~budget =
  List.fold_left
    (fun best st -> if st.st_space <= budget then st.st_cost else best)
    infinity sweep.sw_steps

let feature_order sweep =
  List.fold_left
    (fun acc st ->
      List.fold_left
        (fun acc name ->
          if List.mem_assoc name acc then acc else (name, st.st_space) :: acc)
        acc st.st_added)
    [] sweep.sw_steps
  |> List.rev
