(** The expression DAG of the primary view (the paper's Figure 3): every
    candidate node together with the ways it can be derived by joining two
    smaller disjoint nodes.  Used for explanation output and to illustrate
    update paths. *)

type node = {
  n_rels : Vis_util.Bitset.t;
  n_name : string;
  n_derivations : (Vis_util.Bitset.t * Vis_util.Bitset.t) list;
      (** unordered pairs of disjoint nodes whose join yields this node *)
}

(** [build p] lists all nodes (candidate views plus the primary view), in
    increasing size. *)
val build : Problem.t -> node list

(** [pp p ppf ()] renders the DAG, one node per line with its
    derivations. *)
val pp : Problem.t -> Format.formatter -> unit -> unit
