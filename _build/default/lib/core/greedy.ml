module Bitset = Vis_util.Bitset
module Schema = Vis_catalog.Schema
module Element = Vis_costmodel.Element
module Config = Vis_costmodel.Config

type step = { s_feature : Problem.feature; s_cost_after : float }

type result = {
  best : Config.t;
  best_cost : float;
  steps : step list;
  evaluations : int;
}

let feature_in_config config = function
  | Problem.F_view w -> Config.has_view config w
  | Problem.F_index ix ->
      Config.has_index config ix.Element.ix_elem ix.Element.ix_attr

let feature_applicable p config = function
  | Problem.F_view _ -> true
  | Problem.F_index ix -> (
      match ix.Element.ix_elem with
      | Element.Base _ -> true
      | Element.View w ->
          Bitset.equal w (Schema.all_relations p.Problem.schema)
          || Config.has_view config w)

let apply config = function
  | Problem.F_view w -> Config.add_view config w
  | Problem.F_index ix -> Config.add_index config ix

let search ?space_budget p =
  let evaluations = ref 0 in
  let cost config =
    incr evaluations;
    Problem.total p config
  in
  let within_budget config =
    match space_budget with
    | None -> true
    | Some b -> Config.space p.Problem.derived config <= b
  in
  let rec loop config current steps =
    let candidates =
      List.filter
        (fun f ->
          (not (feature_in_config config f)) && feature_applicable p config f)
        p.Problem.features
    in
    let best =
      List.fold_left
        (fun acc f ->
          let config' = apply config f in
          if not (within_budget config') then acc
          else
            let c = cost config' in
            match acc with
            | Some (_, _, best_c) when best_c <= c -> acc
            | _ when c < current -> Some (f, config', c)
            | _ -> acc)
        None candidates
    in
    match best with
    | None ->
        {
          best = config;
          best_cost = current;
          steps = List.rev steps;
          evaluations = !evaluations;
        }
    | Some (f, config', c) ->
        loop config' c ({ s_feature = f; s_cost_after = c } :: steps)
  in
  loop Config.empty (cost Config.empty) []
