(** The space-constrained study of Section 6.1 (Figures 10 and 11): how does
    the best achievable maintenance cost evolve as the storage available for
    supporting views and indexes grows, and in which order do features enter
    the physical design?

    The sweep enumerates the full exhaustive space once, keeps the cheapest
    configuration per storage footprint, and derives the staircase of
    configurations where increasing the budget changes the optimum. *)

type step = {
  st_space : float;  (** additional pages the configuration occupies *)
  st_cost : float;  (** its total maintenance cost *)
  st_config : Vis_costmodel.Config.t;
  st_added : string list;  (** features gained versus the previous step *)
  st_dropped : string list;  (** features given up versus the previous step *)
}

type sweep = {
  sw_base_pages : float;  (** Σ pages of the base relations, for the x-axis *)
  sw_unconstrained_cost : float;  (** cost of the space-unlimited optimum *)
  sw_steps : step list;  (** by increasing space; first is the empty design *)
}

(** [sweep p] runs the full enumeration.  Raises
    {!Exhaustive.Too_large} when the space is beyond [max_states]
    (default 2,000,000). *)
val sweep : ?max_states:int -> Problem.t -> sweep

(** [cost_at sweep ~budget] is the best cost achievable within [budget]
    additional pages (staircase lookup). *)
val cost_at : sweep -> budget:float -> float

(** [feature_order sweep] lists features in the order they {e first} appear
    as the budget grows — the numbering of Figure 11. *)
val feature_order : sweep -> (string * float) list
(** (feature name, budget at which it first appears) *)
