lib/core/exhaustive.ml: Array Float List Problem Vis_costmodel Vis_util
