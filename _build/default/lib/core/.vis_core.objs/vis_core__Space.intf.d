lib/core/space.mli: Problem Vis_costmodel
