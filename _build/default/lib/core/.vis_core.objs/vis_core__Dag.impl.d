lib/core/dag.ml: Format List Problem Vis_catalog Vis_costmodel Vis_util
