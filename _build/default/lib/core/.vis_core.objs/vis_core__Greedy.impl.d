lib/core/greedy.ml: List Problem Vis_catalog Vis_costmodel Vis_util
