lib/core/astar.ml: Array Exhaustive Float Greedy Hashtbl List Option Problem Vis_catalog Vis_costmodel Vis_util
