lib/core/explain.mli: Problem Vis_costmodel
