lib/core/astar.mli: Problem Vis_costmodel
