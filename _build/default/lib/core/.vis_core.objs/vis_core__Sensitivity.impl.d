lib/core/sensitivity.ml: Astar List Problem Vis_costmodel
