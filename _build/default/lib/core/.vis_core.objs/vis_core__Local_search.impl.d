lib/core/local_search.ml: Greedy List Problem Vis_catalog Vis_costmodel Vis_util
