lib/core/space.ml: Exhaustive Float Fun Hashtbl Int List Problem Vis_catalog Vis_costmodel Vis_util
