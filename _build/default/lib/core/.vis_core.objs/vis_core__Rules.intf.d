lib/core/rules.mli: Problem Vis_costmodel Vis_util
