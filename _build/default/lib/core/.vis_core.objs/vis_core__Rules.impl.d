lib/core/rules.ml: Float Hashtbl List Printf Problem String Vis_catalog Vis_costmodel Vis_util
