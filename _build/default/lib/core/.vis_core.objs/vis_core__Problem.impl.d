lib/core/problem.ml: Fun Int List Vis_catalog Vis_costmodel Vis_util
