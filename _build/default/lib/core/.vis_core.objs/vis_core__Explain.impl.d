lib/core/explain.ml: Buffer Format List Printf Problem Vis_catalog Vis_costmodel Vis_util
