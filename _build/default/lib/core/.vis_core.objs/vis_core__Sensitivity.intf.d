lib/core/sensitivity.mli: Vis_catalog Vis_costmodel
