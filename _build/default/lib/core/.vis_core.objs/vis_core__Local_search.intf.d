lib/core/local_search.mli: Problem Vis_costmodel
