lib/core/exhaustive.mli: Problem Vis_costmodel Vis_util
