lib/core/dag.mli: Format Problem Vis_util
