lib/core/greedy.mli: Problem Vis_costmodel
