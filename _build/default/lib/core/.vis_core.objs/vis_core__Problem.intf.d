lib/core/problem.mli: Vis_catalog Vis_costmodel Vis_util
