module Bitset = Vis_util.Bitset
module Schema = Vis_catalog.Schema
module Element = Vis_costmodel.Element

type node = {
  n_rels : Bitset.t;
  n_name : string;
  n_derivations : (Bitset.t * Bitset.t) list;
}

let build p =
  let schema = p.Problem.schema in
  let is_node s =
    List.exists (Bitset.equal s) p.Problem.candidate_views
    || Bitset.equal s (Schema.all_relations schema)
    || Bitset.cardinal s = 1
  in
  let node_sets =
    p.Problem.candidate_views @ [ Schema.all_relations schema ]
  in
  List.map
    (fun s ->
      let derivations =
        if Bitset.cardinal s < 2 then []
        else
          List.filter_map
            (fun a ->
              let b = Bitset.diff s a in
              (* Keep each unordered pair once and only split into parts
                 that are themselves nodes of the DAG. *)
              if
                Bitset.to_int a < Bitset.to_int b
                && is_node a && is_node b
              then Some (a, b)
              else None)
            (Bitset.proper_nonempty_subsets s)
      in
      {
        n_rels = s;
        n_name = Element.name schema (Element.View s);
        n_derivations = derivations;
      })
    node_sets

let pp p ppf () =
  let schema = p.Problem.schema in
  let name s = Element.name schema (Element.View s) in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun n ->
      Format.fprintf ppf "%s" n.n_name;
      if n.n_derivations <> [] then begin
        Format.fprintf ppf " <- ";
        Format.pp_print_list
          ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ")
          (fun ppf (a, b) -> Format.fprintf ppf "%s \xe2\x8b\x88 %s" (name a) (name b))
          ppf n.n_derivations
      end;
      Format.fprintf ppf "@,")
    (build p);
  Format.fprintf ppf "@]"
