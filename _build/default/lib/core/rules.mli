(** The rules of thumb of Section 5, as an advisor a warehouse administrator
    can run instead of the full search.

    The advisor follows the paper's approximate benefit/cost formulas
    (Sections 5.2.1 and 5.3): materialize a feature when its estimated
    benefit (I/O reduction) exceeds its estimated cost (extra I/O to keep it
    maintained).  Supporting views are considered first, largest benefit
    surplus first, keeping the chosen set non-overlapping (the Section 5.2
    assumption); indexes are then decided per element.  Every decision cites
    the rule(s) that drove it:

    - Rule 5.1: materialize selective supporting views ([P(V) ≪ P(E(V))]);
    - Rule 5.2: materialize views with no deletions or updates;
    - Rule 5.5: build indexes on keys;
    - Rule 5.6: build indexes on join attributes — sometimes;
    - Rule 5.7: do not build indexes on local selection attributes (unless…);
    - Rule 5.8: build indexes that fit in memory. *)

type decision = {
  d_feature : Problem.feature;
  d_benefit : float;
  d_cost : float;
  d_chosen : bool;
  d_rule : string;  (** e.g. "5.1", "5.5+5.6" *)
  d_why : string;  (** human-readable justification *)
}

type advice = {
  a_config : Vis_costmodel.Config.t;
  a_decisions : decision list;  (** in the order considered *)
}

(** [advise p] runs the advisor. *)
val advise : Problem.t -> advice

(** {1 The underlying formulas, exposed for tests and experiments} *)

(** [elements p ~chosen w] is [E(w)]: a fewest-element cover of [w] by the
    chosen supporting views and base relations (ties broken towards fewer
    pages). *)
val elements :
  Problem.t -> chosen:Vis_util.Bitset.t list -> Vis_util.Bitset.t -> Vis_costmodel.Element.t list

(** [benefit_view p ~chosen ~indexed w] — [Benefit_v(V)] of Section 5.2.1.
    With [indexed] the index-join branch [(|E(V)|−1)·I(R̄(V))] is used,
    otherwise [P(E(V)) − P(V)]. *)
val benefit_view :
  Problem.t -> chosen:Vis_util.Bitset.t list -> indexed:bool -> Vis_util.Bitset.t -> float

(** [cost_view p ~keys_indexed w] — [Cost_v(V)] (excluding [Cost_i] of its
    indexes, which the advisor accounts per index). *)
val cost_view : Problem.t -> keys_indexed:bool -> Vis_util.Bitset.t -> float

(** [cost_index p ix] — [Cost_i(V, R.A)]. *)
val cost_index : Problem.t -> Vis_costmodel.Element.index -> float

(** [benefit_index_key p ix] — [Benefit_i^key]; 0 when the attribute is not
    the key of a relation of the element. *)
val benefit_index_key : Problem.t -> Vis_costmodel.Element.index -> float

(** [benefit_index_join p ix] — [Benefit_i^jc]; 0 when the attribute joins
    nothing outside the element. *)
val benefit_index_join : Problem.t -> Vis_costmodel.Element.index -> float

(** [benefit_index_sel p ~chosen ix] — [Benefit_i^sc]; nonzero only on base
    relations, per Rule 5.7's conditions. *)
val benefit_index_sel :
  Problem.t -> chosen:Vis_util.Bitset.t list -> Vis_costmodel.Element.index -> float
