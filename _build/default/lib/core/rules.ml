module Bitset = Vis_util.Bitset
module Schema = Vis_catalog.Schema
module Derived = Vis_catalog.Derived
module Element = Vis_costmodel.Element
module Config = Vis_costmodel.Config

type decision = {
  d_feature : Problem.feature;
  d_benefit : float;
  d_cost : float;
  d_chosen : bool;
  d_rule : string;
  d_why : string;
}

type advice = { a_config : Config.t; a_decisions : decision list }

(* ------------------------------------------------------------------ *)
(* Table 3 statistics. *)

let sum_over_rels schema set f =
  Bitset.fold (fun i acc -> acc +. f (Schema.delta schema i)) set 0.

let ins_outside p w =
  let schema = p.Problem.schema in
  let outside = Bitset.diff (Schema.all_relations schema) w in
  sum_over_rels schema outside (fun d -> d.Schema.n_ins)

let del_within p w =
  sum_over_rels p.Problem.schema w (fun d -> d.Schema.n_del)

let upd_within p w =
  sum_over_rels p.Problem.schema w (fun d -> d.Schema.n_upd)

(* E(V): fewest-element cover of [w] by chosen views and base relations,
   ties broken towards fewer pages.  Exact DP over the subsets of [w]. *)
let elements p ~chosen w =
  let d = p.Problem.derived in
  let units =
    Bitset.fold (fun i acc -> Element.Base i :: acc) w []
    @ List.filter_map
        (fun v -> if Bitset.subset v w then Some (Element.View v) else None)
        chosen
  in
  let best : (int, int * float * Element.t list) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.replace best (Bitset.to_int Bitset.empty) (0, 0., []);
  let subsets = Bitset.subsets w in
  List.iter
    (fun set ->
      match Hashtbl.find_opt best (Bitset.to_int set) with
      | None -> ()
      | Some (n, pages, cover) ->
          List.iter
            (fun u ->
              let urels = Element.rels u in
              if Bitset.disjoint urels set then begin
                let next = Bitset.union set urels in
                let cand = (n + 1, pages +. Element.pages d u, u :: cover) in
                match Hashtbl.find_opt best (Bitset.to_int next) with
                | Some (n', pages', _)
                  when n' < n + 1 || (n' = n + 1 && pages' <= pages +. Element.pages d u)
                  ->
                    ()
                | _ -> Hashtbl.replace best (Bitset.to_int next) cand
              end)
            units)
    subsets;
  match Hashtbl.find_opt best (Bitset.to_int w) with
  | Some (_, _, cover) -> List.rev cover
  | None -> assert false

let element_pages p ~chosen w =
  List.fold_left
    (fun acc e -> acc +. Element.pages p.Problem.derived e)
    0. (elements p ~chosen w)

(* ------------------------------------------------------------------ *)
(* Section 5.2.1 formulas. *)

let benefit_view p ~chosen ~indexed w =
  let d = p.Problem.derived in
  if indexed then begin
    (* The index-join branch of Benefit_v only applies when probing the view
       is actually cheaper than scanning it: every join linking the view to
       an outside relation must fetch fewer pages than P(V) over the whole
       insertion batch (the same condition as Rule 5.6). *)
    let pages = Derived.view_pages d w in
    let probe_friendly =
      List.for_all
        (fun (j : Schema.join) ->
          let crossing =
            Bitset.mem j.Schema.left_rel w <> Bitset.mem j.Schema.right_rel w
          in
          (not crossing)
          || Derived.matches_per_join_probe d ~view:w ~join:j *. ins_outside p w
             < pages)
        p.Problem.schema.Schema.joins
    in
    if not probe_friendly then 0.
    else
      let n_elems = List.length (elements p ~chosen w) in
      float_of_int (max 0 (n_elems - 1)) *. ins_outside p w
  end
  else element_pages p ~chosen w -. Derived.view_pages d w

let cost_view p ~keys_indexed w =
  let d = p.Problem.derived in
  let pages = Derived.view_pages d w in
  let scans = pages *. float_of_int (Bitset.cardinal w) in
  if keys_indexed then Float.min (del_within p w +. upd_within p w) scans
  else scans

(* ------------------------------------------------------------------ *)
(* Section 5.3 formulas. *)

let shape_of p ix = Element.index_shape p.Problem.derived ix

let cost_index p ix =
  let shape = shape_of p ix in
  let pm = float_of_int p.Problem.schema.Schema.mem_pages in
  if shape.Derived.ix_pages < pm then shape.Derived.ix_pages
  else
    let rels = Element.rels ix.Element.ix_elem in
    sum_over_rels p.Problem.schema rels (fun dl ->
        dl.Schema.n_ins +. dl.Schema.n_del)

let benefit_index_key p ix =
  let schema = p.Problem.schema in
  let elem = ix.Element.ix_elem in
  let r = ix.Element.ix_attr.Element.a_rel in
  let key = (Schema.relation schema r).Schema.key_attr in
  if
    ix.Element.ix_attr.Element.a_name <> key
    || not (Bitset.mem r (Element.rels elem))
  then 0.
  else begin
    let pages = Element.pages p.Problem.derived elem in
    let dl = Schema.delta schema r in
    let term x = if x > 0. && x < pages then pages -. x else 0. in
    term dl.Schema.n_del +. term dl.Schema.n_upd
  end

let benefit_index_join p ix =
  let schema = p.Problem.schema in
  let elem = ix.Element.ix_elem in
  let rels = Element.rels elem in
  let pages = Element.pages p.Problem.derived elem in
  let attr = ix.Element.ix_attr in
  List.fold_left
    (fun best (j : Schema.join) ->
      let qualifies other_rel this_rel this_attr =
        this_rel = attr.Element.a_rel
        && this_attr = attr.Element.a_name
        && Bitset.mem this_rel rels
        && not (Bitset.mem other_rel rels)
      in
      let other =
        if qualifies j.Schema.right_rel j.Schema.left_rel j.Schema.left_attr then
          Some j.Schema.right_rel
        else if qualifies j.Schema.left_rel j.Schema.right_rel j.Schema.right_attr
        then Some j.Schema.left_rel
        else None
      in
      match other with
      | None -> best
      | Some _ ->
          let matches =
            Derived.matches_per_join_probe p.Problem.derived ~view:rels ~join:j
          in
          let probes = matches *. ins_outside p rels in
          if probes < pages then Float.max best (pages -. probes) else best)
    0. schema.Schema.joins

let benefit_index_sel p ~chosen ix =
  let schema = p.Problem.schema in
  match ix.Element.ix_elem with
  | Element.View _ -> 0.
  | Element.Base i ->
      if not (List.mem ix.Element.ix_attr.Element.a_name (Schema.selection_attrs schema i))
      then 0.
      else if List.exists (Bitset.equal (Bitset.singleton i)) chosen then 0.
        (* condition (4): σR already materialized *)
      else begin
        let pages = Derived.base_pages p.Problem.derived i in
        let matching = Derived.eff_card p.Problem.derived i in
        if matching < pages then pages -. matching else 0.
      end

(* ------------------------------------------------------------------ *)
(* The advisor. *)

let overlapping a b =
  (not (Bitset.disjoint a b)) && (not (Bitset.subset a b)) && not (Bitset.subset b a)

let key_indexes_of p w =
  List.filter
    (fun ix -> benefit_index_key p ix > 0.)
    (Problem.candidate_indexes_on p (Element.View w))

let view_surplus p ~chosen w =
  let benefit =
    Float.max
      (benefit_view p ~chosen ~indexed:false w)
      (benefit_view p ~chosen ~indexed:true w)
  in
  let plain = cost_view p ~keys_indexed:false w in
  let with_keys =
    cost_view p ~keys_indexed:true w
    +. List.fold_left (fun acc ix -> acc +. cost_index p ix) 0. (key_indexes_of p w)
  in
  (benefit, Float.min plain with_keys)

let view_rule p w =
  let no_delupd = del_within p w +. upd_within p w = 0. in
  let selective =
    Derived.view_pages p.Problem.derived w
    <= 0.5 *. element_pages p ~chosen:[] w
  in
  match (selective, no_delupd) with
  | true, true -> "5.1+5.2"
  | true, false -> "5.1"
  | false, true -> "5.2"
  | false, false -> "-"

let advise p =
  let decisions = ref [] in
  let log d = decisions := d :: !decisions in
  (* Phase 1: supporting views, best surplus first, non-overlapping. *)
  let rec pick_views chosen remaining =
    let scored =
      List.filter_map
        (fun w ->
          if List.exists (overlapping w) chosen then None
          else
            let benefit, cost = view_surplus p ~chosen w in
            if benefit > cost then Some (w, benefit, cost) else None)
        remaining
    in
    match
      List.sort
        (fun (_, b1, c1) (_, b2, c2) -> Float.compare (b2 -. c2) (b1 -. c1))
        scored
    with
    | [] -> chosen
    | (w, benefit, cost) :: _ ->
        log
          {
            d_feature = Problem.F_view w;
            d_benefit = benefit;
            d_cost = cost;
            d_chosen = true;
            d_rule = view_rule p w;
            d_why =
              Printf.sprintf "P(V)=%.0f vs P(E(V))=%.0f, D+U(R(V))=%.0f"
                (Derived.view_pages p.Problem.derived w)
                (element_pages p ~chosen w)
                (del_within p w +. upd_within p w);
          };
        pick_views (w :: chosen)
          (List.filter (fun v -> not (Bitset.equal v w)) remaining)
  in
  let chosen = pick_views [] p.Problem.candidate_views in
  (* Log the rejected views too. *)
  List.iter
    (fun w ->
      if not (List.exists (Bitset.equal w) chosen) then begin
        let benefit, cost = view_surplus p ~chosen w in
        log
          {
            d_feature = Problem.F_view w;
            d_benefit = benefit;
            d_cost = cost;
            d_chosen = false;
            d_rule = view_rule p w;
            d_why =
              (if List.exists (overlapping w) chosen then
                 "overlaps a chosen supporting view"
               else "estimated cost exceeds benefit");
          }
      end)
    p.Problem.candidate_views;
  (* Phase 2: indexes on every materialized element. *)
  let pm = float_of_int p.Problem.schema.Schema.mem_pages in
  let indexes = ref [] in
  let decide_index ix =
    let b_key = benefit_index_key p ix in
    let b_join = benefit_index_join p ix in
    let b_sel =
      (* Rule 5.7 condition (1): only when no join-attribute index was
         already accepted on this element. *)
      if
        List.exists
          (fun ix' ->
            Element.equal ix'.Element.ix_elem ix.Element.ix_elem
            && benefit_index_join p ix' > 0.)
          !indexes
      then 0.
      else benefit_index_sel p ~chosen ix
    in
    let benefit = b_key +. b_join +. b_sel in
    let cost = cost_index p ix in
    let chosen_ix = benefit > cost in
    let shape = shape_of p ix in
    let rule =
      let parts =
        (if b_key > 0. then [ "5.5" ] else [])
        @ (if b_join > 0. then [ "5.6" ] else [])
        @ (if b_sel > 0. then [ "5.7" ] else [])
        @ if chosen_ix && shape.Derived.ix_pages < pm then [ "5.8" ] else []
      in
      if parts = [] then "-" else String.concat "+" parts
    in
    if chosen_ix then indexes := ix :: !indexes;
    log
      {
        d_feature = Problem.F_index ix;
        d_benefit = benefit;
        d_cost = cost;
        d_chosen = chosen_ix;
        d_rule = rule;
        d_why =
          Printf.sprintf "key=%.0f join=%.0f sel=%.0f vs cost=%.0f (P(ix)=%.0f, Pm=%.0f)"
            b_key b_join b_sel cost shape.Derived.ix_pages pm;
      }
  in
  List.iter decide_index (Problem.indexes_for_views p chosen);
  {
    a_config = Config.make ~views:chosen ~indexes:!indexes;
    a_decisions = List.rev !decisions;
  }
