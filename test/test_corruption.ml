(* Tests for the corruption-detection and self-healing subsystem: fault-plan
   schedule edge cases (non-positive [n], probability bounds, overlapping
   schedules, corruption determinism), buffer-pool checksum sealing and
   verification (detect on miss, reseal on flush/eviction/write-back, pin
   exhaustion), WAL record CRCs (torn-tail truncation vs mid-log corruption),
   the warehouse scrub/quarantine/rebuild pipeline, and the binaries'
   argument validation. *)

module Bitset = Vis_util.Bitset
module Schema = Vis_catalog.Schema
module Config = Vis_costmodel.Config
module Element = Vis_costmodel.Element
module Reldesc = Vis_relalg.Reldesc
module Table = Vis_relalg.Table
module Datagen = Vis_workload.Datagen
module Warehouse = Vis_maintenance.Warehouse
module Validate = Vis_maintenance.Validate
module Iostats = Vis_storage.Iostats
module Buffer_pool = Vis_storage.Buffer_pool
module Heap_file = Vis_storage.Heap_file
module Btree = Vis_storage.Btree
module Checksum = Vis_storage.Checksum
module Faults = Vis_storage.Faults
module Scrub = Vis_storage.Scrub
module Wal = Vis_storage.Wal

let checkb = Alcotest.(check bool)

let checki = Alcotest.(check int)

let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Fault-plan schedule edge cases.  These pin the behavior documented in
   faults.mli's "Schedule edge cases and precedence" section. *)

let armed schedules =
  let plan = Faults.make schedules in
  Faults.arm plan;
  plan

let test_nth_nonpositive () =
  (* Hit counters are 1-based, so n <= 0 can never match. *)
  let plan =
    armed
      [
        Faults.Fail_nth { op = None; n = 0; kind = Faults.Crash };
        Faults.Fail_nth { op = Some Faults.Write; n = -3; kind = Faults.Permanent };
      ]
  in
  for i = 1 to 50 do
    Faults.check plan Faults.Read ~page:i;
    Faults.check plan Faults.Write ~page:i
  done;
  checki "nothing injected" 0 (Faults.injected plan);
  (* Same for corruption counters. *)
  let plan =
    armed [ Faults.Corrupt_nth { op = None; n = 0; way = Faults.Bit_flip } ]
  in
  for i = 1 to 50 do
    checkb "no damage" true (Faults.damage plan Faults.Write ~page:i = None)
  done

let test_prob_zero_never_fires () =
  let plan =
    armed [ Faults.Fail_prob { op = None; p = 0.0; kind = Faults.Crash } ]
  in
  for i = 1 to 200 do
    Faults.check plan Faults.Read ~page:i
  done;
  checki "p = 0.0 never injects" 0 (Faults.injected plan)

let test_prob_one_always_fires () =
  (* p = 1.0 under Crash: fires on the very first operation, then the crash
     slot is spent and subsequent operations pass. *)
  let plan =
    armed [ Faults.Fail_prob { op = None; p = 1.0; kind = Faults.Crash } ]
  in
  (match Faults.check plan Faults.Write ~page:9 with
  | () -> Alcotest.fail "p = 1.0 crash did not fire"
  | exception Faults.Injected f ->
      checks "crash kind" "crash" (Faults.kind_name f.Faults.f_kind);
      checki "at the faulted page" 9 f.Faults.f_page);
  Faults.check plan Faults.Write ~page:9;
  checki "crash spent after firing" 1 (Faults.injected plan);
  (* p = 1.0 under Transient: every in-place retry fails too, so the fault
     escalates after exactly the policy's retry budget. *)
  let plan =
    armed [ Faults.Fail_prob { op = None; p = 1.0; kind = Faults.Transient } ]
  in
  (match Faults.check plan Faults.Read ~page:3 with
  | () -> Alcotest.fail "p = 1.0 transient did not escalate"
  | exception Faults.Injected f ->
      checks "transient kind" "transient" (Faults.kind_name f.Faults.f_kind);
      checki "retry budget exhausted" Faults.default_policy.Faults.max_retries
        f.Faults.f_retries);
  checki "retries tallied" Faults.default_policy.Faults.max_retries
    (Faults.retries plan);
  checkb "backoff delays charged" true (Faults.elapsed_ms plan > 0.)

let test_overlap_most_severe_wins () =
  (* A Transient and a Crash both firing on the same operation: the more
     severe Crash surfaces (no transient retry loop runs first). *)
  let plan =
    armed
      [
        Faults.Fail_nth { op = None; n = 1; kind = Faults.Transient };
        Faults.Fail_page { op = None; page = 7; kind = Faults.Crash };
      ]
  in
  (match Faults.check plan Faults.Write ~page:7 with
  | () -> Alcotest.fail "overlapping schedules did not fire"
  | exception Faults.Injected f ->
      checks "crash shadows transient" "crash" (Faults.kind_name f.Faults.f_kind);
      checki "no retries spent on the shadowed transient" 0 f.Faults.f_retries);
  (* Both slots are consumed: the nth no longer matches, the crash is
     spent. *)
  Faults.check plan Faults.Write ~page:7;
  checki "one injection total" 1 (Faults.injected plan)

let test_overlap_spends_shadowed_crash () =
  (* A Permanent shadowing a firing Crash still spends the crash, so the
     crash does not resurface once the permanent slot stops matching. *)
  let plan =
    armed
      [
        Faults.Fail_nth { op = None; n = 1; kind = Faults.Permanent };
        Faults.Fail_page { op = None; page = 3; kind = Faults.Crash };
      ]
  in
  (match Faults.check plan Faults.Write ~page:3 with
  | () -> Alcotest.fail "overlap did not fire"
  | exception Faults.Injected f ->
      checks "permanent wins" "permanent" (Faults.kind_name f.Faults.f_kind));
  (* Operation 2 on page 3: the nth slot no longer matches and the page
     slot's crash was spent while shadowed. *)
  Faults.check plan Faults.Write ~page:3;
  checki "shadowed crash never resurfaces" 1 (Faults.injected plan);
  (* Tied severity goes to the earliest slot, and the later slot that also
     fired is spent all the same. *)
  let plan =
    armed
      [
        Faults.Fail_nth { op = None; n = 1; kind = Faults.Crash };
        Faults.Fail_page { op = None; page = 3; kind = Faults.Crash };
      ]
  in
  (match Faults.check plan Faults.Write ~page:3 with
  | () -> Alcotest.fail "tied overlap did not fire"
  | exception Faults.Injected _ -> ());
  Faults.check plan Faults.Write ~page:3;
  checki "both tied crash slots spent" 1 (Faults.injected plan)

let test_torn_subsumes_flip () =
  (* Both corruption kinds firing on one write: the torn write wins and
     every firing corruption slot is spent. *)
  let plan =
    armed
      [
        Faults.Corrupt_nth { op = None; n = 1; way = Faults.Bit_flip };
        Faults.Corrupt_nth { op = None; n = 1; way = Faults.Torn_write };
      ]
  in
  (match Faults.damage plan Faults.Write ~page:5 with
  | Some (Faults.Torn_write, _) -> ()
  | Some (Faults.Bit_flip, _) -> Alcotest.fail "bit flip should be subsumed"
  | None -> Alcotest.fail "corruption did not fire");
  checkb "both slots spent" true (Faults.damage plan Faults.Write ~page:5 = None)

let test_corruption_determinism () =
  (* Identical plans polled by identical operation sequences damage the same
     operations with the same selectors. *)
  let mk () =
    armed [ Faults.Corrupt_prob { op = None; p = 0.4; way = Faults.Bit_flip } ]
  in
  let run plan =
    List.init 40 (fun i -> Faults.damage plan Faults.Write ~page:(i mod 7))
  in
  checkb "corrupt_prob replays" true (run (mk ()) = run (mk ()));
  (* random_damage: pure in the rng, distinct picks inside the target
     range, at most n of them. *)
  let draw () =
    Faults.random_damage ~n:3 ~rng:(Random.State.make [| 11; 17 |]) ~targets:9 ()
  in
  let hits = draw () in
  checkb "random_damage replays" true (hits = draw ());
  checkb "at most n hits" true (List.length hits <= 3);
  let picks = List.map (fun (_, pick, _) -> pick) hits in
  checkb "picks in range" true (List.for_all (fun p -> p >= 0 && p < 9) picks);
  checki "picks distinct" (List.length picks)
    (List.length (List.sort_uniq compare picks))

(* ------------------------------------------------------------------ *)
(* Buffer-pool checksum sealing and verification. *)

let fresh_pool ?(capacity = 8) () =
  let stats = Iostats.create () in
  (Buffer_pool.create ~capacity ~stats, stats)

(* A checksum-protected page whose payload the test owns: an int array the
   hooks hash and damage in place, standing in for a structure's page. *)
let protected_payload ?(len = 8) pool =
  let payload = Array.init len (fun i -> (i * 7) + 3) in
  let gid = Buffer_pool.fresh_page pool in
  Buffer_pool.touch pool gid ~dirty:true;
  Buffer_pool.protect pool gid
    {
      Buffer_pool.hk_checksum = Some (fun () -> Checksum.array payload);
      hk_corrupt =
        (fun _way sel ->
          let i = sel mod len in
          payload.(i) <- payload.(i) lxor 1);
    };
  (gid, payload)

let test_pool_detects_on_miss () =
  let pool, stats = fresh_pool () in
  let gid, _ = protected_payload pool in
  Buffer_pool.flush pool;
  (* At-rest damage leaves the stored seal stale; the next miss-read
     verification convicts the page. *)
  Buffer_pool.corrupt_page pool gid Faults.Bit_flip 2;
  Alcotest.check_raises "read-path verification convicts"
    (Buffer_pool.Corruption gid) (fun () ->
      Buffer_pool.touch pool gid ~dirty:false);
  checki "failure counted" 1 (Iostats.checksum_failures stats);
  checkb "page quarantined" true (Buffer_pool.quarantined pool gid);
  checkb "verify probe agrees without raising" false (Buffer_pool.verify pool gid)

let test_pool_reseal_on_flush () =
  let pool, stats = fresh_pool () in
  let gid, payload = protected_payload pool in
  Buffer_pool.flush pool;
  (* A legitimate write mutates the payload and dirties the page; the flush
     write-out reseals, so the changed payload verifies clean. *)
  Buffer_pool.touch pool gid ~dirty:true;
  payload.(0) <- 999;
  Buffer_pool.flush pool;
  Buffer_pool.touch pool gid ~dirty:false;
  checkb "resealed payload verifies" true (Buffer_pool.verify pool gid);
  checkb "verifications counted" true (Iostats.checksum_verifications stats >= 1);
  checki "no failures" 0 (Iostats.checksum_failures stats)

let test_pool_reseal_on_dirty_eviction () =
  let pool, stats = fresh_pool ~capacity:4 () in
  let gid, payload = protected_payload pool in
  payload.(1) <- 4242;
  (* Capacity pressure evicts the dirty protected page: the write-back must
     reseal it, or the next read would convict a legitimate write. *)
  for _ = 1 to 5 do
    Buffer_pool.touch pool (Buffer_pool.fresh_page pool) ~dirty:false
  done;
  checkb "dirty page evicted under pressure" false (Buffer_pool.resident pool gid);
  checkb "eviction wrote it back" true (Iostats.writes stats >= 1);
  Buffer_pool.touch pool gid ~dirty:false;
  checkb "eviction resealed the modified payload" true (Buffer_pool.verify pool gid);
  checki "no failures" 0 (Iostats.checksum_failures stats)

let test_pool_pin_exhaustion_keeps_seals () =
  let pool, stats = fresh_pool ~capacity:2 () in
  let gid, payload = protected_payload pool in
  Buffer_pool.pin pool gid;
  let b = Buffer_pool.fresh_page pool and c = Buffer_pool.fresh_page pool in
  Buffer_pool.pin pool b;
  (* Every frame pinned: the third pin must overflow-admit, not evict a
     pinned frame and not loop. *)
  Buffer_pool.pin pool c;
  checkb "overflow admission counted" true (Iostats.pool_overflows stats >= 1);
  checki "no evictions of pinned frames" 0 (Iostats.pool_evictions stats);
  checkb "all three resident" true
    (Buffer_pool.resident pool gid && Buffer_pool.resident pool b
    && Buffer_pool.resident pool c);
  (* The protected page rode through the overflow path dirty; orderly
     shutdown reseals it (pins notwithstanding) and it verifies clean. *)
  payload.(2) <- 77;
  Buffer_pool.touch pool gid ~dirty:true;
  Buffer_pool.unpin pool gid;
  Buffer_pool.unpin pool b;
  Buffer_pool.unpin pool c;
  Buffer_pool.flush pool;
  Buffer_pool.touch pool gid ~dirty:false;
  checkb "seal survived pin exhaustion" true (Buffer_pool.verify pool gid);
  checki "no failures" 0 (Iostats.checksum_failures stats)

(* ------------------------------------------------------------------ *)
(* WAL record CRCs: torn tails truncate, mid-log corruption is typed. *)

let small_wal () =
  let pool, _ = fresh_pool () in
  let wal = Wal.create pool ~page_bytes:128 in
  Wal.append wal Wal.Begin;
  for i = 1 to 3 do
    Wal.append wal
      (Wal.Ins
         {
           table = 0;
           rid = { Heap_file.rid_page = 0; rid_slot = i };
           tuple = [| i; i * 10 |];
         })
  done;
  wal

let test_wal_torn_tail_truncates () =
  let wal = small_wal () in
  checkb "starts clean" true (Wal.verify_scan wal = Wal.Clean);
  let torn = Wal.tear_tail wal ~keep:2 in
  checki "two records torn" 2 torn;
  (match Wal.verify_scan wal with
  | Wal.Torn { first_seq; torn = t } ->
      checki "tear starts after the kept prefix" 3 first_seq;
      checki "scan counts the torn suffix" 2 t
  | Wal.Clean -> Alcotest.fail "tear not detected"
  | Wal.Corrupt _ -> Alcotest.fail "tear misclassified as mid-log corruption");
  checki "truncation drops exactly the torn suffix" 2 (Wal.truncate_torn wal);
  checki "kept prefix survives" 2 (Wal.n_records wal);
  checkb "clean after truncation" true (Wal.verify_scan wal = Wal.Clean)

let test_wal_tear_into_durable_is_corrupt () =
  (* A tear reaching records at or before the last durable commit is not a
     recoverable tail — those records were acknowledged. *)
  let pool, _ = fresh_pool () in
  let wal = Wal.create pool ~page_bytes:128 in
  Wal.append wal Wal.Begin;
  Wal.append wal
    (Wal.Ins
       { table = 0; rid = { Heap_file.rid_page = 0; rid_slot = 1 }; tuple = [| 1 |] });
  Wal.append wal Wal.Commit;
  Wal.sync wal;
  Wal.append wal Wal.Begin;
  Wal.append wal
    (Wal.Ins
       { table = 0; rid = { Heap_file.rid_page = 0; rid_slot = 2 }; tuple = [| 2 |] });
  (match Wal.tear_tail wal ~keep:1 with
  | 4 -> ()
  | n -> Alcotest.failf "expected 4 torn records, got %d" n);
  match Wal.verify_scan wal with
  | Wal.Corrupt { seq } -> checki "first damaged durable record named" 2 seq
  | Wal.Clean | Wal.Torn _ ->
      Alcotest.fail "tear into durable history must classify as corrupt"

let test_wal_crc_corruption_is_typed () =
  let wal = small_wal () in
  checkb "target record exists" true (Wal.corrupt_record wal ~seq:3);
  (match Wal.verify_scan wal with
  | Wal.Corrupt { seq } -> checki "offending record named" 3 seq
  | Wal.Clean -> Alcotest.fail "CRC mismatch not detected"
  | Wal.Torn _ -> Alcotest.fail "CRC mismatch misclassified as torn tail");
  checkb "absent seq reports false" false (Wal.corrupt_record wal ~seq:99)

(* ------------------------------------------------------------------ *)
(* Warehouse-level recovery and scrub.  Same design as test_recovery: a
   supporting view plus an index on the primary view. *)

let schema = Vis_workload.Schemas.validation ()

let config () =
  let st = Bitset.of_list [ 1; 2 ] in
  let ix =
    {
      Element.ix_elem = Element.View (Schema.all_relations schema);
      ix_attr = { Element.a_rel = 2; a_name = "T0" };
    }
  in
  Config.make ~views:[ st ] ~indexes:[ ix ]

let world ?(seed = 33) ?(checksums = false) () =
  let rng = Random.State.make [| seed |] in
  let ds = Datagen.generate ~rng schema in
  Warehouse.build ~checksums schema (config ()) ds

let insert_some w n =
  let tbl = (Warehouse.durable_tables w).(0) in
  let arity = Reldesc.arity (Table.desc tbl) in
  Warehouse.begin_batch w;
  for i = 1 to n do
    ignore (Warehouse.logged_insert w tbl (Array.make arity (9_000 + i)))
  done

let test_recover_truncates_torn_tail () =
  let w = world () in
  let pre = Warehouse.signature w in
  insert_some w 4;
  checki "batch torn mid-flight" 4 (Wal.tear_tail w.Warehouse.w_wal ~keep:1);
  (match Wal.verify_scan w.Warehouse.w_wal with
  | Wal.Torn _ -> ()
  | _ -> Alcotest.fail "expected a torn tail");
  checki "recovery undid the batch" 4 (Warehouse.recover w);
  checks "pre-batch state restored bit-for-bit" pre (Warehouse.signature w);
  checkb "log checkpointed clean" true
    (Wal.verify_scan w.Warehouse.w_wal = Wal.Clean && Wal.n_records w.Warehouse.w_wal = 0)

let test_recover_stops_on_midlog_corruption () =
  let w = world () in
  insert_some w 4;
  let wal = w.Warehouse.w_wal in
  (* Lifetime sequence of the current log's third record (Begin, Ins, Ins…). *)
  let seq = Wal.total_records wal - Wal.n_records wal + 3 in
  checkb "record corrupted" true (Wal.corrupt_record wal ~seq);
  Alcotest.check_raises "recovery refuses with the offending record"
    (Wal.Corrupt_record seq) (fun () -> ignore (Warehouse.recover w))

let first_view_heap_gid w =
  let _, vt = List.hd w.Warehouse.w_views in
  Heap_file.page_gid (Table.heap vt) 0

let primary_index_gid w =
  let _, vt = List.nth w.Warehouse.w_views (List.length w.Warehouse.w_views - 1) in
  match Table.indexes vt with
  | (_, bt) :: _ -> List.hd (Btree.page_gids bt)
  | [] -> Alcotest.fail "primary view should carry the configured index"

let test_scrub_clean_world () =
  let w = world ~checksums:true () in
  let r = Warehouse.scrub w in
  checkb "pages probed" true (r.Warehouse.sc_scanned > 0);
  checki "nothing convicted" 0 r.Warehouse.sc_corrupt;
  checki "no view rebuilds" 0 r.Warehouse.sc_views_rebuilt;
  checki "no index rebuilds" 0 r.Warehouse.sc_indexes_rebuilt;
  checkb "nothing unrecoverable" true (r.Warehouse.sc_unrecoverable = [])

let test_scrub_rebuilds_view () =
  let w = world ~checksums:true () in
  let logical = Warehouse.logical_signature w in
  Buffer_pool.corrupt_page w.Warehouse.w_pool (first_view_heap_gid w)
    Faults.Bit_flip 5;
  let r = Warehouse.scrub w in
  checki "one page convicted" 1 r.Warehouse.sc_corrupt;
  checki "one view rebuilt" 1 r.Warehouse.sc_views_rebuilt;
  checkb "nothing unrecoverable" true (r.Warehouse.sc_unrecoverable = []);
  checks "logical contents restored" logical (Warehouse.logical_signature w);
  (match Warehouse.integrity_check w with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "integrity after repair: %s" msg);
  (* The canonical rebuild is reproducible: a pristine world performing the
     same rebuild reaches the identical physical state. *)
  let w_ref = world ~checksums:true () in
  let set, _ = List.hd w_ref.Warehouse.w_views in
  ignore (Warehouse.rebuild_view w_ref set);
  checks "rebuild is canonical bit-for-bit" (Warehouse.signature w_ref)
    (Warehouse.signature w)

let test_scrub_rebuilds_index () =
  let w = world ~checksums:true () in
  let logical = Warehouse.logical_signature w in
  Buffer_pool.corrupt_page w.Warehouse.w_pool (primary_index_gid w)
    Faults.Torn_write 9;
  let r = Warehouse.scrub w in
  checki "one page convicted" 1 r.Warehouse.sc_corrupt;
  checki "no view rebuild needed" 0 r.Warehouse.sc_views_rebuilt;
  checki "index rebuilt from its heap" 1 r.Warehouse.sc_indexes_rebuilt;
  checks "logical contents untouched" logical (Warehouse.logical_signature w);
  match Warehouse.integrity_check w with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "integrity after index rebuild: %s" msg

let test_scrub_base_damage_unrecoverable () =
  let w = world ~checksums:true () in
  let gid = Heap_file.page_gid (Table.heap w.Warehouse.w_bases.(0)) 0 in
  Buffer_pool.corrupt_page w.Warehouse.w_pool gid Faults.Bit_flip 1;
  Alcotest.check_raises "base damage raises by default"
    (Warehouse.Unrecoverable { u_gid = gid; u_table = 0 }) (fun () ->
      ignore (Warehouse.scrub w));
  (* The daemon path reports instead of raising. *)
  let w = world ~checksums:true () in
  let gid = Heap_file.page_gid (Table.heap w.Warehouse.w_bases.(0)) 0 in
  Buffer_pool.corrupt_page w.Warehouse.w_pool gid Faults.Bit_flip 1;
  let r = Warehouse.scrub ~fail_unrecoverable:false w in
  checkb "reported as unrecoverable" true
    (r.Warehouse.sc_unrecoverable = [ (gid, 0) ]);
  checkb "page stays quarantined" true (Buffer_pool.quarantined w.Warehouse.w_pool gid)

let test_validate_scrub_cycle () =
  let r = Validate.scrub_cycle ~seed:7 ~damage:2 schema (config ()) in
  checkb "something injected" true (r.Validate.sk_injected > 0);
  checki "every injection convicted" r.Validate.sk_injected
    r.Validate.sk_report.Warehouse.sc_corrupt;
  checkb "views exact after repair" true r.Validate.sk_views_ok;
  checkb "indexes sound after repair" true r.Validate.sk_integrity_ok

(* ------------------------------------------------------------------ *)
(* Binary argument validation: bad flag values exit 2 with a message, before
   any work runs.  The binaries sit next to the test executable's parent
   directory in the build tree (declared as deps in test/dune), so resolve
   them relative to [Sys.executable_name] rather than the cwd. *)

let bin name =
  Filename.concat
    (Filename.concat (Filename.dirname (Filename.dirname Sys.executable_name)) "bin")
    name

let exits_2 name cmd =
  checki name 2 (Sys.command (cmd ^ " >/dev/null 2>&1"))

let test_cli_validation () =
  let advisor = bin "visadvisor.exe" in
  let serve = bin "visserve.exe" in
  let fuzz = bin "visfuzz.exe" in
  exits_2 "visadvisor --jobs 0" (advisor ^ " optimize --jobs 0");
  exits_2 "visadvisor --minsup out of range" (advisor ^ " optimize --minsup 1.5");
  exits_2 "visadvisor validate --damage 0" (advisor ^ " validate --scrub --damage 0");
  exits_2 "visserve --ticks 0" (serve ^ " --ticks 0");
  exits_2 "visserve --tenants 0" (serve ^ " --tenants 0");
  exits_2 "visserve --scrub-every negative" (serve ^ " --scrub-every=-1");
  exits_2 "visfuzz --trials 0" (fuzz ^ " --trials 0");
  exits_2 "visfuzz --jobs 0" (fuzz ^ " --jobs 0")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "vis_corruption"
    [
      ( "faults-edges",
        [
          Alcotest.test_case "nth non-positive" `Quick test_nth_nonpositive;
          Alcotest.test_case "prob 0.0" `Quick test_prob_zero_never_fires;
          Alcotest.test_case "prob 1.0" `Quick test_prob_one_always_fires;
          Alcotest.test_case "overlap severity" `Quick test_overlap_most_severe_wins;
          Alcotest.test_case "overlap spends shadowed crash" `Quick
            test_overlap_spends_shadowed_crash;
          Alcotest.test_case "torn subsumes flip" `Quick test_torn_subsumes_flip;
          Alcotest.test_case "corruption determinism" `Quick
            test_corruption_determinism;
        ] );
      ( "pool-checksums",
        [
          Alcotest.test_case "detect on miss" `Quick test_pool_detects_on_miss;
          Alcotest.test_case "reseal on flush" `Quick test_pool_reseal_on_flush;
          Alcotest.test_case "reseal on dirty eviction" `Quick
            test_pool_reseal_on_dirty_eviction;
          Alcotest.test_case "pin exhaustion keeps seals" `Quick
            test_pool_pin_exhaustion_keeps_seals;
        ] );
      ( "wal-crc",
        [
          Alcotest.test_case "torn tail truncates" `Quick
            test_wal_torn_tail_truncates;
          Alcotest.test_case "tear into durable is corrupt" `Quick
            test_wal_tear_into_durable_is_corrupt;
          Alcotest.test_case "mid-log corruption typed" `Quick
            test_wal_crc_corruption_is_typed;
          Alcotest.test_case "recover truncates torn tail" `Quick
            test_recover_truncates_torn_tail;
          Alcotest.test_case "recover stops on mid-log corruption" `Quick
            test_recover_stops_on_midlog_corruption;
        ] );
      ( "scrub",
        [
          Alcotest.test_case "clean world" `Quick test_scrub_clean_world;
          Alcotest.test_case "rebuilds view" `Quick test_scrub_rebuilds_view;
          Alcotest.test_case "rebuilds index" `Quick test_scrub_rebuilds_index;
          Alcotest.test_case "base damage unrecoverable" `Quick
            test_scrub_base_damage_unrecoverable;
          Alcotest.test_case "validate scrub cycle" `Quick
            test_validate_scrub_cycle;
        ] );
      ( "cli",
        [ Alcotest.test_case "argument validation" `Quick test_cli_validation ] );
    ]
