(* Tests for the Section-5 rules-of-thumb advisor: each rule fires on a
   schema engineered to trigger it and stays silent when its precondition
   is removed, the cited rule strings match the decisions, and the advised
   configuration is valid and never beats the proven optimum. *)

module Schema = Vis_catalog.Schema
module Config = Vis_costmodel.Config
module Element = Vis_costmodel.Element
module Bitset = Vis_util.Bitset
module Problem = Vis_core.Problem
module Astar = Vis_core.Astar
module Rules = Vis_core.Rules

let checkb = Alcotest.(check bool)

let checkf msg = Alcotest.(check (float 1e-9)) msg

let advise schema =
  let p = Problem.make schema in
  (p, Rules.advise p)

let contains_rule sub d =
  let affix = sub and text = d.Rules.d_rule in
  let n = String.length affix and m = String.length text in
  let rec at i = i + n <= m && (String.sub text i n = affix || at (i + 1)) in
  at 0

let decisions_for predicate advice =
  List.filter predicate advice.Rules.a_decisions

let view_decisions = decisions_for (fun d ->
    match d.Rules.d_feature with Problem.F_view _ -> true | _ -> false)

let index_decisions = decisions_for (fun d ->
    match d.Rules.d_feature with Problem.F_index _ -> true | _ -> false)

let index_named p name advice =
  List.find_opt
    (fun d -> Problem.feature_name p d.Rules.d_feature = name)
    (index_decisions advice)

(* ------------------------------------------------------------------ *)
(* Rules 5.1 / 5.2: supporting views. *)

let test_rule_51_selective_views () =
  (* Schema 1's σT keeps 10% of T: P(V) ≪ P(E(V)) for both σT and SσT,
     so Rule 5.1 materializes them. *)
  let _, a = advise (Vis_workload.Schemas.schema1 ()) in
  let fired =
    List.filter (fun d -> d.Rules.d_chosen && contains_rule "5.1" d)
      (view_decisions a)
  in
  Alcotest.(check int) "5.1 materializes both selective views" 2
    (List.length fired);
  (* The unselective RS view offers no page reduction: silent. *)
  List.iter
    (fun d ->
      if not d.Rules.d_chosen then
        checkb "rejected views do not cite 5.1" false (contains_rule "5.1" d))
    (view_decisions a)

let test_rule_52_no_deletions () =
  (* Without deletions or updates a view costs nothing to maintain
     incrementally: every candidate view cites 5.2. *)
  let _, a =
    advise (Vis_workload.Schemas.schema1 ~del_frac:0. ~upd_frac:0. ())
  in
  List.iter
    (fun d ->
      checkb "every view cites 5.2 when nothing is deleted" true
        (contains_rule "5.2" d);
      checkf "a 5.2 view costs nothing" 0. d.Rules.d_cost)
    (view_decisions a);
  (* With deletions at their defaults, 5.2 never fires. *)
  let _, a = advise (Vis_workload.Schemas.schema1 ()) in
  List.iter
    (fun d -> checkb "5.2 is silent under deletions" false (contains_rule "5.2" d))
    (view_decisions a)

(* ------------------------------------------------------------------ *)
(* Rule 5.5: indexes on keys. *)

let test_rule_55_key_indexes () =
  let p, a = advise (Vis_workload.Schemas.schema1 ()) in
  (* The primary view's key indexes locate victim tuples for deletions. *)
  List.iter
    (fun name ->
      match index_named p name a with
      | None -> Alcotest.failf "no decision for %s" name
      | Some d ->
          checkb (name ^ " cites 5.5") true (contains_rule "5.5" d);
          checkb (name ^ " is chosen") true d.Rules.d_chosen)
    [ "ix(V, R.R0)"; "ix(V, S.S0)"; "ix(V, T.T0)" ];
  (* Without deletions or updates there is nothing to locate: key indexes
     are not even candidates, and no decision cites 5.5. *)
  let _, a =
    advise (Vis_workload.Schemas.schema1 ~del_frac:0. ~upd_frac:0. ())
  in
  List.iter
    (fun d ->
      checkb "5.5 is silent without deletions" false (contains_rule "5.5" d);
      checkb "no index pays for itself without deletions" false
        d.Rules.d_chosen)
    (index_decisions a)

(* ------------------------------------------------------------------ *)
(* Rule 5.6: indexes on join attributes — sometimes. *)

let test_rule_56_join_indexes () =
  (* A tiny insertion batch probes the join index a few times while a scan
     reads every page: the join-attribute indexes on R and S pay off. *)
  let p, a = advise (Vis_workload.Schemas.schema1 ~ins_frac:0.0005 ()) in
  (match index_named p "ix(R, R.R1)" a with
  | None -> Alcotest.fail "no decision for ix(R, R.R1)"
  | Some d ->
      checkb "join index on R.R1 cites 5.6" true (contains_rule "5.6" d);
      checkb "join index on R.R1 is chosen" true d.Rules.d_chosen);
  (* At the default insertion rate the probes outnumber the pages —
     the "sometimes" of Rule 5.6 — and no decision cites it. *)
  let _, a = advise (Vis_workload.Schemas.schema1 ()) in
  List.iter
    (fun d ->
      checkb "5.6 is silent under large insertion batches" false
        (contains_rule "5.6" d))
    (index_decisions a)

(* ------------------------------------------------------------------ *)
(* Rule 5.7: indexes on local selection attributes. *)

let test_rule_57_selection_indexes () =
  (* A very selective predicate makes the matching tuples fewer than the
     relation's pages, so an index on T.T1 would win ... *)
  let s = Vis_workload.Schemas.schema1 ~sel_t:0.001 () in
  let p = Problem.make s in
  let ix =
    {
      Element.ix_elem = Element.Base 2;
      ix_attr = { Element.a_rel = 2; a_name = "T1" };
    }
  in
  checkb "a selective predicate gives the selection index a benefit" true
    (Rules.benefit_index_sel p ~chosen:[] ix > 0.);
  (* ... unless σT itself is materialized (condition 2 of Rule 5.7) ... *)
  checkf "a materialized σT silences the selection index" 0.
    (Rules.benefit_index_sel p ~chosen:[ Bitset.singleton 2 ] ix);
  (* ... or the predicate matches more tuples than the relation has pages
     (the default 10%). *)
  let p_coarse = Problem.make (Vis_workload.Schemas.schema1 ()) in
  checkf "a coarse predicate has no selection-index benefit" 0.
    (Rules.benefit_index_sel p_coarse ~chosen:[] ix);
  (* The advisor materializes σT first, so its decisions never cite 5.7. *)
  let _, a = advise s in
  List.iter
    (fun d ->
      checkb "5.7 stays silent once σT is materialized" false
        (contains_rule "5.7" d))
    (index_decisions a)

(* ------------------------------------------------------------------ *)
(* Rule 5.8: indexes that fit in memory. *)

let test_rule_58_memory () =
  (* With the default 100 memory pages, T's key index fits: chosen, cites
     5.8. *)
  let p, a = advise (Vis_workload.Schemas.schema1 ()) in
  (match index_named p "ix(T, T.T0)" a with
  | None -> Alcotest.fail "no decision for ix(T, T.T0)"
  | Some d ->
      checkb "a fitting index cites 5.8" true (contains_rule "5.8" d);
      checkb "a fitting index is chosen" true d.Rules.d_chosen);
  (* With 2 memory pages nothing fits: the same index is priced at its
     full per-batch touch count and rejected, and 5.8 disappears. *)
  let p2, a2 = advise (Vis_workload.Schemas.schema1 ~mem_pages:2 ()) in
  (match index_named p2 "ix(T, T.T0)" a2 with
  | None -> Alcotest.fail "no decision for ix(T, T.T0) at mem=2"
  | Some d ->
      checkb "the same index without memory is rejected" false
        d.Rules.d_chosen);
  List.iter
    (fun d ->
      checkb "5.8 is silent when nothing fits in memory" false
        (contains_rule "5.8" d))
    (index_decisions a2);
  (* Costing is memory-sensitive: the fitting index is cheaper. *)
  match (index_named p "ix(T, T.T0)" a, index_named p2 "ix(T, T.T0)" a2) with
  | Some fits, Some spills ->
      checkb "a fitting index costs less than a spilling one" true
        (fits.Rules.d_cost < spills.Rules.d_cost)
  | _ -> Alcotest.fail "missing ix(T, T.T0) decisions"

(* ------------------------------------------------------------------ *)
(* Advisor coherence. *)

let test_advice_coherent () =
  let p, a = advise (Vis_workload.Schemas.schema1 ()) in
  checkb "the advised configuration is inside the candidate space" true
    (Problem.valid_config p a.Rules.a_config);
  (* Every decision cites a rule or "-", never an empty string. *)
  List.iter
    (fun d -> checkb "decisions always cite something" true (d.Rules.d_rule <> ""))
    a.Rules.a_decisions;
  (* The rules of thumb are approximations: they can never beat the
     optimum. *)
  let best = (Astar.search p).Astar.best_cost in
  checkb "advice never beats the proven optimum" true
    (Problem.total p a.Rules.a_config >= best -. 1e-6 *. best)

let () =
  Alcotest.run "rules"
    [
      ( "views",
        [
          Alcotest.test_case "5.1 selective views" `Quick
            test_rule_51_selective_views;
          Alcotest.test_case "5.2 no deletions" `Quick test_rule_52_no_deletions;
        ] );
      ( "indexes",
        [
          Alcotest.test_case "5.5 keys" `Quick test_rule_55_key_indexes;
          Alcotest.test_case "5.6 join attributes" `Quick
            test_rule_56_join_indexes;
          Alcotest.test_case "5.7 selection attributes" `Quick
            test_rule_57_selection_indexes;
          Alcotest.test_case "5.8 memory" `Quick test_rule_58_memory;
        ] );
      ( "advice",
        [ Alcotest.test_case "coherence" `Quick test_advice_coherent ] );
    ]
