(* Pins the shapes of the generated star/snowflake workloads: relation
   counts, candidate-feature counts under the production candidate caps,
   and whether the packed 62-bit encoding survives.  These numbers are
   load-bearing — the parallel-scaling study, the CI smoke and the sharded
   search tests all assume them — so a generator change that shifts them
   must show up here first.  Also checks that the generated schemas are
   executable: Datagen can realize their statistics and draw delta
   batches. *)

module Schema = Vis_catalog.Schema
module Problem = Vis_core.Problem
module Schemas = Vis_workload.Schemas
module Datagen = Vis_workload.Datagen

let checkb = Alcotest.(check bool)

let checki = Alcotest.(check int)

let shape name schema ~rels ~features ~packed =
  checki (name ^ ": relations") rels (Schema.n_relations schema);
  let p = Problem.make ~connected_only:true ~max_view_rels:2 schema in
  checki (name ^ ": features under cap 2") features
    (List.length p.Problem.features);
  checkb (name ^ ": packed encoding") packed (p.Problem.encoding <> None)

let test_star_shapes () =
  (* star ~n_dims:k is a fact table plus k dimensions *)
  shape "star-6" (Schemas.star ~n_dims:5 ()) ~rels:6 ~features:45 ~packed:true;
  shape "star-8" (Schemas.star ~n_dims:7 ()) ~rels:8 ~features:78 ~packed:false;
  shape "star-12"
    (Schemas.star ~n_dims:11 ())
    ~rels:12 ~features:165 ~packed:false

let test_snowflake_shapes () =
  (* snowflake ~arms ~depth is a fact table plus arms·depth dimensions *)
  shape "snowflake-7"
    (Schemas.snowflake ~arms:3 ~depth:2 ())
    ~rels:7 ~features:44 ~packed:true;
  (* 62 features — exactly at the packed-encoding capacity *)
  shape "snowflake-9"
    (Schemas.snowflake ~arms:4 ~depth:2 ())
    ~rels:9 ~features:62 ~packed:true

let test_star_sized_like_issue () =
  (* The CLI accepts star3..star25 and snowflake5..snowflake25; spot-check
     the range endpoints the benchmark and CI use. *)
  List.iter
    (fun n ->
      checki
        (Printf.sprintf "star n_dims=%d relation count" n)
        (n + 1)
        (Schema.n_relations (Schemas.star ~n_dims:n ())))
    [ 2; 7; 11 ];
  List.iter
    (fun (arms, depth) ->
      checki
        (Printf.sprintf "snowflake %dx%d relation count" arms depth)
        (1 + (arms * depth))
        (Schema.n_relations (Schemas.snowflake ~arms ~depth ())))
    [ (2, 2); (3, 2); (4, 3) ]

let test_star_executable () =
  (* Foreign keys are separate attributes from the keys, so the generated
     schemas are realizable and refreshes can be drawn and executed. *)
  let schema = Schemas.star ~base_card:200. ~n_dims:4 () in
  let rng = Random.State.make [| 7 |] in
  let ds = Datagen.generate ~rng schema in
  checki "one tuple list per relation" (Schema.n_relations schema)
    (Array.length ds.Datagen.ds_tuples);
  Array.iteri
    (fun r tuples ->
      let card =
        int_of_float (Schema.relation schema r).Schema.card
      in
      checki (Printf.sprintf "relation %d realized cardinality" r) card
        (List.length tuples))
    ds.Datagen.ds_tuples;
  let batch = Datagen.deltas ~rng schema ds in
  let total_ins =
    Array.fold_left (fun acc l -> acc + List.length l) 0 batch.Datagen.b_ins
  in
  checkb "delta batch non-empty" true (total_ins > 0)

let test_snowflake_executable () =
  let schema = Schemas.snowflake ~base_card:200. ~arms:2 ~depth:2 () in
  let rng = Random.State.make [| 11 |] in
  let ds = Datagen.generate ~rng schema in
  let batch = Datagen.deltas ~rng schema ds in
  checki "one delete list per relation" (Schema.n_relations schema)
    (Array.length batch.Datagen.b_del)

let () =
  Alcotest.run "vis_datagen"
    [
      ( "generated workload shapes",
        [
          Alcotest.test_case "star shapes pinned" `Quick test_star_shapes;
          Alcotest.test_case "snowflake shapes pinned" `Quick
            test_snowflake_shapes;
          Alcotest.test_case "relation counts across sizes" `Quick
            test_star_sized_like_issue;
        ] );
      ( "executability",
        [
          Alcotest.test_case "star schema realizable" `Quick
            test_star_executable;
          Alcotest.test_case "snowflake schema realizable" `Quick
            test_snowflake_executable;
        ] );
    ]
