(* Tests for the multicore layer: the Vis_util.Parallel worker pool
   (result determinism, exception propagation, degenerate inputs), the
   determinism guarantee of the parallel searches (jobs=1 and jobs=4 must
   return bit-identical optima, costs and counters), and the exactness of
   the lock-striped cost-cache counters under concurrent use. *)

module Bitset = Vis_util.Bitset
module Parallel = Vis_util.Parallel
module Schema = Vis_catalog.Schema
module Derived = Vis_catalog.Derived
module Config = Vis_costmodel.Config
module Cost = Vis_costmodel.Cost
module Problem = Vis_core.Problem
module Astar = Vis_core.Astar
module Exhaustive = Vis_core.Exhaustive
module Greedy = Vis_core.Greedy
module Search_stats = Vis_core.Search_stats
module Schemas = Vis_workload.Schemas

let checkb = Alcotest.(check bool)

let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* The pool itself. *)

let test_map_matches_sequential () =
  let input = Array.init 1_000 (fun i -> i) in
  let f x = (x * x) + 1 in
  let expected = Array.map f input in
  List.iter
    (fun jobs ->
      Parallel.with_pool ~jobs (fun pool ->
          let got = Parallel.map_array pool f input in
          checkb
            (Printf.sprintf "map_array at jobs=%d" jobs)
            true
            (got = expected);
          let got_list = Parallel.map_list pool f (Array.to_list input) in
          checkb
            (Printf.sprintf "map_list at jobs=%d" jobs)
            true
            (got_list = Array.to_list expected)))
    [ 1; 2; 4 ]

let test_degenerate_inputs () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      checkb "empty array" true (Parallel.map_array pool succ [||] = [||]);
      checkb "empty list" true (Parallel.map_list pool succ [] = []);
      checkb "one element" true (Parallel.map_array pool succ [| 41 |] = [| 42 |]);
      Parallel.run pool ~chunks:0 (fun _ -> Alcotest.fail "chunk run");
      (* jobs below 1 clamp to a working sequential pool *)
      Parallel.with_pool ~jobs:0 (fun seq ->
          checki "clamped width" 1 (Parallel.jobs seq);
          checkb "clamped map" true (Parallel.map_array seq succ [| 1 |] = [| 2 |])))

let test_map_init_context_per_chunk () =
  (* Each chunk gets its own context: mutating it is worker-private, and the
     mapped results are still the pure function of the element. *)
  Parallel.with_pool ~jobs:4 (fun pool ->
      let input = Array.init 256 (fun i -> i) in
      let got =
        Parallel.map_init pool
          ~init:(fun () -> ref 0)
          (fun acc x ->
            acc := !acc + x;
            x * 2)
          input
      in
      checkb "results pure" true (got = Array.map (fun x -> x * 2) input))

let test_exception_deterministic () =
  let input = Array.init 64 (fun i -> i) in
  let f x = if x >= 5 then failwith (string_of_int x) else x in
  Parallel.with_pool ~jobs:4 (fun pool ->
      (* chunk:1 makes chunk index = element index: the propagated failure
         must be the first one a sequential run would hit, every time. *)
      for _ = 1 to 5 do
        match Parallel.map_array ~chunk:1 pool f input with
        | _ -> Alcotest.fail "expected failure"
        | exception Failure msg -> Alcotest.(check string) "first loser" "5" msg
      done;
      (* the pool survives the failed batches *)
      checkb "pool reusable" true
        (Parallel.map_array pool succ [| 1; 2; 3 |] = [| 2; 3; 4 |]))

let test_work_accounting () =
  Parallel.with_pool ~jobs:4 (fun pool ->
      let before = Parallel.work_counts pool in
      checki "slots" 4 (Array.length before);
      let n = 512 in
      ignore (Parallel.map_array ~chunk:4 pool succ (Array.init n Fun.id));
      let work =
        Parallel.diff_counts ~before ~after:(Parallel.work_counts pool)
      in
      checki "all chunks accounted" (n / 4) (Array.fold_left ( + ) 0 work))

(* ------------------------------------------------------------------ *)
(* Search determinism: jobs=4 must equal jobs=1 bit for bit. *)

let same_astar name p =
  let a1 = Astar.search ~jobs:1 p in
  let a4 = Astar.search ~jobs:4 p in
  checkb (name ^ ": same config") true (Config.equal a1.Astar.best a4.Astar.best);
  checkb (name ^ ": same cost") true (a1.Astar.best_cost = a4.Astar.best_cost);
  checki (name ^ ": same expanded") a1.Astar.stats.Astar.expanded
    a4.Astar.stats.Astar.expanded;
  checki (name ^ ": same generated") a1.Astar.stats.Astar.generated
    a4.Astar.stats.Astar.generated;
  let s1 = a1.Astar.search_stats and s4 = a4.Astar.search_stats in
  checki (name ^ ": same evaluated") (Search_stats.evaluated s1)
    (Search_stats.evaluated s4);
  checkb (name ^ ": same pruning counts") true
    (Search_stats.pruning_counts s1 = Search_stats.pruning_counts s4);
  a4

let test_astar_deterministic () =
  ignore (same_astar "two relations" (Problem.make (Schemas.two_relation ())));
  let a4 = same_astar "schema1" (Problem.make (Schemas.schema1 ())) in
  (* the jobs=4 run records its pool shape on the scoreboard *)
  let s4 = a4.Astar.search_stats in
  checki "parallel jobs recorded" 4 (Search_stats.parallel_jobs s4);
  checki "one work slot per domain" 4 (Array.length (Search_stats.domain_work s4));
  checkb "parallel work happened" true
    (Array.fold_left ( + ) 0 (Search_stats.domain_work s4) > 0);
  (match Search_stats.work_balance s4 with
  | Some b -> checkb "balance in (0,1]" true (b > 0. && b <= 1.)
  | None -> Alcotest.fail "work balance missing")

let test_exhaustive_deterministic () =
  let p () = Problem.make (Schemas.two_relation ()) in
  let e1 = Exhaustive.search ~jobs:1 (p ()) in
  let e4 = Exhaustive.search ~jobs:4 (p ()) in
  checkb "same config" true (Config.equal e1.Exhaustive.best e4.Exhaustive.best);
  checkb "same cost" true (e1.Exhaustive.best_cost = e4.Exhaustive.best_cost);
  checki "same states" e1.Exhaustive.states e4.Exhaustive.states;
  checki "same view states" e1.Exhaustive.view_states e4.Exhaustive.view_states;
  checki "expanded = states" e1.Exhaustive.states
    (Search_stats.expanded e4.Exhaustive.search_stats);
  checki "evaluated = states" e1.Exhaustive.states
    (Search_stats.evaluated e4.Exhaustive.search_stats)

let test_greedy_deterministic () =
  let p () = Problem.make (Schemas.schema1 ()) in
  let g1 = Greedy.search ~jobs:1 (p ()) in
  let g4 = Greedy.search ~jobs:4 (p ()) in
  checkb "same config" true (Config.equal g1.Greedy.best g4.Greedy.best);
  checkb "same cost" true (g1.Greedy.best_cost = g4.Greedy.best_cost);
  checki "same evaluations" g1.Greedy.evaluations g4.Greedy.evaluations;
  checki "same steps" (List.length g1.Greedy.steps) (List.length g4.Greedy.steps);
  List.iter2
    (fun (a : Greedy.step) (b : Greedy.step) ->
      checkb "same step feature" true
        (Problem.equal_feature a.Greedy.s_feature b.Greedy.s_feature);
      checkb "same step cost" true
        (a.Greedy.s_cost_after = b.Greedy.s_cost_after))
    g1.Greedy.steps g4.Greedy.steps

let prop_parallel_deterministic_random =
  QCheck2.Test.make ~name:"parallel: jobs=4 equals jobs=1 on random schemas"
    ~count:10
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let schema = Schemas.random ~rng () in
      let p = Problem.make schema in
      if Exhaustive.count_states p > 25_000. then true
      else begin
        let a1 = Astar.search ~jobs:1 p in
        let a4 = Astar.search ~jobs:4 p in
        let e1 = Exhaustive.search ~jobs:1 p in
        let e4 = Exhaustive.search ~jobs:4 p in
        Config.equal a1.Astar.best a4.Astar.best
        && a1.Astar.best_cost = a4.Astar.best_cost
        && a1.Astar.stats.Astar.expanded = a4.Astar.stats.Astar.expanded
        && Config.equal e1.Exhaustive.best e4.Exhaustive.best
        && e1.Exhaustive.best_cost = e4.Exhaustive.best_cost
        && e1.Exhaustive.states = e4.Exhaustive.states
      end)

let test_budget_still_raises () =
  let p = Problem.make (Schemas.schema1 ()) in
  match Astar.search ~jobs:4 ~max_expanded:3 p with
  | exception Astar.Budget_exceeded st -> checki "stopped at 4" 4 st.Astar.expanded
  | _ -> Alcotest.fail "expected Budget_exceeded"

(* ------------------------------------------------------------------ *)
(* The coarse-grained sharded search. *)

(* Bit-identity of the sharded budgeted search across pool widths, on a
   generated 8-relation star (large enough to cross the sharding
   threshold on its own).  Full optimality is infeasible at this size, so
   the identity is checked on the budgeted/beam path — exactly the mode
   large schemas run in production. *)
let same_budgeted name ~mk ~budget ~beam =
  let run jobs =
    Astar.search_budgeted ~max_expanded:budget ~beam ~jobs (mk ())
  in
  let r1, c1 = run 1 in
  let r4, c4 = run 4 in
  checkb (name ^ ": same config") true (Config.equal r1.Astar.best r4.Astar.best);
  checkb (name ^ ": same cost") true (r1.Astar.best_cost = r4.Astar.best_cost);
  checki (name ^ ": same expanded") r1.Astar.stats.Astar.expanded
    r4.Astar.stats.Astar.expanded;
  checki (name ^ ": same generated") r1.Astar.stats.Astar.generated
    r4.Astar.stats.Astar.generated;
  let s1 = r1.Astar.search_stats and s4 = r4.Astar.search_stats in
  checki (name ^ ": same evaluated") (Search_stats.evaluated s1)
    (Search_stats.evaluated s4);
  checkb (name ^ ": same pruning counts") true
    (Search_stats.pruning_counts s1 = Search_stats.pruning_counts s4);
  checkb (name ^ ": same rounds") true
    (Search_stats.rounds s1 = Search_stats.rounds s4);
  checkb (name ^ ": same certificate") true (c1 = c4);
  (r4, c4)

let test_sharded_star_identity () =
  let mk () =
    Problem.make ~connected_only:true ~max_view_rels:2
      (Schemas.star ~n_dims:7 ())
  in
  let r4, c4 =
    same_budgeted "star-8" ~mk ~budget:1_200 ~beam:48
  in
  let s4 = r4.Astar.search_stats in
  checkb "star-8: exchange rounds recorded" true
    (Search_stats.round_count s4 > 0);
  (match Search_stats.modeled_speedup s4 ~jobs:4 with
  | Some sp -> checkb "star-8: modeled speedup sane" true (sp >= 1. && sp <= 4.)
  | None -> Alcotest.fail "star-8: modeled speedup missing");
  match c4 with
  | Astar.Optimal -> ()
  | Astar.Bounded { lower_bound; gap } ->
      checkb "star-8: bound below incumbent" true
        (lower_bound <= r4.Astar.best_cost);
      checkb "star-8: gap sane" true (gap >= 0. && gap <= 1.)

(* Same identity on a snowflake that keeps the packed 62-bit encoding, so
   the packed sharded successor path is covered too. *)
let test_sharded_snowflake_identity () =
  let mk () =
    let p =
      Problem.make ~connected_only:true ~max_view_rels:2
        (Schemas.snowflake ~arms:3 ~depth:2 ())
    in
    checkb "snowflake stays packed" true (p.Problem.encoding <> None);
    p
  in
  ignore (same_budgeted "snowflake-7" ~mk ~budget:1_200 ~beam:48)

(* Forcing the sharded mode onto a small schema must find the same optimum
   as the single-queue loop, at every pool width, with an Optimal
   certificate. *)
let test_forced_shard_same_optimum () =
  let mk () = Problem.make (Schemas.schema1 ()) in
  let seq = Astar.search ~jobs:1 ~shard:false (mk ()) in
  let sh1 = Astar.search ~jobs:1 ~shard:true (mk ()) in
  let sh4 = Astar.search ~jobs:4 ~shard:true (mk ()) in
  checkb "sharded finds the optimum" true
    (sh1.Astar.best_cost = seq.Astar.best_cost);
  checkb "sharded config optimal" true
    (Config.equal sh1.Astar.best seq.Astar.best);
  checkb "sharded jobs=1 = jobs=4 config" true
    (Config.equal sh1.Astar.best sh4.Astar.best);
  checki "sharded jobs=1 = jobs=4 expanded" sh1.Astar.stats.Astar.expanded
    sh4.Astar.stats.Astar.expanded;
  checkb "sharded jobs=1 = jobs=4 pruning" true
    (Search_stats.pruning_counts sh1.Astar.search_stats
    = Search_stats.pruning_counts sh4.Astar.search_stats)

let test_certificates () =
  let p () = Problem.make (Schemas.schema1 ()) in
  let opt = Astar.search ~jobs:1 (p ()) in
  (* An unconstrained budgeted run proves optimality. *)
  let r, cert = Astar.search_budgeted ~jobs:1 (p ()) in
  checkb "unconstrained run optimal" true (cert = Astar.Optimal);
  checkb "unconstrained cost matches search" true
    (r.Astar.best_cost = opt.Astar.best_cost);
  (* A tiny expansion budget keeps the answer sound and the bound honest. *)
  let r, cert = Astar.search_budgeted ~max_expanded:2 ~jobs:1 (p ()) in
  checkb "budgeted answer sound" true (r.Astar.best_cost >= opt.Astar.best_cost);
  (match cert with
  | Astar.Optimal -> ()
  | Astar.Bounded { lower_bound; gap } ->
      checkb "lower bound below optimum" true
        (lower_bound <= opt.Astar.best_cost +. 1e-9);
      checkb "gap consistent" true
        (Float.abs
           (gap
           -. ((r.Astar.best_cost -. lower_bound)
              /. Float.max 1e-9 (Float.abs r.Astar.best_cost)))
        < 1e-9));
  (* A narrow beam still returns a configuration no worse than greedy and a
     certificate whose bound never exceeds the incumbent. *)
  let r, cert = Astar.search_budgeted ~beam:2 ~jobs:1 (p ()) in
  checkb "beam answer sound" true (r.Astar.best_cost >= opt.Astar.best_cost);
  (match cert with
  | Astar.Optimal ->
      checkb "optimal beam run matches optimum" true
        (r.Astar.best_cost = opt.Astar.best_cost)
  | Astar.Bounded { lower_bound; _ } ->
      checkb "beam bound below incumbent" true
        (lower_bound <= r.Astar.best_cost));
  (* beam < 1 is a caller error *)
  match Astar.search_budgeted ~beam:0 ~jobs:1 (p ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for beam:0"

(* ------------------------------------------------------------------ *)
(* Cache counters under concurrency: no lost updates. *)

let test_cache_counters_exact_concurrent () =
  let schema = Schemas.schema1 () in
  let derived = Derived.create schema in
  let p = Problem.make schema in
  let config = (Greedy.search ~jobs:1 p).Greedy.best in
  let cache = Cost.new_cache () in
  let fresh = Cost.total_of derived config in
  (* Warm the cache, then measure the lookup count of one fully-warm run:
     every lookup hits, so the count is the same for every later run. *)
  ignore (Cost.total_of ~cache derived config);
  Cost.reset_cache_stats cache;
  let warm = Cost.total_of ~cache derived config in
  checkb "warm run equals fresh compute" true (warm = fresh);
  let s = Cost.cache_stats cache in
  checki "warm run misses nothing" 0 s.Cost.cs_misses;
  let lookups_per_run = s.Cost.cs_hits in
  checkb "run performs lookups" true (lookups_per_run > 0);
  Cost.reset_cache_stats cache;
  let runs = 200 in
  Parallel.with_pool ~jobs:4 (fun pool ->
      let totals =
        Parallel.map_array ~chunk:1 pool
          (fun () -> Cost.total_of ~cache derived config)
          (Array.make runs ())
      in
      Array.iter
        (fun t -> checkb "concurrent total equals fresh" true (t = fresh))
        totals);
  let s = Cost.cache_stats cache in
  (* The exactness claim: counter bumps under the stripe locks are never
     lost, so 200 warm runs account for exactly 200 x lookups_per_run. *)
  checki "hits exact under contention" (runs * lookups_per_run) s.Cost.cs_hits;
  checki "no misses under contention" 0 s.Cost.cs_misses

let test_cache_cold_concurrent () =
  let schema = Schemas.schema1 () in
  let derived = Derived.create schema in
  let fresh = Cost.total_of derived Config.empty in
  let cache = Cost.new_cache () in
  Parallel.with_pool ~jobs:4 (fun pool ->
      let totals =
        Parallel.map_array ~chunk:1 pool
          (fun () -> Cost.total_of ~cache derived Config.empty)
          (Array.make 100 ())
      in
      Array.iter (fun t -> checkb "cold total correct" true (t = fresh)) totals);
  let s = Cost.cache_stats cache in
  checkb "lookups all accounted" true (s.Cost.cs_hits + s.Cost.cs_misses > 0);
  checkb "entries bounded by misses" true (s.Cost.cs_entries <= s.Cost.cs_misses);
  checki "unbounded cache never evicts" 0 s.Cost.cs_evictions

let test_cache_bounded_concurrent () =
  let schema = Schemas.schema1 () in
  let derived = Derived.create schema in
  let fresh = Cost.total_of derived Config.empty in
  let cache = Cost.new_cache ~capacity:8 () in
  Parallel.with_pool ~jobs:4 (fun pool ->
      let totals =
        Parallel.map_array ~chunk:1 pool
          (fun () -> Cost.total_of ~cache derived Config.empty)
          (Array.make 100 ())
      in
      Array.iter (fun t -> checkb "bounded total correct" true (t = fresh)) totals);
  let s = Cost.cache_stats cache in
  checkb "capacity respected under contention" true (s.Cost.cs_entries <= 8)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "vis_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "degenerate inputs" `Quick test_degenerate_inputs;
          Alcotest.test_case "map_init context" `Quick
            test_map_init_context_per_chunk;
          Alcotest.test_case "deterministic exceptions" `Quick
            test_exception_deterministic;
          Alcotest.test_case "work accounting" `Quick test_work_accounting;
        ] );
      ( "search determinism",
        [
          Alcotest.test_case "astar jobs=1 vs jobs=4" `Quick
            test_astar_deterministic;
          Alcotest.test_case "exhaustive jobs=1 vs jobs=4" `Quick
            test_exhaustive_deterministic;
          Alcotest.test_case "greedy jobs=1 vs jobs=4" `Quick
            test_greedy_deterministic;
          Alcotest.test_case "budget exception with jobs=4" `Quick
            test_budget_still_raises;
        ]
        @ qt [ prop_parallel_deterministic_random ] );
      ( "sharded search",
        [
          Alcotest.test_case "star-8 budgeted jobs=1 vs jobs=4" `Slow
            test_sharded_star_identity;
          Alcotest.test_case "snowflake-7 packed jobs=1 vs jobs=4" `Slow
            test_sharded_snowflake_identity;
          Alcotest.test_case "forced shard finds the optimum" `Quick
            test_forced_shard_same_optimum;
          Alcotest.test_case "certificates" `Quick test_certificates;
        ] );
      ( "cache concurrency",
        [
          Alcotest.test_case "warm counters exact" `Quick
            test_cache_counters_exact_concurrent;
          Alcotest.test_case "cold cache consistent" `Quick
            test_cache_cold_concurrent;
          Alcotest.test_case "bounded cache capacity" `Quick
            test_cache_bounded_concurrent;
        ] );
    ]
