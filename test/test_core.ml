(* Tests for vis_core: candidate enumeration (against the paper's own
   example), the expression DAG, exhaustive search, A* (optimality against
   exhaustive, both fixed and randomized), the greedy heuristic, the rules
   of thumb, the space sweep, and the sensitivity analysis. *)

module Bitset = Vis_util.Bitset
module Schema = Vis_catalog.Schema
module Element = Vis_costmodel.Element
module Config = Vis_costmodel.Config
module Problem = Vis_core.Problem
module Exhaustive = Vis_core.Exhaustive
module Astar = Vis_core.Astar
module Greedy = Vis_core.Greedy
module Rules = Vis_core.Rules
module Space = Vis_core.Space

let checkb = Alcotest.(check bool)

let checki = Alcotest.(check int)

let checkf msg = Alcotest.(check (float 1e-6)) msg

let schema1 () = Vis_workload.Schemas.schema1 ()

(* ------------------------------------------------------------------ *)
(* Candidates: the paper's Section 2.2 example has C = {RS, ST', RT', T'}. *)

let test_candidate_views_paper_example () =
  let p = Problem.make (schema1 ()) in
  let names =
    List.map
      (fun w -> Element.name (schema1 ()) (Element.View w))
      p.Problem.candidate_views
  in
  Alcotest.(check (list string)) "paper's candidate set"
    [ "\xcf\x83T"; "RS"; "R\xcf\x83T"; "S\xcf\x83T" ]
    names;
  (* Bare base relations without a selection are not candidates. *)
  checkb "no bare R" true
    (not (List.exists (Bitset.equal (Bitset.singleton 0)) p.Problem.candidate_views));
  (* connected_only drops the cross-product node RT'. *)
  let pc = Problem.make ~connected_only:true (schema1 ()) in
  checki "connected only" 3 (List.length pc.Problem.candidate_views)

let test_candidate_indexes () =
  let s = schema1 () in
  let p = Problem.make s in
  (* Base R: key R0 (receives deletions) and join attribute R1. *)
  let base_r = Problem.candidate_indexes_on p (Element.Base 0) in
  Alcotest.(check (list string)) "base R attrs" [ "R0"; "R1" ]
    (List.map (fun ix -> ix.Element.ix_attr.Element.a_name) base_r);
  (* Base T: key+join T0, selection T1. *)
  let base_t = Problem.candidate_indexes_on p (Element.Base 2) in
  Alcotest.(check (list string)) "base T attrs" [ "T0"; "T1" ]
    (List.map (fun ix -> ix.Element.ix_attr.Element.a_name) base_t);
  (* Primary view: the keys of all three relations, no crossing joins. *)
  let v = Problem.candidate_indexes_on p (Element.View (Schema.all_relations s)) in
  Alcotest.(check (list string)) "primary keys" [ "R0"; "S0"; "T0" ]
    (List.map (fun ix -> ix.Element.ix_attr.Element.a_name) v);
  (* ST': keys S0, T0, plus the crossing join attribute S1. *)
  let st = Problem.candidate_indexes_on p (Element.View (Bitset.of_list [ 1; 2 ])) in
  Alcotest.(check (list string)) "ST' attrs" [ "S0"; "T0"; "S1" ]
    (List.map (fun ix -> ix.Element.ix_attr.Element.a_name) st)

let test_no_key_candidates_without_delupd () =
  let s =
    Schema.with_deltas (schema1 ())
      (List.init 3 (fun _ -> { Schema.n_ins = 100.; n_del = 0.; n_upd = 0. }))
  in
  let p = Problem.make s in
  let base_r = Problem.candidate_indexes_on p (Element.Base 0) in
  Alcotest.(check (list string)) "no key candidate" [ "R1" ]
    (List.map (fun ix -> ix.Element.ix_attr.Element.a_name) base_r)

let test_feature_order () =
  let p = Problem.make (schema1 ()) in
  (* Every view feature appears before any index on it. *)
  let seen_views = Hashtbl.create 8 in
  List.iter
    (function
      | Problem.F_view w -> Hashtbl.replace seen_views (Bitset.to_int w) ()
      | Problem.F_index ix -> (
          match ix.Element.ix_elem with
          | Element.View w
            when not (Bitset.equal w (Schema.all_relations (schema1 ()))) ->
              checkb "view precedes its indexes" true
                (Hashtbl.mem seen_views (Bitset.to_int w))
          | Element.View _ | Element.Base _ -> ())
      | Problem.F_compress _ -> ())
    p.Problem.features;
  checkb "valid empty config" true (Problem.valid_config p Config.empty);
  let bogus = Config.make ~views:[ Schema.all_relations (schema1 ()) ] ~indexes:[] in
  checkb "primary view not a candidate" false (Problem.valid_config p bogus)

(* ------------------------------------------------------------------ *)
(* Expression DAG (Figure 3). *)

let test_dag () =
  let p = Problem.make (schema1 ()) in
  let nodes = Vis_core.Dag.build p in
  checki "five nodes: T', RS, RT', ST', V" 5 (List.length nodes);
  let v = List.find (fun n -> n.Vis_core.Dag.n_name = "V") nodes in
  (* V derives as R ⋈ ST', S ⋈ RT', RS ⋈ T'. *)
  checki "three derivations of V" 3 (List.length v.Vis_core.Dag.n_derivations);
  let sigma_t =
    List.find (fun n -> n.Vis_core.Dag.n_name = "\xcf\x83T") nodes
  in
  checki "leaves have no derivations" 0 (List.length sigma_t.Vis_core.Dag.n_derivations)

(* ------------------------------------------------------------------ *)
(* Exhaustive search. *)

let small_problem () = Problem.make (Vis_workload.Schemas.two_relation ())

let test_exhaustive_counts () =
  let p = small_problem () in
  (* One candidate view (σS); indexes: R:{R0,R1}, S:{S0}, V:{R0,S0},
     σS:{S0}.  View off: 2^5; view on: 2^6 => 96... verified against
     count_states and a hand enumeration below. *)
  let expected = Exhaustive.count_states p in
  let r = Exhaustive.search p in
  checkf "states visited = predicted" expected (float_of_int r.Exhaustive.states);
  checki "view states" 2 r.Exhaustive.view_states;
  checkb "found a finite optimum" true (Float.is_finite r.Exhaustive.best_cost)

let test_exhaustive_too_large () =
  let p = Problem.make (schema1 ()) in
  match Exhaustive.search ~max_states:10 p with
  | exception Exhaustive.Too_large n -> checkb "reports size" true (n > 10.)
  | _ -> Alcotest.fail "expected Too_large"

let test_best_worst_indexes () =
  let p = Problem.make (schema1 ()) in
  let views = [ Bitset.of_list [ 1; 2 ] ] in
  let _, best, _ = Exhaustive.best_indexes_for_views p views in
  let _, worst, _ = Exhaustive.worst_indexes_for_views p views in
  checkb "best <= worst" true (best <= worst);
  checkb "strictly better here" true (best < worst)

let test_per_view_set_sorted () =
  let p = small_problem () in
  let rows = Exhaustive.per_view_set p in
  checki "2 view sets" 2 (List.length rows);
  let costs = List.map (fun (_, lo, _) -> lo) rows in
  checkb "sorted by best cost" true (List.sort compare costs = costs);
  List.iter (fun (_, lo, hi) -> checkb "lo <= hi" true (lo <= hi)) rows

(* ------------------------------------------------------------------ *)
(* A* optimality. *)

let test_astar_matches_exhaustive_fixed () =
  List.iter
    (fun schema ->
      let p = Problem.make schema in
      let ex = Exhaustive.search p in
      let a = Astar.search p in
      checkb "same optimum" true
        (Vis_util.Num.approx_equal ~eps:1e-9 ex.Exhaustive.best_cost
           a.Astar.best_cost);
      checkb "A* expands fewer states" true
        (float_of_int a.Astar.stats.Astar.expanded
        <= a.Astar.stats.Astar.exhaustive_states))
    [
      Vis_workload.Schemas.two_relation ();
      Vis_workload.Schemas.two_relation ~sel_s:0.5 ~del_frac:0.01 ();
      Vis_workload.Schemas.two_relation ~card_r:500. ~card_s:2000. ~mem_pages:5 ();
      Vis_workload.Schemas.schema1 ~del_frac:0. ~ins_frac:0.02 ();
    ]

let test_astar_schema1 () =
  (* Golden: verified once against full exhaustive enumeration (622080
     states, ~40 s), pinned here so regressions surface instantly. *)
  let p = Problem.make (schema1 ()) in
  let a = Astar.search p in
  Alcotest.(check (float 0.5)) "schema1 optimal cost" 4379.9 a.Astar.best_cost;
  let views = Config.views a.Astar.best in
  checkb "materializes σT" true
    (List.exists (Bitset.equal (Bitset.singleton 2)) views);
  checkb "materializes ST'" true
    (List.exists (Bitset.equal (Bitset.of_list [ 1; 2 ])) views)

let prop_astar_optimal_random =
  QCheck2.Test.make ~name:"astar: optimal on random schemas" ~count:25
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let schema = Vis_workload.Schemas.random ~rng () in
      let p = Problem.make schema in
      if Exhaustive.count_states p > 25_000. then true
      else begin
        let ex = Exhaustive.search p in
        let a = Astar.search p in
        Vis_util.Num.approx_equal ~eps:1e-9 ex.Exhaustive.best_cost a.Astar.best_cost
      end)

let test_astar_budget () =
  let p = Problem.make (schema1 ()) in
  match Astar.search ~max_expanded:3 p with
  | exception Astar.Budget_exceeded st -> checki "stopped at 4" 4 st.Astar.expanded
  | _ -> Alcotest.fail "expected Budget_exceeded"

(* ------------------------------------------------------------------ *)
(* Greedy, rules, space, sensitivity. *)

let test_greedy_sanity () =
  let p = Problem.make (schema1 ()) in
  let g = Greedy.search p in
  let empty_cost = Problem.total p Config.empty in
  checkb "greedy no worse than nothing" true (g.Greedy.best_cost <= empty_cost);
  let a = Astar.search p in
  checkb "greedy no better than optimal" true
    (g.Greedy.best_cost >= a.Astar.best_cost -. 1e-6);
  (* Steps strictly improve. *)
  let rec decreasing prev = function
    | [] -> true
    | s :: rest -> s.Greedy.s_cost_after < prev && decreasing s.Greedy.s_cost_after rest
  in
  checkb "steps improve" true (decreasing empty_cost g.Greedy.steps)

let test_greedy_space_budget () =
  let p = Problem.make (schema1 ()) in
  let g = Greedy.search ~space_budget:15. p in
  checkb "budget respected" true
    (Config.space p.Problem.derived g.Greedy.best <= 15.)

let test_rules_advise () =
  let p = Problem.make (schema1 ()) in
  let a = Rules.advise p in
  checkb "valid configuration" true (Problem.valid_config p a.Rules.a_config);
  let cost = Problem.total p a.Rules.a_config in
  let empty_cost = Problem.total p Config.empty in
  checkb "advice helps" true (cost < empty_cost);
  let optimal = (Astar.search p).Astar.best_cost in
  checkb "advice within 2x of optimal" true (cost <= 2. *. optimal);
  (* Every chosen decision cites at least one rule. *)
  List.iter
    (fun d ->
      if d.Rules.d_chosen then checkb "rule cited" true (d.Rules.d_rule <> "-"))
    a.Rules.a_decisions

let test_rules_indexed_gate () =
  (* The index-join branch of Benefit_v must be gated on probe-friendliness:
     a cross-product node like RσT is enormous, so probing it can never be
     cheaper than scanning and its indexed benefit must be zero. *)
  let p = Problem.make (schema1 ()) in
  let rt = Bitset.of_list [ 0; 2 ] in
  checkf "cross-product indexed benefit gated" 0.
    (Rules.benefit_view p ~chosen:[] ~indexed:true rt);
  (* A selective view keeps a positive indexed benefit. *)
  let st = Bitset.of_list [ 1; 2 ] in
  checkb "selective view indexed benefit allowed" true
    (Rules.benefit_view p ~chosen:[] ~indexed:true st >= 0.)

let test_rules_formulas () =
  let p = Problem.make (schema1 ()) in
  let st = Bitset.of_list [ 1; 2 ] in
  (* E(ST') with nothing chosen is {S, T}; with σT chosen it uses σT. *)
  let e0 = Rules.elements p ~chosen:[] st in
  checki "two elements" 2 (List.length e0);
  let e1 = Rules.elements p ~chosen:[ Bitset.singleton 2 ] st in
  checkb "uses σT" true
    (List.exists
       (fun e ->
         match e with
         | Element.View w -> Bitset.equal w (Bitset.singleton 2)
         | Element.Base _ -> false)
       e1);
  (* Rule 5.1's premise on schema 1: P(ST') << P(S)+P(T). *)
  let benefit = Rules.benefit_view p ~chosen:[] ~indexed:false st in
  checkb "selective view benefit positive" true (benefit > 0.);
  (* A cross-product node has a hugely negative non-indexed benefit. *)
  let rt = Bitset.of_list [ 0; 2 ] in
  checkb "cross product penalized" true
    (Rules.benefit_view p ~chosen:[] ~indexed:false rt < 0.)

let test_space_sweep () =
  (* A deletion-free Schema 1 keeps the index candidate set small enough
     for the full enumeration to stay fast; the bench runs the full one. *)
  let p = Problem.make (Vis_workload.Schemas.schema1 ~del_frac:0. ()) in
  let sw = Space.sweep p in
  (match sw.Space.sw_steps with
  | [] -> Alcotest.fail "no steps"
  | first :: _ ->
      checkf "starts at zero space" 0. first.Space.st_space;
      checkf "empty design cost" (Problem.total p Config.empty) first.Space.st_cost);
  (* Costs strictly decrease along the staircase; spaces strictly grow. *)
  let rec strictly_monotone = function
    | a :: (b :: _ as rest) ->
        a.Space.st_space < b.Space.st_space
        && a.Space.st_cost > b.Space.st_cost
        && strictly_monotone rest
    | _ -> true
  in
  checkb "staircase monotone" true (strictly_monotone sw.Space.sw_steps);
  let last = List.nth sw.Space.sw_steps (List.length sw.Space.sw_steps - 1) in
  checkf "reaches the unconstrained optimum" (Astar.search p).Astar.best_cost
    last.Space.st_cost;
  (* cost_at is the staircase. *)
  checkf "cost_at 0" (Problem.total p Config.empty) (Space.cost_at sw ~budget:0.);
  checkf "cost_at infinity" sw.Space.sw_unconstrained_cost
    (Space.cost_at sw ~budget:1e12);
  (* feature_order lists each feature once. *)
  let names = List.map fst (Space.feature_order sw) in
  checki "no duplicates" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_astar_anytime () =
  let p = Problem.make (schema1 ()) in
  (* Unlimited budget: proven optimal. *)
  let r, optimal = Astar.search_anytime p in
  checkb "proven optimal" true optimal;
  checkf "same optimum" (Astar.search p).Astar.best_cost r.Astar.best_cost;
  (* Tiny budget: returns the greedy-or-better incumbent without raising. *)
  let r2, optimal2 = Astar.search_anytime ~max_expanded:2 p in
  checkb "not proven" false optimal2;
  let greedy_cost = (Greedy.search p).Greedy.best_cost in
  checkb "incumbent at least as good as greedy" true
    (r2.Astar.best_cost <= greedy_cost +. 1e-9);
  checkb "incumbent is a real configuration" true
    (Vis_util.Num.approx_equal (Problem.total p r2.Astar.best) r2.Astar.best_cost)

let test_local_search () =
  let p = Problem.make (schema1 ()) in
  let ls = Vis_core.Local_search.search p in
  let g = Greedy.search p in
  checkb "no worse than its greedy seed" true
    (ls.Vis_core.Local_search.best_cost <= g.Greedy.best_cost +. 1e-9);
  checkb "no better than optimal" true
    (ls.Vis_core.Local_search.best_cost
    >= (Astar.search p).Astar.best_cost -. 1e-6);
  checkb "valid configuration" true
    (Problem.valid_config p ls.Vis_core.Local_search.best);
  (* Seeding from empty must also find improvements. *)
  let ls0 = Vis_core.Local_search.search ~seed:Config.empty p in
  checkb "improves from empty" true
    (ls0.Vis_core.Local_search.best_cost < Problem.total p Config.empty);
  (* Space budget respected. *)
  let lsb = Vis_core.Local_search.search ~space_budget:50. p in
  checkb "budget respected" true
    (Config.space p.Problem.derived lsb.Vis_core.Local_search.best <= 50.)

let test_explain () =
  let p = Problem.make (schema1 ()) in
  let config = (Astar.search p).Astar.best in
  let report = Vis_core.Explain.explain p config in
  checkf "report total is the evaluator total" (Problem.total p config)
    report.Vis_core.Explain.r_total;
  (* Line totals sum to the report total. *)
  let sum =
    List.fold_left
      (fun acc l -> acc +. l.Vis_core.Explain.l_total)
      0. report.Vis_core.Explain.r_lines
  in
  checkf "lines sum to total" report.Vis_core.Explain.r_total sum;
  (* The rendered report mentions every maintained element. *)
  let text = Vis_core.Explain.render report in
  checkb "mentions the primary view" true
    (List.exists
       (fun l -> l.Vis_core.Explain.l_element = "V")
       report.Vis_core.Explain.r_lines);
  checkb "render nonempty" true (String.length text > 200);
  let cmp =
    Vis_core.Explain.compare_designs p
      [ ("bare", Config.empty); ("opt", config) ]
  in
  checkb "comparison renders" true (String.length cmp > 50)

(* The sweep staircase must agree with a brute-force "best configuration
   within budget" on random small schemas. *)
let prop_sweep_matches_bruteforce =
  QCheck2.Test.make ~name:"space: staircase matches brute force" ~count:12
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let schema = Vis_workload.Schemas.random ~rng () in
      let p = Problem.make schema in
      if Exhaustive.count_states p > 8_000. then true
      else begin
        let sw = Space.sweep p in
        (* Collect all (space, cost) pairs and check three budgets. *)
        let all = ref [] in
        ignore
          (Exhaustive.enumerate p ~f:(fun _ ~cost ~space ->
               all := (space, cost) :: !all));
        let budgets = [ 0.; 5.; 50. ] in
        List.for_all
          (fun b ->
            let brute =
              List.fold_left
                (fun best (space, cost) ->
                  if space <= b then Float.min best cost else best)
                infinity !all
            in
            Vis_util.Num.approx_equal ~eps:1e-9 brute (Space.cost_at sw ~budget:b))
          budgets
      end)

(* ------------------------------------------------------------------ *)
(* Page-level compression as a search axis. *)

let test_compression_candidates () =
  (* Off by default: no candidates, no features, every cost bitwise equal
     to the pre-compression model. *)
  let p0 = Problem.make (schema1 ()) in
  checki "no candidates by default" 0
    (List.length (Problem.compress_candidates p0));
  let p = Problem.make ~compression:true (schema1 ()) in
  (* Always-materialized elements: the three bases and the primary view. *)
  let cands = Problem.compress_candidates p in
  checki "bases + primary view" 4 (List.length cands);
  checkb "primary view is a candidate" true
    (List.exists
       (function
         | Element.View w -> Bitset.equal w (Schema.all_relations (schema1 ()))
         | Element.Base _ -> false)
       cands);
  (* Each candidate appears exactly once as an F_compress feature. *)
  let n_feats =
    List.length
      (List.filter
         (function Problem.F_compress _ -> true | _ -> false)
         p.Problem.features)
  in
  checki "one feature per candidate" 4 n_feats;
  (* The exhaustive space grows by 2^candidates. *)
  checkf "state count scales by 2^4"
    (16. *. Exhaustive.count_states p0)
    (Exhaustive.count_states p)

let test_compression_extends_the_space () =
  (* The compression-enabled space is a superset, so its optimum can only
     improve; with the model's read discount it strictly does here. *)
  let s = Vis_workload.Schemas.two_relation () in
  let plain = Exhaustive.search (Problem.make s) in
  let comp = Exhaustive.search (Problem.make ~compression:true s) in
  checkb "superset space never hurts" true
    (comp.Exhaustive.best_cost <= plain.Exhaustive.best_cost +. 1e-9);
  checkb "the optimum compresses something" true
    (Config.compress comp.Exhaustive.best <> []);
  (* Same problem, same evaluator cache: a config that differs only in its
     compression set must not alias to the uncompressed cost. *)
  let p = Problem.make ~compression:true s in
  let base = Config.empty in
  let target = List.hd (Problem.compress_candidates p) in
  let compressed = Config.add_compress base target in
  checkb "memo distinguishes compression" true
    (Problem.total p base <> Problem.total p compressed)

let test_astar_matches_exhaustive_compression () =
  List.iter
    (fun schema ->
      let p = Problem.make ~compression:true schema in
      let ex = Exhaustive.search p in
      let a = Astar.search p in
      checkb "same optimum with compression" true
        (Vis_util.Num.approx_equal ~eps:1e-9 ex.Exhaustive.best_cost
           a.Astar.best_cost))
    [
      Vis_workload.Schemas.two_relation ();
      Vis_workload.Schemas.two_relation ~sel_s:0.5 ~del_frac:0.01 ();
      Vis_workload.Schemas.two_relation ~card_r:500. ~card_s:2000. ~mem_pages:5 ();
    ]

let prop_astar_optimal_random_compression =
  QCheck2.Test.make ~name:"astar: optimal with compression on random schemas"
    ~count:15
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let schema = Vis_workload.Schemas.random ~rng () in
      let p = Problem.make ~compression:true schema in
      if Exhaustive.count_states p > 25_000. then true
      else begin
        let ex = Exhaustive.search p in
        let a = Astar.search p in
        Vis_util.Num.approx_equal ~eps:1e-9 ex.Exhaustive.best_cost
          a.Astar.best_cost
      end)

let test_heuristics_handle_compression () =
  let p = Problem.make ~compression:true (schema1 ()) in
  let empty_cost = Problem.total p Config.empty in
  let a = Astar.search p in
  let g = Greedy.search p in
  checkb "greedy valid" true (Problem.valid_config p g.Greedy.best);
  checkb "greedy between optimal and empty" true
    (g.Greedy.best_cost >= a.Astar.best_cost -. 1e-6
    && g.Greedy.best_cost <= empty_cost);
  let ls = Vis_core.Local_search.search p in
  checkb "local search valid" true
    (Problem.valid_config p ls.Vis_core.Local_search.best);
  checkb "local search no worse than greedy" true
    (ls.Vis_core.Local_search.best_cost <= g.Greedy.best_cost +. 1e-9);
  checkb "local search no better than optimal" true
    (ls.Vis_core.Local_search.best_cost >= a.Astar.best_cost -. 1e-6)

let test_sensitivity () =
  let make rate =
    Vis_workload.Schemas.two_relation ~ins_frac:rate ~del_frac:(rate /. 10.) ()
  in
  let series =
    Vis_core.Sensitivity.sweep ~make_schema:make ~values:[ 0.001; 0.01; 0.1 ]
  in
  checki "three series" 3 (List.length series);
  List.iter
    (fun s ->
      List.iter
        (fun (actual, ratio) ->
          checkb "ratio >= 1" true (ratio >= 1. -. 1e-9);
          (* The design chosen for this estimate is optimal at it. *)
          if Vis_util.Num.approx_equal actual s.Vis_core.Sensitivity.se_estimate
          then checkb "ratio 1 at own estimate" true (ratio <= 1. +. 1e-9))
        s.Vis_core.Sensitivity.se_ratios)
    series

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "vis_core"
    [
      ( "candidates",
        [
          Alcotest.test_case "paper example" `Quick test_candidate_views_paper_example;
          Alcotest.test_case "candidate indexes" `Quick test_candidate_indexes;
          Alcotest.test_case "keys need del/upd" `Quick test_no_key_candidates_without_delupd;
          Alcotest.test_case "feature order" `Quick test_feature_order;
          Alcotest.test_case "expression dag" `Quick test_dag;
        ] );
      ( "exhaustive",
        [
          Alcotest.test_case "state counts" `Quick test_exhaustive_counts;
          Alcotest.test_case "too large" `Quick test_exhaustive_too_large;
          Alcotest.test_case "best/worst indexes" `Quick test_best_worst_indexes;
          Alcotest.test_case "per view set" `Quick test_per_view_set_sorted;
        ] );
      ( "astar",
        [
          Alcotest.test_case "fixed schemas" `Slow test_astar_matches_exhaustive_fixed;
          Alcotest.test_case "schema1 golden" `Quick test_astar_schema1;
          Alcotest.test_case "budget" `Quick test_astar_budget;
        ]
        @ qt [ prop_astar_optimal_random ] );
      ( "heuristics and studies",
        [
          Alcotest.test_case "greedy sanity" `Quick test_greedy_sanity;
          Alcotest.test_case "greedy space budget" `Quick test_greedy_space_budget;
          Alcotest.test_case "rules advise" `Quick test_rules_advise;
          Alcotest.test_case "rules formulas" `Quick test_rules_formulas;
          Alcotest.test_case "rules indexed gate" `Quick test_rules_indexed_gate;
          Alcotest.test_case "anytime A*" `Quick test_astar_anytime;
          Alcotest.test_case "local search" `Quick test_local_search;
          Alcotest.test_case "explain" `Quick test_explain;
          Alcotest.test_case "space sweep" `Slow test_space_sweep;
          Alcotest.test_case "sensitivity" `Quick test_sensitivity;
        ]
        @ qt [ prop_sweep_matches_bruteforce ] );
      ( "compression",
        [
          Alcotest.test_case "candidates and state count" `Quick
            test_compression_candidates;
          Alcotest.test_case "extends the space" `Quick
            test_compression_extends_the_space;
          Alcotest.test_case "astar matches exhaustive" `Quick
            test_astar_matches_exhaustive_compression;
          Alcotest.test_case "heuristics handle the axis" `Quick
            test_heuristics_handle_compression;
        ]
        @ qt [ prop_astar_optimal_random_compression ] );
    ]
