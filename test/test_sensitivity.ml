(* Tests for the Section-6.2 sensitivity analysis: every ratio is >= 1
   (no fixed design beats the optimum), the ratio is exactly 1 at the
   design's own estimate (the diagonal of Figure 12), and each chosen
   configuration stays valid under every swept schema. *)

module Schema = Vis_catalog.Schema
module Config = Vis_costmodel.Config
module Problem = Vis_core.Problem
module Sensitivity = Vis_core.Sensitivity

let checkb = Alcotest.(check bool)

let checki = Alcotest.(check int)

let checkf msg = Alcotest.(check (float 1e-6)) msg

let delta_factors = [ 0.25; 0.5; 1.0; 2.0; 4.0 ]

let base () = Vis_workload.Schemas.two_relation ()

let delta_sweep =
  lazy
    (Sensitivity.sweep
       ~make_schema:(fun f -> Schema.scale_deltas (base ()) f)
       ~values:delta_factors)

let check_series name values make_schema series =
  checki (name ^ ": one series per estimate") (List.length values)
    (List.length series);
  List.iter
    (fun s ->
      checkb (name ^ ": the estimate is one of the swept values") true
        (List.mem s.Sensitivity.se_estimate values);
      checki
        (name ^ ": every design is costed at every actual value")
        (List.length values)
        (List.length s.Sensitivity.se_ratios);
      List.iter
        (fun (actual, ratio) ->
          checkb (name ^ ": actual values come from the sweep") true
            (List.mem actual values);
          checkb
            (Printf.sprintf
               "%s: design for %g never beats the optimum at %g (ratio %.9f)"
               name s.Sensitivity.se_estimate actual ratio)
            true
            (ratio >= 1. -. 1e-9);
          if actual = s.Sensitivity.se_estimate then
            checkf (name ^ ": ratio is exactly 1 at the design's own estimate")
              1. ratio)
        s.Sensitivity.se_ratios;
      (* The chosen design must make sense under every swept schema. *)
      List.iter
        (fun v ->
          checkb (name ^ ": configuration valid under every swept schema") true
            (Problem.valid_config
               (Problem.make (make_schema v))
               s.Sensitivity.se_config))
        values)
    series

let test_delta_scaling () =
  check_series "delta scaling" delta_factors
    (fun f -> Schema.scale_deltas (base ()) f)
    (Lazy.force delta_sweep)

let test_selectivity_sweep () =
  (* Sweep a statistics parameter other than the delta rates: the local
     selectivity of the two-relation instance. *)
  let values = [ 0.01; 0.1; 0.5 ] in
  let make v = Vis_workload.Schemas.two_relation ~sel_s:v () in
  check_series "selectivity" values make
    (Sensitivity.sweep ~make_schema:make ~values)

let test_underestimate_hurts_monotonically () =
  (* The design chosen for the lowest delta estimate, evaluated at
     increasing actual rates, can only drift away from optimal or stay:
     ratios are >= 1 everywhere and 1 at its own estimate, so its ratio
     curve has a minimum at the estimate.  Spot-check the curve exists and
     is finite. *)
  let series = Lazy.force delta_sweep in
  let lowest =
    List.find
      (fun s -> s.Sensitivity.se_estimate = List.hd delta_factors)
      series
  in
  List.iter
    (fun (_, ratio) ->
      checkb "ratios are finite" true (Float.is_finite ratio))
    lowest.Sensitivity.se_ratios

let test_single_value_sweep () =
  (* The degenerate sweep: one swept value gives one series whose only
     ratio sits on the Figure-12 diagonal — exactly 1, not merely close. *)
  let make f = Schema.scale_deltas (base ()) f in
  match Sensitivity.sweep ~make_schema:make ~values:[ 1.0 ] with
  | [ s ] ->
      checkf "the single estimate is the swept value" 1.0
        s.Sensitivity.se_estimate;
      (match s.Sensitivity.se_ratios with
      | [ (actual, ratio) ] ->
          checkf "the single actual is the swept value" 1.0 actual;
          Alcotest.(check (float 0.))
            "ratio at the estimate is exactly 1.0, bit for bit" 1.0 ratio
      | rs ->
          Alcotest.failf "expected one ratio, got %d" (List.length rs));
      checkb "the chosen design is valid" true
        (Problem.valid_config (Problem.make (make 1.0)) s.Sensitivity.se_config)
  | series -> Alcotest.failf "expected one series, got %d" (List.length series)

let test_ratio_exact_on_diagonal () =
  (* Along the whole diagonal of the delta sweep, the design costed under
     the schema it was optimized for divides its own optimal cost: the
     ratio must be 1.0 to the last bit, not within a tolerance. *)
  List.iter
    (fun s ->
      List.iter
        (fun (actual, ratio) ->
          if actual = s.Sensitivity.se_estimate then
            Alcotest.(check (float 0.))
              (Printf.sprintf "diagonal ratio at estimate %g is bitwise 1.0"
                 s.Sensitivity.se_estimate)
              1.0 ratio)
        s.Sensitivity.se_ratios)
    (Lazy.force delta_sweep)

let test_probe () =
  (* The greedy probe of the problem's own greedy design is exactly 1;
     probing a deliberately mismatched incumbent can only read >= 1 up to
     greedy's underestimate of the optimum — and is >= the true ratio gate
     would ever be fooled by on this instance. *)
  let p = Problem.make (base ()) in
  let g = (Vis_core.Greedy.search p).Vis_core.Greedy.best in
  Alcotest.(check (float 0.)) "probing the greedy design reads exactly 1.0" 1.0
    (Sensitivity.probe p ~incumbent:g);
  checkb "probing the empty configuration reads a penalty" true
    (Sensitivity.probe p ~incumbent:Config.empty >= 1.)

let () =
  Alcotest.run "sensitivity"
    [
      ( "sweep",
        [
          Alcotest.test_case "delta-rate scaling" `Quick test_delta_scaling;
          Alcotest.test_case "selectivity sweep" `Quick test_selectivity_sweep;
          Alcotest.test_case "low-estimate curve" `Quick
            test_underestimate_hurts_monotonically;
          Alcotest.test_case "single-value sweep" `Quick
            test_single_value_sweep;
          Alcotest.test_case "exact diagonal" `Quick
            test_ratio_exact_on_diagonal;
          Alcotest.test_case "greedy probe" `Quick test_probe;
        ] );
    ]
