(* Tests for the Section-6.2 sensitivity analysis: every ratio is >= 1
   (no fixed design beats the optimum), the ratio is exactly 1 at the
   design's own estimate (the diagonal of Figure 12), and each chosen
   configuration stays valid under every swept schema. *)

module Schema = Vis_catalog.Schema
module Config = Vis_costmodel.Config
module Problem = Vis_core.Problem
module Sensitivity = Vis_core.Sensitivity

let checkb = Alcotest.(check bool)

let checki = Alcotest.(check int)

let checkf msg = Alcotest.(check (float 1e-6)) msg

let delta_factors = [ 0.25; 0.5; 1.0; 2.0; 4.0 ]

let base () = Vis_workload.Schemas.two_relation ()

let delta_sweep =
  lazy
    (Sensitivity.sweep
       ~make_schema:(fun f -> Schema.scale_deltas (base ()) f)
       ~values:delta_factors)

let check_series name values make_schema series =
  checki (name ^ ": one series per estimate") (List.length values)
    (List.length series);
  List.iter
    (fun s ->
      checkb (name ^ ": the estimate is one of the swept values") true
        (List.mem s.Sensitivity.se_estimate values);
      checki
        (name ^ ": every design is costed at every actual value")
        (List.length values)
        (List.length s.Sensitivity.se_ratios);
      List.iter
        (fun (actual, ratio) ->
          checkb (name ^ ": actual values come from the sweep") true
            (List.mem actual values);
          checkb
            (Printf.sprintf
               "%s: design for %g never beats the optimum at %g (ratio %.9f)"
               name s.Sensitivity.se_estimate actual ratio)
            true
            (ratio >= 1. -. 1e-9);
          if actual = s.Sensitivity.se_estimate then
            checkf (name ^ ": ratio is exactly 1 at the design's own estimate")
              1. ratio)
        s.Sensitivity.se_ratios;
      (* The chosen design must make sense under every swept schema. *)
      List.iter
        (fun v ->
          checkb (name ^ ": configuration valid under every swept schema") true
            (Problem.valid_config
               (Problem.make (make_schema v))
               s.Sensitivity.se_config))
        values)
    series

let test_delta_scaling () =
  check_series "delta scaling" delta_factors
    (fun f -> Schema.scale_deltas (base ()) f)
    (Lazy.force delta_sweep)

let test_selectivity_sweep () =
  (* Sweep a statistics parameter other than the delta rates: the local
     selectivity of the two-relation instance. *)
  let values = [ 0.01; 0.1; 0.5 ] in
  let make v = Vis_workload.Schemas.two_relation ~sel_s:v () in
  check_series "selectivity" values make
    (Sensitivity.sweep ~make_schema:make ~values)

let test_underestimate_hurts_monotonically () =
  (* The design chosen for the lowest delta estimate, evaluated at
     increasing actual rates, can only drift away from optimal or stay:
     ratios are >= 1 everywhere and 1 at its own estimate, so its ratio
     curve has a minimum at the estimate.  Spot-check the curve exists and
     is finite. *)
  let series = Lazy.force delta_sweep in
  let lowest =
    List.find
      (fun s -> s.Sensitivity.se_estimate = List.hd delta_factors)
      series
  in
  List.iter
    (fun (_, ratio) ->
      checkb "ratios are finite" true (Float.is_finite ratio))
    lowest.Sensitivity.se_ratios

let () =
  Alcotest.run "sensitivity"
    [
      ( "sweep",
        [
          Alcotest.test_case "delta-rate scaling" `Quick test_delta_scaling;
          Alcotest.test_case "selectivity sweep" `Quick test_selectivity_sweep;
          Alcotest.test_case "low-estimate curve" `Quick
            test_underestimate_hurts_monotonically;
        ] );
    ]
