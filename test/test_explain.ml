(* Tests for the explanation layer: the per-propagation cost report (its
   totals re-evaluate against the cost model), the ASCII rendering, the
   JSON form (round-trips through the parser), and the regression for
   non-finite floats in JSON output — an unachievable budget's infinite
   cost must serialize as null, not as "inf" the parser rejects. *)

module Schema = Vis_catalog.Schema
module Config = Vis_costmodel.Config
module Json = Vis_util.Json
module Problem = Vis_core.Problem
module Astar = Vis_core.Astar
module Explain = Vis_core.Explain
module Space = Vis_core.Space

let checkb = Alcotest.(check bool)

let checkf msg = Alcotest.(check (float 1e-6)) msg

let checks = Alcotest.(check string)

let contains ~affix text =
  let n = String.length affix and m = String.length text in
  let rec at i = i + n <= m && (String.sub text i n = affix || at (i + 1)) in
  n = 0 || at 0

let problem () = Problem.make (Vis_workload.Schemas.two_relation ())

let optimal = lazy ((Astar.search (problem ())).Astar.best)

(* ------------------------------------------------------------------ *)
(* The report. *)

let test_report_totals () =
  let p = problem () in
  let best = Lazy.force optimal in
  let report = Explain.explain p best in
  checkf "the report total is the configuration's cost"
    (Problem.total p best) report.Explain.r_total;
  checkf "the report space is the configuration's footprint"
    (Config.space p.Problem.derived best)
    report.Explain.r_space;
  checkb "a maintained design has propagation lines" true
    (report.Explain.r_lines <> []);
  List.iter
    (fun l ->
      checkf
        (Printf.sprintf "line %s/%s total is the sum of its components"
           l.Explain.l_element l.Explain.l_delta)
        (l.Explain.l_eval +. l.Explain.l_apply +. l.Explain.l_save
       +. l.Explain.l_index)
        l.Explain.l_total)
    report.Explain.r_lines

let test_render () =
  let p = problem () in
  let report = Explain.explain p (Lazy.force optimal) in
  let text = Explain.render report in
  checkb "render is newline-terminated" true
    (String.length text > 0 && text.[String.length text - 1] = '\n');
  List.iter
    (fun l ->
      checkb
        (Printf.sprintf "render mentions element %s" l.Explain.l_element)
        true
        (contains ~affix:l.Explain.l_element text))
    report.Explain.r_lines

let test_compare_designs () =
  let p = problem () in
  let text =
    Explain.compare_designs p
      [ ("empty", Config.empty); ("optimal", Lazy.force optimal) ]
  in
  checkb "comparison names the empty design" true
    (contains ~affix:"empty" text);
  checkb "comparison names the optimal design" true
    (contains ~affix:"optimal" text)

(* ------------------------------------------------------------------ *)
(* JSON. *)

let test_report_json_roundtrip () =
  let p = problem () in
  let report = Explain.explain p (Lazy.force optimal) in
  let doc = Explain.report_json report in
  let parsed = Json.of_string (Json.to_string ~indent:2 doc) in
  checkf "total_cost survives the round trip" report.Explain.r_total
    (Json.to_float (Json.member "total_cost" parsed));
  match Json.member "propagations" parsed with
  | Json.List lines ->
      Alcotest.(check int)
        "every line survives the round trip"
        (List.length report.Explain.r_lines)
        (List.length lines)
  | _ -> Alcotest.fail "report_json lacks a propagations list"

let test_json_non_finite_floats () =
  (* The PR-1 regression: Printf's "inf"/"nan" are not JSON.  Non-finite
     floats must print as null and parse back. *)
  checks "infinity prints as null" "null" (Json.to_string (Json.Float infinity));
  checks "negative infinity prints as null" "null"
    (Json.to_string (Json.Float neg_infinity));
  checks "nan prints as null" "null" (Json.to_string (Json.Float nan));
  checkb "a document holding an infinite cost still parses" true
    (Json.of_string
       (Json.to_string
          (Json.Obj [ ("cost", Json.Float infinity); ("n", Json.Int 3) ]))
    = Json.Obj [ ("cost", Json.Null); ("n", Json.Int 3) ])

let test_json_infinite_cost_at () =
  (* An unachievable budget produces an infinite cost; embedding it in a
     JSON document must not produce unparseable output. *)
  let p = problem () in
  let sw = Space.sweep p in
  let unachievable = Space.cost_at sw ~budget:(-1.) in
  checkb "cost below the staircase is infinite" true
    (unachievable = Float.infinity);
  let doc = Json.Obj [ ("cost_at", Json.Float unachievable) ] in
  checkb "the infinite lookup serializes to a parseable document" true
    (Json.of_string (Json.to_string doc) = Json.Obj [ ("cost_at", Json.Null) ])

let () =
  Alcotest.run "explain"
    [
      ( "report",
        [
          Alcotest.test_case "totals re-evaluate" `Quick test_report_totals;
          Alcotest.test_case "render" `Quick test_render;
          Alcotest.test_case "compare_designs" `Quick test_compare_designs;
        ] );
      ( "json",
        [
          Alcotest.test_case "report round trip" `Quick
            test_report_json_roundtrip;
          Alcotest.test_case "non-finite floats" `Quick
            test_json_non_finite_floats;
          Alcotest.test_case "infinite cost_at" `Quick
            test_json_infinite_cost_at;
        ] );
    ]
