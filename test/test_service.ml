(* Tests for the multi-tenant advisor daemon: tenant lifecycle, the EWMA
   rate monitor and its trigger thresholds, warm-started budgeted
   re-optimization, swap atomicity across refresh groups, the
   budget-bounded degradation path, fault isolation between tenants, and
   jobs=1 vs jobs=4 end-state bit-identity on a fixed 3-tenant scenario. *)

module Schema = Vis_catalog.Schema
module Config = Vis_costmodel.Config
module Problem = Vis_core.Problem
module Astar = Vis_core.Astar
module Greedy = Vis_core.Greedy
module Datagen = Vis_workload.Datagen
module Faults = Vis_storage.Faults
module Parallel = Vis_util.Parallel
module Service = Vis_service.Service
module Stream = Vis_service.Stream
module Monitor = Vis_service.Monitor

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf msg = Alcotest.(check (float 1e-9)) msg

let schema = Vis_workload.Schemas.validation ~base_card:200. ()

(* One shared initial design (the greedy one, for speed): every scenario
   tenant starts from it, so re-optimizations are the only source of
   configuration change. *)
let design = lazy (Greedy.search (Problem.make schema)).Greedy.best

let base_config =
  {
    Service.default_config with
    Service.sv_seed = 7;
    sv_warmup = 1;
    sv_band = 1.3;
    sv_gate = 1.0;
    sv_budget = 4_000;
  }

let crash_plan () =
  Faults.make
    [ Faults.Fail_nth { op = Some Faults.Write; n = 30; kind = Faults.Crash } ]

(* The fixed 3-tenant scenario: tenant 0 drifts (unless overridden),
   tenant 1 optionally gets a crash plan, tenant 2 is steady. *)
let scenario ?(config = base_config) ?(ticks = 6) ?fault_tenant
    ?(drift = Stream.Step { at = 2; factor = 4. }) () =
  let svc = Service.create ~config () in
  for k = 0 to 2 do
    let faults =
      match fault_tenant with
      | Some f when f = k -> Some (crash_plan ())
      | _ -> None
    in
    let dr = if k = 0 then drift else Stream.Constant in
    ignore
      (Service.add_tenant ~seed:(100 + k)
         ~rate:(2.5 -. (float_of_int k *. 0.75))
         ~drift:dr ?faults ~config:(Lazy.force design) svc schema)
  done;
  Service.run svc ~ticks;
  svc

let end_state svc =
  List.map
    (fun id -> (id, Service.signature svc id, Service.stats svc id))
    (Service.tenant_ids svc)

let with_scenario ?config ?ticks ?fault_tenant ?drift f =
  let svc = scenario ?config ?ticks ?fault_tenant ?drift () in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) (fun () -> f svc)

(* ------------------------------------------------------------------ *)
(* Tenant lifecycle. *)

let test_registration () =
  let svc = Service.create () in
  let a =
    Service.add_tenant ~name:"alpha" ~config:(Lazy.force design) svc schema
  in
  let b = Service.add_tenant ~config:(Lazy.force design) svc schema in
  checki "first id" 0 a;
  checki "second id" 1 b;
  checki "two live tenants" 2 (Service.n_tenants svc);
  checkb "ids listed in order" true (Service.tenant_ids svc = [ 0; 1 ]);
  let s = Service.stats svc a in
  Alcotest.(check string) "name kept" "alpha" s.Service.ts_name;
  Alcotest.(check string)
    "default name" "tenant-1" (Service.stats svc b).Service.ts_name;
  checki "no batches before any tick" 0 s.Service.ts_batches;
  checki "no swaps before any tick" 0 s.Service.ts_swaps;
  checkb "incumbent is the registered design" true
    (Config.equal (Lazy.force design) (Service.incumbent svc a));
  Service.shutdown svc

let test_teardown () =
  let svc = Service.create () in
  let a = Service.add_tenant ~config:(Lazy.force design) svc schema in
  let b = Service.add_tenant ~config:(Lazy.force design) svc schema in
  let final = Service.remove_tenant svc a in
  checki "final stats carry the id" a final.Service.ts_id;
  checki "one tenant left" 1 (Service.n_tenants svc);
  checkb "the right one" true (Service.tenant_ids svc = [ b ]);
  checkb "stats of a removed tenant raise" true
    (match Service.stats svc a with
    | exception Not_found -> true
    | _ -> false);
  checkb "removing twice raises" true
    (match Service.remove_tenant svc a with
    | exception Not_found -> true
    | _ -> false);
  let t = Service.totals svc in
  checki "totals still count the retired tenant" 2 t.Service.tt_tenants;
  Service.shutdown svc

let test_ingestion () =
  with_scenario (fun svc ->
      List.iter
        (fun id ->
          let s = Service.stats svc id in
          checkb "tenant ingested batches" true (s.Service.ts_batches > 0);
          checkb "tenant ingested rows" true (s.Service.ts_rows > 0);
          checkb "refresh groups ran" true (s.Service.ts_groups > 0);
          checkb "I/O was charged" true (s.Service.ts_io > 0);
          checki "no stream failed" 0 s.Service.ts_failed;
          checki "one latency per committed batch" s.Service.ts_batches
            (List.length s.Service.ts_latencies_ms);
          List.iter
            (fun l -> checkb "latencies are non-negative" true (l >= 0.))
            s.Service.ts_latencies_ms)
        (Service.tenant_ids svc);
      List.iter
        (fun id ->
          let s = Service.stats svc id in
          checkb "syncs never exceed batches" true
            (s.Service.ts_group_syncs <= s.Service.ts_batches))
        (Service.tenant_ids svc);
      (* Tenant 0 drifts to ~10 batches/tick, so 4-batch grouping must
         amortize its WAL syncs; tenant 2 at ~1 batch/tick cannot. *)
      checkb "grouping amortized the busy tenant's syncs" true
        ((Service.stats svc 0).Service.ts_group_syncs
        < (Service.stats svc 0).Service.ts_batches);
      let t = Service.totals svc in
      checkb "p99 covers the latency tail" true
        (t.Service.tt_p99_latency_ms >= t.Service.tt_mean_latency_ms))

(* ------------------------------------------------------------------ *)
(* The rate monitor. *)

let test_monitor_ewma () =
  let m = Monitor.create ~alpha:0.5 ~reference:100. in
  checkf "ratio is 1 before any observation" 1. (Monitor.ratio m);
  Monitor.observe m 100.;
  checkf "first observation initializes directly" 100. (Monitor.ewma m);
  checkb "on-reference rate does not drift" false (Monitor.drifted m ~band:1.5);
  Monitor.observe m 300.;
  checkf "ewma blends with alpha" 200. (Monitor.ewma m);
  checkf "ratio follows" 2. (Monitor.ratio m);
  checkb "2x rate drifts outside a 1.5 band" true (Monitor.drifted m ~band:1.5);
  Monitor.rebase m ~reference:200.;
  checkf "rebase resets the ratio" 1. (Monitor.ratio m);
  checkb "rebased monitor is calm" false (Monitor.drifted m ~band:1.5)

let test_monitor_thresholds () =
  (* alpha 1 makes the EWMA track the last observation exactly, pinning
     the band edges: the band is exclusive on both sides. *)
  let m = Monitor.create ~alpha:1.0 ~reference:100. in
  Monitor.observe m 150.;
  checkb "ratio exactly at the band does not trigger" false
    (Monitor.drifted m ~band:1.5);
  Monitor.observe m 151.;
  checkb "just above the band triggers" true (Monitor.drifted m ~band:1.5);
  Monitor.observe m 67.;
  checkb "just inside the low edge does not trigger" false
    (Monitor.drifted m ~band:1.5);
  Monitor.observe m 66.;
  checkb "below 1/band triggers" true (Monitor.drifted m ~band:1.5)

let test_trigger_in_service () =
  (* A 4x step drift must get tenant 0 past the 1.3 band after warmup;
     steady tenants with a wide band must never be examined. *)
  with_scenario (fun svc ->
      checkb "drifting tenant was examined" true
        ((Service.stats svc 0).Service.ts_checks > 0));
  (* The calm leg needs rates high enough that no tick is empty: an empty
     tick legitimately reads as drift (the EWMA collapses toward 0), so
     low-rate tenants can trigger even inside a wide band. *)
  let calm =
    Service.create ~config:{ base_config with Service.sv_band = 10. } ()
  in
  Fun.protect
    ~finally:(fun () -> Service.shutdown calm)
    (fun () ->
      ignore
        (Service.add_tenant ~seed:100 ~rate:8. ~config:(Lazy.force design)
           calm schema);
      ignore
        (Service.add_tenant ~seed:101 ~rate:6. ~config:(Lazy.force design)
           calm schema);
      Service.run calm ~ticks:6;
      List.iter
        (fun id ->
          checki "steady load inside a wide band never triggers" 0
            (Service.stats calm id).Service.ts_checks)
        (Service.tenant_ids calm))

(* ------------------------------------------------------------------ *)
(* Streams and data evolution. *)

let test_stream_determinism () =
  let a = Stream.arrivals ~seed:3 ~tenant:1 ~tick:5 ~mean:2.5 in
  let b = Stream.arrivals ~seed:3 ~tenant:1 ~tick:5 ~mean:2.5 in
  checki "arrivals are a pure function" a b;
  checkb "arrivals differ across ticks somewhere" true
    (List.exists
       (fun t -> Stream.arrivals ~seed:3 ~tenant:1 ~tick:t ~mean:2.5 <> a)
       [ 1; 2; 3; 4; 6; 7; 8 ]);
  checki "zero mean means zero arrivals" 0
    (Stream.arrivals ~seed:3 ~tenant:1 ~tick:5 ~mean:0.);
  checkf "no drift before a step" 1.
    (Stream.drift_factor (Stream.Step { at = 4; factor = 3. }) ~tick:3);
  checkf "step drift lands exactly" 3.
    (Stream.drift_factor (Stream.Step { at = 4; factor = 3. }) ~tick:4);
  checkf "ramp midpoint" 2.
    (Stream.drift_factor
       (Stream.Ramp { from_tick = 2; over = 4; factor = 3. })
       ~tick:4);
  checkf "ramp saturates" 3.
    (Stream.drift_factor
       (Stream.Ramp { from_tick = 2; over = 4; factor = 3. })
       ~tick:100);
  checkb "zipf weights decrease with rank" true
    (Stream.zipf_weight ~s:1. ~rank:0 > Stream.zipf_weight ~s:1. ~rank:3)

let test_stream_edge_cases () =
  let ramp = Stream.Ramp { from_tick = 2; over = 4; factor = 3. } in
  checkf "ramp is flat at tick 0" 1. (Stream.drift_factor ramp ~tick:0);
  checkf "ramp is still flat at its own start tick" 1.
    (Stream.drift_factor ramp ~tick:2);
  checkf "ramp reaches the factor exactly at the endpoint" 3.
    (Stream.drift_factor ramp ~tick:6);
  checkf "ramp holds the factor past the endpoint" 3.
    (Stream.drift_factor ramp ~tick:60);
  checkf "a degenerate ramp (over = 0) steps straight to the factor" 3.
    (Stream.drift_factor
       (Stream.Ramp { from_tick = 2; over = 0; factor = 3. })
       ~tick:3);
  checkf "a negative-length ramp behaves like the degenerate one" 3.
    (Stream.drift_factor
       (Stream.Ramp { from_tick = 2; over = -4; factor = 3. })
       ~tick:3);
  (* Volume factors are clamped at 0 — a negative factor cannot make the
     stream emit negative arrivals, mid-ramp or saturated. *)
  checkf "negative factor clamps to zero mid-ramp" 0.
    (Stream.drift_factor
       (Stream.Ramp { from_tick = 0; over = 2; factor = -9. })
       ~tick:1);
  checkf "negative factor clamps to zero once saturated" 0.
    (Stream.drift_factor
       (Stream.Ramp { from_tick = 2; over = 4; factor = -2. })
       ~tick:100);
  (* s = 0 is the uniform edge of the zipf family: every rank weighs 1, so
     tenant rates degrade to equal shares with no renormalization. *)
  checkf "zipf s=0 flattens rank 0 to weight 1" 1.
    (Stream.zipf_weight ~s:0. ~rank:0);
  checkf "zipf s=0 flattens rank 7 to weight 1" 1.
    (Stream.zipf_weight ~s:0. ~rank:7)

let test_monitor_empty_ticks () =
  (* Empty-arrival ticks feed the monitor literal 0-row observations: the
     EWMA decays toward zero, the low band edge triggers, and a rebase
     onto the collapsed rate calms it again — the same rebase the service
     performs after a swap. *)
  let m = Monitor.create ~alpha:0.5 ~reference:100. in
  Monitor.observe m 100.;
  Monitor.observe m 0.;
  checkf "one empty tick halves the ewma" 50. (Monitor.ewma m);
  checkb "a single empty tick already reads as drift at band 1.5" true
    (Monitor.drifted m ~band:1.5);
  Monitor.observe m 0.;
  Monitor.observe m 0.;
  checkb "sustained empty ticks keep the ewma collapsing" true
    (Monitor.ewma m < 15.);
  Monitor.rebase m ~reference:(Monitor.ewma m);
  checkf "rebase onto the collapsed rate resets the ratio" 1.
    (Monitor.ratio m);
  checkb "the rebased monitor is calm" false (Monitor.drifted m ~band:1.5)

let test_datagen_apply_and_evolving () =
  let rng = Random.State.make [| 11 |] in
  let ds = Datagen.generate ~rng schema in
  let b = Datagen.deltas_evolving ~rng schema ds in
  let ds' = Datagen.apply schema ds b in
  let key_pos rel =
    Schema.attr_pos schema rel (Schema.relation schema rel).Schema.key_attr
  in
  for rel = 0 to Schema.n_relations schema - 1 do
    let keys tuples = List.map (fun t -> t.(key_pos rel)) tuples in
    let before = keys ds.Datagen.ds_tuples.(rel) in
    let after = keys ds'.Datagen.ds_tuples.(rel) in
    checki "population moves by ins - del"
      (List.length before
      + List.length b.Datagen.b_ins.(rel)
      - List.length b.Datagen.b_del.(rel))
      (List.length after);
    List.iter
      (fun k -> checkb "deleted key gone" false (List.mem k after))
      b.Datagen.b_del.(rel);
    List.iter
      (fun t -> checkb "inserted key present" true (List.mem t.(key_pos rel) after))
      b.Datagen.b_ins.(rel);
    checkb "next_key advances past inserts" true
      (ds'.Datagen.ds_next_key.(rel)
      = ds.Datagen.ds_next_key.(rel) + List.length b.Datagen.b_ins.(rel))
  done;
  (* After deletions made the key space sparse, evolving deltas must only
     name live keys — the dense-key sampler would draw dangling ones. *)
  let b2 = Datagen.deltas_evolving ~rng schema ds' in
  for rel = 0 to Schema.n_relations schema - 1 do
    let live = List.map (fun t -> t.(key_pos rel)) ds'.Datagen.ds_tuples.(rel) in
    List.iter
      (fun k -> checkb "evolved delete names a live key" true (List.mem k live))
      b2.Datagen.b_del.(rel);
    List.iter
      (fun (k, _) ->
        checkb "evolved update names a live key" true (List.mem k live);
        checkb "updates avoid deleted keys" false
          (List.mem k b2.Datagen.b_del.(rel)))
      b2.Datagen.b_upd.(rel)
  done

(* ------------------------------------------------------------------ *)
(* Warm-started search. *)

let test_warm_start () =
  let p = Problem.make schema in
  let opt = Astar.search p in
  (* Warm-starting cannot change the proven optimum. *)
  let warm = Astar.search ~warm_start:(Lazy.force design) p in
  checkf "warm-started optimum cost unchanged" opt.Astar.best_cost
    warm.Astar.best_cost;
  (* Under a starving budget, the warm start is the floor: the result can
     never be worse than the configuration the caller already runs. *)
  let r, cert =
    Astar.search_budgeted ~max_expanded:1 ~warm_start:opt.Astar.best p
  in
  checkb "starved search reports a certificate" true
    (match cert with Astar.Bounded _ -> true | Astar.Optimal -> true);
  checkb "warm start floors the budgeted result" true
    (r.Astar.best_cost <= Problem.total p opt.Astar.best +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Re-optimization, swaps and degradation. *)

let test_swap_happens_and_preserves_content () =
  (* Same stream twice: with re-optimization enabled (A) and with the
     monitor effectively disabled (B).  A must swap at least once under
     the 4x drift; and because swaps rebuild from the logical mirror
     between refresh groups, the bases and primary view must end with
     exactly the same contents as the never-swapped run — no delta lost,
     none applied twice. *)
  with_scenario (fun a ->
      let calm = { base_config with Service.sv_band = 1e9 } in
      with_scenario ~config:calm (fun b ->
          let sa = Service.stats a 0 and sb = Service.stats b 0 in
          checkb "drifted tenant swapped" true (sa.Service.ts_swaps >= 1);
          checki "calm run never swapped" 0 sb.Service.ts_swaps;
          checki "same batches either way" sa.Service.ts_batches
            sb.Service.ts_batches;
          checki "no batch lost to a swap" sa.Service.ts_batches
            (List.length sa.Service.ts_latencies_ms);
          List.iter
            (fun id ->
              Alcotest.(check string)
                (Printf.sprintf "tenant %d core contents unchanged by swaps" id)
                (Service.core_digest b id) (Service.core_digest a id))
            (Service.tenant_ids a);
          checkb "swapped design differs from the seed design" false
            (Config.equal (Service.incumbent a 0) (Lazy.force design))))

let test_rebase_after_swap () =
  (* The swap rebases the monitor onto the rate the new design was
     optimized for, so a tenant that swapped under a sustained 4x step
     must end with its optimized-for factor tracking the drift and its
     EWMA ratio pulled back toward 1 — far below the raw 4x the
     un-rebased reference would report. *)
  with_scenario (fun svc ->
      let s = Service.stats svc 0 in
      checkb "drifted tenant swapped" true (s.Service.ts_swaps >= 1);
      checkb "swap recorded the drifted optimized-for factor" true
        (s.Service.ts_opt_factor > 1.5);
      checkb "rebased ratio is far below the raw drift factor" true
        (s.Service.ts_ewma_ratio < 2.))

let test_mined_reoptimization () =
  (* The workload-driven rung of the ladder: with [sv_minsup] set the
     drifted tenant still re-optimizes over the mined candidate space, the
     whole end state stays bit-identical across pool widths, and the core
     contents match the exhaustive run — mining restricts the search
     space, never the data. *)
  let mined jobs =
    {
      base_config with
      Service.sv_jobs = jobs;
      sv_minsup = Some 0.1;
      sv_log_queries = 128;
    }
  in
  let exhaustive_cores =
    with_scenario (fun svc ->
        List.map (fun id -> Service.core_digest svc id)
          (Service.tenant_ids svc))
  in
  let a = with_scenario ~config:(mined 1) end_state in
  with_scenario ~config:(mined 4) (fun svc ->
      checkb "mined end state bit-identical at jobs 1 vs 4" true
        (end_state svc = a);
      let s = Service.stats svc 0 in
      checkb "drifted tenant re-optimized under mining" true
        (s.Service.ts_reopts >= 1);
      Alcotest.(check (list string))
        "core contents identical to the exhaustive run" exhaustive_cores
        (List.map (fun id -> Service.core_digest svc id)
           (Service.tenant_ids svc)))

let test_budget_bounded_degradation () =
  (* A starving optimizer budget with an impossible swap threshold: every
     re-optimization comes back Bounded without improvement, the incumbent
     stays, and the stream keeps flowing — the degradation path. *)
  let cfg =
    {
      base_config with
      Service.sv_budget = 1;
      sv_beam = Some 1;
      sv_min_gain = 1.0;
    }
  in
  with_scenario ~config:cfg (fun svc ->
      let s = Service.stats svc 0 in
      checkb "re-optimizations ran" true (s.Service.ts_reopts >= 1);
      checkb "starved searches report Bounded" true
        (s.Service.ts_bounded >= 1);
      checki "no swap below the gain threshold" 0 s.Service.ts_swaps;
      checkb "incumbent kept" true
        (Config.equal (Service.incumbent svc 0) (Lazy.force design));
      checki "the stream never failed" 0 s.Service.ts_failed;
      checki "every batch still committed" s.Service.ts_batches
        (List.length s.Service.ts_latencies_ms))

(* ------------------------------------------------------------------ *)
(* Determinism and fault isolation. *)

let test_jobs_bit_identity () =
  let at jobs =
    with_scenario
      ~config:{ base_config with Service.sv_jobs = jobs }
      end_state
  in
  checkb "jobs=1 and jobs=4 end states are bit-identical" true
    (at 1 = at 4)

let test_fault_isolation () =
  let clean = with_scenario end_state in
  with_scenario ~fault_tenant:1 (fun svc ->
      let s1 = Service.stats svc 1 in
      checkb "the crash fired" true (s1.Service.ts_injected >= 1);
      checkb "recovery rolled back" true (s1.Service.ts_rollbacks >= 1);
      checkb "rolled-back batches were replayed" true
        (s1.Service.ts_replayed >= 1);
      let faulted = end_state svc in
      let others l = List.filter (fun (id, _, _) -> id <> 1) l in
      checkb "other tenants' end states untouched by the crash" true
        (others faulted = others clean);
      (* Crash recovery replays to the exact fault-free state, so even the
         faulted tenant's storage converges; only its counters differ. *)
      let sig_of l id =
        let _, s, _ = List.find (fun (i, _, _) -> i = id) l in
        s
      in
      Alcotest.(check string)
        "faulted tenant recovered bit-identically" (sig_of clean 1)
        (sig_of faulted 1))

let test_fault_determinism_across_jobs () =
  let at jobs =
    with_scenario
      ~config:{ base_config with Service.sv_jobs = jobs }
      ~fault_tenant:1 end_state
  in
  checkb "faulted scenario bit-identical at jobs=1 and jobs=4" true
    (at 1 = at 4)

(* ------------------------------------------------------------------ *)
(* Helpers. *)

let test_percentile () =
  checkf "empty list" 0. (Service.percentile ~p:0.99 []);
  checkf "singleton" 5. (Service.percentile ~p:0.99 [ 5. ]);
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  checkf "p99 of 1..100" 99. (Service.percentile ~p:0.99 xs);
  checkf "p50 of 1..100" 50. (Service.percentile ~p:0.5 xs);
  checkf "p100 is the max" 100. (Service.percentile ~p:1.0 xs);
  checkf "order does not matter" 99.
    (Service.percentile ~p:0.99 (List.rev xs))

let test_run_tasks () =
  let pool = Parallel.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown pool)
    (fun () ->
      let tasks = Array.init 17 (fun i () -> i * i) in
      let r = Parallel.run_tasks pool tasks in
      Array.iteri (fun i v -> checki "task order preserved" (i * i) v) r)

let () =
  Alcotest.run "service"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "registration" `Quick test_registration;
          Alcotest.test_case "teardown" `Quick test_teardown;
          Alcotest.test_case "ingestion" `Quick test_ingestion;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "ewma" `Quick test_monitor_ewma;
          Alcotest.test_case "band thresholds" `Quick test_monitor_thresholds;
          Alcotest.test_case "empty ticks" `Quick test_monitor_empty_ticks;
          Alcotest.test_case "service trigger" `Quick test_trigger_in_service;
        ] );
      ( "streams",
        [
          Alcotest.test_case "stream determinism" `Quick
            test_stream_determinism;
          Alcotest.test_case "drift edge cases" `Quick test_stream_edge_cases;
          Alcotest.test_case "apply + evolving deltas" `Quick
            test_datagen_apply_and_evolving;
        ] );
      ( "reoptimization",
        [
          Alcotest.test_case "warm start" `Quick test_warm_start;
          Alcotest.test_case "swap preserves content" `Quick
            test_swap_happens_and_preserves_content;
          Alcotest.test_case "rebase after swap" `Quick test_rebase_after_swap;
          Alcotest.test_case "mined re-optimization" `Quick
            test_mined_reoptimization;
          Alcotest.test_case "budget-bounded degradation" `Quick
            test_budget_bounded_degradation;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs bit-identity" `Quick test_jobs_bit_identity;
          Alcotest.test_case "fault isolation" `Quick test_fault_isolation;
          Alcotest.test_case "fault determinism across jobs" `Quick
            test_fault_determinism_across_jobs;
        ] );
      ( "helpers",
        [
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "run_tasks" `Quick test_run_tasks;
        ] );
    ]
